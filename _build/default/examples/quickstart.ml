(* Quickstart: run the paper's canonical scenario once.

   A 7x7 regular mesh of degree 4 runs Distributed Bellman-Ford; a CBR flow
   crosses it from the first row to the last; at t = 400 s one link on the
   flow's path fails. The run report shows every packet's fate and the two
   convergence delays the paper measures.

     dune exec examples/quickstart.exe *)

let () =
  let cfg = Convergence.Config.default in
  Fmt.pr "Scenario:@.  %a@.@." Convergence.Config.pp cfg;
  let run = Convergence.Engine_registry.run cfg Convergence.Engine_registry.dbf in
  Fmt.pr "%a@.@." Convergence.Report.run_details run;
  let delivered_pct =
    100. *. float_of_int run.Convergence.Metrics.delivered
    /. float_of_int run.Convergence.Metrics.sent
  in
  Fmt.pr
    "DBF delivered %.2f%% of all packets across the failure: it switched to a@.\
     cached alternate path %g s after the failure was detected (the paper's@.\
     zero-time switch-over), so only packets already in flight on the dead@.\
     link were lost.@."
    delivered_pct run.Convergence.Metrics.fwd_convergence
