(* Multiple flows and overlapping failures (the paper's Section 6 future
   work): four concurrent CBR flows cross a degree-4 mesh; two links fail
   five seconds apart, so the second convergence episode begins while the
   first is still settling.

   RIP routers that lose their next hop strand *every* flow routed through
   them until the next periodic update, so its aggregate delivery drops
   visibly; DBF's cached alternates keep all four flows nearly whole.

     dune exec examples/multi_flow.exe *)

let cfg = { Convergence.Config.quick with send_rate_pps = 100. }

let flows = List.init 4 (fun _ -> Convergence.Runner.default_flow)

let failures =
  [
    {
      Convergence.Runner.fail_at = cfg.Convergence.Config.failure_time;
      target = Convergence.Runner.Flow_path 0;
      heal_after = None;
    };
    {
      Convergence.Runner.fail_at = cfg.Convergence.Config.failure_time +. 5.;
      target = Convergence.Runner.Flow_path 1;
      heal_after = None;
    };
  ]

let show engine =
  let m = Convergence.Engine_registry.run_multi ~flows ~failures cfg engine in
  Fmt.pr "@.%a@." Convergence.Metrics.pp_multi m;
  let sent = Convergence.Metrics.multi_sent m in
  let delivered = Convergence.Metrics.multi_delivered m in
  Fmt.pr "aggregate delivery: %d/%d = %.2f%%@." delivered sent
    (100. *. float_of_int delivered /. float_of_int sent)

let () =
  Fmt.pr
    "Four flows, two failures 5 s apart (seed %d, 5x5 mesh, degree %d):@."
    cfg.Convergence.Config.seed cfg.Convergence.Config.degree;
  List.iter show
    Convergence.Engine_registry.[ dbf; rip; bgp3 ]
