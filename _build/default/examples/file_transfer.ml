(* End-to-end file transfer across a routing convergence event (the paper's
   future-work direction: "extending the packet delivery performance measure
   from IP layer to include end-to-end TCP performance").

   A sliding-window transfer (the FTP-like workload of the paper's reference
   [25]) crosses the mesh while a link on its path fails. Packets lost during
   the switch-over are recovered by timeout retransmission, so the routing
   protocol's convergence behavior shows up as (a) a goodput stall and (b) a
   later completion time.

     dune exec examples/file_transfer.exe *)

let cfg = Convergence.Config.quick

let transport =
  {
    Convergence.Runner.default_transport with
    window = 16;
    rto = 0.5;
    total_packets = 8000;
  }

let failure =
  {
    Convergence.Runner.fail_at = cfg.Convergence.Config.failure_time;
    target = Convergence.Runner.Flow_path 0;
    heal_after = None;
  }

let show engine =
  let name = Convergence.Engine_registry.name engine in
  let o =
    Convergence.Engine_registry.run_transport ~failures:[ failure ] transport
      cfg engine
  in
  let finish =
    match o.Convergence.Runner.t_completed_at with
    | Some t -> Printf.sprintf "%.1f s" (t -. cfg.Convergence.Config.traffic_start)
    | None -> "did not finish"
  in
  Fmt.pr "%-6s completion: %-14s retransmissions: %3d@." name finish
    o.Convergence.Runner.t_retransmissions;
  (* Render the goodput dip around the failure. *)
  let g = o.Convergence.Runner.t_goodput in
  let failure_bucket =
    match
      Dessim.Series.bucket_of_time g cfg.Convergence.Config.failure_time
    with
    | Some b -> b
    | None -> 0
  in
  Fmt.pr "       goodput around the failure:";
  for i = failure_bucket - 2 to failure_bucket + 24 do
    if i >= 0 && i < Dessim.Series.buckets g && (i - failure_bucket) mod 3 = 0
    then Fmt.pr " %d" (Dessim.Series.count g i)
  done;
  Fmt.pr " pkt/s (3 s apart)@."

let () =
  Fmt.pr
    "8000-packet transfer, window 16, RTO 0.5 s; one link failure on the@.\
     transfer's path. Completion measured from transfer start.@.@.";
  List.iter show Convergence.Engine_registry.paper_four
