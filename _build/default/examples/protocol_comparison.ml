(* The paper's headline comparison, in miniature: the same topology, the same
   flow, the same failure - under RIP, DBF, BGP, and BGP-3 - at a sparse
   (degree 3) and a rich (degree 6) connectivity level.

   Expected shape (paper Observations 1-4):
   - RIP drops packets for tens of seconds at every degree (no alternate
     path information; recovery rides the 30 s periodic update);
   - DBF and both BGPs barely drop anything, and nothing at degree 6;
   - BGP's routing convergence is ~10x BGP-3's (the MRAI ratio), yet their
     delivery is nearly identical: convergence time is not packet delivery.

     dune exec examples/protocol_comparison.exe *)

let sweep degree =
  Convergence.Experiments.
    {
      degrees = [ degree ];
      runs = 5;
      base = { Convergence.Config.default with send_rate_pps = 100. };
    }

let () =
  List.iter
    (fun degree ->
      Fmt.pr "@.--- node degree %d ---@." degree;
      List.iter
        (fun engine ->
          let cell = Convergence.Experiments.run_cell (sweep degree) degree engine in
          Fmt.pr "%a@." Convergence.Report.summary_line
            cell.Convergence.Experiments.summary)
        Convergence.Engine_registry.paper_four)
    [ 3; 6 ];
  Fmt.pr
    "@.Reading guide: 'no-route' drops happen while a router has no usable@.\
     next hop (the switch-over period); 'conv: fwd' is when the sender's@.\
     forwarding path stops changing; 'conv: routing' is when the last router@.\
     stops changing its table. RIP's drops dwarf everyone else's, and the@.\
     BGP vs BGP-3 rows show MRAI stretching convergence without changing@.\
     delivery.@."
