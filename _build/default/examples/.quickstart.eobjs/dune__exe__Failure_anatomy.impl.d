examples/failure_anatomy.ml: Convergence Fmt Protocols
