examples/link_flap.ml: Convergence Dessim Fmt Netsim
