examples/file_transfer.ml: Convergence Dessim Fmt List Printf
