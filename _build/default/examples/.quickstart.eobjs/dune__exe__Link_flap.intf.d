examples/link_flap.mli:
