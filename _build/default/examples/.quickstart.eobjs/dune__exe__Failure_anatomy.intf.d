examples/failure_anatomy.mli:
