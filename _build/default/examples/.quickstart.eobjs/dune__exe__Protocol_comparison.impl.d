examples/protocol_comparison.ml: Convergence Fmt List
