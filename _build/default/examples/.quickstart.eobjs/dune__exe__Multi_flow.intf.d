examples/multi_flow.mli:
