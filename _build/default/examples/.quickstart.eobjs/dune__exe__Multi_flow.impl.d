examples/multi_flow.ml: Convergence Fmt List
