examples/mrai_granularity.ml: Convergence Fmt
