examples/mrai_granularity.mli:
