examples/random_topology.mli:
