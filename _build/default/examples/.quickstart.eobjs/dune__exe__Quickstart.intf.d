examples/quickstart.mli:
