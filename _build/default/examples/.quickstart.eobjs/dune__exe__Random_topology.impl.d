examples/random_topology.ml: Array Convergence Dessim Fmt List Netsim Protocols
