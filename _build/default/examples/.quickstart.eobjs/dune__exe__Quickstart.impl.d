examples/quickstart.ml: Convergence Fmt
