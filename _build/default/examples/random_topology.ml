(* Beyond regular meshes (the paper's future work): the same single-failure
   study on random Waxman graphs, the classic random-topology model of
   1990s/2000s network simulation.

   For each random topology we pick the two most distant routers as the
   sender/receiver pair, fail a random link on their forwarding path, and
   compare DBF with BGP-3. Denser Waxman graphs (higher alpha) behave like
   the paper's higher-degree meshes: fewer drops, shorter convergence.

     dune exec examples/random_topology.exe *)

let most_distant_pair topo =
  let n = Netsim.Topology.node_count topo in
  let best = ref (0, 0, 0) in
  for src = 0 to n - 1 do
    let dist = Netsim.Topology.bfs_distances topo src in
    Array.iteri
      (fun dst d ->
        let _, _, best_d = !best in
        if d <> max_int && d > best_d then best := (src, dst, d))
      dist
  done;
  let src, dst, _ = !best in
  (src, dst)

let run_on alpha seed =
  let rng = Dessim.Rng.create (seed * 7919) in
  let topo = Netsim.Random_topo.waxman rng ~nodes:49 ~alpha ~beta:0.25 in
  let src, dst = most_distant_pair topo in
  let cfg = { Convergence.Config.quick with seed; send_rate_pps = 100. } in
  let one engine =
    let module E = Convergence.Engine_registry in
    let r =
      match engine with
      | `Dbf ->
        let module R = Convergence.Runner.Make (Protocols.Dbf) in
        R.run ~topology:topo ~src ~dst cfg Protocols.Dbf.default_config
      | `Bgp3 ->
        let module R = Convergence.Runner.Make (Protocols.Bgp) in
        R.run ~label:"BGP-3" ~topology:topo ~src ~dst cfg Protocols.Bgp.fast_config
    in
    Fmt.pr
      "  %-6s drops: no-route %4d, ttl %3d | fwd conv %5.2f s | routing conv %6.2f s@."
      r.Convergence.Metrics.protocol r.Convergence.Metrics.drops_no_route
      r.Convergence.Metrics.drops_ttl r.Convergence.Metrics.fwd_convergence
      r.Convergence.Metrics.routing_convergence
  in
  Fmt.pr "Waxman alpha=%.2f seed=%d: %d links, avg degree %.1f, flow %d->%d@."
    alpha seed
    (Netsim.Topology.edge_count topo)
    (2. *. float_of_int (Netsim.Topology.edge_count topo) /. 49.)
    src dst;
  one `Dbf;
  one `Bgp3

let () =
  List.iter
    (fun alpha ->
      List.iter (run_on alpha) [ 1; 2; 3 ];
      Fmt.pr "@.")
    [ 0.25; 0.5 ]
