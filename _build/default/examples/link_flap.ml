(* Link flap: a failure followed by recovery.

   The paper studies a single permanent failure; real links often come back.
   This example fails a link on the flow's path and restores it 40 s later,
   showing both convergence episodes (away from the link, then back onto it)
   in the throughput series for DBF and for RIP. DBF handles both edges with
   barely a blip; RIP pays its periodic-update price twice... except on
   recovery, where the link-up triggers an immediate full-table exchange, so
   the second episode is loss-free for both (routes only get better).

     dune exec examples/link_flap.exe *)

let run_engine name (engine : Convergence.Engine_registry.t) =
  let cfg = { Convergence.Config.quick with send_rate_pps = 100. } in
  let module E = Convergence.Engine_registry in
  let restore_after = 40. in
  let r =
    match engine with
    | E.Engine ((module P), pcfg, label) ->
      let module R = Convergence.Runner.Make (P) in
      R.run ~label ~restore_after cfg pcfg
  in
  Fmt.pr "@.%s, link restored %.0f s after the failure:@." name restore_after;
  Fmt.pr "  drops: no-route %d, link %d; final path %a@."
    r.Convergence.Metrics.drops_no_route r.Convergence.Metrics.drops_link
    Netsim.Types.pp_path r.Convergence.Metrics.final_path;
  let tput = r.Convergence.Metrics.throughput in
  let failure_bucket = 10 in
  Fmt.pr "  throughput around the failure (t normalized to warmup end):@.";
  for i = failure_bucket - 2 to failure_bucket + 45 do
    if i >= 0 && i < Dessim.Series.buckets tput && i mod 4 = 0 then
      Fmt.pr "    t=%3d s  %6.1f pkt/s@." i (Dessim.Series.rate tput i)
  done

let () =
  run_engine "DBF" Convergence.Engine_registry.dbf;
  run_engine "RIP" Convergence.Engine_registry.rip
