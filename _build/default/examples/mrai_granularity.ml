(* The ablation the paper speculates about in Section 5.2: "the results could
   have been different had the MRAI timer been implemented on a per
   (neighbor, destination) basis".

   We run standard BGP (per-neighbor MRAI, as in vendor implementations)
   against the same protocol with per-(neighbor, destination) timers. With
   per-destination timers, an early update about one destination no longer
   delays updates about the destinations that changed later in the same
   convergence episode, so routing converges faster and inconsistency windows
   shrink.

     dune exec examples/mrai_granularity.exe *)

let () =
  let sweep =
    Convergence.Experiments.
      {
        degrees = [ 3; 4; 5; 6 ];
        runs = 5;
        base = { Convergence.Config.default with send_rate_pps = 100. };
      }
  in
  let progress line = Fmt.epr "  .. %s@." line in
  let grid = Convergence.Experiments.ablation_mrai ~progress sweep in
  Fmt.pr "%a@.@."
    (Convergence.Report.scalar_table
       ~title:"Routing convergence: per-neighbor (BGP) vs per-destination (BGP-pd)"
       ~unit_label:"seconds")
    (Convergence.Experiments.fig6b grid);
  Fmt.pr "%a@.@."
    (Convergence.Report.scalar_table ~title:"Packet drops due to no route"
       ~unit_label:"packets")
    (Convergence.Experiments.fig3 grid);
  Fmt.pr "%a@."
    (Convergence.Report.scalar_table ~title:"Control messages"
       ~unit_label:"messages per run")
    (Convergence.Experiments.overhead grid)
