(** A link-state protocol (OSPF-style), the paper's future-work comparison.

    Every router originates a link-state advertisement (LSA) describing its
    up adjacencies, floods it reliably, and computes shortest paths over the
    collected link-state database with Dijkstra. An adjacency enters the SPF
    graph only when {e both} endpoints advertise it (the standard two-way
    check), which prevents forwarding toward a router that has not yet heard
    about a failure from using the failed link.

    Characteristics relevant to the paper's three factors:
    - switch-over: SPF recomputation over the full database gives an
      alternate path immediately after the failure LSA arrives;
    - valid paths: the two-way check makes chosen alternates valid once the
      failure LSA has been flooded;
    - propagation: flooding is damped only by [spf_delay], far faster than
      distance-vector damping timers. *)

type config = {
  spf_delay : float;  (** batching delay between a database change and SPF *)
  refresh_interval : float;
      (** periodic LSA re-origination (OSPF's LSRefreshTime; 1800 s) *)
  max_age : float;
      (** LSAs not refreshed for this long are purged (OSPF's MaxAge;
          3600 s) — protects against a crashed router's state living
          forever *)
  header_bytes : int;
  neighbor_bytes : int;
}

type lsa = {
  origin : Netsim.Types.node_id;
  seq : int;
  adjacencies : Netsim.Types.node_id list;
}

type message = Lsa of lsa

include
  Proto_intf.PROTOCOL with type config := config and type message := message

val database : t -> lsa list
(** Current LSDB contents, sorted by origin; exposed for tests. *)
