(** RIP (RFC 2453 semantics, as modeled in the paper).

    - Periodic full-table updates every [period] (30 s), jittered.
    - Routes expire after [timeout] (180 s) without refresh.
    - Split horizon with poison reverse: routes whose next hop is the update's
      receiver are advertised with the infinity metric (16).
    - Triggered updates on route change, spaced by a random 1-5 s damping
      timer (first change flushes immediately).
    - At most 25 destination entries per message.

    The defining property for the paper: a RIP router keeps {e only} the best
    route. When the next hop fails it has no alternate path and must wait for
    a neighbor's periodic (or triggered) update, hence the long switch-over
    period of Section 4.1. *)

include Proto_intf.PROTOCOL with type config = Dv_core.config and type message = Dv_core.message
