(** Distributed Bellman-Ford (Bertsekas & Gallager), as modeled in the paper.

    Identical to {!Rip} — same wire format, periodic/triggered updates,
    damping, split horizon with poison reverse, infinity 16 — except that each
    router caches the latest distance vector heard from {e every} neighbor.
    The best route is recomputed from the cache, so when the current next hop
    fails the router switches to an alternate neighbor {e instantly} (the
    zero-time path switch-over of Section 4.1). The alternate is not
    guaranteed valid: it may still traverse the failed link, in which case the
    network "counts to the next-best path" via damped triggered updates. *)

include Proto_intf.PROTOCOL with type config = Dv_core.config and type message = Dv_core.message

val cached_metric :
  t -> neighbor:Netsim.Types.node_id -> dst:Netsim.Types.node_id -> int option
(** The metric most recently heard from [neighbor] for [dst] (after the
    sender's poison reverse); exposed for tests. *)
