lib/proto/dv_core.ml: Dessim Fmt List Netsim
