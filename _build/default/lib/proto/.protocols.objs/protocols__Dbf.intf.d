lib/proto/dbf.mli: Dv_core Netsim Proto_intf
