lib/proto/proto_intf.ml: Dessim Fmt Netsim
