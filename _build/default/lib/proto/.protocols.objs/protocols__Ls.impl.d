lib/proto/ls.ml: Dessim Fmt Hashtbl List Netsim Proto_intf Queue
