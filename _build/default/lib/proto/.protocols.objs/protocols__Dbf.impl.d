lib/proto/dbf.ml: Dessim Dv_core Hashtbl List Netsim Proto_intf
