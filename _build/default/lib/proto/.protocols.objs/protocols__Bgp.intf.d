lib/proto/bgp.mli: Netsim Proto_intf
