lib/proto/dv_core.mli: Dessim Fmt Netsim
