lib/proto/bgp.ml: Dessim Float Fmt Hashtbl List Netsim Proto_intf
