lib/proto/ls.mli: Netsim Proto_intf
