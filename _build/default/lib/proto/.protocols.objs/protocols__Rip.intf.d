lib/proto/rip.mli: Dv_core Proto_intf
