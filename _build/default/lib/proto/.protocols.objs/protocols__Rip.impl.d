lib/proto/rip.ml: Dessim Dv_core Hashtbl List Netsim Proto_intf
