(** BGP-style path-vector routing, as modeled in the paper.

    Each router is its own AS. Characteristics:
    - Adj-RIB-in: the latest path heard from every neighbor is cached, so
      switch-over to an alternate path is instant (like {!Dbf}).
    - Updates are incremental and reliable (TCP-like): routes are advertised
      once, then only on change.
    - Explicit withdrawals propagate immediately, bypassing the rate limiter.
    - Loop detection: a received path containing the receiver is treated as a
      withdrawal (the paper's "similar to split horizon with poison reverse").
    - MRAI: after an update is sent to a neighbor, further advertisements to
      that neighbor wait for the Minimum Route Advertisement Interval timer.
      The paper stresses that the timer is kept {e per neighbor} in vendor
      implementations (so one early update can delay updates about other
      destinations) and speculates results would differ with a
      per-(neighbor, destination) timer; both granularities are implemented
      ({!mrai_scope}).

    [default_config] is standard BGP (MRAI mean 30 s). [fast_config] is the
    paper's specially parameterized variant (MRAI mean 3 s), comparable to the
    RIP/DBF 1-5 s triggered-update damping. *)

type mrai_scope = Per_neighbor | Per_destination

(** Route flap damping (RFC 2439 style), the mechanism whose interaction with
    rich connectivity the paper's introduction flags (its references [4] and
    [15]): each (neighbor, destination) accumulates an exponentially decaying
    penalty on withdrawals and path changes; past [cutoff] the entry is
    suppressed until the penalty decays to [reuse]. *)
type rfd_config = {
  half_life : float;  (** penalty decay half-life, seconds *)
  cutoff : float;  (** suppress when the penalty reaches this *)
  reuse : float;  (** release when the penalty decays below this *)
  max_suppress : float;  (** never suppress longer than this *)
  withdrawal_penalty : float;
  update_penalty : float;  (** charge for a changed re-advertisement *)
}

val default_rfd : rfd_config
(** Cisco-like shape scaled to simulation time: half-life 60 s, cutoff 2.0,
    reuse 0.75, max suppress 240 s, penalties 1.0 / 0.5. *)

type config = {
  mrai_mean : float;
  mrai_jitter : float;  (** timer drawn uniformly in [mean * (1 +- jitter)] *)
  mrai_scope : mrai_scope;
  rfd : rfd_config option;  (** [None]: no route flap damping *)
  header_bytes : int;
  dst_bytes : int;
  hop_bytes : int;
}

type message =
  | Update of { dst : Netsim.Types.node_id; path : Netsim.Types.node_id list }
      (** [path] is the sender's full path: sender first, [dst] last *)
  | Withdraw of { dsts : Netsim.Types.node_id list }

include
  Proto_intf.PROTOCOL
    with type config := config
     and type message := message
(** [default_config] (from {!Proto_intf.PROTOCOL}) is standard BGP. *)

val fast_config : config
(** The paper's BGP-3: MRAI mean 3 s, everything else as [default_config]. *)

val best_path : t -> dst:Netsim.Types.node_id -> Netsim.Types.node_id list option
(** The currently selected path from this router to [dst] (self first, [dst]
    last); [None] when unreachable. *)

val rib_in_path :
  t ->
  neighbor:Netsim.Types.node_id ->
  dst:Netsim.Types.node_id ->
  Netsim.Types.node_id list option
(** The cached path heard from [neighbor] for [dst]; exposed for tests. *)

val rfd_suppressed :
  t -> neighbor:Netsim.Types.node_id -> dst:Netsim.Types.node_id -> bool
(** Whether route flap damping currently suppresses the rib entry heard from
    [neighbor] for [dst]; always false without an {!rfd_config}. *)
