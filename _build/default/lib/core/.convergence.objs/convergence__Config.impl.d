lib/core/config.ml: Fmt Netsim Result
