lib/core/observer.ml: Fmt Int List Netsim Set
