lib/core/engine_registry.mli: Config Metrics Netsim Protocols Runner
