lib/core/metrics.ml: Dessim Fmt List Netsim
