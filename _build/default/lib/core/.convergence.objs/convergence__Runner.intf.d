lib/core/runner.mli: Config Dessim Metrics Netsim Observer Protocols
