lib/core/runner.ml: Array Config Dessim Float Hashtbl List Metrics Netsim Observer Option Printf Protocols
