lib/core/export.mli: Dessim Experiments Metrics
