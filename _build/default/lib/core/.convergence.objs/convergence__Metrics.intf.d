lib/core/metrics.mli: Dessim Fmt Netsim
