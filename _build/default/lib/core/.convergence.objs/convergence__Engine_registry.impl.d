lib/core/engine_registry.ml: List Protocols Runner String
