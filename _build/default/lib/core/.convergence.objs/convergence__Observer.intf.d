lib/core/observer.mli: Fmt Netsim
