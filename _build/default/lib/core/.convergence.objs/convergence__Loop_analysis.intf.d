lib/core/loop_analysis.mli: Fmt Netsim Observer
