lib/core/loop_analysis.ml: Fmt List Netsim Observer
