lib/core/experiments.mli: Config Dessim Engine_registry Metrics Runner
