lib/core/report.mli: Dessim Fmt Metrics
