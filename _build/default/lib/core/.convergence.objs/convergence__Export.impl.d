lib/core/export.ml: Buffer Dessim Experiments Fun List Metrics Printf String
