lib/core/experiments.ml: Config Dessim Engine_registry List Metrics Option Printf Protocols Runner
