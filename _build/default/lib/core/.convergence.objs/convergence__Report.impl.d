lib/core/report.ml: Dessim Fmt List Metrics String
