(** Per-figure experiment drivers.

    Each paper figure is regenerated from a {!grid}: for every (protocol,
    degree) cell, [runs] simulations with consecutive seeds are executed and
    summarized. The same master seed sequence is used for every protocol, so
    each seed sees the same sender/receiver attachment across protocols (the
    paper's controlled comparison). *)

type sweep = {
  degrees : int list;
  runs : int;  (** simulations per (protocol, degree) cell; the paper uses 10 *)
  base : Config.t;
}

val paper_sweep : sweep
(** Degrees 3..8, 10 runs per cell, {!Config.default}. *)

val quick_sweep : sweep
(** Degrees [3; 4; 6], 3 runs, {!Config.quick}; for tests and smoke runs. *)

val scale : ?runs:int -> ?degrees:int list -> sweep -> sweep

type cell = { degree : int; summary : Metrics.summary }

type grid = (string * cell list) list
(** One entry per protocol, in engine order. *)

val run_cell :
  ?progress:(string -> unit) -> sweep -> int -> Engine_registry.t -> cell
(** [run_cell sweep degree engine] runs and summarizes one cell. *)

val run_grid :
  ?progress:(string -> unit) ->
  sweep ->
  Engine_registry.t list ->
  grid
(** [progress] receives one human-readable line per completed cell. *)

val column : grid -> (Metrics.summary -> float) -> (string * (int * float) list) list
(** Project one scalar out of every cell: per protocol, (degree, value). *)

(** Figure-shaped projections (see DESIGN.md experiment index). *)

val fig3 : grid -> (string * (int * float) list) list
(** Packet drops due to no route, vs node degree. *)

val fig4 : grid -> (string * (int * float) list) list
(** TTL expirations, vs node degree. *)

val fig5 :
  grid -> degree:int -> (string * Dessim.Series.t) list
(** Instantaneous throughput (averaged over runs) for one degree. *)

val fig6a : grid -> (string * (int * float) list) list
(** Forwarding-path convergence delay vs degree. *)

val fig6b : grid -> (string * (int * float) list) list
(** Network routing convergence time vs degree. *)

val fig7 : grid -> degree:int -> (string * Dessim.Series.t) list
(** Instantaneous delay of delivered packets for one degree. *)

val overhead : grid -> (string * (int * float) list) list
(** Mean control messages per run vs degree (the cost axis the paper's
    Section 2 discussion raises). *)

(** Ablations and extensions. *)

val ablation_mrai :
  ?progress:(string -> unit) -> sweep -> grid
(** BGP with per-neighbor vs per-(neighbor, destination) MRAI. *)

val ablation_damping :
  ?progress:(string -> unit) -> sweep -> (float * float) list -> grid
(** DBF under different triggered-update damping intervals [(min, max)]. *)

val extension_ls : ?progress:(string -> unit) -> sweep -> grid
(** Link-state vs DBF and BGP-3 on the paper's sweep. *)

(** Multi-flow / multi-failure study (the paper's future work, Section 6). *)

type multi_cell = {
  mc_degree : int;
  mc_delivery_ratio : float;  (** mean over flows and runs *)
  mc_no_route_drops : float;  (** mean per run, summed over flows *)
  mc_ttl_drops : float;
  mc_routing_convergence : float;  (** from the first failure *)
}

val multi_failure_study :
  ?progress:(string -> unit) ->
  sweep ->
  flows:int ->
  failures:int ->
  gap:float ->
  Engine_registry.t list ->
  (string * multi_cell list) list
(** [multi_failure_study sweep ~flows ~failures ~gap engines] runs [flows]
    concurrent first-row/last-row CBR flows; failure [i] hits a random link
    on flow [i mod flows]'s current path at [base.failure_time + i * gap], so
    consecutive convergence episodes overlap when [gap] is smaller than the
    protocol's convergence time. *)

(** End-to-end transport study (the paper's future-work TCP axis). *)

type transport_cell = {
  tr_degree : int;
  tr_completion : float;
      (** mean transfer completion time in seconds from [traffic_start];
          unfinished transfers count as [sim_end - traffic_start] *)
  tr_retransmissions : float;
  tr_stall : float;
      (** mean seconds of zero goodput in the minute after the failure *)
}

val transport_study :
  ?progress:(string -> unit) ->
  sweep ->
  transport:Runner.transport_config ->
  Engine_registry.t list ->
  (string * transport_cell list) list
(** One reliable transfer per run, crossing the usual single failure on its
    own path. Faster-converging protocols finish sooner and stall less. *)
