let rule ppf width = Fmt.pf ppf "%s@," (String.make width '-')

let scalar_table ~title ~unit_label ppf data =
  let protocols = List.map fst data in
  let degrees =
    match data with [] -> [] | (_, cells) :: _ -> List.map fst cells
  in
  (* Column width fits the longest protocol label plus padding. *)
  let col =
    List.fold_left (fun acc p -> max acc (String.length p + 2)) 10 protocols
  in
  let width = 8 + (col * List.length protocols) in
  Fmt.pf ppf "@[<v>%s (%s)@," title unit_label;
  rule ppf width;
  Fmt.pf ppf "%-8s" "degree";
  List.iter (fun p -> Fmt.pf ppf "%*s" col p) protocols;
  Fmt.pf ppf "@,";
  rule ppf width;
  let row degree =
    Fmt.pf ppf "%-8d" degree;
    let cell (_, cells) =
      match List.assoc_opt degree cells with
      | Some v -> Fmt.pf ppf "%*.2f" col v
      | None -> Fmt.pf ppf "%*s" col "-"
    in
    List.iter cell data;
    Fmt.pf ppf "@,"
  in
  List.iter row degrees;
  rule ppf width;
  Fmt.pf ppf "@]"

let series_table ~title ~unit_label ~warmup ?window ~mode ppf data =
  let protocols = List.map fst data in
  let width = 8 + (10 * List.length protocols) in
  Fmt.pf ppf "@[<v>%s (%s; time normalized to warmup end)@," title unit_label;
  rule ppf width;
  Fmt.pf ppf "%-8s" "t(s)";
  List.iter (fun p -> Fmt.pf ppf "%10s" p) protocols;
  Fmt.pf ppf "@,";
  rule ppf width;
  (match data with
  | [] -> ()
  | (_, model) :: _ ->
    let lo, hi =
      match window with
      | Some (lo, hi) -> (lo, hi)
      | None ->
        (0., Dessim.Series.width model *. float_of_int (Dessim.Series.buckets model))
    in
    let buckets = Dessim.Series.buckets model in
    for i = 0 to buckets - 1 do
      let t = Dessim.Series.time_of_bucket model i -. warmup in
      if t >= lo && t <= hi then begin
        Fmt.pf ppf "%-8.0f" t;
        let cell (_, series) =
          let v =
            match mode with
            | `Rate -> Dessim.Series.frac_count series i /. Dessim.Series.width series
            | `Mean -> Dessim.Series.mean series i
          in
          Fmt.pf ppf "%10.3f" v
        in
        List.iter cell data;
        Fmt.pf ppf "@,"
      end
    done);
  rule ppf width;
  Fmt.pf ppf "@]"

let run_details ppf (r : Metrics.run) = Metrics.pp_run ppf r

let summary_line ppf (s : Metrics.summary) =
  Fmt.pf ppf
    "%-8s d=%d runs=%d | delivered %.1f/%.1f | drops: no-route %.1f, ttl %.1f, \
     queue %.1f, link %.1f | conv: fwd %.2fs (sd %.2f), routing %.2fs (sd %.2f) \
     | transient paths %.1f | ctrl msgs %.0f"
    s.Metrics.s_protocol s.Metrics.s_degree s.Metrics.s_runs
    s.Metrics.mean_delivered s.Metrics.mean_sent s.Metrics.mean_drops_no_route
    s.Metrics.mean_drops_ttl s.Metrics.mean_drops_queue s.Metrics.mean_drops_link
    s.Metrics.mean_fwd_convergence s.Metrics.stddev_fwd_convergence
    s.Metrics.mean_routing_convergence s.Metrics.stddev_routing_convergence
    s.Metrics.mean_transient_paths s.Metrics.mean_ctrl_messages
