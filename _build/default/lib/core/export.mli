(** CSV export of experiment results, for plotting with gnuplot / pandas.

    Every function returns the CSV as a string (header row included, one
    record per line, numeric cells unquoted); {!to_file} writes any of them
    to disk. Fields never contain commas or quotes, so no escaping is
    needed — kept deliberately simple. *)

val run_csv : Metrics.run list -> string
(** One row per run: protocol, degree, seed, endpoints, packet fates, loop
    counters, control-plane totals, convergence delays. *)

val summary_csv : Metrics.summary list -> string
(** One row per (protocol, degree) cell: the means and standard deviations a
    figure needs. *)

val grid_csv : Experiments.grid -> string
(** {!summary_csv} over every cell of a grid, in engine order. *)

val series_csv :
  warmup:float -> (string * Dessim.Series.t) list -> string
(** Long-format time series: columns [protocol, time, count, rate, mean].
    [time] is normalized to [warmup] (the paper's convention). Series may
    have different shapes; each contributes its own rows. *)

val flows_csv : Metrics.multi -> string
(** One row per flow of a multi-flow run. *)

val to_file : string -> path:string -> unit
(** [to_file csv ~path] writes the string to [path] (truncating). *)
