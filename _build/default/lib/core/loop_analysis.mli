(** Transient-loop identification from forwarding traces.

    The paper's methodology (Section 2): "studying the forwarding and routing
    trace files, thus we can identify the causes of routing loops in each
    circumstance". This module turns a history of sampled forwarding paths
    (or an individual packet's journey) into loop {e episodes}: which routers
    formed the cycle, when it appeared, and how long it lasted — the paper's
    point that looping duration (lengthened by damping/MRAI timers) is what
    turns a transient inconsistency into TTL expirations. *)

type episode = {
  cycle : Netsim.Types.node_id list;
      (** the looping routers, normalized to start at the smallest id, in
          forwarding order; e.g. [[2; 7; 12]] means 2 -> 7 -> 12 -> 2 *)
  started : float;  (** first sample that showed this cycle *)
  ended : float;  (** last consecutive sample that still showed it *)
}

val duration : episode -> float

val cycle_of_path : Observer.path_result -> Netsim.Types.node_id list option
(** [cycle_of_path p] is the normalized cycle when [p] is [Looping], [None]
    otherwise. *)

val cycle_of_packet : Netsim.Types.node_id list -> Netsim.Types.node_id list option
(** [cycle_of_packet visits] extracts the first cycle from a packet's visited
    routers (in travel order), if it revisited one. *)

val episodes :
  (float * Observer.path_result) list -> episode list
(** [episodes history] extracts loop episodes from path samples (any order;
    they are sorted by time). Consecutive samples showing the same cycle are
    merged into one episode; an episode ends when a sample shows a different
    path. Episodes are returned in chronological order. *)

val pp_episode : episode Fmt.t
