(** ASCII rendering of experiment results in the layout of the paper's
    figures: one column per protocol, one row per degree (scalar figures) or
    per second of normalized time (time-series figures). *)

val scalar_table :
  title:string ->
  unit_label:string ->
  (string * (int * float) list) list Fmt.t
(** Render a degree-indexed projection ({!Experiments.fig3}-style data):
    rows are degrees, columns are protocols. *)

val series_table :
  title:string ->
  unit_label:string ->
  warmup:float ->
  ?window:float * float ->
  mode:[ `Rate | `Mean ] ->
  (string * Dessim.Series.t) list Fmt.t
(** Render per-protocol time series against normalized time (seconds since
    [warmup]). [`Rate] prints per-bucket counts per second (throughput);
    [`Mean] prints per-bucket means (delay). [window] restricts the rows to a
    normalized-time interval (default: the whole series). *)

val run_details : Metrics.run Fmt.t
(** A narrative rendering of a single run (used by examples and the CLI). *)

val summary_line : Metrics.summary Fmt.t
