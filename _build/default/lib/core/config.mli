(** Scenario configuration.

    Every value the paper's Section 5 fixes (or that OCR reconstruction had to
    supply — see DESIGN.md) is a field here, so experiments can be re-run
    under different assumptions. Times are absolute simulation seconds. *)

type t = {
  rows : int;  (** mesh rows (paper: 7) *)
  cols : int;  (** mesh columns (paper: 7) *)
  degree : int;  (** interior node degree (paper sweeps 3..8) *)
  bandwidth_bps : float;  (** link transmission rate (paper: 1 Mbps) *)
  prop_delay : float;  (** link propagation delay (paper: 10 ms) *)
  queue_capacity : int;  (** per-link FIFO capacity in packets (200) *)
  detection_delay : float;  (** failure-detection latency at both ends (0.5 s) *)
  data_packet_bytes : int;
      (** data packet size (100 B, so the 200 pps flow uses ~16% of a 1 Mbps
          link; a larger size would oversubscribe the paper's links) *)
  ttl : int;  (** initial TTL (paper: 127) *)
  send_rate_pps : float;  (** CBR sending rate (200 packets/s) *)
  traffic_start : float;  (** when the sender starts (350 s) *)
  warmup : float;  (** normalization offset for reported time axes (390 s) *)
  failure_time : float;  (** when the chosen link fails (400 s) *)
  sim_end : float;  (** simulation horizon (800 s) *)
  seed : int;  (** master RNG seed for the run *)
}

val default : t
(** The paper's setup: 7x7 mesh, degree 4, 1 Mbps / 10 ms links, queue 200,
    TTL 127, 200 pps from t=350 s, failure at t=400 s, end at t=800 s. *)

val quick : t
(** A scaled-down variant for unit/integration tests: 5x5 mesh, 50 pps,
    failure at t=330 s, end at t=460 s. The warm-up cannot shrink much below
    the default's: standard BGP needs roughly [diameter * MRAI] seconds to
    converge initially, and the post-failure tail must cover a full RIP
    periodic cycle. The event count (what actually costs wall-clock time) is
    ~20x smaller than the default's. *)

val with_degree : int -> t -> t
val with_seed : int -> t -> t

val nodes : t -> int
(** [rows * cols]. *)

val duration_after_warmup : t -> float

val validate : t -> (unit, string) result
(** Checks ordering of the time fields and positivity of rates and sizes. *)

val pp : t Fmt.t
