type sweep = { degrees : int list; runs : int; base : Config.t }

let paper_sweep = { degrees = [ 3; 4; 5; 6; 7; 8 ]; runs = 10; base = Config.default }

let quick_sweep = { degrees = [ 3; 4; 6 ]; runs = 3; base = Config.quick }

let scale ?runs ?degrees sweep =
  {
    sweep with
    runs = (match runs with Some r -> r | None -> sweep.runs);
    degrees = (match degrees with Some d -> d | None -> sweep.degrees);
  }

type cell = { degree : int; summary : Metrics.summary }

type grid = (string * cell list) list

let run_cell ?(progress = fun _ -> ()) sweep degree engine =
  let runs =
    List.init sweep.runs (fun i ->
        let cfg =
          sweep.base |> Config.with_degree degree
          |> Config.with_seed (sweep.base.Config.seed + i)
        in
        Engine_registry.run cfg engine)
  in
  let summary = Metrics.summarize runs in
  progress
    (Printf.sprintf "%-6s degree=%d runs=%d: no-route=%.1f ttl=%.1f fwd-conv=%.1fs"
       (Engine_registry.name engine)
       degree sweep.runs summary.Metrics.mean_drops_no_route
       summary.Metrics.mean_drops_ttl summary.Metrics.mean_fwd_convergence);
  { degree; summary }

let run_grid ?progress sweep engines =
  let per_engine engine =
    let cells = List.map (fun d -> run_cell ?progress sweep d engine) sweep.degrees in
    (Engine_registry.name engine, cells)
  in
  List.map per_engine engines

let column grid f =
  let project (proto, cells) =
    (proto, List.map (fun c -> (c.degree, f c.summary)) cells)
  in
  List.map project grid

let fig3 grid = column grid (fun s -> s.Metrics.mean_drops_no_route)

let fig4 grid = column grid (fun s -> s.Metrics.mean_drops_ttl)

let series_at grid ~degree pick =
  let find (proto, cells) =
    match List.find_opt (fun c -> c.degree = degree) cells with
    | Some c -> Some (proto, pick c.summary)
    | None -> None
  in
  List.filter_map find grid

let fig5 grid ~degree = series_at grid ~degree (fun s -> s.Metrics.avg_throughput)

let fig6a grid = column grid (fun s -> s.Metrics.mean_fwd_convergence)

let fig6b grid = column grid (fun s -> s.Metrics.mean_routing_convergence)

let fig7 grid ~degree = series_at grid ~degree (fun s -> s.Metrics.avg_delay)

let overhead grid = column grid (fun s -> s.Metrics.mean_ctrl_messages)

let ablation_mrai ?progress sweep =
  run_grid ?progress sweep
    [ Engine_registry.bgp; Engine_registry.bgp_per_dest ]

let ablation_damping ?progress sweep intervals =
  let engine_of (dmin, dmax) =
    let cfg =
      { Protocols.Dv_core.default_config with damp_min = dmin; damp_max = dmax }
    in
    Engine_registry.Engine
      ((module Protocols.Dbf), cfg, Printf.sprintf "DBF[%g-%gs]" dmin dmax)
  in
  run_grid ?progress sweep (List.map engine_of intervals)

let extension_ls ?progress sweep =
  run_grid ?progress sweep
    [ Engine_registry.ls; Engine_registry.dbf; Engine_registry.bgp3 ]

type multi_cell = {
  mc_degree : int;
  mc_delivery_ratio : float;
  mc_no_route_drops : float;
  mc_ttl_drops : float;
  mc_routing_convergence : float;
}

let multi_failure_study ?(progress = fun _ -> ()) sweep ~flows ~failures ~gap
    engines =
  if flows <= 0 then invalid_arg "Experiments.multi_failure_study: flows";
  if failures < 0 then invalid_arg "Experiments.multi_failure_study: failures";
  let flow_specs = List.init flows (fun _ -> Runner.default_flow) in
  let failure_specs base =
    List.init failures (fun i ->
        {
          Runner.fail_at = base.Config.failure_time +. (float_of_int i *. gap);
          target = Runner.Flow_path (i mod flows);
          heal_after = None;
        })
  in
  let cell engine degree =
    let runs =
      List.init sweep.runs (fun i ->
          let cfg =
            sweep.base |> Config.with_degree degree
            |> Config.with_seed (sweep.base.Config.seed + i)
          in
          Engine_registry.run_multi ~flows:flow_specs
            ~failures:(failure_specs cfg) cfg engine)
    in
    let mean f = Dessim.Stat.mean (List.map f runs) in
    let per_flow_mean f =
      mean (fun m ->
          Dessim.Stat.mean (List.map f m.Metrics.m_flows))
    in
    let sum_flows f =
      mean (fun m ->
          List.fold_left (fun acc fl -> acc +. f fl) 0. m.Metrics.m_flows)
    in
    let c =
      {
        mc_degree = degree;
        mc_delivery_ratio = per_flow_mean Metrics.flow_delivery_ratio;
        mc_no_route_drops =
          sum_flows (fun fl -> float_of_int fl.Metrics.f_drops_no_route);
        mc_ttl_drops = sum_flows (fun fl -> float_of_int fl.Metrics.f_drops_ttl);
        mc_routing_convergence = mean (fun m -> m.Metrics.m_routing_convergence);
      }
    in
    progress
      (Printf.sprintf
         "%-6s degree=%d flows=%d failures=%d: delivery=%.3f no-route=%.1f conv=%.1fs"
         (Engine_registry.name engine)
         degree flows failures c.mc_delivery_ratio c.mc_no_route_drops
         c.mc_routing_convergence);
    c
  in
  List.map
    (fun engine ->
      ( Engine_registry.name engine,
        List.map (cell engine) sweep.degrees ))
    engines

type transport_cell = {
  tr_degree : int;
  tr_completion : float;
  tr_retransmissions : float;
  tr_stall : float;
}

let transport_study ?(progress = fun _ -> ()) sweep ~transport engines =
  let failure base =
    [
      {
        Runner.fail_at = base.Config.failure_time;
        target = Runner.Flow_path 0;
        heal_after = None;
      };
    ]
  in
  let stall_seconds base (o : Runner.transport_outcome) =
    let g = o.Runner.t_goodput in
    let count = ref 0 in
    let from_bucket =
      match Dessim.Series.bucket_of_time g base.Config.failure_time with
      | Some b -> b
      | None -> 0
    in
    (* Stop counting once the transfer completes: zero goodput after the
       last packet is acknowledged is not a stall. *)
    let horizon =
      match o.Runner.t_completed_at with
      | Some t -> (
        match Dessim.Series.bucket_of_time g t with
        | Some b -> b
        | None -> Dessim.Series.buckets g - 1)
      | None -> Dessim.Series.buckets g - 1
    in
    let upto = min horizon (from_bucket + 60) in
    for i = from_bucket to upto do
      if Dessim.Series.count g i = 0 then incr count
    done;
    float_of_int !count
  in
  let cell engine degree =
    let outcomes =
      List.init sweep.runs (fun i ->
          let cfg =
            sweep.base |> Config.with_degree degree
            |> Config.with_seed (sweep.base.Config.seed + i)
          in
          (cfg, Engine_registry.run_transport ~failures:(failure cfg) transport cfg engine))
    in
    let mean f = Dessim.Stat.mean (List.map f outcomes) in
    let c =
      {
        tr_degree = degree;
        tr_completion =
          mean (fun (cfg, o) ->
              let finish =
                Option.value o.Runner.t_completed_at ~default:cfg.Config.sim_end
              in
              finish -. cfg.Config.traffic_start);
        tr_retransmissions =
          mean (fun (_, o) -> float_of_int o.Runner.t_retransmissions);
        tr_stall = mean (fun (cfg, o) -> stall_seconds cfg o);
      }
    in
    progress
      (Printf.sprintf "%-6s degree=%d: completion=%.1fs retrans=%.1f stall=%.1fs"
         (Engine_registry.name engine)
         degree c.tr_completion c.tr_retransmissions c.tr_stall);
    c
  in
  List.map
    (fun engine ->
      (Engine_registry.name engine, List.map (cell engine) sweep.degrees))
    engines
