type t = {
  rows : int;
  cols : int;
  degree : int;
  bandwidth_bps : float;
  prop_delay : float;
  queue_capacity : int;
  detection_delay : float;
  data_packet_bytes : int;
  ttl : int;
  send_rate_pps : float;
  traffic_start : float;
  warmup : float;
  failure_time : float;
  sim_end : float;
  seed : int;
}

let default =
  {
    rows = 7;
    cols = 7;
    degree = 4;
    bandwidth_bps = 1e6;
    prop_delay = 0.01;
    queue_capacity = 200;
    detection_delay = 0.5;
    data_packet_bytes = 100;
    ttl = 127;
    send_rate_pps = 200.;
    traffic_start = 350.;
    warmup = 390.;
    failure_time = 400.;
    sim_end = 800.;
    seed = 1;
  }

let quick =
  {
    default with
    rows = 5;
    cols = 5;
    send_rate_pps = 50.;
    traffic_start = 310.;
    warmup = 320.;
    failure_time = 330.;
    sim_end = 460.;
  }

let with_degree degree t = { t with degree }

let with_seed seed t = { t with seed }

let nodes t = t.rows * t.cols

let duration_after_warmup t = t.sim_end -. t.warmup

let validate t =
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Result.bind in
  let* () = check (t.rows >= 3 && t.cols >= 3) "mesh must be at least 3x3" in
  let* () =
    check
      (t.degree >= Netsim.Mesh.min_degree && t.degree <= Netsim.Mesh.max_degree)
      "degree out of range"
  in
  let* () = check (t.bandwidth_bps > 0.) "bandwidth must be positive" in
  let* () = check (t.prop_delay >= 0.) "propagation delay must be >= 0" in
  let* () = check (t.queue_capacity > 0) "queue capacity must be positive" in
  let* () = check (t.detection_delay >= 0.) "detection delay must be >= 0" in
  let* () = check (t.data_packet_bytes > 0) "packet size must be positive" in
  let* () = check (t.ttl > 0) "ttl must be positive" in
  let* () = check (t.send_rate_pps > 0.) "send rate must be positive" in
  let* () =
    check
      (0. <= t.traffic_start && t.traffic_start <= t.failure_time)
      "need 0 <= traffic_start <= failure_time"
  in
  let* () =
    check (t.warmup <= t.failure_time) "warmup must not exceed failure_time"
  in
  check (t.failure_time < t.sim_end) "failure must precede sim_end"

let pp ppf t =
  Fmt.pf ppf
    "@[<v>mesh %dx%d degree %d; link %.0f bps / %.3f s prop / queue %d;@ \
     detection %.2f s; packets %d B ttl %d; rate %.0f pps;@ traffic %.0f s, \
     warmup %.0f s, failure %.0f s, end %.0f s; seed %d@]"
    t.rows t.cols t.degree t.bandwidth_bps t.prop_delay t.queue_capacity
    t.detection_delay t.data_packet_bytes t.ttl t.send_rate_pps t.traffic_start
    t.warmup t.failure_time t.sim_end t.seed
