let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let variance = function
  | [] | [ _ ] -> 0.
  | xs ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    sq /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

let minimum = function
  | [] -> invalid_arg "Stat.minimum: empty"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stat.maximum: empty"
  | x :: xs -> List.fold_left max x xs

let percentile p = function
  | [] -> invalid_arg "Stat.percentile: empty"
  | xs ->
    if p < 0. || p > 100. then invalid_arg "Stat.percentile: p out of range";
    let sorted = List.sort compare xs in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    if n = 1 then arr.(0)
    else begin
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      let frac = rank -. float_of_int lo in
      (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)
    end

let median xs = percentile 50. xs

module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; total = 0. }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.total <- t.total +. x

  let count t = t.n

  let mean t = if t.n = 0 then 0. else t.mean

  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int t.n

  let stddev t = sqrt (variance t)

  let minimum t =
    if t.n = 0 then invalid_arg "Stat.Acc.minimum: empty" else t.min

  let maximum t =
    if t.n = 0 then invalid_arg "Stat.Acc.maximum: empty" else t.max

  let total t = t.total
end
