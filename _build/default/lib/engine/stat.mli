(** Summary statistics over float samples. *)

val mean : float list -> float
(** [mean xs] is the arithmetic mean; [0.] for the empty list. *)

val variance : float list -> float
(** [variance xs] is the population variance; [0.] for fewer than two
    samples. *)

val stddev : float list -> float
(** [stddev xs] is [sqrt (variance xs)]. *)

val minimum : float list -> float
(** [minimum xs]. @raise Invalid_argument on the empty list. *)

val maximum : float list -> float
(** [maximum xs]. @raise Invalid_argument on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] is the [p]-th percentile ([0. <= p <= 100.]) with linear
    interpolation between closest ranks.
    @raise Invalid_argument on the empty list or out-of-range [p]. *)

val median : float list -> float
(** [median xs] is [percentile 50. xs]. *)

(** Streaming accumulator (Welford) for mean and variance without storing
    samples. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val minimum : t -> float
  (** @raise Invalid_argument if no sample was added. *)

  val maximum : t -> float
  (** @raise Invalid_argument if no sample was added. *)

  val total : t -> float
end
