type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* 62 bits keep the value non-negative after Int64.to_int (OCaml ints are
     63-bit); modulo bias is negligible for n << 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let float t x =
  (* 53 uniform mantissa bits in [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits /. 9007199254740992.0 *. x

let uniform t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
