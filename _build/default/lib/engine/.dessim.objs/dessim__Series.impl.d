lib/engine/series.ml: Array Float
