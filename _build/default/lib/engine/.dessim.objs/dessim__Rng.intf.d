lib/engine/rng.mli:
