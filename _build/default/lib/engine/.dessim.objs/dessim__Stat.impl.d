lib/engine/stat.ml: Array Float List
