lib/engine/series.mli:
