lib/engine/scheduler.ml: Heap Printf
