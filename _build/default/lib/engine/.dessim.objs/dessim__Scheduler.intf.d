lib/engine/scheduler.mli:
