lib/engine/heap.mli:
