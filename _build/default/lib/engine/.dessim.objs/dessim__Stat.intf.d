lib/engine/stat.mli:
