(** Deterministic pseudo-random numbers (splitmix64).

    Every simulation run owns its own generator seeded from the run index, so
    experiments are bit-reproducible and independent of [Stdlib.Random]. *)

type t
(** A mutable generator. *)

val create : int -> t
(** [create seed] is a generator seeded with [seed]. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. Streams of the
    parent and child are statistically independent. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. [x] must be positive. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val pick : t -> 'a list -> 'a
(** [pick t xs] is a uniformly chosen element of [xs].
    @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
