(** Binary min-heap keyed by [(time, seq)].

    The heap orders elements by time first and, for equal times, by an integer
    sequence number. Schedulers use the sequence number to guarantee FIFO
    delivery of simultaneous events, which keeps simulations deterministic. *)

type 'a t
(** A mutable min-heap of payloads of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty heap. *)

val length : 'a t -> int
(** [length t] is the number of elements currently stored. *)

val is_empty : 'a t -> bool
(** [is_empty t] is [length t = 0]. *)

val add : 'a t -> time:float -> seq:int -> 'a -> unit
(** [add t ~time ~seq x] inserts [x] with key [(time, seq)]. *)

val min_elt : 'a t -> (float * int * 'a) option
(** [min_elt t] is the smallest-keyed element without removing it. *)

val pop : 'a t -> (float * int * 'a) option
(** [pop t] removes and returns the smallest-keyed element. *)

val clear : 'a t -> unit
(** [clear t] removes every element. *)

val to_sorted_list : 'a t -> (float * int * 'a) list
(** [to_sorted_list t] drains [t] and returns its elements in key order. *)
