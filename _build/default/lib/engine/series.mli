(** Time-bucketed series.

    A series divides the half-open interval [\[start, start + width * buckets)]
    into fixed-width buckets and accumulates (count, sum) pairs per bucket.
    Used for instantaneous throughput (count per bucket / width) and
    instantaneous delay (sum / count per bucket) curves. *)

type t

val create : start:float -> width:float -> buckets:int -> t
(** [create ~start ~width ~buckets] is an empty series.
    @raise Invalid_argument if [width <= 0.] or [buckets <= 0]. *)

val start : t -> float
val width : t -> float
val buckets : t -> int

val add : t -> time:float -> float -> unit
(** [add t ~time v] accumulates [v] into the bucket covering [time]. Samples
    outside the covered interval are ignored. *)

val bucket_of_time : t -> float -> int option
(** [bucket_of_time t time] is the index of the bucket covering [time], if
    any. *)

val time_of_bucket : t -> int -> float
(** [time_of_bucket t i] is the left edge of bucket [i]. *)

val count : t -> int -> int
(** [count t i] is the number of samples in bucket [i]. *)

val sum : t -> int -> float
(** [sum t i] is the sum of sample values in bucket [i]. *)

val rate : t -> int -> float
(** [rate t i] is [count t i / width], e.g. packets per second. *)

val mean : t -> int -> float
(** [mean t i] is [sum / count] for bucket [i], or [0.] when empty. *)

val accumulate : into:t -> t -> unit
(** [accumulate ~into src] adds [src]'s counts and sums into [into].
    @raise Invalid_argument if the two series have different shapes. *)

val scale : t -> float -> unit
(** [scale t k] multiplies sums by [k] and counts by [k] (rounded); used to
    average series accumulated over [n] runs with [k = 1/n]. Counts are kept
    as rationals internally to avoid rounding: see {!frac_count}. *)

val frac_count : t -> int -> float
(** [frac_count t i] is the (possibly scaled, hence fractional) count of
    bucket [i]. *)
