type 'a pending = {
  payload : 'a;
  mutable handle : Dessim.Scheduler.handle;
  mutable queued : bool;  (* still occupying the FIFO (not yet transmitted) *)
}

type 'a t = {
  sched : Dessim.Scheduler.t;
  bandwidth_bps : float;
  prop_delay : float;
  queue_capacity : int;
  deliver : 'a -> unit;
  dropped : 'a -> Types.drop_reason -> unit;
  mutable up : bool;
  mutable busy_until : float;
  mutable queue_len : int;
  mutable flying : int;
  outstanding : (int, 'a pending) Hashtbl.t;
  mutable next_token : int;
}

type send_result = Sent | Rejected of Types.drop_reason

let create ~sched ~bandwidth_bps ~prop_delay ~queue_capacity ~deliver ~dropped
    () =
  if bandwidth_bps <= 0. then invalid_arg "Link.create: bandwidth";
  if prop_delay < 0. then invalid_arg "Link.create: prop_delay";
  if queue_capacity <= 0 then invalid_arg "Link.create: queue_capacity";
  {
    sched;
    bandwidth_bps;
    prop_delay;
    queue_capacity;
    deliver;
    dropped;
    up = true;
    busy_until = 0.;
    queue_len = 0;
    flying = 0;
    outstanding = Hashtbl.create 32;
    next_token = 0;
  }

let is_up t = t.up

let queue_length t = t.queue_len

let in_flight t = t.flying

let utilization_busy_until t = t.busy_until

let send t ?(reliable = false) ~size_bits payload =
  if not t.up then begin
    t.dropped payload Types.Link_down;
    Rejected Types.Link_down
  end
  else if t.queue_len >= t.queue_capacity && not reliable then begin
    t.dropped payload Types.Queue_overflow;
    Rejected Types.Queue_overflow
  end
  else begin
    let now = Dessim.Scheduler.now t.sched in
    let start = Float.max now t.busy_until in
    let tx_time = float_of_int size_bits /. t.bandwidth_bps in
    let finish = start +. tx_time in
    t.busy_until <- finish;
    t.queue_len <- t.queue_len + 1;
    let token = t.next_token in
    t.next_token <- token + 1;
    (* Placeholder handle, replaced immediately below. *)
    let pending =
      { payload; handle = Dessim.Scheduler.after t.sched ~delay:0. (fun () -> ()); queued = true }
    in
    Dessim.Scheduler.cancel pending.handle;
    Hashtbl.replace t.outstanding token pending;
    let arrive () =
      Hashtbl.remove t.outstanding token;
      t.flying <- t.flying - 1;
      t.deliver payload
    in
    let transmitted () =
      pending.queued <- false;
      t.queue_len <- t.queue_len - 1;
      t.flying <- t.flying + 1;
      pending.handle <- Dessim.Scheduler.after t.sched ~delay:t.prop_delay arrive
    in
    pending.handle <- Dessim.Scheduler.schedule t.sched ~at:finish transmitted;
    Sent
  end

let fail t =
  if t.up then begin
    t.up <- false;
    let victims = Hashtbl.fold (fun _ p acc -> p :: acc) t.outstanding [] in
    Hashtbl.reset t.outstanding;
    t.queue_len <- 0;
    t.flying <- 0;
    t.busy_until <- Dessim.Scheduler.now t.sched;
    let drop_one p =
      Dessim.Scheduler.cancel p.handle;
      t.dropped p.payload Types.Link_down
    in
    List.iter drop_one victims
  end

let restore t =
  if not t.up then begin
    t.up <- true;
    t.busy_until <- Dessim.Scheduler.now t.sched
  end
