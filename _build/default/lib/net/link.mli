(** A directed point-to-point link with a bounded FIFO output queue.

    The model matches the paper's simulator: store-and-forward serialization at
    [bandwidth] bits per second, then a fixed propagation delay. Payloads are
    polymorphic so the same link carries both data packets and routing
    messages (which therefore contend for the same transmission capacity).

    Reliability: a [send ~reliable:true] bypasses the queue-capacity check,
    approximating a TCP control channel (BGP) that would retransmit rather
    than lose an update. Even reliable payloads are lost when the link fails
    while they are queued or in flight. *)

type 'a t

val create :
  sched:Dessim.Scheduler.t ->
  bandwidth_bps:float ->
  prop_delay:float ->
  queue_capacity:int ->
  deliver:('a -> unit) ->
  dropped:('a -> Types.drop_reason -> unit) ->
  unit ->
  'a t
(** [create ~sched ~bandwidth_bps ~prop_delay ~queue_capacity ~deliver ~dropped ()]
    is an idle, up link. [deliver] fires at the receiving end after queueing,
    transmission, and propagation; [dropped] fires whenever a payload is lost,
    with the reason. *)

type send_result = Sent | Rejected of Types.drop_reason

val send : 'a t -> ?reliable:bool -> size_bits:int -> 'a -> send_result
(** [send t ~size_bits x] enqueues [x] for transmission. [Rejected Link_down]
    if the link is down, [Rejected Queue_overflow] if the queue is full and
    [reliable] is false (default). A rejected payload also triggers the
    [dropped] callback. *)

val fail : 'a t -> unit
(** [fail t] takes the link down immediately: queued and in-flight payloads
    are dropped with [Link_down] and future sends are rejected. Idempotent. *)

val restore : 'a t -> unit
(** [restore t] brings a failed link back up with an empty queue. *)

val is_up : 'a t -> bool

val queue_length : 'a t -> int
(** [queue_length t] is the number of payloads accepted but not yet fully
    transmitted (the FIFO occupancy used for the capacity check). *)

val in_flight : 'a t -> int
(** [in_flight t] counts payloads currently propagating (transmitted but not
    yet delivered). *)

val utilization_busy_until : 'a t -> float
(** [utilization_busy_until t] is the absolute time at which the transmitter
    becomes idle; useful for tests of the serialization model. *)
