(** Immutable undirected graphs with unit-cost edges.

    All protocols in the paper run over unit-cost links, so shortest paths are
    BFS paths; a weighted Dijkstra is provided for the link-state extension
    and for tests that cross-check the two. *)

type t

val create : nodes:int -> edges:(Types.node_id * Types.node_id) list -> t
(** [create ~nodes ~edges] builds a graph on nodes [0 .. nodes-1]. Edges are
    deduplicated; self-loops and out-of-range endpoints raise
    [Invalid_argument]. *)

val node_count : t -> int

val edge_count : t -> int

val edges : t -> (Types.node_id * Types.node_id) list
(** Canonical edge list, each as [(u, v)] with [u < v], sorted. *)

val neighbors : t -> Types.node_id -> Types.node_id list
(** Sorted ascending. *)

val degree : t -> Types.node_id -> int

val has_edge : t -> Types.node_id -> Types.node_id -> bool

val remove_edge : t -> Types.node_id -> Types.node_id -> t
(** [remove_edge t u v] is [t] without the (undirected) edge [u-v]; returns
    [t] unchanged when absent. *)

val add_edge : t -> Types.node_id -> Types.node_id -> t

val is_connected : t -> bool

val bfs_distances : t -> Types.node_id -> int array
(** [bfs_distances t src] is hop distances from [src]; unreachable nodes get
    [max_int]. *)

val shortest_path : t -> Types.node_id -> Types.node_id -> Types.node_id list option
(** [shortest_path t src dst] is a minimum-hop path from [src] to [dst]
    (inclusive of both), deterministic (smallest-id predecessor wins). *)

val dijkstra :
  t ->
  cost:(Types.node_id -> Types.node_id -> float) ->
  Types.node_id ->
  float array * Types.node_id option array
(** [dijkstra t ~cost src] is [(dist, parent)] with [dist.(u) = infinity] for
    unreachable [u]. Ties broken toward the smaller parent id. *)

val diameter : t -> int
(** Longest shortest path over all pairs; [max_int] if disconnected. *)

val average_path_length : t -> float
(** Mean hop distance over all connected ordered pairs. *)

val components : t -> Types.node_id list list
(** Connected components, each sorted, listed by smallest member. *)
