module Edge_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type t = { n : int; adj : Types.node_id list array; edge_set : Edge_set.t }

let canonical u v = if u < v then (u, v) else (v, u)

let create ~nodes ~edges =
  if nodes <= 0 then invalid_arg "Topology.create: nodes must be positive";
  let check u =
    if u < 0 || u >= nodes then
      invalid_arg (Printf.sprintf "Topology.create: node %d out of range" u)
  in
  let edge_set =
    List.fold_left
      (fun acc (u, v) ->
        check u;
        check v;
        if u = v then invalid_arg "Topology.create: self-loop";
        Edge_set.add (canonical u v) acc)
      Edge_set.empty edges
  in
  let adj = Array.make nodes [] in
  Edge_set.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edge_set;
  Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
  { n = nodes; adj; edge_set }

let node_count t = t.n

let edge_count t = Edge_set.cardinal t.edge_set

let edges t = Edge_set.elements t.edge_set

let neighbors t u = t.adj.(u)

let degree t u = List.length t.adj.(u)

let has_edge t u v = Edge_set.mem (canonical u v) t.edge_set

let remove_edge t u v =
  if has_edge t u v then
    create ~nodes:t.n ~edges:(Edge_set.elements (Edge_set.remove (canonical u v) t.edge_set))
  else t

let add_edge t u v =
  if has_edge t u v then t
  else create ~nodes:t.n ~edges:((u, v) :: Edge_set.elements t.edge_set)

let bfs_distances t src =
  let dist = Array.make t.n max_int in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    let relax v =
      if dist.(v) = max_int then begin
        dist.(v) <- dist.(u) + 1;
        Queue.add v q
      end
    in
    List.iter relax t.adj.(u)
  done;
  dist

let is_connected t =
  let dist = bfs_distances t 0 in
  Array.for_all (fun d -> d <> max_int) dist

let shortest_path t src dst =
  let dist = Array.make t.n max_int in
  let parent = Array.make t.n (-1) in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    (* Neighbors are sorted, so the first parent found has the smallest id. *)
    let relax v =
      if dist.(v) = max_int then begin
        dist.(v) <- dist.(u) + 1;
        parent.(v) <- u;
        Queue.add v q
      end
    in
    List.iter relax t.adj.(u)
  done;
  if dist.(dst) = max_int then None
  else begin
    let rec walk acc v = if v = src then src :: acc else walk (v :: acc) parent.(v) in
    Some (walk [] dst)
  end

let dijkstra t ~cost src =
  let dist = Array.make t.n infinity in
  let parent = Array.make t.n None in
  let visited = Array.make t.n false in
  dist.(src) <- 0.;
  let heap = Dessim.Heap.create () in
  Dessim.Heap.add heap ~time:0. ~seq:src src;
  let rec loop () =
    match Dessim.Heap.pop heap with
    | None -> ()
    | Some (d, _, u) ->
      if not visited.(u) && d <= dist.(u) then begin
        visited.(u) <- true;
        let relax v =
          let nd = dist.(u) +. cost u v in
          let better =
            nd < dist.(v)
            || (nd = dist.(v)
               &&
               match parent.(v) with Some p -> u < p | None -> false)
          in
          if better && not visited.(v) then begin
            dist.(v) <- nd;
            parent.(v) <- Some u;
            Dessim.Heap.add heap ~time:nd ~seq:v v
          end
        in
        List.iter relax t.adj.(u)
      end;
      loop ()
  in
  loop ();
  (dist, parent)

let diameter t =
  let worst = ref 0 in
  let disconnected = ref false in
  for src = 0 to t.n - 1 do
    let dist = bfs_distances t src in
    Array.iter
      (fun d -> if d = max_int then disconnected := true else if d > !worst then worst := d)
      dist
  done;
  if !disconnected then max_int else !worst

let average_path_length t =
  let total = ref 0 and pairs = ref 0 in
  for src = 0 to t.n - 1 do
    let dist = bfs_distances t src in
    Array.iteri
      (fun v d ->
        if v <> src && d <> max_int then begin
          total := !total + d;
          incr pairs
        end)
      dist
  done;
  if !pairs = 0 then 0. else float_of_int !total /. float_of_int !pairs

let components t =
  let seen = Array.make t.n false in
  let comps = ref [] in
  for src = 0 to t.n - 1 do
    if not seen.(src) then begin
      let dist = bfs_distances t src in
      let members = ref [] in
      Array.iteri
        (fun v d ->
          if d <> max_int then begin
            seen.(v) <- true;
            members := v :: !members
          end)
        dist;
      comps := List.sort compare !members :: !comps
    end
  done;
  List.rev !comps
