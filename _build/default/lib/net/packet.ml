type t = {
  id : int;
  src : Types.node_id;
  dst : Types.node_id;
  size_bits : int;
  sent_at : float;
  mutable ttl : int;
  mutable visits : Types.node_id list;
}

let create ~id ~src ~dst ~size_bits ~ttl ~sent_at =
  { id; src; dst; size_bits; sent_at; ttl; visits = [] }

let visit p n = p.visits <- n :: p.visits

let hop_count p = max 0 (List.length p.visits - 1)

let path p = List.rev p.visits

let looped p =
  let rec dup seen = function
    | [] -> false
    | n :: rest -> List.mem n seen || dup (n :: seen) rest
  in
  dup [] p.visits

let pp ppf p =
  Fmt.pf ppf "packet#%d %d->%d ttl=%d path=%a" p.id p.src p.dst p.ttl
    Types.pp_path (path p)
