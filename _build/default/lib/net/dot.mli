(** Graphviz and ASCII rendering of topologies. *)

val to_dot :
  ?highlight:(Types.node_id * Types.node_id) list ->
  ?labels:(Types.node_id -> string) ->
  Topology.t ->
  string
(** [to_dot t] is a Graphviz [graph] description. Edges in [highlight] are
    drawn red and bold (e.g. the failed link). *)

val degree_histogram : Topology.t -> (int * int) list
(** [(degree, node count)] pairs, sorted by degree. *)

val summary : Topology.t Fmt.t
(** One-paragraph statistics: nodes, edges, degree histogram, diameter,
    average path length. *)
