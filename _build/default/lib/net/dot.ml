let to_dot ?(highlight = []) ?labels t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "graph topology {\n  node [shape=circle];\n";
  (match labels with
  | None -> ()
  | Some label ->
    for u = 0 to Topology.node_count t - 1 do
      Buffer.add_string buf (Printf.sprintf "  %d [label=\"%s\"];\n" u (label u))
    done);
  let is_highlighted u v =
    List.exists (fun (a, b) -> (a = u && b = v) || (a = v && b = u)) highlight
  in
  let emit (u, v) =
    let attrs = if is_highlighted u v then " [color=red, penwidth=2]" else "" in
    Buffer.add_string buf (Printf.sprintf "  %d -- %d%s;\n" u v attrs)
  in
  List.iter emit (Topology.edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let degree_histogram t =
  let tbl = Hashtbl.create 16 in
  for u = 0 to Topology.node_count t - 1 do
    let d = Topology.degree t u in
    let count = try Hashtbl.find tbl d with Not_found -> 0 in
    Hashtbl.replace tbl d (count + 1)
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [] |> List.sort compare

let summary ppf t =
  let hist = degree_histogram t in
  let pp_bucket ppf (d, c) = Fmt.pf ppf "deg %d: %d nodes" d c in
  Fmt.pf ppf "nodes=%d edges=%d diameter=%d avg-path=%.2f [%a]"
    (Topology.node_count t) (Topology.edge_count t) (Topology.diameter t)
    (Topology.average_path_length t)
    Fmt.(list ~sep:(any ", ") pp_bucket)
    hist
