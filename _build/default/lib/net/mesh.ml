let min_degree = 3

let max_degree = 12

let node_of ~cols ~row ~col = (row * cols) + col

(* A direction [(dr, dc)] adds links (r, c) -> (r + dr, c + dc). Applying one
   to all rows gives interior nodes one outgoing and one incoming extra link
   (+2 each). For an odd degree surplus, one direction is applied with the
   source restricted to even rows, giving +1 — that direction must have odd
   [dr], so that sources (even rows) and sinks (odd rows) are disjoint;
   otherwise even rows would gain 2 and odd rows none. *)
let full_directions = [ (1, 1); (1, -1); (2, 0); (2, 2) ]

let half_direction = (1, 2)

let build ~wrap ~rows ~cols ~degree =
  if rows < 3 || cols < 3 then invalid_arg "Mesh.generate: need at least 3x3";
  if degree < min_degree || degree > max_degree then
    invalid_arg
      (Printf.sprintf "Mesh.generate: degree %d outside [%d, %d]" degree
         min_degree max_degree);
  if wrap && (rows < 5 || cols < 5) then
    invalid_arg "Mesh.generate: a torus needs at least 5x5";
  if wrap && degree mod 2 = 1 && rows mod 2 = 1 then
    invalid_arg "Mesh.generate: an odd-degree torus needs an even row count";
  let nodes = rows * cols in
  let edges = ref [] in
  let in_range r c = r >= 0 && r < rows && c >= 0 && c < cols in
  let add r c r' c' =
    if wrap then begin
      let r' = ((r' mod rows) + rows) mod rows in
      let c' = ((c' mod cols) + cols) mod cols in
      edges := (node_of ~cols ~row:r ~col:c, node_of ~cols ~row:r' ~col:c') :: !edges
    end
    else if in_range r c && in_range r' c' then
      edges := (node_of ~cols ~row:r ~col:c, node_of ~cols ~row:r' ~col:c') :: !edges
  in
  (* Horizontal backbone: always present (the torus closes each row). *)
  let last_col = if wrap then cols - 1 else cols - 2 in
  for r = 0 to rows - 1 do
    for c = 0 to last_col do
      add r c r (c + 1)
    done
  done;
  (* Vertical links: brick-wall subset for degree 3, full grid otherwise. *)
  let last_row = if wrap then rows - 1 else rows - 2 in
  for r = 0 to last_row do
    for c = 0 to cols - 1 do
      if degree > 3 || (r + c) mod 2 = 0 then add r c (r + 1) c
    done
  done;
  (* Extra directions for degree >= 5. *)
  let apply_direction ~even_rows_only (dr, dc) =
    for r = 0 to rows - 1 do
      if (not even_rows_only) || r mod 2 = 0 then
        for c = 0 to cols - 1 do
          add r c (r + dr) (c + dc)
        done
    done
  in
  let surplus = degree - 4 in
  if surplus > 0 then begin
    if surplus mod 2 = 1 then apply_direction ~even_rows_only:true half_direction;
    let rec apply_full remaining directions =
      match (remaining, directions) with
      | 0, _ -> ()
      | _, [] -> assert false (* max_degree bounds [remaining] *)
      | remaining, d :: rest ->
        apply_direction ~even_rows_only:false d;
        apply_full (remaining - 2) rest
    in
    apply_full (surplus - (surplus mod 2)) full_directions
  end;
  Topology.create ~nodes ~edges:!edges

let row_ids ~cols row = List.init cols (fun c -> node_of ~cols ~row ~col:c)

let first_row ~rows:_ ~cols = row_ids ~cols 0

let last_row ~rows ~cols = row_ids ~cols (rows - 1)

let interior_nodes ~rows ~cols ~degree =
  (* Degrees 3 and 4 only use unit offsets; every higher degree uses some
     direction with an offset of 2, whose border effects reach two rows or
     columns deep. *)
  let margin = if degree <= 4 then 1 else 2 in
  let ids = ref [] in
  for r = rows - 1 - margin downto margin do
    for c = cols - 1 - margin downto margin do
      ids := node_of ~cols ~row:r ~col:c :: !ids
    done
  done;
  !ids

let generate ~rows ~cols ~degree = build ~wrap:false ~rows ~cols ~degree

let generate_torus ~rows ~cols ~degree = build ~wrap:true ~rows ~cols ~degree
