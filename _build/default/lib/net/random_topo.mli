(** Random topology generators (the paper's future-work direction).

    Both generators post-process the raw random graph so the result is always
    connected: components are stitched together with one extra edge between
    random representatives until a single component remains. *)

val erdos_renyi : Dessim.Rng.t -> nodes:int -> p:float -> Topology.t
(** [erdos_renyi rng ~nodes ~p] includes each possible edge independently with
    probability [p], then stitches components.
    @raise Invalid_argument if [p] is outside [0, 1] or [nodes < 2]. *)

val waxman :
  Dessim.Rng.t -> nodes:int -> alpha:float -> beta:float -> Topology.t
(** [waxman rng ~nodes ~alpha ~beta] places nodes uniformly in the unit square
    and connects [u, v] with probability
    [alpha * exp (-d(u,v) / (beta * sqrt 2.))], then stitches components.
    Typical values: [alpha = 0.4], [beta = 0.2]. *)

val ensure_connected : Dessim.Rng.t -> Topology.t -> Topology.t
(** [ensure_connected rng t] adds random inter-component edges until [t] is
    connected. *)
