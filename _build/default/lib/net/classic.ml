let line n =
  if n < 2 then invalid_arg "Classic.line: need at least 2 nodes";
  Topology.create ~nodes:n ~edges:(List.init (n - 1) (fun i -> (i, i + 1)))

let ring n =
  if n < 3 then invalid_arg "Classic.ring: need at least 3 nodes";
  Topology.create ~nodes:n
    ~edges:((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star n =
  if n < 2 then invalid_arg "Classic.star: need at least 2 nodes";
  Topology.create ~nodes:n ~edges:(List.init (n - 1) (fun i -> (0, i + 1)))

let complete n =
  if n < 2 then invalid_arg "Classic.complete: need at least 2 nodes";
  let edges = ref [] in
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Topology.create ~nodes:n ~edges:!edges

let binary_tree ~depth =
  if depth < 1 then invalid_arg "Classic.binary_tree: depth must be >= 1";
  let nodes = (1 lsl (depth + 1)) - 1 in
  let edges = ref [] in
  for i = 0 to nodes - 1 do
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    if left < nodes then edges := (i, left) :: !edges;
    if right < nodes then edges := (i, right) :: !edges
  done;
  Topology.create ~nodes ~edges:!edges
