lib/net/dot.mli: Fmt Topology Types
