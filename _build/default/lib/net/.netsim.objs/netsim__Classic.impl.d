lib/net/classic.ml: List Topology
