lib/net/topology.mli: Types
