lib/net/link.mli: Dessim Types
