lib/net/random_topo.mli: Dessim Topology
