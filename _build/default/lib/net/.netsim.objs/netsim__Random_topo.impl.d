lib/net/random_topo.ml: Array Dessim Topology
