lib/net/link.ml: Dessim Float Hashtbl List Types
