lib/net/mesh.mli: Topology Types
