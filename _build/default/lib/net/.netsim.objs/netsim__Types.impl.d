lib/net/types.ml: Fmt
