lib/net/types.mli: Fmt
