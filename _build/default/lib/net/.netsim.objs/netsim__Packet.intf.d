lib/net/packet.mli: Fmt Types
