lib/net/classic.mli: Topology
