lib/net/topology.ml: Array Dessim List Printf Queue Set Types
