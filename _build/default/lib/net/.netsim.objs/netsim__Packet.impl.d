lib/net/packet.ml: Fmt List Types
