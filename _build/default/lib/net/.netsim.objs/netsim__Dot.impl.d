lib/net/dot.ml: Buffer Fmt Hashtbl List Printf Topology
