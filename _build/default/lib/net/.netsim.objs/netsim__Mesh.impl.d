lib/net/mesh.ml: List Printf Topology
