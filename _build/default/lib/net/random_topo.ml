let ensure_connected rng t =
  let rec fix t =
    match Topology.components t with
    | [] | [ _ ] -> t
    | first :: second :: _ ->
      let u = Dessim.Rng.pick rng first in
      let v = Dessim.Rng.pick rng second in
      fix (Topology.add_edge t u v)
  in
  fix t

let erdos_renyi rng ~nodes ~p =
  if nodes < 2 then invalid_arg "Random_topo.erdos_renyi: nodes < 2";
  if p < 0. || p > 1. then invalid_arg "Random_topo.erdos_renyi: p out of range";
  let edges = ref [] in
  for u = 0 to nodes - 2 do
    for v = u + 1 to nodes - 1 do
      if Dessim.Rng.float rng 1. < p then edges := (u, v) :: !edges
    done
  done;
  ensure_connected rng (Topology.create ~nodes ~edges:!edges)

let waxman rng ~nodes ~alpha ~beta =
  if nodes < 2 then invalid_arg "Random_topo.waxman: nodes < 2";
  if alpha <= 0. || alpha > 1. then invalid_arg "Random_topo.waxman: alpha";
  if beta <= 0. then invalid_arg "Random_topo.waxman: beta";
  let xs = Array.init nodes (fun _ -> Dessim.Rng.float rng 1.) in
  let ys = Array.init nodes (fun _ -> Dessim.Rng.float rng 1.) in
  let max_dist = sqrt 2. in
  let edges = ref [] in
  for u = 0 to nodes - 2 do
    for v = u + 1 to nodes - 1 do
      let dx = xs.(u) -. xs.(v) and dy = ys.(u) -. ys.(v) in
      let d = sqrt ((dx *. dx) +. (dy *. dy)) in
      let prob = alpha *. exp (-.d /. (beta *. max_dist)) in
      if Dessim.Rng.float rng 1. < prob then edges := (u, v) :: !edges
    done
  done;
  ensure_connected rng (Topology.create ~nodes ~edges:!edges)
