(* Tests for the sliding-window reliable transport running over the simulated
   network and routing protocols. *)

let quick = Convergence.Config.quick

module R = Convergence.Runner.Make (Protocols.Dbf)

let dbf = Protocols.Dbf.default_config

let tc ?(window = 8) ?(rto = 0.5) ?(total = 1000) () =
  { Convergence.Runner.default_transport with window; rto; total_packets = total }

let failure_on_path =
  {
    Convergence.Runner.fail_at = quick.Convergence.Config.failure_time;
    target = Convergence.Runner.Flow_path 0;
    heal_after = None;
  }

let test_lossless_transfer_completes () =
  let o = R.run_transport ~failures:[] (tc ()) quick dbf in
  Alcotest.(check int) "all packets acked" 1000 o.Convergence.Runner.t_completed;
  Alcotest.(check int) "no retransmissions" 0 o.Convergence.Runner.t_retransmissions;
  Alcotest.(check int) "no duplicates" 0 o.Convergence.Runner.t_duplicates;
  Alcotest.(check bool) "finished" true (o.Convergence.Runner.t_completed_at <> None)

let test_window_limits_rate () =
  (* With a window of 1 the transfer is one packet per RTT; with 8 it is
     roughly eight times faster. *)
  let time_with window =
    let o = R.run_transport ~failures:[] (tc ~window ~total:200 ()) quick dbf in
    match o.Convergence.Runner.t_completed_at with
    | Some t -> t -. quick.Convergence.Config.traffic_start
    | None -> Alcotest.fail "transfer did not finish"
  in
  let t1 = time_with 1 in
  let t8 = time_with 8 in
  Alcotest.(check bool)
    (Printf.sprintf "window 8 (%.1fs) much faster than window 1 (%.1fs)" t8 t1)
    true
    (t8 < t1 /. 4.)

let test_failure_recovered_by_retransmission () =
  let o = R.run_transport ~failures:[ failure_on_path ] (tc ~total:8000 ()) quick dbf in
  Alcotest.(check int) "all packets acked" 8000 o.Convergence.Runner.t_completed;
  Alcotest.(check bool) "retransmitted something" true
    (o.Convergence.Runner.t_retransmissions > 0);
  Alcotest.(check bool) "finished despite failure" true
    (o.Convergence.Runner.t_completed_at <> None)

let test_failure_recorded_in_multi () =
  let o = R.run_transport ~failures:[ failure_on_path ] (tc ()) quick dbf in
  Alcotest.(check int) "one failed link" 1
    (List.length o.Convergence.Runner.t_multi.Convergence.Metrics.m_failed_links)

let test_goodput_accounts_everything () =
  let o = R.run_transport ~failures:[] (tc ~total:500 ()) quick dbf in
  let g = o.Convergence.Runner.t_goodput in
  let total = ref 0 in
  for i = 0 to Dessim.Series.buckets g - 1 do
    total := !total + Dessim.Series.count g i
  done;
  Alcotest.(check int) "goodput sums to transfer size" 500 !total

let test_unlimited_transfer_saturates () =
  let o = R.run_transport ~failures:[] (tc ~total:0 ()) quick dbf in
  Alcotest.(check bool) "never 'finishes'" true
    (o.Convergence.Runner.t_completed_at = None);
  Alcotest.(check bool) "moves a lot of data" true
    (o.Convergence.Runner.t_completed > 1000)

let test_bad_transport_config_rejected () =
  let bad_window = { (tc ()) with Convergence.Runner.window = 0 } in
  (match R.run_transport ~failures:[] bad_window quick dbf with
  | (_ : Convergence.Runner.transport_outcome) -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ());
  let bad_rto = { (tc ()) with Convergence.Runner.rto = 0. } in
  match R.run_transport ~failures:[] bad_rto quick dbf with
  | (_ : Convergence.Runner.transport_outcome) -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_transport_determinism () =
  let key (o : Convergence.Runner.transport_outcome) =
    ( o.Convergence.Runner.t_completed,
      o.Convergence.Runner.t_retransmissions,
      o.Convergence.Runner.t_completed_at )
  in
  let a = R.run_transport ~failures:[ failure_on_path ] (tc ~total:3000 ()) quick dbf in
  let b = R.run_transport ~failures:[ failure_on_path ] (tc ~total:3000 ()) quick dbf in
  Alcotest.(check bool) "same outcome" true (key a = key b)

let test_rip_stalls_longer_than_dbf () =
  (* The transfer crosses the failure; RIP's long switch-over turns into a
     long goodput stall and hence a later completion. *)
  let finish engine =
    let o =
      Convergence.Engine_registry.run_transport ~failures:[ failure_on_path ]
        (tc ~total:8000 ~rto:0.5 ()) quick engine
    in
    match o.Convergence.Runner.t_completed_at with
    | Some t -> t
    | None -> quick.Convergence.Config.sim_end
  in
  let rip = finish Convergence.Engine_registry.rip in
  let dbf_t = finish Convergence.Engine_registry.dbf in
  Alcotest.(check bool)
    (Printf.sprintf "rip (%.1f) finishes after dbf (%.1f)" rip dbf_t)
    true (rip > dbf_t)

let test_transport_study_shape () =
  let sweep = Convergence.Experiments.{ degrees = [ 4 ]; runs = 2; base = quick } in
  let result =
    Convergence.Experiments.transport_study sweep
      ~transport:(tc ~total:2000 ())
      Convergence.Engine_registry.[ dbf ]
  in
  match result with
  | [ ("DBF", [ cell ]) ] ->
    Alcotest.(check int) "degree" 4 cell.Convergence.Experiments.tr_degree;
    Alcotest.(check bool) "completion positive" true
      (cell.Convergence.Experiments.tr_completion > 0.)
  | _ -> Alcotest.fail "unexpected shape"

let () =
  Alcotest.run "transport"
    [
      ( "mechanics",
        [
          Alcotest.test_case "lossless transfer" `Quick test_lossless_transfer_completes;
          Alcotest.test_case "window limits rate" `Quick test_window_limits_rate;
          Alcotest.test_case "goodput accounting" `Quick test_goodput_accounts_everything;
          Alcotest.test_case "unlimited saturates" `Quick test_unlimited_transfer_saturates;
          Alcotest.test_case "bad config" `Quick test_bad_transport_config_rejected;
          Alcotest.test_case "determinism" `Quick test_transport_determinism;
        ] );
      ( "across failures",
        [
          Alcotest.test_case "recovers by retransmission" `Quick
            test_failure_recovered_by_retransmission;
          Alcotest.test_case "failure recorded" `Quick test_failure_recorded_in_multi;
          Alcotest.test_case "rip stalls longer" `Quick test_rip_stalls_longer_than_dbf;
          Alcotest.test_case "study shape" `Quick test_transport_study_shape;
        ] );
    ]
