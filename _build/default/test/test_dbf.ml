(* DBF behavior tests: everything RIP does, plus the per-neighbor vector
   cache and the resulting instant switch-over. *)

module H = Proto_harness.Make (Protocols.Dbf)

let line n =
  Netsim.Topology.create ~nodes:n ~edges:(List.init (n - 1) (fun i -> (i, i + 1)))

let ring n =
  Netsim.Topology.create ~nodes:n
    ~edges:((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let converge ?(seed = 1) ?(until = 120.) topo =
  let net = H.make ~seed topo in
  H.start net;
  H.run net ~until;
  net

let test_line_converges () =
  let net = converge (line 5) in
  for dst = 0 to 4 do
    H.check_shortest_paths net ~dst
  done

let test_grid_converges () =
  let topo = Netsim.Mesh.generate ~rows:4 ~cols:4 ~degree:4 in
  let net = converge topo in
  for dst = 0 to 15 do
    H.check_shortest_paths net ~dst
  done

let test_cache_is_populated () =
  let net = converge (line 3) in
  (* Node 1 hears node 0's self route (metric 0) and node 2's (metric 0). *)
  Alcotest.(check (option int)) "cache 1<-0 about 0" (Some 0)
    (Protocols.Dbf.cached_metric (H.router net 1) ~neighbor:0 ~dst:0);
  Alcotest.(check (option int)) "cache 1<-2 about 2" (Some 0)
    (Protocols.Dbf.cached_metric (H.router net 1) ~neighbor:2 ~dst:2)

let test_poison_reverse_in_cache () =
  (* Line 0-1-2: node 0 routes to 2 via 1, so node 1 must hear POISON from 0
     about 2 (infinity -> cached_metric None). *)
  let net = converge (line 3) in
  Alcotest.(check (option int)) "poisoned" None
    (Protocols.Dbf.cached_metric (H.router net 1) ~neighbor:0 ~dst:2)

let test_instant_switchover () =
  (* Triangle 0-1-2: node 1 reaches 2 directly; node 0 also reaches 2
     directly, so node 0's advertisement to 1 about 2 (metric 1) is NOT
     poisoned. When (1,2) dies, node 1 must switch to the cached alternate
     via 0 instantly (zero-time switch-over), without waiting for a message. *)
  let topo = Netsim.Topology.create ~nodes:3 ~edges:[ (0, 1); (0, 2); (1, 2) ] in
  let net = converge topo in
  Alcotest.(check (option int)) "before: direct" (Some 2) (H.next_hop net 1 ~dst:2);
  H.fail_link net 1 2;
  (* No simulation time passes: the alternate must already be installed. *)
  Alcotest.(check (option int)) "after: via 0" (Some 0) (H.next_hop net 1 ~dst:2);
  Alcotest.(check (option int)) "metric 2" (Some 2) (H.metric net 1 ~dst:2)

let test_switchover_requires_valid_cache_entry () =
  (* Line: no alternate exists; the switch-over cannot invent one. *)
  let net = converge (line 3) in
  H.fail_link net 1 2;
  Alcotest.(check (option int)) "no alternate" None (H.next_hop net 1 ~dst:2)

let test_converges_to_next_best_not_infinity () =
  (* Ring of 5: after a failure the network must settle on the longer way
     around ("counting to the next-best path", paper Section 6). *)
  let net = converge (ring 5) in
  H.fail_link net 0 1;
  H.run net ~until:300.;
  let after = Netsim.Topology.remove_edge (ring 5) 0 1 in
  for dst = 0 to 4 do
    H.check_shortest_paths ~topo':after net ~dst
  done;
  Alcotest.(check (option int)) "0->1 the long way" (Some 4) (H.metric net 0 ~dst:1)

let test_unreachable_destination_forgotten () =
  let net = converge (ring 4) in
  H.fail_link net 2 3;
  H.fail_link net 3 0;
  H.run net ~until:500.;
  for src = 0 to 2 do
    Alcotest.(check (option int))
      (Printf.sprintf "%d -> 3 unreachable" src)
      None (H.next_hop net src ~dst:3)
  done

let test_link_up_restores () =
  let net = converge (ring 4) in
  H.fail_link net 0 1;
  H.run net ~until:250.;
  H.restore_link net 0 1;
  H.run net ~until:400.;
  for dst = 0 to 3 do
    H.check_shortest_paths net ~dst
  done

let test_tie_keeps_incumbent () =
  (* Square grid 3x3: center node 4 has equal-cost choices to corner 0 via 1
     or 3. Once converged, repeated periodic updates must not flip the choice
     (stability: ties prefer the incumbent). *)
  let topo = Netsim.Mesh.generate ~rows:3 ~cols:3 ~degree:4 in
  let net = converge topo in
  let first = H.next_hop net 4 ~dst:0 in
  H.run net ~until:400.;
  Alcotest.(check (option int)) "stable tie" first (H.next_hop net 4 ~dst:0)

let test_cache_survives_unrelated_failure () =
  (* Failing (0,1) must not disturb node 2's cache about node 3. *)
  let net = converge (ring 4) in
  let before = Protocols.Dbf.cached_metric (H.router net 2) ~neighbor:3 ~dst:3 in
  H.fail_link net 0 1;
  let after = Protocols.Dbf.cached_metric (H.router net 2) ~neighbor:3 ~dst:3 in
  Alcotest.(check (option int)) "cache untouched" before after

let prop_converges_on_random_connected_graphs =
  QCheck.Test.make ~name:"DBF converges to shortest paths on random graphs"
    ~count:20
    QCheck.(pair (1 -- 1000) (6 -- 12))
    (fun (seed, nodes) ->
      let rng = Dessim.Rng.create seed in
      let topo = Netsim.Random_topo.erdos_renyi rng ~nodes ~p:0.3 in
      let net = converge ~seed topo in
      try
        for dst = 0 to nodes - 1 do
          H.check_shortest_paths net ~dst
        done;
        true
      with _ -> false)

let prop_failure_then_reconverge =
  QCheck.Test.make
    ~name:"DBF reconverges to shortest paths after a random failure" ~count:15
    QCheck.(pair (1 -- 1000) (6 -- 10))
    (fun (seed, nodes) ->
      let rng = Dessim.Rng.create seed in
      let topo = Netsim.Random_topo.erdos_renyi rng ~nodes ~p:0.35 in
      let net = converge ~seed topo in
      let edges = Netsim.Topology.edges topo in
      let u, v = List.nth edges (Dessim.Rng.int rng (List.length edges)) in
      let after = Netsim.Topology.remove_edge topo u v in
      if Netsim.Topology.is_connected after then begin
        H.fail_link net u v;
        H.run net ~until:400.;
        try
          for dst = 0 to nodes - 1 do
            H.check_shortest_paths ~topo':after net ~dst
          done;
          true
        with _ -> false
      end
      else true)

let () =
  Alcotest.run "dbf"
    [
      ( "convergence",
        [
          Alcotest.test_case "line" `Quick test_line_converges;
          Alcotest.test_case "grid" `Quick test_grid_converges;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_converges_on_random_connected_graphs; prop_failure_then_reconverge ]
      );
      ( "cache",
        [
          Alcotest.test_case "populated" `Quick test_cache_is_populated;
          Alcotest.test_case "poison reverse" `Quick test_poison_reverse_in_cache;
          Alcotest.test_case "survives unrelated failure" `Quick
            test_cache_survives_unrelated_failure;
        ] );
      ( "switch-over",
        [
          Alcotest.test_case "instant" `Quick test_instant_switchover;
          Alcotest.test_case "needs valid entry" `Quick
            test_switchover_requires_valid_cache_entry;
          Alcotest.test_case "next-best not infinity" `Quick
            test_converges_to_next_best_not_infinity;
          Alcotest.test_case "unreachable forgotten" `Quick
            test_unreachable_destination_forgotten;
          Alcotest.test_case "link up" `Quick test_link_up_restores;
          Alcotest.test_case "ties stable" `Quick test_tie_keeps_incumbent;
        ] );
    ]
