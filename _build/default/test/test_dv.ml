(* Tests for the shared distance-vector machinery: wire format, chunking,
   sizing, and the triggered-update damping gate. *)

let cfg = Protocols.Dv_core.default_config

let entry dst metric = { Protocols.Dv_core.dst; metric }

let test_defaults_match_rfc () =
  Alcotest.(check (float 0.)) "period" 30. cfg.Protocols.Dv_core.period;
  Alcotest.(check (float 0.)) "timeout" 180. cfg.Protocols.Dv_core.timeout;
  Alcotest.(check int) "infinity" 16 cfg.Protocols.Dv_core.infinity_metric;
  Alcotest.(check int) "entries" 25 cfg.Protocols.Dv_core.max_entries;
  Alcotest.(check (float 0.)) "damp min" 1. cfg.Protocols.Dv_core.damp_min;
  Alcotest.(check (float 0.)) "damp max" 5. cfg.Protocols.Dv_core.damp_max

let test_chunk_empty () =
  Alcotest.(check int) "no chunks" 0 (List.length (Protocols.Dv_core.chunk cfg []))

let test_chunk_small () =
  let entries = List.init 10 (fun i -> entry i 1) in
  match Protocols.Dv_core.chunk cfg entries with
  | [ one ] -> Alcotest.(check int) "all in one" 10 (List.length one)
  | chunks -> Alcotest.failf "expected 1 chunk, got %d" (List.length chunks)

let test_chunk_boundaries () =
  let check_counts n expected =
    let entries = List.init n (fun i -> entry i 1) in
    let chunks = Protocols.Dv_core.chunk cfg entries in
    Alcotest.(check (list int))
      (Printf.sprintf "%d entries" n)
      expected
      (List.map List.length chunks)
  in
  check_counts 25 [ 25 ];
  check_counts 26 [ 25; 1 ];
  check_counts 49 [ 25; 24 ];
  check_counts 75 [ 25; 25; 25 ]

let test_chunk_preserves_order () =
  let entries = List.init 60 (fun i -> entry i i) in
  let chunks = Protocols.Dv_core.chunk cfg entries in
  let flattened = List.concat chunks in
  Alcotest.(check bool) "order kept" true (flattened = entries)

let test_message_size () =
  (* 32-byte header + 20 bytes per entry, in bits. *)
  let msg = List.init 3 (fun i -> entry i 1) in
  Alcotest.(check int) "size" (8 * (32 + 60))
    (Protocols.Dv_core.message_size_bits cfg msg)

let test_jittered_period_bounds () =
  let rng = Dessim.Rng.create 1 in
  for _ = 1 to 1000 do
    let p = Protocols.Dv_core.jittered_period rng cfg in
    if p < 30. *. 0.95 || p >= 30. *. 1.05 then Alcotest.failf "period %f" p
  done

let prop_chunk_flatten_identity =
  QCheck.Test.make ~name:"chunk then flatten = identity" ~count:200
    QCheck.(list_of_size Gen.(0 -- 120) small_nat)
    (fun dsts ->
      let entries = List.map (fun d -> entry d 1) dsts in
      let chunks = Protocols.Dv_core.chunk cfg entries in
      List.concat chunks = entries
      && List.for_all (fun c -> List.length c <= cfg.Protocols.Dv_core.max_entries) chunks
      && List.for_all (fun c -> c <> []) chunks)

(* ---------- Trigger gate ---------- *)

type gate_env = {
  sched : Dessim.Scheduler.t;
  flushes : float list ref;
  trigger : Protocols.Dv_core.Trigger.t;
}

let make_gate ?(min_delay = 1.) ?(max_delay = 5.) seed =
  let sched = Dessim.Scheduler.create () in
  let flushes = ref [] in
  let trigger =
    Protocols.Dv_core.Trigger.create ~rng:(Dessim.Rng.create seed)
      ~after:(fun delay fn -> Dessim.Scheduler.after sched ~delay fn)
      ~min_delay ~max_delay
      ~flush:(fun () -> flushes := Dessim.Scheduler.now sched :: !flushes)
  in
  { sched; flushes; trigger }

let test_trigger_first_flush_immediate () =
  let env = make_gate 1 in
  Protocols.Dv_core.Trigger.request env.trigger;
  Alcotest.(check (list (float 0.))) "flushed at once" [ 0. ] !(env.flushes);
  Alcotest.(check bool) "gate closed" false
    (Protocols.Dv_core.Trigger.gate_open env.trigger)

let test_trigger_second_flush_damped () =
  let env = make_gate 2 in
  Protocols.Dv_core.Trigger.request env.trigger;
  Protocols.Dv_core.Trigger.request env.trigger;
  Protocols.Dv_core.Trigger.request env.trigger;
  Dessim.Scheduler.run env.sched;
  (match List.rev !(env.flushes) with
  | [ first; second ] ->
    Alcotest.(check (float 0.)) "first" 0. first;
    if second < 1. || second > 5. then Alcotest.failf "damped flush at %f" second
  | l -> Alcotest.failf "expected 2 flushes, got %d" (List.length l));
  Alcotest.(check bool) "gate reopens eventually" true
    (Protocols.Dv_core.Trigger.gate_open env.trigger)

let test_trigger_no_spurious_flush () =
  let env = make_gate 3 in
  Protocols.Dv_core.Trigger.request env.trigger;
  (* No second request: the timer expiry must not flush again. *)
  Dessim.Scheduler.run env.sched;
  Alcotest.(check int) "one flush" 1 (List.length !(env.flushes))

let test_trigger_full_update_clears_pending () =
  let env = make_gate 4 in
  Protocols.Dv_core.Trigger.request env.trigger;
  Protocols.Dv_core.Trigger.request env.trigger;
  (* A periodic full-table update supersedes the pending triggered one. *)
  Protocols.Dv_core.Trigger.note_full_update_sent env.trigger;
  Dessim.Scheduler.run env.sched;
  Alcotest.(check int) "no damped flush" 1 (List.length !(env.flushes))

let test_trigger_reopens_after_quiet () =
  let env = make_gate 5 in
  Protocols.Dv_core.Trigger.request env.trigger;
  Dessim.Scheduler.run env.sched;
  (* Gate is open again; a new request flushes immediately at current time. *)
  let now = Dessim.Scheduler.now env.sched in
  Protocols.Dv_core.Trigger.request env.trigger;
  (match !(env.flushes) with
  | latest :: _ -> Alcotest.(check (float 1e-9)) "immediate" now latest
  | [] -> Alcotest.fail "no flush")

let test_trigger_spacing_respects_bounds () =
  let env = make_gate ~min_delay:2. ~max_delay:3. 6 in
  (* Keep requesting; every flush after the first must be 2-3 s after the
     previous one. *)
  let rec pump n =
    if n > 0 then begin
      Protocols.Dv_core.Trigger.request env.trigger;
      ignore
        (Dessim.Scheduler.after env.sched ~delay:0.5 (fun () -> pump (n - 1)))
    end
  in
  pump 20;
  Dessim.Scheduler.run env.sched;
  let times = List.rev !(env.flushes) in
  let rec check_gaps = function
    | a :: (b :: _ as rest) ->
      let gap = b -. a in
      if gap < 2. || gap > 3. then Alcotest.failf "gap %f out of bounds" gap;
      check_gaps rest
    | [ _ ] | [] -> ()
  in
  Alcotest.(check bool) "several flushes" true (List.length times >= 3);
  check_gaps times

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dv_core"
    [
      ( "wire format",
        [
          Alcotest.test_case "rfc defaults" `Quick test_defaults_match_rfc;
          Alcotest.test_case "chunk empty" `Quick test_chunk_empty;
          Alcotest.test_case "chunk small" `Quick test_chunk_small;
          Alcotest.test_case "chunk boundaries" `Quick test_chunk_boundaries;
          Alcotest.test_case "chunk order" `Quick test_chunk_preserves_order;
          Alcotest.test_case "message size" `Quick test_message_size;
          Alcotest.test_case "jittered period" `Quick test_jittered_period_bounds;
        ]
        @ qsuite [ prop_chunk_flatten_identity ] );
      ( "trigger gate",
        [
          Alcotest.test_case "first immediate" `Quick test_trigger_first_flush_immediate;
          Alcotest.test_case "second damped" `Quick test_trigger_second_flush_damped;
          Alcotest.test_case "no spurious flush" `Quick test_trigger_no_spurious_flush;
          Alcotest.test_case "full update clears" `Quick
            test_trigger_full_update_clears_pending;
          Alcotest.test_case "reopens after quiet" `Quick test_trigger_reopens_after_quiet;
          Alcotest.test_case "spacing bounds" `Quick test_trigger_spacing_respects_bounds;
        ] );
    ]
