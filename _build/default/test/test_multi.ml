(* Tests for the multi-flow / multi-failure generalization (the paper's
   Section 6 future work). *)

let quick = Convergence.Config.quick

module R = Convergence.Runner.Make (Protocols.Dbf)

let dbf = Protocols.Dbf.default_config

let flows n = List.init n (fun _ -> Convergence.Runner.default_flow)

let one_failure ?(at = quick.Convergence.Config.failure_time) ?(flow = 0) () =
  { Convergence.Runner.fail_at = at; target = Convergence.Runner.Flow_path flow; heal_after = None }

let test_three_flows_all_deliver () =
  let m = R.run_multi ~flows:(flows 3) ~failures:[ one_failure () ] quick dbf in
  Alcotest.(check int) "three flows" 3 (List.length m.Convergence.Metrics.m_flows);
  List.iter
    (fun f ->
      Alcotest.(check bool) "sent packets" true (f.Convergence.Metrics.f_sent > 0);
      let ratio = Convergence.Metrics.flow_delivery_ratio f in
      if ratio < 0.9 then
        Alcotest.failf "flow %d->%d delivered only %.1f%%"
          f.Convergence.Metrics.f_src f.Convergence.Metrics.f_dst (100. *. ratio))
    m.Convergence.Metrics.m_flows

let test_flow_conservation () =
  let m = R.run_multi ~flows:(flows 4) ~failures:[ one_failure () ] quick dbf in
  List.iter
    (fun f ->
      let accounted =
        f.Convergence.Metrics.f_delivered + Convergence.Metrics.flow_total_drops f
      in
      let residue = f.Convergence.Metrics.f_sent - accounted in
      if residue < 0 then Alcotest.failf "negative in-flight %d" residue;
      if residue > 10 then Alcotest.failf "%d packets unaccounted" residue)
    m.Convergence.Metrics.m_flows

let test_two_overlapping_failures () =
  let failures =
    [ one_failure ~flow:0 (); one_failure ~at:(quick.Convergence.Config.failure_time +. 5.) ~flow:1 () ]
  in
  let m = R.run_multi ~flows:(flows 2) ~failures quick dbf in
  Alcotest.(check int) "two failed links" 2
    (List.length m.Convergence.Metrics.m_failed_links);
  (* Distinct links must have failed. *)
  (match m.Convergence.Metrics.m_failed_links with
  | [ a; b ] -> Alcotest.(check bool) "distinct" true (a <> b)
  | _ -> Alcotest.fail "expected two links");
  (* A 5x5 degree-4 mesh minus two links is still connected with very high
     probability; both flows must end with a working path. *)
  List.iter
    (fun f ->
      Alcotest.(check bool) "final path works" true
        f.Convergence.Metrics.f_final_path_complete)
    m.Convergence.Metrics.m_flows

let test_pinned_and_random_failures () =
  let failures =
    [
      { Convergence.Runner.fail_at = quick.Convergence.Config.failure_time;
        target = Convergence.Runner.Link (0, 1);
        heal_after = None };
      { Convergence.Runner.fail_at = quick.Convergence.Config.failure_time +. 10.;
        target = Convergence.Runner.Random_link;
        heal_after = None };
    ]
  in
  let m = R.run_multi ~flows:(flows 1) ~failures quick dbf in
  match m.Convergence.Metrics.m_failed_links with
  | [ (0, 1); other ] -> Alcotest.(check bool) "other link" true (other <> (0, 1))
  | l -> Alcotest.failf "unexpected failed links (%d)" (List.length l)

let test_nonexistent_pinned_link_rejected () =
  let failures =
    [
      { Convergence.Runner.fail_at = quick.Convergence.Config.failure_time;
        target = Convergence.Runner.Link (0, 24);
        heal_after = None };
    ]
  in
  (* The failure fires mid-simulation, so the error surfaces then. *)
  match R.run_multi ~flows:(flows 1) ~failures quick dbf with
  | (_ : Convergence.Metrics.multi) -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_flow_rate_and_start_respected () =
  let flow_fast =
    { Convergence.Runner.default_flow with flow_rate = Some 100. }
  in
  let flow_late =
    {
      Convergence.Runner.default_flow with
      flow_rate = Some 50.;
      flow_start = Some (quick.Convergence.Config.traffic_start +. 50.);
    }
  in
  let m = R.run_multi ~flows:[ flow_fast; flow_late ] ~failures:[] quick dbf in
  match m.Convergence.Metrics.m_flows with
  | [ fast; late ] ->
    let duration = quick.Convergence.Config.sim_end -. quick.Convergence.Config.traffic_start in
    Alcotest.(check bool) "fast flow ~100 pps" true
      (abs_float (float_of_int fast.Convergence.Metrics.f_sent -. (100. *. duration)) < 3.);
    Alcotest.(check bool) "late flow sent less" true
      (late.Convergence.Metrics.f_sent < fast.Convergence.Metrics.f_sent / 2)
  | _ -> Alcotest.fail "expected two flows"

let test_no_failures_means_no_convergence_metrics () =
  let m = R.run_multi ~flows:(flows 2) ~failures:[] quick dbf in
  Alcotest.(check (float 0.)) "routing conv 0" 0.
    m.Convergence.Metrics.m_routing_convergence;
  List.iter
    (fun f ->
      Alcotest.(check (float 0.)) "fwd conv 0" 0. f.Convergence.Metrics.f_fwd_convergence;
      Alcotest.(check int) "no drops" 0 (Convergence.Metrics.flow_total_drops f))
    m.Convergence.Metrics.m_flows

let test_pinned_flow_endpoints () =
  let flow =
    { Convergence.Runner.default_flow with flow_src = Some 2; flow_dst = Some 22 }
  in
  let m = R.run_multi ~flows:[ flow ] ~failures:[ one_failure () ] quick dbf in
  match m.Convergence.Metrics.m_flows with
  | [ f ] ->
    Alcotest.(check int) "src" 2 f.Convergence.Metrics.f_src;
    Alcotest.(check int) "dst" 22 f.Convergence.Metrics.f_dst
  | _ -> Alcotest.fail "one flow expected"

let test_empty_flows_rejected () =
  match R.run_multi ~flows:[] ~failures:[] quick dbf with
  | (_ : Convergence.Metrics.multi) -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_failure_flow_index_validated () =
  let failures = [ one_failure ~flow:7 () ] in
  match R.run_multi ~flows:(flows 2) ~failures quick dbf with
  | (_ : Convergence.Metrics.multi) -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_run_of_multi_requires_one_flow () =
  let m = R.run_multi ~flows:(flows 2) ~failures:[] quick dbf in
  match Convergence.Metrics.run_of_multi m with
  | (_ : Convergence.Metrics.run) -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ()

let test_multi_determinism () =
  let failures =
    [ one_failure ~flow:0 (); one_failure ~at:(quick.Convergence.Config.failure_time +. 3.) ~flow:1 () ]
  in
  let key (m : Convergence.Metrics.multi) =
    ( Convergence.Metrics.multi_sent m,
      Convergence.Metrics.multi_delivered m,
      m.Convergence.Metrics.m_failed_links,
      m.Convergence.Metrics.m_routing_convergence )
  in
  let a = R.run_multi ~flows:(flows 2) ~failures quick dbf in
  let b = R.run_multi ~flows:(flows 2) ~failures quick dbf in
  Alcotest.(check bool) "same outcome" true (key a = key b)

let test_pp_multi_smoke () =
  let m = R.run_multi ~flows:(flows 2) ~failures:[ one_failure () ] quick dbf in
  let s = Fmt.str "%a" Convergence.Metrics.pp_multi m in
  Alcotest.(check bool) "mentions flows" true (Astring_contains.contains s "2 flows");
  Alcotest.(check bool) "mentions protocol" true (Astring_contains.contains s "DBF")

let test_multi_failure_study_shape () =
  let sweep =
    Convergence.Experiments.{ degrees = [ 4 ]; runs = 2; base = quick }
  in
  let result =
    Convergence.Experiments.multi_failure_study sweep ~flows:2 ~failures:2
      ~gap:5.
      Convergence.Engine_registry.[ dbf ]
  in
  match result with
  | [ ("DBF", [ cell ]) ] ->
    Alcotest.(check int) "degree" 4 cell.Convergence.Experiments.mc_degree;
    Alcotest.(check bool) "delivery sane" true
      (cell.Convergence.Experiments.mc_delivery_ratio > 0.5
      && cell.Convergence.Experiments.mc_delivery_ratio <= 1.)
  | _ -> Alcotest.fail "unexpected shape"

let test_rip_multi_failures_hurt_more_than_dbf () =
  (* Under two overlapping failures, RIP's delivery deficit dwarfs DBF's. *)
  let failures cfg =
    [
      { Convergence.Runner.fail_at = cfg.Convergence.Config.failure_time;
        target = Convergence.Runner.Flow_path 0; heal_after = None };
      { Convergence.Runner.fail_at = cfg.Convergence.Config.failure_time +. 5.;
        target = Convergence.Runner.Flow_path 1; heal_after = None };
    ]
  in
  let deliver engine =
    let m =
      Convergence.Engine_registry.run_multi ~flows:(flows 2)
        ~failures:(failures quick) quick engine
    in
    float_of_int (Convergence.Metrics.multi_delivered m)
    /. float_of_int (Convergence.Metrics.multi_sent m)
  in
  let rip = deliver Convergence.Engine_registry.rip in
  let dbf = deliver Convergence.Engine_registry.dbf in
  Alcotest.(check bool)
    (Printf.sprintf "dbf (%.3f) beats rip (%.3f)" dbf rip)
    true (dbf > rip)

let () =
  Alcotest.run "multi"
    [
      ( "flows",
        [
          Alcotest.test_case "three flows deliver" `Quick test_three_flows_all_deliver;
          Alcotest.test_case "conservation" `Quick test_flow_conservation;
          Alcotest.test_case "rate/start respected" `Quick test_flow_rate_and_start_respected;
          Alcotest.test_case "pinned endpoints" `Quick test_pinned_flow_endpoints;
          Alcotest.test_case "empty rejected" `Quick test_empty_flows_rejected;
        ] );
      ( "failures",
        [
          Alcotest.test_case "overlapping" `Quick test_two_overlapping_failures;
          Alcotest.test_case "pinned and random" `Quick test_pinned_and_random_failures;
          Alcotest.test_case "nonexistent link" `Quick test_nonexistent_pinned_link_rejected;
          Alcotest.test_case "bad flow index" `Quick test_failure_flow_index_validated;
          Alcotest.test_case "no failures" `Quick test_no_failures_means_no_convergence_metrics;
        ] );
      ( "outcome",
        [
          Alcotest.test_case "run_of_multi one flow" `Quick test_run_of_multi_requires_one_flow;
          Alcotest.test_case "determinism" `Quick test_multi_determinism;
          Alcotest.test_case "pp smoke" `Quick test_pp_multi_smoke;
          Alcotest.test_case "study shape" `Quick test_multi_failure_study_shape;
          Alcotest.test_case "rip hurts more" `Quick test_rip_multi_failures_hurt_more_than_dbf;
        ] );
    ]
