(* Tests for the network substrate: packets, the link model, topologies, the
   regular-mesh family, and random topologies. *)

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Packet ---------- *)

let mk_packet ?(ttl = 16) () =
  Netsim.Packet.create ~id:1 ~src:0 ~dst:9 ~size_bits:800 ~ttl ~sent_at:0.

let test_packet_visits () =
  let p = mk_packet () in
  Alcotest.(check int) "no hops yet" 0 (Netsim.Packet.hop_count p);
  Netsim.Packet.visit p 0;
  Netsim.Packet.visit p 3;
  Netsim.Packet.visit p 9;
  Alcotest.(check int) "two hops" 2 (Netsim.Packet.hop_count p);
  Alcotest.(check (list int)) "path order" [ 0; 3; 9 ] (Netsim.Packet.path p)

let test_packet_loop_detection () =
  let p = mk_packet () in
  List.iter (Netsim.Packet.visit p) [ 0; 3; 5 ];
  Alcotest.(check bool) "no loop" false (Netsim.Packet.looped p);
  Netsim.Packet.visit p 3;
  Alcotest.(check bool) "loop" true (Netsim.Packet.looped p)

(* ---------- Link ---------- *)

type 'a outcome = Delivered of 'a * float | Dropped of 'a * Netsim.Types.drop_reason * float

let make_link ?(bandwidth = 1e6) ?(prop = 0.01) ?(capacity = 2) sched log =
  Netsim.Link.create ~sched ~bandwidth_bps:bandwidth ~prop_delay:prop
    ~queue_capacity:capacity
    ~deliver:(fun x -> log := Delivered (x, Dessim.Scheduler.now sched) :: !log)
    ~dropped:(fun x r -> log := Dropped (x, r, Dessim.Scheduler.now sched) :: !log)
    ()

let test_link_delivery_time () =
  let sched = Dessim.Scheduler.create () in
  let log = ref [] in
  let l = make_link sched log in
  (* 8000 bits at 1 Mbps = 8 ms transmission + 10 ms propagation. *)
  (match Netsim.Link.send l ~size_bits:8000 "p" with
  | Netsim.Link.Sent -> ()
  | Netsim.Link.Rejected _ -> Alcotest.fail "rejected");
  Dessim.Scheduler.run sched;
  match !log with
  | [ Delivered ("p", t) ] -> check_float "arrival" 0.018 t
  | _ -> Alcotest.fail "expected one delivery"

let test_link_serialization () =
  let sched = Dessim.Scheduler.create () in
  let log = ref [] in
  let l = make_link ~capacity:10 sched log in
  (* Two back-to-back packets: the second waits for the first's transmission
     (store-and-forward), so arrivals are 8 ms apart. *)
  ignore (Netsim.Link.send l ~size_bits:8000 "a");
  ignore (Netsim.Link.send l ~size_bits:8000 "b");
  check_float "busy until" 0.016 (Netsim.Link.utilization_busy_until l);
  Dessim.Scheduler.run sched;
  match List.rev !log with
  | [ Delivered ("a", ta); Delivered ("b", tb) ] ->
    check_float "first" 0.018 ta;
    check_float "second" 0.026 tb
  | _ -> Alcotest.fail "expected two deliveries in order"

let test_link_queue_overflow () =
  let sched = Dessim.Scheduler.create () in
  let log = ref [] in
  let l = make_link ~capacity:2 sched log in
  ignore (Netsim.Link.send l ~size_bits:8000 "a");
  ignore (Netsim.Link.send l ~size_bits:8000 "b");
  (match Netsim.Link.send l ~size_bits:8000 "c" with
  | Netsim.Link.Rejected Netsim.Types.Queue_overflow -> ()
  | Netsim.Link.Rejected _ | Netsim.Link.Sent -> Alcotest.fail "expected overflow");
  Alcotest.(check int) "queue len" 2 (Netsim.Link.queue_length l);
  Dessim.Scheduler.run sched;
  let delivered = List.filter (function Delivered _ -> true | _ -> false) !log in
  Alcotest.(check int) "two delivered" 2 (List.length delivered)

let test_link_reliable_bypasses_capacity () =
  let sched = Dessim.Scheduler.create () in
  let log = ref [] in
  let l = make_link ~capacity:1 sched log in
  ignore (Netsim.Link.send l ~size_bits:8000 "a");
  (match Netsim.Link.send l ~reliable:true ~size_bits:8000 "ctrl" with
  | Netsim.Link.Sent -> ()
  | Netsim.Link.Rejected _ -> Alcotest.fail "reliable send rejected");
  Dessim.Scheduler.run sched;
  let delivered = List.filter (function Delivered _ -> true | _ -> false) !log in
  Alcotest.(check int) "both delivered" 2 (List.length delivered)

let test_link_fail_drops_everything () =
  let sched = Dessim.Scheduler.create () in
  let log = ref [] in
  let l = make_link ~capacity:10 sched log in
  ignore (Netsim.Link.send l ~size_bits:8000 "a");
  ignore (Netsim.Link.send l ~size_bits:8000 "b");
  Netsim.Link.fail l;
  Alcotest.(check bool) "down" false (Netsim.Link.is_up l);
  (match Netsim.Link.send l ~size_bits:8000 "c" with
  | Netsim.Link.Rejected Netsim.Types.Link_down -> ()
  | Netsim.Link.Rejected _ | Netsim.Link.Sent -> Alcotest.fail "expected link-down");
  Dessim.Scheduler.run sched;
  let delivered = List.filter (function Delivered _ -> true | _ -> false) !log in
  let drops =
    List.filter (function Dropped (_, Netsim.Types.Link_down, _) -> true | _ -> false) !log
  in
  Alcotest.(check int) "none delivered" 0 (List.length delivered);
  Alcotest.(check int) "three dropped" 3 (List.length drops)

let test_link_fail_drops_in_flight () =
  let sched = Dessim.Scheduler.create () in
  let log = ref [] in
  let l = make_link ~capacity:10 sched log in
  ignore (Netsim.Link.send l ~size_bits:8000 "a");
  (* Fail mid-propagation: after transmission (8 ms) but before arrival (18 ms). *)
  ignore (Dessim.Scheduler.schedule sched ~at:0.012 (fun () -> Netsim.Link.fail l));
  Dessim.Scheduler.run sched;
  (match !log with
  | [ Dropped ("a", Netsim.Types.Link_down, t) ] -> check_float "drop time" 0.012 t
  | _ -> Alcotest.fail "expected in-flight drop at failure time");
  Alcotest.(check int) "nothing in flight" 0 (Netsim.Link.in_flight l)

let test_link_restore () =
  let sched = Dessim.Scheduler.create () in
  let log = ref [] in
  let l = make_link sched log in
  Netsim.Link.fail l;
  Netsim.Link.restore l;
  Alcotest.(check bool) "up again" true (Netsim.Link.is_up l);
  (match Netsim.Link.send l ~size_bits:8000 "x" with
  | Netsim.Link.Sent -> ()
  | Netsim.Link.Rejected _ -> Alcotest.fail "send after restore");
  Dessim.Scheduler.run sched;
  Alcotest.(check int) "delivered" 1 (List.length !log)

let test_link_fail_idempotent () =
  let sched = Dessim.Scheduler.create () in
  let log = ref [] in
  let l = make_link sched log in
  ignore (Netsim.Link.send l ~size_bits:8000 "a");
  Netsim.Link.fail l;
  Netsim.Link.fail l;
  Alcotest.(check int) "dropped once" 1 (List.length !log)

let test_link_rejects_bad_args () =
  let sched = Dessim.Scheduler.create () in
  let mk ~bw ~prop ~cap () =
    ignore
      (Netsim.Link.create ~sched ~bandwidth_bps:bw ~prop_delay:prop
         ~queue_capacity:cap
         ~deliver:(fun (_ : int) -> ())
         ~dropped:(fun _ _ -> ())
         ())
  in
  Alcotest.check_raises "bandwidth" (Invalid_argument "Link.create: bandwidth")
    (mk ~bw:0. ~prop:0.01 ~cap:1);
  Alcotest.check_raises "prop" (Invalid_argument "Link.create: prop_delay")
    (mk ~bw:1e6 ~prop:(-0.1) ~cap:1);
  Alcotest.check_raises "capacity" (Invalid_argument "Link.create: queue_capacity")
    (mk ~bw:1e6 ~prop:0.01 ~cap:0)

(* ---------- Topology ---------- *)

let line n =
  Netsim.Topology.create ~nodes:n ~edges:(List.init (n - 1) (fun i -> (i, i + 1)))

let test_topology_basics () =
  let t = Netsim.Topology.create ~nodes:4 ~edges:[ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  Alcotest.(check int) "nodes" 4 (Netsim.Topology.node_count t);
  Alcotest.(check int) "edges" 4 (Netsim.Topology.edge_count t);
  Alcotest.(check (list int)) "neighbors" [ 0; 2 ] (Netsim.Topology.neighbors t 1);
  Alcotest.(check bool) "has edge" true (Netsim.Topology.has_edge t 3 0);
  Alcotest.(check bool) "no edge" false (Netsim.Topology.has_edge t 0 2);
  Alcotest.(check int) "degree" 2 (Netsim.Topology.degree t 0)

let test_topology_dedup_and_validation () =
  let t = Netsim.Topology.create ~nodes:3 ~edges:[ (0, 1); (1, 0); (0, 1) ] in
  Alcotest.(check int) "dedup" 1 (Netsim.Topology.edge_count t);
  Alcotest.check_raises "self loop" (Invalid_argument "Topology.create: self-loop")
    (fun () -> ignore (Netsim.Topology.create ~nodes:3 ~edges:[ (1, 1) ]));
  Alcotest.check_raises "range" (Invalid_argument "Topology.create: node 5 out of range")
    (fun () -> ignore (Netsim.Topology.create ~nodes:3 ~edges:[ (0, 5) ]))

let test_topology_bfs () =
  let t = line 5 in
  let d = Netsim.Topology.bfs_distances t 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 4 |] d

let test_topology_shortest_path () =
  let t = Netsim.Topology.create ~nodes:5 ~edges:[ (0, 1); (1, 4); (0, 2); (2, 3); (3, 4) ] in
  (match Netsim.Topology.shortest_path t 0 4 with
  | Some p -> Alcotest.(check (list int)) "short way" [ 0; 1; 4 ] p
  | None -> Alcotest.fail "path expected");
  let disconnected = Netsim.Topology.create ~nodes:3 ~edges:[ (0, 1) ] in
  Alcotest.(check bool) "no path" true
    (Netsim.Topology.shortest_path disconnected 0 2 = None)

let test_topology_connectivity () =
  Alcotest.(check bool) "line connected" true (Netsim.Topology.is_connected (line 6));
  let split = Netsim.Topology.create ~nodes:4 ~edges:[ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "split" false (Netsim.Topology.is_connected split);
  match Netsim.Topology.components split with
  | [ [ 0; 1 ]; [ 2; 3 ] ] -> ()
  | _ -> Alcotest.fail "components"

let test_topology_remove_add_edge () =
  let t = line 3 in
  let t' = Netsim.Topology.remove_edge t 0 1 in
  Alcotest.(check bool) "removed" false (Netsim.Topology.has_edge t' 0 1);
  Alcotest.(check bool) "original intact" true (Netsim.Topology.has_edge t 0 1);
  let t'' = Netsim.Topology.add_edge t' 0 2 in
  Alcotest.(check bool) "added" true (Netsim.Topology.has_edge t'' 0 2)

let test_topology_diameter_avg () =
  let t = line 4 in
  Alcotest.(check int) "diameter" 3 (Netsim.Topology.diameter t);
  (* Pairs at distance: 1 x6? line 0-1-2-3: dists 1,2,3,1,2,1 -> mean 10/6 both ways. *)
  check_float "avg path" (10. /. 6.) (Netsim.Topology.average_path_length t)

let test_topology_dijkstra_unit_matches_bfs () =
  let t = Netsim.Mesh.generate ~rows:5 ~cols:5 ~degree:4 in
  let dist, _ = Netsim.Topology.dijkstra t ~cost:(fun _ _ -> 1.) 0 in
  let bfs = Netsim.Topology.bfs_distances t 0 in
  Array.iteri
    (fun i d -> Alcotest.(check (float 1e-9)) (Printf.sprintf "node %d" i)
        (float_of_int bfs.(i)) d)
    dist

let test_topology_dijkstra_weighted () =
  (* 0-1 cost 10; 0-2-1 cost 2+3: prefer the two-hop route. *)
  let t = Netsim.Topology.create ~nodes:3 ~edges:[ (0, 1); (0, 2); (2, 1) ] in
  let cost u v =
    match (min u v, max u v) with
    | 0, 1 -> 10.
    | 0, 2 -> 2.
    | 1, 2 -> 3.
    | _ -> assert false
  in
  let dist, parent = Netsim.Topology.dijkstra t ~cost 0 in
  check_float "dist to 1" 5. dist.(1);
  Alcotest.(check (option int)) "parent of 1" (Some 2) parent.(1)

let prop_dijkstra_equals_bfs_on_random =
  QCheck.Test.make ~name:"dijkstra(unit) = bfs on random graphs" ~count:50
    QCheck.(pair small_nat small_nat)
    (fun (seed, extra) ->
      let rng = Dessim.Rng.create (seed + 1) in
      let nodes = 8 + (extra mod 10) in
      let t = Netsim.Random_topo.erdos_renyi rng ~nodes ~p:0.3 in
      let dist, _ = Netsim.Topology.dijkstra t ~cost:(fun _ _ -> 1.) 0 in
      let bfs = Netsim.Topology.bfs_distances t 0 in
      Array.for_all Fun.id
        (Array.mapi
           (fun i d ->
             if bfs.(i) = max_int then d = infinity else d = float_of_int bfs.(i))
           dist))

(* ---------- Mesh ---------- *)

let test_mesh_degree_4_is_grid () =
  let t = Netsim.Mesh.generate ~rows:4 ~cols:4 ~degree:4 in
  Alcotest.(check int) "nodes" 16 (Netsim.Topology.node_count t);
  (* Grid edges: 4 rows x 3 + 4 cols x 3 = 24. *)
  Alcotest.(check int) "edges" 24 (Netsim.Topology.edge_count t);
  Alcotest.(check (list int)) "center neighbors" [ 1; 4; 6; 9 ]
    (Netsim.Topology.neighbors t 5)

let test_mesh_interior_regularity () =
  List.iter
    (fun degree ->
      let rows = 7 and cols = 7 in
      let t = Netsim.Mesh.generate ~rows ~cols ~degree in
      let interior = Netsim.Mesh.interior_nodes ~rows ~cols ~degree in
      Alcotest.(check bool) "has interior nodes" true (interior <> []);
      List.iter
        (fun n ->
          Alcotest.(check int)
            (Printf.sprintf "degree %d node %d" degree n)
            degree (Netsim.Topology.degree t n))
        interior)
    [ 3; 4; 5; 6; 7; 8 ]

let test_mesh_connected_all_degrees () =
  List.iter
    (fun degree ->
      let t = Netsim.Mesh.generate ~rows:7 ~cols:7 ~degree in
      Alcotest.(check bool)
        (Printf.sprintf "degree %d connected" degree)
        true (Netsim.Topology.is_connected t))
    [ 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]

let test_mesh_deterministic () =
  let a = Netsim.Mesh.generate ~rows:6 ~cols:5 ~degree:5 in
  let b = Netsim.Mesh.generate ~rows:6 ~cols:5 ~degree:5 in
  Alcotest.(check bool) "same edges" true
    (Netsim.Topology.edges a = Netsim.Topology.edges b)

let test_mesh_rows_cols_ids () =
  Alcotest.(check int) "node_of" 17 (Netsim.Mesh.node_of ~cols:7 ~row:2 ~col:3);
  Alcotest.(check (list int)) "first row" [ 0; 1; 2 ]
    (Netsim.Mesh.first_row ~rows:3 ~cols:3);
  Alcotest.(check (list int)) "last row" [ 6; 7; 8 ]
    (Netsim.Mesh.last_row ~rows:3 ~cols:3)

let test_mesh_denser_shortens_paths () =
  let avg d =
    Netsim.Topology.average_path_length (Netsim.Mesh.generate ~rows:7 ~cols:7 ~degree:d)
  in
  Alcotest.(check bool) "3 > 4" true (avg 3 > avg 4);
  Alcotest.(check bool) "4 > 6" true (avg 4 > avg 6);
  Alcotest.(check bool) "6 > 8" true (avg 6 > avg 8)

let test_mesh_rejects_bad_args () =
  Alcotest.check_raises "too small" (Invalid_argument "Mesh.generate: need at least 3x3")
    (fun () -> ignore (Netsim.Mesh.generate ~rows:2 ~cols:5 ~degree:4));
  Alcotest.check_raises "degree too low"
    (Invalid_argument "Mesh.generate: degree 2 outside [3, 12]") (fun () ->
      ignore (Netsim.Mesh.generate ~rows:5 ~cols:5 ~degree:2))

let test_torus_every_node_regular () =
  List.iter
    (fun degree ->
      let t = Netsim.Mesh.generate_torus ~rows:6 ~cols:7 ~degree in
      for n = 0 to Netsim.Topology.node_count t - 1 do
        Alcotest.(check int)
          (Printf.sprintf "torus degree %d node %d" degree n)
          degree (Netsim.Topology.degree t n)
      done;
      Alcotest.(check bool) "connected" true (Netsim.Topology.is_connected t))
    [ 3; 4; 5; 6; 7; 8 ]

let test_torus_shrinks_diameter () =
  let flat = Netsim.Mesh.generate ~rows:7 ~cols:7 ~degree:4 in
  let torus = Netsim.Mesh.generate_torus ~rows:7 ~cols:7 ~degree:4 in
  Alcotest.(check bool) "smaller diameter" true
    (Netsim.Topology.diameter torus < Netsim.Topology.diameter flat)

let test_torus_validation () =
  Alcotest.check_raises "too small" (Invalid_argument "Mesh.generate: a torus needs at least 5x5")
    (fun () -> ignore (Netsim.Mesh.generate_torus ~rows:4 ~cols:7 ~degree:4));
  Alcotest.check_raises "odd degree odd rows"
    (Invalid_argument "Mesh.generate: an odd-degree torus needs an even row count")
    (fun () -> ignore (Netsim.Mesh.generate_torus ~rows:7 ~cols:6 ~degree:5))

(* ---------- Classic topologies ---------- *)

let test_classic_shapes () =
  let line = Netsim.Classic.line 5 in
  Alcotest.(check int) "line edges" 4 (Netsim.Topology.edge_count line);
  Alcotest.(check int) "line diameter" 4 (Netsim.Topology.diameter line);
  let ring = Netsim.Classic.ring 6 in
  Alcotest.(check int) "ring edges" 6 (Netsim.Topology.edge_count ring);
  Alcotest.(check int) "ring diameter" 3 (Netsim.Topology.diameter ring);
  let star = Netsim.Classic.star 7 in
  Alcotest.(check int) "star center degree" 6 (Netsim.Topology.degree star 0);
  Alcotest.(check int) "star diameter" 2 (Netsim.Topology.diameter star);
  let k5 = Netsim.Classic.complete 5 in
  Alcotest.(check int) "k5 edges" 10 (Netsim.Topology.edge_count k5);
  Alcotest.(check int) "k5 diameter" 1 (Netsim.Topology.diameter k5);
  let tree = Netsim.Classic.binary_tree ~depth:3 in
  Alcotest.(check int) "tree nodes" 15 (Netsim.Topology.node_count tree);
  Alcotest.(check int) "tree edges" 14 (Netsim.Topology.edge_count tree);
  Alcotest.(check bool) "tree connected" true (Netsim.Topology.is_connected tree)

let test_classic_validation () =
  Alcotest.check_raises "line" (Invalid_argument "Classic.line: need at least 2 nodes")
    (fun () -> ignore (Netsim.Classic.line 1));
  Alcotest.check_raises "ring" (Invalid_argument "Classic.ring: need at least 3 nodes")
    (fun () -> ignore (Netsim.Classic.ring 2))

let prop_mesh_interior_regular =
  QCheck.Test.make ~name:"mesh interior degree = requested" ~count:60
    QCheck.(triple (3 -- 10) (5 -- 9) (5 -- 9))
    (fun (degree, rows, cols) ->
      let t = Netsim.Mesh.generate ~rows ~cols ~degree in
      let interior = Netsim.Mesh.interior_nodes ~rows ~cols ~degree in
      List.for_all (fun n -> Netsim.Topology.degree t n = degree) interior)

(* ---------- Random topologies ---------- *)

let test_erdos_renyi_connected () =
  let rng = Dessim.Rng.create 5 in
  for _ = 1 to 10 do
    let t = Netsim.Random_topo.erdos_renyi rng ~nodes:20 ~p:0.05 in
    Alcotest.(check bool) "connected" true (Netsim.Topology.is_connected t)
  done

let test_waxman_connected () =
  let rng = Dessim.Rng.create 6 in
  for _ = 1 to 10 do
    let t = Netsim.Random_topo.waxman rng ~nodes:25 ~alpha:0.4 ~beta:0.2 in
    Alcotest.(check bool) "connected" true (Netsim.Topology.is_connected t);
    Alcotest.(check int) "nodes" 25 (Netsim.Topology.node_count t)
  done

let test_ensure_connected () =
  let rng = Dessim.Rng.create 7 in
  let split = Netsim.Topology.create ~nodes:6 ~edges:[ (0, 1); (2, 3); (4, 5) ] in
  let fixed = Netsim.Random_topo.ensure_connected rng split in
  Alcotest.(check bool) "connected" true (Netsim.Topology.is_connected fixed)

(* ---------- Dot ---------- *)

let test_dot_output () =
  let t = line 3 in
  let dot = Netsim.Dot.to_dot ~highlight:[ (1, 2) ] t in
  Alcotest.(check bool) "graph header" true
    (String.length dot > 0 && String.sub dot 0 5 = "graph");
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "edge listed" true (contains dot "0 -- 1");
  Alcotest.(check bool) "highlight" true (contains dot "1 -- 2 [color=red");
  match Netsim.Dot.degree_histogram t with
  | [ (1, 2); (2, 1) ] -> ()
  | _ -> Alcotest.fail "histogram"

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "netsim"
    [
      ( "packet",
        [
          Alcotest.test_case "visits" `Quick test_packet_visits;
          Alcotest.test_case "loop detection" `Quick test_packet_loop_detection;
        ] );
      ( "link",
        [
          Alcotest.test_case "delivery time" `Quick test_link_delivery_time;
          Alcotest.test_case "serialization" `Quick test_link_serialization;
          Alcotest.test_case "queue overflow" `Quick test_link_queue_overflow;
          Alcotest.test_case "reliable bypass" `Quick test_link_reliable_bypasses_capacity;
          Alcotest.test_case "fail drops all" `Quick test_link_fail_drops_everything;
          Alcotest.test_case "fail drops in-flight" `Quick test_link_fail_drops_in_flight;
          Alcotest.test_case "restore" `Quick test_link_restore;
          Alcotest.test_case "fail idempotent" `Quick test_link_fail_idempotent;
          Alcotest.test_case "bad args" `Quick test_link_rejects_bad_args;
        ] );
      ( "topology",
        [
          Alcotest.test_case "basics" `Quick test_topology_basics;
          Alcotest.test_case "dedup/validation" `Quick test_topology_dedup_and_validation;
          Alcotest.test_case "bfs" `Quick test_topology_bfs;
          Alcotest.test_case "shortest path" `Quick test_topology_shortest_path;
          Alcotest.test_case "connectivity" `Quick test_topology_connectivity;
          Alcotest.test_case "remove/add edge" `Quick test_topology_remove_add_edge;
          Alcotest.test_case "diameter/avg" `Quick test_topology_diameter_avg;
          Alcotest.test_case "dijkstra=bfs" `Quick test_topology_dijkstra_unit_matches_bfs;
          Alcotest.test_case "dijkstra weighted" `Quick test_topology_dijkstra_weighted;
        ]
        @ qsuite [ prop_dijkstra_equals_bfs_on_random ] );
      ( "mesh",
        [
          Alcotest.test_case "degree 4 grid" `Quick test_mesh_degree_4_is_grid;
          Alcotest.test_case "interior regularity" `Quick test_mesh_interior_regularity;
          Alcotest.test_case "connected all degrees" `Quick test_mesh_connected_all_degrees;
          Alcotest.test_case "deterministic" `Quick test_mesh_deterministic;
          Alcotest.test_case "ids and rows" `Quick test_mesh_rows_cols_ids;
          Alcotest.test_case "denser = shorter paths" `Quick test_mesh_denser_shortens_paths;
          Alcotest.test_case "bad args" `Quick test_mesh_rejects_bad_args;
          Alcotest.test_case "torus regular" `Quick test_torus_every_node_regular;
          Alcotest.test_case "torus diameter" `Quick test_torus_shrinks_diameter;
          Alcotest.test_case "torus validation" `Quick test_torus_validation;
        ]
        @ qsuite [ prop_mesh_interior_regular ] );
      ( "classic",
        [
          Alcotest.test_case "shapes" `Quick test_classic_shapes;
          Alcotest.test_case "validation" `Quick test_classic_validation;
        ] );
      ( "random-topo",
        [
          Alcotest.test_case "erdos-renyi connected" `Quick test_erdos_renyi_connected;
          Alcotest.test_case "waxman connected" `Quick test_waxman_connected;
          Alcotest.test_case "ensure_connected" `Quick test_ensure_connected;
        ] );
      ("dot", [ Alcotest.test_case "output" `Quick test_dot_output ]);
    ]
