test/proto_harness.ml: Alcotest Array Dessim List Netsim Protocols
