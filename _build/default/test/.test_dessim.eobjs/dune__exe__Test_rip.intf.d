test/test_rip.mli:
