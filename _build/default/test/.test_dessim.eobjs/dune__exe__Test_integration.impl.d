test/test_integration.ml: Alcotest Array Convergence Dessim List Netsim Protocols QCheck QCheck_alcotest
