test/test_netsim.ml: Alcotest Array Dessim Fun List Netsim Printf QCheck QCheck_alcotest String
