test/test_rip.ml: Alcotest Dessim List Netsim Printf Proto_harness Protocols QCheck QCheck_alcotest
