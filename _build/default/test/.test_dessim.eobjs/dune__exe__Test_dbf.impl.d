test/test_dbf.ml: Alcotest Dessim List Netsim Printf Proto_harness Protocols QCheck QCheck_alcotest
