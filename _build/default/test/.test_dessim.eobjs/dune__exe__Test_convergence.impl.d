test/test_convergence.ml: Alcotest Astring_contains Convergence Dessim Filename Fmt List Option String Sys
