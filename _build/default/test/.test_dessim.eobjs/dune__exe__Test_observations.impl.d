test/test_observations.ml: Alcotest Convergence Dessim Hashtbl List Printf
