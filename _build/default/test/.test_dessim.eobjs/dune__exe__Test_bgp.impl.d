test/test_bgp.ml: Alcotest Dessim List Netsim Proto_harness Protocols QCheck QCheck_alcotest
