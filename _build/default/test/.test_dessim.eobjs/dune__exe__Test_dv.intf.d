test/test_dv.mli:
