test/test_multi.ml: Alcotest Astring_contains Convergence Fmt List Printf Protocols
