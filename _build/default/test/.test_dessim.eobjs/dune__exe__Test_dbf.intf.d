test/test_dbf.mli:
