test/test_dv.ml: Alcotest Dessim Gen List Printf Protocols QCheck QCheck_alcotest
