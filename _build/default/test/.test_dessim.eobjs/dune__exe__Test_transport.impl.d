test/test_transport.ml: Alcotest Convergence Dessim List Printf Protocols
