test/test_dessim.ml: Alcotest Array Dessim Fun Gen List QCheck QCheck_alcotest
