(* RIP behavior tests on small topologies, via the message-level harness. *)

module H = Proto_harness.Make (Protocols.Rip)

let line n =
  Netsim.Topology.create ~nodes:n ~edges:(List.init (n - 1) (fun i -> (i, i + 1)))

let ring n =
  Netsim.Topology.create ~nodes:n
    ~edges:((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let converge ?(seed = 1) ?(until = 120.) topo =
  let net = H.make ~seed topo in
  H.start net;
  H.run net ~until;
  net

let test_line_converges () =
  let topo = line 4 in
  let net = converge topo in
  for dst = 0 to 3 do
    H.check_shortest_paths net ~dst
  done

let test_line_metrics () =
  let net = converge (line 4) in
  Alcotest.(check (option int)) "0->3" (Some 3) (H.metric net 0 ~dst:3);
  Alcotest.(check (option int)) "1->3" (Some 2) (H.metric net 1 ~dst:3);
  Alcotest.(check (option int)) "self metric" (Some 0) (H.metric net 2 ~dst:2)

let test_ring_converges_both_ways () =
  let net = converge (ring 6) in
  (* In a 6-ring, node 0's route to 3 is 3 hops either way; to 2 it must go
     clockwise via 1. *)
  Alcotest.(check (option int)) "0->2 metric" (Some 2) (H.metric net 0 ~dst:2);
  Alcotest.(check (option int)) "0->2 hop" (Some 1) (H.next_hop net 0 ~dst:2);
  Alcotest.(check (option int)) "0->5 hop" (Some 5) (H.next_hop net 0 ~dst:5)

let test_grid_converges () =
  let topo = Netsim.Mesh.generate ~rows:4 ~cols:4 ~degree:4 in
  let net = converge topo in
  for dst = 0 to 15 do
    H.check_shortest_paths net ~dst
  done

let test_failure_triggers_loss_then_periodic_recovery () =
  (* Line 0-1-2-3: when link (1,2) dies, 0 and 1 lose 2 and 3 entirely (no
     alternate path exists). *)
  let topo = line 4 in
  let net = converge topo in
  H.fail_link net 1 2;
  H.run net ~until:130.;
  Alcotest.(check (option int)) "1 lost 2" None (H.next_hop net 1 ~dst:2);
  Alcotest.(check (option int)) "1 lost 3" None (H.next_hop net 1 ~dst:3);
  H.run net ~until:300.;
  Alcotest.(check (option int)) "still lost" None (H.next_hop net 0 ~dst:3)

let converge_horizon = 200.

let test_failure_recovery_via_alternate () =
  (* Ring: 0-1-2-3-0. Kill (0,1): 0 reaches 1 the long way. RIP keeps no
     alternate so recovery takes up to a periodic cycle, but must happen. *)
  let net = converge (ring 4) in
  H.fail_link net 0 1;
  H.run net ~until:converge_horizon;
  Alcotest.(check (option int)) "0->1 via 3" (Some 3) (H.next_hop net 0 ~dst:1);
  Alcotest.(check (option int)) "metric 3" (Some 3) (H.metric net 0 ~dst:1);
  let after = Netsim.Topology.remove_edge (ring 4) 0 1 in
  for dst = 0 to 3 do
    H.check_shortest_paths ~topo':after net ~dst
  done

let test_no_route_during_switchover () =
  (* Immediately after the failure (before any update arrives), a RIP router
     that lost its next hop has no route at all: the switch-over period. *)
  let net = converge (ring 4) in
  H.fail_link net 0 1;
  (* No time has passed: the route must already be gone. *)
  Alcotest.(check (option int)) "gone instantly" None (H.next_hop net 0 ~dst:1)

let test_split_horizon_prevents_two_hop_loop () =
  (* Line 0-1-2: after (1,2) fails, node 0 must never offer node 1 a route
     back to 2 (poison reverse sends infinity), so 1 never points at 0. *)
  let net = converge (line 3) in
  H.fail_link net 1 2;
  H.run net ~until:400.;
  Alcotest.(check (option int)) "no bounce-back at 1" None (H.next_hop net 1 ~dst:2);
  Alcotest.(check (option int)) "0 lost too" None (H.next_hop net 0 ~dst:2)

let test_count_to_infinity_is_bounded () =
  (* Ring of 4 with one extra stub: kill both of node 3's links so it is
     unreachable; metrics must stop at infinity (16), i.e. routes disappear
     rather than counting forever. *)
  let net = converge (ring 4) in
  H.fail_link net 2 3;
  H.fail_link net 3 0;
  H.run net ~until:500.;
  for src = 0 to 2 do
    Alcotest.(check (option int))
      (Printf.sprintf "%d has no route to 3" src)
      None (H.next_hop net src ~dst:3)
  done

let test_link_up_reannounces () =
  let net = converge (ring 4) in
  H.fail_link net 0 1;
  H.run net ~until:250.;
  H.restore_link net 0 1;
  H.run net ~until:400.;
  Alcotest.(check (option int)) "direct route back" (Some 1) (H.next_hop net 0 ~dst:1);
  for dst = 0 to 3 do
    H.check_shortest_paths net ~dst
  done

let test_route_timeout_expires_stale_routes () =
  (* Drop all messages from node 1 by failing its links without notifying 1's
     neighbors... not expressible with the harness; instead verify that
     timeouts exist by checking that a partitioned node's routes vanish even
     without link-down notification to the far side. The harness drops
     messages on failed links but does notify both ends, so we emulate
     silence by failing the link and restoring only message flow later. *)
  let net = converge (line 3) in
  (* Sanity precondition for the timeout machinery: routes exist. *)
  Alcotest.(check bool) "has route" true (H.next_hop net 0 ~dst:2 <> None)

let test_messages_are_flowing () =
  let net = converge (line 3) ~until:65. in
  (* Two periodic cycles for 3 nodes with 2-4 link-endpoints each: there must
     be a healthy number of update messages. *)
  Alcotest.(check bool) "messages sent" true (H.messages net > 10)

let test_route_changes_reported () =
  let net = converge (ring 4) in
  let before = List.length (H.route_changes net) in
  H.fail_link net 0 1;
  H.run net ~until:300.;
  let after = List.length (H.route_changes net) in
  Alcotest.(check bool) "changes observed" true (after > before)

let test_start_twice_rejected () =
  let net = H.make ~seed:1 (line 3) in
  H.start net;
  Alcotest.check_raises "double start" (Invalid_argument "Rip.start: already started")
    (fun () -> Protocols.Rip.start (H.router net 0))

let prop_converges_on_random_connected_graphs =
  QCheck.Test.make ~name:"RIP converges to shortest paths on random graphs"
    ~count:20
    QCheck.(pair (1 -- 1000) (6 -- 12))
    (fun (seed, nodes) ->
      let rng = Dessim.Rng.create seed in
      let topo = Netsim.Random_topo.erdos_renyi rng ~nodes ~p:0.3 in
      let net = converge ~seed topo in
      try
        for dst = 0 to nodes - 1 do
          H.check_shortest_paths net ~dst
        done;
        true
      with _ -> false)

let prop_failure_then_reconverge =
  QCheck.Test.make
    ~name:"RIP reconverges to shortest paths after a random failure" ~count:10
    QCheck.(pair (1 -- 1000) (6 -- 10))
    (fun (seed, nodes) ->
      let rng = Dessim.Rng.create seed in
      let topo = Netsim.Random_topo.erdos_renyi rng ~nodes ~p:0.35 in
      let net = converge ~seed topo in
      let edges = Netsim.Topology.edges topo in
      let u, v = List.nth edges (Dessim.Rng.int rng (List.length edges)) in
      let after = Netsim.Topology.remove_edge topo u v in
      if Netsim.Topology.is_connected after then begin
        H.fail_link net u v;
        (* Two periodic cycles: RIP recovery can need a full 30 s round. *)
        H.run net ~until:400.;
        try
          for dst = 0 to nodes - 1 do
            H.check_shortest_paths ~topo':after net ~dst
          done;
          true
        with _ -> false
      end
      else true)

let () =
  Alcotest.run "rip"
    [
      ( "convergence",
        [
          Alcotest.test_case "line" `Quick test_line_converges;
          Alcotest.test_case "line metrics" `Quick test_line_metrics;
          Alcotest.test_case "ring" `Quick test_ring_converges_both_ways;
          Alcotest.test_case "grid" `Quick test_grid_converges;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_converges_on_random_connected_graphs; prop_failure_then_reconverge ] );
      ( "failure handling",
        [
          Alcotest.test_case "partition = loss" `Quick
            test_failure_triggers_loss_then_periodic_recovery;
          Alcotest.test_case "alternate recovery" `Quick
            test_failure_recovery_via_alternate;
          Alcotest.test_case "switch-over has no route" `Quick
            test_no_route_during_switchover;
          Alcotest.test_case "split horizon" `Quick
            test_split_horizon_prevents_two_hop_loop;
          Alcotest.test_case "count-to-infinity bounded" `Quick
            test_count_to_infinity_is_bounded;
          Alcotest.test_case "link up" `Quick test_link_up_reannounces;
          Alcotest.test_case "timeout sanity" `Quick
            test_route_timeout_expires_stale_routes;
        ] );
      ( "protocol mechanics",
        [
          Alcotest.test_case "messages flow" `Quick test_messages_are_flowing;
          Alcotest.test_case "route changes reported" `Quick test_route_changes_reported;
          Alcotest.test_case "double start" `Quick test_start_twice_rejected;
        ] );
    ]
