(* Tests for the discrete-event engine: heap ordering, scheduler semantics,
   RNG determinism, statistics, and time series. *)

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Heap ---------- *)

let test_heap_empty () =
  let h = Dessim.Heap.create () in
  Alcotest.(check bool) "empty" true (Dessim.Heap.is_empty h);
  Alcotest.(check int) "length" 0 (Dessim.Heap.length h);
  Alcotest.(check bool) "pop none" true (Dessim.Heap.pop h = None);
  Alcotest.(check bool) "min none" true (Dessim.Heap.min_elt h = None)

let test_heap_order () =
  let h = Dessim.Heap.create () in
  Dessim.Heap.add h ~time:3. ~seq:0 "c";
  Dessim.Heap.add h ~time:1. ~seq:1 "a";
  Dessim.Heap.add h ~time:2. ~seq:2 "b";
  let order = List.map (fun (_, _, x) -> x) (Dessim.Heap.to_sorted_list h) in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] order

let test_heap_fifo_ties () =
  let h = Dessim.Heap.create () in
  List.iteri (fun i x -> Dessim.Heap.add h ~time:5. ~seq:i x) [ "x"; "y"; "z" ];
  let order = List.map (fun (_, _, x) -> x) (Dessim.Heap.to_sorted_list h) in
  Alcotest.(check (list string)) "seq breaks ties" [ "x"; "y"; "z" ] order

let test_heap_min_does_not_remove () =
  let h = Dessim.Heap.create () in
  Dessim.Heap.add h ~time:1. ~seq:0 1;
  ignore (Dessim.Heap.min_elt h);
  Alcotest.(check int) "still there" 1 (Dessim.Heap.length h)

let test_heap_clear () =
  let h = Dessim.Heap.create () in
  for i = 0 to 99 do
    Dessim.Heap.add h ~time:(float_of_int i) ~seq:i i
  done;
  Dessim.Heap.clear h;
  Alcotest.(check int) "cleared" 0 (Dessim.Heap.length h)

let test_heap_interleaved () =
  let h = Dessim.Heap.create () in
  Dessim.Heap.add h ~time:10. ~seq:0 10;
  Dessim.Heap.add h ~time:5. ~seq:1 5;
  (match Dessim.Heap.pop h with
  | Some (t, _, 5) -> check_float "first pop" 5. t
  | _ -> Alcotest.fail "expected 5");
  Dessim.Heap.add h ~time:1. ~seq:2 1;
  (match Dessim.Heap.pop h with
  | Some (_, _, 1) -> ()
  | _ -> Alcotest.fail "expected 1");
  match Dessim.Heap.pop h with
  | Some (_, _, 10) -> ()
  | _ -> Alcotest.fail "expected 10"

let prop_heap_sorted =
  QCheck.Test.make ~name:"heap drains keys in nondecreasing order" ~count:200
    QCheck.(list (pair (float_bound_exclusive 1000.) small_nat))
    (fun pairs ->
      let h = Dessim.Heap.create () in
      List.iteri (fun i (t, _) -> Dessim.Heap.add h ~time:t ~seq:i i) pairs;
      let drained = Dessim.Heap.to_sorted_list h in
      let rec sorted = function
        | (t1, s1, _) :: ((t2, s2, _) :: _ as rest) ->
          (t1 < t2 || (t1 = t2 && s1 < s2)) && sorted rest
        | [ _ ] | [] -> true
      in
      List.length drained = List.length pairs && sorted drained)

let prop_heap_multiset =
  QCheck.Test.make ~name:"heap preserves payload multiset" ~count:200
    QCheck.(list (float_bound_exclusive 100.))
    (fun times ->
      let h = Dessim.Heap.create () in
      List.iteri (fun i t -> Dessim.Heap.add h ~time:t ~seq:i t) times;
      let out = List.map (fun (_, _, x) -> x) (Dessim.Heap.to_sorted_list h) in
      List.sort compare out = List.sort compare times)

(* ---------- Scheduler ---------- *)

let test_sched_runs_in_order () =
  let s = Dessim.Scheduler.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Dessim.Scheduler.schedule s ~at:2. (note "b"));
  ignore (Dessim.Scheduler.schedule s ~at:1. (note "a"));
  ignore (Dessim.Scheduler.schedule s ~at:3. (note "c"));
  Dessim.Scheduler.run s;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log)

let test_sched_fifo_same_time () =
  let s = Dessim.Scheduler.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Dessim.Scheduler.schedule s ~at:1. (fun () -> log := i :: !log))
  done;
  Dessim.Scheduler.run s;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !log)

let test_sched_clock_advances () =
  let s = Dessim.Scheduler.create () in
  let seen = ref 0. in
  ignore (Dessim.Scheduler.schedule s ~at:4.5 (fun () -> seen := Dessim.Scheduler.now s));
  Dessim.Scheduler.run s;
  check_float "clock at event" 4.5 !seen;
  check_float "clock after run" 4.5 (Dessim.Scheduler.now s)

let test_sched_past_rejected () =
  let s = Dessim.Scheduler.create () in
  ignore (Dessim.Scheduler.schedule s ~at:5. (fun () -> ()));
  Dessim.Scheduler.run s;
  Alcotest.check_raises "past" (Invalid_argument "Scheduler.schedule: at=1 is before now=5")
    (fun () -> ignore (Dessim.Scheduler.schedule s ~at:1. (fun () -> ())))

let test_sched_negative_delay_rejected () =
  let s = Dessim.Scheduler.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Scheduler.after: negative delay")
    (fun () -> ignore (Dessim.Scheduler.after s ~delay:(-1.) (fun () -> ())))

let test_sched_cancel () =
  let s = Dessim.Scheduler.create () in
  let fired = ref false in
  let h = Dessim.Scheduler.schedule s ~at:1. (fun () -> fired := true) in
  Dessim.Scheduler.cancel h;
  Alcotest.(check bool) "cancelled flag" true (Dessim.Scheduler.is_cancelled h);
  Dessim.Scheduler.run s;
  Alcotest.(check bool) "not fired" false !fired;
  Alcotest.(check int) "not counted" 0 (Dessim.Scheduler.events_processed s)

let test_sched_nested_scheduling () =
  let s = Dessim.Scheduler.create () in
  let log = ref [] in
  ignore
    (Dessim.Scheduler.schedule s ~at:1. (fun () ->
         log := "outer" :: !log;
         ignore
           (Dessim.Scheduler.after s ~delay:1. (fun () -> log := "inner" :: !log))));
  Dessim.Scheduler.run s;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  check_float "final time" 2. (Dessim.Scheduler.now s)

let test_sched_until_horizon () =
  let s = Dessim.Scheduler.create () in
  let fired = ref [] in
  List.iter
    (fun t -> ignore (Dessim.Scheduler.schedule s ~at:t (fun () -> fired := t :: !fired)))
    [ 1.; 2.; 3.; 10. ];
  Dessim.Scheduler.run ~until:5. s;
  Alcotest.(check (list (float 0.))) "fired up to horizon" [ 1.; 2.; 3. ] (List.rev !fired);
  check_float "clock at horizon" 5. (Dessim.Scheduler.now s);
  Alcotest.(check int) "one pending" 1 (Dessim.Scheduler.pending s);
  Dessim.Scheduler.run s;
  Alcotest.(check (list (float 0.))) "rest fired" [ 1.; 2.; 3.; 10. ] (List.rev !fired)

let test_sched_until_exact_event_time () =
  let s = Dessim.Scheduler.create () in
  let fired = ref false in
  ignore (Dessim.Scheduler.schedule s ~at:5. (fun () -> fired := true));
  Dessim.Scheduler.run ~until:5. s;
  Alcotest.(check bool) "event at horizon fires" true !fired

let test_sched_self_perpetuating_with_horizon () =
  let s = Dessim.Scheduler.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Dessim.Scheduler.after s ~delay:1. tick)
  in
  ignore (Dessim.Scheduler.schedule s ~at:0. tick);
  Dessim.Scheduler.run ~until:10.5 s;
  Alcotest.(check int) "ticks 0..10" 11 !count

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Dessim.Rng.create 42 and b = Dessim.Rng.create 42 in
  let xs = List.init 100 (fun _ -> Dessim.Rng.bits64 a) in
  let ys = List.init 100 (fun _ -> Dessim.Rng.bits64 b) in
  Alcotest.(check bool) "same stream" true (xs = ys)

let test_rng_seeds_differ () =
  let a = Dessim.Rng.create 1 and b = Dessim.Rng.create 2 in
  Alcotest.(check bool) "different" false
    (List.init 10 (fun _ -> Dessim.Rng.bits64 a)
    = List.init 10 (fun _ -> Dessim.Rng.bits64 b))

let test_rng_copy_independent () =
  let a = Dessim.Rng.create 7 in
  let b = Dessim.Rng.copy a in
  let x = Dessim.Rng.bits64 a in
  let y = Dessim.Rng.bits64 b in
  Alcotest.(check bool) "copy same next" true (x = y);
  ignore (Dessim.Rng.bits64 a);
  let x2 = Dessim.Rng.bits64 a and y2 = Dessim.Rng.bits64 b in
  Alcotest.(check bool) "diverged after extra draw" false (x2 = y2)

let test_rng_split_independent () =
  let a = Dessim.Rng.create 7 in
  let b = Dessim.Rng.split a in
  let xs = List.init 20 (fun _ -> Dessim.Rng.bits64 a) in
  let ys = List.init 20 (fun _ -> Dessim.Rng.bits64 b) in
  Alcotest.(check bool) "streams differ" false (xs = ys)

let test_rng_int_bounds () =
  let r = Dessim.Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Dessim.Rng.int r 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of range: %d" v
  done

let test_rng_int_rejects_nonpositive () =
  let r = Dessim.Rng.create 3 in
  Alcotest.check_raises "zero" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Dessim.Rng.int r 0))

let test_rng_int_covers_all_values () =
  let r = Dessim.Rng.create 5 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Dessim.Rng.int r 5) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_float_bounds () =
  let r = Dessim.Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Dessim.Rng.float r 3.5 in
    if v < 0. || v >= 3.5 then Alcotest.failf "out of range: %f" v
  done

let test_rng_uniform_bounds () =
  let r = Dessim.Rng.create 11 in
  for _ = 1 to 10_000 do
    let v = Dessim.Rng.uniform r 2. 5. in
    if v < 2. || v >= 5. then Alcotest.failf "out of range: %f" v
  done

let test_rng_float_mean () =
  let r = Dessim.Rng.create 13 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Dessim.Rng.float r 1.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_rng_pick () =
  let r = Dessim.Rng.create 17 in
  let xs = [ 1; 2; 3 ] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (List.mem (Dessim.Rng.pick r xs) xs)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Dessim.Rng.pick r []))

let test_rng_shuffle_permutation () =
  let r = Dessim.Rng.create 19 in
  let a = Array.init 50 Fun.id in
  Dessim.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation" true (sorted = Array.init 50 Fun.id)

(* ---------- Stat ---------- *)

let test_stat_mean () =
  check_float "mean" 2. (Dessim.Stat.mean [ 1.; 2.; 3. ]);
  check_float "empty" 0. (Dessim.Stat.mean [])

let test_stat_variance_stddev () =
  check_float "variance" 2. (Dessim.Stat.variance [ 1.; 2.; 3.; 4.; 5. ]);
  check_float "stddev" (sqrt 2.) (Dessim.Stat.stddev [ 1.; 2.; 3.; 4.; 5. ]);
  check_float "single" 0. (Dessim.Stat.variance [ 42. ])

let test_stat_min_max () =
  check_float "min" (-1.) (Dessim.Stat.minimum [ 3.; -1.; 2. ]);
  check_float "max" 3. (Dessim.Stat.maximum [ 3.; -1.; 2. ])

let test_stat_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  check_float "p0" 1. (Dessim.Stat.percentile 0. xs);
  check_float "p50" 3. (Dessim.Stat.percentile 50. xs);
  check_float "p100" 5. (Dessim.Stat.percentile 100. xs);
  check_float "p25 interpolates" 2. (Dessim.Stat.percentile 25. xs);
  check_float "median" 3. (Dessim.Stat.median xs)

let test_stat_acc_matches_batch () =
  let xs = [ 1.5; 2.5; 0.5; 9.; -3. ] in
  let acc = Dessim.Stat.Acc.create () in
  List.iter (Dessim.Stat.Acc.add acc) xs;
  Alcotest.(check int) "count" 5 (Dessim.Stat.Acc.count acc);
  check_float "mean" (Dessim.Stat.mean xs) (Dessim.Stat.Acc.mean acc);
  Alcotest.(check (float 1e-9)) "variance" (Dessim.Stat.variance xs)
    (Dessim.Stat.Acc.variance acc);
  check_float "min" (-3.) (Dessim.Stat.Acc.minimum acc);
  check_float "max" 9. (Dessim.Stat.Acc.maximum acc);
  check_float "total" (List.fold_left ( +. ) 0. xs) (Dessim.Stat.Acc.total acc)

let prop_acc_mean_equals_batch_mean =
  QCheck.Test.make ~name:"Acc mean = batch mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 100.))
    (fun xs ->
      let acc = Dessim.Stat.Acc.create () in
      List.iter (Dessim.Stat.Acc.add acc) xs;
      abs_float (Dessim.Stat.Acc.mean acc -. Dessim.Stat.mean xs) < 1e-6)

(* ---------- Series ---------- *)

let test_series_bucketing () =
  let s = Dessim.Series.create ~start:10. ~width:2. ~buckets:5 in
  Alcotest.(check (option int)) "below range" None (Dessim.Series.bucket_of_time s 9.9);
  Alcotest.(check (option int)) "first" (Some 0) (Dessim.Series.bucket_of_time s 10.);
  Alcotest.(check (option int)) "mid" (Some 2) (Dessim.Series.bucket_of_time s 14.5);
  Alcotest.(check (option int)) "last" (Some 4) (Dessim.Series.bucket_of_time s 19.99);
  Alcotest.(check (option int)) "beyond" None (Dessim.Series.bucket_of_time s 20.)

let test_series_add_and_stats () =
  let s = Dessim.Series.create ~start:0. ~width:1. ~buckets:3 in
  Dessim.Series.add s ~time:0.5 2.;
  Dessim.Series.add s ~time:0.7 4.;
  Dessim.Series.add s ~time:2.1 10.;
  Dessim.Series.add s ~time:99. 100.;
  (* ignored *)
  Alcotest.(check int) "count b0" 2 (Dessim.Series.count s 0);
  check_float "sum b0" 6. (Dessim.Series.sum s 0);
  check_float "mean b0" 3. (Dessim.Series.mean s 0);
  check_float "rate b0" 2. (Dessim.Series.rate s 0);
  Alcotest.(check int) "count b1" 0 (Dessim.Series.count s 1);
  check_float "mean empty" 0. (Dessim.Series.mean s 1);
  Alcotest.(check int) "count b2" 1 (Dessim.Series.count s 2)

let test_series_accumulate_scale () =
  let mk () = Dessim.Series.create ~start:0. ~width:1. ~buckets:2 in
  let a = mk () and b = mk () in
  Dessim.Series.add a ~time:0.1 1.;
  Dessim.Series.add b ~time:0.2 3.;
  Dessim.Series.add b ~time:1.5 5.;
  Dessim.Series.accumulate ~into:a b;
  Alcotest.(check int) "merged count" 2 (Dessim.Series.count a 0);
  check_float "merged sum" 4. (Dessim.Series.sum a 0);
  Dessim.Series.scale a 0.5;
  check_float "scaled count" 1. (Dessim.Series.frac_count a 0);
  check_float "scaled sum" 2. (Dessim.Series.sum a 0);
  check_float "mean invariant under scaling" 2. (Dessim.Series.mean a 0)

let test_series_accumulate_shape_mismatch () =
  let a = Dessim.Series.create ~start:0. ~width:1. ~buckets:2 in
  let b = Dessim.Series.create ~start:0. ~width:2. ~buckets:2 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Series.accumulate: shape mismatch")
    (fun () -> Dessim.Series.accumulate ~into:a b)

let test_series_time_of_bucket () =
  let s = Dessim.Series.create ~start:5. ~width:0.5 ~buckets:4 in
  check_float "edge" 6. (Dessim.Series.time_of_bucket s 2)

let prop_series_total_count =
  QCheck.Test.make ~name:"series: in-range samples are all counted" ~count:200
    QCheck.(list (float_bound_exclusive 10.))
    (fun times ->
      let s = Dessim.Series.create ~start:0. ~width:1. ~buckets:10 in
      List.iter (fun t -> Dessim.Series.add s ~time:t 1.) times;
      let total = ref 0 in
      for i = 0 to 9 do
        total := !total + Dessim.Series.count s i
      done;
      !total = List.length times)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "dessim"
    [
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "order" `Quick test_heap_order;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "min_elt keeps" `Quick test_heap_min_does_not_remove;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
        ]
        @ qsuite [ prop_heap_sorted; prop_heap_multiset ] );
      ( "scheduler",
        [
          Alcotest.test_case "runs in order" `Quick test_sched_runs_in_order;
          Alcotest.test_case "fifo same time" `Quick test_sched_fifo_same_time;
          Alcotest.test_case "clock advances" `Quick test_sched_clock_advances;
          Alcotest.test_case "past rejected" `Quick test_sched_past_rejected;
          Alcotest.test_case "negative delay rejected" `Quick
            test_sched_negative_delay_rejected;
          Alcotest.test_case "cancel" `Quick test_sched_cancel;
          Alcotest.test_case "nested" `Quick test_sched_nested_scheduling;
          Alcotest.test_case "until horizon" `Quick test_sched_until_horizon;
          Alcotest.test_case "until exact" `Quick test_sched_until_exact_event_time;
          Alcotest.test_case "self-perpetuating" `Quick
            test_sched_self_perpetuating_with_horizon;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects <= 0" `Quick test_rng_int_rejects_nonpositive;
          Alcotest.test_case "int covers" `Quick test_rng_int_covers_all_values;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "uniform bounds" `Quick test_rng_uniform_bounds;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
        ] );
      ( "stat",
        [
          Alcotest.test_case "mean" `Quick test_stat_mean;
          Alcotest.test_case "variance/stddev" `Quick test_stat_variance_stddev;
          Alcotest.test_case "min/max" `Quick test_stat_min_max;
          Alcotest.test_case "percentile" `Quick test_stat_percentile;
          Alcotest.test_case "acc matches batch" `Quick test_stat_acc_matches_batch;
        ]
        @ qsuite [ prop_acc_mean_equals_batch_mean ] );
      ( "series",
        [
          Alcotest.test_case "bucketing" `Quick test_series_bucketing;
          Alcotest.test_case "add and stats" `Quick test_series_add_and_stats;
          Alcotest.test_case "accumulate/scale" `Quick test_series_accumulate_scale;
          Alcotest.test_case "shape mismatch" `Quick test_series_accumulate_shape_mismatch;
          Alcotest.test_case "time_of_bucket" `Quick test_series_time_of_bucket;
        ]
        @ qsuite [ prop_series_total_count ] );
    ]
