(* BGP behavior tests: path-vector selection, Adj-RIB-in caching, loop
   detection, withdrawals, and MRAI batching at both granularities. *)

module H = Proto_harness.Make (Protocols.Bgp)

let line n =
  Netsim.Topology.create ~nodes:n ~edges:(List.init (n - 1) (fun i -> (i, i + 1)))

let ring n =
  Netsim.Topology.create ~nodes:n
    ~edges:((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let fast = Protocols.Bgp.fast_config

let converge ?(config = fast) ?(seed = 1) ?(until = 60.) topo =
  let net = H.make ~config ~seed topo in
  H.start net;
  H.run net ~until;
  net

let test_line_converges () =
  let net = converge (line 5) in
  for dst = 0 to 4 do
    H.check_shortest_paths net ~dst
  done

let test_grid_converges () =
  let topo = Netsim.Mesh.generate ~rows:4 ~cols:4 ~degree:4 in
  let net = converge topo in
  for dst = 0 to 15 do
    H.check_shortest_paths net ~dst
  done

let test_paths_are_recorded () =
  let net = converge (line 4) in
  (match Protocols.Bgp.best_path (H.router net 0) ~dst:3 with
  | Some p -> Alcotest.(check (list int)) "full path" [ 0; 1; 2; 3 ] p
  | None -> Alcotest.fail "no path");
  Alcotest.(check (option (list int))) "self path" (Some [ 2 ])
    (Protocols.Bgp.best_path (H.router net 2) ~dst:2)

let test_metric_is_path_length () =
  let net = converge (line 4) in
  Alcotest.(check (option int)) "0->3" (Some 3) (H.metric net 0 ~dst:3);
  Alcotest.(check (option int)) "self" (Some 0) (H.metric net 1 ~dst:1)

let test_rib_in_caches_alternates () =
  (* Ring of 4: node 0 hears about node 2 from both 1 and 3. *)
  let net = converge (ring 4) in
  let r0 = H.router net 0 in
  Alcotest.(check bool) "via 1 cached" true
    (Protocols.Bgp.rib_in_path r0 ~neighbor:1 ~dst:2 <> None);
  Alcotest.(check bool) "via 3 cached" true
    (Protocols.Bgp.rib_in_path r0 ~neighbor:3 ~dst:2 <> None)

let test_instant_switchover_via_rib () =
  (* Triangle: node 2's path to 1 is direct, so its advertisement to 0 about
     1 is usable (does not pass through 0). When (0,1) dies, 0 switches to
     the cached alternate via 2 with no message exchange. (A ring would NOT
     work here: in a ring, 0's other neighbor routes to 1 through 0 itself,
     and the path-through-self rule already purged that entry — the implicit
     poison reverse.) *)
  let topo = Netsim.Topology.create ~nodes:3 ~edges:[ (0, 1); (0, 2); (1, 2) ] in
  let net = converge topo in
  Alcotest.(check (option int)) "before: direct" (Some 1) (H.next_hop net 0 ~dst:1);
  H.fail_link net 0 1;
  Alcotest.(check (option int)) "instant alternate" (Some 2) (H.next_hop net 0 ~dst:1);
  Alcotest.(check (option int)) "path length 2" (Some 2) (H.metric net 0 ~dst:1)

let test_loop_detection_rejects_own_path () =
  (* Receiving a path containing yourself must act as a withdrawal. *)
  let net = converge (line 3) in
  let r1 = H.router net 1 in
  Alcotest.(check bool) "has rib entry" true
    (Protocols.Bgp.rib_in_path r1 ~neighbor:0 ~dst:0 <> None);
  (* Forge an update from 0 whose path passes through 1. *)
  Protocols.Bgp.on_message r1 ~from:0
    (Protocols.Bgp.Update { dst = 0; path = [ 0; 1; 0 ] });
  Alcotest.(check (option (list int))) "entry withdrawn" None
    (Protocols.Bgp.rib_in_path r1 ~neighbor:0 ~dst:0)

let test_withdrawal_removes_route () =
  let net = converge (line 3) in
  let r1 = H.router net 1 in
  Protocols.Bgp.on_message r1 ~from:2 (Protocols.Bgp.Withdraw { dsts = [ 2 ] });
  Alcotest.(check (option int)) "route gone" None (H.next_hop net 1 ~dst:2)

let test_partition_withdraws_everywhere () =
  let net = converge (line 4) in
  H.fail_link net 1 2;
  H.run net ~until:120.;
  Alcotest.(check (option int)) "0 lost 3" None (H.next_hop net 0 ~dst:3);
  Alcotest.(check (option int)) "3 lost 0" None (H.next_hop net 3 ~dst:0);
  Alcotest.(check (option int)) "0 keeps 1" (Some 1) (H.next_hop net 0 ~dst:1)

let test_reconverges_after_failure () =
  let net = converge (ring 6) in
  H.fail_link net 0 1;
  H.run net ~until:200.;
  let after = Netsim.Topology.remove_edge (ring 6) 0 1 in
  for dst = 0 to 5 do
    H.check_shortest_paths ~topo':after net ~dst
  done

let test_link_up_session_reestablish () =
  let net = converge (ring 4) in
  H.fail_link net 0 1;
  H.run net ~until:100.;
  H.restore_link net 0 1;
  H.run net ~until:200.;
  for dst = 0 to 3 do
    H.check_shortest_paths net ~dst
  done;
  Alcotest.(check (option int)) "direct again" (Some 1) (H.next_hop net 0 ~dst:1)

let test_mrai_delays_second_wave () =
  (* With a long MRAI, a second route change shortly after a first one must
     not be advertised until the timer expires. Line 0-1-2-3; watch node 1's
     knowledge of dst 3 change as node 2 re-advertises. *)
  let config = { Protocols.Bgp.default_config with mrai_mean = 10.; mrai_jitter = 0. } in
  let net = converge ~config ~until:60. (line 4) in
  (* All gates are closed or open depending on history; wait for quiet. *)
  H.run net ~until:100.;
  let r2 = H.router net 2 in
  (* First change: node 2 learns a new (forged) better path to 3? Instead
     drive two successive changes at node 2 via forged updates from 3 and
     check node 1 sees the first quickly and the second only after ~10 s. *)
  let t0 = Dessim.Scheduler.now (H.sched net) in
  Protocols.Bgp.on_message r2 ~from:3
    (Protocols.Bgp.Update { dst = 30; path = [ 3; 30 ] });
  ignore
    (Dessim.Scheduler.after (H.sched net) ~delay:0.5 (fun () ->
         Protocols.Bgp.on_message r2 ~from:3
           (Protocols.Bgp.Update { dst = 31; path = [ 3; 31 ] })));
  (* Run just past the first delivery. *)
  H.run net ~until:(t0 +. 2.);
  let r1 = H.router net 1 in
  Alcotest.(check bool) "first propagated fast" true (H.metric net 1 ~dst:30 <> None);
  Alcotest.(check (option int)) "second still gated" None
    (Protocols.Bgp.metric r1 ~dst:31);
  H.run net ~until:(t0 +. 15.);
  Alcotest.(check bool) "second arrives after MRAI" true
    (Protocols.Bgp.metric r1 ~dst:31 <> None)

let test_mrai_per_destination_scope () =
  (* Same scenario, but with per-(neighbor, destination) MRAI the second
     destination has its own fresh timer and is NOT delayed. *)
  let config =
    {
      Protocols.Bgp.default_config with
      mrai_mean = 10.;
      mrai_jitter = 0.;
      mrai_scope = Protocols.Bgp.Per_destination;
    }
  in
  let net = converge ~config ~until:100. (line 4) in
  let r2 = H.router net 2 in
  let t0 = Dessim.Scheduler.now (H.sched net) in
  Protocols.Bgp.on_message r2 ~from:3
    (Protocols.Bgp.Update { dst = 30; path = [ 3; 30 ] });
  ignore
    (Dessim.Scheduler.after (H.sched net) ~delay:0.5 (fun () ->
         Protocols.Bgp.on_message r2 ~from:3
           (Protocols.Bgp.Update { dst = 31; path = [ 3; 31 ] })));
  H.run net ~until:(t0 +. 2.);
  Alcotest.(check bool) "both propagate fast" true
    (H.metric net 1 ~dst:30 <> None && H.metric net 1 ~dst:31 <> None)

let test_withdrawals_bypass_mrai () =
  let config = { Protocols.Bgp.default_config with mrai_mean = 20.; mrai_jitter = 0. } in
  let net = converge ~config ~until:100. (line 4) in
  (* Cause churn at node 2 so its gate toward 1 is closed, then a failure:
     the withdrawal must still reach node 1 quickly. *)
  let r2 = H.router net 2 in
  Protocols.Bgp.on_message r2 ~from:3
    (Protocols.Bgp.Update { dst = 30; path = [ 3; 30 ] });
  let t0 = Dessim.Scheduler.now (H.sched net) in
  H.fail_link net 2 3;
  H.run net ~until:(t0 +. 2.);
  Alcotest.(check (option int)) "1 heard the withdrawal fast" None
    (H.next_hop net 1 ~dst:3)

let test_batch_flush_on_event () =
  (* An event changing many destinations at once must advertise all of them
     before the gate closes (paper Section 4.3), not just the first. *)
  let config = { Protocols.Bgp.default_config with mrai_mean = 20.; mrai_jitter = 0. } in
  let net = converge ~config ~until:100. (ring 5) in
  let t0 = Dessim.Scheduler.now (H.sched net) in
  (* Failure of (0,1) changes node 0's paths to 1 AND 2 (both went via 1). *)
  H.fail_link net 0 1;
  H.run net ~until:(t0 +. 2.);
  (* Node 4 must have heard node 0's new (reversed) paths for both quickly. *)
  let r4 = H.router net 4 in
  let p1 = Protocols.Bgp.rib_in_path r4 ~neighbor:0 ~dst:1 in
  let p2 = Protocols.Bgp.rib_in_path r4 ~neighbor:0 ~dst:2 in
  (* 0's new paths to 1/2 run through 4 itself, so they arrive as implicit
     withdrawals; "heard" means the stale entries are gone. *)
  Alcotest.(check (option (list int))) "stale 1 purged" None p1;
  Alcotest.(check (option (list int))) "stale 2 purged" None p2

let test_message_sizes () =
  let u = Protocols.Bgp.Update { dst = 5; path = [ 1; 2; 5 ] } in
  let w = Protocols.Bgp.Withdraw { dsts = [ 1; 2; 3 ] } in
  Alcotest.(check int) "update" (8 * (19 + 4 + 6)) (Protocols.Bgp.message_size_bits u);
  Alcotest.(check int) "withdraw" (8 * (19 + 12)) (Protocols.Bgp.message_size_bits w)

(* ---------- route flap damping ---------- *)

let rfd_config =
  {
    fast with
    Protocols.Bgp.rfd =
      Some { Protocols.Bgp.default_rfd with half_life = 5.; max_suppress = 60. };
  }

let flap net ~router ~from ~dst ~path times =
  let r = H.router net router in
  for _ = 1 to times do
    Protocols.Bgp.on_message r ~from (Protocols.Bgp.Update { dst; path });
    Protocols.Bgp.on_message r ~from (Protocols.Bgp.Withdraw { dsts = [ dst ] })
  done

let test_rfd_suppresses_flapping_route () =
  let net = converge ~config:rfd_config (line 3) in
  (* Destination 30 flaps three times as seen by router 1 from neighbor 2:
     three withdrawal penalties cross the cutoff of 2.0. *)
  flap net ~router:1 ~from:2 ~dst:30 ~path:[ 2; 30 ] 3;
  Alcotest.(check bool) "suppressed" true
    (Protocols.Bgp.rfd_suppressed (H.router net 1) ~neighbor:2 ~dst:30);
  (* Even a fresh valid advertisement is not selected while suppressed. *)
  Protocols.Bgp.on_message (H.router net 1) ~from:2
    (Protocols.Bgp.Update { dst = 30; path = [ 2; 30 ] });
  Alcotest.(check (option int)) "not selected" None (H.next_hop net 1 ~dst:30)

let test_rfd_releases_after_decay () =
  let net = converge ~config:rfd_config (line 3) in
  flap net ~router:1 ~from:2 ~dst:30 ~path:[ 2; 30 ] 3;
  Protocols.Bgp.on_message (H.router net 1) ~from:2
    (Protocols.Bgp.Update { dst = 30; path = [ 2; 30 ] });
  (* half-life 5 s: penalty ~3 decays below reuse 0.75 within ~15 s. *)
  let t0 = Dessim.Scheduler.now (H.sched net) in
  H.run net ~until:(t0 +. 40.);
  Alcotest.(check bool) "released" false
    (Protocols.Bgp.rfd_suppressed (H.router net 1) ~neighbor:2 ~dst:30);
  Alcotest.(check (option int)) "selected again" (Some 2) (H.next_hop net 1 ~dst:30)

let test_rfd_single_event_not_suppressed () =
  let net = converge ~config:rfd_config (line 3) in
  flap net ~router:1 ~from:2 ~dst:30 ~path:[ 2; 30 ] 1;
  Alcotest.(check bool) "one flap tolerated" false
    (Protocols.Bgp.rfd_suppressed (H.router net 1) ~neighbor:2 ~dst:30)

let test_no_rfd_never_suppresses () =
  let net = converge (line 3) in
  flap net ~router:1 ~from:2 ~dst:30 ~path:[ 2; 30 ] 10;
  Alcotest.(check bool) "no damping configured" false
    (Protocols.Bgp.rfd_suppressed (H.router net 1) ~neighbor:2 ~dst:30);
  Protocols.Bgp.on_message (H.router net 1) ~from:2
    (Protocols.Bgp.Update { dst = 30; path = [ 2; 30 ] });
  Alcotest.(check (option int)) "immediately usable" (Some 2)
    (H.next_hop net 1 ~dst:30)

let test_rfd_is_per_destination () =
  let net = converge ~config:rfd_config (line 3) in
  flap net ~router:1 ~from:2 ~dst:30 ~path:[ 2; 30 ] 3;
  (* A different, stable destination from the same neighbor is untouched. *)
  Alcotest.(check (option int)) "other routes fine" (Some 2) (H.next_hop net 1 ~dst:2)

let prop_converges_on_random_connected_graphs =
  QCheck.Test.make ~name:"BGP converges to shortest paths on random graphs"
    ~count:20
    QCheck.(pair (1 -- 1000) (6 -- 12))
    (fun (seed, nodes) ->
      let rng = Dessim.Rng.create seed in
      let topo = Netsim.Random_topo.erdos_renyi rng ~nodes ~p:0.3 in
      let net = converge ~seed topo in
      try
        for dst = 0 to nodes - 1 do
          H.check_shortest_paths net ~dst
        done;
        true
      with _ -> false)

let prop_failure_then_reconverge =
  QCheck.Test.make
    ~name:"BGP reconverges to shortest paths after a random failure" ~count:10
    QCheck.(pair (1 -- 1000) (6 -- 10))
    (fun (seed, nodes) ->
      let rng = Dessim.Rng.create seed in
      let topo = Netsim.Random_topo.erdos_renyi rng ~nodes ~p:0.35 in
      let net = converge ~seed topo in
      let edges = Netsim.Topology.edges topo in
      let u, v = List.nth edges (Dessim.Rng.int rng (List.length edges)) in
      let after = Netsim.Topology.remove_edge topo u v in
      if Netsim.Topology.is_connected after then begin
        H.fail_link net u v;
        (* Several MRAI rounds at the fast (3 s) setting. *)
        H.run net ~until:200.;
        try
          for dst = 0 to nodes - 1 do
            H.check_shortest_paths ~topo':after net ~dst
          done;
          true
        with _ -> false
      end
      else true)

let prop_no_selected_path_contains_self =
  QCheck.Test.make ~name:"no selected path ever contains the selector" ~count:20
    QCheck.(pair (1 -- 1000) (6 -- 10))
    (fun (seed, nodes) ->
      let rng = Dessim.Rng.create seed in
      let topo = Netsim.Random_topo.erdos_renyi rng ~nodes ~p:0.3 in
      let net = converge ~seed topo in
      let ok = ref true in
      for id = 0 to nodes - 1 do
        for dst = 0 to nodes - 1 do
          if id <> dst then
            match Protocols.Bgp.best_path (H.router net id) ~dst with
            | Some (_ :: rest) -> if List.mem id rest then ok := false
            | Some [] | None -> ()
        done
      done;
      !ok)

let () =
  Alcotest.run "bgp"
    [
      ( "convergence",
        [
          Alcotest.test_case "line" `Quick test_line_converges;
          Alcotest.test_case "grid" `Quick test_grid_converges;
          Alcotest.test_case "paths recorded" `Quick test_paths_are_recorded;
          Alcotest.test_case "metric = path length" `Quick test_metric_is_path_length;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_converges_on_random_connected_graphs;
              prop_no_selected_path_contains_self;
              prop_failure_then_reconverge;
            ] );
      ( "rib and selection",
        [
          Alcotest.test_case "rib caches alternates" `Quick test_rib_in_caches_alternates;
          Alcotest.test_case "instant switch-over" `Quick test_instant_switchover_via_rib;
          Alcotest.test_case "loop detection" `Quick test_loop_detection_rejects_own_path;
          Alcotest.test_case "withdrawal" `Quick test_withdrawal_removes_route;
          Alcotest.test_case "partition" `Quick test_partition_withdraws_everywhere;
          Alcotest.test_case "reconvergence" `Quick test_reconverges_after_failure;
          Alcotest.test_case "session re-establish" `Quick test_link_up_session_reestablish;
        ] );
      ( "mrai",
        [
          Alcotest.test_case "second wave delayed" `Quick test_mrai_delays_second_wave;
          Alcotest.test_case "per-destination scope" `Quick test_mrai_per_destination_scope;
          Alcotest.test_case "withdrawals bypass" `Quick test_withdrawals_bypass_mrai;
          Alcotest.test_case "batch flush" `Quick test_batch_flush_on_event;
          Alcotest.test_case "message sizes" `Quick test_message_sizes;
        ] );
      ( "route flap damping",
        [
          Alcotest.test_case "suppresses flapping" `Quick test_rfd_suppresses_flapping_route;
          Alcotest.test_case "releases after decay" `Quick test_rfd_releases_after_decay;
          Alcotest.test_case "single event ok" `Quick test_rfd_single_event_not_suppressed;
          Alcotest.test_case "off by default" `Quick test_no_rfd_never_suppresses;
          Alcotest.test_case "per destination" `Quick test_rfd_is_per_destination;
        ] );
    ]
