(* Minimal substring search shared by the test suites (no external string
   library in the sealed environment). *)

let contains haystack needle =
  let n = String.length haystack and m = String.length needle in
  if m = 0 then true
  else begin
    let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
    go 0
  end
