(* Link-state protocol tests: flooding, database synchronization, SPF
   correctness, and the two-way check. *)

module H = Proto_harness.Make (Protocols.Ls)

let line n =
  Netsim.Topology.create ~nodes:n ~edges:(List.init (n - 1) (fun i -> (i, i + 1)))

let ring n =
  Netsim.Topology.create ~nodes:n
    ~edges:((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let converge ?(seed = 1) ?(until = 10.) topo =
  let net = H.make ~seed topo in
  H.start net;
  H.run net ~until;
  net

let test_flooding_fills_databases () =
  let net = converge (line 5) in
  for id = 0 to 4 do
    let db = Protocols.Ls.database (H.router net id) in
    Alcotest.(check int) (Printf.sprintf "router %d sees all LSAs" id) 5
      (List.length db)
  done

let test_line_converges () =
  let net = converge (line 5) in
  for dst = 0 to 4 do
    H.check_shortest_paths net ~dst
  done

let test_grid_converges () =
  let topo = Netsim.Mesh.generate ~rows:4 ~cols:4 ~degree:4 in
  let net = converge topo in
  for dst = 0 to 15 do
    H.check_shortest_paths net ~dst
  done

let test_failure_floods_and_reroutes () =
  let net = converge (ring 6) in
  H.fail_link net 0 1;
  H.run net ~until:20.;
  let after = Netsim.Topology.remove_edge (ring 6) 0 1 in
  for dst = 0 to 5 do
    H.check_shortest_paths ~topo':after net ~dst
  done;
  Alcotest.(check (option int)) "0->1 long way" (Some 5) (H.metric net 0 ~dst:1)

let test_convergence_is_fast () =
  (* LS needs only flooding + spf_delay: well under a second on a small
     ring, vs tens of seconds for the damped distance-vector protocols. *)
  let net = converge (ring 6) in
  let t0 = Dessim.Scheduler.now (H.sched net) in
  H.fail_link net 0 1;
  H.run net ~until:(t0 +. 1.);
  let after = Netsim.Topology.remove_edge (ring 6) 0 1 in
  for dst = 0 to 5 do
    H.check_shortest_paths ~topo':after net ~dst
  done

let test_partition_removes_routes () =
  let net = converge (line 4) in
  H.fail_link net 1 2;
  H.run net ~until:20.;
  Alcotest.(check (option int)) "0 lost 3" None (H.next_hop net 0 ~dst:3);
  Alcotest.(check (option int)) "0 keeps 1" (Some 1) (H.next_hop net 0 ~dst:1)

let test_two_way_check () =
  (* If only one endpoint advertises an adjacency, SPF must not use it. Build
     this by hand-feeding an asymmetric LSA. *)
  let net = converge (line 3) in
  let r0 = H.router net 0 in
  (* A fake node 9 claims adjacency to 0, but 0 does not reciprocate. *)
  Protocols.Ls.on_message r0 ~from:1
    (Protocols.Ls.Lsa { origin = 9; seq = 0; adjacencies = [ 0 ] });
  H.run net ~until:20.;
  Alcotest.(check (option int)) "one-way adjacency unused" None
    (H.next_hop net 0 ~dst:9)

let test_sequence_numbers_ignore_stale () =
  let net = converge (line 3) in
  let r0 = H.router net 0 in
  let current_routes = H.next_hop net 0 ~dst:2 in
  (* Replay a stale LSA (seq 0 was superseded if any reflood happened; force
     a fresh origination first to be sure). *)
  H.fail_link net 1 2;
  H.run net ~until:20.;
  Protocols.Ls.on_message r0 ~from:1
    (Protocols.Ls.Lsa { origin = 1; seq = 0; adjacencies = [ 0; 2 ] });
  H.run net ~until:40.;
  (* The stale claim that (1,2) is alive must not resurrect the route. *)
  Alcotest.(check (option int)) "stale lsa ignored" None (H.next_hop net 0 ~dst:2);
  ignore current_routes

let test_restore_resyncs_database () =
  let net = converge (ring 4) in
  H.fail_link net 0 1;
  H.run net ~until:20.;
  H.restore_link net 0 1;
  H.run net ~until:40.;
  for dst = 0 to 3 do
    H.check_shortest_paths net ~dst
  done

(* ---------- refresh and max-age ---------- *)

let fast_aging =
  { Protocols.Ls.default_config with refresh_interval = 5.; max_age = 12. }

let test_refresh_keeps_database_alive () =
  (* With refresh (5 s) well under max-age (12 s), the database must still be
     complete long after several max-age periods. *)
  let net = H.make ~config:fast_aging ~seed:1 (line 4) in
  H.start net;
  H.run net ~until:100.;
  for id = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "router %d full db" id)
      4
      (List.length (Protocols.Ls.database (H.router net id)));
    H.check_shortest_paths net ~dst:id
  done

let test_max_age_purges_dead_router () =
  (* Cut router 3 off and silence it: after max-age without refreshes, the
     others must purge its LSA and drop routes to it. The harness keeps
     delivering nothing over failed links, so 3's refreshes never arrive. *)
  let net = H.make ~config:fast_aging ~seed:1 (line 4) in
  H.start net;
  H.run net ~until:20.;
  H.fail_link net 2 3;
  H.run net ~until:60.;
  Alcotest.(check (option int)) "route gone" None (H.next_hop net 0 ~dst:3);
  let db0 = Protocols.Ls.database (H.router net 0) in
  Alcotest.(check bool) "lsa purged" false
    (List.exists (fun l -> l.Protocols.Ls.origin = 3) db0)

let prop_converges_on_random_connected_graphs =
  QCheck.Test.make ~name:"LS converges to shortest paths on random graphs"
    ~count:20
    QCheck.(pair (1 -- 1000) (6 -- 12))
    (fun (seed, nodes) ->
      let rng = Dessim.Rng.create seed in
      let topo = Netsim.Random_topo.erdos_renyi rng ~nodes ~p:0.3 in
      let net = converge ~seed topo in
      try
        for dst = 0 to nodes - 1 do
          H.check_shortest_paths net ~dst
        done;
        true
      with _ -> false)

let prop_failure_then_reconverge =
  QCheck.Test.make
    ~name:"LS reconverges to shortest paths after a random failure" ~count:10
    QCheck.(pair (1 -- 1000) (6 -- 10))
    (fun (seed, nodes) ->
      let rng = Dessim.Rng.create seed in
      let topo = Netsim.Random_topo.erdos_renyi rng ~nodes ~p:0.35 in
      let net = converge ~seed topo in
      let edges = Netsim.Topology.edges topo in
      let u, v = List.nth edges (Dessim.Rng.int rng (List.length edges)) in
      let after = Netsim.Topology.remove_edge topo u v in
      if Netsim.Topology.is_connected after then begin
        H.fail_link net u v;
        H.run net ~until:30.;
        try
          for dst = 0 to nodes - 1 do
            H.check_shortest_paths ~topo':after net ~dst
          done;
          true
        with _ -> false
      end
      else true)

let () =
  Alcotest.run "ls"
    [
      ( "flooding",
        [
          Alcotest.test_case "databases fill" `Quick test_flooding_fills_databases;
          Alcotest.test_case "stale seq ignored" `Quick test_sequence_numbers_ignore_stale;
          Alcotest.test_case "two-way check" `Quick test_two_way_check;
          Alcotest.test_case "refresh keeps db" `Quick test_refresh_keeps_database_alive;
          Alcotest.test_case "max-age purges" `Quick test_max_age_purges_dead_router;
        ] );
      ( "spf",
        [
          Alcotest.test_case "line" `Quick test_line_converges;
          Alcotest.test_case "grid" `Quick test_grid_converges;
          Alcotest.test_case "failure reroutes" `Quick test_failure_floods_and_reroutes;
          Alcotest.test_case "fast convergence" `Quick test_convergence_is_fast;
          Alcotest.test_case "partition" `Quick test_partition_removes_routes;
          Alcotest.test_case "restore resync" `Quick test_restore_resyncs_database;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_converges_on_random_connected_graphs; prop_failure_then_reconverge ] );
    ]
