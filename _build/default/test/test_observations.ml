(* Scripted checks of the paper's five Observations (Section 5), with loose
   thresholds: these assert the *shape* of each result, not absolute numbers.
   A shortened timeline (failure at 80 s, 120 s of post-failure observation)
   keeps the suite fast while leaving room for RIP's periodic recovery and
   several BGP MRAI rounds. *)

let base =
  (* The paper's warm-up (standard BGP needs ~diameter x MRAI to converge
     initially) with a shortened 130 s post-failure tail: enough for RIP's
     periodic recovery and several BGP MRAI rounds. *)
  {
    Convergence.Config.default with
    send_rate_pps = 100.;
    traffic_start = 350.;
    warmup = 390.;
    failure_time = 400.;
    sim_end = 530.;
  }

let seeds = [ 11; 12; 13 ]

let mean_of f runs = Dessim.Stat.mean (List.map f runs)

(* Memoize cells: several observations share (engine, degree) sweeps. *)
let cell_cache : (string * int, Convergence.Metrics.run list) Hashtbl.t =
  Hashtbl.create 16

let runs_for engine degree =
  let key = (Convergence.Engine_registry.name engine, degree) in
  match Hashtbl.find_opt cell_cache key with
  | Some runs -> runs
  | None ->
    let runs =
      List.map
        (fun seed ->
          Convergence.Engine_registry.run
            (Convergence.Config.with_degree degree { base with seed })
            engine)
        seeds
    in
    Hashtbl.replace cell_cache key runs;
    runs

let drops r = float_of_int r.Convergence.Metrics.drops_no_route

let ttl_drops r = float_of_int r.Convergence.Metrics.drops_ttl

(* Observation 1: packet drops decrease as node degree increases; at degree 6
   and above DBF/BGP/BGP-3 drop (virtually) nothing, while RIP improves only
   slightly and keeps dropping packets. *)

let test_obs1_rip_keeps_dropping () =
  let sparse = mean_of drops (runs_for Convergence.Engine_registry.rip 3) in
  let dense = mean_of drops (runs_for Convergence.Engine_registry.rip 6) in
  Alcotest.(check bool) "rip drops a lot even when dense" true (dense > 50.);
  Alcotest.(check bool) "sparse >= dense-ish" true (sparse > dense /. 4.)

let test_obs1_caching_protocols_stop_dropping_at_6 () =
  List.iter
    (fun engine ->
      let name = Convergence.Engine_registry.name engine in
      let dense = mean_of drops (runs_for engine 6) in
      if dense > 5. then Alcotest.failf "%s drops %.1f at degree 6" name dense)
    Convergence.Engine_registry.[ dbf; bgp; bgp3 ]

let test_obs1_rip_dwarfs_dbf () =
  let rip = mean_of drops (runs_for Convergence.Engine_registry.rip 4) in
  let dbf = mean_of drops (runs_for Convergence.Engine_registry.dbf 4) in
  Alcotest.(check bool) "RIP >> DBF" true (rip > (10. *. dbf) +. 50.)

(* Observation 2: no TTL expirations at degree >= 6 for any protocol. *)

let test_obs2_no_ttl_expirations_when_dense () =
  List.iter
    (fun engine ->
      let name = Convergence.Engine_registry.name engine in
      let v = mean_of ttl_drops (runs_for engine 6) in
      if v > 0.5 then Alcotest.failf "%s: %.1f TTL expirations at degree 6" name v)
    Convergence.Engine_registry.paper_four

(* Observation 3: in a sparse network the failure knocks throughput down; it
   recovers around the triggered/periodic timer scale. In a dense network the
   hole (almost) disappears for the caching protocols but not for RIP. *)

(* Number of post-failure 1 s buckets below 80% of the sending rate. *)
let hole_buckets (r : Convergence.Metrics.run) =
  let tput = r.Convergence.Metrics.throughput in
  let count = ref 0 in
  (* failure at 400 s = bucket 10 (warmup 390). *)
  for i = 10 to Dessim.Series.buckets tput - 1 do
    if Dessim.Series.rate tput i < 0.8 *. base.Convergence.Config.send_rate_pps then incr count
  done;
  !count

let test_obs3_rip_hole_is_long_dbf_hole_is_short () =
  let rip = Dessim.Stat.mean (List.map (fun r -> float_of_int (hole_buckets r)) (runs_for Convergence.Engine_registry.rip 3)) in
  let dbf = Dessim.Stat.mean (List.map (fun r -> float_of_int (hole_buckets r)) (runs_for Convergence.Engine_registry.dbf 3)) in
  Alcotest.(check bool)
    (Printf.sprintf "rip hole (%.1f) longer than dbf hole (%.1f)" rip dbf)
    true (rip > dbf);
  Alcotest.(check bool) "rip hole is seconds-long" true (rip >= 3.)

let test_obs3_dense_network_closes_the_hole_for_dbf () =
  let dbf6 = Dessim.Stat.mean (List.map (fun r -> float_of_int (hole_buckets r)) (runs_for Convergence.Engine_registry.dbf 6)) in
  Alcotest.(check bool) "dbf hole ~0 at degree 6" true (dbf6 <= 1.5)

(* Observation 4: BGP-3 converges (forwarding path) much faster than BGP, but
   the packet-drop difference between them is negligible at degree >= 6. *)

let test_obs4_mrai_speeds_convergence_not_delivery () =
  let bgp = runs_for Convergence.Engine_registry.bgp 6 in
  let bgp3 = runs_for Convergence.Engine_registry.bgp3 6 in
  let conv r = r.Convergence.Metrics.routing_convergence in
  let c = mean_of conv bgp and c3 = mean_of conv bgp3 in
  Alcotest.(check bool)
    (Printf.sprintf "BGP-3 routing convergence (%.1f) << BGP (%.1f)" c3 c)
    true (c3 < c /. 2.);
  let d = mean_of drops bgp and d3 = mean_of drops bgp3 in
  Alcotest.(check bool) "drop difference negligible" true (abs_float (d -. d3) < 5.)

(* Observation 5: packets delivered during convergence can take longer paths;
   the delay of delivered packets right after the failure exceeds the steady
   state for the caching protocols in a sparse network. *)

let test_obs5_delay_spike_during_convergence () =
  let runs = runs_for Convergence.Engine_registry.dbf 3 in
  let spikes =
    List.map
      (fun (r : Convergence.Metrics.run) ->
        let d = r.Convergence.Metrics.delay in
        let steady = Dessim.Series.mean d 5 in
        (* max mean delay in the 40 s after the failure (buckets 10..50) *)
        let worst = ref 0. in
        for i = 10 to 50 do
          if Dessim.Series.mean d i > !worst then worst := Dessim.Series.mean d i
        done;
        (steady, !worst))
      runs
  in
  (* In a sparse (degree 3) mesh the detour around the failed link is longer
     than the original path in at least some runs. *)
  let exceeded = List.exists (fun (steady, worst) -> worst > steady *. 1.05) spikes in
  Alcotest.(check bool) "post-failure delay exceeds steady state" true exceeded

(* Determinism guard for the whole observation suite: summaries over the same
   seeds are reproducible. *)
let test_observations_reproducible () =
  let a = mean_of drops (runs_for Convergence.Engine_registry.rip 4) in
  let b = mean_of drops (runs_for Convergence.Engine_registry.rip 4) in
  Alcotest.(check (float 0.)) "same mean" a b

let () =
  Alcotest.run "observations"
    [
      ( "observation 1 (drops vs degree)",
        [
          Alcotest.test_case "rip keeps dropping" `Slow test_obs1_rip_keeps_dropping;
          Alcotest.test_case "caching stops drops at 6" `Slow
            test_obs1_caching_protocols_stop_dropping_at_6;
          Alcotest.test_case "rip dwarfs dbf" `Slow test_obs1_rip_dwarfs_dbf;
        ] );
      ( "observation 2 (ttl)",
        [
          Alcotest.test_case "no loops when dense" `Slow
            test_obs2_no_ttl_expirations_when_dense;
        ] );
      ( "observation 3 (throughput)",
        [
          Alcotest.test_case "rip hole longest" `Slow
            test_obs3_rip_hole_is_long_dbf_hole_is_short;
          Alcotest.test_case "density closes hole" `Slow
            test_obs3_dense_network_closes_the_hole_for_dbf;
        ] );
      ( "observation 4 (mrai)",
        [
          Alcotest.test_case "faster convergence, same delivery" `Slow
            test_obs4_mrai_speeds_convergence_not_delivery;
        ] );
      ( "observation 5 (delay)",
        [ Alcotest.test_case "delay spike" `Slow test_obs5_delay_spike_during_convergence ]
      );
      ( "reproducibility",
        [ Alcotest.test_case "stable means" `Slow test_observations_reproducible ] );
    ]
