(* Crash-safety of the campaign journal, and the byte-identity of resume:
   an interrupted journaled run, resumed from its checkpoint, must produce
   the exact artifact bytes an uninterrupted run produces — at any worker
   count. The "kill" here is the driver's deterministic [stop_after] hook
   (the same cooperative stop a SIGINT triggers); the true kill -9 path is
   exercised by the CI resume-smoke job. *)

module E = Convergence.Engine_registry

let section =
  Campaign.Sections.grid ~name:"journal-grid" ~engines:[ E.dbf; E.rip ] ()

let sweep =
  Convergence.Experiments.(scale ~runs:2 ~degrees:[ 3; 4 ] quick_sweep)

let tasks () = section.Campaign.Sections.tasks sweep

let header ?(total = 8) () =
  {
    Campaign.Journal.h_section = "journal-grid";
    h_mode = "quick";
    h_jobs = 1;
    h_out = "OUT.json";
    h_total = total;
    h_runs = Some 2;
    h_degrees = Some [ 3; 4 ];
    h_seed = None;
  }

let temp_journal () = Filename.temp_file "rcsim_journal" ".journal"

let with_temp_journal f =
  let path = temp_journal () in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let load_ok path =
  match Campaign.Journal.load ~path with
  | Ok c -> c
  | Error e -> Alcotest.failf "journal load failed: %s" e

let load_err path =
  match Campaign.Journal.load ~path with
  | Ok _ -> Alcotest.fail "journal load unexpectedly succeeded"
  | Error e -> e

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* ---------- CRC and framing ---------- *)

let test_crc32_vector () =
  (* The standard CRC-32 check value. *)
  Alcotest.(check int) "crc32(123456789)" 0xCBF43926
    (Campaign.Journal.crc32 "123456789");
  Alcotest.(check int) "crc32 of empty" 0 (Campaign.Journal.crc32 "")

(* ---------- round-trips ---------- *)

let test_header_round_trip () =
  with_temp_journal (fun path ->
      let h =
        {
          (header ()) with
          Campaign.Journal.h_mode = "standard";
          h_runs = None;
          h_degrees = None;
          h_seed = Some 99;
        }
      in
      Campaign.Journal.(close (create ~path h));
      let c = load_ok path in
      Alcotest.(check bool) "header survives" true (c.Campaign.Journal.j_header = h);
      Alcotest.(check bool) "not truncated" false c.Campaign.Journal.j_truncated;
      Alcotest.(check int) "no cells" 0 (List.length c.Campaign.Journal.j_cells))

let test_cells_round_trip () =
  with_temp_journal (fun path ->
      let tasks = tasks () in
      let j = Campaign.Journal.create ~path (header ()) in
      let cells, quarantined, _ = Campaign.Driver.run_tasks ~journal:j tasks in
      Campaign.Journal.close j;
      Alcotest.(check int) "all cells ran" (Array.length tasks)
        (Array.length cells);
      Alcotest.(check int) "nothing quarantined" 0 (List.length quarantined);
      let c = load_ok path in
      Alcotest.(check int) "every cell journaled" (Array.length cells)
        (List.length c.Campaign.Journal.j_cells);
      (* The journaled cells re-serialize to the same bytes: this is the
         property byte-identical resume rests on. *)
      List.iteri
        (fun i jc ->
          let orig =
            Array.to_list cells
            |> List.find (fun o ->
                   Campaign.Cell_result.key o = Campaign.Cell_result.key jc)
          in
          Alcotest.(check string)
            (Printf.sprintf "cell %d bytes" i)
            (Obs.Json.to_string
               (Campaign.Cell_result.to_json ~include_series:true orig))
            (Obs.Json.to_string
               (Campaign.Cell_result.to_json ~include_series:true jc));
          Alcotest.(check bool)
            (Printf.sprintf "cell %d wall_s restored" i)
            true
            (jc.Campaign.Cell_result.wall_s = orig.Campaign.Cell_result.wall_s))
        c.Campaign.Journal.j_cells)

let test_quarantine_round_trip () =
  with_temp_journal (fun path ->
      let q =
        {
          Campaign.Artifact.q_protocol = "DBF";
          q_degree = 3;
          q_seed = 2;
          q_error = "wall budget exceeded (1.0 s)";
          q_attempts = 2;
        }
      in
      let j = Campaign.Journal.create ~path (header ()) in
      Campaign.Journal.append_quarantine j q;
      Campaign.Journal.close j;
      let c = load_ok path in
      Alcotest.(check bool) "quarantine survives" true
        (c.Campaign.Journal.j_quarantined = [ q ]))

(* ---------- failure tolerance and strictness ---------- *)

let journal_with_cells path =
  let j = Campaign.Journal.create ~path (header ()) in
  let _ = Campaign.Driver.run_tasks ~journal:j (tasks ()) in
  Campaign.Journal.close j

let test_truncated_tail_tolerated () =
  with_temp_journal (fun path ->
      journal_with_cells path;
      let full = load_ok path in
      let n = List.length full.Campaign.Journal.j_cells in
      (* Simulate a kill mid-append: a torn, CRC-less partial record with no
         trailing newline. *)
      write_file path (read_file path ^ {|{"crc":"00000000","entry":{"type":"cell|});
      let c = load_ok path in
      Alcotest.(check bool) "flagged truncated" true c.Campaign.Journal.j_truncated;
      Alcotest.(check int) "intact records kept" n
        (List.length c.Campaign.Journal.j_cells))

let test_bad_crc_mid_file_rejected () =
  with_temp_journal (fun path ->
      journal_with_cells path;
      let raw = read_file path in
      let lines = String.split_on_char '\n' raw in
      Alcotest.(check bool) "fixture has >= 3 records" true (List.length lines >= 4);
      (* Flip one payload byte of the second record (a cell line): its CRC no
         longer matches, and because it is not the final line this is
         corruption, not interruption. *)
      let corrupted =
        String.concat "\n"
          (List.mapi
             (fun i l ->
               if i = 1 then (
                 let b = Bytes.of_string l in
                 let pos = String.length l - 10 in
                 Bytes.set b pos
                   (if Bytes.get b pos = 'x' then 'y' else 'x');
                 Bytes.to_string b)
               else l)
             lines)
      in
      write_file path corrupted;
      let e = load_err path in
      Alcotest.(check bool)
        (Printf.sprintf "error names line 2 and the CRC (%s)" e)
        true
        (contains ~affix:":2:" e))

let test_duplicate_cell_rejected () =
  with_temp_journal (fun path ->
      journal_with_cells path;
      let raw = read_file path in
      let lines = String.split_on_char '\n' raw in
      let second = List.nth lines 1 in
      (* Re-append an exact copy of an already-checkpointed cell record, plus
         a valid trailing record so the duplicate is not on the tolerated
         final line. *)
      write_file path (raw ^ second ^ "\n");
      let e = load_err path in
      Alcotest.(check bool)
        (Printf.sprintf "duplicate rejected (%s)" e)
        true
        (contains ~affix:"duplicate cell key" e))

let test_headerless_rejected () =
  with_temp_journal (fun path ->
      journal_with_cells path;
      let lines = String.split_on_char '\n' (read_file path) in
      write_file path (String.concat "\n" (List.tl lines));
      let e = load_err path in
      Alcotest.(check bool)
        (Printf.sprintf "headerless rejected (%s)" e)
        true
        (contains ~affix:"header" e))

let test_is_journal_sniff () =
  with_temp_journal (fun path ->
      journal_with_cells path;
      Alcotest.(check bool) "journal recognized" true
        (Campaign.Journal.is_journal ~path);
      write_file path "{\"schema_version\":2}\n";
      Alcotest.(check bool) "artifact rejected" false
        (Campaign.Journal.is_journal ~path))

(* ---------- stop + resume = byte-identical artifact ---------- *)

let canonical cells quarantined =
  Campaign.Artifact.canonical_string
    (Campaign.Driver.artifact_of ~section ~mode:"quick" ~quarantined sweep
       cells)

let test_stop_resume_byte_identity () =
  let tasks = tasks () in
  let clean_cells, clean_q, _ = Campaign.Driver.run_tasks tasks in
  let clean = canonical clean_cells clean_q in
  List.iter
    (fun jobs ->
      with_temp_journal (fun path ->
          Fun.protect ~finally:Dessim.Scheduler.clear_stop (fun () ->
              (* Interrupted run: stop after 3 cells; with jobs > 1 a few
                 in-flight cells may land too, which resume must tolerate. *)
              let j = Campaign.Journal.create ~path (header ()) in
              let cells1, q1, _ =
                Campaign.Driver.run_tasks ~jobs ~stop_after:3 ~journal:j tasks
              in
              Campaign.Journal.close j;
              let missing =
                Campaign.Driver.missing_count ~total:(Array.length tasks)
                  cells1 q1
              in
              Alcotest.(check bool)
                (Printf.sprintf "jobs=%d: stop left cells missing" jobs)
                true (missing > 0);
              Dessim.Scheduler.clear_stop ();
              let c = load_ok path in
              Alcotest.(check int)
                (Printf.sprintf "jobs=%d: journal matches return" jobs)
                (Array.length cells1)
                (List.length c.Campaign.Journal.j_cells);
              (* Resume from the journal exactly as the CLI does. *)
              let j2 = Campaign.Journal.append_to ~path in
              let cells2, q2, _ =
                Campaign.Driver.run_tasks ~jobs ~journal:j2
                  ~completed:c.Campaign.Journal.j_cells
                  ~prior_quarantine:c.Campaign.Journal.j_quarantined tasks
              in
              Campaign.Journal.close j2;
              Alcotest.(check int)
                (Printf.sprintf "jobs=%d: resume completes" jobs)
                0
                (Campaign.Driver.missing_count ~total:(Array.length tasks)
                   cells2 q2);
              Alcotest.(check string)
                (Printf.sprintf "jobs=%d: byte-identical artifact" jobs)
                clean (canonical cells2 q2);
              (* The journal now checkpoints every cell and replays clean. *)
              let final = load_ok path in
              Alcotest.(check int)
                (Printf.sprintf "jobs=%d: journal complete" jobs)
                (Array.length tasks)
                (List.length final.Campaign.Journal.j_cells
                + List.length final.Campaign.Journal.j_quarantined))))
    [ 1; 3 ]

let test_resume_after_torn_tail () =
  with_temp_journal (fun path ->
      let tasks = tasks () in
      Fun.protect ~finally:Dessim.Scheduler.clear_stop (fun () ->
          let j = Campaign.Journal.create ~path (header ()) in
          let _ = Campaign.Driver.run_tasks ~stop_after:2 ~journal:j tasks in
          Campaign.Journal.close j;
          Dessim.Scheduler.clear_stop ();
          (* The kill tore the final record; resume must drop it, re-run that
             cell, and still converge to the clean artifact. *)
          let lines = String.split_on_char '\n' (read_file path) in
          let all_but_last =
            List.filteri (fun i _ -> i < List.length lines - 2) lines
          in
          write_file path (String.concat "\n" all_but_last ^ "\nTORN");
          let c = load_ok path in
          Alcotest.(check bool) "truncated" true c.Campaign.Journal.j_truncated;
          let j2 = Campaign.Journal.append_to ~path in
          let cells, q, _ =
            Campaign.Driver.run_tasks ~journal:j2
              ~completed:c.Campaign.Journal.j_cells
              ~prior_quarantine:c.Campaign.Journal.j_quarantined tasks
          in
          Campaign.Journal.close j2;
          let clean_cells, clean_q, _ = Campaign.Driver.run_tasks tasks in
          Alcotest.(check string)
            "byte-identical after torn-tail resume"
            (canonical clean_cells clean_q)
            (canonical cells q)))

let test_foreign_checkpoint_rejected () =
  let tasks = tasks () in
  let foreign =
    {
      Campaign.Artifact.q_protocol = "NOPE";
      q_degree = 99;
      q_seed = 1;
      q_error = "x";
      q_attempts = 1;
    }
  in
  Alcotest.check_raises "unknown checkpointed key"
    (Invalid_argument
       "Driver.run_tasks: checkpointed cell (NOPE, 99, 1) is not in the task \
        decomposition")
    (fun () ->
      ignore (Campaign.Driver.run_tasks ~prior_quarantine:[ foreign ] tasks))

(* ---------- heartbeat ---------- *)

let test_heartbeat_emitted () =
  let tasks = tasks () in
  let beats = ref [] in
  let _ =
    Campaign.Driver.run_tasks ~heartbeat:(fun l -> beats := l :: !beats) tasks
  in
  (* One beat per completed cell except the last (nothing remaining). *)
  Alcotest.(check int) "beats" (Array.length tasks - 1) (List.length !beats);
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "beat mentions total (%s)" b)
        true
        (contains
           ~affix:(Printf.sprintf "/%d cells" (Array.length tasks))
           b);
      Alcotest.(check bool)
        (Printf.sprintf "beat has an ETA (%s)" b)
        true
        (contains ~affix:"ETA" b))
    !beats

let () =
  Alcotest.run "journal"
    [
      ( "format",
        [
          Alcotest.test_case "crc32 check vector" `Quick test_crc32_vector;
          Alcotest.test_case "header round-trip" `Quick test_header_round_trip;
          Alcotest.test_case "cells round-trip byte-exact" `Quick
            test_cells_round_trip;
          Alcotest.test_case "quarantine round-trip" `Quick
            test_quarantine_round_trip;
          Alcotest.test_case "is_journal sniff" `Quick test_is_journal_sniff;
        ] );
      ( "tolerance",
        [
          Alcotest.test_case "torn tail tolerated" `Quick
            test_truncated_tail_tolerated;
          Alcotest.test_case "bad CRC mid-file rejected" `Quick
            test_bad_crc_mid_file_rejected;
          Alcotest.test_case "duplicate cell rejected" `Quick
            test_duplicate_cell_rejected;
          Alcotest.test_case "headerless rejected" `Quick
            test_headerless_rejected;
        ] );
      ( "resume",
        [
          Alcotest.test_case "stop+resume byte identity (jobs 1, 3)" `Quick
            test_stop_resume_byte_identity;
          Alcotest.test_case "resume after torn tail" `Quick
            test_resume_after_torn_tail;
          Alcotest.test_case "foreign checkpoint rejected" `Quick
            test_foreign_checkpoint_rejected;
          Alcotest.test_case "heartbeat per cell with ETA" `Quick
            test_heartbeat_emitted;
        ] );
    ]
