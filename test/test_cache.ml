(* The content-addressed cell cache: every input perturbs the key, entries
   round-trip real cells, anything corrupt degrades to a miss (never an
   error), and a fully-cached re-run reproduces the fresh artifact byte for
   byte at any worker count. *)

module E = Convergence.Engine_registry

let section =
  Campaign.Sections.grid ~name:"cache-grid" ~engines:[ E.dbf; E.rip ] ()

let sweep =
  Convergence.Experiments.(scale ~runs:2 ~degrees:[ 3; 4 ] quick_sweep)

let tasks () = section.Campaign.Sections.tasks sweep

let base_ctx =
  {
    Campaign.Cache.git_sha = "abc1234";
    family = section.Campaign.Sections.family;
    mode = "quick";
    runs = Some 2;
    degrees = Some [ 3; 4 ];
    seed = None;
  }

let with_temp_dir f =
  let dir = Filename.temp_file "rcsim_cache" "" in
  Sys.remove dir;
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end
  in
  Fun.protect ~finally:cleanup (fun () -> f dir)

let cell_json (c : Campaign.Cell_result.t) =
  Obs.Json.to_string (Campaign.Cell_result.to_json ~include_series:true c)

let run_task (t : Campaign.Sections.task) = t.Campaign.Sections.t_run ()

(* ---------- key derivation ---------- *)

let test_key_covers_every_input () =
  with_temp_dir (fun dir ->
      let key ctx = Campaign.Cache.key (Campaign.Cache.open_ ~dir ctx) in
      let base = key base_ctx ~protocol:"RIP" ~degree:3 ~seed:1 in
      let variants =
        [
          ("git sha", { base_ctx with Campaign.Cache.git_sha = "def5678" });
          ("family", { base_ctx with Campaign.Cache.family = "other" });
          ("mode", { base_ctx with Campaign.Cache.mode = "full" });
          ("runs", { base_ctx with Campaign.Cache.runs = Some 3 });
          ("runs absent", { base_ctx with Campaign.Cache.runs = None });
          ("degrees", { base_ctx with Campaign.Cache.degrees = Some [ 3 ] });
          ("degrees absent", { base_ctx with Campaign.Cache.degrees = None });
          ("seed", { base_ctx with Campaign.Cache.seed = Some 7 });
        ]
      in
      List.iter
        (fun (what, ctx) ->
          Alcotest.(check bool)
            (what ^ " perturbs the key") false
            (String.equal base (key ctx ~protocol:"RIP" ~degree:3 ~seed:1)))
        variants;
      List.iter
        (fun (what, p, d, s) ->
          Alcotest.(check bool)
            (what ^ " perturbs the key") false
            (String.equal base (key base_ctx ~protocol:p ~degree:d ~seed:s)))
        [
          ("protocol", "DBF", 3, 1);
          ("degree", "RIP", 4, 1);
          ("cell seed", "RIP", 3, 2);
        ];
      (* Same inputs, fresh handle: stable. *)
      Alcotest.(check string)
        "key is stable across handles" base
        (key base_ctx ~protocol:"RIP" ~degree:3 ~seed:1))

(* ---------- store / find ---------- *)

let test_store_find_roundtrip () =
  with_temp_dir (fun dir ->
      let c = Campaign.Cache.open_ ~dir base_ctx in
      let t = (tasks ()).(0) in
      let protocol, degree, seed = Campaign.Driver.task_key t in
      let cell =
        { (run_task t) with Campaign.Cell_result.wall_s = 1.25 }
      in
      Campaign.Cache.store c cell;
      (match Campaign.Cache.find c ~protocol ~degree ~seed with
      | None -> Alcotest.fail "stored cell not found"
      | Some got ->
        Alcotest.(check string)
          "row round-trips exactly" (cell_json cell) (cell_json got);
        Alcotest.(check (float 1e-9))
          "wall_s rides along" 1.25 got.Campaign.Cell_result.wall_s);
      Alcotest.(check bool)
        "different seed misses" true
        (Campaign.Cache.find c ~protocol ~degree ~seed:999 = None);
      Alcotest.(check bool)
        "stats: 2 hits either way" true
        (Campaign.Cache.stats c = (1, 1)))

let test_context_mismatch_is_miss () =
  with_temp_dir (fun dir ->
      let a = Campaign.Cache.open_ ~dir base_ctx in
      let t = (tasks ()).(0) in
      let protocol, degree, seed = Campaign.Driver.task_key t in
      Campaign.Cache.store a (run_task t);
      let b =
        Campaign.Cache.open_ ~dir
          { base_ctx with Campaign.Cache.git_sha = "0000000" }
      in
      Alcotest.(check bool)
        "other sha cannot see the entry" true
        (Campaign.Cache.find b ~protocol ~degree ~seed = None))

let test_corrupt_entry_is_miss () =
  with_temp_dir (fun dir ->
      let c = Campaign.Cache.open_ ~dir base_ctx in
      let t = (tasks ()).(0) in
      let protocol, degree, seed = Campaign.Driver.task_key t in
      Campaign.Cache.store c (run_task t);
      let entry =
        match Sys.readdir dir with
        | [| one |] -> Filename.concat dir one
        | files -> Alcotest.failf "expected 1 entry file, found %d" (Array.length files)
      in
      let original = In_channel.with_open_bin entry In_channel.input_all in
      let rewrite s =
        Out_channel.with_open_bin entry (fun oc ->
            Out_channel.output_string oc s)
      in
      (* A flipped byte fails the CRC. *)
      let flipped = Bytes.of_string original in
      Bytes.set flipped (String.length original / 2)
        (if Bytes.get flipped (String.length original / 2) = 'x' then 'y'
         else 'x');
      rewrite (Bytes.to_string flipped);
      Alcotest.(check bool)
        "flipped byte is a miss" true
        (Campaign.Cache.find c ~protocol ~degree ~seed = None);
      (* A torn (truncated) entry is a miss. *)
      rewrite (String.sub original 0 (String.length original / 3));
      Alcotest.(check bool)
        "truncated entry is a miss" true
        (Campaign.Cache.find c ~protocol ~degree ~seed = None);
      (* Garbage is a miss. *)
      rewrite "not a cache entry at all\n";
      Alcotest.(check bool)
        "garbage is a miss" true
        (Campaign.Cache.find c ~protocol ~degree ~seed = None);
      (* And the campaign driver shrugs it all off: the cell re-runs. *)
      let cells, quarantined, _ =
        Campaign.Driver.run_tasks ~jobs:1 ~cache:c (tasks ())
      in
      Alcotest.(check int) "no quarantine" 0 (List.length quarantined);
      Alcotest.(check int)
        "all cells present" (Array.length (tasks ())) (Array.length cells))

(* ---------- whole-campaign byte identity ---------- *)

let artifact_of cells quarantined timing =
  Campaign.Driver.artifact_of ~section ~mode:"quick" ~timing ~quarantined sweep
    cells

let test_cached_rerun_is_byte_identical () =
  with_temp_dir (fun dir ->
      let fresh_cells, fq, ft = Campaign.Driver.run_tasks ~jobs:1 (tasks ()) in
      let canon_fresh =
        Campaign.Artifact.canonical_string (artifact_of fresh_cells fq ft)
      in
      let c1 = Campaign.Cache.open_ ~dir base_ctx in
      let cells1, q1, t1 =
        Campaign.Driver.run_tasks ~jobs:2 ~cache:c1 (tasks ())
      in
      Alcotest.(check bool)
        "first cached run stored everything" true
        (fst (Campaign.Cache.stats c1) = 0);
      Alcotest.(check string)
        "cache-miss run matches uncached bytes" canon_fresh
        (Campaign.Artifact.canonical_string (artifact_of cells1 q1 t1));
      (* Second run: every cell from cache, any jobs count, same bytes. *)
      List.iter
        (fun jobs ->
          let c2 = Campaign.Cache.open_ ~dir base_ctx in
          let cells2, q2, t2 =
            Campaign.Driver.run_tasks ~jobs ~cache:c2 (tasks ())
          in
          let hits, misses = Campaign.Cache.stats c2 in
          Alcotest.(check int) "all hits" (Array.length (tasks ())) hits;
          Alcotest.(check int) "no misses" 0 misses;
          Alcotest.(check string)
            (Printf.sprintf "fully-cached rerun at jobs=%d is byte-identical"
               jobs)
            canon_fresh
            (Campaign.Artifact.canonical_string (artifact_of cells2 q2 t2));
          match (t2.Campaign.Artifact.t_exec : Campaign.Artifact.exec option) with
          | Some x ->
            Alcotest.(check int)
              "exec records the hits" hits x.Campaign.Artifact.x_cache_hits
          | None -> Alcotest.fail "cached run should carry an exec block")
        [ 1; 4 ])

(* ---------- exec block serialization ---------- *)

let test_exec_block_roundtrip () =
  let t = (tasks ()).(0) in
  let cell = run_task t in
  let params = Campaign.Artifact.params_of_sweep ~mode:"quick" sweep in
  let exec =
    {
      Campaign.Artifact.x_backend = "proc";
      x_cache_hits = 3;
      x_cache_misses = 5;
      x_spawns = 4;
      x_restarts = 2;
      x_worker_cells = [ 2; 0; 3 ];
    }
  in
  let timing ~exec =
    {
      Campaign.Artifact.t_jobs = 2;
      t_wall_s = 1.0;
      t_exec = exec;
      t_cells = [];
    }
  in
  let build ~exec =
    Campaign.Artifact.build ~section:"cache-grid" ~git_sha:"test"
      ~timing:(timing ~exec) ~include_series:false params [ cell ]
  in
  let a = build ~exec:(Some exec) in
  (match Campaign.Artifact.of_json (Campaign.Artifact.to_json a) with
  | Error e -> Alcotest.failf "re-parse failed: %s" e
  | Ok b -> (
    match b.Campaign.Artifact.timing with
    | Some { Campaign.Artifact.t_exec = Some x; _ } ->
      Alcotest.(check bool) "exec round-trips" true (x = exec)
    | _ -> Alcotest.fail "exec block lost in round-trip"));
  Alcotest.(check (list string))
    "artifact with exec validates" []
    (Campaign.Artifact.validate (Campaign.Artifact.to_json a));
  (* Without exec, the timing block keeps its pre-existing byte layout. *)
  let plain = Obs.Json.to_string (Campaign.Artifact.to_json (build ~exec:None)) in
  let contains ~affix s =
    let n = String.length affix and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    "no exec key when absent" false
    (contains ~affix:"\"exec\"" plain);
  (* Exec never leaks into the canonical form. *)
  Alcotest.(check string)
    "canonical form ignores exec"
    (Campaign.Artifact.canonical_string (build ~exec:None))
    (Campaign.Artifact.canonical_string a)

let () =
  Alcotest.run "cache"
    [
      ( "cache",
        [
          Alcotest.test_case "key covers every input" `Quick
            test_key_covers_every_input;
          Alcotest.test_case "store/find round-trip" `Quick
            test_store_find_roundtrip;
          Alcotest.test_case "context mismatch is a miss" `Quick
            test_context_mismatch_is_miss;
          Alcotest.test_case "corruption degrades to a miss" `Quick
            test_corrupt_entry_is_miss;
          Alcotest.test_case "cached rerun is byte-identical" `Quick
            test_cached_rerun_is_byte_identical;
          Alcotest.test_case "exec block serialization" `Quick
            test_exec_block_roundtrip;
        ] );
    ]
