(* Obs.Prof: scope accounting, the disabled-mode no-op contract, Gc-delta
   sanity, and the perf blocks of schema-v3 artifacts. *)

let scope_stat name =
  match
    List.find_opt (fun s -> s.Obs.Prof.st_name = name) (Obs.Prof.stats ())
  with
  | Some s -> s
  | None -> Alcotest.failf "no stats recorded for scope %S" name

(* ---------- span accounting ---------- *)

let test_nesting_and_reentrancy () =
  Obs.Prof.set_enabled true;
  Obs.Prof.reset ();
  let outer = Obs.Prof.scope "t.outer" in
  let inner = Obs.Prof.scope "t.inner" in
  (* Nesting distinct scopes: both complete. Re-entering a live scope counts
     the call but must not close the span early or double-count time. *)
  let rec recurse s n =
    Obs.Prof.enter s;
    if n > 0 then recurse s (n - 1);
    Obs.Prof.exit s
  in
  Obs.Prof.enter outer;
  recurse inner 4;
  Obs.Prof.exit outer;
  Obs.Prof.set_enabled false;
  let o = scope_stat "t.outer" in
  let i = scope_stat "t.inner" in
  Alcotest.(check int) "outer spans" 1 o.Obs.Prof.st_count;
  Alcotest.(check int) "outer calls" 1 o.Obs.Prof.st_calls;
  Alcotest.(check int) "inner outermost spans" 1 i.Obs.Prof.st_count;
  Alcotest.(check int) "inner calls include re-entries" 5 i.Obs.Prof.st_calls;
  Alcotest.(check bool)
    "outer time covers inner" true
    (o.Obs.Prof.st_total_ns >= i.Obs.Prof.st_total_ns);
  Alcotest.(check bool) "inner measured once" true (i.Obs.Prof.st_total_ns >= 0.);
  Alcotest.(check bool)
    "mean consistent" true
    (Float.abs (o.Obs.Prof.st_mean_ns -. o.Obs.Prof.st_total_ns) < 1e-6)

let test_time_is_exception_safe () =
  Obs.Prof.set_enabled true;
  Obs.Prof.reset ();
  let s = Obs.Prof.scope "t.raises" in
  (try Obs.Prof.time s (fun () -> failwith "boom") with Failure _ -> ());
  Obs.Prof.time s ignore;
  Obs.Prof.set_enabled false;
  let st = scope_stat "t.raises" in
  Alcotest.(check int) "both spans closed" 2 st.Obs.Prof.st_count

let test_unbalanced_exit_ignored () =
  Obs.Prof.set_enabled true;
  Obs.Prof.reset ();
  let s = Obs.Prof.scope "t.unbalanced" in
  Obs.Prof.exit s;
  (* must not underflow *)
  Obs.Prof.enter s;
  Obs.Prof.exit s;
  Obs.Prof.set_enabled false;
  let st = scope_stat "t.unbalanced" in
  Alcotest.(check int) "one completed span" 1 st.Obs.Prof.st_count

let test_disabled_records_nothing () =
  Obs.Prof.set_enabled false;
  Obs.Prof.reset ();
  let s = Obs.Prof.scope "t.disabled" in
  Obs.Prof.enter s;
  Obs.Prof.exit s;
  Obs.Prof.time s ignore;
  Alcotest.(check bool)
    "no stats accumulate" true
    (List.for_all
       (fun st -> st.Obs.Prof.st_name <> "t.disabled")
       (Obs.Prof.stats ()))

(* ---------- the no-op contract on real runs ---------- *)

(* Everything a run outputs — trace records, the cell row derived from its
   metrics — must be byte-identical whether the profiler is off or on; the
   flag may only change the timing accumulators themselves. *)
let test_prof_flag_does_not_change_outputs () =
  let cfg =
    {
      Convergence.Config.default with
      rows = 5;
      cols = 5;
      send_rate_pps = 100.;
      traffic_start = 60.;
      warmup = 70.;
      failure_time = 80.;
      sim_end = 220.;
    }
  in
  let engine = Convergence.Engine_registry.rip in
  let run_once () =
    let sink, collected = Obs.Sink.memory () in
    let trace = Obs.Trace.create sink in
    let r = Convergence.Engine_registry.run ~trace cfg engine in
    Obs.Trace.close trace;
    let lines =
      List.map
        (fun rec_ ->
          (* cpu_s is honest wall measurement — nondeterministic run to run
             even with profiling off, so normalize it before comparing *)
          let rec_ =
            match rec_.Obs.Sink.event with
            | Obs.Event.Sched_stats { events; max_queue; cpu_s = _ } ->
              {
                rec_ with
                Obs.Sink.event =
                  Obs.Event.Sched_stats { events; max_queue; cpu_s = 0. };
              }
            | _ -> rec_
          in
          Obs.Json.to_string (Obs.Sink.record_to_json rec_))
        (collected ())
    in
    let row =
      Obs.Json.to_string
        (Campaign.Cell_result.to_json ~include_series:true
           (Campaign.Cell_result.of_run r))
    in
    (lines, row)
  in
  Obs.Prof.set_enabled false;
  let lines_off, row_off = run_once () in
  Obs.Prof.set_enabled true;
  Obs.Prof.reset ();
  let lines_on, row_on = run_once () in
  Obs.Prof.set_enabled false;
  Alcotest.(check int)
    "same trace length" (List.length lines_off) (List.length lines_on);
  List.iteri
    (fun i (a, b) ->
      if a <> b then
        Alcotest.failf "trace line %d differs with profiling on:\n%s\n%s" i a b)
    (List.combine lines_off lines_on);
  Alcotest.(check string) "cell row identical" row_off row_on;
  (* and the instrumented run did actually profile something *)
  Alcotest.(check bool)
    "engine scopes recorded" true
    (List.exists
       (fun st -> st.Obs.Prof.st_name = "engine.run")
       (Obs.Prof.stats ()))

(* ---------- Gc deltas ---------- *)

let test_gc_delta_accounting () =
  let keep = ref [] in
  let (), d =
    Obs.Prof.gc_delta (fun () ->
        (* ~300k words of boxed floats: 100k * (cons cell + boxed float) *)
        for i = 1 to 100_000 do
          keep := float_of_int i :: !keep
        done)
  in
  Alcotest.(check bool)
    "minor words see the allocation" true
    (d.Obs.Prof.d_minor_words +. d.Obs.Prof.d_major_words > 100_000.);
  Alcotest.(check bool)
    "collection counts non-negative" true
    (d.Obs.Prof.d_minor_collections >= 0 && d.Obs.Prof.d_major_collections >= 0);
  ignore (Sys.opaque_identity !keep);
  let (), quiet = Obs.Prof.gc_delta (fun () -> ()) in
  Alcotest.(check bool)
    "no-op allocates (almost) nothing" true
    (quiet.Obs.Prof.d_minor_words < 1_000.)

(* ---------- scheduler counters ---------- *)

let test_scheduler_counts_skipped () =
  let s = Dessim.Scheduler.create () in
  let fired = ref 0 in
  let _ = Dessim.Scheduler.after s ~delay:1.0 (fun () -> incr fired) in
  let h = Dessim.Scheduler.after s ~delay:2.0 (fun () -> incr fired) in
  let _ = Dessim.Scheduler.after s ~delay:3.0 (fun () -> incr fired) in
  Dessim.Scheduler.cancel h;
  Dessim.Scheduler.run s;
  Alcotest.(check int) "fired" 2 !fired;
  Alcotest.(check int) "processed" 2 (Dessim.Scheduler.events_processed s);
  Alcotest.(check int) "scheduled" 3 (Dessim.Scheduler.events_scheduled s);
  Alcotest.(check int) "skipped" 1 (Dessim.Scheduler.events_skipped s)

(* ---------- histogram quantiles ---------- *)

let test_histogram_quantiles () =
  let reg = Obs.Registry.create () in
  let bounds = Array.init 100 (fun i -> float_of_int (i + 1)) in
  let h = Obs.Registry.histogram ~bounds reg "q" in
  for v = 1 to 100 do
    Obs.Registry.observe h (float_of_int v -. 0.5)
  done;
  match Obs.Registry.lookup reg "q" with
  | Some (Obs.Registry.Histogram_value { p50; p95; p99; n; _ }) ->
    Alcotest.(check int) "n" 100 n;
    Alcotest.(check (float 1e-9)) "p50 upper bound" 50. p50;
    Alcotest.(check (float 1e-9)) "p95 upper bound" 95. p95;
    Alcotest.(check (float 1e-9)) "p99 upper bound" 99. p99
  | _ -> Alcotest.fail "histogram value expected"

(* ---------- perf blocks in artifacts ---------- *)

let perf_cell ~eps ~extras_events =
  {
    Campaign.Cell_result.protocol = "RIP";
    degree = 25;
    seed = 1;
    sent = 100;
    delivered = 99;
    drops_no_route = 1;
    drops_ttl = 0;
    drops_queue = 0;
    drops_link = 0;
    looped_delivered = 0;
    looped_dropped = 0;
    ctrl_messages = 10;
    ctrl_bytes = 500;
    fwd_convergence = 1.5;
    routing_convergence = 3.0;
    transient_paths = 1;
    extras = [ ("sched_events", extras_events) ];
    axes = [];
    series = [];
    wall_s = 0.;
    perf = [ ("ns_per_event", 1e9 /. eps); ("events_per_s", eps) ];
    events = 0;
  }

let perf_params =
  {
    Campaign.Artifact.mode = "quick";
    rows = 5;
    cols = 5;
    degrees = [ 4 ];
    runs = 1;
    seed = 1;
    rate_pps = 100.;
    warmup = 70.;
    sim_end = 220.;
  }

let perf_artifact ?(eps = 250_000.) ?(extras_events = 50_000.) () =
  let cell = perf_cell ~eps ~extras_events in
  let timing =
    {
      Campaign.Artifact.t_jobs = 1;
      t_wall_s = 1.0;
      t_exec = None;
      t_cells =
        [
          {
            Campaign.Artifact.ct_protocol = "RIP";
            ct_degree = 25;
            ct_seed = 1;
            ct_wall_s = 0.5;
            ct_perf = cell.Campaign.Cell_result.perf;
          };
        ];
    }
  in
  Campaign.Artifact.build ~section:"perf" ~git_sha:"test" ~timing
    ~include_series:false perf_params [ cell ]

let test_perf_artifact_roundtrip () =
  let a = perf_artifact () in
  let j = Campaign.Artifact.to_json a in
  Alcotest.(check (list string)) "validates" [] (Campaign.Artifact.validate j);
  match Campaign.Artifact.of_json j with
  | Error e -> Alcotest.failf "re-parse failed: %s" e
  | Ok b -> (
    match b.Campaign.Artifact.timing with
    | Some { Campaign.Artifact.t_cells = [ ct ]; _ } ->
      Alcotest.(check (list (pair string (float 1e-9))))
        "perf block survives the round-trip"
        [ ("ns_per_event", 4000.); ("events_per_s", 250_000.) ]
        ct.Campaign.Artifact.ct_perf
    | _ -> Alcotest.fail "timing lost in round-trip")

let test_perf_drift_detection () =
  let base = perf_artifact () in
  (* Timing drift (a slower machine) must NOT show up in a diff... *)
  let slower = perf_artifact ~eps:100_000. () in
  Alcotest.(check int)
    "machine-speed drift invisible to diff" 0
    (List.length (Campaign.Diff.artifacts ~tol:0. base slower));
  (* ...while drift in a deterministic perf extra must, subject to the
     tolerance band. *)
  let drifted = perf_artifact ~extras_events:50_100. () in
  Alcotest.(check bool)
    "event-count drift detected" true
    (Campaign.Diff.artifacts ~tol:0. base drifted <> []);
  Alcotest.(check int)
    "tolerance band absorbs small drift" 0
    (List.length (Campaign.Diff.artifacts ~tol:200. base drifted))

let () =
  Alcotest.run "prof"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and re-entrancy" `Quick
            test_nesting_and_reentrancy;
          Alcotest.test_case "time is exception-safe" `Quick
            test_time_is_exception_safe;
          Alcotest.test_case "unbalanced exit ignored" `Quick
            test_unbalanced_exit_ignored;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_records_nothing;
        ] );
      ( "no-op contract",
        [
          Alcotest.test_case "outputs identical with prof on" `Quick
            test_prof_flag_does_not_change_outputs;
        ] );
      ( "gc",
        [ Alcotest.test_case "delta accounting" `Quick test_gc_delta_accounting ] );
      ( "scheduler",
        [
          Alcotest.test_case "skipped-event counter" `Quick
            test_scheduler_counts_skipped;
        ] );
      ( "histogram",
        [ Alcotest.test_case "p50/p95/p99" `Quick test_histogram_quantiles ] );
      ( "perf artifacts",
        [
          Alcotest.test_case "json round-trip" `Quick test_perf_artifact_roundtrip;
          Alcotest.test_case "drift and tolerance" `Quick
            test_perf_drift_detection;
        ] );
    ]
