(* Tests for the random topology generator families — Barabási–Albert and
   the hierarchical AS-like model added for the internet-scale sweeps — plus
   the rewritten ER sampler, batched stitching, and scale smoke tests through
   every paper protocol with the BFS oracle. *)

module T = Netsim.Topology
module RT = Netsim.Random_topo

let rng seed = Dessim.Rng.create seed

let degrees t = List.init (T.node_count t) (T.degree t)

(* ---------- Barabási–Albert ---------- *)

let test_ba_basic () =
  let t = RT.barabasi_albert (rng 42) ~nodes:200 ~m:3 in
  Alcotest.(check int) "node count" 200 (T.node_count t);
  Alcotest.(check bool) "connected" true (T.is_connected t);
  Alcotest.(check int) "min degree = m" 3
    (List.fold_left min max_int (degrees t));
  (* seed clique on m+1 nodes plus m edges per later node, no duplicates *)
  Alcotest.(check int) "edge count" ((3 * 4 / 2) + (3 * (200 - 4)))
    (T.edge_count t)

let test_ba_heavy_tail () =
  let t = RT.barabasi_albert (rng 7) ~nodes:2000 ~m:2 in
  let ds = degrees t in
  let max_deg = List.fold_left max 0 ds in
  let small = List.length (List.filter (fun d -> d <= 3) ds) in
  (* Power-law degrees: a hub far above the mean (~4) coexisting with a
     majority of minimum-degree nodes (p(2) + p(3) ~ 0.7 for m = 2). A
     regular or Poisson graph of the same mean fails both. *)
  Alcotest.(check bool) "has a hub" true (max_deg >= 20);
  Alcotest.(check bool) "most nodes near min degree" true
    (float_of_int small /. 2000. > 0.5)

let test_ba_deterministic () =
  let a = RT.barabasi_albert (rng 123) ~nodes:300 ~m:2 in
  let b = RT.barabasi_albert (rng 123) ~nodes:300 ~m:2 in
  let c = RT.barabasi_albert (rng 124) ~nodes:300 ~m:2 in
  Alcotest.(check bool) "same seed, same graph" true (T.edges a = T.edges b);
  Alcotest.(check bool) "different seed, different graph" true
    (T.edges a <> T.edges c)

let test_ba_invalid () =
  Alcotest.check_raises "m = 0"
    (Invalid_argument "Random_topo.barabasi_albert: m < 1") (fun () ->
      ignore (RT.barabasi_albert (rng 1) ~nodes:10 ~m:0));
  Alcotest.check_raises "nodes = m + 1"
    (Invalid_argument "Random_topo.barabasi_albert: nodes must exceed m + 1")
    (fun () -> ignore (RT.barabasi_albert (rng 1) ~nodes:3 ~m:2))

(* ---------- hierarchical ---------- *)

let test_hier_tiers () =
  let t1 = 4 and t2 = 10 and stubs = 50 in
  let t =
    RT.hierarchical (rng 9) ~t1 ~t2 ~stubs ~t2_uplinks:2 ~stub_uplinks:2 ()
  in
  Alcotest.(check int) "node count" (t1 + t2 + stubs) (T.node_count t);
  Alcotest.(check bool) "connected" true (T.is_connected t);
  (* tier-1 core is a full clique *)
  for u = 0 to t1 - 1 do
    for v = u + 1 to t1 - 1 do
      Alcotest.(check bool)
        (Printf.sprintf "core edge %d-%d" u v)
        true (T.has_edge t u v)
    done
  done;
  (* each tier-2 node has exactly [t2_uplinks] core neighbors *)
  for v = t1 to t1 + t2 - 1 do
    let ups = List.filter (fun u -> u < t1) (T.neighbors t v) in
    Alcotest.(check int) (Printf.sprintf "uplinks of %d" v) 2 (List.length ups)
  done;
  (* each stub attaches to exactly [stub_uplinks] tier-2 providers and
     nothing else *)
  for v = t1 + t2 to t1 + t2 + stubs - 1 do
    let ns = T.neighbors t v in
    Alcotest.(check int) (Printf.sprintf "stub degree of %d" v) 2
      (List.length ns);
    List.iter
      (fun u ->
        Alcotest.(check bool)
          (Printf.sprintf "stub %d attaches to tier-2" v)
          true
          (u >= t1 && u < t1 + t2))
      ns
  done

let test_hier_auto () =
  let t = RT.hierarchical_auto (rng 11) ~nodes:512 in
  Alcotest.(check int) "node count" 512 (T.node_count t);
  Alcotest.(check bool) "connected" true (T.is_connected t);
  (* 512 /. 64 = 8 core nodes, fully meshed *)
  for u = 0 to 7 do
    for v = u + 1 to 7 do
      Alcotest.(check bool)
        (Printf.sprintf "core edge %d-%d" u v)
        true (T.has_edge t u v)
    done
  done

let test_hier_deterministic () =
  let a = RT.hierarchical_auto (rng 5) ~nodes:256 in
  let b = RT.hierarchical_auto (rng 5) ~nodes:256 in
  Alcotest.(check bool) "same seed, same graph" true (T.edges a = T.edges b)

let test_hier_invalid () =
  Alcotest.check_raises "uplinks exceed tier"
    (Invalid_argument "Random_topo.hierarchical: t2_uplinks outside [1, t1]")
    (fun () ->
      ignore
        (RT.hierarchical (rng 1) ~t1:2 ~t2:4 ~stubs:4 ~t2_uplinks:3
           ~stub_uplinks:1 ()));
  Alcotest.check_raises "auto too small"
    (Invalid_argument "Random_topo.hierarchical_auto: nodes < 8") (fun () ->
      ignore (RT.hierarchical_auto (rng 1) ~nodes:7))

(* ---------- ER sampler and stitching ---------- *)

let test_er_extremes () =
  (* p = 0: nothing sampled, stitching alone must connect -> a tree *)
  let t0 = RT.erdos_renyi (rng 3) ~nodes:40 ~p:0. in
  Alcotest.(check bool) "p=0 connected" true (T.is_connected t0);
  Alcotest.(check int) "p=0 is a tree" 39 (T.edge_count t0);
  (* p = 1: the complete graph, bypassing the geometric sampler *)
  let t1 = RT.erdos_renyi (rng 3) ~nodes:40 ~p:1. in
  Alcotest.(check int) "p=1 complete" (40 * 39 / 2) (T.edge_count t1)

let test_er_mean_degree () =
  (* The geometric-skip sampler must still produce G(n, p): at n = 2000 and
     target mean degree 6 the edge count concentrates tightly (sd ~ 77). *)
  let n = 2000 in
  let t = RT.erdos_renyi (rng 17) ~nodes:n ~p:(6. /. float_of_int (n - 1)) in
  let mean = 2. *. float_of_int (T.edge_count t) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean degree %.2f within [5.5, 6.5]" mean)
    true
    (mean > 5.5 && mean < 6.5)

let test_ensure_connected_batch () =
  (* Many singleton components stitched in one rebuild. *)
  let t = RT.ensure_connected (rng 2) (T.create ~nodes:50 ~edges:[]) in
  Alcotest.(check bool) "connected" true (T.is_connected t);
  Alcotest.(check int) "one stitch per extra component" 49 (T.edge_count t)

(* ---------- scale smoke ---------- *)

let test_generate_10k () =
  let ba = RT.barabasi_albert (rng 1) ~nodes:10_000 ~m:2 in
  Alcotest.(check bool) "BA 10k connected" true (T.is_connected ba);
  Alcotest.(check int) "BA 10k min degree" 2
    (List.fold_left min max_int (degrees ba));
  let hier = RT.hierarchical_auto (rng 1) ~nodes:10_000 in
  Alcotest.(check bool) "hier 10k connected" true (T.is_connected hier);
  let er =
    RT.erdos_renyi (rng 1) ~nodes:10_000 ~p:(6. /. float_of_int 9_999)
  in
  Alcotest.(check bool) "ER 10k connected" true (T.is_connected er)

(* One large BA simulation per paper protocol, checked against the BFS
   oracle at quiescence — the integration path the campaign's topo section
   drives, pinned here at each protocol's feasible ceiling: 1024 nodes for
   the distance-vector pair, 256 for path-vector, whose adj-RIB-in keeps
   full paths per (node, neighbor, destination) and measures in GB at 1024
   (the scale audit in DESIGN.md §15). Timeline scaling mirrors the
   section: initial convergence and post-failure re-convergence both need
   reach × per-hop pacing. *)
let test_protocol_oracle_at_scale () =
  let module E = Convergence.Engine_registry in
  List.iter
    (fun engine ->
      let name = E.name engine in
      let pv = name = "BGP" || name = "BGP-3" in
      let nodes = if pv then 256 else 1024 in
      let topo = RT.barabasi_albert (rng 31) ~nodes ~m:2 in
      let ecc a =
        Array.fold_left (fun m d -> if d < max_int then max m d else m) 0 a
      in
      let dist0 = T.bfs_distances topo 0 in
      let want = min (ecc dist0) 10 in
      let dst =
        let found = ref (nodes - 1) in
        Array.iteri
          (fun v d -> if d = want && !found = nodes - 1 then found := v)
          dist0;
        !found
      in
      let dhat = max (ecc dist0) (ecc (T.bfs_distances topo dst)) in
      let perhop =
        if name = "BGP" then 32. else if name = "BGP-3" then 5. else 6.
      in
      let allowance = 30. +. (1.3 *. perhop *. float_of_int dhat) in
      let cfg =
        {
          Convergence.Config.quick with
          rows = 3;
          cols = 3;
          degree = 4;
          traffic_start = allowance;
          warmup = allowance +. 10.;
          failure_time = allowance +. 20.;
          sim_end = allowance +. 20. +. Float.max 120. allowance;
          seed = 31;
        }
      in
      let max_metric =
        if name = "RIP" || name = "DBF" then
          Some Protocols.Dv_core.default_config.Protocols.Dv_core.infinity_metric
        else None
      in
      let mismatches = ref (-1) in
      let r =
        E.run ~topology:topo ~src:0 ~dst
          ~on_quiesce:(fun view ->
            mismatches := List.length (Check.Oracle.check ?max_metric view))
          cfg engine
      in
      Alcotest.(check int)
        (Printf.sprintf "%s: oracle clean at %d nodes" name nodes)
        0 !mismatches;
      Alcotest.(check bool) (name ^ ": delivered traffic") true
        (r.Convergence.Metrics.delivered > 0))
    E.paper_four

let () =
  Alcotest.run "net"
    [
      ( "ba",
        [
          Alcotest.test_case "basic invariants" `Quick test_ba_basic;
          Alcotest.test_case "heavy tail" `Quick test_ba_heavy_tail;
          Alcotest.test_case "deterministic" `Quick test_ba_deterministic;
          Alcotest.test_case "invalid args" `Quick test_ba_invalid;
        ] );
      ( "hier",
        [
          Alcotest.test_case "tier/uplink invariants" `Quick test_hier_tiers;
          Alcotest.test_case "auto parameterization" `Quick test_hier_auto;
          Alcotest.test_case "deterministic" `Quick test_hier_deterministic;
          Alcotest.test_case "invalid args" `Quick test_hier_invalid;
        ] );
      ( "er",
        [
          Alcotest.test_case "p extremes" `Quick test_er_extremes;
          Alcotest.test_case "mean degree at 2k" `Quick test_er_mean_degree;
          Alcotest.test_case "batched stitching" `Quick
            test_ensure_connected_batch;
        ] );
      ( "scale",
        [
          Alcotest.test_case "10k generation" `Quick test_generate_10k;
          Alcotest.test_case "oracle smoke at protocol scale ceilings" `Slow
            test_protocol_oracle_at_scale;
        ] );
    ]
