(* The check subsystem: invariant monitors, the differential oracle, and the
   fuzz harness — including "teeth" tests that feed each one a deliberately
   broken input and require it to object. *)

let mesh33 = Netsim.Mesh.generate ~rows:3 ~cols:3 ~degree:4

(* ---------- monitor: clean streams pass ---------- *)

let record time seq event = { Obs.Sink.time; seq; event }

let feed mon events =
  let sink = Check.Monitor.sink mon in
  List.iteri (fun i (t, ev) -> sink.Obs.Sink.emit (record t i ev)) events

let kinds mon =
  List.map (fun v -> v.Check.Monitor.v_kind) (Check.Monitor.finish mon)

(* A correct little story: packet 0 goes 0 -> 1 -> 2 and is delivered. *)
let clean_story =
  [
    (1.0, Obs.Event.Packet_sent { flow = 0; pkt = 0; src = 0; dst = 2 });
    (1.1, Obs.Event.Packet_forwarded { pkt = 0; node = 0; next_hop = 1; ttl = 127 });
    (1.2, Obs.Event.Packet_forwarded { pkt = 0; node = 1; next_hop = 2; ttl = 126 });
    (1.3, Obs.Event.Packet_delivered { flow = 0; pkt = 0; delay = 0.3; looped = false });
  ]

let test_monitor_clean () =
  let mon = Check.Monitor.create ~initial_ttl:127 ~topo:mesh33 () in
  feed mon clean_story;
  Alcotest.(check (list reject)) "no violations" [] (kinds mon);
  Alcotest.(check int) "nothing in flight" 0 (Check.Monitor.in_flight mon)

let test_monitor_tolerates_in_flight () =
  let mon = Check.Monitor.create ~topo:mesh33 () in
  feed mon
    [
      (1.0, Obs.Event.Packet_sent { flow = 0; pkt = 0; src = 0; dst = 2 });
      (1.1, Obs.Event.Packet_forwarded { pkt = 0; node = 0; next_hop = 1; ttl = 9 });
    ];
  Alcotest.(check (list reject)) "truncated run is fine" [] (kinds mon);
  Alcotest.(check int) "one packet outstanding" 1 (Check.Monitor.in_flight mon)

let test_monitor_anonymous_packets () =
  (* Transport ACKs are forwarded without a Packet_sent announcement; hop
     invariants still apply to them, terminations do not. *)
  let mon = Check.Monitor.create ~topo:mesh33 () in
  feed mon
    [
      (1.0, Obs.Event.Packet_forwarded { pkt = 7; node = 2; next_hop = 1; ttl = 64 });
      (1.1, Obs.Event.Packet_forwarded { pkt = 7; node = 1; next_hop = 0; ttl = 63 });
    ];
  Alcotest.(check (list reject)) "anonymous hops are legal" [] (kinds mon)

(* ---------- monitor: teeth ---------- *)

let kind = Alcotest.testable (Fmt.of_to_string Check.Monitor.string_of_kind) ( = )

let expect_kinds name story expected =
  let mon = Check.Monitor.create ~initial_ttl:127 ~topo:mesh33 () in
  feed mon story;
  Alcotest.(check (list kind)) name expected (kinds mon)

let test_double_delivery () =
  expect_kinds "second delivery flagged"
    (clean_story
    @ [ (1.4, Obs.Event.Packet_delivered { flow = 0; pkt = 0; delay = 0.4; looped = false }) ])
    [ Check.Monitor.Unknown_termination ]

let test_unsent_drop () =
  expect_kinds "dropping an unknown id flagged"
    [
      ( 1.0,
        Obs.Event.Packet_dropped
          { flow = 0; pkt = 42; reason = Netsim.Types.No_route; looped = false } );
    ]
    [ Check.Monitor.Unknown_termination ]

let test_duplicate_send () =
  expect_kinds "reused packet id flagged"
    [
      (1.0, Obs.Event.Packet_sent { flow = 0; pkt = 0; src = 0; dst = 2 });
      (1.1, Obs.Event.Packet_sent { flow = 1; pkt = 0; src = 3; dst = 5 });
    ]
    [ Check.Monitor.Duplicate_send ]

let test_non_neighbor_hop () =
  (* 0 and 8 are opposite corners of the 3x3 mesh: no link. *)
  expect_kinds "teleporting across the mesh flagged"
    [
      (1.0, Obs.Event.Packet_sent { flow = 0; pkt = 0; src = 0; dst = 8 });
      (1.1, Obs.Event.Packet_forwarded { pkt = 0; node = 0; next_hop = 8; ttl = 127 });
    ]
    [ Check.Monitor.Non_neighbor_hop ]

let test_ttl_not_decrementing () =
  expect_kinds "constant ttl flagged"
    [
      (1.0, Obs.Event.Packet_sent { flow = 0; pkt = 0; src = 0; dst = 2 });
      (1.1, Obs.Event.Packet_forwarded { pkt = 0; node = 0; next_hop = 1; ttl = 127 });
      (1.2, Obs.Event.Packet_forwarded { pkt = 0; node = 1; next_hop = 2; ttl = 127 });
    ]
    [ Check.Monitor.Ttl_violation ]

let test_teleport () =
  expect_kinds "hop starting where the packet is not flagged"
    [
      (1.0, Obs.Event.Packet_sent { flow = 0; pkt = 0; src = 0; dst = 8 });
      (1.1, Obs.Event.Packet_forwarded { pkt = 0; node = 0; next_hop = 1; ttl = 127 });
      (1.2, Obs.Event.Packet_forwarded { pkt = 0; node = 4; next_hop = 5; ttl = 126 });
    ]
    [ Check.Monitor.Teleport ]

let test_wrong_delivery_node () =
  expect_kinds "delivery away from the destination flagged"
    [
      (1.0, Obs.Event.Packet_sent { flow = 0; pkt = 0; src = 0; dst = 2 });
      (1.1, Obs.Event.Packet_forwarded { pkt = 0; node = 0; next_hop = 3; ttl = 127 });
      (1.2, Obs.Event.Packet_delivered { flow = 0; pkt = 0; delay = 0.2; looped = false });
    ]
    [ Check.Monitor.Wrong_delivery_node ]

let test_non_neighbor_ctrl () =
  expect_kinds "control message between non-adjacent routers flagged"
    [
      ( 1.0,
        Obs.Event.Ctrl_received
          { proto = "RIP"; src = 0; dst = 8; kind = Obs.Event.Mixed } );
    ]
    [ Check.Monitor.Non_neighbor_ctrl ]

(* ---------- monitor: fast-reroute discipline ---------- *)

let test_frr_hop_clean () =
  (* A backup hop is a real hop: it advances the packet and decrements the
     TTL, and a legal one raises nothing. *)
  expect_kinds "legal backup forwarding is clean"
    [
      (1.0, Obs.Event.Packet_sent { flow = 0; pkt = 0; src = 0; dst = 2 });
      (1.1, Obs.Event.Frr_forwarded { pkt = 0; node = 0; next_hop = 1; ttl = 127 });
      (1.2, Obs.Event.Packet_forwarded { pkt = 0; node = 1; next_hop = 2; ttl = 126 });
      (1.3, Obs.Event.Packet_delivered { flow = 0; pkt = 0; delay = 0.3; looped = false });
    ]
    []

let test_frr_revisit () =
  expect_kinds "backup forwarding to a visited node flagged"
    [
      (1.0, Obs.Event.Packet_sent { flow = 0; pkt = 0; src = 0; dst = 8 });
      (1.1, Obs.Event.Packet_forwarded { pkt = 0; node = 0; next_hop = 1; ttl = 127 });
      (1.2, Obs.Event.Frr_forwarded { pkt = 0; node = 1; next_hop = 0; ttl = 126 });
    ]
    [ Check.Monitor.Frr_revisit ]

let test_frr_failed_link () =
  expect_kinds "backup forwarding across a failed link flagged"
    [
      (0.5, Obs.Event.Link_failed { u = 2; v = 1 });
      (1.0, Obs.Event.Packet_sent { flow = 0; pkt = 0; src = 1; dst = 8 });
      (1.1, Obs.Event.Frr_forwarded { pkt = 0; node = 1; next_hop = 2; ttl = 127 });
    ]
    [ Check.Monitor.Frr_failed_link ]

let test_frr_healed_link_legal () =
  expect_kinds "backup forwarding across a healed link is clean"
    [
      (0.5, Obs.Event.Link_failed { u = 1; v = 2 });
      (0.9, Obs.Event.Link_healed { u = 1; v = 2 });
      (1.0, Obs.Event.Packet_sent { flow = 0; pkt = 0; src = 1; dst = 8 });
      (1.1, Obs.Event.Frr_forwarded { pkt = 0; node = 1; next_hop = 2; ttl = 127 });
    ]
    []

(* ---------- monitor on a real run ---------- *)

let quick_cfg =
  {
    Convergence.Config.quick with
    rows = 3;
    cols = 3;
    send_rate_pps = 20.;
    traffic_start = 30.;
    warmup = 30.;
    failure_time = 35.;
    sim_end = 100.;
    seed = 11;
  }

let run_with_checks ?on_quiesce engine =
  let topo =
    Netsim.Mesh.generate ~rows:quick_cfg.Convergence.Config.rows
      ~cols:quick_cfg.Convergence.Config.cols
      ~degree:quick_cfg.Convergence.Config.degree
  in
  let mon =
    Check.Monitor.create ~initial_ttl:quick_cfg.Convergence.Config.ttl ~topo ()
  in
  let r =
    Convergence.Engine_registry.run ~monitors:[ Check.Monitor.sink mon ]
      ?on_quiesce quick_cfg engine
  in
  (mon, r)

let test_real_runs_hold_invariants () =
  List.iter
    (fun engine ->
      let mon, _ = run_with_checks engine in
      Alcotest.(check int)
        (Convergence.Engine_registry.name engine ^ " run is violation-free")
        0
        (List.length (Check.Monitor.finish mon)))
    Convergence.Engine_registry.paper_four

(* ---------- oracle ---------- *)

let view_of_tables topo ~next_hop ~metric =
  {
    Convergence.Runner.rv_topology = topo;
    rv_next_hop = (fun ~src ~dst -> next_hop src dst);
    rv_metric = (fun ~src ~dst -> metric src dst);
    rv_backup = None;
  }

(* A synthetic, perfectly converged view: BFS tables computed right here. *)
let perfect_view topo =
  let n = Netsim.Topology.node_count topo in
  let dist = Array.init n (fun dst -> Netsim.Topology.bfs_distances topo dst) in
  view_of_tables topo
    ~metric:(fun src dst ->
      if dist.(dst).(src) = max_int then None else Some dist.(dst).(src))
    ~next_hop:(fun src dst ->
      if dist.(dst).(src) = max_int then None
      else
        List.find_opt
          (fun h -> dist.(dst).(h) = dist.(dst).(src) - 1)
          (Netsim.Topology.neighbors topo src))

let test_oracle_accepts_perfect_tables () =
  Alcotest.(check int) "no mismatches" 0
    (List.length (Check.Oracle.check (perfect_view mesh33)))

let test_oracle_max_metric () =
  (* With max_metric 2, any destination >= 2 hops away must be unrouted; the
     perfect tables still route them, so every such pair is a mismatch. *)
  let mismatches = Check.Oracle.check ~max_metric:2 (perfect_view mesh33) in
  let far_pairs =
    List.length
      (List.filter
         (fun m ->
           match m.Check.Oracle.m_kind with
           | Check.Oracle.Unreachable_but_routed _ -> true
           | _ -> false)
         mismatches)
  in
  Alcotest.(check bool) "far pairs rejected" true (far_pairs > 0);
  Alcotest.(check int) "nothing else rejected" far_pairs (List.length mismatches)

let test_oracle_teeth () =
  let ideal = perfect_view mesh33 in
  let broken_metric =
    view_of_tables mesh33
      ~metric:(fun src dst ->
        ideal.Convergence.Runner.rv_metric ~src ~dst
        |> Option.map (fun m -> if src = 0 && dst = 8 then m + 1 else m))
      ~next_hop:(fun src dst -> ideal.Convergence.Runner.rv_next_hop ~src ~dst)
  in
  (match Check.Oracle.check broken_metric with
  | [ { Check.Oracle.m_src = 0; m_dst = 8; m_kind = Check.Oracle.Wrong_metric _ } ] -> ()
  | ms ->
    Alcotest.failf "expected one wrong-metric mismatch, got %a"
      Fmt.(Dump.list Check.Oracle.pp_mismatch)
      ms);
  let black_hole =
    view_of_tables mesh33
      ~metric:(fun src dst ->
        if src = 4 then None else ideal.Convergence.Runner.rv_metric ~src ~dst)
      ~next_hop:(fun src dst ->
        if src = 4 then None else ideal.Convergence.Runner.rv_next_hop ~src ~dst)
  in
  Alcotest.(check int) "a silent black hole is 8 missing routes" 8
    (List.length (Check.Oracle.check black_hole) / 2)
    (* each pair reports both Wrong_metric and Reachable_but_unrouted *);
  let looping =
    (* 1 claims dst 2 is behind 0: a next hop that is not closer. *)
    view_of_tables mesh33
      ~metric:(fun src dst -> ideal.Convergence.Runner.rv_metric ~src ~dst)
      ~next_hop:(fun src dst ->
        if src = 1 && dst = 2 then Some 0
        else ideal.Convergence.Runner.rv_next_hop ~src ~dst)
  in
  match Check.Oracle.check looping with
  | [ { Check.Oracle.m_kind = Check.Oracle.Non_shortest_next_hop _; _ } ] -> ()
  | ms ->
    Alcotest.failf "expected one non-shortest mismatch, got %a"
      Fmt.(Dump.list Check.Oracle.pp_mismatch)
      ms

(* BGP's 30 s MRAI needs a few rounds on either side of the failure; the
   tight monitor schedule above is not enough for its tables to settle. *)
let converged_cfg =
  {
    quick_cfg with
    traffic_start = 300.;
    warmup = 300.;
    failure_time = 310.;
    sim_end = 700.;
  }

let test_oracle_on_converged_runs () =
  (* Every paper protocol, run well past convergence, must match the oracle
     exactly at quiescence. *)
  List.iter
    (fun engine ->
      let name = Convergence.Engine_registry.name engine in
      let max_metric =
        match name with
        | "RIP" | "DBF" ->
          Some Protocols.Dv_core.default_config.Protocols.Dv_core.infinity_metric
        | _ -> None
      in
      let mismatches = ref None in
      let _ =
        Convergence.Engine_registry.run
          ~on_quiesce:(fun view ->
            mismatches := Some (Check.Oracle.check ?max_metric view))
          converged_cfg engine
      in
      match !mismatches with
      | None -> Alcotest.failf "%s: on_quiesce never ran" name
      | Some [] -> ()
      | Some ms ->
        Alcotest.failf "%s: %a" name Fmt.(Dump.list Check.Oracle.pp_mismatch) ms)
    Convergence.Engine_registry.paper_four

(* ---------- oracle: fast-reroute backups ---------- *)

let with_backup view backup =
  { view with Convergence.Runner.rv_backup = Some (fun ~src ~dst -> backup src dst) }

let frr_kinds ms =
  List.map (fun m -> m.Check.Oracle.m_kind) ms

let test_oracle_frr_matches_frr_module () =
  (* Differential: the backups the Frr module computes from perfect tables
     must satisfy the oracle's independent BFS re-derivation — and leave no
     cell the oracle considers coverable without a backup. *)
  let view = perfect_view mesh33 in
  let n = Netsim.Topology.node_count mesh33 in
  let f = Frr.create ~n ~neighbors:(Netsim.Topology.neighbors mesh33) in
  for dst = 0 to n - 1 do
    Frr.mark_dirty f ~dst
  done;
  ignore (Frr.arm_sweep f);
  Frr.sweep f
    ~metric:(fun ~node ~dst -> view.Convergence.Runner.rv_metric ~src:node ~dst)
    ~next_hop:(fun ~node ~dst -> view.Convergence.Runner.rv_next_hop ~src:node ~dst)
    ~on_install:(fun ~node:_ ~dst:_ ~backup:_ -> ());
  let v = with_backup view (fun src dst -> Frr.backup f ~node:src ~dst) in
  Alcotest.(check int) "frr table passes the oracle" 0
    (List.length (Check.Oracle.check_frr v))

let test_oracle_frr_skipped_without_backups () =
  Alcotest.(check int) "no backup view, no frr mismatches" 0
    (List.length (Check.Oracle.check_frr (perfect_view mesh33)))

let test_oracle_frr_teeth () =
  let view = perfect_view mesh33 in
  (* echoing the primary as its own backup *)
  let as_primary =
    with_backup view (fun src dst -> view.Convergence.Runner.rv_next_hop ~src ~dst)
  in
  let ms = Check.Oracle.check_frr as_primary in
  Alcotest.(check bool) "primary-as-backup flagged" true (ms <> []);
  List.iter
    (function
      | Check.Oracle.Frr_backup_is_primary _ -> ()
      | k ->
        Alcotest.failf "unexpected kind %a" Check.Oracle.pp_mismatch
          { Check.Oracle.m_src = 0; m_dst = 0; m_kind = k })
    (frr_kinds ms);
  (* a backup that is not even a neighbor *)
  let teleporting =
    with_backup view (fun src dst ->
        if src = 0 && dst = 2 then Some 8 else None)
  in
  Alcotest.(check bool) "non-neighbor backup flagged" true
    (List.exists
       (function Check.Oracle.Frr_invalid_backup _ -> true | _ -> false)
       (frr_kinds (Check.Oracle.check_frr teleporting)));
  (* a neighbor that fails the loop-free inequality: for 0 -> 2 the detour
     via 3 is as long as going back (dist(3,2) = 3 = 1 + dist(0,2)) *)
  let looping_backup =
    with_backup view (fun src dst ->
        if src = 0 && dst = 2 then Some 3 else None)
  in
  Alcotest.(check bool) "non-loop-free backup flagged" true
    (List.exists
       (function Check.Oracle.Frr_not_loop_free _ -> true | _ -> false)
       (frr_kinds (Check.Oracle.check_frr looping_backup)));
  (* an empty table where alternates exist: e.g. 0 -> 4 is coverable via 3 *)
  let empty = with_backup view (fun _ _ -> None) in
  let ms = Check.Oracle.check_frr empty in
  Alcotest.(check bool) "missing backups flagged" true (ms <> []);
  List.iter
    (function
      | Check.Oracle.Frr_missing_backup _ -> ()
      | k ->
        Alcotest.failf "unexpected kind %a" Check.Oracle.pp_mismatch
          { Check.Oracle.m_src = 0; m_dst = 0; m_kind = k })
    (frr_kinds ms)

(* ---------- fast reroute on a real run ---------- *)

(* A 7x7 degree-4 mesh with the paper's single mid-path failure: RIP's slow
   detection leaves a long no-route window that precomputed backups should
   mostly cover. Both arms must stay violation-free under the full monitor,
   including the FRR hop discipline. *)
let frr_cfg =
  {
    Convergence.Config.quick with
    rows = 7;
    cols = 7;
    degree = 4;
    send_rate_pps = 50.;
    traffic_start = 60.;
    warmup = 70.;
    failure_time = 80.;
    sim_end = 200.;
    seed = 3;
  }

let frr_arm ~frr =
  let topo =
    Netsim.Mesh.generate ~rows:frr_cfg.Convergence.Config.rows
      ~cols:frr_cfg.Convergence.Config.cols
      ~degree:frr_cfg.Convergence.Config.degree
  in
  let mon =
    Check.Monitor.create ~initial_ttl:frr_cfg.Convergence.Config.ttl ~topo ()
  in
  let r =
    Convergence.Engine_registry.run ~frr ~monitors:[ Check.Monitor.sink mon ]
      frr_cfg Convergence.Engine_registry.rip
  in
  (List.length (Check.Monitor.finish mon), r.Convergence.Metrics.drops_no_route)

let test_frr_run_reduces_drops () =
  let violations_off, drops_off = frr_arm ~frr:false in
  let violations_on, drops_on = frr_arm ~frr:true in
  Alcotest.(check int) "frr-off run is violation-free" 0 violations_off;
  Alcotest.(check int) "frr-on run is violation-free" 0 violations_on;
  Alcotest.(check bool)
    (Printf.sprintf "backups reduce no-route drops (%d -> %d)" drops_off drops_on)
    true
    (drops_on < drops_off)

let test_frr_run_deterministic () =
  let _, a = frr_arm ~frr:true in
  let _, b = frr_arm ~frr:true in
  Alcotest.(check int) "frr-on runs are reproducible" a b

(* ---------- the injected-bug demo ---------- *)

(* RIP with failure detection ripped out: the router next to the broken link
   keeps forwarding into it, and at quiescence its table still disagrees with
   shortest paths on the surviving topology. The differential oracle must
   catch this class of bug (the monitor cannot — the packets themselves still
   hop along real links). *)
module Blind_rip = struct
  include Protocols.Rip

  let on_link_down _ ~neighbor:_ = ()
end

let test_oracle_catches_blind_rip () =
  let module R = Convergence.Runner.Make (Blind_rip) in
  let mismatches = ref [] in
  let _ =
    R.run ~label:"blind-rip"
      ~on_quiesce:(fun view ->
        mismatches :=
          Check.Oracle.check
            ~max_metric:
              Protocols.Dv_core.default_config.Protocols.Dv_core.infinity_metric
            view)
      quick_cfg Protocols.Rip.default_config
  in
  Alcotest.(check bool)
    "oracle reports stale routes into the failed link" true
    (!mismatches <> [])

(* ---------- fuzz harness ---------- *)

let test_fuzz_deterministic () =
  let g = QCheck2.Gen.generate ~n:5 ~rand:(Random.State.make [| 7 |]) Check.Fuzz.scenario_gen in
  let h = QCheck2.Gen.generate ~n:5 ~rand:(Random.State.make [| 7 |]) Check.Fuzz.scenario_gen in
  Alcotest.(check (list string))
    "same seed, same scenarios"
    (List.map Check.Fuzz.show_scenario g)
    (List.map Check.Fuzz.show_scenario h)

let test_fuzz_failures_never_partition () =
  (* For any scenario, the resolved schedule keeps the network connected even
     with every failed link removed simultaneously. *)
  List.iter
    (fun sc ->
      let topo = Check.Fuzz.topology_of sc.Check.Fuzz.topo in
      Alcotest.(check bool) "connected" true (Netsim.Topology.is_connected topo))
    (QCheck2.Gen.generate ~n:25 ~rand:(Random.State.make [| 3 |])
       Check.Fuzz.scenario_gen)

let test_fuzz_regression_bgp_lossy_heal () =
  (* Shrunk by [rcsim fuzz --runs 100 --seed 1234 -p bgp] (ROADMAP item 6).
     Node 16's only neighbor is 14; a burst 14 sent while link 4-12 was down
     lost one segment to the 9% control loss, stranding the rest — including
     the post-heal shortest-path update — in 16's reorder buffer. The
     cumulative ACK that finally covered them fed multi-minute
     (send -> ack) spans into the RTO estimator, pinning the RTO at rto_max
     (60 s); the last retransmission before sim_end was lost and 16 kept a
     stale 5-hop path to 12 against the oracle's 3. Fixed by timing only the
     gap-filling segment and collapsing backoff on forward progress
     (lib/fault/rtx.ml); this scenario pins the whole arc end to end. *)
  let sc =
    Check.Fuzz.
      {
        topo = Waxman { nodes = 20; tseed = 4479 };
        flows = [ (0, 0) ];
        rate = 2;
        cfg_seed = 28385;
        failures =
          [
            { fail_dt = 11; pick = 4030; heal = Some 18 };
            { fail_dt = 11; pick = 5385; heal = None };
            { fail_dt = 28; pick = 8007; heal = Some 10 };
          ];
        loss_pct = 9;
        flap = None;
        dv_period = 20;
        dv_damp_max = 2;
        mrai_pct = 70;
        frr = false;
      }
  in
  List.iter
    (fun proto ->
      let o = Check.Fuzz.run_scenario ~proto sc in
      (match o.Check.Fuzz.o_mismatches with
      | [] -> ()
      | ms ->
        Alcotest.failf "%s: %d oracle mismatch(es), first: %a" proto
          (List.length ms) Check.Oracle.pp_mismatch (List.hd ms));
      Alcotest.(check bool) (proto ^ " holds invariants") true
        (Check.Fuzz.ok o))
    [ "bgp"; "bgp-3" ]

let test_fuzz_smoke () =
  match Check.Fuzz.check ~proto:"RIP" ~runs:3 ~seed:5 with
  | Check.Fuzz.Passed { runs } -> Alcotest.(check int) "ran all" 3 runs
  | Check.Fuzz.Failed { counterexample; _ } ->
    Alcotest.failf "fuzz failed on %a" Check.Fuzz.pp_scenario counterexample
  | Check.Fuzz.Crashed { message; _ } -> Alcotest.failf "fuzz crashed: %s" message

let () =
  Alcotest.run "check"
    [
      ( "monitor",
        [
          Alcotest.test_case "clean story" `Quick test_monitor_clean;
          Alcotest.test_case "in-flight at end is fine" `Quick
            test_monitor_tolerates_in_flight;
          Alcotest.test_case "anonymous packets" `Quick
            test_monitor_anonymous_packets;
          Alcotest.test_case "double delivery" `Quick test_double_delivery;
          Alcotest.test_case "unsent drop" `Quick test_unsent_drop;
          Alcotest.test_case "duplicate send" `Quick test_duplicate_send;
          Alcotest.test_case "non-neighbor hop" `Quick test_non_neighbor_hop;
          Alcotest.test_case "ttl must decrement" `Quick
            test_ttl_not_decrementing;
          Alcotest.test_case "teleport" `Quick test_teleport;
          Alcotest.test_case "wrong delivery node" `Quick
            test_wrong_delivery_node;
          Alcotest.test_case "non-neighbor ctrl" `Quick test_non_neighbor_ctrl;
          Alcotest.test_case "legal frr hop" `Quick test_frr_hop_clean;
          Alcotest.test_case "frr revisit" `Quick test_frr_revisit;
          Alcotest.test_case "frr across failed link" `Quick
            test_frr_failed_link;
          Alcotest.test_case "frr across healed link" `Quick
            test_frr_healed_link_legal;
          Alcotest.test_case "real runs are violation-free" `Quick
            test_real_runs_hold_invariants;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "accepts perfect tables" `Quick
            test_oracle_accepts_perfect_tables;
          Alcotest.test_case "bounded metric" `Quick test_oracle_max_metric;
          Alcotest.test_case "rejects corrupted tables" `Quick test_oracle_teeth;
          Alcotest.test_case "frr differential vs frr module" `Quick
            test_oracle_frr_matches_frr_module;
          Alcotest.test_case "frr skipped without backups" `Quick
            test_oracle_frr_skipped_without_backups;
          Alcotest.test_case "frr rejects bad backups" `Quick
            test_oracle_frr_teeth;
          Alcotest.test_case "frr reduces no-route drops" `Quick
            test_frr_run_reduces_drops;
          Alcotest.test_case "frr runs are deterministic" `Quick
            test_frr_run_deterministic;
          Alcotest.test_case "matches all four converged protocols" `Quick
            test_oracle_on_converged_runs;
          Alcotest.test_case "catches RIP without failure detection" `Quick
            test_oracle_catches_blind_rip;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "generator is seed-deterministic" `Quick
            test_fuzz_deterministic;
          Alcotest.test_case "scenario topologies are connected" `Quick
            test_fuzz_failures_never_partition;
          Alcotest.test_case "smoke" `Quick test_fuzz_smoke;
          Alcotest.test_case "regression: BGP lossy heal (RTO divergence)"
            `Quick test_fuzz_regression_bgp_lossy_heal;
        ] );
    ]
