(* The fast-reroute backup table: LFA selection, local-detection exclusion,
   the retention rule for withdrawn primaries, and the dirtying entry points
   the runner drives on topology events. *)

(* The 4-cycle 0-1-3-2-0: every (node, dst) pair at distance 2 has exactly
   one loop-free alternate (the other side of the square), and adjacent
   pairs have none (the detour is as long as going back). *)
let square_neighbors = function
  | 0 -> [ 1; 2 ]
  | 1 -> [ 0; 3 ]
  | 2 -> [ 0; 3 ]
  | 3 -> [ 1; 2 ]
  | _ -> []

let square_dist = [| [| 0; 1; 1; 2 |]; [| 1; 0; 2; 1 |]; [| 1; 2; 0; 1 |]; [| 2; 1; 1; 0 |] |]

let square_metric ~node ~dst = Some square_dist.(node).(dst)

(* Shortest-path next hop, lowest id first: 0 reaches 3 via 1, 3 reaches 0
   via 1, and so on. *)
let square_next_hop ~node ~dst =
  if node = dst then None
  else
    List.find_opt
      (fun h -> square_dist.(h).(dst) = square_dist.(node).(dst) - 1)
      (square_neighbors node)

let make_square () = Frr.create ~n:4 ~neighbors:square_neighbors

let sweep_all ?(on_install = fun ~node:_ ~dst:_ ~backup:_ -> ()) f =
  for dst = 0 to Frr.node_count f - 1 do
    Frr.mark_dirty f ~dst
  done;
  ignore (Frr.arm_sweep f);
  Frr.sweep f ~metric:square_metric ~next_hop:square_next_hop ~on_install

let test_lfa_selection () =
  let f = make_square () in
  sweep_all f;
  (* 0 -> 3 goes via 1; neighbor 2 satisfies dist(2,3) < 1 + dist(0,3). *)
  Alcotest.(check (option int)) "0 -> 3 backs up via 2" (Some 2)
    (Frr.backup f ~node:0 ~dst:3);
  Alcotest.(check int) "backup_id agrees" 2 (Frr.backup_id f ~node:0 ~dst:3);
  (* 0 -> 1 is adjacent: the only alternate 2 has dist(2,1) = 2 = 1 +
     dist(0,1) — not loop-free, so no backup. *)
  Alcotest.(check (option int)) "0 -> 1 has no LFA" None
    (Frr.backup f ~node:0 ~dst:1);
  (* the table is symmetric on the square *)
  Alcotest.(check (option int)) "3 -> 0 backs up via 2" (Some 2)
    (Frr.backup f ~node:3 ~dst:0)

let test_preference_order () =
  (* Fabricated tables on a 5-node star around 0: for destination 4, both
     neighbors 2 (equal-metric, loop-free) and 3 (downstream) qualify;
     the downstream alternate must win even with the larger node id. *)
  let neighbors = function 0 -> [ 1; 2; 3 ] | _ -> [ 0 ] in
  let metric ~node ~dst =
    if dst <> 4 then None
    else
      match node with 0 -> Some 2 | 1 -> Some 1 | 2 -> Some 2 | 3 -> Some 1 | _ -> None
  in
  let next_hop ~node ~dst =
    if dst = 4 && node = 0 then Some 1 else if dst = 4 then Some 4 else None
  in
  let f = Frr.create ~n:5 ~neighbors in
  Alcotest.(check int) "downstream beats equal-metric" 3
    (Frr.compute_backup f ~metric ~next_hop ~node:0 ~dst:4)

let test_down_slot_excluded () =
  let f = make_square () in
  sweep_all f;
  Alcotest.(check bool) "newly marked" true (Frr.mark_down f ~node:0 ~neighbor:2);
  Alcotest.(check bool) "already marked" false (Frr.mark_down f ~node:0 ~neighbor:2);
  Alcotest.(check bool) "node is active" true (Frr.active f 0);
  Alcotest.(check bool) "directed view" false (Frr.is_down f ~node:2 ~neighbor:0);
  (* Recomputing 0's column must not hand back the detected-down neighbor. *)
  sweep_all f;
  Alcotest.(check (option int)) "down slot excluded" None
    (Frr.backup f ~node:0 ~dst:3);
  Frr.mark_up f ~node:0 ~neighbor:2;
  sweep_all f;
  Alcotest.(check (option int)) "restored after recovery" (Some 2)
    (Frr.backup f ~node:0 ~dst:3)

let test_retention_on_withdrawn_primary () =
  let f = make_square () in
  sweep_all f;
  (* 0's primary toward 3 is withdrawn mid-churn: the sweep must keep the
     last converged backup rather than erase it during the loss window. *)
  let churn_next_hop ~node ~dst =
    if node = 0 && dst = 3 then None else square_next_hop ~node ~dst
  in
  Frr.mark_dirty f ~dst:3;
  ignore (Frr.arm_sweep f);
  Frr.sweep f ~metric:square_metric ~next_hop:churn_next_hop
    ~on_install:(fun ~node:_ ~dst:_ ~backup:_ -> ());
  Alcotest.(check (option int)) "backup retained through withdrawal" (Some 2)
    (Frr.backup f ~node:0 ~dst:3)

let test_dirty_backups_via () =
  let f = make_square () in
  sweep_all f;
  ignore (Frr.mark_down f ~node:0 ~neighbor:2);
  (* Without dirtying, a sweep over an empty dirty set leaves the stale
     alternate in place... *)
  ignore (Frr.arm_sweep f);
  Frr.sweep f ~metric:square_metric ~next_hop:square_next_hop
    ~on_install:(fun ~node:_ ~dst:_ ~backup:_ -> ());
  Alcotest.(check (option int)) "stale without dirtying" (Some 2)
    (Frr.backup f ~node:0 ~dst:3);
  (* ...and dirty_backups_via is exactly the repair: it marks every
     destination whose backup crossed the dead link. *)
  Frr.dirty_backups_via f ~node:0 ~neighbor:2;
  ignore (Frr.arm_sweep f);
  Frr.sweep f ~metric:square_metric ~next_hop:square_next_hop
    ~on_install:(fun ~node:_ ~dst:_ ~backup:_ -> ());
  Alcotest.(check (option int)) "recomputed after dirtying" None
    (Frr.backup f ~node:0 ~dst:3)

let test_dirty_missing_backups () =
  let f = make_square () in
  ignore (Frr.mark_down f ~node:0 ~neighbor:2);
  sweep_all f;
  Alcotest.(check (option int)) "no backup while down" None
    (Frr.backup f ~node:0 ~dst:3);
  Frr.mark_up f ~node:0 ~neighbor:2;
  Frr.dirty_missing_backups f ~node:0;
  let installs = ref [] in
  ignore (Frr.arm_sweep f);
  Frr.sweep f ~metric:square_metric ~next_hop:square_next_hop
    ~on_install:(fun ~node ~dst ~backup -> installs := (node, dst, backup) :: !installs);
  Alcotest.(check (option int)) "alternate appears after heal" (Some 2)
    (Frr.backup f ~node:0 ~dst:3);
  Alcotest.(check bool) "install traced" true (List.mem (0, 3, 2) !installs)

let test_sweep_debounce_and_idempotence () =
  let f = make_square () in
  Frr.mark_dirty f ~dst:3;
  Alcotest.(check bool) "first arm schedules" true (Frr.arm_sweep f);
  Frr.mark_dirty f ~dst:0;
  Alcotest.(check bool) "second arm debounced" false (Frr.arm_sweep f);
  Frr.sweep f ~metric:square_metric ~next_hop:square_next_hop
    ~on_install:(fun ~node:_ ~dst:_ ~backup:_ -> ());
  Alcotest.(check bool) "re-armable after sweep" true (Frr.arm_sweep f);
  (* A sweep against unchanged tables installs nothing new. *)
  let installs = ref 0 in
  sweep_all f;
  sweep_all f ~on_install:(fun ~node:_ ~dst:_ ~backup:_ -> incr installs);
  Alcotest.(check int) "idempotent sweep is silent" 0 !installs

let () =
  Alcotest.run "frr"
    [
      ( "backup table",
        [
          Alcotest.test_case "LFA selection" `Quick test_lfa_selection;
          Alcotest.test_case "preference order" `Quick test_preference_order;
          Alcotest.test_case "down slot excluded" `Quick test_down_slot_excluded;
          Alcotest.test_case "retention on withdrawn primary" `Quick
            test_retention_on_withdrawn_primary;
          Alcotest.test_case "dirty backups via dead link" `Quick
            test_dirty_backups_via;
          Alcotest.test_case "dirty missing backups on heal" `Quick
            test_dirty_missing_backups;
          Alcotest.test_case "debounce and idempotence" `Quick
            test_sweep_debounce_and_idempotence;
        ] );
    ]
