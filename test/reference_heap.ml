(* The pre-rewrite event heap, kept verbatim as a differential oracle.

   This is the boxed entry-record implementation the engine shipped with
   before the structure-of-arrays rewrite (including its swap-based sifts).
   The property tests drive identical (time, seq) streams through this heap
   and [Dessim.Heap] and require identical pop sequences — the SoA layout is
   an optimization, never a behavior change.

   (The original [ensure_capacity] seeded grown arrays with [t.arr.(0)] and
   [pop] parked the popped entry back into the array — both pin payloads for
   the GC. That retention bug is preserved here on purpose: this module is an
   ordering oracle, not a memory-behavior one; the GC fix is asserted against
   [Dessim.Heap] directly by the weak-pointer test.) *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = { mutable arr : 'a entry array; mutable size : int }

let create () = { arr = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let ensure_capacity t entry =
  let cap = Array.length t.arr in
  if cap = 0 then t.arr <- Array.make 16 entry
  else if t.size = cap then begin
    let bigger = Array.make (2 * cap) t.arr.(0) in
    Array.blit t.arr 0 bigger 0 cap;
    t.arr <- bigger
  end

let rec sift_up arr i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less arr.(i) arr.(parent) then begin
      let tmp = arr.(i) in
      arr.(i) <- arr.(parent);
      arr.(parent) <- tmp;
      sift_up arr parent
    end
  end

let rec sift_down arr size i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = if left < size && less arr.(left) arr.(i) then left else i in
  let smallest =
    if right < size && less arr.(right) arr.(smallest) then right else smallest
  in
  if smallest <> i then begin
    let tmp = arr.(i) in
    arr.(i) <- arr.(smallest);
    arr.(smallest) <- tmp;
    sift_down arr size smallest
  end

let add t ~time ~seq payload =
  let entry = { time; seq; payload } in
  ensure_capacity t entry;
  t.arr.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t.arr (t.size - 1)

let min_elt t =
  if t.size = 0 then None
  else
    let e = t.arr.(0) in
    Some (e.time, e.seq, e.payload)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.arr.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.arr.(0) <- t.arr.(t.size);
      sift_down t.arr t.size 0
    end;
    t.arr.(t.size) <- top;
    Some (top.time, top.seq, top.payload)
  end

let clear t =
  t.arr <- [||];
  t.size <- 0

let to_sorted_list t =
  let rec drain acc =
    match pop t with None -> List.rev acc | Some e -> drain (e :: acc)
  in
  drain []
