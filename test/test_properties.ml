(* Property-based tests for the engine and net layers.

   Randomness discipline (repo idiom): QCheck generates plain integers —
   seeds, sizes, indices — and every structure under test is built
   deterministically from them via [Dessim.Rng.create], so a failing case
   reproduces from its printed counterexample alone. *)

(* ---------- engine: heap ---------- *)

(* Pop order under mixed inserts: keys (time, seq) come out lexicographically
   nondecreasing, i.e. by time, FIFO within a time. *)
let heap_pop_order =
  QCheck.Test.make ~name:"heap pops (time, seq) in lexicographic order"
    ~count:200
    QCheck.(list (int_bound 50))
    (fun times ->
      let h = Dessim.Heap.create () in
      List.iteri
        (fun seq t -> Dessim.Heap.add h ~time:(float_of_int t) ~seq seq)
        times;
      let rec drain prev =
        match Dessim.Heap.pop h with
        | None -> true
        | Some (t, seq, _) -> (t, seq) > prev && drain (t, seq)
      in
      drain (neg_infinity, -1))

let heap_stability =
  QCheck.Test.make
    ~name:"heap is FIFO-stable across equal timestamps" ~count:200
    QCheck.(list (int_bound 5))
    (fun times ->
      (* Many duplicate timestamps; payload = insertion index. Within each
         timestamp, payloads must come out in insertion order. *)
      let h = Dessim.Heap.create () in
      List.iteri
        (fun seq t -> Dessim.Heap.add h ~time:(float_of_int t) ~seq seq)
        times;
      let by_time = Hashtbl.create 8 in
      let ok = ref true in
      let rec drain () =
        match Dessim.Heap.pop h with
        | None -> ()
        | Some (t, _, payload) ->
          (match Hashtbl.find_opt by_time t with
          | Some last when payload <= last -> ok := false
          | _ -> ());
          Hashtbl.replace by_time t payload;
          drain ()
      in
      drain ();
      !ok)

(* ---------- engine: scheduler ---------- *)

(* Random schedule/cancel interleavings: every surviving event fires exactly
   once, in nondecreasing time with FIFO tie-breaks, and no cancelled event
   ever runs. Events are scheduled up front from integer specs, then a
   deterministically chosen subset is cancelled. *)
let scheduler_insert_cancel =
  QCheck.Test.make
    ~name:"scheduler: cancelled events never fire, the rest fire in order"
    ~count:200
    QCheck.(pair (list (pair (int_bound 20) bool)) small_nat)
    (fun (specs, _salt) ->
      let sched = Dessim.Scheduler.create () in
      let fired = ref [] in
      let handles =
        List.mapi
          (fun i (t, _) ->
            Dessim.Scheduler.schedule sched ~at:(float_of_int t) (fun () ->
                fired := i :: !fired))
          specs
      in
      List.iteri
        (fun i (_, cancel) -> if cancel then Dessim.Scheduler.cancel (List.nth handles i))
        specs;
      Dessim.Scheduler.run sched;
      let fired = List.rev !fired in
      let expected_survivors =
        List.filteri (fun i _ -> not (snd (List.nth specs i))) specs |> List.length
      in
      List.length fired = expected_survivors
      && List.for_all (fun i -> not (snd (List.nth specs i))) fired
      &&
      (* nondecreasing time, FIFO (by scheduling index) within a time *)
      let keyed = List.map (fun i -> (fst (List.nth specs i), i)) fired in
      List.sort compare keyed = keyed)

(* ---------- engine: rng ---------- *)

let stream n rng = List.init n (fun _ -> Dessim.Rng.bits64 rng)

let rng_same_seed_same_stream =
  QCheck.Test.make ~name:"rng: equal seeds yield equal streams" ~count:200
    QCheck.small_nat (fun seed ->
      stream 16 (Dessim.Rng.create seed) = stream 16 (Dessim.Rng.create seed))

let rng_split_streams_distinct =
  QCheck.Test.make
    ~name:"rng: split streams are distinct from the parent and each other"
    ~count:200 QCheck.small_nat (fun seed ->
      let parent = Dessim.Rng.create seed in
      let a = Dessim.Rng.split parent in
      let b = Dessim.Rng.split parent in
      let sp = stream 16 parent and sa = stream 16 a and sb = stream 16 b in
      sp <> sa && sp <> sb && sa <> sb)

let rng_copy_independent =
  QCheck.Test.make ~name:"rng: a copy replays the original's stream"
    ~count:200 QCheck.small_nat (fun seed ->
      let orig = Dessim.Rng.create seed in
      let copy = Dessim.Rng.copy orig in
      stream 16 orig = stream 16 copy)

(* ---------- net: generated topologies ---------- *)

let mean_degree t =
  2.0
  *. float_of_int (Netsim.Topology.edge_count t)
  /. float_of_int (Netsim.Topology.node_count t)

(* The torus closes the border, so "requested degree" is exact at every
   node — the strongest form of the mean-degree contract. *)
let torus_degree_exact =
  QCheck.Test.make ~name:"torus mesh: every node has the requested degree"
    ~count:60
    QCheck.(triple (5 -- 8) (5 -- 8) (3 -- 8))
    (fun (rows, cols, degree) ->
      let rows = if degree land 1 = 1 && rows land 1 = 1 then rows + 1 else rows in
      let t = Netsim.Mesh.generate_torus ~rows ~cols ~degree in
      Netsim.Topology.is_connected t
      && List.for_all
           (fun v -> Netsim.Topology.degree t v = degree)
           (List.init (Netsim.Topology.node_count t) Fun.id)
      && Float.abs (mean_degree t -. float_of_int degree) = 0.0)

(* Erdos-Renyi with p = 4/(n-1) requests mean degree 4. The +-1 bound is
   exhaustively verified over this exact (n, tseed) space — large n keeps the
   sample deviation plus connectivity stitching inside one hop. *)
let er_connected_mean_degree =
  QCheck.Test.make
    ~name:"erdos-renyi: connected, mean degree within 1 of requested"
    ~count:100
    QCheck.(pair (oneofl [ 150; 175; 200; 225; 250 ]) (int_bound 1999))
    (fun (nodes, tseed) ->
      let p = 4.0 /. float_of_int (nodes - 1) in
      let t = Netsim.Random_topo.erdos_renyi (Dessim.Rng.create tseed) ~nodes ~p in
      Netsim.Topology.is_connected t
      && Float.abs (mean_degree t -. 4.0) <= 1.0)

let waxman_connected =
  QCheck.Test.make ~name:"waxman: always connected" ~count:100
    QCheck.(pair (8 -- 40) (int_bound 1999))
    (fun (nodes, tseed) ->
      Netsim.Topology.is_connected
        (Netsim.Random_topo.waxman (Dessim.Rng.create tseed) ~nodes ~alpha:0.6
           ~beta:0.4))

(* ---------- net: link removal ---------- *)

let er_with_edge tseed =
  let t =
    Netsim.Random_topo.erdos_renyi (Dessim.Rng.create tseed) ~nodes:12 ~p:0.3
  in
  (t, Netsim.Topology.edges t)

let remove_edge_symmetric =
  QCheck.Test.make ~name:"remove_edge is orientation-symmetric" ~count:200
    QCheck.(pair (int_bound 1999) small_nat)
    (fun (tseed, idx) ->
      let t, edges = er_with_edge tseed in
      let u, v = List.nth edges (idx mod List.length edges) in
      Netsim.Topology.edges (Netsim.Topology.remove_edge t u v)
      = Netsim.Topology.edges (Netsim.Topology.remove_edge t v u))

let remove_edge_idempotent =
  QCheck.Test.make ~name:"remove_edge is idempotent" ~count:200
    QCheck.(pair (int_bound 1999) small_nat)
    (fun (tseed, idx) ->
      let t, edges = er_with_edge tseed in
      let u, v = List.nth edges (idx mod List.length edges) in
      let once = Netsim.Topology.remove_edge t u v in
      let twice = Netsim.Topology.remove_edge once u v in
      Netsim.Topology.edges once = Netsim.Topology.edges twice
      && Netsim.Topology.edges once
         = List.filter (fun e -> e <> (min u v, max u v)) edges)

let remove_absent_edge_is_noop =
  QCheck.Test.make ~name:"removing an absent edge returns the graph unchanged"
    ~count:200
    QCheck.(triple (int_bound 1999) (int_bound 11) (int_bound 11))
    (fun (tseed, u, v) ->
      let t, edges = er_with_edge tseed in
      u = v
      || Netsim.Topology.has_edge t u v
      || Netsim.Topology.edges (Netsim.Topology.remove_edge t u v) = edges)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "properties"
    [
      ("heap", qsuite [ heap_pop_order; heap_stability ]);
      ("scheduler", qsuite [ scheduler_insert_cancel ]);
      ( "rng",
        qsuite
          [
            rng_same_seed_same_stream;
            rng_split_streams_distinct;
            rng_copy_independent;
          ] );
      ( "topology generators",
        qsuite [ torus_degree_exact; er_connected_mean_degree; waxman_connected ] );
      ( "link removal",
        qsuite
          [ remove_edge_symmetric; remove_edge_idempotent; remove_absent_edge_is_noop ] );
    ]
