(* The supervised multi-process backend. The test binary is its own worker:
   re-invoked as [<exe> --proc-worker <knobs...>] it speaks the
   {!Campaign.Proc_backend} wire protocol over the same task decomposition
   the parent supervises, with fault knobs to die, die once, or wedge on a
   chosen cell. *)

module E = Convergence.Engine_registry

let section =
  Campaign.Sections.grid ~name:"proc-grid" ~engines:[ E.dbf; E.rip ] ()

let sweep =
  Convergence.Experiments.(scale ~runs:2 ~degrees:[ 3; 4 ] quick_sweep)

let tasks () = section.Campaign.Sections.tasks sweep

(* ---------- worker side ---------- *)

let worker_main () =
  let die_index = ref None in
  let die_once_marker = ref None in
  let sleep_index = ref None in
  let i = ref 2 in
  while !i < Array.length Sys.argv do
    (match Sys.argv.(!i) with
    | "--die-index" -> die_index := Some (int_of_string Sys.argv.(!i + 1))
    | "--die-once-marker" -> die_once_marker := Some Sys.argv.(!i + 1)
    | "--sleep-index" -> sleep_index := Some (int_of_string Sys.argv.(!i + 1))
    | a ->
      prerr_endline ("unknown worker arg: " ^ a);
      exit 2);
    i := !i + 2
  done;
  let tasks = tasks () in
  let run_cell i =
    if !die_index = Some i then Unix.kill (Unix.getpid ()) Sys.sigkill;
    (match !die_once_marker with
    | Some path when not (Sys.file_exists path) ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "died\n");
      Unix.kill (Unix.getpid ()) Sys.sigkill
    | _ -> ());
    if !sleep_index = Some i then
      (* Wedge with heartbeats still flowing (SIGALRM interrupts the
         select), so only the cell deadline can reclaim this worker. *)
      while true do
        try ignore (Unix.select [] [] [] 0.05)
        with Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
    if i < 0 || i >= Array.length tasks then Error "cell index out of range"
    else begin
      let t0 = Unix.gettimeofday () in
      match Campaign.Driver.attempt_once tasks.(i) with
      | Ok cell -> Ok (Unix.gettimeofday () -. t0, cell)
      | Error e -> Error e
    end
  in
  Campaign.Proc_backend.worker ~run_cell ()

let () =
  if Array.length Sys.argv >= 2 && Sys.argv.(1) = "--proc-worker" then
    worker_main ()

(* ---------- parent side ---------- *)

let worker_argv knobs =
  Array.of_list ((Sys.executable_name :: "--proc-worker" :: knobs))

let canon cells quarantined timing =
  Campaign.Artifact.canonical_string
    (Campaign.Driver.artifact_of ~section ~mode:"quick" ~timing ~quarantined
       sweep cells)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let exec_of (t : Campaign.Artifact.timing) =
  match t.Campaign.Artifact.t_exec with
  | Some x -> x
  | None -> Alcotest.fail "proc run should carry an exec block"

let test_proc_matches_domains () =
  let d_cells, dq, dt = Campaign.Driver.run_tasks ~jobs:2 (tasks ()) in
  let p_cells, pq, pt =
    Campaign.Driver.run_tasks ~jobs:2
      ~backend:(Campaign.Driver.Proc { argv = worker_argv [] })
      (tasks ())
  in
  Alcotest.(check int) "no quarantine" 0 (List.length pq);
  Alcotest.(check string)
    "proc cells are byte-identical to domains" (canon d_cells dq dt)
    (canon p_cells pq pt);
  let x = exec_of pt in
  Alcotest.(check string) "backend recorded" "proc" x.Campaign.Artifact.x_backend;
  Alcotest.(check int) "one spawn per slot" 2 x.Campaign.Artifact.x_spawns;
  Alcotest.(check int) "no restarts" 0 x.Campaign.Artifact.x_restarts;
  Alcotest.(check int)
    "every cell attributed to a worker"
    (Array.length (tasks ()))
    (List.fold_left ( + ) 0 x.Campaign.Artifact.x_worker_cells)

let test_worker_death_recovers () =
  let marker = Filename.temp_file "rcsim_die_once" ".marker" in
  Sys.remove marker;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists marker then Sys.remove marker)
    (fun () ->
      (* jobs=1 so exactly one worker dies exactly once; the respawned
         worker sees the marker and finishes the campaign. *)
      let cells, quarantined, t =
        Campaign.Driver.run_tasks ~jobs:1 ~retries:1
          ~backend:
            (Campaign.Driver.Proc
               { argv = worker_argv [ "--die-once-marker"; marker ] })
          (tasks ())
      in
      Alcotest.(check int)
        "no quarantine after the retry" 0
        (List.length quarantined);
      Alcotest.(check int)
        "all cells completed"
        (Array.length (tasks ()))
        (Array.length cells);
      let x = exec_of t in
      Alcotest.(check bool)
        "the death was a supervised restart" true
        (x.Campaign.Artifact.x_restarts >= 1);
      Alcotest.(check int)
        "spawns = slots + restarts"
        (1 + x.Campaign.Artifact.x_restarts)
        x.Campaign.Artifact.x_spawns)

let test_persistent_crash_quarantines () =
  let total = Array.length (tasks ()) in
  let victim = 1 in
  let messages = Buffer.create 256 in
  let cells, quarantined, _ =
    Campaign.Driver.run_tasks ~jobs:2 ~retries:1
      ~progress:(fun s -> Buffer.add_string messages (s ^ "\n"))
      ~backend:
        (Campaign.Driver.Proc
           { argv = worker_argv [ "--die-index"; string_of_int victim ] })
      (tasks ())
  in
  (match quarantined with
  | [ q ] ->
    let p, d, s = Campaign.Driver.task_key (tasks ()).(victim) in
    Alcotest.(check (triple string int int))
      "the crashing cell is the quarantined one" (p, d, s)
      ( q.Campaign.Artifact.q_protocol,
        q.Campaign.Artifact.q_degree,
        q.Campaign.Artifact.q_seed );
    Alcotest.(check int)
      "attempt budget spent" 2 q.Campaign.Artifact.q_attempts
  | l -> Alcotest.failf "expected exactly 1 quarantined cell, got %d"
           (List.length l));
  Alcotest.(check int)
    "every other cell survived" (total - 1) (Array.length cells);
  Alcotest.(check bool)
    "supervisor reported the respawn" true
    (contains ~affix:"respawning" (Buffer.contents messages))

let test_deadline_reclaims_wedged_worker () =
  let outcomes = ref [] in
  let stats, leftovers =
    Campaign.Proc_backend.run ~jobs:1
      ~argv:(worker_argv [ "--sleep-index"; "0" ])
      ~indices:[| 0 |] ~retries:0 ~min_deadline:0.4
      ~progress:(fun _ -> ())
      ~on_outcome:(fun o -> outcomes := o :: !outcomes)
      ()
  in
  Alcotest.(check (list int)) "nothing left over" [] leftovers;
  (match !outcomes with
  | [ Campaign.Proc_backend.Quarantined { index; error; attempts } ] ->
    Alcotest.(check int) "the wedged cell" 0 index;
    Alcotest.(check int) "single attempt at retries=0" 1 attempts;
    Alcotest.(check bool)
      (Printf.sprintf "deadline named in %S" error)
      true
      (contains ~affix:"deadline exceeded" error)
  | _ -> Alcotest.fail "expected exactly one Quarantined outcome");
  Alcotest.(check bool)
    "the kill was counted as a restart" true (stats.Campaign.Proc_backend.p_restarts >= 1)

let test_unrunnable_worker_degrades_in_process () =
  let messages = Buffer.create 256 in
  let cells, quarantined, t =
    Campaign.Driver.run_tasks ~jobs:2 ~retries:1
      ~progress:(fun s -> Buffer.add_string messages (s ^ "\n"))
      ~backend:
        (Campaign.Driver.Proc
           { argv = [| "/nonexistent/rcsim-worker"; "--proc-worker" |] })
      (tasks ())
  in
  Alcotest.(check int) "no quarantine" 0 (List.length quarantined);
  Alcotest.(check int)
    "every cell completed in-process"
    (Array.length (tasks ()))
    (Array.length cells);
  Alcotest.(check bool)
    "degradation was announced" true
    (contains ~affix:"degraded" (Buffer.contents messages));
  let x = exec_of t in
  Alcotest.(check int)
    "no worker ever completed a cell" 0
    (List.fold_left ( + ) 0 x.Campaign.Artifact.x_worker_cells)

let () =
  Alcotest.run "proc"
    [
      ( "proc",
        [
          Alcotest.test_case "proc matches domains byte-for-byte" `Quick
            test_proc_matches_domains;
          Alcotest.test_case "worker death recovers via respawn" `Quick
            test_worker_death_recovers;
          Alcotest.test_case "persistent crash quarantines one cell" `Quick
            test_persistent_crash_quarantines;
          Alcotest.test_case "deadline reclaims a wedged worker" `Quick
            test_deadline_reclaims_wedged_worker;
          Alcotest.test_case "unrunnable worker degrades in-process" `Quick
            test_unrunnable_worker_degrades_in_process;
        ] );
    ]
