(* A lightweight in-memory network for protocol unit tests: every control
   message is delivered after a fixed delay, with no bandwidth, queueing, or
   loss. This isolates protocol logic from the link model, which has its own
   tests. *)

module Make (P : Protocols.Proto_intf.PROTOCOL) = struct
  type net = {
    sched : Dessim.Scheduler.t;
    topo : Netsim.Topology.t;
    mutable routers : P.t array;
    mutable down : (int * int) list;  (* failed links, canonical (u < v) *)
    mutable messages : int;
    mutable route_changes : (float * int * int) list;  (* time, router, dst *)
  }

  let canonical u v = if u < v then (u, v) else (v, u)

  let make ?(config = P.default_config) ?(delay = 0.001) ~seed topo =
    let sched = Dessim.Scheduler.create () in
    let master = Dessim.Rng.create seed in
    let n = Netsim.Topology.node_count topo in
    let net =
      { sched; topo; routers = [||]; down = []; messages = 0; route_changes = [] }
    in
    let routers =
      Array.init n (fun id ->
          let rng = Dessim.Rng.split master in
          let actions =
            {
              Protocols.Proto_intf.now = (fun () -> Dessim.Scheduler.now sched);
              send =
                (fun neighbor msg ->
                  net.messages <- net.messages + 1;
                  if not (List.mem (canonical id neighbor) net.down) then
                    ignore
                      (Dessim.Scheduler.after sched ~delay (fun () ->
                           if not (List.mem (canonical id neighbor) net.down) then
                             P.on_message net.routers.(neighbor) ~from:id msg)));
              after = (fun delay fn -> Dessim.Scheduler.after sched ~delay fn);
              route_changed =
                (fun dst ->
                  net.route_changes <-
                    (Dessim.Scheduler.now sched, id, dst) :: net.route_changes);
              note = (fun _ -> ());
            }
          in
          P.create config ~rng ~id
            ~neighbors:(Netsim.Topology.neighbors topo id)
            ~actions)
    in
    net.routers <- routers;
    net

  let start net = Array.iter P.start net.routers

  let run net ~until = Dessim.Scheduler.run ~until net.sched

  let router net i = net.routers.(i)

  let next_hop net i ~dst = P.next_hop net.routers.(i) ~dst

  let metric net i ~dst = P.metric net.routers.(i) ~dst

  let fail_link net u v =
    net.down <- canonical u v :: net.down;
    P.on_link_down net.routers.(u) ~neighbor:v;
    P.on_link_down net.routers.(v) ~neighbor:u

  let restore_link net u v =
    net.down <- List.filter (fun l -> l <> canonical u v) net.down;
    P.on_link_up net.routers.(u) ~neighbor:v;
    P.on_link_up net.routers.(v) ~neighbor:u

  let messages net = net.messages

  let route_changes net = List.rev net.route_changes

  let sched net = net.sched

  (* Assert that every router's next hops realize shortest paths of [topo']
     (the topology after any failures) toward [dst]. *)
  let check_shortest_paths ?(topo' : Netsim.Topology.t option) net ~dst =
    let topo = match topo' with Some t -> t | None -> net.topo in
    let dist = Netsim.Topology.bfs_distances topo dst in
    let n = Netsim.Topology.node_count topo in
    let check id =
      if id <> dst then begin
        if dist.(id) = max_int then begin
          match next_hop net id ~dst with
          | None -> ()
          | Some nh ->
            Alcotest.failf "router %d should have no route to %d, has %d" id dst nh
        end
        else begin
          match next_hop net id ~dst with
          | None -> Alcotest.failf "router %d has no route to %d" id dst
          | Some nh ->
            if not (Netsim.Topology.has_edge topo id nh) then
              Alcotest.failf "router %d next hop %d is not a live neighbor" id nh;
            if dist.(nh) <> dist.(id) - 1 then
              Alcotest.failf
                "router %d -> %d is not on a shortest path to %d (dist %d -> %d)"
                id nh dst dist.(id) dist.(nh)
        end
      end
    in
    for id = 0 to n - 1 do
      check id
    done
end
