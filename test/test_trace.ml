(* Tests for the obs library (events, sinks, registry, trace filtering,
   replay) and the trace-conservation property: the packet totals
   reconstructed from a run's event stream must equal, bit for bit, what the
   runner's own accounting reports. *)

let quick = Convergence.Config.quick

(* ---------- event serialization ---------- *)

(* One sample per constructor, so a missing round-trip case fails loudly. *)
let sample_events =
  [
    Obs.Event.Packet_sent { flow = 0; pkt = 1; src = 2; dst = 3 };
    Obs.Event.Packet_forwarded { pkt = 1; node = 2; next_hop = 4; ttl = 63 };
    Obs.Event.Packet_delivered { flow = 0; pkt = 1; delay = 0.125; looped = false };
    Obs.Event.Packet_dropped
      { flow = 0; pkt = 2; reason = Netsim.Types.No_route; looped = true };
    Obs.Event.Loop_enter { flow = 1; cycle = [ 4; 5; 6 ] };
    Obs.Event.Loop_exit { flow = 1; cycle = [ 4; 5; 6 ]; duration = 2.5 };
    Obs.Event.Ctrl_sent
      { proto = "DBF"; src = 0; dst = 1; kind = Obs.Event.Mixed; bits = 416 };
    Obs.Event.Ctrl_received
      { proto = "BGP"; src = 1; dst = 0; kind = Obs.Event.Withdrawal };
    Obs.Event.Ctrl_lost { reason = Netsim.Types.Link_down };
    Obs.Event.Timer_fired { node = 7 };
    Obs.Event.Mrai_defer { node = 7; neighbor = 8; dsts = 3 };
    Obs.Event.Link_failed { u = 5; v = 9 };
    Obs.Event.Link_healed { u = 5; v = 9 };
    Obs.Event.Route_changed { node = 3; dst = 13 };
    Obs.Event.Frr_installed { node = 3; dst = 13; backup = 5 };
    Obs.Event.Frr_activated { node = 3; neighbor = 5 };
    Obs.Event.Frr_forwarded { pkt = 1; node = 3; next_hop = 5; ttl = 62 };
    Obs.Event.Frr_exhausted { pkt = 1; node = 3 };
    Obs.Event.Path_changed
      { flow = 0; kind = Obs.Event.Path_looping; path = [ 3; 7; 6; 7 ] };
    Obs.Event.Sched_stats { events = 1000; max_queue = 50; cpu_s = 0.25 };
  ]

let test_json_roundtrip () =
  List.iteri
    (fun i event ->
      let r = { Obs.Sink.time = 1.5 +. float_of_int i; seq = i; event } in
      let line = Obs.Json.to_string (Obs.Sink.record_to_json r) in
      match Obs.Sink.record_of_json (Obs.Json.of_string line) with
      | None -> Alcotest.failf "unparseable: %s" line
      | Some r' ->
        if r' <> r then Alcotest.failf "round trip changed: %s" line)
    sample_events

let test_event_names_distinct () =
  let names = List.map Obs.Event.name sample_events in
  let distinct = List.sort_uniq compare names in
  Alcotest.(check int) "all names distinct" (List.length names)
    (List.length distinct)

(* ---------- sinks ---------- *)

let record i =
  { Obs.Sink.time = float_of_int i; seq = i; event = Obs.Event.Timer_fired { node = i } }

let test_memory_sink () =
  let sink, got = Obs.Sink.memory () in
  for i = 0 to 4 do
    sink.Obs.Sink.emit (record i)
  done;
  Alcotest.(check (list int)) "all, in order" [ 0; 1; 2; 3; 4 ]
    (List.map (fun r -> r.Obs.Sink.seq) (got ()))

let test_ring_sink () =
  let sink, got = Obs.Sink.ring ~capacity:3 in
  for i = 0 to 9 do
    sink.Obs.Sink.emit (record i)
  done;
  Alcotest.(check (list int)) "last 3, in order" [ 7; 8; 9 ]
    (List.map (fun r -> r.Obs.Sink.seq) (got ()));
  (match Obs.Sink.ring ~capacity:0 with
  | (_ : Obs.Sink.t * (unit -> Obs.Sink.record list)) ->
    Alcotest.fail "capacity 0 accepted"
  | exception Invalid_argument _ -> ())

let test_csv_writer_header () =
  let lines = ref [] in
  let sink = Obs.Sink.csv_writer (fun l -> lines := l :: !lines) in
  sink.Obs.Sink.emit (record 0);
  match List.rev !lines with
  | header :: _ :: _ ->
    Alcotest.(check string) "header first" Obs.Sink.csv_header header
  | _ -> Alcotest.fail "expected header plus one row"

let test_format_of_path () =
  Alcotest.(check bool) "jsonl" true
    (Obs.Sink.format_of_path "a/b/trace.jsonl" = Obs.Sink.Jsonl);
  Alcotest.(check bool) "csv" true
    (Obs.Sink.format_of_path "trace.csv" = Obs.Sink.Csv);
  Alcotest.(check bool) "text default" true
    (Obs.Sink.format_of_path "trace.log" = Obs.Sink.Text)

(* ---------- registry ---------- *)

let test_registry_counters_gauges () =
  let m = Obs.Registry.create () in
  let c = Obs.Registry.counter m "a.count" in
  Obs.Registry.incr c;
  Obs.Registry.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Obs.Registry.counter_value c);
  let g = Obs.Registry.gauge m "a.gauge" in
  Obs.Registry.set g 2.;
  Obs.Registry.set_max g 1.;
  Obs.Registry.set_max g 7.;
  Alcotest.(check (float 0.)) "gauge high-water" 7. (Obs.Registry.gauge_value g);
  (* Same name, same kind: the same handle. *)
  Obs.Registry.incr (Obs.Registry.counter m "a.count");
  Alcotest.(check int) "shared handle" 6 (Obs.Registry.counter_value c);
  (* Same name, different kind: rejected. *)
  (match Obs.Registry.gauge m "a.count" with
  | (_ : Obs.Registry.gauge) -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ());
  Alcotest.(check (list string)) "registration order" [ "a.count"; "a.gauge" ]
    (Obs.Registry.names m)

let test_registry_histogram () =
  let m = Obs.Registry.create () in
  let h = Obs.Registry.histogram ~bounds:[| 1.; 10.; 100. |] m "h" in
  List.iter (Obs.Registry.observe h) [ 0.5; 0.7; 5.; 50.; 500. ];
  Alcotest.(check int) "n" 5 (Obs.Registry.observations h);
  Alcotest.(check (float 1e-9)) "mean" 111.24 (Obs.Registry.mean h);
  (* p50 falls in the second bucket: upper edge 10. *)
  Alcotest.(check (float 1e-9)) "p50 bound" 10. (Obs.Registry.quantile h 0.5);
  (* The top quantile lands in the overflow bucket: the observed max. *)
  Alcotest.(check (float 1e-9)) "p99 overflow" 500. (Obs.Registry.quantile h 0.99)

(* ---------- trace filtering ---------- *)

let test_trace_filters () =
  let sink, got = Obs.Sink.memory () in
  let t =
    Obs.Trace.create ~categories:[ Obs.Event.Data ]
      ~min_severity:Obs.Event.Info sink
  in
  Alcotest.(check bool) "data on" true (Obs.Trace.on t Obs.Event.Data);
  Alcotest.(check bool) "control off" false (Obs.Trace.on t Obs.Event.Control);
  (* Wrong category: dropped. *)
  Obs.Trace.emit t ~time:0. (Obs.Event.Timer_fired { node = 0 });
  (* Right category, below min severity (forwarded is Debug): dropped. *)
  Obs.Trace.emit t ~time:0.
    (Obs.Event.Packet_forwarded { pkt = 0; node = 0; next_hop = 1; ttl = 9 });
  (* Right category and severity: kept. *)
  Obs.Trace.emit t ~time:1.
    (Obs.Event.Packet_sent { flow = 0; pkt = 0; src = 0; dst = 1 });
  Alcotest.(check int) "one record" 1 (List.length (got ()));
  Alcotest.(check bool) "null disabled" false (Obs.Trace.enabled Obs.Trace.null)

let test_trace_seq_numbers () =
  let sink, got = Obs.Sink.memory () in
  let t = Obs.Trace.create sink in
  for i = 0 to 3 do
    Obs.Trace.emit t ~time:0. (Obs.Event.Timer_fired { node = i })
  done;
  Alcotest.(check (list int)) "seq 0..3" [ 0; 1; 2; 3 ]
    (List.map (fun r -> r.Obs.Sink.seq) (got ()))

(* ---------- replay ---------- *)

let test_replay_tolerates_garbage () =
  let lines =
    [
      {|{"ts":1.0,"seq":0,"ev":"packet_sent","flow":0,"pkt":0,"src":1,"dst":2}|};
      "not json at all";
      {|{"ts":2.0,"seq":1,"ev":"packet_delivered","flow":0,"pkt":0,"delay":0.1,"looped":false}|};
      "";
      {|{"ts":3.0,"seq":2,"ev":"some_future_event","x":1}|};
    ]
  in
  let records, stats = Obs.Replay.of_lines lines in
  Alcotest.(check int) "parsed" 2 stats.Obs.Replay.parsed;
  Alcotest.(check int) "skipped" 1 stats.Obs.Replay.skipped;
  (* the record-shaped future-event line is preserved as opaque, not lost *)
  Alcotest.(check int) "opaque" 1 stats.Obs.Replay.opaque;
  let t = Obs.Replay.totals records in
  Alcotest.(check int) "sent" 1 t.Obs.Replay.sent;
  Alcotest.(check int) "delivered" 1 t.Obs.Replay.delivered;
  Alcotest.(check int) "in flight" 0 (Obs.Replay.in_flight t)

let test_trace_tee () =
  (* tee broadcasts; each child keeps its own filters and sequence numbers. *)
  let s1, get1 = Obs.Sink.memory () in
  let s2, get2 = Obs.Sink.memory () in
  let all = Obs.Trace.create s1 in
  let warnings = Obs.Trace.create ~min_severity:Obs.Event.Warn s2 in
  let t = Obs.Trace.tee [ all; warnings ] in
  Alcotest.(check bool) "tee enabled" true (Obs.Trace.enabled t);
  Obs.Trace.emit t ~time:1.0
    (Obs.Event.Packet_sent { flow = 0; pkt = 0; src = 0; dst = 1 });
  Obs.Trace.emit t ~time:2.0 (Obs.Event.Link_failed { u = 0; v = 1 });
  Alcotest.(check int) "unfiltered child sees both" 2 (List.length (get1 ()));
  (match get2 () with
  | [ { Obs.Sink.seq = 0; event = Obs.Event.Link_failed _; _ } ] -> ()
  | rs ->
    Alcotest.failf "warn child: expected just the failure with seq 0, got %d"
      (List.length rs));
  Alcotest.(check bool) "tee [] is disabled" false
    (Obs.Trace.enabled (Obs.Trace.tee []))

let test_replay_truncated_line () =
  (* A line cut mid-write (process killed, partial flush) must be counted and
     skipped, never raise. *)
  let whole =
    {|{"ts":1.0,"seq":0,"ev":"packet_sent","flow":0,"pkt":0,"src":1,"dst":2}|}
  in
  let lines =
    [
      whole;
      String.sub whole 0 40;  (* truncated inside a field *)
      String.sub whole 0 (String.length whole - 1);  (* missing final brace *)
      {|{"ts":2.0,"seq":1,"ev":"packet_delivered","flow":0,"pkt":0,"delay":0.1,"looped":false}|};
    ]
  in
  let records, stats = Obs.Replay.of_lines lines in
  Alcotest.(check int) "parsed" 2 stats.Obs.Replay.parsed;
  Alcotest.(check int) "skipped" 2 stats.Obs.Replay.skipped;
  Alcotest.(check int) "records" 2 (List.length records)

let test_replay_bad_escape () =
  let lines =
    [
      {|{"ts":1.0,"seq":0,"ev":"packet_sent","flow":0,"pkt":0,"src":1,"dst":2}|};
      {|{"ts":1.5,"seq":1,"ev":"link_failed","u":1,"v":"\uZZZZ"}|};  (* bad \u *)
      {|{"ts":1.6,"seq":2,"ev":"link_failed","u":1,"v":"\u00|};  (* cut escape *)
      {|{"ts":2.0,"seq":3,"ev":"link_healed","u":1,"v":2}|};
    ]
  in
  let records, stats = Obs.Replay.of_lines lines in
  Alcotest.(check int) "parsed" 2 stats.Obs.Replay.parsed;
  Alcotest.(check int) "skipped" 2 stats.Obs.Replay.skipped;
  Alcotest.(check int) "records" 2 (List.length records)

let test_json_opt_never_raises () =
  List.iter
    (fun s ->
      match Obs.Json.of_string_opt s with
      | Some _ | None -> ())
    [
      "";
      "{";
      "[1,2";
      "\"unterminated";
      "\"bad \\u12";
      "\"bad \\uXYZW\"";
      "{\"a\":}";
      "nul";
      "12e";
      "{\"a\":1}garbage";
    ]

let test_replay_loop_report () =
  let mk time seq event = { Obs.Sink.time; seq; event } in
  let records =
    [
      mk 1. 0 (Obs.Event.Loop_enter { flow = 0; cycle = [ 1; 2 ] });
      mk 2. 1 (Obs.Event.Loop_exit { flow = 0; cycle = [ 1; 2 ]; duration = 1. });
      mk 3. 2 (Obs.Event.Loop_enter { flow = 1; cycle = [ 4; 5; 6 ] });
      (* flow 1 never exits: unresolved at end of trace *)
    ]
  in
  match Obs.Replay.loop_report records with
  | [ a; b ] ->
    Alcotest.(check int) "flow" 0 a.Obs.Replay.le_flow;
    Alcotest.(check (option (float 1e-9))) "duration" (Some 1.)
      (Obs.Replay.episode_duration a);
    Alcotest.(check bool) "unresolved" true (b.Obs.Replay.le_ended = None)
  | l -> Alcotest.failf "expected 2 episodes, got %d" (List.length l)

let test_replay_frr_report () =
  let mk time seq event = { Obs.Sink.time; seq; event } in
  let records =
    [
      mk 0.5 0 (Obs.Event.Frr_installed { node = 2; dst = 7; backup = 3 });
      (* node 2 detects its link to 1 down and saves two packets, one of
         them over two backup hops *)
      mk 1.0 1 (Obs.Event.Frr_activated { node = 2; neighbor = 1 });
      mk 1.1 2 (Obs.Event.Frr_forwarded { pkt = 10; node = 2; next_hop = 3; ttl = 9 });
      mk 1.2 3 (Obs.Event.Frr_forwarded { pkt = 10; node = 2; next_hop = 3; ttl = 8 });
      mk 1.3 4 (Obs.Event.Frr_forwarded { pkt = 11; node = 2; next_hop = 3; ttl = 9 });
      mk 2.0 5 (Obs.Event.Link_healed { u = 1; v = 2 });
      (* a graceful-degradation forward outside any detection window *)
      mk 3.0 6 (Obs.Event.Frr_forwarded { pkt = 12; node = 5; next_hop = 6; ttl = 9 });
      (* two exhaustion bursts, 0.4 s apart inside, 5 s between *)
      mk 4.0 7 (Obs.Event.Frr_exhausted { pkt = 13; node = 4 });
      mk 4.4 8 (Obs.Event.Frr_exhausted { pkt = 14; node = 4 });
      mk 9.4 9 (Obs.Event.Frr_exhausted { pkt = 15; node = 4 });
    ]
  in
  let s = Obs.Replay.frr_report records in
  Alcotest.(check int) "installs" 1 s.Obs.Replay.fr_installs;
  Alcotest.(check int) "activations" 1 s.Obs.Replay.fr_activations;
  Alcotest.(check int) "forwards" 4 s.Obs.Replay.fr_forwards;
  Alcotest.(check int) "exhausted" 3 s.Obs.Replay.fr_exhausted;
  (match s.Obs.Replay.fr_episodes with
  | [ e ] ->
    Alcotest.(check int) "episode node" 2 e.Obs.Replay.fe_node;
    Alcotest.(check (float 1e-9)) "episode start" 1.0 e.Obs.Replay.fe_started;
    Alcotest.(check (option (float 1e-9))) "episode end" (Some 2.0)
      e.Obs.Replay.fe_ended;
    Alcotest.(check int) "backup hops" 3 e.Obs.Replay.fe_forwards;
    Alcotest.(check int) "packets saved" 2 e.Obs.Replay.fe_packets
  | l -> Alcotest.failf "expected 1 episode, got %d" (List.length l));
  match s.Obs.Replay.fr_exhausted_windows with
  | [ w1; w2 ] ->
    Alcotest.(check int) "first burst" 2 w1.Obs.Replay.fw_count;
    Alcotest.(check (float 1e-9)) "first burst span" 0.4
      (w1.Obs.Replay.fw_ended -. w1.Obs.Replay.fw_started);
    Alcotest.(check int) "second burst" 1 w2.Obs.Replay.fw_count
  | l -> Alcotest.failf "expected 2 windows, got %d" (List.length l)

(* ---------- conservation: trace vs runner accounting ---------- *)

(* Replay the full event stream of a run and require the reconstructed packet
   totals to equal the runner's own accounting exactly — same sent, same
   delivered, same count per drop cause, same residual in-flight. *)
let check_conservation engine =
  let sink, got = Obs.Sink.memory () in
  let trace = Obs.Trace.create sink in
  let cfg = Convergence.Config.with_degree 4 { quick with seed = 5 } in
  let r = Convergence.Engine_registry.run ~trace cfg engine in
  Obs.Trace.close trace;
  let name = Convergence.Engine_registry.name engine in
  let t = Obs.Replay.totals (got ()) in
  let drops reason = List.assoc reason t.Obs.Replay.drops in
  Alcotest.(check int) (name ^ " sent") r.Convergence.Metrics.sent t.Obs.Replay.sent;
  Alcotest.(check int) (name ^ " delivered") r.Convergence.Metrics.delivered
    t.Obs.Replay.delivered;
  Alcotest.(check int) (name ^ " no-route") r.Convergence.Metrics.drops_no_route
    (drops Netsim.Types.No_route);
  Alcotest.(check int) (name ^ " ttl") r.Convergence.Metrics.drops_ttl
    (drops Netsim.Types.Ttl_expired);
  Alcotest.(check int) (name ^ " queue") r.Convergence.Metrics.drops_queue
    (drops Netsim.Types.Queue_overflow);
  Alcotest.(check int) (name ^ " link") r.Convergence.Metrics.drops_link
    (drops Netsim.Types.Link_down);
  Alcotest.(check int) (name ^ " in flight") (Convergence.Metrics.in_flight r)
    (Obs.Replay.in_flight t)

let test_conservation_rip () = check_conservation Convergence.Engine_registry.rip
let test_conservation_dbf () = check_conservation Convergence.Engine_registry.dbf
let test_conservation_bgp () = check_conservation Convergence.Engine_registry.bgp

(* The same property must survive a JSONL serialization round trip. *)
let test_conservation_through_jsonl () =
  let buf = Buffer.create 4096 in
  let sink = Obs.Sink.jsonl_writer (fun line -> Buffer.add_string buf (line ^ "\n")) in
  let trace = Obs.Trace.create sink in
  let cfg = Convergence.Config.with_degree 4 { quick with seed = 5 } in
  let r = Convergence.Engine_registry.run ~trace cfg Convergence.Engine_registry.dbf in
  Obs.Trace.close trace;
  let records, stats = Obs.Replay.of_string (Buffer.contents buf) in
  Alcotest.(check int) "nothing skipped" 0 stats.Obs.Replay.skipped;
  let t = Obs.Replay.totals records in
  Alcotest.(check int) "sent" r.Convergence.Metrics.sent t.Obs.Replay.sent;
  Alcotest.(check int) "delivered" r.Convergence.Metrics.delivered
    t.Obs.Replay.delivered;
  Alcotest.(check int) "in flight" (Convergence.Metrics.in_flight r)
    (Obs.Replay.in_flight t)

(* A trace must not perturb the simulation: the same seed with and without
   tracing yields identical results. *)
let test_trace_does_not_perturb () =
  let cfg = Convergence.Config.with_degree 4 { quick with seed = 5 } in
  let bare = Convergence.Engine_registry.run cfg Convergence.Engine_registry.bgp in
  let sink, _ = Obs.Sink.memory () in
  let trace = Obs.Trace.create sink in
  let traced =
    Convergence.Engine_registry.run ~trace cfg Convergence.Engine_registry.bgp
  in
  Alcotest.(check int) "sent" bare.Convergence.Metrics.sent
    traced.Convergence.Metrics.sent;
  Alcotest.(check int) "delivered" bare.Convergence.Metrics.delivered
    traced.Convergence.Metrics.delivered;
  Alcotest.(check int) "ctrl msgs" bare.Convergence.Metrics.ctrl_messages
    traced.Convergence.Metrics.ctrl_messages;
  Alcotest.(check (float 1e-9)) "routing convergence"
    bare.Convergence.Metrics.routing_convergence
    traced.Convergence.Metrics.routing_convergence

let () =
  Alcotest.run "trace"
    [
      ( "events",
        [
          Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "names distinct" `Quick test_event_names_distinct;
        ] );
      ( "sinks",
        [
          Alcotest.test_case "memory" `Quick test_memory_sink;
          Alcotest.test_case "ring" `Quick test_ring_sink;
          Alcotest.test_case "csv header" `Quick test_csv_writer_header;
          Alcotest.test_case "format by extension" `Quick test_format_of_path;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_registry_counters_gauges;
          Alcotest.test_case "histogram" `Quick test_registry_histogram;
        ] );
      ( "trace",
        [
          Alcotest.test_case "filters" `Quick test_trace_filters;
          Alcotest.test_case "sequence numbers" `Quick test_trace_seq_numbers;
          Alcotest.test_case "tee" `Quick test_trace_tee;
        ] );
      ( "replay",
        [
          Alcotest.test_case "tolerates garbage" `Quick
            test_replay_tolerates_garbage;
          Alcotest.test_case "truncated line" `Quick test_replay_truncated_line;
          Alcotest.test_case "bad escape" `Quick test_replay_bad_escape;
          Alcotest.test_case "json parser never raises" `Quick
            test_json_opt_never_raises;
          Alcotest.test_case "loop report" `Quick test_replay_loop_report;
          Alcotest.test_case "frr report" `Quick test_replay_frr_report;
        ] );
      ( "conservation",
        [
          Alcotest.test_case "RIP" `Quick test_conservation_rip;
          Alcotest.test_case "DBF" `Quick test_conservation_dbf;
          Alcotest.test_case "BGP" `Quick test_conservation_bgp;
          Alcotest.test_case "through JSONL" `Quick
            test_conservation_through_jsonl;
          Alcotest.test_case "no perturbation" `Quick
            test_trace_does_not_perturb;
        ] );
    ]
