(* End-to-end scenario tests: full simulations on the quick configuration,
   checking packet conservation, determinism, steady-state delivery, and the
   runner's failure machinery for every protocol engine. *)

let quick = Convergence.Config.quick

let engines = Convergence.Engine_registry.all

let run_quick ?(seed = 1) ?degree engine =
  let cfg =
    match degree with
    | Some d -> Convergence.Config.with_degree d { quick with seed }
    | None -> { quick with seed }
  in
  Convergence.Engine_registry.run cfg engine

let for_all_engines f =
  List.iter (fun e -> f (Convergence.Engine_registry.name e) e) engines

let test_packet_conservation () =
  for_all_engines (fun name e ->
      let r = run_quick e in
      if not (Convergence.Metrics.conservation_ok r) then
        Alcotest.failf "%s: sent=%d delivered=%d drops=%d (negative in-flight)" name
          r.Convergence.Metrics.sent r.Convergence.Metrics.delivered
          (Convergence.Metrics.total_drops r);
      (* At the end of a quiet period, at most a couple of packets can still
         sit in queues/flight. *)
      let residue = Convergence.Metrics.in_flight r in
      if residue > 10 then Alcotest.failf "%s: %d packets unaccounted" name residue)

let test_sent_count_matches_rate () =
  for_all_engines (fun name e ->
      let r = run_quick e in
      let expected =
        quick.Convergence.Config.send_rate_pps
        *. (quick.Convergence.Config.sim_end -. quick.Convergence.Config.traffic_start)
      in
      let got = float_of_int r.Convergence.Metrics.sent in
      if abs_float (got -. expected) > 2. then
        Alcotest.failf "%s: sent %f, expected ~%f" name got expected)

let test_failure_is_injected () =
  for_all_engines (fun name e ->
      let r = run_quick e in
      match r.Convergence.Metrics.failed_link with
      | Some (u, v) ->
        if u = v then Alcotest.failf "%s: degenerate failed link" name;
        (* The failed link must lie on the pre-failure forwarding path. *)
        let rec adjacent_in_path = function
          | a :: (b :: _ as rest) ->
            (a = u && b = v) || (a = v && b = u) || adjacent_in_path rest
          | [ _ ] | [] -> false
        in
        Alcotest.(check bool)
          (name ^ ": failed link on path")
          true
          (adjacent_in_path r.Convergence.Metrics.pre_failure_path)
      | None -> Alcotest.failf "%s: no failure recorded" name)

let test_delivery_resumes_after_failure () =
  for_all_engines (fun name e ->
      let r = run_quick e in
      if not r.Convergence.Metrics.final_path_complete then
        Alcotest.failf "%s: no final path" name;
      (* The last 10 seconds of the run must be at (nearly) full rate. *)
      let tput = r.Convergence.Metrics.throughput in
      let buckets = Dessim.Series.buckets tput in
      let tail_rate = Dessim.Series.rate tput (buckets - 2) in
      if tail_rate < 45. then
        Alcotest.failf "%s: tail throughput %.1f < 45 pps" name tail_rate)

let test_full_rate_before_failure () =
  for_all_engines (fun name e ->
      let r = run_quick e in
      (* quick: warmup=320, failure=330; bucket at normalized t=3..4 is
         pre-failure and must carry the full 50 pps. *)
      let tput = r.Convergence.Metrics.throughput in
      let rate = Dessim.Series.rate tput 3 in
      if rate < 49. || rate > 51. then
        Alcotest.failf "%s: pre-failure rate %.1f" name rate)

let test_determinism () =
  for_all_engines (fun name e ->
      let a = run_quick ~seed:7 e in
      let b = run_quick ~seed:7 e in
      let key (r : Convergence.Metrics.run) =
        ( r.Convergence.Metrics.sent,
          r.Convergence.Metrics.delivered,
          Convergence.Metrics.total_drops r,
          r.Convergence.Metrics.fwd_convergence,
          r.Convergence.Metrics.routing_convergence,
          r.Convergence.Metrics.final_path )
      in
      if key a <> key b then Alcotest.failf "%s: nondeterministic" name)

let test_seeds_differ () =
  (* Different seeds must (in general) pick different src/dst/failures. *)
  let distinct = ref false in
  for seed = 1 to 5 do
    let a = run_quick ~seed Convergence.Engine_registry.dbf in
    let b = run_quick ~seed:(seed + 50) Convergence.Engine_registry.dbf in
    if
      (a.Convergence.Metrics.src, a.Convergence.Metrics.dst, a.Convergence.Metrics.failed_link)
      <> (b.Convergence.Metrics.src, b.Convergence.Metrics.dst, b.Convergence.Metrics.failed_link)
    then distinct := true
  done;
  Alcotest.(check bool) "some variety across seeds" true !distinct

let test_pinned_failure_link () =
  let cfg = { quick with seed = 3 } in
  let module R = Convergence.Runner.Make (Protocols.Dbf) in
  (* Pin both endpoints and the failed link for a fully controlled scenario. *)
  let r =
    R.run ~src:0 ~dst:24 ~fail_link:(0, 1) cfg Protocols.Dbf.default_config
  in
  Alcotest.(check (option (pair int int))) "pinned" (Some (0, 1))
    r.Convergence.Metrics.failed_link;
  Alcotest.(check int) "src" 0 r.Convergence.Metrics.src;
  Alcotest.(check int) "dst" 24 r.Convergence.Metrics.dst

let test_restore_after () =
  (* Fail the first-hop link and restore it 20 s later: the pre-failure
     shortest path must be back in force at the end. *)
  let cfg = { quick with seed = 3 } in
  let module R = Convergence.Runner.Make (Protocols.Dbf) in
  let r =
    R.run ~src:0 ~dst:24 ~fail_link:(0, 1) ~restore_after:20. cfg
      Protocols.Dbf.default_config
  in
  Alcotest.(check bool) "delivers at end" true r.Convergence.Metrics.final_path_complete;
  (* With the link restored, the final path length equals the topological
     shortest distance again. *)
  let topo = Netsim.Mesh.generate ~rows:5 ~cols:5 ~degree:4 in
  let dist = (Netsim.Topology.bfs_distances topo 0).(24) in
  Alcotest.(check int) "shortest again" dist
    (List.length r.Convergence.Metrics.final_path - 1)

let test_events_fire () =
  let cfg = { quick with seed = 2 } in
  let failures = ref [] in
  let path_changes = ref 0 in
  let route_changes = ref 0 in
  let collect (r : Obs.Sink.record) =
    match r.event with
    | Obs.Event.Link_failed { u; v } -> failures := (r.time, (u, v)) :: !failures
    | Obs.Event.Path_changed _ -> incr path_changes
    | Obs.Event.Route_changed _ -> incr route_changes
    | _ -> ()
  in
  let trace =
    Obs.Trace.create ~categories:[ Obs.Event.Env ] (Obs.Sink.callback collect)
  in
  ignore (Convergence.Engine_registry.run ~trace cfg Convergence.Engine_registry.dbf);
  Alcotest.(check int) "one failure" 1 (List.length !failures);
  (match !failures with
  | [ (t, _) ] ->
    Alcotest.(check (float 1e-9)) "at failure_time" cfg.Convergence.Config.failure_time t
  | _ -> ());
  Alcotest.(check bool) "route changes observed" true (!route_changes > 0);
  Alcotest.(check bool) "path sampled" true (!path_changes > 0)

let test_custom_topology () =
  (* Run on a ring instead of a mesh. *)
  let topo = Netsim.Topology.create ~nodes:8
      ~edges:((7, 0) :: List.init 7 (fun i -> (i, i + 1)))
  in
  let cfg = { quick with seed = 1 } in
  let module R = Convergence.Runner.Make (Protocols.Bgp) in
  let r = R.run ~topology:topo ~src:0 ~dst:4 cfg Protocols.Bgp.fast_config in
  Alcotest.(check bool) "delivered some" true (r.Convergence.Metrics.delivered > 0);
  Alcotest.(check bool) "final path ok" true r.Convergence.Metrics.final_path_complete

let test_invalid_config_rejected () =
  let cfg = { quick with sim_end = 0. } in
  let module R = Convergence.Runner.Make (Protocols.Dbf) in
  (match R.run cfg Protocols.Dbf.default_config with
  | (_ : Convergence.Metrics.run) -> Alcotest.fail "expected rejection"
  | exception Invalid_argument _ -> ())

let test_rip_recovers_within_period () =
  (* RIP's recovery is bounded by the periodic interval: 50 s after the
     failure (bucket 60, i.e. failure-normalized +50 s) the flow must be
     fully restored. *)
  let r = run_quick ~seed:4 Convergence.Engine_registry.rip in
  let tput = r.Convergence.Metrics.throughput in
  let rate_at_60 = Dessim.Series.rate tput 60 in
  if rate_at_60 < 45. then
    Alcotest.failf "RIP not recovered: %.1f pps 50 s after failure" rate_at_60

let test_ctrl_traffic_counted () =
  for_all_engines (fun name e ->
      let r = run_quick e in
      if r.Convergence.Metrics.ctrl_messages <= 0 then
        Alcotest.failf "%s: no control messages counted" name;
      if r.Convergence.Metrics.ctrl_bytes <= 0 then
        Alcotest.failf "%s: no control bytes counted" name)

let test_bgp_sends_fewer_ctrl_bytes_than_rip () =
  (* Incremental updates vs periodic full tables. *)
  let rip = run_quick Convergence.Engine_registry.rip in
  let bgp = run_quick Convergence.Engine_registry.bgp3 in
  Alcotest.(check bool) "bgp bytes < rip bytes" true
    (bgp.Convergence.Metrics.ctrl_bytes < rip.Convergence.Metrics.ctrl_bytes)

let prop_conservation_random_scenarios =
  QCheck.Test.make ~name:"packet conservation over random seeds/degrees" ~count:12
    QCheck.(pair (1 -- 500) (3 -- 8))
    (fun (raw_seed, raw_degree) ->
      (* Clamp: QCheck's shrinker can step outside the generator's range. *)
      let seed = 1 + abs raw_seed in
      let degree = 3 + (abs raw_degree mod 6) in
      let cfg = Convergence.Config.with_degree degree { quick with seed } in
      let r = Convergence.Engine_registry.run cfg Convergence.Engine_registry.dbf in
      Convergence.Metrics.conservation_ok r
      && Convergence.Metrics.in_flight r <= 10)

let () =
  Alcotest.run "integration"
    [
      ( "accounting",
        [
          Alcotest.test_case "conservation" `Quick test_packet_conservation;
          Alcotest.test_case "sent matches rate" `Quick test_sent_count_matches_rate;
          Alcotest.test_case "ctrl counted" `Quick test_ctrl_traffic_counted;
          Alcotest.test_case "bgp leaner than rip" `Quick
            test_bgp_sends_fewer_ctrl_bytes_than_rip;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_conservation_random_scenarios ] );
      ( "scenario",
        [
          Alcotest.test_case "failure injected" `Quick test_failure_is_injected;
          Alcotest.test_case "delivery resumes" `Quick test_delivery_resumes_after_failure;
          Alcotest.test_case "full rate pre-failure" `Quick test_full_rate_before_failure;
          Alcotest.test_case "rip periodic recovery" `Quick test_rip_recovers_within_period;
          Alcotest.test_case "pinned failure" `Quick test_pinned_failure_link;
          Alcotest.test_case "restore" `Quick test_restore_after;
          Alcotest.test_case "custom topology" `Quick test_custom_topology;
          Alcotest.test_case "events" `Quick test_events_fire;
          Alcotest.test_case "invalid config" `Quick test_invalid_config_rejected;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed same run" `Quick test_determinism;
          Alcotest.test_case "different seeds differ" `Quick test_seeds_differ;
        ] );
    ]
