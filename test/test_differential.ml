(* Differential tests for the hot-path rewrite: the structure-of-arrays heap
   and the free-list scheduler must be observably indistinguishable from the
   pre-rewrite implementations.

   Three oracles:
   - [Reference_heap]: the old boxed entry-record heap, kept verbatim. Driven
     with the same (time, seq) streams as [Dessim.Heap], pop sequences must
     match element for element — on randomized QCheck2 streams (with
     shrinking), on a large seeded soak, and on the exact streams real seed
     scenarios push through the scheduler (captured via the recorder seam).
   - a reference scheduler: the old closure-per-event scheduler rebuilt on
     [Reference_heap], for random schedule/cancel/step interleavings.
   - the GC: a popped payload must become collectable (weak-pointer check) —
     the old implementation pinned it in the vacated slot.

   Randomness discipline (repo idiom): QCheck2 generates plain integers and
   structures are built deterministically from them, so a failing case
   reproduces from its printed counterexample alone. *)

(* ---------- heap vs reference heap: randomized op streams ---------- *)

(* An op stream: [Some k] adds with time [k /. 4.] (small range forces
   equal-timestamp ties), [None] pops from both heaps and compares. Sequence
   numbers increase monotonically like the scheduler's. *)
let run_stream ops =
  let h = Dessim.Heap.create () in
  let r = Reference_heap.create () in
  let seq = ref 0 in
  let ok = ref true in
  List.iter
    (fun op ->
      match op with
      | Some k ->
        let time = float_of_int k /. 4. in
        Dessim.Heap.add h ~time ~seq:!seq !seq;
        Reference_heap.add r ~time ~seq:!seq !seq;
        incr seq
      | None ->
        if Dessim.Heap.pop h <> Reference_heap.pop r then ok := false)
    ops;
  (* Drain both completely: the full pop sequence must agree, and lengths
     must have stayed in lockstep. *)
  let rec drain () =
    match (Dessim.Heap.pop h, Reference_heap.pop r) with
    | None, None -> ()
    | a, b ->
      if a <> b then ok := false
      else drain ()
  in
  drain ();
  !ok

let heap_differential_streams =
  QCheck2.Test.make ~name:"SoA heap pops exactly like the reference heap"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 400) (option (int_range 0 30)))
    run_stream

let heap_differential_fifo =
  (* All-equal timestamps: pure FIFO; both heaps must agree on it. *)
  QCheck2.Test.make ~name:"equal-timestamp FIFO stability matches reference"
    ~count:100
    QCheck2.Gen.(list_size (int_range 1 200) (option (return 7)))
    run_stream

let test_heap_soak () =
  (* One big seeded stream: >10k adds with interleaved pops, times drawn from
     64 distinct values so ties are everywhere. *)
  let rng = Dessim.Rng.create 1234 in
  let ops =
    List.init 25_000 (fun _ ->
        if Dessim.Rng.float rng 1. < 0.6 then Some (Dessim.Rng.int rng 64)
        else None)
  in
  Alcotest.(check bool) "25k-op stream identical" true (run_stream ops)

(* ---------- int-payload heap vs reference heap ---------- *)

(* The same streams through [Dessim.Int_heap] — the queue the scheduler
   actually runs on. Beyond pop order, this checks the out-parameter
   protocol: [peek_key] must surface exactly the (time, seq) the following
   [pop_into] returns, since the scheduler's lane merge decides on the peek
   and then trusts the pop. *)
let run_stream_int ops =
  let h = Dessim.Int_heap.create () in
  let r = Reference_heap.create () in
  let out = Dessim.Int_heap.slot () in
  let pseq = ref (-1) in
  let seq = ref 0 in
  let ok = ref true in
  let pop_both () =
    match Reference_heap.pop r with
    | None ->
      if not (Dessim.Int_heap.is_empty h) then begin
        ok := false;
        Dessim.Int_heap.clear h
      end
    | Some (time, s, payload) ->
      if Dessim.Int_heap.is_empty h then ok := false
      else begin
        if not (Dessim.Int_heap.peek_key h out ~seq:pseq) then ok := false
        else if out.Dessim.Int_heap.slot_time <> time || !pseq <> s then
          ok := false;
        let v = Dessim.Int_heap.pop_into h out ~seq:pseq in
        if out.Dessim.Int_heap.slot_time <> time || !pseq <> s || v <> payload
        then ok := false
      end
  in
  List.iter
    (fun op ->
      match op with
      | Some k ->
        let time = float_of_int k /. 4. in
        Dessim.Int_heap.add h ~time ~seq:!seq !seq;
        Reference_heap.add r ~time ~seq:!seq !seq;
        incr seq
      | None -> pop_both ())
    ops;
  while not (Reference_heap.is_empty r && Dessim.Int_heap.is_empty h) do
    pop_both ()
  done;
  !ok

let int_heap_differential_streams =
  QCheck2.Test.make ~name:"int-payload heap pops exactly like the reference"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 400) (option (int_range 0 30)))
    run_stream_int

let int_heap_differential_fifo =
  QCheck2.Test.make ~name:"int heap equal-timestamp FIFO matches reference"
    ~count:100
    QCheck2.Gen.(list_size (int_range 1 200) (option (return 7)))
    run_stream_int

let test_int_heap_soak () =
  let rng = Dessim.Rng.create 4321 in
  let ops =
    List.init 25_000 (fun _ ->
        if Dessim.Rng.float rng 1. < 0.6 then Some (Dessim.Rng.int rng 64)
        else None)
  in
  Alcotest.(check bool) "25k-op int stream identical" true (run_stream_int ops)

(* ---------- heap vs reference heap: real scenario streams ---------- *)

(* Capture the exact (time, seq) add/pop stream a seed scenario pushes
   through the engine's scheduler, then replay it into the reference heap:
   at every pop the reference must surface the same (time, seq). This checks
   the heap under the true workload shape — deep queues, cancellation churn,
   long monotone phases — not just synthetic streams. *)
type op_log = {
  mutable op_kind : Bytes.t;  (* 0 = add, 1 = pop *)
  mutable op_time : float array;
  mutable op_seq : int array;
  mutable op_n : int;
}

let log_create () =
  { op_kind = Bytes.create 1024; op_time = Array.make 1024 0.; op_seq = Array.make 1024 0; op_n = 0 }

let log_push l kind time seq =
  let cap = Array.length l.op_seq in
  if l.op_n = cap then begin
    let kinds = Bytes.create (2 * cap) in
    Bytes.blit l.op_kind 0 kinds 0 cap;
    let times = Array.make (2 * cap) 0. in
    Array.blit l.op_time 0 times 0 cap;
    let seqs = Array.make (2 * cap) 0 in
    Array.blit l.op_seq 0 seqs 0 cap;
    l.op_kind <- kinds;
    l.op_time <- times;
    l.op_seq <- seqs
  end;
  Bytes.unsafe_set l.op_kind l.op_n (Char.chr kind);
  l.op_time.(l.op_n) <- time;
  l.op_seq.(l.op_n) <- seq;
  l.op_n <- l.op_n + 1

let scenario_config ~rows ~seed =
  {
    Convergence.Config.quick with
    rows;
    cols = rows;
    degree = 4;
    send_rate_pps = 5.;
    traffic_start = 30.;
    warmup = 30.;
    failure_time = 35.;
    sim_end = 60.;
    seed;
  }

let test_scenario_streams () =
  let check_one engine ~rows ~faults =
    let log = log_create () in
    let recorder =
      {
        Dessim.Scheduler.on_add = (fun time seq -> log_push log 0 time seq);
        on_pop = (fun time seq _fired -> log_push log 1 time seq);
      }
    in
    let cfg = scenario_config ~rows ~seed:5 in
    let faults_spec =
      if faults then Fault.Spec.control_loss 0.05 else Fault.Spec.none
    in
    Dessim.Scheduler.with_default_recorder recorder (fun () ->
        ignore
          (Convergence.Engine_registry.run ~faults:faults_spec cfg engine));
    let name =
      Printf.sprintf "%s %dx%d%s"
        (Convergence.Engine_registry.name engine)
        rows rows
        (if faults then " +loss" else "")
    in
    Alcotest.(check bool)
      (name ^ " produced events") true (log.op_n > 0);
    (* Replay through the reference heap. *)
    let r = Reference_heap.create () in
    for i = 0 to log.op_n - 1 do
      let time = log.op_time.(i) and seq = log.op_seq.(i) in
      match Char.code (Bytes.get log.op_kind i) with
      | 0 -> Reference_heap.add r ~time ~seq seq
      | _ -> (
        match Reference_heap.pop r with
        | Some (rt, rs, _) when rt = time && rs = seq -> ()
        | Some (rt, rs, _) ->
          Alcotest.failf "%s: op %d popped (%g, %d), reference has (%g, %d)"
            name i time seq rt rs
        | None -> Alcotest.failf "%s: op %d popped on empty reference" name i)
    done
  in
  List.iter
    (fun engine ->
      List.iter
        (fun rows ->
          check_one engine ~rows ~faults:false;
          check_one engine ~rows ~faults:true)
        [ 3; 5 ])
    Convergence.Engine_registry.paper_four

(* ---------- scheduler vs reference scheduler: interleaved cancels ---------- *)

(* The pre-rewrite scheduler, rebuilt on the reference heap: one closure and
   one handle per event, no free list, no tags. *)
module Reference_sched = struct
  type handle = { mutable cancelled : bool }

  type event = { h : handle; fn : unit -> unit }

  type t = {
    queue : event Reference_heap.t;
    mutable clock : float;
    mutable next_seq : int;
    mutable fired : int;
    mutable skipped : int;
  }

  let create () =
    { queue = Reference_heap.create (); clock = 0.; next_seq = 0; fired = 0; skipped = 0 }

  let schedule t ~at fn =
    if at < t.clock then invalid_arg "Reference_sched.schedule";
    let h = { cancelled = false } in
    Reference_heap.add t.queue ~time:at ~seq:t.next_seq { h; fn };
    t.next_seq <- t.next_seq + 1;
    h

  let cancel h = h.cancelled <- true

  let step t =
    match Reference_heap.pop t.queue with
    | None -> false
    | Some (time, _seq, ev) ->
      t.clock <- time;
      if not ev.h.cancelled then begin
        t.fired <- t.fired + 1;
        ev.fn ()
      end
      else t.skipped <- t.skipped + 1;
      true

  let run t = while step t do () done
end

(* Event specs: (time bucket, cancel?). Both schedulers schedule the same
   events appending labels to their logs, cancel the same subset (half of
   them from inside an earlier event, to exercise cancel-after-schedule
   interleaving), run to completion, and must produce identical firing logs
   and identical fired/skipped counters. *)
let run_cancel_scenario specs =
  let n = List.length specs in
  let log_new = ref [] and log_ref = ref [] in
  let s_new = Dessim.Scheduler.create () in
  let s_ref = Reference_sched.create () in
  let hs_new = Array.make (max n 1) None in
  let hs_ref = Array.make (max n 1) None in
  List.iteri
    (fun i (tb, _cancel) ->
      let at = float_of_int tb /. 2. in
      hs_new.(i) <-
        Some (Dessim.Scheduler.schedule s_new ~at (fun () -> log_new := i :: !log_new));
      hs_ref.(i) <-
        Some (Reference_sched.schedule s_ref ~at (fun () -> log_ref := i :: !log_ref)))
    specs;
  (* Cancel the marked subset: even indices immediately, odd ones from inside
     the earliest event (mid-run cancellation). *)
  let cancel_late = ref [] in
  List.iteri
    (fun i (_tb, cancel) ->
      if cancel then
        if i land 1 = 0 then begin
          (match hs_new.(i) with Some h -> Dessim.Scheduler.cancel h | None -> ());
          match hs_ref.(i) with Some h -> Reference_sched.cancel h | None -> ()
        end
        else cancel_late := i :: !cancel_late)
    specs;
  if !cancel_late <> [] then begin
    let late = !cancel_late in
    ignore
      (Dessim.Scheduler.schedule s_new ~at:0. (fun () ->
           List.iter
             (fun i ->
               match hs_new.(i) with
               | Some h -> Dessim.Scheduler.cancel h
               | None -> ())
             late));
    ignore
      (Reference_sched.schedule s_ref ~at:0. (fun () ->
           List.iter
             (fun i ->
               match hs_ref.(i) with
               | Some h -> Reference_sched.cancel h
               | None -> ())
             late))
  end;
  Dessim.Scheduler.run s_new;
  Reference_sched.run s_ref;
  List.rev !log_new = List.rev !log_ref
  && Dessim.Scheduler.events_processed s_new = s_ref.Reference_sched.fired
  && Dessim.Scheduler.events_skipped s_new = s_ref.Reference_sched.skipped

let scheduler_differential_cancels =
  QCheck2.Test.make
    ~name:"free-list scheduler fires like the reference under cancels"
    ~count:300
    QCheck2.Gen.(list_size (int_range 0 120) (pair (int_range 0 20) bool))
    run_cancel_scenario

(* ---------- GC retention ---------- *)

let test_popped_payload_not_retained () =
  (* A popped payload must be collectable immediately: the heap used to park
     it in the vacated slot (and [ensure_capacity] seeded grown arrays with a
     live element), pinning it until overwritten. *)
  let h = Dessim.Heap.create () in
  let payload = ref (Bytes.create 64) in
  let w = Weak.create 1 in
  Weak.set w 0 (Some !payload);
  Dessim.Heap.add h ~time:1. ~seq:0 !payload;
  (* Keep neighbors in the heap so the popped slot is interior, then force
     growth so the old backing arrays are dead. *)
  for i = 1 to 40 do
    Dessim.Heap.add h ~time:(2. +. float_of_int i) ~seq:i (Bytes.create 8)
  done;
  (match Dessim.Heap.pop h with
  | Some (_, _, b) -> assert (b == !payload)
  | None -> Alcotest.fail "pop returned nothing");
  payload := Bytes.create 1;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "payload was collected" true (Weak.get w 0 = None)

let test_scheduler_cell_does_not_retain () =
  (* Same property one layer up: after a closure event fires, the scheduler's
     recycled cell must not pin the closure's environment. *)
  let s = Dessim.Scheduler.create () in
  let env = ref (Some (Bytes.create 128)) in
  let w = Weak.create 1 in
  (match !env with Some b -> Weak.set w 0 (Some b) | None -> ());
  ignore
    (Dessim.Scheduler.schedule s ~at:1. (fun () ->
         match !env with Some b -> ignore (Bytes.length b) | None -> ()));
  Dessim.Scheduler.run s;
  env := None;
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "closure env was collected" true (Weak.get w 0 = None)

(* ---------- dense routing table vs Hashtbl model ---------- *)

(* The hash-table route record the dense [Protocols.Route_table] replaced:
   presence is insertion, metric and next hop are mutable fields. Random op
   streams drive both and every observable query must agree. *)
module Table_model = struct
  type route = { mutable metric : int; mutable next_hop : int }

  type t = (int, route) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let set t ~dst ~metric ~next_hop =
    match Hashtbl.find_opt t dst with
    | Some r ->
      r.metric <- metric;
      r.next_hop <- next_hop
    | None -> Hashtbl.replace t dst { metric; next_hop }

  let set_metric t ~dst ~metric =
    match Hashtbl.find_opt t dst with
    | Some r -> r.metric <- metric
    | None -> Hashtbl.replace t dst { metric; next_hop = -1 }

  let set_next_hop t ~dst ~next_hop =
    match Hashtbl.find_opt t dst with
    | Some r -> r.next_hop <- next_hop
    | None -> ()
    (* [Route_table.set_next_hop] without a prior metric leaves the
       destination absent too: metric stays the absent marker. *)

  let mem t dst = Hashtbl.mem t dst

  let metric t dst =
    match Hashtbl.find_opt t dst with Some r -> r.metric | None -> -1

  let next_hop_id t dst =
    match Hashtbl.find_opt t dst with Some r -> r.next_hop | None -> -1

  let destinations t =
    Hashtbl.fold (fun dst _ acc -> dst :: acc) t [] |> List.sort compare
end

type table_op =
  | Op_set of int * int * int
  | Op_set_metric of int * int
  | Op_set_next_hop of int * int

let table_op_gen =
  let open QCheck2.Gen in
  let dst = int_range 0 40 in
  let metric = int_range 0 16 in
  let nh = int_range (-1) 40 in
  oneof
    [
      map3 (fun d m n -> Op_set (d, m, n)) dst metric nh;
      map2 (fun d m -> Op_set_metric (d, m)) dst metric;
      map2 (fun d n -> Op_set_next_hop (d, n)) dst nh;
    ]

let run_table_ops ops =
  let dense = Protocols.Route_table.create () in
  let model = Table_model.create () in
  List.iter
    (fun op ->
      match op with
      | Op_set (dst, metric, next_hop) ->
        Protocols.Route_table.set dense ~dst ~metric ~next_hop;
        Table_model.set model ~dst ~metric ~next_hop
      | Op_set_metric (dst, metric) ->
        Protocols.Route_table.set_metric dense ~dst ~metric;
        Table_model.set_metric model ~dst ~metric
      | Op_set_next_hop (dst, next_hop) ->
        (* Only meaningful for destinations that exist, mirroring how the
           protocols use it (they always [set] before adjusting a hop). *)
        if Protocols.Route_table.mem dense dst then begin
          Protocols.Route_table.set_next_hop dense ~dst ~next_hop;
          Table_model.set_next_hop model ~dst ~next_hop
        end)
    ops;
  let agree_at dst =
    let mem_d = Protocols.Route_table.mem dense dst in
    mem_d = Table_model.mem model dst
    && Protocols.Route_table.metric dense dst = Table_model.metric model dst
    &&
    if not mem_d then true
    else
      Protocols.Route_table.next_hop_id dense dst
      = Table_model.next_hop_id model dst
      && Protocols.Route_table.next_hop dense dst
         = (let nh = Table_model.next_hop_id model dst in
            if nh < 0 then None else Some nh)
  in
  let all_dsts = List.init 45 Fun.id in
  List.for_all agree_at all_dsts
  && Protocols.Route_table.destinations dense = Table_model.destinations model

let table_differential =
  QCheck2.Test.make
    ~name:"dense route table matches Hashtbl model under random ops"
    ~count:500
    QCheck2.Gen.(list_size (int_range 0 200) table_op_gen)
    run_table_ops

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "differential"
    [
      ( "heap",
        qsuite
          [
            heap_differential_streams;
            heap_differential_fifo;
            int_heap_differential_streams;
            int_heap_differential_fifo;
          ]
        @ [
            Alcotest.test_case "25k-op seeded soak" `Quick test_heap_soak;
            Alcotest.test_case "25k-op int-heap soak" `Quick test_int_heap_soak;
            Alcotest.test_case "real scenario streams (4 protocols x 2 sizes x faults)"
              `Slow test_scenario_streams;
          ] );
      ( "scheduler",
        qsuite [ scheduler_differential_cancels ]
        @ [
            Alcotest.test_case "popped payload not retained" `Quick
              test_popped_payload_not_retained;
            Alcotest.test_case "fired cell does not retain closure" `Quick
              test_scheduler_cell_does_not_retain;
          ] );
      ("route_table", qsuite [ table_differential ]);
    ]
