(* Golden-trace regression: a fixed-seed 3x3 RIP failure scenario must emit
   byte-for-byte the JSONL trace committed under [golden/]. Any change to
   event content, ordering, severity classification, JSON encoding, or the
   simulation's deterministic behavior shows up here as a diff.

   The [Sched] category is deliberately excluded (its [cpu_s] field is
   wall-clock) and the severity floor is [Info] (per-hop forwarding and timer
   fires are volume, not behavior).

   To regenerate after an intentional behavior change:
     GOLDEN_REGEN=1 dune test test/test_golden.exe
   then review the diff and commit it. *)

let golden_path = "golden/rip_3x3.jsonl"

let scenario_trace () =
  let cfg =
    {
      Convergence.Config.quick with
      rows = 3;
      cols = 3;
      degree = 4;
      send_rate_pps = 5.;
      traffic_start = 30.;
      warmup = 30.;
      failure_time = 35.;
      sim_end = 60.;
      seed = 7;
    }
  in
  let buf = Buffer.create 4096 in
  let sink =
    Obs.Sink.jsonl_writer (fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
  in
  let trace =
    Obs.Trace.create
      ~categories:[ Obs.Event.Data; Obs.Event.Control; Obs.Event.Env ]
      ~min_severity:Obs.Event.Info sink
  in
  let _ = Convergence.Engine_registry.run ~trace cfg Convergence.Engine_registry.rip in
  Obs.Trace.close trace;
  Buffer.contents buf

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_golden () =
  let actual = scenario_trace () in
  match Sys.getenv_opt "GOLDEN_REGEN" with
  | Some target ->
    (* Regeneration mode: GOLDEN_REGEN names the destination (use an absolute
       path into the source tree — tests run inside _build). *)
    let target = if target = "1" then golden_path else target in
    Rcutil.Atomic_file.write_string ~path:target actual;
    Alcotest.failf "regenerated %s (%d bytes); review and commit it" target
      (String.length actual)
  | None ->
    let expected = read_file golden_path in
    if String.equal expected actual then ()
    else begin
      (* Byte comparison failed: locate the first diverging line so the
         failure is readable without an external diff. *)
      let el = String.split_on_char '\n' expected in
      let al = String.split_on_char '\n' actual in
      let rec first_diff i = function
        | e :: es, a :: as_ ->
          if String.equal e a then first_diff (i + 1) (es, as_) else (i, e, a)
        | e :: _, [] -> (i, e, "<trace ended>")
        | [], a :: _ -> (i, "<golden ended>", a)
        | [], [] -> (i, "", "")
      in
      let line, e, a = first_diff 1 (el, al) in
      Alcotest.failf
        "trace diverges from %s at line %d@.  golden: %s@.  actual: %s@.(%d \
         vs %d lines; GOLDEN_REGEN=1 to regenerate after an intentional \
         change)"
        golden_path line e a (List.length el) (List.length al)
    end

let test_golden_replays () =
  (* The committed trace must round-trip through the replay decoder with no
     skipped lines and internally consistent packet accounting. *)
  let records, stats = Obs.Replay.of_string (read_file golden_path) in
  Alcotest.(check int) "no unparseable lines" 0 stats.Obs.Replay.skipped;
  Alcotest.(check bool) "non-empty" true (stats.Obs.Replay.parsed > 0);
  let totals = Obs.Replay.totals records in
  Alcotest.(check bool) "conservation" true (Obs.Replay.in_flight totals >= 0)

let () =
  Alcotest.run "golden"
    [
      ( "rip 3x3",
        [
          Alcotest.test_case "trace matches byte-for-byte" `Quick test_golden;
          Alcotest.test_case "trace replays cleanly" `Quick test_golden_replays;
        ] );
    ]
