(* Golden-trace regression: fixed-seed scenarios must emit byte-for-byte the
   JSONL traces committed under [golden/]. Any change to event content,
   ordering, severity classification, JSON encoding, or the simulation's
   deterministic behavior shows up here as a diff.

   Two cells are covered:
   - a 3x3 RIP failure scenario (the original seed cell);
   - a 4x4 DBF cell with a CBR-heavy traffic window, pinning the per-packet
     injection times and delivery order of the flow pacer (the engine's
     batched CBR path must emit exactly these sends and arrivals).

   The [Sched] category is deliberately excluded (its [cpu_s] field is
   wall-clock) and the severity floor is [Info] (per-hop forwarding and timer
   fires are volume, not behavior).

   To regenerate after an intentional behavior change:
     GOLDEN_REGEN=1 dune test test/test_golden.exe
   then review the diff and commit it. *)

let rip_golden_path = "golden/rip_3x3.jsonl"

let cbr_golden_path = "golden/dbf_cbr_4x4.jsonl"

let trace_of cfg engine =
  let buf = Buffer.create 4096 in
  let sink =
    Obs.Sink.jsonl_writer (fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
  in
  let trace =
    Obs.Trace.create
      ~categories:[ Obs.Event.Data; Obs.Event.Control; Obs.Event.Env ]
      ~min_severity:Obs.Event.Info sink
  in
  let _ = Convergence.Engine_registry.run ~trace cfg engine in
  Obs.Trace.close trace;
  Buffer.contents buf

let rip_trace () =
  let cfg =
    {
      Convergence.Config.quick with
      rows = 3;
      cols = 3;
      degree = 4;
      send_rate_pps = 5.;
      traffic_start = 30.;
      warmup = 30.;
      failure_time = 35.;
      sim_end = 60.;
      seed = 7;
    }
  in
  trace_of cfg Convergence.Engine_registry.rip

(* A CBR-heavy cell: 40 pps through a 4x4 mesh with a mid-run failure. At
   this rate the flow pacer is the dominant event source, so the trace pins
   every injection timestamp and delivery the batched-CBR path produces. *)
let cbr_trace () =
  let cfg =
    {
      Convergence.Config.quick with
      rows = 4;
      cols = 4;
      degree = 4;
      send_rate_pps = 40.;
      traffic_start = 20.;
      warmup = 20.;
      failure_time = 25.;
      sim_end = 35.;
      seed = 11;
    }
  in
  trace_of cfg Convergence.Engine_registry.dbf

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden ~golden_path actual =
  match Sys.getenv_opt "GOLDEN_REGEN" with
  | Some dir ->
    (* Regeneration mode: GOLDEN_REGEN names the destination directory (use
       an absolute path into the source tree — tests run inside _build). *)
    let dir = if dir = "1" then Filename.dirname golden_path else dir in
    let target = Filename.concat dir (Filename.basename golden_path) in
    Rcutil.Atomic_file.write_string ~path:target actual;
    Alcotest.failf "regenerated %s (%d bytes); review and commit it" target
      (String.length actual)
  | None ->
    let expected = read_file golden_path in
    if String.equal expected actual then ()
    else begin
      (* Byte comparison failed: locate the first diverging line so the
         failure is readable without an external diff. *)
      let el = String.split_on_char '\n' expected in
      let al = String.split_on_char '\n' actual in
      let rec first_diff i = function
        | e :: es, a :: as_ ->
          if String.equal e a then first_diff (i + 1) (es, as_) else (i, e, a)
        | e :: _, [] -> (i, e, "<trace ended>")
        | [], a :: _ -> (i, "<golden ended>", a)
        | [], [] -> (i, "", "")
      in
      let line, e, a = first_diff 1 (el, al) in
      Alcotest.failf
        "trace diverges from %s at line %d@.  golden: %s@.  actual: %s@.(%d \
         vs %d lines; GOLDEN_REGEN=1 to regenerate after an intentional \
         change)"
        golden_path line e a (List.length el) (List.length al)
    end

let test_rip_golden () = check_golden ~golden_path:rip_golden_path (rip_trace ())

let test_cbr_golden () = check_golden ~golden_path:cbr_golden_path (cbr_trace ())

let test_golden_replays path () =
  (* The committed trace must round-trip through the replay decoder with no
     skipped lines and internally consistent packet accounting. *)
  let records, stats = Obs.Replay.of_string (read_file path) in
  Alcotest.(check int) "no unparseable lines" 0 stats.Obs.Replay.skipped;
  Alcotest.(check bool) "non-empty" true (stats.Obs.Replay.parsed > 0);
  let totals = Obs.Replay.totals records in
  Alcotest.(check bool) "conservation" true (Obs.Replay.in_flight totals >= 0)

let () =
  Alcotest.run "golden"
    [
      ( "rip 3x3",
        [
          Alcotest.test_case "trace matches byte-for-byte" `Quick test_rip_golden;
          Alcotest.test_case "trace replays cleanly" `Quick
            (test_golden_replays rip_golden_path);
        ] );
      ( "dbf cbr 4x4",
        [
          Alcotest.test_case "trace matches byte-for-byte" `Quick test_cbr_golden;
          Alcotest.test_case "trace replays cleanly" `Quick
            (test_golden_replays cbr_golden_path);
        ] );
    ]
