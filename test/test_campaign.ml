(* Tests for the campaign subsystem: the domain pool, the aggregation rules,
   artifact (de)serialization, the determinism-under-parallelism guarantee,
   and the artifact differ. *)

(* ---------- Pool ---------- *)

let test_pool_preserves_order () =
  let tasks = Array.init 37 (fun i () -> i * i) in
  List.iter
    (fun jobs ->
      let r = Campaign.Pool.run ~jobs tasks in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        (Array.init 37 (fun i -> i * i))
        r)
    [ 1; 2; 3; 8; 64 ]

let test_pool_runs_each_task_once () =
  let n = 101 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  let tasks = Array.init n (fun i () -> Atomic.incr hits.(i)) in
  ignore (Campaign.Pool.run ~jobs:4 tasks);
  Array.iteri
    (fun i c ->
      Alcotest.(check int) (Printf.sprintf "task %d" i) 1 (Atomic.get c))
    hits

let test_pool_empty_and_oversubscribed () =
  Alcotest.(check (array int)) "empty" [||] (Campaign.Pool.run ~jobs:8 [||]);
  Alcotest.(check (array int))
    "more jobs than tasks" [| 0; 1 |]
    (Campaign.Pool.run ~jobs:16 (Array.init 2 (fun i () -> i)))

let test_pool_propagates_first_exception () =
  let tasks =
    Array.init 20 (fun i () -> if i >= 7 then failwith (string_of_int i) else i)
  in
  List.iter
    (fun jobs ->
      match Campaign.Pool.run ~jobs tasks with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
        (* All of tasks 7..19 fail; the lowest-indexed failure wins so the
           error is deterministic whatever the worker count. *)
        Alcotest.(check string) (Printf.sprintf "jobs=%d" jobs) "7" msg)
    [ 1; 3 ]

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least 1" true (Campaign.Pool.default_jobs () >= 1)

(* ---------- aggregation fixtures ---------- *)

let cell ?(protocol = "P") ?(degree = 3) ~seed ~drops ?(conv = 1.5) ?(extras = [])
    ?(axes = []) ?(series = []) () =
  {
    Campaign.Cell_result.protocol;
    degree;
    seed;
    sent = 100;
    delivered = 100 - drops;
    drops_no_route = drops;
    drops_ttl = 0;
    drops_queue = 0;
    drops_link = 0;
    looped_delivered = 0;
    looped_dropped = 0;
    ctrl_messages = 10;
    ctrl_bytes = 500;
    fwd_convergence = conv;
    routing_convergence = 2. *. conv;
    transient_paths = 1;
    extras;
    axes;
    series;
    wall_s = 0.;
    perf = [];
    events = 0;
  }

let stat_of aggregate name =
  match List.assoc_opt name aggregate.Campaign.Artifact.a_metrics with
  | Some s -> s
  | None -> Alcotest.failf "aggregate lacks metric %S" name

let test_aggregate_mean_stddev () =
  (* drops 1, 2, 3: mean 2, population stddev sqrt(2/3). *)
  let cells =
    [ cell ~seed:1 ~drops:1 (); cell ~seed:2 ~drops:2 (); cell ~seed:3 ~drops:3 () ]
  in
  match Campaign.Artifact.aggregate cells with
  | [ g ] ->
    Alcotest.(check string) "protocol" "P" g.Campaign.Artifact.a_protocol;
    Alcotest.(check int) "degree" 3 g.Campaign.Artifact.a_degree;
    Alcotest.(check int) "runs" 3 g.Campaign.Artifact.a_runs;
    let s = stat_of g "drops_no_route" in
    Alcotest.(check (float 1e-12)) "mean" 2. s.Campaign.Artifact.mean;
    Alcotest.(check (float 1e-12))
      "stddev" (sqrt (2. /. 3.)) s.Campaign.Artifact.stddev;
    let c = stat_of g "fwd_convergence" in
    Alcotest.(check (float 1e-12)) "conv mean" 1.5 c.Campaign.Artifact.mean;
    Alcotest.(check (float 1e-12)) "conv stddev" 0. c.Campaign.Artifact.stddev
  | gs -> Alcotest.failf "expected 1 aggregate, got %d" (List.length gs)

let test_aggregate_groups_in_first_appearance_order () =
  let cells =
    [
      cell ~protocol:"RIP" ~degree:3 ~seed:1 ~drops:1 ();
      cell ~protocol:"RIP" ~degree:4 ~seed:1 ~drops:2 ();
      cell ~protocol:"DBF" ~degree:3 ~seed:1 ~drops:3 ();
    ]
  in
  let keys =
    List.map
      (fun g -> (g.Campaign.Artifact.a_protocol, g.Campaign.Artifact.a_degree))
      (Campaign.Artifact.aggregate cells)
  in
  (* RIP before DBF: first-appearance order, not alphabetical — this is what
     keeps the rendered tables in the paper's column order. *)
  Alcotest.(check (list (pair string int)))
    "order" [ ("RIP", 3); ("RIP", 4); ("DBF", 3) ] keys

let test_aggregate_extras_and_series () =
  let series counts sums =
    {
      Campaign.Cell_result.s_start = 0.;
      s_width = 1.;
      s_counts = counts;
      s_sums = sums;
    }
  in
  let cells =
    [
      cell ~seed:1 ~drops:0
        ~extras:[ ("delivery_ratio", 0.5) ]
        ~series:[ ("throughput", series [| 1.; 2. |] [| 10.; 20. |]) ]
        ();
      cell ~seed:2 ~drops:0
        ~extras:[ ("delivery_ratio", 1.0) ]
        ~series:[ ("throughput", series [| 3.; 4. |] [| 30.; 40. |]) ]
        ();
    ]
  in
  match Campaign.Artifact.aggregate cells with
  | [ g ] ->
    let s = stat_of g "delivery_ratio" in
    Alcotest.(check (float 1e-12)) "extra mean" 0.75 s.Campaign.Artifact.mean;
    (match List.assoc_opt "throughput" g.Campaign.Artifact.a_series with
    | None -> Alcotest.fail "missing aggregated series"
    | Some agg ->
      (* accumulate then scale by 1/runs, like Metrics.summarize *)
      Alcotest.(check (array (float 1e-12)))
        "counts" [| 2.; 3. |] agg.Campaign.Cell_result.s_counts;
      Alcotest.(check (array (float 1e-12)))
        "sums" [| 20.; 30. |] agg.Campaign.Cell_result.s_sums)
  | gs -> Alcotest.failf "expected 1 aggregate, got %d" (List.length gs)

(* ---------- artifact round-trip and validation ---------- *)

let params =
  {
    Campaign.Artifact.mode = "quick";
    rows = 7;
    cols = 7;
    degrees = [ 3; 4 ];
    runs = 2;
    seed = 1;
    rate_pps = 100.;
    warmup = 70.;
    sim_end = 220.;
  }

let fixture_artifact ?timing () =
  Campaign.Artifact.build ~section:"fig3" ~git_sha:"cafe123" ?timing
    ~include_series:false params
    [
      cell ~seed:1 ~drops:1 ();
      cell ~seed:2 ~drops:2 ();
      cell ~degree:4 ~seed:1 ~drops:3 ();
      cell ~degree:4 ~seed:2 ~drops:5 ();
    ]

let test_artifact_json_roundtrip () =
  let a = fixture_artifact () in
  match Campaign.Artifact.of_json (Campaign.Artifact.to_json a) with
  | Error e -> Alcotest.fail e
  | Ok b ->
    Alcotest.(check string)
      "same canonical bytes"
      (Campaign.Artifact.canonical_string a)
      (Campaign.Artifact.canonical_string b)

let test_artifact_nan_roundtrip () =
  let a =
    Campaign.Artifact.build ~section:"fig3" ~git_sha:"cafe123"
      ~include_series:false params
      [ cell ~seed:1 ~drops:1 ~conv:Float.nan () ]
  in
  match Campaign.Artifact.of_json (Campaign.Artifact.to_json a) with
  | Error e -> Alcotest.fail e
  | Ok b -> (
    match b.Campaign.Artifact.cells with
    | [ c ] ->
      Alcotest.(check bool)
        "nan survives as nan" true
        (Float.is_nan c.Campaign.Cell_result.fwd_convergence)
    | _ -> Alcotest.fail "expected 1 cell")

let test_artifact_file_roundtrip () =
  let a = fixture_artifact () in
  let path = Filename.temp_file "campaign" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Campaign.Artifact.write ~path a;
      match Campaign.Artifact.read ~path with
      | Error e -> Alcotest.fail e
      | Ok b ->
        Alcotest.(check string)
          "identical including timing"
          (Campaign.Artifact.to_string a)
          (Campaign.Artifact.to_string b))

let test_artifact_v4_axes () =
  let schema_of a =
    match
      Option.bind
        (Obs.Json.member "schema_version" (Campaign.Artifact.to_json a))
        Obs.Json.to_int
    with
    | Some v -> v
    | None -> Alcotest.fail "artifact without schema_version"
  in
  (* An axes-free artifact keeps stamping v3, so regenerating committed
     pre-v4 artifacts still diffs byte-identical. *)
  Alcotest.(check int) "axes-free artifacts stay v3" 3
    (schema_of (fixture_artifact ()));
  let ax d = [ ("schedule", "flap"); ("frr", "on"); ("mesh_degree", d) ] in
  let a =
    Campaign.Artifact.build ~section:"fig3" ~git_sha:"cafe123"
      ~include_series:false params
      [
        cell ~seed:1 ~drops:1 ~axes:(ax "3") ();
        cell ~seed:2 ~drops:2 ~axes:(ax "3") ();
        cell ~degree:4 ~seed:1 ~drops:3 ~axes:(ax "4") ();
      ]
  in
  Alcotest.(check int) "axes promote the artifact to v4" 4 (schema_of a);
  Alcotest.(check (list string))
    "v4 artifact validates" []
    (Campaign.Artifact.validate (Campaign.Artifact.to_json a));
  match Campaign.Artifact.of_json (Campaign.Artifact.to_json a) with
  | Error e -> Alcotest.fail e
  | Ok b ->
    Alcotest.(check string)
      "axes round-trip bytes"
      (Campaign.Artifact.canonical_string a)
      (Campaign.Artifact.canonical_string b);
    (match b.Campaign.Artifact.cells with
    | c :: _ ->
      Alcotest.(check (list (pair string string)))
        "cell axes preserved" (ax "3") c.Campaign.Cell_result.axes
    | [] -> Alcotest.fail "no cells");
    (match b.Campaign.Artifact.aggregates with
    | g :: _ ->
      Alcotest.(check (list (pair string string)))
        "aggregate inherits its group's axes" (ax "3")
        g.Campaign.Artifact.a_axes
    | [] -> Alcotest.fail "no aggregates")

let test_validate_accepts_fixture () =
  Alcotest.(check (list string))
    "no violations" []
    (Campaign.Artifact.validate (Campaign.Artifact.to_json (fixture_artifact ())))

let test_validate_catches_corruption () =
  let violations mutate =
    let j = Campaign.Artifact.to_json (fixture_artifact ()) in
    Campaign.Artifact.validate (mutate j)
  in
  let replace key v = function
    | Obs.Json.Obj fields ->
      Obs.Json.Obj (List.map (fun (k, x) -> if k = key then (k, v) else (k, x)) fields)
    | j -> j
  in
  let drop key = function
    | Obs.Json.Obj fields -> Obs.Json.Obj (List.filter (fun (k, _) -> k <> key) fields)
    | j -> j
  in
  Alcotest.(check bool)
    "future schema version" true
    (violations (replace "schema_version" (Obs.Json.Int 99)) <> []);
  Alcotest.(check bool)
    "wrong kind" true
    (violations (replace "kind" (Obs.Json.String "nonsense")) <> []);
  Alcotest.(check bool)
    "missing cells" true
    (violations (drop "cells") <> []);
  Alcotest.(check bool)
    "missing params" true
    (violations (drop "params") <> []);
  (* Duplicate a cell: validation must flag both the duplicate key and the
     aggregate runs-vs-cells inconsistency. *)
  let dup = function
    | Obs.Json.Obj fields ->
      Obs.Json.Obj
        (List.map
           (function
             | "cells", Obs.Json.List (c :: rest) ->
               ("cells", Obs.Json.List (c :: c :: rest))
             | kv -> kv)
           fields)
    | j -> j
  in
  Alcotest.(check bool) "duplicate cell key" true (violations dup <> [])

(* ---------- determinism under parallelism ---------- *)

(* A real (if tiny) campaign: DBF over 2 degrees x 2 seeds on the quick
   timeline, run sequentially and on 3 workers. The merged artifacts must be
   byte-identical. *)
let test_campaign_jobs_invariance () =
  let section =
    Campaign.Sections.grid ~name:"test-grid"
      ~engines:[ Convergence.Engine_registry.dbf ]
      ()
  in
  let sweep =
    Convergence.Experiments.(scale ~runs:2 ~degrees:[ 3; 4 ] quick_sweep)
  in
  let run jobs = Campaign.Driver.run ~jobs ~mode:"quick" sweep section in
  let a = run 1 and b = run 3 in
  Alcotest.(check string)
    "canonical bytes equal"
    (Campaign.Artifact.canonical_string a)
    (Campaign.Artifact.canonical_string b);
  (match (a.Campaign.Artifact.timing, b.Campaign.Artifact.timing) with
  | Some ta, Some tb ->
    Alcotest.(check int) "jobs recorded (seq)" 1 ta.Campaign.Artifact.t_jobs;
    Alcotest.(check int) "jobs recorded (par)" 3 tb.Campaign.Artifact.t_jobs
  | _ -> Alcotest.fail "timing missing");
  Alcotest.(check (list string))
    "fixture validates" []
    (Campaign.Artifact.validate (Campaign.Artifact.to_json a));
  Alcotest.(check (list Alcotest.reject)) "no diff" []
    (List.map (fun _ -> ()) (Campaign.Diff.artifacts a b))

(* ---------- byte-identity of quick-mode fig3 rows ---------- *)

let fig3_fixture_path = "fixtures/fig3_quick_rows.jsonl"

(* The full quick-mode fig3 campaign, row by row, against a committed
   fixture. Together with the golden traces this pins the engine's observable
   behavior: any change to event ordering, float arithmetic, or RNG
   consumption shows up as a row diff here. Regenerate (after an intentional
   behavior change) with:
     FIG3_FIXTURE_REGEN=<absolute test dir>/fixtures dune test test/test_campaign.exe *)
let test_fig3_quick_rows_fixture () =
  let section =
    match Campaign.Sections.find "fig3" with
    | Some s -> s
    | None -> Alcotest.fail "fig3 section missing"
  in
  let sweep =
    Campaign.Sections.sweep_for section ~full:false
      Convergence.Experiments.quick_sweep
  in
  let artifact = Campaign.Driver.run ~jobs:2 ~mode:"quick" sweep section in
  let rows =
    List.map
      (fun c ->
        Obs.Json.to_string (Campaign.Cell_result.to_json ~include_series:false c))
      artifact.Campaign.Artifact.cells
  in
  let actual = String.concat "\n" rows ^ "\n" in
  match Sys.getenv_opt "FIG3_FIXTURE_REGEN" with
  | Some dir ->
    let dir = if dir = "1" then Filename.dirname fig3_fixture_path else dir in
    let target = Filename.concat dir (Filename.basename fig3_fixture_path) in
    Rcutil.Atomic_file.write_string ~path:target actual;
    Alcotest.failf "regenerated %s (%d rows); review and commit it" target
      (List.length rows)
  | None ->
    let ic = open_in_bin fig3_fixture_path in
    let expected =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    if String.equal expected actual then ()
    else begin
      let el = String.split_on_char '\n' expected in
      let al = String.split_on_char '\n' actual in
      let rec first_diff i = function
        | e :: es, a :: as_ ->
          if String.equal e a then first_diff (i + 1) (es, as_) else (i, e, a)
        | e :: _, [] -> (i, e, "<rows ended>")
        | [], a :: _ -> (i, "<fixture ended>", a)
        | [], [] -> (i, "", "")
      in
      let line, e, a = first_diff 1 (el, al) in
      Alcotest.failf
        "fig3 quick rows diverge from %s at row %d@.  fixture: %s@.  actual: \
         %s@.(FIG3_FIXTURE_REGEN to regenerate after an intentional change)"
        fig3_fixture_path line e a
    end

(* ---------- diff ---------- *)

let test_diff_ignores_timing_and_sha () =
  let timing =
    { Campaign.Artifact.t_jobs = 8; t_wall_s = 1.23; t_exec = None; t_cells = [] }
  in
  let a = fixture_artifact () in
  let b = { (fixture_artifact ~timing ()) with Campaign.Artifact.git_sha = "beef456" } in
  Alcotest.(check int) "no entries" 0 (List.length (Campaign.Diff.artifacts a b))

let test_diff_flags_regression () =
  let a = fixture_artifact () in
  let corrupt =
    Campaign.Artifact.build ~section:"fig3" ~git_sha:"cafe123"
      ~include_series:false params
      [
        cell ~seed:1 ~drops:1 ();
        cell ~seed:2 ~drops:7 ();
        (* was 2: a regression *)
        cell ~degree:4 ~seed:1 ~drops:3 ();
        cell ~degree:4 ~seed:2 ~drops:5 ();
      ]
  in
  let entries = Campaign.Diff.artifacts a corrupt in
  Alcotest.(check bool) "flagged" true (entries <> []);
  let mentions_cell =
    List.exists
      (function Campaign.Diff.Cell_metric _ -> true | _ -> false)
      entries
  in
  let mentions_aggregate =
    List.exists
      (function Campaign.Diff.Aggregate_metric _ -> true | _ -> false)
      entries
  in
  Alcotest.(check bool) "cell-level entry" true mentions_cell;
  Alcotest.(check bool) "aggregate-level entry" true mentions_aggregate

let test_diff_missing_cell_and_params () =
  let a = fixture_artifact () in
  let b =
    Campaign.Artifact.build ~section:"fig3" ~git_sha:"cafe123"
      ~include_series:false
      { params with Campaign.Artifact.runs = 1 }
      [ cell ~seed:1 ~drops:1 (); cell ~degree:4 ~seed:1 ~drops:3 () ]
  in
  let entries = Campaign.Diff.artifacts a b in
  Alcotest.(check bool)
    "params entry" true
    (List.exists (function Campaign.Diff.Params _ -> true | _ -> false) entries);
  Alcotest.(check bool)
    "missing-cell entry" true
    (List.exists
       (function Campaign.Diff.Missing_cell _ -> true | _ -> false)
       entries)

let test_diff_tolerance () =
  let a = fixture_artifact () in
  let b =
    Campaign.Artifact.build ~section:"fig3" ~git_sha:"cafe123"
      ~include_series:false params
      [
        cell ~seed:1 ~drops:1 ~conv:1.5000001 ();
        cell ~seed:2 ~drops:2 ();
        cell ~degree:4 ~seed:1 ~drops:3 ();
        cell ~degree:4 ~seed:2 ~drops:5 ();
      ]
  in
  Alcotest.(check bool)
    "exact diff sees it" true
    (Campaign.Diff.artifacts a b <> []);
  Alcotest.(check int)
    "tolerant diff does not" 0
    (List.length (Campaign.Diff.artifacts ~tol:1e-3 a b))

(* ---------- windowed series extraction ---------- *)

let test_windowed_slices_and_normalizes () =
  let s = Dessim.Series.create ~start:0. ~width:1. ~buckets:10 in
  for i = 0 to 9 do
    Dessim.Series.add s ~time:(float_of_int i +. 0.5) (float_of_int i)
  done;
  (* warmup 4: normalized time of bucket i is i - 4; keep [0, 3]. *)
  let w = Campaign.Cell_result.windowed ~warmup:4. ~lo:0. ~hi:3. s in
  Alcotest.(check (float 1e-12)) "start" 0. w.Campaign.Cell_result.s_start;
  Alcotest.(check int) "4 buckets" 4 (Array.length w.Campaign.Cell_result.s_counts);
  Alcotest.(check (array (float 1e-12)))
    "sums are buckets 4..7" [| 4.; 5.; 6.; 7. |]
    w.Campaign.Cell_result.s_sums

let () =
  Alcotest.run "campaign"
    [
      ( "pool",
        [
          Alcotest.test_case "preserves index order" `Quick test_pool_preserves_order;
          Alcotest.test_case "runs each task exactly once" `Quick
            test_pool_runs_each_task_once;
          Alcotest.test_case "empty and oversubscribed" `Quick
            test_pool_empty_and_oversubscribed;
          Alcotest.test_case "propagates lowest-index exception" `Quick
            test_pool_propagates_first_exception;
          Alcotest.test_case "default_jobs positive" `Quick test_default_jobs_positive;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "mean and population stddev" `Quick
            test_aggregate_mean_stddev;
          Alcotest.test_case "first-appearance group order" `Quick
            test_aggregate_groups_in_first_appearance_order;
          Alcotest.test_case "extras and series" `Quick test_aggregate_extras_and_series;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "json round-trip" `Quick test_artifact_json_roundtrip;
          Alcotest.test_case "v4 axes" `Quick test_artifact_v4_axes;
          Alcotest.test_case "nan round-trip" `Quick test_artifact_nan_roundtrip;
          Alcotest.test_case "file round-trip" `Quick test_artifact_file_roundtrip;
          Alcotest.test_case "validate accepts fixture" `Quick
            test_validate_accepts_fixture;
          Alcotest.test_case "validate catches corruption" `Quick
            test_validate_catches_corruption;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs 1 vs 3 byte-identical" `Slow
            test_campaign_jobs_invariance;
          Alcotest.test_case "fig3 quick rows match committed fixture" `Slow
            test_fig3_quick_rows_fixture;
        ] );
      ( "diff",
        [
          Alcotest.test_case "ignores timing and sha" `Quick
            test_diff_ignores_timing_and_sha;
          Alcotest.test_case "flags injected regression" `Quick
            test_diff_flags_regression;
          Alcotest.test_case "missing cell and params" `Quick
            test_diff_missing_cell_and_params;
          Alcotest.test_case "tolerance" `Quick test_diff_tolerance;
        ] );
      ( "series",
        [
          Alcotest.test_case "windowed slice normalizes time" `Quick
            test_windowed_slices_and_normalizes;
        ] );
    ]
