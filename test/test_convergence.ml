(* Tests for the study harness building blocks: configuration validation,
   forwarding-path observation, metrics accounting, and report rendering. *)

(* ---------- Config ---------- *)

let test_default_valid () =
  match Convergence.Config.validate Convergence.Config.default with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_quick_valid () =
  match Convergence.Config.validate Convergence.Config.quick with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_default_matches_paper () =
  let c = Convergence.Config.default in
  Alcotest.(check int) "49 nodes" 49 (Convergence.Config.nodes c);
  Alcotest.(check int) "ttl 127" 127 c.Convergence.Config.ttl;
  Alcotest.(check (float 0.)) "1 Mbps" 1e6 c.Convergence.Config.bandwidth_bps;
  Alcotest.(check (float 0.)) "10 ms prop" 0.01 c.Convergence.Config.prop_delay;
  Alcotest.(check int) "queue 200" 200 c.Convergence.Config.queue_capacity;
  Alcotest.(check (float 0.)) "200 pps" 200. c.Convergence.Config.send_rate_pps;
  Alcotest.(check (float 0.)) "failure at 400" 400. c.Convergence.Config.failure_time

let test_validation_rejects () =
  let reject cfg msg =
    match Convergence.Config.validate cfg with
    | Ok () -> Alcotest.failf "expected rejection: %s" msg
    | Error _ -> ()
  in
  let c = Convergence.Config.default in
  reject { c with rows = 2 } "rows";
  reject { c with degree = 2 } "degree";
  reject { c with degree = 99 } "degree hi";
  reject { c with bandwidth_bps = 0. } "bandwidth";
  reject { c with queue_capacity = 0 } "queue";
  reject { c with ttl = 0 } "ttl";
  reject { c with send_rate_pps = 0. } "rate";
  reject { c with traffic_start = 500. } "traffic after failure";
  reject { c with sim_end = 100. } "end before failure"

let test_with_helpers () =
  let c = Convergence.Config.default in
  Alcotest.(check int) "degree" 6 (Convergence.Config.with_degree 6 c).Convergence.Config.degree;
  Alcotest.(check int) "seed" 9 (Convergence.Config.with_seed 9 c).Convergence.Config.seed

(* ---------- Observer ---------- *)

let next_hop_of_table table n = List.assoc_opt n table

let test_observer_complete () =
  let table = [ (0, Some 1); (1, Some 2) ] in
  match
    Convergence.Observer.current_path ~next_hop:(fun n ->
        Option.join (next_hop_of_table table n))
      ~src:0 ~dst:2
  with
  | Convergence.Observer.Complete [ 0; 1; 2 ] -> ()
  | r -> Alcotest.failf "unexpected %a" Convergence.Observer.pp r

let test_observer_broken () =
  let table = [ (0, Some 1); (1, None) ] in
  match
    Convergence.Observer.current_path ~next_hop:(fun n ->
        Option.join (next_hop_of_table table n))
      ~src:0 ~dst:2
  with
  | Convergence.Observer.Broken [ 0; 1 ] -> ()
  | r -> Alcotest.failf "unexpected %a" Convergence.Observer.pp r

let test_observer_looping () =
  let table = [ (0, Some 1); (1, Some 0) ] in
  match
    Convergence.Observer.current_path ~next_hop:(fun n ->
        Option.join (next_hop_of_table table n))
      ~src:0 ~dst:2
  with
  | Convergence.Observer.Looping [ 0; 1; 0 ] -> ()
  | r -> Alcotest.failf "unexpected %a" Convergence.Observer.pp r

let test_observer_src_is_dst () =
  match Convergence.Observer.current_path ~next_hop:(fun _ -> None) ~src:5 ~dst:5 with
  | Convergence.Observer.Complete [ 5 ] -> ()
  | r -> Alcotest.failf "unexpected %a" Convergence.Observer.pp r

let test_observer_equal_and_helpers () =
  let a = Convergence.Observer.Complete [ 0; 1 ] in
  let b = Convergence.Observer.Complete [ 0; 1 ] in
  let c = Convergence.Observer.Broken [ 0; 1 ] in
  Alcotest.(check bool) "equal" true (Convergence.Observer.equal a b);
  Alcotest.(check bool) "kind differs" false (Convergence.Observer.equal a c);
  Alcotest.(check bool) "equal_nodes" true
    (Convergence.Observer.equal_nodes [ 0; 1 ] [ 0; 1 ]);
  Alcotest.(check bool) "equal_nodes length" false
    (Convergence.Observer.equal_nodes [ 0; 1 ] [ 0; 1; 2 ]);
  Alcotest.(check bool) "equal_nodes element" false
    (Convergence.Observer.equal_nodes [ 0; 1 ] [ 0; 2 ]);
  Alcotest.(check bool) "complete" true (Convergence.Observer.is_complete a);
  Alcotest.(check bool) "broken not complete" false (Convergence.Observer.is_complete c);
  Alcotest.(check (option int)) "hops" (Some 1) (Convergence.Observer.hops a);
  Alcotest.(check (option int)) "hops broken" None (Convergence.Observer.hops c);
  Alcotest.(check (list int)) "nodes_of" [ 0; 1 ] (Convergence.Observer.nodes_of c)

(* ---------- Metrics ---------- *)

let series () = Dessim.Series.create ~start:0. ~width:1. ~buckets:5

let sample_run ?(protocol = "X") ?(degree = 4) ?(seed = 1) ?(sent = 100)
    ?(delivered = 90) ?(no_route = 5) ?(ttl = 3) () =
  {
    Convergence.Metrics.protocol;
    degree;
    seed;
    src = 0;
    dst = 1;
    sent;
    delivered;
    drops_no_route = no_route;
    drops_ttl = ttl;
    drops_queue = 0;
    drops_link = 2;
    drops_injected = 0;
    looped_delivered = 1;
    looped_dropped = ttl;
    ctrl_messages = 10;
    ctrl_bytes = 1000;
    ctrl_lost = 0;
    throughput = series ();
    delay = series ();
    fwd_convergence = 1.5;
    routing_convergence = 2.5;
    transient_paths = 2;
    failed_link = Some (0, 1);
    pre_failure_path = [ 0; 1 ];
    final_path = [ 0; 2; 1 ];
    final_path_complete = true;
    sched_events = 0;
  }

let test_metrics_accounting () =
  let r = sample_run () in
  Alcotest.(check int) "total drops" 10 (Convergence.Metrics.total_drops r);
  Alcotest.(check int) "in flight" 0 (Convergence.Metrics.in_flight r);
  Alcotest.(check bool) "conserved" true (Convergence.Metrics.conservation_ok r)

let test_metrics_summarize () =
  let runs = [ sample_run ~seed:1 ~no_route:4 (); sample_run ~seed:2 ~no_route:6 () ] in
  let s = Convergence.Metrics.summarize runs in
  Alcotest.(check int) "runs" 2 s.Convergence.Metrics.s_runs;
  Alcotest.(check (float 1e-9)) "mean drops" 5. s.Convergence.Metrics.mean_drops_no_route;
  Alcotest.(check (float 1e-9)) "mean fwd" 1.5 s.Convergence.Metrics.mean_fwd_convergence;
  Alcotest.(check (float 1e-9)) "fwd stddev" 0. s.Convergence.Metrics.stddev_fwd_convergence

let test_metrics_summarize_rejects_mixed () =
  let runs = [ sample_run ~protocol:"A" (); sample_run ~protocol:"B" () ] in
  Alcotest.check_raises "mixed" (Invalid_argument "Metrics.summarize: mixed protocol or degree")
    (fun () -> ignore (Convergence.Metrics.summarize runs));
  Alcotest.check_raises "empty" (Invalid_argument "Metrics.summarize: no runs") (fun () ->
      ignore (Convergence.Metrics.summarize []))

let test_metrics_pp_smoke () =
  let r = sample_run () in
  let s = Fmt.str "%a" Convergence.Metrics.pp_run r in
  Alcotest.(check bool) "mentions protocol" true
    (Astring_contains.contains s "X degree=4")

(* tiny substring helper without external deps *)

(* ---------- Report ---------- *)

let test_report_scalar_table () =
  let data = [ ("RIP", [ (3, 10.); (4, 5.) ]); ("DBF", [ (3, 1.); (4, 0.) ]) ] in
  let s =
    Fmt.str "%a" (Convergence.Report.scalar_table ~title:"T" ~unit_label:"u") data
  in
  Alcotest.(check bool) "has title" true (Astring_contains.contains s "T (u)");
  Alcotest.(check bool) "has protocol" true (Astring_contains.contains s "RIP");
  Alcotest.(check bool) "has value" true (Astring_contains.contains s "10.00")

let test_report_series_table () =
  let mk () =
    let s = Dessim.Series.create ~start:10. ~width:1. ~buckets:5 in
    Dessim.Series.add s ~time:11.5 3.;
    s
  in
  let render ppf data =
    Convergence.Report.series_table ~title:"S" ~unit_label:"pps" ~warmup:10.
      ~mode:`Rate ppf data
  in
  let out = Fmt.str "%a" render [ ("P", mk ()) ] in
  Alcotest.(check bool) "has series title" true (Astring_contains.contains out "S (pps");
  Alcotest.(check bool) "bucket rate rendered" true
    (Astring_contains.contains out "1.000")

let test_report_window () =
  let s = Dessim.Series.create ~start:0. ~width:1. ~buckets:100 in
  let out =
    Fmt.str "%a"
      (Convergence.Report.series_table ~title:"W" ~unit_label:"x" ~warmup:0.
         ~window:(10., 12.) ~mode:`Mean)
      [ ("P", s) ]
  in
  (* Rows outside the window must be absent: time 50 not rendered. *)
  Alcotest.(check bool) "window start present" true (Astring_contains.contains out "10");
  Alcotest.(check bool) "outside absent" false (Astring_contains.contains out "50")

(* ---------- Loop analysis ---------- *)

let test_cycle_of_packet () =
  Alcotest.(check (option (list int))) "simple cycle" (Some [ 1; 2 ])
    (Convergence.Loop_analysis.cycle_of_packet [ 0; 1; 2; 1 ]);
  Alcotest.(check (option (list int))) "3-cycle" (Some [ 1; 2; 3 ])
    (Convergence.Loop_analysis.cycle_of_packet [ 0; 1; 2; 3; 1 ]);
  Alcotest.(check (option (list int))) "no cycle" None
    (Convergence.Loop_analysis.cycle_of_packet [ 0; 1; 2; 3 ]);
  Alcotest.(check (option (list int))) "normalized rotation" (Some [ 2; 7; 12 ])
    (Convergence.Loop_analysis.cycle_of_packet [ 5; 7; 12; 2; 7 ])

let test_cycle_of_path () =
  Alcotest.(check (option (list int))) "looping" (Some [ 1; 2 ])
    (Convergence.Loop_analysis.cycle_of_path
       (Convergence.Observer.Looping [ 0; 1; 2; 1 ]));
  Alcotest.(check (option (list int))) "complete" None
    (Convergence.Loop_analysis.cycle_of_path
       (Convergence.Observer.Complete [ 0; 1; 2 ]))

let test_episodes_merge_and_close () =
  let looping = Convergence.Observer.Looping [ 0; 1; 2; 1 ] in
  let looping' = Convergence.Observer.Looping [ 0; 3; 4; 3 ] in
  let fine = Convergence.Observer.Complete [ 0; 5 ] in
  let history =
    [ (1., fine); (2., looping); (3., looping); (4., fine); (6., looping'); (7., fine) ]
  in
  match Convergence.Loop_analysis.episodes history with
  | [ a; b ] ->
    Alcotest.(check (list int)) "first cycle" [ 1; 2 ] a.Convergence.Loop_analysis.cycle;
    Alcotest.(check (float 1e-9)) "starts" 2. a.Convergence.Loop_analysis.started;
    Alcotest.(check (float 1e-9)) "ends" 3. a.Convergence.Loop_analysis.ended;
    Alcotest.(check (float 1e-9)) "duration" 1. (Convergence.Loop_analysis.duration a);
    Alcotest.(check (list int)) "second cycle" [ 3; 4 ] b.Convergence.Loop_analysis.cycle
  | l -> Alcotest.failf "expected 2 episodes, got %d" (List.length l)

let test_episodes_unordered_input () =
  let looping = Convergence.Observer.Looping [ 0; 1; 2; 1 ] in
  let fine = Convergence.Observer.Complete [ 0; 5 ] in
  let history = [ (3., looping); (1., fine); (2., looping); (4., fine) ] in
  match Convergence.Loop_analysis.episodes history with
  | [ a ] ->
    Alcotest.(check (float 1e-9)) "sorted start" 2. a.Convergence.Loop_analysis.started;
    Alcotest.(check (float 1e-9)) "sorted end" 3. a.Convergence.Loop_analysis.ended
  | l -> Alcotest.failf "expected 1 episode, got %d" (List.length l)

let test_episodes_open_at_end () =
  let looping = Convergence.Observer.Looping [ 0; 1; 2; 1 ] in
  match Convergence.Loop_analysis.episodes [ (5., looping) ] with
  | [ a ] ->
    Alcotest.(check (float 1e-9)) "zero-length episode" 0.
      (Convergence.Loop_analysis.duration a)
  | l -> Alcotest.failf "expected 1 episode, got %d" (List.length l)

(* ---------- Engine registry ---------- *)

let test_registry_names () =
  let names = List.map Convergence.Engine_registry.name Convergence.Engine_registry.all in
  Alcotest.(check (list string)) "all engines"
    [ "RIP"; "DBF"; "BGP"; "BGP-3"; "BGP-pd"; "BGP-3+RFD"; "LS" ]
    names

let test_registry_find () =
  (match Convergence.Engine_registry.find "rip" with
  | Some e -> Alcotest.(check string) "case insensitive" "RIP" (Convergence.Engine_registry.name e)
  | None -> Alcotest.fail "rip not found");
  Alcotest.(check bool) "unknown" true (Convergence.Engine_registry.find "nope" = None)

let test_registry_paper_four () =
  Alcotest.(check (list string)) "paper four"
    [ "RIP"; "DBF"; "BGP"; "BGP-3" ]
    (List.map Convergence.Engine_registry.name Convergence.Engine_registry.paper_four)

(* ---------- Experiments drivers ---------- *)

let tiny_sweep =
  Convergence.Experiments.
    { degrees = [ 3; 4 ]; runs = 2; base = Convergence.Config.quick }

let test_experiments_grid_shape () =
  let grid =
    Convergence.Experiments.run_grid tiny_sweep [ Convergence.Engine_registry.dbf ]
  in
  match grid with
  | [ ("DBF", cells) ] ->
    Alcotest.(check (list int)) "degrees" [ 3; 4 ]
      (List.map (fun c -> c.Convergence.Experiments.degree) cells);
    List.iter
      (fun c ->
        Alcotest.(check int) "runs per cell" 2
          c.Convergence.Experiments.summary.Convergence.Metrics.s_runs)
      cells
  | _ -> Alcotest.fail "unexpected grid shape"

let test_experiments_projections () =
  let grid =
    Convergence.Experiments.run_grid tiny_sweep [ Convergence.Engine_registry.dbf ]
  in
  let check_projection name projection =
    match projection with
    | [ ("DBF", points) ] ->
      Alcotest.(check (list int)) (name ^ " degrees") [ 3; 4 ] (List.map fst points)
    | _ -> Alcotest.failf "%s: unexpected shape" name
  in
  check_projection "fig3" (Convergence.Experiments.fig3 grid);
  check_projection "fig4" (Convergence.Experiments.fig4 grid);
  check_projection "fig6a" (Convergence.Experiments.fig6a grid);
  check_projection "fig6b" (Convergence.Experiments.fig6b grid);
  check_projection "overhead" (Convergence.Experiments.overhead grid);
  (match Convergence.Experiments.fig5 grid ~degree:3 with
  | [ ("DBF", series) ] ->
    Alcotest.(check bool) "series nonempty" true (Dessim.Series.buckets series > 0)
  | _ -> Alcotest.fail "fig5 shape");
  match Convergence.Experiments.fig5 grid ~degree:9 with
  | [] -> ()
  | _ -> Alcotest.fail "fig5 must be empty for unswept degree"

let test_experiments_scale () =
  let scaled =
    Convergence.Experiments.scale ~runs:7 ~degrees:[ 5 ] tiny_sweep
  in
  Alcotest.(check int) "runs" 7 scaled.Convergence.Experiments.runs;
  Alcotest.(check (list int)) "degrees" [ 5 ] scaled.Convergence.Experiments.degrees;
  let unchanged = Convergence.Experiments.scale tiny_sweep in
  Alcotest.(check int) "default runs kept" 2 unchanged.Convergence.Experiments.runs

let test_experiments_same_seed_same_grid () =
  let one () =
    Convergence.Experiments.fig3
      (Convergence.Experiments.run_grid tiny_sweep [ Convergence.Engine_registry.dbf ])
  in
  Alcotest.(check bool) "deterministic grids" true (one () = one ())

(* ---------- Export ---------- *)

let lines s = String.split_on_char '\n' (String.trim s)

let test_export_run_csv () =
  let csv = Convergence.Export.run_csv [ sample_run (); sample_run ~seed:2 () ] in
  match lines csv with
  | header :: rows ->
    Alcotest.(check bool) "header" true
      (Astring_contains.contains header "protocol,degree,seed");
    Alcotest.(check int) "two rows" 2 (List.length rows);
    Alcotest.(check bool) "protocol cell" true
      (Astring_contains.contains (List.hd rows) "X,4,1");
    (* Every row has as many cells as the header. *)
    let cells ln = List.length (String.split_on_char ',' ln) in
    List.iter
      (fun r -> Alcotest.(check int) "cell count" (cells header) (cells r))
      rows
  | [] -> Alcotest.fail "empty csv"

let test_export_summary_csv () =
  let s = Convergence.Metrics.summarize [ sample_run (); sample_run ~seed:2 () ] in
  let csv = Convergence.Export.summary_csv [ s ] in
  match lines csv with
  | [ header; row ] ->
    Alcotest.(check bool) "header" true
      (Astring_contains.contains header "mean_drops_no_route");
    Alcotest.(check bool) "runs cell" true (Astring_contains.contains row "X,4,2")
  | _ -> Alcotest.fail "expected header + 1 row"

let test_export_series_csv () =
  let series = Dessim.Series.create ~start:10. ~width:1. ~buckets:3 in
  Dessim.Series.add series ~time:11.5 4.;
  let csv = Convergence.Export.series_csv ~warmup:10. [ ("P", series) ] in
  match lines csv with
  | [ header; b0; b1; b2 ] ->
    Alcotest.(check string) "header" "protocol,time,count,rate,mean" header;
    Alcotest.(check string) "bucket 0" "P,0,0,0,0" b0;
    Alcotest.(check string) "bucket 1" "P,1,1,1,4" b1;
    Alcotest.(check string) "bucket 2" "P,2,0,0,0" b2
  | l -> Alcotest.failf "expected 4 lines, got %d" (List.length l)

let test_export_to_file () =
  let path = Filename.temp_file "rcsim" ".csv" in
  Convergence.Export.to_file "a,b\n1,2\n" ~path;
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "round trip" "a,b\n1,2\n" content

let () =
  Alcotest.run "convergence-core"
    [
      ( "config",
        [
          Alcotest.test_case "default valid" `Quick test_default_valid;
          Alcotest.test_case "quick valid" `Quick test_quick_valid;
          Alcotest.test_case "paper values" `Quick test_default_matches_paper;
          Alcotest.test_case "rejections" `Quick test_validation_rejects;
          Alcotest.test_case "with helpers" `Quick test_with_helpers;
        ] );
      ( "observer",
        [
          Alcotest.test_case "complete" `Quick test_observer_complete;
          Alcotest.test_case "broken" `Quick test_observer_broken;
          Alcotest.test_case "looping" `Quick test_observer_looping;
          Alcotest.test_case "src=dst" `Quick test_observer_src_is_dst;
          Alcotest.test_case "helpers" `Quick test_observer_equal_and_helpers;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "accounting" `Quick test_metrics_accounting;
          Alcotest.test_case "summarize" `Quick test_metrics_summarize;
          Alcotest.test_case "summarize rejects" `Quick test_metrics_summarize_rejects_mixed;
          Alcotest.test_case "pp smoke" `Quick test_metrics_pp_smoke;
        ] );
      ( "report",
        [
          Alcotest.test_case "scalar table" `Quick test_report_scalar_table;
          Alcotest.test_case "series table" `Quick test_report_series_table;
          Alcotest.test_case "window" `Quick test_report_window;
        ] );
      ( "loop analysis",
        [
          Alcotest.test_case "packet cycles" `Quick test_cycle_of_packet;
          Alcotest.test_case "path cycles" `Quick test_cycle_of_path;
          Alcotest.test_case "episodes" `Quick test_episodes_merge_and_close;
          Alcotest.test_case "unordered input" `Quick test_episodes_unordered_input;
          Alcotest.test_case "open episode" `Quick test_episodes_open_at_end;
        ] );
      ( "registry",
        [
          Alcotest.test_case "names" `Quick test_registry_names;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "paper four" `Quick test_registry_paper_four;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "grid shape" `Quick test_experiments_grid_shape;
          Alcotest.test_case "projections" `Quick test_experiments_projections;
          Alcotest.test_case "scale" `Quick test_experiments_scale;
          Alcotest.test_case "deterministic" `Quick test_experiments_same_seed_same_grid;
        ] );
      ( "export",
        [
          Alcotest.test_case "run csv" `Quick test_export_run_csv;
          Alcotest.test_case "summary csv" `Quick test_export_summary_csv;
          Alcotest.test_case "series csv" `Quick test_export_series_csv;
          Alcotest.test_case "to_file" `Quick test_export_to_file;
        ] );
    ]
