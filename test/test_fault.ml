(* Tests for the fault-injection substrate: the Rtx reliable-transport state
   machine under scripted loss, wire transparency of the transport at zero
   loss, end-to-end BGP behavior under injected control-plane loss, campaign
   graceful degradation (watchdog + quarantine), artifact schema v2, and the
   replay hardening (opaque lines, link-outage audit). *)

module Rtx = Fault.Rtx
module Sched = Dessim.Scheduler

(* ---------- Rtx harness: two endpoints over a scripted lossy wire ----------

   [a] sends application messages toward [b]; every segment crosses the wire
   with a fixed one-way delay unless the scripted drop predicate claims it.
   Predicates see the transmission index (0-based, per direction), which is
   how tests drop "the first copy of segment 0" and keep the retransmission. *)

type harness = {
  sched : Sched.t;
  a : string Rtx.t;
  b : string Rtx.t;
  delivered : string list ref;  (* at b, in delivery order *)
  a_events : Rtx.event list ref;  (* oldest first *)
  a_resets : int list ref;  (* epochs given to a's on_reset *)
}

let harness ?config ?(delay = 0.05) ?(drop_data = fun _ -> false)
    ?(drop_ack = fun _ -> false) () =
  let sched = Sched.create () in
  let delivered = ref [] and a_events = ref [] and a_resets = ref [] in
  let a_ref = ref None and b_ref = ref None in
  let data_tx = ref 0 and ack_tx = ref 0 in
  let wire dst seg =
    ignore
      (Sched.after sched ~delay (fun () ->
           match !dst with Some peer -> Rtx.on_segment peer seg | None -> ()))
  in
  let a =
    Rtx.create ?config ~sched
      ~send:(fun seg ->
        let n = !data_tx in
        incr data_tx;
        if not (drop_data n) then wire b_ref seg)
      ~deliver:(fun _ -> ())
      ~on_reset:(fun ~epoch -> a_resets := epoch :: !a_resets)
      ~on_event:(fun e -> a_events := e :: !a_events)
      ()
  in
  let b =
    Rtx.create ?config ~sched
      ~send:(fun seg ->
        let n = !ack_tx in
        incr ack_tx;
        if not (drop_ack n) then wire a_ref seg)
      ~deliver:(fun m -> delivered := m :: !delivered)
      ~on_reset:(fun ~epoch:_ -> ())
      ~on_event:(fun _ -> ())
      ()
  in
  a_ref := Some a;
  b_ref := Some b;
  {
    sched;
    a;
    b;
    delivered;
    a_events = (a_events : Rtx.event list ref);
    a_resets;
  }

let delivered h = List.rev !(h.delivered)

let events h = List.rev !(h.a_events)

let test_rtx_in_order_delivery () =
  let h = harness () in
  Rtx.send h.a "m0";
  Rtx.send h.a "m1";
  Rtx.send h.a "m2";
  Sched.run h.sched;
  Alcotest.(check (list string)) "in order" [ "m0"; "m1"; "m2" ] (delivered h);
  let sa = Rtx.stats h.a and sb = Rtx.stats h.b in
  Alcotest.(check int) "sent" 3 sa.Rtx.s_sent;
  Alcotest.(check int) "delivered" 3 sb.Rtx.s_delivered;
  Alcotest.(check int) "no retransmissions" 0 sa.Rtx.s_retransmissions;
  Alcotest.(check int) "fully acked" 0 (Rtx.outstanding h.a)

let test_rtx_out_of_order_buffering () =
  (* Drive a receiver directly: seq 1 arrives before seq 0 (reordered wire).
     Delivery must still be in order, and each arrival re-acks cumulatively. *)
  let sched = Sched.create () in
  let got = ref [] and acks = ref [] in
  let b =
    Rtx.create ~sched
      ~send:(fun seg ->
        match seg with
        | Rtx.Seg_ack { ack; _ } -> acks := ack :: !acks
        | Rtx.Seg_data _ -> ())
      ~deliver:(fun m -> got := m :: !got)
      ~on_reset:(fun ~epoch:_ -> ())
      ~on_event:(fun _ -> ())
      ()
  in
  Rtx.on_segment b (Rtx.Seg_data { epoch = 0; seq = 1; msg = "m1" });
  Alcotest.(check (list string)) "gap holds delivery" [] (List.rev !got);
  Rtx.on_segment b (Rtx.Seg_data { epoch = 0; seq = 0; msg = "m0" });
  Alcotest.(check (list string))
    "drained in order" [ "m0"; "m1" ] (List.rev !got);
  Alcotest.(check (list int)) "cumulative acks" [ 0; 2 ] (List.rev !acks)

let test_rtx_retransmit_recovers_loss () =
  (* Drop only the first copy of the first segment: one timeout, one
     retransmission, then normal delivery. *)
  let h = harness ~drop_data:(fun n -> n = 0) () in
  Rtx.send h.a "m0";
  Sched.run h.sched;
  Alcotest.(check (list string)) "recovered" [ "m0" ] (delivered h);
  let s = Rtx.stats h.a in
  Alcotest.(check int) "one timeout" 1 s.Rtx.s_timeouts;
  Alcotest.(check int) "one retransmission" 1 s.Rtx.s_retransmissions;
  Alcotest.(check int) "no reset" 0 s.Rtx.s_resets;
  match events h with
  | [ Rtx.Timeout { attempt = 1; _ }; Rtx.Retransmit { seq = 0; attempt = 1 } ]
    ->
    ()
  | es -> Alcotest.failf "unexpected event sequence (%d events)" (List.length es)

let test_rtx_backoff_and_retry_cap_reset () =
  (* Total blackout: the timer backs off exponentially and the retry cap
     tears the session down, bumping the epoch. *)
  let h = harness ~drop_data:(fun _ -> true) () in
  Rtx.send h.a "m0";
  Sched.run h.sched;
  let s = Rtx.stats h.a in
  (* default config: max_retries 6, so attempts 1..6 retransmit and the 7th
     timeout resets. *)
  Alcotest.(check int) "timeouts" 7 s.Rtx.s_timeouts;
  Alcotest.(check int) "retransmissions" 6 s.Rtx.s_retransmissions;
  Alcotest.(check int) "one reset" 1 s.Rtx.s_resets;
  Alcotest.(check (list int)) "reset epoch" [ 1 ] !(h.a_resets);
  Alcotest.(check bool) "session stays open" true (Rtx.is_up h.a);
  Alcotest.(check int) "nothing outstanding after reset" 0 (Rtx.outstanding h.a);
  let rtos =
    List.filter_map
      (function Rtx.Timeout { rto; _ } -> Some rto | _ -> None)
      (events h)
  in
  (* 1, 2, 4, 8, 16, 32, 60: doubling from rto_init, capped at rto_max. *)
  Alcotest.(check (list (float 1e-9)))
    "exponential backoff" [ 1.; 2.; 4.; 8.; 16.; 32.; 60. ] rtos

let test_rtx_karn_ignores_retransmitted_samples () =
  (* rto_init 0.5 and a 0.05 s wire: the first segment's only ACK matches a
     retransmitted copy, so Karn's rule must skip the sample and leave the
     backed-off RTO (1.0) in place. A later clean exchange then feeds the
     estimator: sample 0.1 -> srtt 0.1, rttvar 0.05, rto 0.3. *)
  let config =
    { Rtx.default_config with Rtx.rto_init = 0.5; rto_min = 0.1 }
  in
  let h = harness ~config ~drop_data:(fun n -> n = 0) () in
  let mid_rto = ref 0. in
  Rtx.send h.a "m0";
  ignore
    (Sched.after h.sched ~delay:5.0 (fun () ->
         mid_rto := Rtx.rto h.a;
         Rtx.send h.a "m1"));
  Sched.run h.sched;
  Alcotest.(check (list string)) "both delivered" [ "m0"; "m1" ] (delivered h);
  Alcotest.(check (float 1e-9)) "Karn: no sample from retransmit" 1.0 !mid_rto;
  Alcotest.(check (float 1e-9)) "clean sample adapts rto" 0.3 (Rtx.rto h.a)

let test_rtx_reorder_buffer_rtt_immunity () =
  (* A burst whose first segment is lost strands the rest in the receiver's
     reorder buffer; when the retransmission fills the gap, one cumulative
     ACK covers segments whose (send -> ack) span includes the entire
     recovery wait. Feeding those spans into Jacobson's estimator inflates
     SRTT by the recovery time — the RTO then pins at the backed-off value
     and every later loss takes longer to repair (Jain's timeout
     divergence). The estimator must time only the gap-filling segment,
     which Karn's rule here skips outright (it was retransmitted). *)
  let config =
    { Rtx.default_config with Rtx.rto_init = 0.5; rto_min = 0.1 }
  in
  let h = harness ~config ~drop_data:(fun n -> n = 0) () in
  let mid_rto = ref 0. in
  Rtx.send h.a "m0";
  Rtx.send h.a "m1";
  Rtx.send h.a "m2";
  ignore
    (Sched.after h.sched ~delay:5.0 (fun () ->
         mid_rto := Rtx.rto h.a;
         Rtx.send h.a "m3"));
  Sched.run h.sched;
  Alcotest.(check (list string))
    "drained in order" [ "m0"; "m1"; "m2"; "m3" ] (delivered h);
  (* The buffered segments' ~1.1 s spans must not reach the estimator: the
     RTO after recovery is exactly the once-backed-off initial (0.5 -> 1.0),
     not an SRTT poisoned by buffer-wait samples. *)
  Alcotest.(check (float 1e-9)) "no reorder-buffer samples" 1.0 !mid_rto;
  (* The clean m3 exchange then feeds the estimator: sample 0.1 -> srtt 0.1,
     rttvar 0.05, rto 0.3 — same arithmetic as the Karn test above. *)
  Alcotest.(check (float 1e-9)) "clean sample adapts rto" 0.3 (Rtx.rto h.a)

let test_rtx_backoff_collapses_on_progress () =
  (* Once the estimator holds a valid SRTT, an ACK that advances the window
     is proof the path is alive: the exponentially backed-off RTO must
     collapse back to srtt + 4 * rttvar instead of pacing the next recovery
     at the blackout's cadence. *)
  let config =
    { Rtx.default_config with Rtx.rto_init = 0.5; rto_min = 0.1 }
  in
  (* tx 0 is m0's clean exchange; txs 1-3 are m1's first copy and two
     retransmissions, all dropped; tx 4 (third retransmission) survives. *)
  let h = harness ~config ~drop_data:(fun n -> 1 <= n && n <= 3) () in
  Rtx.send h.a "m0";
  ignore (Sched.after h.sched ~delay:1.0 (fun () -> Rtx.send h.a "m1"));
  Sched.run h.sched;
  Alcotest.(check (list string)) "all delivered" [ "m0"; "m1" ] (delivered h);
  let s = Rtx.stats h.a in
  Alcotest.(check int) "three timeouts" 3 s.Rtx.s_timeouts;
  (* m0's sample set srtt 0.1 / rttvar 0.05 (rto 0.3); the blackout backed
     off 0.3 -> 0.6 -> 1.2 -> 2.4; m1's recovery ACK matched a retransmitted
     copy, so no new sample — yet the RTO must return to the estimator's
     0.3, not stay at 2.4. *)
  Alcotest.(check (float 1e-9)) "backoff collapsed" 0.3 (Rtx.rto h.a)

let test_rtx_epoch_staleness () =
  (* A receiver that adopted epoch 1 must drop replayed epoch-0 segments
     without delivering or re-acking them. *)
  let sched = Sched.create () in
  let got = ref [] and acks = ref 0 in
  let b =
    Rtx.create ~sched
      ~send:(fun _ -> incr acks)
      ~deliver:(fun m -> got := m :: !got)
      ~on_reset:(fun ~epoch:_ -> ())
      ~on_event:(fun _ -> ())
      ()
  in
  Rtx.on_segment b (Rtx.Seg_data { epoch = 1; seq = 0; msg = "new" });
  Rtx.on_segment b (Rtx.Seg_data { epoch = 0; seq = 0; msg = "old" });
  Alcotest.(check (list string)) "stale dropped" [ "new" ] (List.rev !got);
  Alcotest.(check int) "stale not re-acked" 1 !acks

let test_rtx_link_down_teardown () =
  let dropping = ref true in
  let h = harness ~drop_data:(fun _ -> !dropping) () in
  Rtx.send h.a "m0";
  Rtx.send h.a "m1";
  Alcotest.(check int) "unacked before teardown" 2 (Rtx.outstanding h.a);
  Rtx.link_down h.a;
  Alcotest.(check bool) "down" false (Rtx.is_up h.a);
  Alcotest.(check int) "teardown discards unacked" 0 (Rtx.outstanding h.a);
  Rtx.send h.a "lost-while-down";
  Alcotest.(check int)
    "sends while down are discarded" 2 (Rtx.stats h.a).Rtx.s_sent;
  Rtx.link_up h.a;
  Alcotest.(check bool) "up again" true (Rtx.is_up h.a);
  dropping := false;
  Rtx.send h.a "fresh";
  Sched.run h.sched;
  (* The re-established session runs under a higher epoch; the receiver
     adopts it and delivery restarts from sequence zero. *)
  Alcotest.(check (list string)) "fresh epoch delivers" [ "fresh" ] (delivered h)

let test_rtx_config_validation () =
  let bad cfg = Result.is_error (Rtx.validate_config cfg) in
  Alcotest.(check bool)
    "default valid" true
    (Result.is_ok (Rtx.validate_config Rtx.default_config));
  Alcotest.(check bool)
    "rto_min > rto_max" true
    (bad { Rtx.default_config with Rtx.rto_min = 5.; rto_max = 1. });
  Alcotest.(check bool)
    "backoff < 1" true
    (bad { Rtx.default_config with Rtx.backoff = 0.5 });
  Alcotest.(check bool)
    "max_retries 0" true
    (bad { Rtx.default_config with Rtx.max_retries = 0 })

(* ---------- end-to-end: transport transparency and loss survival ---------- *)

module C = Convergence.Config
module E = Convergence.Engine_registry
module M = Convergence.Metrics

(* The same 3x3 quick scenario the golden trace uses, under BGP. *)
let quick_cfg seed =
  {
    C.quick with
    C.rows = 3;
    cols = 3;
    degree = 4;
    send_rate_pps = 5.;
    traffic_start = 30.;
    warmup = 30.;
    failure_time = 35.;
    sim_end = 60.;
    seed;
  }

let trace_of ?faults cfg engine =
  let buf = Buffer.create 4096 in
  let sink =
    Obs.Sink.jsonl_writer (fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
  in
  (* [Sched] excluded: rtx timers legitimately change queue-depth gauges and
     cpu_s is wall-clock. Everything observable on the wire is compared. *)
  let trace =
    Obs.Trace.create
      ~categories:[ Obs.Event.Data; Obs.Event.Control; Obs.Event.Env ]
      ~min_severity:Obs.Event.Info sink
  in
  let r = E.run ?faults ~trace cfg engine in
  Obs.Trace.close trace;
  (r, Buffer.contents buf)

let test_rtx_wire_transparent_at_zero_loss () =
  (* Enabling the reliable transport with no loss must not change anything
     observable: same events, same bytes, same metrics. This is the contract
     that lets the faults campaign put every protocol behind the transport
     without forking the paper's numbers. *)
  let faults = { Fault.Spec.none with Fault.Spec.rtx = Some Rtx.default_config } in
  List.iter
    (fun seed ->
      let r_off, t_off = trace_of (quick_cfg seed) E.bgp in
      let r_on, t_on = trace_of ~faults (quick_cfg seed) E.bgp in
      Alcotest.(check string)
        (Printf.sprintf "trace bytes identical (seed %d)" seed)
        t_off t_on;
      Alcotest.(check int)
        (Printf.sprintf "delivered identical (seed %d)" seed)
        r_off.M.delivered r_on.M.delivered)
    [ 7; 11 ]

(* A 4x4 mesh where seed 18 makes the difference stark: at 10% control-plane
   loss a lost withdrawal blackholes the no-rtx run (it keeps forwarding into
   the failed link), while the reliable transport retransmits through the
   loss and delivery stays near-perfect. Found by scanning seeds; the run is
   deterministic, so the contrast is stable. *)
let loss_cfg =
  {
    C.quick with
    C.rows = 4;
    cols = 4;
    degree = 4;
    send_rate_pps = 20.;
    traffic_start = 80.;
    warmup = 80.;
    failure_time = 90.;
    sim_end = 300.;
    seed = 18;
  }

let test_bgp_converges_through_loss_with_rtx () =
  let rtx_sent = ref 0 in
  let mon =
    Obs.Sink.callback (fun r ->
        match r.Obs.Sink.event with
        | Obs.Event.Rtx_sent _ -> incr rtx_sent
        | _ -> ())
  in
  let metrics = Obs.Registry.create () in
  let r =
    E.run
      ~faults:(Fault.Spec.control_loss 0.1)
      ~metrics ~monitors:[ mon ] loss_cfg E.bgp
  in
  let ratio = float_of_int r.M.delivered /. float_of_int r.M.sent in
  Alcotest.(check bool)
    (Printf.sprintf "delivery survives loss (%.3f)" ratio)
    true (ratio > 0.95);
  Alcotest.(check bool)
    "retransmissions observable in the event stream" true (!rtx_sent > 0);
  (match Obs.Registry.lookup metrics "rtx.retransmissions" with
  | Some (Obs.Registry.Gauge_value v) ->
    Alcotest.(check bool) "rtx gauge positive" true (v > 0.)
  | _ -> Alcotest.fail "rtx.retransmissions gauge missing");
  match Obs.Registry.lookup metrics "fault.injected_ctrl_drops" with
  | Some (Obs.Registry.Gauge_value v) ->
    Alcotest.(check bool) "loss actually injected" true (v > 0.)
  | _ -> Alcotest.fail "fault.injected_ctrl_drops gauge missing"

let test_bgp_stalls_through_loss_without_rtx () =
  (* The ~rtx:false control: same world, same loss stream, idealized (no
     retransmission) transport. A lost critical update is never repaired and
     the flow blackholes. *)
  let r =
    E.run ~faults:(Fault.Spec.control_loss ~rtx:false 0.1) loss_cfg E.bgp
  in
  let ratio = float_of_int r.M.delivered /. float_of_int r.M.sent in
  Alcotest.(check bool)
    (Printf.sprintf "delivery collapses without rtx (%.3f)" ratio)
    true (ratio < 0.5)

(* ---------- flap schedule + offline audit ---------- *)

let test_flap_schedule_audited_by_link_report () =
  (* Pin a 2-cycle, 2 s down / 2 s up flap on link 0-1, run with only the
     flap (no paper failure), and audit the trace offline: exactly two
     finished outage episodes on 0-1, each exactly the scheduled 2 s. *)
  let faults =
    {
      Fault.Spec.none with
      Fault.Spec.flaps =
        [
          Fault.Schedule.flap
            ~link:(Fault.Schedule.Edge (0, 1))
            ~start:40. ~cycles:2 ~down:2. ~up:2. ();
        ];
    }
  in
  let buf = Buffer.create 1024 in
  let sink =
    Obs.Sink.jsonl_writer (fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
  in
  let trace =
    Obs.Trace.create ~categories:[ Obs.Event.Env ]
      ~min_severity:Obs.Event.Info sink
  in
  let _ =
    E.run_multi ~faults ~trace
      ~flows:[ Convergence.Runner.default_flow ]
      ~failures:[] (quick_cfg 7) E.rip
  in
  Obs.Trace.close trace;
  let records, stats = Obs.Replay.of_string (Buffer.contents buf) in
  Alcotest.(check int) "trace parses" 0 stats.Obs.Replay.skipped;
  let episodes =
    List.filter
      (fun e -> e.Obs.Replay.lk_u = 0 && e.Obs.Replay.lk_v = 1)
      (Obs.Replay.link_report records)
  in
  Alcotest.(check int) "two episodes" 2 (List.length episodes);
  List.iteri
    (fun i e ->
      match Obs.Replay.link_episode_duration e with
      | Some d ->
        Alcotest.(check (float 1e-6)) (Printf.sprintf "episode %d lasts 2s" i) 2. d
      | None -> Alcotest.failf "episode %d never healed" i)
    episodes;
  (* the first down edge is at the scheduled start *)
  match episodes with
  | e :: _ ->
    Alcotest.(check (float 1e-6)) "starts on schedule" 40. e.Obs.Replay.lk_down
  | [] -> ()

(* ---------- campaign graceful degradation ---------- *)

let quick_dbf_tasks () =
  let section =
    Campaign.Sections.grid ~name:"fault-test" ~engines:[ E.dbf ] ()
  in
  let sweep =
    Convergence.Experiments.(scale ~runs:2 ~degrees:[ 3 ] quick_sweep)
  in
  (section, sweep, section.Campaign.Sections.tasks sweep)

let test_driver_quarantines_hung_cell () =
  let section, sweep, tasks = quick_dbf_tasks () in
  Alcotest.(check bool) "fixture has >= 2 cells" true (Array.length tasks >= 2);
  let victim = tasks.(0) in
  let key =
    ( victim.Campaign.Sections.t_protocol,
      victim.Campaign.Sections.t_degree,
      victim.Campaign.Sections.t_seed )
  in
  let cells, quarantined, _timing =
    Campaign.Driver.run_tasks ~cell_budget:1.0 ~retries:1 ~hang:key tasks
  in
  Alcotest.(check int)
    "survivors" (Array.length tasks - 1) (Array.length cells);
  let q =
    match quarantined with
    | [ q ] -> q
    | qs -> Alcotest.failf "expected 1 quarantined cell, got %d" (List.length qs)
  in
  Alcotest.(check (pair string (pair int int)))
    "quarantine key"
    (victim.Campaign.Sections.t_protocol,
     (victim.Campaign.Sections.t_degree, victim.Campaign.Sections.t_seed))
    (q.Campaign.Artifact.q_protocol,
     (q.Campaign.Artifact.q_degree, q.Campaign.Artifact.q_seed));
  Alcotest.(check int) "budget + 1 retry = 2 attempts" 2 q.Campaign.Artifact.q_attempts;
  Alcotest.(check bool)
    "error mentions the wall budget" true
    (let e = q.Campaign.Artifact.q_error in
     String.length e >= 11 && String.sub e 0 11 = "wall budget");
  (* the degraded artifact is still a valid, diffable schema-v2 artifact *)
  let a =
    Campaign.Driver.artifact_of ~section ~mode:"quick" ~quarantined sweep cells
  in
  Alcotest.(check (list string))
    "degraded artifact validates" []
    (Campaign.Artifact.validate (Campaign.Artifact.to_json a));
  Alcotest.(check int) "self-diff clean" 0 (List.length (Campaign.Diff.artifacts a a));
  (* against the clean run, the quarantined cell shows up in the diff *)
  let clean_cells, no_q, _ = Campaign.Driver.run_tasks tasks in
  Alcotest.(check int) "clean run has no quarantine" 0 (List.length no_q);
  let b =
    Campaign.Driver.artifact_of ~section ~mode:"quick" sweep clean_cells
  in
  let entries = Campaign.Diff.artifacts b a in
  Alcotest.(check bool)
    "diff flags the quarantine" true
    (List.exists
       (function Campaign.Diff.Quarantine _ -> true | _ -> false)
       entries)

let test_driver_hang_requires_budget () =
  let _, _, tasks = quick_dbf_tasks () in
  Alcotest.check_raises "hang without cell_budget"
    (Invalid_argument "Driver.run_tasks: hang requires a cell_budget to escape")
    (fun () -> ignore (Campaign.Driver.run_tasks ~hang:("DBF", 3, 1) tasks));
  Alcotest.check_raises "negative retries"
    (Invalid_argument "Driver.run_tasks: retries must be >= 0") (fun () ->
      ignore (Campaign.Driver.run_tasks ~retries:(-1) tasks))

(* ---------- artifact schema v2 ---------- *)

let fixture_cell ?(degree = 3) ~seed () =
  {
    Campaign.Cell_result.protocol = "P";
    degree;
    seed;
    sent = 100;
    delivered = 99;
    drops_no_route = 1;
    drops_ttl = 0;
    drops_queue = 0;
    drops_link = 0;
    looped_delivered = 0;
    looped_dropped = 0;
    ctrl_messages = 10;
    ctrl_bytes = 500;
    fwd_convergence = 1.5;
    routing_convergence = 3.0;
    transient_paths = 1;
    extras = [];
    axes = [];
    series = [];
    wall_s = 0.;
    perf = [];
    events = 0;
  }

let fixture_params =
  {
    Campaign.Artifact.mode = "quick";
    rows = 7;
    cols = 7;
    degrees = [ 3 ];
    runs = 2;
    seed = 1;
    rate_pps = 100.;
    warmup = 70.;
    sim_end = 220.;
  }

let fixture_quarantine =
  {
    Campaign.Artifact.q_protocol = "P";
    q_degree = 3;
    q_seed = 2;
    q_error = "wall budget exceeded (1.0 s)";
    q_attempts = 2;
  }

let fixture_v2 () =
  Campaign.Artifact.build ~section:"fig3" ~git_sha:"cafe123"
    ~quarantined:[ fixture_quarantine ] ~include_series:false fixture_params
    [ fixture_cell ~seed:1 () ]

let test_artifact_v2_quarantine_roundtrip () =
  let a = fixture_v2 () in
  match Campaign.Artifact.of_json (Campaign.Artifact.to_json a) with
  | Error e -> Alcotest.fail e
  | Ok b ->
    Alcotest.(check string)
      "canonical bytes survive"
      (Campaign.Artifact.canonical_string a)
      (Campaign.Artifact.canonical_string b);
    (match b.Campaign.Artifact.quarantined with
    | [ q ] ->
      Alcotest.(check string)
        "error text survives" "wall budget exceeded (1.0 s)"
        q.Campaign.Artifact.q_error;
      Alcotest.(check int) "attempts survive" 2 q.Campaign.Artifact.q_attempts
    | qs -> Alcotest.failf "expected 1 quarantine entry, got %d" (List.length qs));
    Alcotest.(check (list string))
      "validates" []
      (Campaign.Artifact.validate (Campaign.Artifact.to_json a))

let obj_map f = function Obs.Json.Obj fields -> Obs.Json.Obj (f fields) | j -> j

let drop_field key = obj_map (List.filter (fun (k, _) -> k <> key))

let set_field key v =
  obj_map (List.map (fun (k, x) -> if k = key then (k, v) else (k, x)))

let test_artifact_v1_read_compat () =
  (* A v1 artifact has no [quarantined] member: reading it must succeed with
     an empty quarantine list, and validation must accept it. *)
  let j = Campaign.Artifact.to_json (fixture_v2 ()) in
  let v1 = set_field "schema_version" (Obs.Json.Int 1) (drop_field "quarantined" j) in
  (match Campaign.Artifact.of_json v1 with
  | Error e -> Alcotest.fail e
  | Ok a ->
    Alcotest.(check int)
      "v1 reads as empty quarantine" 0
      (List.length a.Campaign.Artifact.quarantined));
  Alcotest.(check (list string))
    "v1 validates" [] (Campaign.Artifact.validate v1);
  (* but a v2 artifact that lost its quarantined member is corrupt *)
  let v2_broken = drop_field "quarantined" j in
  Alcotest.(check bool)
    "v2 without the list is rejected" true
    (Result.is_error (Campaign.Artifact.of_json v2_broken));
  Alcotest.(check bool)
    "validate flags it too" true
    (Campaign.Artifact.validate v2_broken <> [])

let test_validate_catches_quarantine_corruption () =
  let violations mutate =
    Campaign.Artifact.validate (mutate (Campaign.Artifact.to_json (fixture_v2 ())))
  in
  (* duplicate quarantine entry *)
  let dup =
    set_field "quarantined"
      (Obs.Json.List
         [
           Campaign.Artifact.quarantine_to_json fixture_quarantine;
           Campaign.Artifact.quarantine_to_json fixture_quarantine;
         ])
  in
  Alcotest.(check bool) "duplicate key flagged" true (violations dup <> []);
  (* a cell that is both completed and quarantined *)
  let collide =
    set_field "quarantined"
      (Obs.Json.List
         [
           Campaign.Artifact.quarantine_to_json
             { fixture_quarantine with Campaign.Artifact.q_seed = 1 };
         ])
  in
  Alcotest.(check bool) "completed+quarantined flagged" true (violations collide <> []);
  (* a structurally broken entry *)
  let broken =
    set_field "quarantined" (Obs.Json.List [ Obs.Json.Int 42 ])
  in
  Alcotest.(check bool) "broken entry flagged" true (violations broken <> [])

let test_committed_bench_artifacts_still_validate () =
  (* The schema bump must keep every committed artifact readable. *)
  List.iter
    (fun path ->
      if Sys.file_exists path then
        match Campaign.Artifact.read ~path with
        | Error e -> Alcotest.failf "%s: %s" path e
        | Ok a ->
          Alcotest.(check (list string))
            (path ^ " validates") []
            (Campaign.Artifact.validate (Campaign.Artifact.to_json a)))
    [ "../BENCH_fig3.json"; "../BENCH_scenarios.json"; "../BENCH_perf.json" ]

(* ---------- replay hardening ---------- *)

let test_replay_opaque_roundtrip () =
  let known =
    Obs.Json.to_string
      (Obs.Sink.record_to_json
         { Obs.Sink.time = 1.5; seq = 3; event = Obs.Event.Link_failed { u = 1; v = 2 } })
  in
  let unknown = {|{"ts":2.5,"seq":4,"ev":"warp_drive","factor":9}|} in
  let garbage = "not json at all" in
  let items, stats =
    Obs.Replay.items_of_lines [ known; ""; unknown; garbage ]
  in
  Alcotest.(check int) "parsed" 1 stats.Obs.Replay.parsed;
  Alcotest.(check int) "opaque" 1 stats.Obs.Replay.opaque;
  Alcotest.(check int) "skipped" 1 stats.Obs.Replay.skipped;
  (match items with
  | [ Obs.Replay.Record r; Obs.Replay.Opaque line ] ->
    Alcotest.(check int) "record seq" 3 r.Obs.Sink.seq;
    Alcotest.(check string) "opaque preserved verbatim" unknown line
  | _ -> Alcotest.failf "expected [Record; Opaque], got %d items" (List.length items));
  (* writing every item back keeps the unknown line byte-identical *)
  let written = List.map Obs.Replay.line_of_item items in
  Alcotest.(check string) "unknown line round-trips" unknown (List.nth written 1);
  (* a second read of the written lines is stable *)
  let _, stats2 = Obs.Replay.items_of_lines written in
  Alcotest.(check int) "reread parsed" 1 stats2.Obs.Replay.parsed;
  Alcotest.(check int) "reread opaque" 1 stats2.Obs.Replay.opaque;
  Alcotest.(check int) "nothing newly skipped" 0 stats2.Obs.Replay.skipped;
  (* of_lines agrees with items_of_lines on records and stats *)
  let records, stats3 = Obs.Replay.of_lines [ known; ""; unknown; garbage ] in
  Alcotest.(check int) "of_lines records" 1 (List.length records);
  Alcotest.(check int) "of_lines opaque stat" 1 stats3.Obs.Replay.opaque

let test_replay_link_report_pairs_episodes () =
  let rec_ time seq event = { Obs.Sink.time; seq; event } in
  let records =
    [
      rec_ 10. 0 (Obs.Event.Link_failed { u = 2; v = 1 });
      rec_ 14. 1 (Obs.Event.Link_healed { u = 1; v = 2 });
      rec_ 18. 2 (Obs.Event.Link_failed { u = 1; v = 2 });
      (* truncated-trace heal on another link, failure not recorded *)
      rec_ 20. 3 (Obs.Event.Link_healed { u = 5; v = 3 });
    ]
  in
  match Obs.Replay.link_report records with
  | [ a; b; c ] ->
    (* canonicalized endpoints, chronological by failure time; the nan-start
       episode sorts first *)
    Alcotest.(check bool) "truncated start is nan" true (Float.is_nan a.Obs.Replay.lk_down);
    Alcotest.(check (pair int int)) "truncated link" (3, 5) (a.Obs.Replay.lk_u, a.Obs.Replay.lk_v);
    Alcotest.(check (pair int int)) "canonical endpoints" (1, 2) (b.Obs.Replay.lk_u, b.Obs.Replay.lk_v);
    Alcotest.(check (option (float 1e-9))) "first episode 4s" (Some 4.)
      (Obs.Replay.link_episode_duration b);
    Alcotest.(check (option (float 1e-9))) "still down" None
      (Obs.Replay.link_episode_duration c);
    Alcotest.(check (float 1e-9)) "second down at 18" 18. c.Obs.Replay.lk_down
  | es -> Alcotest.failf "expected 3 episodes, got %d" (List.length es)

let () =
  Alcotest.run "fault"
    [
      ( "rtx",
        [
          Alcotest.test_case "in-order delivery" `Quick test_rtx_in_order_delivery;
          Alcotest.test_case "out-of-order buffering" `Quick
            test_rtx_out_of_order_buffering;
          Alcotest.test_case "retransmit recovers loss" `Quick
            test_rtx_retransmit_recovers_loss;
          Alcotest.test_case "backoff and retry-cap reset" `Quick
            test_rtx_backoff_and_retry_cap_reset;
          Alcotest.test_case "Karn's rule" `Quick
            test_rtx_karn_ignores_retransmitted_samples;
          Alcotest.test_case "reorder buffer never feeds the estimator" `Quick
            test_rtx_reorder_buffer_rtt_immunity;
          Alcotest.test_case "backoff collapses on forward progress" `Quick
            test_rtx_backoff_collapses_on_progress;
          Alcotest.test_case "epoch staleness" `Quick test_rtx_epoch_staleness;
          Alcotest.test_case "link-down teardown" `Quick
            test_rtx_link_down_teardown;
          Alcotest.test_case "config validation" `Quick test_rtx_config_validation;
        ] );
      ( "e2e",
        [
          Alcotest.test_case "rtx wire-transparent at zero loss" `Quick
            test_rtx_wire_transparent_at_zero_loss;
          Alcotest.test_case "BGP converges through 10% loss with rtx" `Quick
            test_bgp_converges_through_loss_with_rtx;
          Alcotest.test_case "BGP blackholes through 10% loss without rtx" `Quick
            test_bgp_stalls_through_loss_without_rtx;
          Alcotest.test_case "flap schedule audited offline" `Quick
            test_flap_schedule_audited_by_link_report;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "hung cell quarantined" `Slow
            test_driver_quarantines_hung_cell;
          Alcotest.test_case "hang requires a budget" `Quick
            test_driver_hang_requires_budget;
        ] );
      ( "artifact-v2",
        [
          Alcotest.test_case "quarantine round-trip" `Quick
            test_artifact_v2_quarantine_roundtrip;
          Alcotest.test_case "v1 read compatibility" `Quick
            test_artifact_v1_read_compat;
          Alcotest.test_case "quarantine corruption flagged" `Quick
            test_validate_catches_quarantine_corruption;
          Alcotest.test_case "committed artifacts validate" `Quick
            test_committed_bench_artifacts_still_validate;
        ] );
      ( "replay",
        [
          Alcotest.test_case "opaque lines round-trip" `Quick
            test_replay_opaque_roundtrip;
          Alcotest.test_case "link outage report" `Quick
            test_replay_link_report_pairs_episodes;
        ] );
    ]
