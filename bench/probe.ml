(* Throwaway component probe: steady-state heap ops at depth, and the bare
   scheduler+link round trip without any protocol on top. *)

let now_ns () = Unix.gettimeofday () *. 1e9

let heap_steady depth =
  let h = Dessim.Heap.create () in
  let rng = Dessim.Rng.create 7 in
  let seq = ref 0 in
  for _ = 1 to depth do
    Dessim.Heap.add h ~time:(Dessim.Rng.float rng 180.) ~seq:!seq !seq;
    incr seq
  done;
  let slot = Dessim.Heap.slot () in
  let sq = ref 0 in
  let iters = 2_000_000 in
  let t0 = now_ns () in
  for _ = 1 to iters do
    let _x = Dessim.Heap.pop_into h slot ~seq:sq in
    Dessim.Heap.add h
      ~time:(slot.Dessim.Heap.slot_time +. Dessim.Rng.float rng 180.)
      ~seq:!seq !seq;
    incr seq
  done;
  let dt = now_ns () -. t0 in
  Printf.printf "heap depth %7d: %.1f ns per pop+push\n%!" depth
    (dt /. float_of_int iters)

let link_round_trip () =
  let sched = Dessim.Scheduler.create () in
  let events = ref 0 in
  let l = ref None in
  let deliver (_ : int) =
    incr events;
    if !events < 4_000_000 then
      match !l with
      | Some link ->
        ignore (Netsim.Link.send link ~size_bits:8000 1)
      | None -> ()
  in
  let link =
    Netsim.Link.create ~sched ~bandwidth_bps:1e9 ~prop_delay:0.001
      ~queue_capacity:64
      ~deliver
      ~dropped:(fun _ _ -> ())
      ()
  in
  l := Some link;
  for _ = 1 to 8 do
    ignore (Netsim.Link.send link ~size_bits:8000 1)
  done;
  let t0 = now_ns () in
  Dessim.Scheduler.run sched;
  let dt = now_ns () -. t0 in
  let ev = float_of_int (Dessim.Scheduler.events_processed sched) in
  Printf.printf "link round trip: %.0f events, %.1f ns/event\n%!" ev (dt /. ev)

let rng_only () =
  let rng = Dessim.Rng.create 7 in
  let iters = 2_000_000 in
  let acc = ref 0.0 in
  let t0 = now_ns () in
  for _ = 1 to iters do
    acc := !acc +. Dessim.Rng.float rng 180.
  done;
  let dt = now_ns () -. t0 in
  Printf.printf "rng draw: %.1f ns (acc %.1f)\n%!" (dt /. float_of_int iters)
    !acc

let sched_churn depth =
  let s = Dessim.Scheduler.create () in
  let n = ref 0 in
  let limit = 2_000_000 + depth in
  let rec tick () =
    incr n;
    if !n < limit then Dessim.Scheduler.fire_after s ~delay:1.0 tick
  in
  for _ = 1 to depth do
    Dessim.Scheduler.fire_after s ~delay:1.0 tick
  done;
  let t0 = now_ns () in
  Dessim.Scheduler.run s;
  let dt = now_ns () -. t0 in
  Printf.printf "sched churn depth %6d: %.1f ns/event\n%!" depth
    (dt /. float_of_int (Dessim.Scheduler.events_processed s))

let () =
  rng_only ();
  heap_steady 200;
  heap_steady 4_000;
  heap_steady 65_000;
  heap_steady 180_000;
  sched_churn 16;
  sched_churn 4_000;
  sched_churn 65_000;
  link_round_trip ()
