(* The benchmark / reproduction harness.

   Usage: main.exe [SECTION ...] [--quick | --full] [--jobs N] [--out-dir DIR]
          [--backend domains|proc] [--cache DIR]

   Sections (default: all): micro, plus every campaign section of
   [Campaign.Sections.all] (fig3..fig7, overhead, scenarios, the ablations
   and the extensions).

   Every section except micro runs as a campaign: the sweep is decomposed
   into independent (protocol, degree, seed) cells, executed on a domain
   pool of --jobs workers, merged deterministically, and rendered from the
   merged artifact. With --out-dir the artifact of each section is also
   written to DIR/BENCH_<section>.json, and the tables are rendered from the
   file just written — proving the committed artifacts regenerate the tables.

   --quick shrinks every sweep (3 seeds, degrees 3/4/6, shorter timeline);
   --full uses the paper's full setup (10 seeds, degrees 3..8, 800 s). The
   default is the paper timeline with 5 seeds, a compromise that keeps the
   whole harness under a few minutes. *)

let usage oc =
  Printf.fprintf oc
    "usage: %s [SECTION ...] [--quick | --full] [--jobs N] [--out-dir DIR]\n\
     \n\
     sections (default: all):\n\
    \  micro             bechamel micro-benchmarks of the simulator primitives\n\
     %s\n\
     options:\n\
    \  --quick           tiny sweeps, short timeline (CI smoke)\n\
    \  --full            the paper's full setup (10 seeds, degrees 3..8)\n\
    \  --jobs N          parallel worker domains (default %d on this machine)\n\
    \  --out-dir DIR     also write BENCH_<section>.json artifacts into DIR\n\
    \  --backend B       cell execution backend: domains (default, in-process)\n\
    \                    or proc (supervised worker processes)\n\
    \  --cache DIR       content-addressed cell cache: identical re-runs load\n\
    \                    finished cells instead of re-simulating them\n"
    Sys.executable_name
    (String.concat "\n"
       (List.map
          (fun (s : Campaign.Sections.t) ->
            Printf.sprintf "  %-17s %s" s.Campaign.Sections.name
              s.Campaign.Sections.doc)
          Campaign.Sections.all))
    (Campaign.Pool.default_jobs ())

let die fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "%s: %s\n\n" Sys.executable_name msg;
      usage stderr;
      exit 2)
    fmt

type options = {
  quick : bool;
  full : bool;
  jobs : int;
  out_dir : string option;
  backend : [ `Domains | `Proc ];
  cache : string option;
  worker_section : string option;
      (** set by the internal --cells-worker flag: run as a proc-backend
          cell worker for that section instead of as the bench harness *)
  sections : string list;  (** empty = all *)
}

let known_sections = "micro" :: Campaign.Sections.names

let parse_args argv =
  let opts =
    ref { quick = false; full = false; jobs = Campaign.Pool.default_jobs ();
          out_dir = None; backend = `Domains; cache = None;
          worker_section = None; sections = [] }
  in
  let n = Array.length argv in
  let rec go i =
    if i < n then begin
      let next what =
        if i + 1 >= n then die "%s expects an argument" what else argv.(i + 1)
      in
      (match argv.(i) with
      | "--help" | "-h" ->
        usage stdout;
        exit 0
      | "--quick" -> opts := { !opts with quick = true }
      | "--full" -> opts := { !opts with full = true }
      | "--jobs" -> (
        match int_of_string_opt (next "--jobs") with
        | Some j when j >= 1 -> opts := { !opts with jobs = j }
        | Some _ | None -> die "--jobs expects a positive integer")
      | "--out-dir" -> opts := { !opts with out_dir = Some (next "--out-dir") }
      | "--backend" -> (
        match next "--backend" with
        | "domains" -> opts := { !opts with backend = `Domains }
        | "proc" -> opts := { !opts with backend = `Proc }
        | b -> die "--backend expects domains or proc, not %S" b)
      | "--cache" -> opts := { !opts with cache = Some (next "--cache") }
      | "--cells-worker" ->
        opts := { !opts with worker_section = Some (next "--cells-worker") }
      | s when String.length s > 0 && s.[0] = '-' -> die "unknown flag %S" s
      | s when List.mem s known_sections || s = "all" ->
        opts := { !opts with sections = !opts.sections @ [ s ] }
      | s -> die "unknown section %S (try --help)" s);
      let consumed =
        match argv.(i) with
        | "--jobs" | "--out-dir" | "--backend" | "--cache" | "--cells-worker" ->
          2
        | _ -> 1
      in
      go (i + consumed)
    end
  in
  go 1;
  if !opts.quick && !opts.full then die "--quick and --full are exclusive";
  !opts

let opts = parse_args Sys.argv

let wants section =
  match opts.sections with
  | [] -> true
  | l -> List.mem section l || List.mem "all" l

let mode =
  if opts.quick then "quick" else if opts.full then "full" else "standard"

let sweep =
  if opts.quick then
    Convergence.Experiments.
      {
        degrees = [ 3; 4; 6 ];
        runs = 3;
        base =
          {
            Convergence.Config.default with
            send_rate_pps = 100.;
            traffic_start = 60.;
            warmup = 70.;
            failure_time = 80.;
            sim_end = 220.;
          };
      }
  else if opts.full then Convergence.Experiments.paper_sweep
  else Convergence.Experiments.(scale ~runs:5 paper_sweep)

let progress line = Fmt.pr "  .. %s@." line

let heading title = Fmt.pr "@.=== %s ===@." title

(* ---------- bechamel micro-benchmarks ---------- *)

let micro_tests () =
  let open Bechamel in
  let heap_churn () =
    let h = Dessim.Heap.create () in
    for i = 0 to 255 do
      Dessim.Heap.add h ~time:(float_of_int (i * 7919 mod 101)) ~seq:i i
    done;
    let rec drain () = match Dessim.Heap.pop h with Some _ -> drain () | None -> () in
    drain ()
  in
  let scheduler_churn () =
    let s = Dessim.Scheduler.create () in
    for i = 0 to 255 do
      ignore (Dessim.Scheduler.schedule s ~at:(float_of_int (i mod 17)) (fun () -> ()))
    done;
    Dessim.Scheduler.run s
  in
  let rng = Dessim.Rng.create 1 in
  let rng_draws () =
    for _ = 0 to 255 do
      ignore (Dessim.Rng.bits64 rng)
    done
  in
  let mesh_gen () = ignore (Netsim.Mesh.generate ~rows:7 ~cols:7 ~degree:6) in
  let topo = Netsim.Mesh.generate ~rows:7 ~cols:7 ~degree:6 in
  let bfs () = ignore (Netsim.Topology.bfs_distances topo 0) in
  let link_traffic () =
    let sched = Dessim.Scheduler.create () in
    let l =
      Netsim.Link.create ~sched ~bandwidth_bps:1e6 ~prop_delay:0.01
        ~queue_capacity:200
        ~deliver:(fun (_ : int) -> ())
        ~dropped:(fun _ _ -> ())
        ()
    in
    for i = 0 to 63 do
      ignore (Netsim.Link.send l ~size_bits:800 i)
    done;
    Dessim.Scheduler.run sched
  in
  (* The profiler's advertised cost at an instrumentation point: disabled, a
     span is one atomic load and a branch; enabled, two clock reads and the
     accumulator updates. The pair of rows quantifies the no-op claim. *)
  let prof_scope = Obs.Prof.scope "bench.micro" in
  let prof_spans () =
    for _ = 0 to 255 do
      Obs.Prof.enter prof_scope;
      Obs.Prof.exit prof_scope
    done
  in
  let prof_disabled () =
    Obs.Prof.set_enabled false;
    prof_spans ()
  in
  let prof_enabled () =
    Obs.Prof.set_enabled true;
    prof_spans ();
    Obs.Prof.set_enabled false
  in
  Test.make_grouped ~name:"simulator"
    [
      Test.make ~name:"heap: 256 add+pop" (Staged.stage heap_churn);
      Test.make ~name:"scheduler: 256 events" (Staged.stage scheduler_churn);
      Test.make ~name:"rng: 256 draws" (Staged.stage rng_draws);
      Test.make ~name:"mesh: generate 7x7 d6" (Staged.stage mesh_gen);
      Test.make ~name:"topology: bfs 49 nodes" (Staged.stage bfs);
      Test.make ~name:"link: 64 packets" (Staged.stage link_traffic);
      Test.make ~name:"prof: 256 spans, disabled" (Staged.stage prof_disabled);
      Test.make ~name:"prof: 256 spans, enabled" (Staged.stage prof_enabled);
    ]

let run_micro () =
  heading "micro-benchmarks (bechamel)";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] (micro_tests ()) in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some [ v ] -> v
          | Some _ | None -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, ns) -> Fmt.pr "%-40s %12.1f ns/run@." name ns) rows

(* ---------- campaign sections ---------- *)

(* Pass the artifact through disk when --out-dir is given: the tables the
   user sees are then provably regenerable from the committed JSON. *)
let render_artifact (section : Campaign.Sections.t) artifact =
  let artifact =
    match opts.out_dir with
    | None -> artifact
    | Some dir ->
      let path =
        Filename.concat dir
          (Printf.sprintf "BENCH_%s.json" section.Campaign.Sections.name)
      in
      Campaign.Artifact.write ~path artifact;
      progress (Printf.sprintf "wrote %s" path);
      (match Campaign.Artifact.read ~path with
      | Ok a -> a
      | Error e -> failwith e)
  in
  heading section.Campaign.Sections.title;
  section.Campaign.Sections.render Fmt.stdout artifact

(* Child side of --backend proc: this same binary re-exec'd with
   --cells-worker SECTION (plus the parent's --quick/--full), so worker and
   parent decompose the identical sweep. Never returns. *)
let run_cells_worker section_name =
  match Campaign.Sections.find section_name with
  | None ->
    Printf.eprintf "%s: --cells-worker: unknown section %S\n"
      Sys.executable_name section_name;
    exit 2
  | Some section ->
    let sweep = Campaign.Sections.sweep_for section ~full:opts.full sweep in
    let tasks = section.Campaign.Sections.tasks sweep in
    let run_cell i =
      if i < 0 || i >= Array.length tasks then
        Error (Printf.sprintf "cell index %d out of range" i)
      else begin
        let a0 = Unix.gettimeofday () in
        match Campaign.Driver.attempt_once tasks.(i) with
        | Ok cell -> Ok (Unix.gettimeofday () -. a0, cell)
        | Error e -> Error e
      end
    in
    Campaign.Proc_backend.worker ~run_cell ()

let backend_for (lead : Campaign.Sections.t) =
  match opts.backend with
  | `Domains -> Campaign.Driver.Domains
  | `Proc ->
    Campaign.Driver.Proc
      {
        argv =
          Array.of_list
            ([ Sys.executable_name; "--cells-worker"; lead.Campaign.Sections.name ]
            @ (if opts.quick then [ "--quick" ] else [])
            @ if opts.full then [ "--full" ] else []);
      }

let cache_for family =
  Option.map
    (fun dir ->
      Campaign.Cache.open_ ~dir
        {
          Campaign.Cache.git_sha = Campaign.Artifact.git_sha ();
          family;
          mode;
          runs = None;
          degrees = None;
          seed = None;
        })
    opts.cache

let run_campaigns () =
  let requested =
    List.filter
      (fun (s : Campaign.Sections.t) -> wants s.Campaign.Sections.name)
      Campaign.Sections.all
  in
  (* Sections with equal (family, sweep) share one simulation pass. *)
  let families =
    List.fold_left
      (fun acc (s : Campaign.Sections.t) ->
        let key = s.Campaign.Sections.family in
        if List.mem_assoc key acc then
          List.map (fun (k, v) -> if k = key then (k, v @ [ s ]) else (k, v)) acc
        else acc @ [ (key, [ s ]) ])
      [] requested
  in
  List.iter
    (fun (family, (members : Campaign.Sections.t list)) ->
      let lead = List.hd members in
      let sweep = Campaign.Sections.sweep_for lead ~full:opts.full sweep in
      if List.length members > 1 || family = "paper" then
        heading
          (Printf.sprintf "running the %s sweep (%s)" family
             (String.concat "/"
                (List.map (fun (s : Campaign.Sections.t) -> s.Campaign.Sections.name)
                   members)));
      let cells, quarantined, timing =
        Campaign.Driver.run_tasks ~jobs:opts.jobs ~progress
          ~heartbeat:(fun line -> Fmt.epr "  %s@." line)
          ?cache:(cache_for family) ~backend:(backend_for lead)
          (lead.Campaign.Sections.tasks sweep)
      in
      List.iter
        (fun section ->
          render_artifact section
            (Campaign.Driver.artifact_of ~section ~mode ~timing ~quarantined
               sweep cells))
        members)
    families

let () =
  match opts.worker_section with
  | Some name -> run_cells_worker name
  | None ->
    let t0 = Unix.gettimeofday () in
    Fmt.pr "routing-convergence bench harness (%s mode, %d jobs)@." mode
      opts.jobs;
    if wants "micro" then run_micro ();
    run_campaigns ();
    Fmt.pr "@.total wall clock: %.1f s@." (Unix.gettimeofday () -. t0)
