(* The benchmark / reproduction harness.

   Usage: main.exe [SECTION ...] [--quick | --full]

   Sections (default: all):
     micro             bechamel micro-benchmarks of the simulator primitives
     scenarios         wall-clock cost of one full paper scenario per engine
     fig3 fig4 fig5 fig6 fig7   regenerate the corresponding paper figure
     overhead          control-message overhead (paper Section 2 discussion)
     ablation-mrai     per-neighbor vs per-(neighbor,destination) MRAI
     ablation-damping  DBF triggered-update damping sweep
     ext-ls            link-state extension vs DBF / BGP-3

   --quick shrinks every sweep (3 seeds, degrees 3/4/6, shorter timeline);
   --full uses the paper's full setup (10 seeds, degrees 3..8, 800 s). The
   default is the paper timeline with 5 seeds, a compromise that keeps the
   whole harness under a few minutes. *)

let quick_flag = ref false

let full_flag = ref false

let sections = ref []

let () =
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--quick" -> quick_flag := true
        | "--full" -> full_flag := true
        | s -> sections := s :: !sections)
    Sys.argv

let wants section =
  match !sections with [] -> true | l -> List.mem section l || List.mem "all" l

let sweep () =
  if !quick_flag then
    Convergence.Experiments.
      {
        degrees = [ 3; 4; 6 ];
        runs = 3;
        base =
          {
            Convergence.Config.default with
            send_rate_pps = 100.;
            traffic_start = 60.;
            warmup = 70.;
            failure_time = 80.;
            sim_end = 220.;
          };
      }
  else if !full_flag then Convergence.Experiments.paper_sweep
  else Convergence.Experiments.(scale ~runs:5 paper_sweep)

let warmup_of sweep =
  sweep.Convergence.Experiments.base.Convergence.Config.warmup

let progress line = Fmt.pr "  .. %s@." line

let heading title = Fmt.pr "@.=== %s ===@." title

(* ---------- bechamel micro-benchmarks ---------- *)

let micro_tests () =
  let open Bechamel in
  let heap_churn () =
    let h = Dessim.Heap.create () in
    for i = 0 to 255 do
      Dessim.Heap.add h ~time:(float_of_int (i * 7919 mod 101)) ~seq:i i
    done;
    let rec drain () = match Dessim.Heap.pop h with Some _ -> drain () | None -> () in
    drain ()
  in
  let scheduler_churn () =
    let s = Dessim.Scheduler.create () in
    for i = 0 to 255 do
      ignore (Dessim.Scheduler.schedule s ~at:(float_of_int (i mod 17)) (fun () -> ()))
    done;
    Dessim.Scheduler.run s
  in
  let rng = Dessim.Rng.create 1 in
  let rng_draws () =
    for _ = 0 to 255 do
      ignore (Dessim.Rng.bits64 rng)
    done
  in
  let mesh_gen () = ignore (Netsim.Mesh.generate ~rows:7 ~cols:7 ~degree:6) in
  let topo = Netsim.Mesh.generate ~rows:7 ~cols:7 ~degree:6 in
  let bfs () = ignore (Netsim.Topology.bfs_distances topo 0) in
  let link_traffic () =
    let sched = Dessim.Scheduler.create () in
    let l =
      Netsim.Link.create ~sched ~bandwidth_bps:1e6 ~prop_delay:0.01
        ~queue_capacity:200
        ~deliver:(fun (_ : int) -> ())
        ~dropped:(fun _ _ -> ())
        ()
    in
    for i = 0 to 63 do
      ignore (Netsim.Link.send l ~size_bits:800 i)
    done;
    Dessim.Scheduler.run sched
  in
  Test.make_grouped ~name:"simulator"
    [
      Test.make ~name:"heap: 256 add+pop" (Staged.stage heap_churn);
      Test.make ~name:"scheduler: 256 events" (Staged.stage scheduler_churn);
      Test.make ~name:"rng: 256 draws" (Staged.stage rng_draws);
      Test.make ~name:"mesh: generate 7x7 d6" (Staged.stage mesh_gen);
      Test.make ~name:"topology: bfs 49 nodes" (Staged.stage bfs);
      Test.make ~name:"link: 64 packets" (Staged.stage link_traffic);
    ]

let run_micro () =
  heading "micro-benchmarks (bechamel)";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] (micro_tests ()) in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some [ v ] -> v
          | Some _ | None -> nan
        in
        (name, est) :: acc)
      results []
    |> List.sort compare
  in
  List.iter (fun (name, ns) -> Fmt.pr "%-40s %12.1f ns/run@." name ns) rows

(* ---------- scenario wall-clock ---------- *)

let run_scenarios () =
  heading "full-scenario wall-clock cost (one paper run per engine)";
  let cfg = (sweep ()).Convergence.Experiments.base in
  let time_one engine =
    let metrics = Obs.Registry.create () in
    let t0 = Unix.gettimeofday () in
    let r = Convergence.Engine_registry.run ~metrics cfg engine in
    let dt = Unix.gettimeofday () -. t0 in
    let gauge name =
      match Obs.Registry.lookup metrics name with
      | Some (Obs.Registry.Gauge_value v) -> v
      | Some _ | None -> nan
    in
    Fmt.pr
      "%-8s %6.2f s wall  (%d packets, %d control msgs, %.0f sched events, \
       queue depth <= %.0f)@."
      (Convergence.Engine_registry.name engine)
      dt r.Convergence.Metrics.sent r.Convergence.Metrics.ctrl_messages
      (gauge "scheduler.events_fired")
      (gauge "scheduler.max_queue_depth")
  in
  List.iter time_one Convergence.Engine_registry.all

(* ---------- figures ---------- *)

let grid_cache : Convergence.Experiments.grid option ref = ref None

let paper_grid () =
  match !grid_cache with
  | Some g -> g
  | None ->
    heading "running the paper sweep (shared by fig3/4/5/6/7/overhead)";
    let g =
      Convergence.Experiments.run_grid ~progress (sweep ())
        Convergence.Engine_registry.paper_four
    in
    grid_cache := Some g;
    g

let scalar ~title ~unit_label data =
  Fmt.pr "%a@.@." (Convergence.Report.scalar_table ~title ~unit_label) data

let series ~title ~unit_label ~mode data =
  let warmup = warmup_of (sweep ()) in
  Fmt.pr "%a@.@."
    (fun ppf d ->
      Convergence.Report.series_table ~title ~unit_label ~warmup
        ~window:(0., 60.) ~mode ppf d)
    data

let run_fig3 () =
  let g = paper_grid () in
  heading "Figure 3: packet drops due to no route, vs node degree";
  scalar ~title:"Fig 3 - drops (no route)" ~unit_label:"packets, mean over runs"
    (Convergence.Experiments.fig3 g)

let run_fig4 () =
  let g = paper_grid () in
  heading "Figure 4: TTL expirations during convergence, vs node degree";
  scalar ~title:"Fig 4 - TTL expirations" ~unit_label:"packets, mean over runs"
    (Convergence.Experiments.fig4 g)

let run_fig5 () =
  let g = paper_grid () in
  heading "Figure 5: instantaneous throughput vs time";
  let degrees = (sweep ()).Convergence.Experiments.degrees in
  let wanted = List.filter (fun d -> List.mem d [ 3; 4; 6 ]) degrees in
  List.iter
    (fun d ->
      series
        ~title:(Printf.sprintf "Fig 5 - throughput, degree %d" d)
        ~unit_label:"packets/s" ~mode:`Rate
        (Convergence.Experiments.fig5 g ~degree:d))
    wanted

let run_fig6 () =
  let g = paper_grid () in
  heading "Figure 6: convergence times vs node degree";
  scalar ~title:"Fig 6(a) - forwarding-path convergence" ~unit_label:"seconds"
    (Convergence.Experiments.fig6a g);
  scalar ~title:"Fig 6(b) - network routing convergence" ~unit_label:"seconds"
    (Convergence.Experiments.fig6b g)

let run_fig7 () =
  let g = paper_grid () in
  heading "Figure 7: instantaneous packet delay vs time";
  let degrees = (sweep ()).Convergence.Experiments.degrees in
  let wanted = List.filter (fun d -> List.mem d [ 4; 5; 6 ]) degrees in
  List.iter
    (fun d ->
      series
        ~title:(Printf.sprintf "Fig 7 - delay of delivered packets, degree %d" d)
        ~unit_label:"seconds" ~mode:`Mean
        (Convergence.Experiments.fig7 g ~degree:d))
    wanted

let run_overhead () =
  let g = paper_grid () in
  heading "Control-message overhead (Section 2 cost axis)";
  scalar ~title:"Routing messages per run" ~unit_label:"messages, mean"
    (Convergence.Experiments.overhead g)

(* ---------- ablations and extensions ---------- *)

let ablation_sweep () =
  let s = sweep () in
  if !full_flag then s
  else
    Convergence.Experiments.scale
      ~runs:(min 5 s.Convergence.Experiments.runs)
      ~degrees:(List.filter (fun d -> d <= 6) s.Convergence.Experiments.degrees)
      s

let run_ablation_mrai () =
  heading "Ablation: MRAI granularity (per neighbor vs per (neighbor, destination))";
  let g = Convergence.Experiments.ablation_mrai ~progress (ablation_sweep ()) in
  scalar ~title:"drops (no route)" ~unit_label:"packets"
    (Convergence.Experiments.fig3 g);
  scalar ~title:"TTL expirations" ~unit_label:"packets"
    (Convergence.Experiments.fig4 g);
  scalar ~title:"routing convergence" ~unit_label:"seconds"
    (Convergence.Experiments.fig6b g)

let run_ablation_damping () =
  heading "Ablation: DBF triggered-update damping interval";
  let intervals = [ (0.1, 0.2); (1., 5.); (5., 10.) ] in
  let g =
    Convergence.Experiments.ablation_damping ~progress (ablation_sweep ()) intervals
  in
  scalar ~title:"drops (no route)" ~unit_label:"packets"
    (Convergence.Experiments.fig3 g);
  scalar ~title:"routing convergence" ~unit_label:"seconds"
    (Convergence.Experiments.fig6b g);
  scalar ~title:"control messages" ~unit_label:"messages"
    (Convergence.Experiments.overhead g)

let run_ext_multiflow () =
  heading "Extension: multiple flows, overlapping failures (paper future work)";
  let sweep = ablation_sweep () in
  (* Four concurrent flows: halve the per-flow rate so the aggregate offered
     load (and the event count) stays comparable to the single-flow runs. *)
  let sweep =
    {
      sweep with
      Convergence.Experiments.base =
        { sweep.Convergence.Experiments.base with Convergence.Config.send_rate_pps = 100. };
    }
  in
  let data =
    Convergence.Experiments.multi_failure_study ~progress sweep ~flows:4
      ~failures:2 ~gap:5. Convergence.Engine_registry.paper_four
  in
  let project f = List.map (fun (p, cells) -> (p, List.map f cells)) data in
  scalar ~title:"aggregate delivery ratio (4 flows, 2 failures 5 s apart)"
    ~unit_label:"fraction"
    (project (fun c ->
         Convergence.Experiments.(c.mc_degree, c.mc_delivery_ratio)));
  scalar ~title:"no-route drops summed over flows" ~unit_label:"packets"
    (project (fun c ->
         Convergence.Experiments.(c.mc_degree, c.mc_no_route_drops)));
  scalar ~title:"routing convergence from first failure" ~unit_label:"seconds"
    (project (fun c ->
         Convergence.Experiments.(c.mc_degree, c.mc_routing_convergence)))

let run_ablation_rfd () =
  heading "Ablation: route flap damping under a flapping link (intro refs [4]/[15])";
  let sweep = ablation_sweep () in
  let base = sweep.Convergence.Experiments.base in
  let flap_scenario cfg =
    (* Pin the flow across the mesh and flap a link in the middle of its
       shortest path: down 4 s, up 4 s, three times, then up for good. *)
    let topo =
      Netsim.Mesh.generate ~rows:cfg.Convergence.Config.rows
        ~cols:cfg.Convergence.Config.cols ~degree:cfg.Convergence.Config.degree
    in
    let src = 0 and dst = Convergence.Config.nodes cfg - 1 in
    let path =
      match Netsim.Topology.shortest_path topo src dst with
      | Some p -> p
      | None -> invalid_arg "rfd bench: disconnected mesh"
    in
    let rec nth_link i = function
      | a :: (b :: _ as rest) -> if i = 0 then (a, b) else nth_link (i - 1) rest
      | _ -> invalid_arg "rfd bench: path too short"
    in
    let u, v = nth_link (List.length path / 2) path in
    let flap i =
      {
        Convergence.Runner.fail_at =
          cfg.Convergence.Config.failure_time +. (float_of_int i *. 8.);
        target = Convergence.Runner.Link (u, v);
        heal_after = Some 4.;
      }
    in
    let flow =
      { Convergence.Runner.default_flow with flow_src = Some src; flow_dst = Some dst }
    in
    (flow, List.init 3 flap)
  in
  let cell engine degree =
    let stats =
      List.init sweep.Convergence.Experiments.runs (fun i ->
          let cfg =
            base |> Convergence.Config.with_degree degree
            |> Convergence.Config.with_seed (base.Convergence.Config.seed + i)
          in
          let flow, failures = flap_scenario cfg in
          let m =
            Convergence.Engine_registry.run_multi ~flows:[ flow ] ~failures cfg
              engine
          in
          match m.Convergence.Metrics.m_flows with
          | [ f ] ->
            ( Convergence.Metrics.flow_delivery_ratio f,
              float_of_int f.Convergence.Metrics.f_drops_no_route,
              m.Convergence.Metrics.m_routing_convergence )
          | _ -> assert false)
    in
    let mean f = Dessim.Stat.mean (List.map f stats) in
    ( mean (fun (d, _, _) -> d),
      mean (fun (_, n, _) -> n),
      mean (fun (_, _, c) -> c) )
  in
  let engines =
    [ Convergence.Engine_registry.bgp3; Convergence.Engine_registry.bgp3_rfd ]
  in
  (* One simulation pass per (engine, degree); the three tables project it. *)
  let memo = Hashtbl.create 16 in
  let cell_memo e d =
    let key = (Convergence.Engine_registry.name e, d) in
    match Hashtbl.find_opt memo key with
    | Some v -> v
    | None ->
      let ((delivery, no_route, conv) as v) = cell e d in
      Hashtbl.replace memo key v;
      progress
        (Printf.sprintf "%-10s degree=%d: delivery=%.3f no-route=%.1f conv=%.1fs"
           (Convergence.Engine_registry.name e)
           d delivery no_route conv);
      v
  in
  let project pick =
    List.map
      (fun e ->
        ( Convergence.Engine_registry.name e,
          List.map
            (fun d -> (d, pick (cell_memo e d)))
            sweep.Convergence.Experiments.degrees ))
      engines
  in
  scalar ~title:"delivery ratio across three flaps" ~unit_label:"fraction"
    (project (fun (d, _, _) -> d));
  scalar ~title:"no-route drops" ~unit_label:"packets"
    (project (fun (_, n, _) -> n));
  scalar ~title:"routing convergence from first flap" ~unit_label:"seconds"
    (project (fun (_, _, c) -> c))

let run_ext_transport () =
  heading "Extension: reliable transport across the failure (paper future work)";
  let sweep = ablation_sweep () in
  (* A transfer sized to span the failure comfortably at the window-limited
     rate (~100 pps on these paths). *)
  let transport =
    {
      Convergence.Runner.default_transport with
      window = 16;
      rto = 0.5;
      total_packets = 8000;
    }
  in
  let data =
    Convergence.Experiments.transport_study ~progress sweep ~transport
      Convergence.Engine_registry.paper_four
  in
  let project f = List.map (fun (p, cells) -> (p, List.map f cells)) data in
  scalar ~title:"transfer completion time (8000 packets, window 16, RTO 0.5 s)"
    ~unit_label:"seconds from transfer start"
    (project (fun c ->
         Convergence.Experiments.(c.tr_degree, c.tr_completion)));
  scalar ~title:"retransmissions" ~unit_label:"packets"
    (project (fun c ->
         Convergence.Experiments.(c.tr_degree, c.tr_retransmissions)));
  scalar ~title:"goodput stall after the failure" ~unit_label:"seconds at zero goodput"
    (project (fun c -> Convergence.Experiments.(c.tr_degree, c.tr_stall)))

let run_ext_ls () =
  heading "Extension: link-state protocol (paper future work)";
  let g = Convergence.Experiments.extension_ls ~progress (ablation_sweep ()) in
  scalar ~title:"drops (no route)" ~unit_label:"packets"
    (Convergence.Experiments.fig3 g);
  scalar ~title:"forwarding-path convergence" ~unit_label:"seconds"
    (Convergence.Experiments.fig6a g);
  scalar ~title:"routing convergence" ~unit_label:"seconds"
    (Convergence.Experiments.fig6b g)

let () =
  let t0 = Unix.gettimeofday () in
  Fmt.pr "routing-convergence bench harness (%s mode)@."
    (if !quick_flag then "quick" else if !full_flag then "full" else "standard");
  if wants "micro" then run_micro ();
  if wants "scenarios" then run_scenarios ();
  if wants "fig3" then run_fig3 ();
  if wants "fig4" then run_fig4 ();
  if wants "fig5" then run_fig5 ();
  if wants "fig6" then run_fig6 ();
  if wants "fig7" then run_fig7 ();
  if wants "overhead" then run_overhead ();
  if wants "ablation-mrai" then run_ablation_mrai ();
  if wants "ablation-damping" then run_ablation_damping ();
  if wants "ablation-rfd" then run_ablation_rfd ();
  if wants "ext-ls" then run_ext_ls ();
  if wants "ext-multiflow" then run_ext_multiflow ();
  if wants "ext-transport" then run_ext_transport ();
  Fmt.pr "@.total wall clock: %.1f s@." (Unix.gettimeofday () -. t0)
