(** Crash-safe campaign checkpoints: an append-only, CRC-tagged JSONL
    journal of completed cells.

    A full-mode campaign is hundreds of cells and minutes-to-hours of wall
    clock; a crash, OOM kill, or Ctrl-C at cell 239/240 must not discard
    239 finished simulations. The journal is the recovery substrate: the
    driver appends one record the moment each cell finishes (or is
    quarantined), fsync'd before the append returns, so the set of
    checkpointed cells always reflects completed work — and
    [rcsim campaign resume] re-runs {e only} the missing cells and merges
    in canonical task order, reproducing the uninterrupted artifact byte
    for byte (cells are deterministic; see {!Driver}).

    {2 Record format}

    One record per line:

    {v {"crc":"xxxxxxxx","entry":<entry>}
 v}

    where [xxxxxxxx] is the CRC-32 (IEEE reflected, as in gzip) of the
    {e literal bytes} of [<entry>] as written, in lowercase hex. The CRC is
    over bytes, not parsed values, so verification needs no canonical
    re-serialization. Entries:

    - [{"type":"header","kind":"rcsim-journal","version":1,...}] — first
      line only: the section name, sweep preset ([mode]) and CLI overrides
      needed to rebuild the {e exact} task decomposition on resume, the
      artifact output path, and the total cell count.
    - [{"type":"cell","wall_s":W,"cell":{...}}] — one completed
      {!Cell_result.t} (series always included, so no section loses data),
      plus its wall-clock cost so resumed artifacts keep honest timing.
    - [{"type":"quarantined","q":{...}}] — one {!Artifact.quarantine}
      entry: the cell failed every attempt, and resume must {e not} re-run
      it.

    {2 Failure tolerance on read}

    A process killed mid-append leaves a torn final line (each record is a
    single [write(2)] followed by [fsync(2)]); {!load} drops exactly that —
    an unparseable or CRC-failing {e final} line — and reports it via
    [j_truncated]. Anything else is corruption, not interruption, and is
    rejected: a bad CRC or malformed record before the last line, a
    missing or invalid header, a duplicate cell key (completed twice, or
    both completed and quarantined) — resuming from a lying journal would
    silently fabricate results. *)

type header = {
  h_section : string;  (** {!Sections.t} name, e.g. ["fig3"] *)
  h_mode : string;  (** sweep preset: ["quick"], ["standard"] or ["full"] *)
  h_jobs : int;  (** worker count of the original run (informational) *)
  h_out : string;  (** artifact path the campaign writes on completion *)
  h_total : int;  (** cells in the decomposition — missing = total minus
                      completed minus quarantined *)
  h_runs : int option;  (** CLI [--runs] override, if given *)
  h_degrees : int list option;  (** CLI [--degrees] override, if given *)
  h_seed : int option;  (** CLI [--seed] override, if given *)
}
(** Everything resume needs to rebuild the sweep through the same code path
    the original invocation used, so the task arrays are identical. *)

type t
(** An open journal writer (an [O_APPEND] file descriptor). Appends are
    serialized by the {!Driver}'s progress mutex; the writer itself is not
    thread-safe. *)

val create : path:string -> header -> t
(** [create ~path header] truncates/creates the journal and writes the
    fsync'd header record. *)

val append_to : path:string -> t
(** [append_to ~path] reopens an existing journal for appending (resume).
    A torn final record is truncated away first, so the next append starts
    on its own line rather than extending the torn one into mid-file
    corruption. The caller is expected to have {!load}ed and checked the
    journal first. *)

val append_cell : t -> Cell_result.t -> unit
(** Checkpoint one completed cell ([wall_s] is taken from the record). The
    record is on disk — written and fsync'd — when this returns. *)

val append_quarantine : t -> Artifact.quarantine -> unit
(** Checkpoint one abandoned cell. Same durability as {!append_cell}. *)

val close : t -> unit

type contents = {
  j_header : header;
  j_cells : Cell_result.t list;  (** journal order, [wall_s] restored *)
  j_quarantined : Artifact.quarantine list;
  j_truncated : bool;  (** a torn final record was dropped *)
}

val load : path:string -> (contents, string) result
(** [load ~path] replays the journal, tolerant of a torn tail (see above)
    and strict about everything else. [Error] messages name the path and
    the offending line. *)

val is_journal : path:string -> bool
(** Cheap sniff (first bytes are a CRC-record prefix) so [campaign show]
    can tell a journal from an artifact without parsing either. *)

val crc32 : string -> int
(** The CRC-32 used by the record format, exposed for tests. *)

val frame : string -> string
(** [frame entry] is one CRC-tagged record line (newline included) carrying
    the literal bytes of [entry]. The framing is shared by the {!Cache}
    entry files and the {!Proc_backend} wire protocol, so a flipped bit in
    either is detected the same way a torn journal line is. *)

val unframe : string -> (Obs.Json.t, string) result
(** [unframe line] verifies the CRC of one {!frame}d record line (trailing
    newline already stripped) and parses the entry. *)
