(** Campaign execution: cells onto the {!Pool}, results into an {!Artifact}.

    The driver is the only component that measures wall-clock time; the cell
    rows themselves stay deterministic (see {!Cell_result}). Splitting
    {!run_tasks} from {!artifact_of} lets callers that run several sections
    of one {e family} (e.g. fig3..fig7 and overhead all project the same
    paper sweep) execute the shared cells once and emit one artifact per
    section.

    {2 Graceful degradation}

    A campaign survives individual cells misbehaving. Each task may run under
    a wall-clock budget ([?cell_budget]) — cooperative, enforced by
    {!Dessim.Scheduler.with_wall_budget}, so it interrupts any cell whose
    time is spent inside a scheduler loop (all real cells are) — and a cell
    whose attempt times out or raises is retried with the same seed up to
    [?retries] more times before being {e quarantined}: recorded in the
    artifact's [quarantined] list instead of killing the campaign. *)

val run_tasks :
  ?jobs:int ->
  ?progress:(string -> unit) ->
  ?cell_budget:float ->
  ?retries:int ->
  ?hang:string * int * int ->
  Sections.task array ->
  Cell_result.t array * Artifact.quarantine list * Artifact.timing
(** [run_tasks ~jobs ~progress tasks] executes every task on a {!Pool} of
    [jobs] workers (default 1) and returns the surviving results {e in task
    order} — the canonical cell order — regardless of which worker finished
    which cell when, plus the quarantine entries (also in task order) and a
    timing block (worker count, total wall-clock, per-surviving-cell costs).
    Each returned cell has [wall_s] stamped.

    [?cell_budget] (seconds; default none) is the per-attempt watchdog.
    [?retries] (default 1) is the number of {e additional} same-seed attempts
    after a failure, so an entry's [q_attempts] is at most [retries + 1].
    [?hang] is the CI fault hook: the task with that (protocol, degree, seed)
    key runs an infinite scheduler loop instead of its real cell, which only
    the watchdog can stop — supplying [hang] without [cell_budget] is
    rejected.

    [progress] (default: silent) is called per completed or quarantined cell
    and per failed attempt, from whichever domain ran it, serialized by a
    mutex — e.g. ["RIP d=3 seed=42 (17/240) 1.32s"]. It must not raise.

    @raise Invalid_argument if [retries < 0], or [hang] without
    [cell_budget]. *)

val artifact_of :
  section:Sections.t ->
  mode:string ->
  ?timing:Artifact.timing ->
  ?quarantined:Artifact.quarantine list ->
  Convergence.Experiments.sweep ->
  Cell_result.t array ->
  Artifact.t
(** [artifact_of ~section ~mode sweep cells] assembles the artifact for
    [section] from cells produced by {!run_tasks} (or by a section-sharing
    sibling's run). *)

val run :
  ?jobs:int ->
  ?progress:(string -> unit) ->
  ?cell_budget:float ->
  ?retries:int ->
  ?hang:string * int * int ->
  mode:string ->
  Convergence.Experiments.sweep ->
  Sections.t ->
  Artifact.t
(** [run ~jobs ~mode sweep section] = {!run_tasks} on [section.tasks sweep]
    followed by {!artifact_of}, timing and quarantine included. *)
