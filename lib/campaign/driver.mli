(** Campaign execution: cells onto the {!Pool}, results into an {!Artifact}.

    The driver is the only component that measures wall-clock time; the cell
    rows themselves stay deterministic (see {!Cell_result}). Splitting
    {!run_tasks} from {!artifact_of} lets callers that run several sections
    of one {e family} (e.g. fig3..fig7 and overhead all project the same
    paper sweep) execute the shared cells once and emit one artifact per
    section.

    {2 Graceful degradation}

    A campaign survives individual cells misbehaving. Each task may run under
    a wall-clock budget ([?cell_budget]) — cooperative, enforced by
    {!Dessim.Scheduler.with_wall_budget}, so it interrupts any cell whose
    time is spent inside a scheduler loop (all real cells are) — and a cell
    whose attempt times out or raises is retried with the same seed up to
    [?retries] more times before being {e quarantined}: recorded in the
    artifact's [quarantined] list instead of killing the campaign.

    {2 Checkpoint / stop / resume}

    With [?journal], every completed or quarantined cell is appended to a
    crash-safe {!Journal} the moment it finishes, before the progress
    counter moves. A graceful stop ({!Dessim.Scheduler.request_stop}, wired
    to SIGINT/SIGTERM by the CLI) makes workers abandon in-flight cells
    cleanly — no result, no quarantine entry, no journal record; they are
    simply missing from the returned arrays — and drain remaining tasks
    without starting them. [?completed] / [?prior_quarantine] feed
    journal-recovered outcomes back in: those cells are not re-run, and the
    merge happens in canonical task order, so an interrupted-then-resumed
    campaign returns byte-identical cells to an uninterrupted one. *)

type backend =
  | Domains  (** in-process {!Pool} of OCaml domains — the default *)
  | Proc of { argv : string array }
      (** supervised worker processes ({!Proc_backend}); [argv] is the
          worker command, argv.(0) the executable path. Workers must
          rebuild the {e same} task decomposition: a returned cell whose
          key disagrees with the task it was asked for is quarantined,
          not trusted. If every worker slot retires (e.g. [argv] cannot
          exec), the driver degrades to running the remaining cells
          in-process rather than failing the campaign. *)

val task_key : Sections.task -> string * int * int
(** The (protocol, degree, seed) cell key of a task. *)

val attempt_once :
  ?cell_budget:float -> ?hung:bool -> Sections.task -> (Cell_result.t, string) result
(** One attempt of one task under the optional wall budget — the unit a
    {!Proc_backend.worker} executes ([wall_s] not stamped; retry policy,
    quarantine and reporting stay with the supervising driver). [?hung]
    is the CI fault hook: run the watchdog-escape loop instead of the real
    cell. A graceful-stop interruption is [Error "stop requested"]. *)

val run_tasks :
  ?jobs:int ->
  ?progress:(string -> unit) ->
  ?heartbeat:(string -> unit) ->
  ?cell_budget:float ->
  ?retries:int ->
  ?hang:string * int * int ->
  ?stop_after:int ->
  ?journal:Journal.t ->
  ?cache:Cache.t ->
  ?backend:backend ->
  ?completed:Cell_result.t list ->
  ?prior_quarantine:Artifact.quarantine list ->
  Sections.task array ->
  Cell_result.t array * Artifact.quarantine list * Artifact.timing
(** [run_tasks ~jobs ~progress tasks] executes every task on a {!Pool} of
    [jobs] workers (default 1) and returns the surviving results {e in task
    order} — the canonical cell order — regardless of which worker finished
    which cell when, plus the quarantine entries (also in task order) and a
    timing block (worker count, total wall-clock, per-surviving-cell costs).
    Each returned cell has [wall_s] stamped. Cells that were abandoned on a
    graceful stop appear in neither list; use {!missing_count} to detect an
    incomplete run.

    [?cell_budget] (seconds; default none) is the per-attempt watchdog.
    [?retries] (default 1) is the number of {e additional} same-seed attempts
    after a failure, so an entry's [q_attempts] is at most [retries + 1].
    [?hang] is the CI fault hook: the task with that (protocol, degree, seed)
    key runs an infinite scheduler loop instead of its real cell, which only
    the watchdog can stop — supplying [hang] without [cell_budget] is
    rejected.

    [progress] (default: silent) is called per completed or quarantined cell
    and per failed attempt, from whichever domain ran it, serialized by a
    mutex — e.g. ["RIP d=3 seed=42 (17/240) 1.32s"]. It must not raise.
    [heartbeat] (default: silent, same serialization) is called after each
    completed cell with a one-line status including an ETA extrapolated from
    the mean wall time of the cells finished {e this} run — e.g.
    ["17/240 cells, 34.2 s elapsed, ETA 540 s"].

    [?cache] is a content-addressed cell store ({!Cache}): before
    scheduling, every task not already checkpointed is looked up, and hits
    are merged at their canonical positions exactly like checkpointed
    cells — not re-run, not journaled, excluded from the ETA
    extrapolation (the heartbeat reports them as [", N cached"]). Every
    freshly completed cell is stored back. A fully-cached re-run is
    byte-identical to the fresh run at any [jobs]. [?backend] selects how
    fresh cells execute (default {!Domains}); the cache composes with
    either backend.

    [?journal] checkpoints each completed/quarantined cell (fsync'd) before
    its progress line. [?completed] and [?prior_quarantine] are
    checkpoint-recovered outcomes: their cells are skipped (not re-run) and
    merged back at their canonical positions; every checkpointed key must
    belong to [tasks]. [?stop_after:k] is the deterministic test/CI stand-in
    for a signal: {!Dessim.Scheduler.request_stop} fires once [k] cells have
    completed in this run.

    @raise Invalid_argument if [retries < 0], [hang] without [cell_budget],
    [stop_after < 1], or a checkpointed cell key not present in [tasks]. *)

val missing_count :
  total:int -> Cell_result.t array -> Artifact.quarantine list -> int
(** [missing_count ~total cells quarantined] — how many of [total] cells
    have no outcome at all, i.e. were abandoned by a graceful stop. [0] for
    a run that was allowed to finish. *)

val artifact_of :
  section:Sections.t ->
  mode:string ->
  ?timing:Artifact.timing ->
  ?quarantined:Artifact.quarantine list ->
  Convergence.Experiments.sweep ->
  Cell_result.t array ->
  Artifact.t
(** [artifact_of ~section ~mode sweep cells] assembles the artifact for
    [section] from cells produced by {!run_tasks} (or by a section-sharing
    sibling's run). *)

val run :
  ?jobs:int ->
  ?progress:(string -> unit) ->
  ?heartbeat:(string -> unit) ->
  ?cell_budget:float ->
  ?retries:int ->
  ?hang:string * int * int ->
  ?stop_after:int ->
  ?journal:Journal.t ->
  ?cache:Cache.t ->
  ?backend:backend ->
  ?completed:Cell_result.t list ->
  ?prior_quarantine:Artifact.quarantine list ->
  mode:string ->
  Convergence.Experiments.sweep ->
  Sections.t ->
  Artifact.t
(** [run ~jobs ~mode sweep section] = {!run_tasks} on [section.tasks sweep]
    followed by {!artifact_of}, timing and quarantine included. Callers that
    need to detect an interrupted run should use {!run_tasks} +
    {!missing_count} + {!artifact_of} directly. *)
