(** Campaign execution: cells onto the {!Pool}, results into an {!Artifact}.

    The driver is the only component that measures wall-clock time; the cell
    rows themselves stay deterministic (see {!Cell_result}). Splitting
    {!run_tasks} from {!artifact_of} lets callers that run several sections
    of one {e family} (e.g. fig3..fig7 and overhead all project the same
    paper sweep) execute the shared cells once and emit one artifact per
    section. *)

val run_tasks :
  ?jobs:int ->
  ?progress:(string -> unit) ->
  Sections.task array ->
  Cell_result.t array * Artifact.timing
(** [run_tasks ~jobs ~progress tasks] executes every task on a {!Pool} of
    [jobs] workers (default 1) and returns the results {e in task order} —
    the canonical cell order — regardless of which worker finished which
    cell when. Each returned cell has [wall_s] stamped, and the timing block
    records the worker count, the total wall-clock, and the per-cell costs.

    [progress] (default: silent) is called once per completed cell, from
    whichever domain finished it, serialized by a mutex — e.g.
    ["RIP d=3 seed=42 (17/240) 1.32s"]. The callback must not raise. *)

val artifact_of :
  section:Sections.t ->
  mode:string ->
  ?timing:Artifact.timing ->
  Convergence.Experiments.sweep ->
  Cell_result.t array ->
  Artifact.t
(** [artifact_of ~section ~mode sweep cells] assembles the artifact for
    [section] from cells produced by {!run_tasks} (or by a section-sharing
    sibling's run). *)

val run :
  ?jobs:int ->
  ?progress:(string -> unit) ->
  mode:string ->
  Convergence.Experiments.sweep ->
  Sections.t ->
  Artifact.t
(** [run ~jobs ~mode sweep section] = {!run_tasks} on [section.tasks sweep]
    followed by {!artifact_of}, timing included. *)
