module E = Convergence.Engine_registry
module X = Convergence.Experiments
module C = Convergence.Config
module M = Convergence.Metrics
module R = Convergence.Runner

type task = {
  t_protocol : string;
  t_degree : int;
  t_seed : int;
  t_run : unit -> Cell_result.t;
}

type t = {
  name : string;
  family : string;
  title : string;
  doc : string;
  include_series : bool;
  tasks : X.sweep -> task array;
  render : Format.formatter -> Artifact.t -> unit;
}

(* The inclusive normalized window the paper's time-series figures print,
   matching the old bench's [~window:(0., 60.)]. *)
let window_lo = 0.

let window_hi = 60.

let cfg_of (sweep : X.sweep) degree i =
  sweep.X.base |> C.with_degree degree |> C.with_seed (sweep.X.base.C.seed + i)

(* ---------- task builders ---------- *)

(* One task per (engine, degree, seed), in that nesting order — the canonical
   cell order every grid artifact uses. *)
let sweep_tasks (sweep : X.sweep) ~engines cell =
  engines
  |> List.concat_map (fun engine ->
         sweep.X.degrees
         |> List.concat_map (fun degree ->
                List.init sweep.X.runs (fun i ->
                    let cfg = cfg_of sweep degree i in
                    {
                      t_protocol = E.name engine;
                      t_degree = degree;
                      t_seed = cfg.C.seed;
                      t_run = (fun () -> cell cfg engine);
                    })))
  |> Array.of_list

let grid_tasks ?(with_series = false) ~engines sweep =
  sweep_tasks sweep ~engines (fun cfg engine ->
      let r = E.run cfg engine in
      let series =
        if with_series then
          let windowed s =
            Cell_result.windowed ~warmup:cfg.C.warmup ~lo:window_lo
              ~hi:window_hi s
          in
          [
            ("throughput", windowed r.M.throughput);
            ("delay", windowed r.M.delay);
          ]
        else []
      in
      Cell_result.of_run ~series r)

(* ---------- render helpers ---------- *)

let protocols_of (a : Artifact.t) =
  List.fold_left
    (fun acc (g : Artifact.aggregate) ->
      if List.mem g.Artifact.a_protocol acc then acc
      else acc @ [ g.Artifact.a_protocol ])
    [] a.Artifact.aggregates

let scalar_data (a : Artifact.t) metric =
  List.map
    (fun proto ->
      ( proto,
        List.filter_map
          (fun (g : Artifact.aggregate) ->
            if g.Artifact.a_protocol <> proto then None
            else
              Option.map
                (fun (s : Artifact.stat) -> (g.Artifact.a_degree, s.Artifact.mean))
                (List.assoc_opt metric g.Artifact.a_metrics))
          a.Artifact.aggregates ))
    (protocols_of a)

let scalar_table ~title ~unit_label ~metric ppf a =
  Fmt.pf ppf "%a@.@."
    (Convergence.Report.scalar_table ~title ~unit_label)
    (scalar_data a metric)

(* Same layout as {!Convergence.Report.series_table}, driven by the stored
   (count, sum) buckets instead of a live [Dessim.Series.t]. *)
let series_table ~title ~unit_label ~mode ~metric ~degree ppf (a : Artifact.t) =
  let data =
    List.filter_map
      (fun (g : Artifact.aggregate) ->
        if g.Artifact.a_degree <> degree then None
        else
          Option.map
            (fun s -> (g.Artifact.a_protocol, s))
            (List.assoc_opt metric g.Artifact.a_series))
      a.Artifact.aggregates
  in
  let rule width = Fmt.pf ppf "%s@," (String.make width '-') in
  let width = 8 + (10 * List.length data) in
  Fmt.pf ppf "@[<v>%s (%s; time normalized to warmup end)@," title unit_label;
  rule width;
  Fmt.pf ppf "%-8s" "t(s)";
  List.iter (fun (p, _) -> Fmt.pf ppf "%10s" p) data;
  Fmt.pf ppf "@,";
  rule width;
  (match data with
  | [] -> ()
  | (_, (model : Cell_result.series)) :: _ ->
    for i = 0 to Array.length model.Cell_result.s_counts - 1 do
      let t =
        model.Cell_result.s_start +. (float_of_int i *. model.Cell_result.s_width)
      in
      Fmt.pf ppf "%-8.0f" t;
      List.iter
        (fun (_, (s : Cell_result.series)) ->
          let c = s.Cell_result.s_counts.(i) and v = s.Cell_result.s_sums.(i) in
          let value =
            match mode with
            | `Rate -> c /. s.Cell_result.s_width
            | `Mean -> if c = 0. then 0. else v /. c
          in
          Fmt.pf ppf "%10.3f" value)
        data;
      Fmt.pf ppf "@,"
    done);
  rule width;
  Fmt.pf ppf "@]@.@."

let series_section ~metric ~mode ~degrees ~title_of ~unit_label ppf
    (a : Artifact.t) =
  List.iter
    (fun degree ->
      if List.mem degree a.Artifact.params.Artifact.degrees then
        series_table ~title:(title_of degree) ~unit_label ~mode ~metric ~degree
          ppf a)
    degrees

(* ---------- the paper-grid family ---------- *)

let paper_tasks sweep = grid_tasks ~with_series:true ~engines:E.paper_four sweep

let paper name ~include_series ~title ~doc render =
  { name; family = "paper"; title; doc; include_series; tasks = paper_tasks; render }

let fig3 =
  paper "fig3" ~include_series:false
    ~title:"Figure 3: packet drops due to no route, vs node degree"
    ~doc:"packet drops due to no route, vs node degree"
    (fun ppf a ->
      scalar_table ~title:"Fig 3 - drops (no route)"
        ~unit_label:"packets, mean over runs" ~metric:"drops_no_route" ppf a)

let fig4 =
  paper "fig4" ~include_series:false
    ~title:"Figure 4: TTL expirations during convergence, vs node degree"
    ~doc:"TTL expirations during convergence, vs node degree"
    (fun ppf a ->
      scalar_table ~title:"Fig 4 - TTL expirations"
        ~unit_label:"packets, mean over runs" ~metric:"drops_ttl" ppf a)

let fig5 =
  paper "fig5" ~include_series:true
    ~title:"Figure 5: instantaneous throughput vs time"
    ~doc:"instantaneous throughput vs time (degrees 3, 4, 6)"
    (series_section ~metric:"throughput" ~mode:`Rate ~degrees:[ 3; 4; 6 ]
       ~title_of:(Printf.sprintf "Fig 5 - throughput, degree %d")
       ~unit_label:"packets/s")

let fig6 =
  paper "fig6" ~include_series:false
    ~title:"Figure 6: convergence times vs node degree"
    ~doc:"forwarding-path and network routing convergence vs node degree"
    (fun ppf a ->
      scalar_table ~title:"Fig 6(a) - forwarding-path convergence"
        ~unit_label:"seconds" ~metric:"fwd_convergence" ppf a;
      scalar_table ~title:"Fig 6(b) - network routing convergence"
        ~unit_label:"seconds" ~metric:"routing_convergence" ppf a)

let fig7 =
  paper "fig7" ~include_series:true
    ~title:"Figure 7: instantaneous packet delay vs time"
    ~doc:"instantaneous delay of delivered packets vs time (degrees 4, 5, 6)"
    (series_section ~metric:"delay" ~mode:`Mean ~degrees:[ 4; 5; 6 ]
       ~title_of:(Printf.sprintf "Fig 7 - delay of delivered packets, degree %d")
       ~unit_label:"seconds")

let overhead =
  paper "overhead" ~include_series:false
    ~title:"Control-message overhead (Section 2 cost axis)"
    ~doc:"routing messages per run, vs node degree"
    (fun ppf a ->
      scalar_table ~title:"Routing messages per run" ~unit_label:"messages, mean"
        ~metric:"ctrl_messages" ppf a)

(* ---------- scenarios ---------- *)

let scenarios_tasks (sweep : X.sweep) =
  let cfg = sweep.X.base in
  E.all
  |> List.map (fun engine ->
         {
           t_protocol = E.name engine;
           t_degree = cfg.C.degree;
           t_seed = cfg.C.seed;
           t_run =
             (fun () ->
               let metrics = Obs.Registry.create () in
               let r = E.run ~metrics cfg engine in
               let gauge name =
                 match Obs.Registry.lookup metrics name with
                 | Some (Obs.Registry.Gauge_value v) -> v
                 | Some _ | None -> Float.nan
               in
               Cell_result.of_run
                 ~extras:
                   [
                     ("sched_events", gauge "scheduler.events_fired");
                     ("max_queue_depth", gauge "scheduler.max_queue_depth");
                   ]
                 r);
         })
  |> Array.of_list

let render_scenarios ppf (a : Artifact.t) =
  let wall_of (c : Cell_result.t) =
    match a.Artifact.timing with
    | None -> Float.nan
    | Some t -> (
      match
        List.find_opt
          (fun (ct : Artifact.cell_timing) ->
            ct.Artifact.ct_protocol = c.Cell_result.protocol
            && ct.Artifact.ct_degree = c.Cell_result.degree
            && ct.Artifact.ct_seed = c.Cell_result.seed)
          t.Artifact.t_cells
      with
      | Some ct -> ct.Artifact.ct_wall_s
      | None -> Float.nan)
  in
  List.iter
    (fun (c : Cell_result.t) ->
      let extra name = Option.value ~default:Float.nan (List.assoc_opt name c.Cell_result.extras) in
      Fmt.pf ppf
        "%-8s %6.2f s wall  (%d packets, %d control msgs, %.0f sched events, \
         queue depth <= %.0f)@."
        c.Cell_result.protocol (wall_of c) c.Cell_result.sent
        c.Cell_result.ctrl_messages (extra "sched_events")
        (extra "max_queue_depth"))
    a.Artifact.cells;
  Fmt.pf ppf "@."

let scenarios =
  {
    name = "scenarios";
    family = "scenarios";
    title = "full-scenario wall-clock cost (one paper run per engine)";
    doc = "wall-clock cost of one full paper scenario per engine";
    include_series = false;
    tasks = scenarios_tasks;
    render = render_scenarios;
  }

(* ---------- ablations and extensions ---------- *)

let ablation_mrai =
  {
    name = "ablation-mrai";
    family = "ablation-mrai";
    title = "Ablation: MRAI granularity (per neighbor vs per (neighbor, destination))";
    doc = "BGP MRAI per neighbor vs per (neighbor, destination)";
    include_series = false;
    tasks = (fun sweep -> grid_tasks ~engines:[ E.bgp; E.bgp_per_dest ] sweep);
    render =
      (fun ppf a ->
        scalar_table ~title:"drops (no route)" ~unit_label:"packets"
          ~metric:"drops_no_route" ppf a;
        scalar_table ~title:"TTL expirations" ~unit_label:"packets"
          ~metric:"drops_ttl" ppf a;
        scalar_table ~title:"routing convergence" ~unit_label:"seconds"
          ~metric:"routing_convergence" ppf a);
  }

let damping_intervals = [ (0.1, 0.2); (1., 5.); (5., 10.) ]

let damping_engines =
  List.map
    (fun (dmin, dmax) ->
      let cfg =
        { Protocols.Dv_core.default_config with damp_min = dmin; damp_max = dmax }
      in
      E.Engine ((module Protocols.Dbf), cfg, Printf.sprintf "DBF[%g-%gs]" dmin dmax))
    damping_intervals

let ablation_damping =
  {
    name = "ablation-damping";
    family = "ablation-damping";
    title = "Ablation: DBF triggered-update damping interval";
    doc = "DBF under different triggered-update damping intervals";
    include_series = false;
    tasks = (fun sweep -> grid_tasks ~engines:damping_engines sweep);
    render =
      (fun ppf a ->
        scalar_table ~title:"drops (no route)" ~unit_label:"packets"
          ~metric:"drops_no_route" ppf a;
        scalar_table ~title:"routing convergence" ~unit_label:"seconds"
          ~metric:"routing_convergence" ppf a;
        scalar_table ~title:"control messages" ~unit_label:"messages"
          ~metric:"ctrl_messages" ppf a);
  }

(* A corner-to-corner flow pinned on the mesh diagonal, with the middle link
   of its shortest path as the failure target. Pinning (rather than the
   paper's random flow) keeps the failure geometry identical across the
   on/off arms of an ablation. *)
let pinned_midlink_flow (cfg : C.t) ~what =
  let topo = Netsim.Mesh.generate ~rows:cfg.C.rows ~cols:cfg.C.cols ~degree:cfg.C.degree in
  let src = 0 and dst = C.nodes cfg - 1 in
  let path =
    match Netsim.Topology.shortest_path topo src dst with
    | Some p -> p
    | None -> invalid_arg (what ^ ": disconnected mesh")
  in
  let rec nth_link i = function
    | a :: (b :: _ as rest) -> if i = 0 then (a, b) else nth_link (i - 1) rest
    | _ -> invalid_arg (what ^ ": path too short")
  in
  let u, v = nth_link (List.length path / 2) path in
  let flow = { R.default_flow with flow_src = Some src; flow_dst = Some dst } in
  (flow, (u, v))

(* A link on the flow's shortest path flaps three times (4 s down, 4 s up),
   then stays up — the scenario the intro's route-flap-damping references
   [4]/[15] describe. *)
let flap_scenario (cfg : C.t) =
  let flow, (u, v) = pinned_midlink_flow cfg ~what:"campaign rfd" in
  let flap i =
    {
      R.fail_at = cfg.C.failure_time +. (float_of_int i *. 8.);
      target = R.Link (u, v);
      heal_after = Some 4.;
    }
  in
  (flow, List.init 3 flap)

let rfd_cell cfg engine =
  let flow, failures = flap_scenario cfg in
  let m = E.run_multi ~flows:[ flow ] ~failures cfg engine in
  let ratio =
    match m.M.m_flows with
    | [ f ] -> M.flow_delivery_ratio f
    | _ -> Float.nan
  in
  Cell_result.of_multi ~extras:[ ("delivery_ratio", ratio) ] m

let ablation_rfd =
  {
    name = "ablation-rfd";
    family = "ablation-rfd";
    title = "Ablation: route flap damping under a flapping link (intro refs [4]/[15])";
    doc = "BGP-3 with and without route flap damping under a flapping link";
    include_series = false;
    tasks = (fun sweep -> sweep_tasks sweep ~engines:[ E.bgp3; E.bgp3_rfd ] rfd_cell);
    render =
      (fun ppf a ->
        scalar_table ~title:"delivery ratio across three flaps"
          ~unit_label:"fraction" ~metric:"delivery_ratio" ppf a;
        scalar_table ~title:"no-route drops" ~unit_label:"packets"
          ~metric:"drops_no_route" ppf a;
        scalar_table ~title:"routing convergence from first flap"
          ~unit_label:"seconds" ~metric:"routing_convergence" ppf a);
  }

let ext_ls =
  {
    name = "ext-ls";
    family = "ext-ls";
    title = "Extension: link-state protocol (paper future work)";
    doc = "link-state extension vs DBF and BGP-3";
    include_series = false;
    tasks = (fun sweep -> grid_tasks ~engines:[ E.ls; E.dbf; E.bgp3 ] sweep);
    render =
      (fun ppf a ->
        scalar_table ~title:"drops (no route)" ~unit_label:"packets"
          ~metric:"drops_no_route" ppf a;
        scalar_table ~title:"forwarding-path convergence" ~unit_label:"seconds"
          ~metric:"fwd_convergence" ppf a;
        scalar_table ~title:"routing convergence" ~unit_label:"seconds"
          ~metric:"routing_convergence" ppf a);
  }

(* Four concurrent flows, two failures 5 s apart. The per-flow rate is halved
   (200 -> 100 pps) so the aggregate offered load stays comparable to the
   single-flow sections. *)
let multiflow_cell cfg engine =
  let cfg = { cfg with C.send_rate_pps = 100. } in
  let flows = List.init 4 (fun _ -> R.default_flow) in
  let failures =
    List.init 2 (fun i ->
        {
          R.fail_at = cfg.C.failure_time +. (float_of_int i *. 5.);
          target = R.Flow_path (i mod 4);
          heal_after = None;
        })
  in
  let m = E.run_multi ~flows ~failures cfg engine in
  let ratio = Dessim.Stat.mean (List.map M.flow_delivery_ratio m.M.m_flows) in
  Cell_result.of_multi ~extras:[ ("delivery_ratio", ratio) ] m

let ext_multiflow =
  {
    name = "ext-multiflow";
    family = "ext-multiflow";
    title = "Extension: multiple flows, overlapping failures (paper future work)";
    doc = "four flows, two overlapping failures";
    include_series = false;
    tasks = (fun sweep -> sweep_tasks sweep ~engines:E.paper_four multiflow_cell);
    render =
      (fun ppf a ->
        scalar_table
          ~title:"aggregate delivery ratio (4 flows, 2 failures 5 s apart)"
          ~unit_label:"fraction" ~metric:"delivery_ratio" ppf a;
        scalar_table ~title:"no-route drops summed over flows"
          ~unit_label:"packets" ~metric:"drops_no_route" ppf a;
        scalar_table ~title:"routing convergence from first failure"
          ~unit_label:"seconds" ~metric:"routing_convergence" ppf a);
  }

(* A go-back-N transfer sized to span the failure comfortably at the
   window-limited rate (~100 pps on these paths). *)
let transport_config =
  { R.default_transport with window = 16; rto = 0.5; total_packets = 8000 }

(* Seconds of zero goodput in the minute after the failure, stopping at
   transfer completion: zero goodput after the last ack is not a stall. *)
let stall_seconds (cfg : C.t) (o : R.transport_outcome) =
  let g = o.R.t_goodput in
  let count = ref 0 in
  let from_bucket =
    match Dessim.Series.bucket_of_time g cfg.C.failure_time with
    | Some b -> b
    | None -> 0
  in
  let horizon =
    match o.R.t_completed_at with
    | Some t -> (
      match Dessim.Series.bucket_of_time g t with
      | Some b -> b
      | None -> Dessim.Series.buckets g - 1)
    | None -> Dessim.Series.buckets g - 1
  in
  let upto = min horizon (from_bucket + 60) in
  for i = from_bucket to upto do
    if Dessim.Series.count g i = 0 then incr count
  done;
  float_of_int !count

let transport_cell cfg engine =
  let failures =
    [ { R.fail_at = cfg.C.failure_time; target = R.Flow_path 0; heal_after = None } ]
  in
  let o = E.run_transport ~failures transport_config cfg engine in
  let finish = Option.value o.R.t_completed_at ~default:cfg.C.sim_end in
  Cell_result.of_multi
    ~extras:
      [
        ("completion_s", finish -. cfg.C.traffic_start);
        ("retransmissions", float_of_int o.R.t_retransmissions);
        ("stall_s", stall_seconds cfg o);
      ]
    o.R.t_multi

let ext_transport =
  {
    name = "ext-transport";
    family = "ext-transport";
    title = "Extension: reliable transport across the failure (paper future work)";
    doc = "go-back-N transfer crossing the failure";
    include_series = false;
    tasks = (fun sweep -> sweep_tasks sweep ~engines:E.paper_four transport_cell);
    render =
      (fun ppf a ->
        scalar_table
          ~title:"transfer completion time (8000 packets, window 16, RTO 0.5 s)"
          ~unit_label:"seconds from transfer start" ~metric:"completion_s" ppf a;
        scalar_table ~title:"retransmissions" ~unit_label:"packets"
          ~metric:"retransmissions" ppf a;
        scalar_table ~title:"goodput stall after the failure"
          ~unit_label:"seconds at zero goodput" ~metric:"stall_s" ppf a);
  }

(* ---------- fault injection ---------- *)

(* The faults grid sweeps a fault axis, not mesh degree: cells reuse the
   artifact's degree field as the axis code — a loss cell stores its loss
   percentage directly, a flap cell stores [100 + period] so the two ranges
   cannot collide. The mesh degree stays the sweep base's. *)
let fault_loss_pcts = [ 0; 2; 5; 10 ]

let fault_flap_periods = [ 4; 8; 16 ]

let fault_axis_points =
  List.map (fun p -> `Loss p) fault_loss_pcts
  @ List.map (fun p -> `Flap p) fault_flap_periods

let fault_code = function `Loss pct -> pct | `Flap period -> 100 + period

(* Loss cells drop each control unit independently; flap cells drive one
   random link through three down/up cycles starting just after the paper
   failure. Both enable the reliable control transport, which only protocols
   with [uses_reliable_transport] (BGP, BGP-3) actually engage — RIP and DBF
   must survive on their periodic refresh, which is the comparison the
   section exists to draw. *)
let fault_spec (cfg : C.t) = function
  | `Loss pct -> Fault.Spec.control_loss (float_of_int pct /. 100.)
  | `Flap period ->
    let half = float_of_int period /. 2. in
    {
      Fault.Spec.none with
      Fault.Spec.flaps =
        [
          Fault.Schedule.flap ~start:(cfg.C.failure_time +. 5.) ~cycles:3
            ~down:half ~up:half ();
        ];
      rtx = Some Fault.Rtx.default_config;
    }

let faults_cell axis cfg engine =
  let faults = fault_spec cfg axis in
  let metrics = Obs.Registry.create () in
  let r = E.run ~faults ~metrics cfg engine in
  let gauge name =
    match Obs.Registry.lookup metrics name with
    | Some (Obs.Registry.Gauge_value v) -> v
    | Some _ | None -> 0.
  in
  let ratio =
    if r.M.sent = 0 then Float.nan
    else float_of_int r.M.delivered /. float_of_int r.M.sent
  in
  (* The cell's degree field carries the fault-axis code, not the (constant)
     mesh degree — it is the cell key's sweep dimension here. *)
  {
    (Cell_result.of_run
       ~extras:
         [
           ("delivery_ratio", ratio);
           ("retransmissions", gauge "rtx.retransmissions");
           ("injected_ctrl_drops", gauge "fault.injected_ctrl_drops");
         ]
       r)
    with
    Cell_result.degree = fault_code axis;
  }

let faults_tasks (sweep : X.sweep) =
  E.paper_four
  |> List.concat_map (fun engine ->
         fault_axis_points
         |> List.concat_map (fun axis ->
                List.init sweep.X.runs (fun i ->
                    let cfg = C.with_seed (sweep.X.base.C.seed + i) sweep.X.base in
                    {
                      t_protocol = E.name engine;
                      t_degree = fault_code axis;
                      t_seed = cfg.C.seed;
                      t_run = (fun () -> faults_cell axis cfg engine);
                    })))
  |> Array.of_list

let fault_axis_table ~title ~unit_label ~metric ~keep ~relabel ppf a =
  let data =
    List.map
      (fun (proto, points) ->
        ( proto,
          List.filter_map
            (fun (d, v) -> if keep d then Some (relabel d, v) else None)
            points ))
      (scalar_data a metric)
  in
  Fmt.pf ppf "%a@.@." (Convergence.Report.scalar_table ~title ~unit_label) data

let render_faults ppf a =
  let loss ~title ~unit_label ~metric =
    fault_axis_table ~title ~unit_label ~metric
      ~keep:(fun d -> d < 100)
      ~relabel:Fun.id ppf a
  and flap ~title ~unit_label ~metric =
    fault_axis_table ~title ~unit_label ~metric
      ~keep:(fun d -> d >= 100)
      ~relabel:(fun d -> d - 100)
      ppf a
  in
  loss ~title:"delivery ratio vs control-plane loss"
    ~unit_label:"fraction; rows are loss %" ~metric:"delivery_ratio";
  loss ~title:"routing convergence vs control-plane loss"
    ~unit_label:"seconds; rows are loss %" ~metric:"routing_convergence";
  loss ~title:"control retransmissions vs loss (reliable-transport protocols)"
    ~unit_label:"segments; rows are loss %" ~metric:"retransmissions";
  flap ~title:"delivery ratio vs link flapping"
    ~unit_label:"fraction; rows are flap period (s)" ~metric:"delivery_ratio";
  flap ~title:"routing convergence vs link flapping"
    ~unit_label:"seconds; rows are flap period (s)" ~metric:"routing_convergence"

let faults =
  {
    name = "faults";
    family = "faults";
    title =
      "Fault injection: delivery and convergence under control-plane loss \
       and link flapping";
    doc = "delivery ratio and convergence vs injected loss rate and flap period";
    include_series = false;
    tasks = faults_tasks;
    render = render_faults;
  }

(* ---------- performance ---------- *)

(* The perf grid sweeps topology size, not mesh degree: like the faults
   section, cells reuse the artifact's degree field as the axis code — here
   the mesh's node count. The mesh degree stays the sweep base's.

   Determinism split: everything a perf cell is allowed to put in [extras]
   (event and callback counts, queue depth) is a pure function of the
   simulated scenario. Machine-speed numbers (ns/event, events/sec) go into
   [Cell_result.perf], which the driver stores in the artifact's strippable
   [timing] block — and so does every [Gc]-derived number, allocation counts
   included: OCaml 5's [Gc.quick_stat] aggregates across domains, so a
   concurrent cell's allocations leak into this cell's delta whenever
   [--jobs] > 1. *)
let perf_meshes = [ (5, 5); (7, 7); (10, 10) ]

let perf_measured_runs = 2

let perf_cell (sweep : X.sweep) ~rows ~cols engine =
  let cfg = { sweep.X.base with C.rows; cols } in
  (* One unmeasured warm-up run absorbs one-time costs (domain-local slots,
     size-class growth), so a cell measures the same on whichever worker
     domain it lands — the jobs-independence the artifact diff checks. *)
  ignore (E.run cfg engine);
  let measure () =
    let metrics = Obs.Registry.create () in
    let t0 = Obs.Prof.now_ns () in
    let r, g = Obs.Prof.gc_delta (fun () -> E.run ~metrics cfg engine) in
    let ns = Int64.to_float (Int64.sub (Obs.Prof.now_ns ()) t0) in
    (r, metrics, g, ns)
  in
  let samples = List.init perf_measured_runs (fun _ -> measure ()) in
  (* Identical seeds give identical simulations: deterministic numbers come
     from the last sample, machine-speed numbers average over all of them. *)
  let r, metrics, _, _ = List.nth samples (perf_measured_runs - 1) in
  let gauge name =
    match Obs.Registry.lookup metrics name with
    | Some (Obs.Registry.Gauge_value v) -> v
    | Some _ | None -> Float.nan
  in
  let cnt name =
    match Obs.Registry.lookup metrics name with
    | Some (Obs.Registry.Counter_value n) -> float_of_int n
    | Some _ | None -> Float.nan
  in
  let events = gauge "scheduler.events_fired" in
  let mean f = Dessim.Stat.mean (List.map f samples) in
  let mean_ns = mean (fun (_, _, _, ns) -> ns) in
  let perf =
    if events > 0. && mean_ns > 0. then
      [
        ("ns_per_event", mean_ns /. events);
        ("events_per_s", events *. 1e9 /. mean_ns);
        ("minor_words_per_event", gauge "alloc.minor_words_per_event");
        ( "promoted_words",
          mean (fun (_, _, g, _) -> g.Obs.Prof.d_promoted_words) );
        ( "major_collections",
          mean (fun (_, _, g, _) -> float_of_int g.Obs.Prof.d_major_collections)
        );
        ( "minor_collections",
          mean (fun (_, _, g, _) -> float_of_int g.Obs.Prof.d_minor_collections)
        );
      ]
    else []
  in
  {
    (Cell_result.of_run
       ~extras:
         [
           ("sched_events", events);
           ("events_scheduled", gauge "scheduler.events_scheduled");
           ("max_queue_depth", gauge "scheduler.max_queue_depth");
           ("timer_fires", cnt "sched.timer_fires");
           ("data_forwards", cnt "sched.data_forwards");
         ]
       r)
    with
    (* node count as the cell key's sweep dimension *)
    Cell_result.degree = rows * cols;
    perf;
  }

let perf_tasks (sweep : X.sweep) =
  E.paper_four
  |> List.concat_map (fun engine ->
         perf_meshes
         |> List.map (fun (rows, cols) ->
                {
                  t_protocol = E.name engine;
                  t_degree = rows * cols;
                  t_seed = sweep.X.base.C.seed;
                  t_run = (fun () -> perf_cell sweep ~rows ~cols engine);
                }))
  |> Array.of_list

let render_perf ppf (a : Artifact.t) =
  let perf_of (c : Cell_result.t) =
    match a.Artifact.timing with
    | None -> []
    | Some t -> (
      match
        List.find_opt
          (fun (ct : Artifact.cell_timing) ->
            ct.Artifact.ct_protocol = c.Cell_result.protocol
            && ct.Artifact.ct_degree = c.Cell_result.degree
            && ct.Artifact.ct_seed = c.Cell_result.seed)
          t.Artifact.t_cells
      with
      | Some ct -> ct.Artifact.ct_perf
      | None -> [])
  in
  let rule = String.make 78 '-' in
  Fmt.pf ppf "engine speed by protocol and mesh size@.%s@." rule;
  Fmt.pf ppf "%-8s %6s %10s %12s %12s %10s %9s@." "proto" "nodes" "events"
    "events/s" "ns/event" "w/event" "promoted";
  Fmt.pf ppf "%s@." rule;
  let total_events = ref 0. and total_s = ref 0. in
  List.iter
    (fun (c : Cell_result.t) ->
      let extra name =
        Option.value ~default:Float.nan
          (List.assoc_opt name c.Cell_result.extras)
      in
      let perf = perf_of c in
      let p name = Option.value ~default:Float.nan (List.assoc_opt name perf) in
      let events = extra "sched_events" in
      let eps = p "events_per_s" in
      if Float.is_finite events && Float.is_finite eps && eps > 0. then begin
        total_events := !total_events +. events;
        total_s := !total_s +. (events /. eps)
      end;
      Fmt.pf ppf "%-8s %6d %10.0f %12.0f %12.1f %10.2f %9.0f@."
        c.Cell_result.protocol c.Cell_result.degree events eps
        (p "ns_per_event")
        (p "minor_words_per_event")
        (p "promoted_words"))
    a.Artifact.cells;
  Fmt.pf ppf "%s@." rule;
  if !total_s > 0. then
    Fmt.pf ppf "overall: %.0f events in %.2f s measured = %.0f events/s@."
      !total_events !total_s
      (!total_events /. !total_s);
  Fmt.pf ppf "@."

let perf =
  {
    name = "perf";
    family = "perf";
    title =
      "Engine performance: events/sec, ns/event and allocations/event by \
       protocol and mesh size";
    doc = "events/sec, ns/event and allocations/event per protocol and mesh size";
    include_series = false;
    tasks = perf_tasks;
    render = render_perf;
  }

(* ---------- topology families ---------- *)

(* The topo grid sweeps generator family × node count, not mesh degree: like
   the faults and perf sections, cells reuse the artifact's degree field as
   the axis code — [family_index * 100_000 + node_count], so BA at 1024 nodes
   is 201024 and the two dimensions can never collide. The sweep's [degrees]
   list carries the node counts (set by [sweep_for]). *)
let topo_families = [ (`Mesh, 0, "mesh"); (`Er, 1, "ER"); (`Ba, 2, "BA"); (`Hier, 3, "hierarchical") ]

let topo_axis ~family_idx ~nodes = (family_idx * 100_000) + nodes

(* Which protocols run at which size. The limiter is per-protocol routing
   state, not the generators: the path-vector pair keeps full AS paths per
   (node, neighbor, destination) in its adj-RIB-in — measured at several GB
   for one 1024-node cell — so BGP and BGP-3 stop at 256 nodes and the
   larger sizes run the O(n·deg) distance-vector pair. DBF used to stop at
   1024 as well: re-arming a 180 s cache timeout per (neighbor, destination)
   by cancel + reschedule left a tombstone population (entry rate × 180 s,
   × degree versus RIP's one timer per destination) that OOM-killed an ER
   DBF cell past 110 GB. With the in-place deadline re-arm
   (Route_table.Deadline_vec) the queue carries one event per live timer and
   DBF joins RIP in the 4096-node rows. The full scale audit is
   DESIGN.md §15. *)
let topo_protocols nodes =
  if nodes <= 256 then E.paper_four else [ E.rip; E.dbf ]

let topo_build family ~nodes ~seed =
  let rng = Dessim.Rng.create seed in
  match family with
  | `Mesh ->
    (* Node counts are chosen square (49/256/1024/4096), paper degree 4. *)
    let side = int_of_float (sqrt (float_of_int nodes) +. 0.5) in
    Netsim.Mesh.generate ~rows:side ~cols:side ~degree:4
  | `Er ->
    (* mean degree ~6, independent of size *)
    Netsim.Random_topo.erdos_renyi rng ~nodes ~p:(6. /. float_of_int (nodes - 1))
  | `Ba -> Netsim.Random_topo.barabasi_albert rng ~nodes ~m:2
  | `Hier -> Netsim.Random_topo.hierarchical_auto rng ~nodes

(* Worst-case per-hop settling allowance, from each protocol's own pacing:
   RIP/DBF triggered updates are damped 1-5 s (plus batching), BGP's MRAI is
   mean 30 s with ±25% jitter, BGP-3's is mean 3 s. *)
let topo_perhop = function
  | "BGP" -> 32.
  | "BGP-3" -> 5.
  | _ -> 6.

let topo_ecc dist =
  Array.fold_left (fun m d -> if d < max_int && d > m then d else m) 0 dist

let topo_cell (sweep : X.sweep) ~family ~family_idx ~nodes engine i =
  let base = sweep.X.base in
  let axis = topo_axis ~family_idx ~nodes in
  let seed = base.C.seed + i in
  let proto = E.name engine in
  let topo = topo_build family ~nodes ~seed:(seed + (axis * 7919)) in
  (* Flow endpoints: src 0, dst among nodes at BFS distance min(ecc, 10) —
     far enough to cross real re-convergence, near enough to stay inside the
     distance-vector infinity (16) on every family and size. *)
  let src = 0 in
  let dist0 = Netsim.Topology.bfs_distances topo src in
  let ecc0 = topo_ecc dist0 in
  let want = min ecc0 10 in
  let cands = ref [] in
  Array.iteri (fun v d -> if d = want && v <> src then cands := v :: !cands) dist0;
  let cell_rng = Dessim.Rng.create (seed + (axis * 104_729)) in
  let dst =
    match !cands with [] -> nodes - 1 | l -> Dessim.Rng.pick cell_rng l
  in
  (* Initial convergence must finish before traffic starts, and the failed
     route must re-converge before the oracle reads the tables at the end,
     so both the lead-in and the post-failure window scale with graph reach ×
     protocol pacing (never below the paper's 240 s measurement window). *)
  let dhat = max ecc0 (topo_ecc (Netsim.Topology.bfs_distances topo dst)) in
  let allowance = 30. +. (1.3 *. topo_perhop proto *. float_of_int dhat) in
  let cfg =
    {
      base with
      (* placeholder mesh fields; the run is pinned to [~topology] *)
      C.rows = 3;
      cols = 3;
      degree = 4;
      traffic_start = allowance;
      warmup = allowance +. 10.;
      failure_time = allowance +. 20.;
      sim_end = allowance +. 20. +. Float.max 240. allowance;
      seed;
    }
  in
  (* The BFS differential oracle anchors correctness at quiescence. Bounded
     protocols must drop (not hold) routes at >= 16 hops; at the largest
     sizes the all-pairs probe is spot-checked on a strided destination
     sample to stay inside the wall budget. *)
  let max_metric =
    if proto = "RIP" || proto = "DBF" then
      Some Protocols.Dv_core.default_config.Protocols.Dv_core.infinity_metric
    else None
  in
  let dests =
    if nodes <= 2048 then None
    else
      let stride = nodes / 256 in
      let sample = List.init 256 (fun i -> i * stride) in
      Some (if List.mem dst sample then sample else dst :: sample)
  in
  let mismatches = ref Float.nan in
  let on_quiesce view =
    mismatches :=
      float_of_int (List.length (Check.Oracle.check ?max_metric ?dests view))
  in
  let r = E.run ~topology:topo ~src ~dst ~on_quiesce cfg engine in
  let ratio =
    if r.M.sent = 0 then Float.nan
    else float_of_int r.M.delivered /. float_of_int r.M.sent
  in
  {
    (Cell_result.of_run
       ~extras:
         [
           ("delivery_ratio", ratio);
           ("oracle_mismatches", !mismatches);
           ("edges", float_of_int (Netsim.Topology.edge_count topo));
         ]
       r)
    with
    (* family × node count as the cell key's sweep dimension *)
    Cell_result.degree = axis;
  }

let topo_tasks (sweep : X.sweep) =
  topo_families
  |> List.concat_map (fun (family, idx, _) ->
         sweep.X.degrees
         |> List.concat_map (fun nodes ->
                topo_protocols nodes
                |> List.concat_map (fun engine ->
                       List.init sweep.X.runs (fun i ->
                           {
                             t_protocol = E.name engine;
                             t_degree = topo_axis ~family_idx:idx ~nodes;
                             t_seed = sweep.X.base.C.seed + i;
                             t_run =
                               (fun () ->
                                 topo_cell sweep ~family ~family_idx:idx ~nodes
                                   engine i);
                           }))))
  |> Array.of_list

let render_topo ppf a =
  List.iter
    (fun (_, idx, label) ->
      let keep d = d / 100_000 = idx in
      let relabel d = d mod 100_000 in
      let table metric title unit_label =
        fault_axis_table ~title:(label ^ ": " ^ title) ~unit_label ~metric ~keep
          ~relabel ppf a
      in
      table "delivery_ratio" "delivery ratio during convergence"
        "fraction; rows are node count";
      table "routing_convergence" "routing convergence after the failure"
        "seconds; rows are node count";
      table "ctrl_messages" "control-message load"
        "messages; rows are node count";
      table "oracle_mismatches" "oracle mismatches at quiescence"
        "count; rows are node count")
    topo_families

let topo =
  {
    name = "topo";
    family = "topo";
    title =
      "Topology families: delivery, convergence and message load across \
       mesh/ER/BA/hierarchical at 49-4096 nodes";
    doc =
      "delivery ratio, convergence time and control-message load per \
       topology family and size";
    include_series = false;
    tasks = topo_tasks;
    render = render_topo;
  }

(* ---------- resilience: fast reroute ---------- *)

(* The resilience grid crosses failure schedule x FRR x degree on the
   default corner-to-corner flow: cells reuse the artifact's degree field as
   the axis code [sched_idx * 2000 + frr * 1000 + degree] — and carry the
   same coordinates as self-describing v4 [axes] — so the renderer can slice
   FRR-on against FRR-off per schedule. The mesh degree itself stays in
   3..6, the range where loop-free-alternate coverage changes. *)
let resilience_scheds = [ `Single; `Flap; `Pair; `Surge ]

let resilience_sched_name = function
  | `Single -> "single"
  | `Flap -> "flap"
  | `Pair -> "pair"
  | `Surge -> "surge"

let resilience_sched_idx = function
  | `Single -> 0
  | `Flap -> 1
  | `Pair -> 2
  | `Surge -> 3

let resilience_code sched ~frr degree =
  (resilience_sched_idx sched * 2000) + (if frr then 1000 else 0) + degree

(* [`Single] is the paper's one mid-path failure, never healed. The other
   schedules re-target the flow's {e current} path at each failure instant,
   so every cut hits a link the traffic actually crosses at that moment:
   [`Flap] re-cuts on an 8 s cadence (three times, 4 s down each); [`Pair]
   cuts two path links simultaneously in four 10 s-spaced rounds — two
   concurrent cuts exhaust single-alternate coverage around the cut even on
   richly connected meshes; [`Surge] piles ten overlapping 10 s outages at
   4 s spacing, the sustained-churn regime where even neighbor-caching
   protocols develop transient no-route windows. *)
let resilience_failures (cfg : C.t) sched =
  let path ~at ~heal =
    { R.fail_at = at; target = R.Flow_path 0; heal_after = heal }
  in
  let t0 = cfg.C.failure_time in
  match sched with
  | `Single -> [ path ~at:t0 ~heal:None ]
  | `Flap ->
    List.init 3 (fun i ->
        path ~at:(t0 +. (float_of_int i *. 8.)) ~heal:(Some 4.))
  | `Pair ->
    List.concat
      (List.init 4 (fun i ->
           let t = t0 +. (float_of_int i *. 10.) in
           [ path ~at:t ~heal:(Some 6.); path ~at:t ~heal:(Some 6.) ]))
  | `Surge ->
    List.init 10 (fun i ->
        path ~at:(t0 +. (float_of_int i *. 4.)) ~heal:(Some 10.))

(* Seconds of zero flow delivery from the first failure to sim_end — the
   union of the paper's loss windows across the schedule's failure events,
   measured on the flow's 1 s throughput buckets. *)
let loss_window_seconds (cfg : C.t) (m : M.multi) =
  match m.M.m_flows with
  | [ f ] ->
    let g = f.M.f_throughput in
    let from_bucket =
      match Dessim.Series.bucket_of_time g cfg.C.failure_time with
      | Some b -> b
      | None -> 0
    in
    let count = ref 0 in
    for i = from_bucket to Dessim.Series.buckets g - 1 do
      if Dessim.Series.count g i = 0 then incr count
    done;
    float_of_int !count
  | _ -> Float.nan

let resilience_cell sched ~frr cfg engine =
  let failures = resilience_failures cfg sched in
  let metrics = Obs.Registry.create () in
  let m =
    E.run_multi ~frr ~metrics ~flows:[ R.default_flow ] ~failures cfg engine
  in
  let gauge name =
    match Obs.Registry.lookup metrics name with
    | Some (Obs.Registry.Gauge_value v) -> v
    | Some _ | None -> 0.
  in
  {
    (Cell_result.of_multi
       ~extras:
         [
           ("loss_window_s", loss_window_seconds cfg m);
           ("frr_installs", gauge "frr.installs");
           ("frr_activations", gauge "frr.activations");
           ("frr_forwards", gauge "frr.forwards");
           ("frr_exhausted", gauge "frr.exhausted");
         ]
       ~axes:
         [
           ("schedule", resilience_sched_name sched);
           ("frr", if frr then "on" else "off");
           ("mesh_degree", string_of_int cfg.C.degree);
         ]
       m)
    with
    Cell_result.degree = resilience_code sched ~frr cfg.C.degree;
  }

let resilience_tasks (sweep : X.sweep) =
  E.paper_four
  |> List.concat_map (fun engine ->
         resilience_scheds
         |> List.concat_map (fun sched ->
                [ false; true ]
                |> List.concat_map (fun frr ->
                       sweep.X.degrees
                       |> List.concat_map (fun degree ->
                              List.init sweep.X.runs (fun i ->
                                  let cfg = cfg_of sweep degree i in
                                  {
                                    t_protocol = E.name engine;
                                    t_degree = resilience_code sched ~frr degree;
                                    t_seed = cfg.C.seed;
                                    t_run =
                                      (fun () ->
                                        resilience_cell sched ~frr cfg engine);
                                  })))))
  |> Array.of_list

(* FRR-off and FRR-on columns side by side, per protocol, rows = degree. *)
let resilience_slice (a : Artifact.t) metric ~base =
  List.concat_map
    (fun proto ->
      List.map
        (fun (tag, b) ->
          ( proto ^ "/" ^ tag,
            List.filter_map
              (fun (g : Artifact.aggregate) ->
                if
                  g.Artifact.a_protocol <> proto
                  || g.Artifact.a_degree < b
                  || g.Artifact.a_degree >= b + 1000
                then None
                else
                  Option.map
                    (fun (s : Artifact.stat) ->
                      (g.Artifact.a_degree - b, s.Artifact.mean))
                    (List.assoc_opt metric g.Artifact.a_metrics))
              a.Artifact.aggregates ))
        [ ("off", base); ("on", base + 1000) ])
    (protocols_of a)

let render_resilience ppf (a : Artifact.t) =
  let table ~base ~metric ~title ~unit_label =
    Fmt.pf ppf "%a@.@."
      (Convergence.Report.scalar_table ~title ~unit_label)
      (resilience_slice a metric ~base)
  in
  let sched ~base ~label =
    table ~base ~metric:"drops_no_route"
      ~title:(label ^ ": no-route drops, FRR off vs on")
      ~unit_label:"packets; rows are node degree";
    table ~base ~metric:"drops_ttl"
      ~title:(label ^ ": TTL expirations, FRR off vs on")
      ~unit_label:"packets; rows are node degree";
    table ~base ~metric:"loss_window_s"
      ~title:(label ^ ": loss window after the first failure, FRR off vs on")
      ~unit_label:"seconds at zero delivery; rows are node degree";
    table ~base ~metric:"frr_forwards"
      ~title:(label ^ ": packets rerouted onto backups (FRR-on cells)")
      ~unit_label:"packets; rows are node degree"
  in
  List.iteri
    (fun i s ->
      let label =
        match s with
        | `Single -> "single failure"
        | `Flap -> "flapping link"
        | `Pair -> "simultaneous pair"
        | `Surge -> "failure surge"
      in
      sched ~base:(i * 2000) ~label)
    resilience_scheds

let resilience =
  {
    name = "resilience";
    family = "resilience";
    title =
      "Fast reroute: loss window with and without precomputed loop-free \
       backups, across failure schedules and node degree";
    doc =
      "no-route drops, TTL drops and loss-window duration, FRR on vs off, \
       across single / flap / pair / surge failure schedules";
    include_series = false;
    tasks = resilience_tasks;
    render = render_resilience;
  }

(* ---------- sweep scaling ---------- *)

let ablation_scale ~full (sweep : X.sweep) =
  if full then sweep
  else
    X.scale ~runs:(min 5 sweep.X.runs)
      ~degrees:(List.filter (fun d -> d <= 6) sweep.X.degrees)
      sweep

let sweep_for t ~full sweep =
  match t.family with
  | "paper" | "scenarios" -> sweep
  (* perf sweeps mesh sizes internally; degrees/runs scaling does not apply *)
  | "perf" -> sweep
  (* the topo grid reuses [degrees] as its node-count axis; one seed per
     cell — each cell is a whole large-graph simulation *)
  | "topo" ->
    X.scale ~runs:1
      ~degrees:(if full then [ 49; 256; 1024; 4096 ] else [ 49; 256; 1024 ])
      sweep
  (* the resilience grid crosses schedule x frr x degree, an 8x multiplier
     on every (protocol, degree) pair, so seeds are capped at 5 even in full
     mode; the degree range is pinned to 3..6 in every mode *)
  | "resilience" ->
    X.scale ~runs:(min 5 sweep.X.runs)
      ~degrees:(List.filter (fun d -> d >= 3 && d <= 6) sweep.X.degrees) sweep
  | _ -> ablation_scale ~full sweep

(* ---------- registry ---------- *)

let all =
  [
    fig3;
    fig4;
    fig5;
    fig6;
    fig7;
    overhead;
    scenarios;
    ablation_mrai;
    ablation_damping;
    ablation_rfd;
    ext_ls;
    ext_multiflow;
    ext_transport;
    faults;
    perf;
    topo;
    resilience;
  ]

let names = List.map (fun s -> s.name) all

let find name = List.find_opt (fun s -> s.name = name) all

let grid ~name ?(title = name) ~engines () =
  {
    name;
    family = name;
    title;
    doc = title;
    include_series = false;
    tasks = (fun sweep -> grid_tasks ~engines sweep);
    render =
      (fun ppf a ->
        scalar_table ~title:"drops (no route)" ~unit_label:"packets"
          ~metric:"drops_no_route" ppf a);
  }
