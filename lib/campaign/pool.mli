(** A fixed-size pool of OCaml 5 domains executing an array of independent
    tasks.

    The pool exists for one reason: an experiment campaign is a bag of
    embarrassingly parallel cells (one seeded simulation each), and the
    hardware should be saturated without perturbing the results. The contract
    that makes this safe is {e index-preserving execution}: [run tasks] returns
    an array where slot [i] holds the result of [tasks.(i)], whatever the
    number of workers and whatever order tasks happened to finish in. Callers
    therefore see a deterministic, sequential-looking result from a parallel
    execution.

    Scheduling is work-stealing over per-worker slices: the task array is
    split into [jobs] contiguous arenas, each worker drains its own arena
    first (cache-friendly, zero contention while balanced), and a worker that
    runs dry steals unclaimed indices from other arenas. Claiming is a
    compare-and-set on the arena cursor, so every task runs exactly once.

    Tasks must not share mutable state (each simulation cell owns its RNG,
    scheduler and topology — see {!Dessim.Rng} on domain safety). The pool
    never re-runs a task and never drops one. *)

val default_jobs : unit -> int
(** [default_jobs ()] is [max 1 (Domain.recommended_domain_count () - 1)]:
    one worker per available core, leaving a core for the spawning domain.
    On a single-core machine this is [1], i.e. the sequential path. *)

val run : ?jobs:int -> (unit -> 'a) array -> 'a array
(** [run ~jobs tasks] executes every task and returns their results in task
    order. [jobs] defaults to [1].

    - [jobs <= 1] runs the tasks sequentially in the calling domain — no
      domain is spawned, so this is exactly the pre-campaign code path.
    - [jobs > 1] spawns [min jobs (Array.length tasks)] worker domains
      (capped at 64) and work-steals as described above. The calling domain
      blocks until all workers have joined.

    If any task raises, every remaining claimed task still completes, the
    workers are joined, and the exception of the {e lowest-indexed} failing
    task is re-raised in the caller — deterministic even when several tasks
    fail in the same run. *)
