(* v3 adds the optional per-cell "perf" object inside timing cells. v4 adds
   the optional self-describing "axes" object on cells and aggregates, used
   by sections whose grid has more dimensions than (protocol, degree). *)
let version = 4

let min_version = 1

let kind = "rcsim-campaign"

type params = {
  mode : string;
  rows : int;
  cols : int;
  degrees : int list;
  runs : int;
  seed : int;
  rate_pps : float;
  warmup : float;
  sim_end : float;
}

type stat = { mean : float; stddev : float }

type aggregate = {
  a_protocol : string;
  a_degree : int;
  a_runs : int;
  a_axes : (string * string) list;
  a_metrics : (string * stat) list;
  a_series : (string * Cell_result.series) list;
}

type cell_timing = {
  ct_protocol : string;
  ct_degree : int;
  ct_seed : int;
  ct_wall_s : float;
  ct_perf : (string * float) list;
      (* machine-speed measurements (ns/event, events/sec, GC promotion);
         empty for sections that do not measure them *)
}

type exec = {
  x_backend : string;
  x_cache_hits : int;
  x_cache_misses : int;
  x_spawns : int;
  x_restarts : int;
  x_worker_cells : int list;
}

type timing = {
  t_jobs : int;
  t_wall_s : float;
  t_exec : exec option;
      (* how the cells were executed (backend, cache traffic, worker
         supervision counters); absent for plain in-process runs, and
         always absent pre-PR-10 — an optional key, not a schema bump *)
  t_cells : cell_timing list;
}

type quarantine = {
  q_protocol : string;
  q_degree : int;
  q_seed : int;
  q_error : string;
  q_attempts : int;
}

type t = {
  section : string;
  git_sha : string;
  params : params;
  cells : Cell_result.t list;
  quarantined : quarantine list;
  aggregates : aggregate list;
  timing : timing option;
  include_series : bool;
}

let quarantine_key q = (q.q_protocol, q.q_degree, q.q_seed)

let params_of_sweep ~mode (sweep : Convergence.Experiments.sweep) =
  let base = sweep.Convergence.Experiments.base in
  {
    mode;
    rows = base.Convergence.Config.rows;
    cols = base.Convergence.Config.cols;
    degrees = sweep.Convergence.Experiments.degrees;
    runs = sweep.Convergence.Experiments.runs;
    seed = base.Convergence.Config.seed;
    rate_pps = base.Convergence.Config.send_rate_pps;
    warmup = base.Convergence.Config.warmup;
    sim_end = base.Convergence.Config.sim_end;
  }

let git_sha () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic -> (
    let line = try input_line ic with End_of_file -> "" in
    match (Unix.close_process_in ic, line) with
    | Unix.WEXITED 0, sha when sha <> "" -> sha
    | _ -> "unknown"
    | exception _ -> "unknown")

(* ---------- aggregation ---------- *)

let aggregate cells =
  let groups = ref [] (* (protocol, degree) keys in first-appearance order *) in
  let by_key = Hashtbl.create 16 in
  List.iter
    (fun (c : Cell_result.t) ->
      let k = (c.Cell_result.protocol, c.Cell_result.degree) in
      if not (Hashtbl.mem by_key k) then begin
        groups := k :: !groups;
        Hashtbl.add by_key k []
      end;
      Hashtbl.replace by_key k (c :: Hashtbl.find by_key k))
    cells;
  let one (protocol, degree) =
    let members = List.rev (Hashtbl.find by_key (protocol, degree)) in
    let n = List.length members in
    let metric_names = List.map fst (Cell_result.metrics (List.hd members)) in
    let a_metrics =
      List.map
        (fun name ->
          let samples =
            List.map
              (fun c -> List.assoc name (Cell_result.metrics c))
              members
          in
          ( name,
            { mean = Dessim.Stat.mean samples; stddev = Dessim.Stat.stddev samples } ))
        metric_names
    in
    let a_series =
      match members with
      | [] | { Cell_result.series = []; _ } :: _ -> []
      | first :: _ ->
        List.map
          (fun (name, (model : Cell_result.series)) ->
            let counts = Array.make (Array.length model.Cell_result.s_counts) 0. in
            let sums = Array.make (Array.length model.Cell_result.s_sums) 0. in
            List.iter
              (fun (c : Cell_result.t) ->
                let s = List.assoc name c.Cell_result.series in
                Array.iteri
                  (fun i v -> counts.(i) <- counts.(i) +. v)
                  s.Cell_result.s_counts;
                Array.iteri
                  (fun i v -> sums.(i) <- sums.(i) +. v)
                  s.Cell_result.s_sums)
              members;
            let k = 1. /. float_of_int n in
            Array.iteri (fun i v -> counts.(i) <- v *. k) counts;
            Array.iteri (fun i v -> sums.(i) <- v *. k) sums;
            ( name,
              {
                Cell_result.s_start = model.Cell_result.s_start;
                s_width = model.Cell_result.s_width;
                s_counts = counts;
                s_sums = sums;
              } ))
          first.Cell_result.series
    in
    (* cells sharing an axis code share their axes by construction, so the
       group's annotation is the first member's *)
    let a_axes =
      match members with [] -> [] | c :: _ -> c.Cell_result.axes
    in
    { a_protocol = protocol; a_degree = degree; a_runs = n; a_axes; a_metrics; a_series }
  in
  List.map one (List.rev !groups)

let build ~section ?git_sha:sha ?timing ?(quarantined = []) ~include_series
    params cells =
  {
    section;
    git_sha = (match sha with Some s -> s | None -> git_sha ());
    params;
    cells;
    quarantined;
    aggregates = aggregate cells;
    timing;
    include_series;
  }

(* ---------- JSON writing ---------- *)

let fnum f : Obs.Json.t = if Float.is_finite f then Float f else Null

let params_to_json p : Obs.Json.t =
  Obj
    [
      ("mode", String p.mode);
      ("rows", Int p.rows);
      ("cols", Int p.cols);
      ("degrees", List (List.map (fun d -> Obs.Json.Int d) p.degrees));
      ("runs", Int p.runs);
      ("seed", Int p.seed);
      ("rate_pps", fnum p.rate_pps);
      ("warmup", fnum p.warmup);
      ("sim_end", fnum p.sim_end);
    ]

let aggregate_to_json ~include_series a : Obs.Json.t =
  let metrics =
    List.map
      (fun (name, s) ->
        (name, Obs.Json.Obj [ ("mean", fnum s.mean); ("stddev", fnum s.stddev) ]))
      a.a_metrics
  in
  let series =
    match a.a_series with
    | xs when include_series && xs <> [] ->
      [
        ( "series",
          Obs.Json.Obj
            (List.map (fun (k, s) -> (k, Cell_result.series_to_json s)) xs) );
      ]
    | _ -> []
  in
  let axes =
    match a.a_axes with
    | [] -> []
    | xs ->
      [
        ( "axes",
          Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.String v)) xs) );
      ]
  in
  Obj
    ([
       ("protocol", Obs.Json.String a.a_protocol);
       ("degree", Obs.Json.Int a.a_degree);
       ("runs", Obs.Json.Int a.a_runs);
     ]
    @ axes
    @ [ ("metrics", Obs.Json.Obj metrics) ]
    @ series)

let quarantine_to_json q : Obs.Json.t =
  Obj
    [
      ("protocol", String q.q_protocol);
      ("degree", Int q.q_degree);
      ("seed", Int q.q_seed);
      ("error", String q.q_error);
      ("attempts", Int q.q_attempts);
    ]

let exec_to_json x : Obs.Json.t =
  Obj
    [
      ("backend", String x.x_backend);
      ("cache_hits", Int x.x_cache_hits);
      ("cache_misses", Int x.x_cache_misses);
      ("spawns", Int x.x_spawns);
      ("restarts", Int x.x_restarts);
      ("worker_cells", List (List.map (fun c -> Obs.Json.Int c) x.x_worker_cells));
    ]

let timing_to_json t : Obs.Json.t =
  Obj
    ([ ("jobs", Obs.Json.Int t.t_jobs); ("wall_s", fnum t.t_wall_s) ]
    @ (match t.t_exec with
      | None -> []
      | Some x -> [ ("exec", exec_to_json x) ])
    @ [
      ( "cells",
        List
          (List.map
             (fun ct ->
               let perf =
                 match ct.ct_perf with
                 | [] -> []
                 | xs ->
                   [
                     ( "perf",
                       Obs.Json.Obj (List.map (fun (k, v) -> (k, fnum v)) xs)
                     );
                   ]
               in
               Obs.Json.Obj
                 ([
                    ("protocol", Obs.Json.String ct.ct_protocol);
                    ("degree", Obs.Json.Int ct.ct_degree);
                    ("seed", Obs.Json.Int ct.ct_seed);
                    ("wall_s", fnum ct.ct_wall_s);
                  ]
                 @ perf))
             t.t_cells) );
    ])

(* The writer stamps the lowest version whose features the file actually
   uses: a grid without axis annotations keeps byte-identical v3 output, so
   regenerating a pre-v4 artifact still diffs clean. *)
let written_version t =
  if
    List.exists (fun (c : Cell_result.t) -> c.Cell_result.axes <> []) t.cells
    || List.exists (fun a -> a.a_axes <> []) t.aggregates
  then version
  else 3

let to_json_inner ~timing t : Obs.Json.t =
  let base =
    [
      ("schema_version", Obs.Json.Int (written_version t));
      ("kind", Obs.Json.String kind);
      ("section", Obs.Json.String t.section);
      ("git_sha", Obs.Json.String t.git_sha);
      ("params", params_to_json t.params);
      ( "cells",
        Obs.Json.List
          (List.map (Cell_result.to_json ~include_series:t.include_series) t.cells)
      );
      ( "quarantined",
        Obs.Json.List (List.map quarantine_to_json t.quarantined) );
      ( "aggregates",
        Obs.Json.List
          (List.map
             (aggregate_to_json ~include_series:t.include_series)
             t.aggregates) );
    ]
  in
  let timing =
    match (timing, t.timing) with
    | true, Some tg -> [ ("timing", timing_to_json tg) ]
    | _ -> []
  in
  Obj (base @ timing)

let to_json t = to_json_inner ~timing:true t

let to_string t = Obs.Json.to_string (to_json t)

let canonical_string t = Obs.Json.to_string (to_json_inner ~timing:false t)

(* ---------- JSON reading ---------- *)

let float_of_json = function
  | Obs.Json.Null -> Some Float.nan
  | j -> Obs.Json.to_float j

let params_of_json j =
  let ( let* ) = Result.bind in
  let need what = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "params: missing or mistyped %S" what)
  in
  let str name = Option.bind (Obs.Json.member name j) Obs.Json.to_string_val in
  let int name = Option.bind (Obs.Json.member name j) Obs.Json.to_int in
  let flt name = Option.bind (Obs.Json.member name j) float_of_json in
  let* mode = need "mode" (str "mode") in
  let* rows = need "rows" (int "rows") in
  let* cols = need "cols" (int "cols") in
  let* degrees =
    need "degrees" (Option.bind (Obs.Json.member "degrees" j) Obs.Json.to_int_list)
  in
  let* runs = need "runs" (int "runs") in
  let* seed = need "seed" (int "seed") in
  let* rate_pps = need "rate_pps" (flt "rate_pps") in
  let* warmup = need "warmup" (flt "warmup") in
  let* sim_end = need "sim_end" (flt "sim_end") in
  Ok { mode; rows; cols; degrees; runs; seed; rate_pps; warmup; sim_end }

let stat_of_json j =
  match
    ( Option.bind (Obs.Json.member "mean" j) float_of_json,
      Option.bind (Obs.Json.member "stddev" j) float_of_json )
  with
  | Some mean, Some stddev -> Ok { mean; stddev }
  | _ -> Error "aggregate: malformed stat"

let aggregate_of_json j =
  let ( let* ) = Result.bind in
  let need what = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "aggregate: missing or mistyped %S" what)
  in
  let* protocol =
    need "protocol" (Option.bind (Obs.Json.member "protocol" j) Obs.Json.to_string_val)
  in
  let* degree = need "degree" (Option.bind (Obs.Json.member "degree" j) Obs.Json.to_int) in
  let* runs = need "runs" (Option.bind (Obs.Json.member "runs" j) Obs.Json.to_int) in
  let* axes =
    match Obs.Json.member "axes" j with
    | None -> Ok []
    | Some (Obs.Json.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match Obs.Json.to_string_val v with
          | Some s -> Ok (acc @ [ (k, s) ])
          | None ->
            Error (Printf.sprintf "aggregate: axis %S is not a string" k))
        (Ok []) fields
    | Some _ -> Error "aggregate: axes is not an object"
  in
  let* metrics =
    match Obs.Json.member "metrics" j with
    | Some (Obs.Json.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          let* s = stat_of_json v in
          Ok (acc @ [ (k, s) ]))
        (Ok []) fields
    | _ -> Error "aggregate: missing metrics object"
  in
  let* series =
    match Obs.Json.member "series" j with
    | None -> Ok []
    | Some (Obs.Json.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match Cell_result.series_of_json v with
          | Some s -> Ok (acc @ [ (k, s) ])
          | None -> Error (Printf.sprintf "aggregate: series %S is malformed" k))
        (Ok []) fields
    | Some _ -> Error "aggregate: series is not an object"
  in
  Ok
    {
      a_protocol = protocol;
      a_degree = degree;
      a_runs = runs;
      a_axes = axes;
      a_metrics = metrics;
      a_series = series;
    }

let quarantine_of_json j =
  let get_str n = Option.bind (Obs.Json.member n j) Obs.Json.to_string_val in
  let get_int n = Option.bind (Obs.Json.member n j) Obs.Json.to_int in
  match
    ( get_str "protocol",
      get_int "degree",
      get_int "seed",
      get_str "error",
      get_int "attempts" )
  with
  | Some p, Some d, Some s, Some e, Some a when a >= 1 ->
    Ok { q_protocol = p; q_degree = d; q_seed = s; q_error = e; q_attempts = a }
  | Some _, Some _, Some _, Some _, Some a when a < 1 ->
    Error "quarantine entry: attempts must be >= 1"
  | _ -> Error "quarantine entry: missing or mistyped field"

let timing_of_json j =
  let ( let* ) = Result.bind in
  let need what = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "timing: missing or mistyped %S" what)
  in
  let* jobs = need "jobs" (Option.bind (Obs.Json.member "jobs" j) Obs.Json.to_int) in
  let* wall_s = need "wall_s" (Option.bind (Obs.Json.member "wall_s" j) float_of_json) in
  let* exec =
    match Obs.Json.member "exec" j with
    | None -> Ok None
    | Some xj -> (
      let str n = Option.bind (Obs.Json.member n xj) Obs.Json.to_string_val in
      let int n = Option.bind (Obs.Json.member n xj) Obs.Json.to_int in
      let worker_cells =
        Option.bind (Obs.Json.member "worker_cells" xj) Obs.Json.to_int_list
      in
      match
        ( str "backend",
          int "cache_hits",
          int "cache_misses",
          int "spawns",
          int "restarts",
          worker_cells )
      with
      | Some b, Some h, Some m, Some sp, Some r, Some wc ->
        Ok
          (Some
             {
               x_backend = b;
               x_cache_hits = h;
               x_cache_misses = m;
               x_spawns = sp;
               x_restarts = r;
               x_worker_cells = wc;
             })
      | _ -> Error "timing: malformed exec block")
  in
  let* cells =
    match Obs.Json.member "cells" j with
    | Some (Obs.Json.List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let get_str n = Option.bind (Obs.Json.member n item) Obs.Json.to_string_val in
          let get_int n = Option.bind (Obs.Json.member n item) Obs.Json.to_int in
          let get_flt n = Option.bind (Obs.Json.member n item) float_of_json in
          let* perf =
            match Obs.Json.member "perf" item with
            | None -> Ok []
            | Some (Obs.Json.Obj fields) ->
              List.fold_left
                (fun acc (k, v) ->
                  let* acc = acc in
                  match float_of_json v with
                  | Some f -> Ok (acc @ [ (k, f) ])
                  | None ->
                    Error
                      (Printf.sprintf "timing: perf entry %S is not a number" k))
                (Ok []) fields
            | Some _ -> Error "timing: perf is not an object"
          in
          match (get_str "protocol", get_int "degree", get_int "seed", get_flt "wall_s") with
          | Some p, Some d, Some s, Some w ->
            Ok
              (acc
              @ [
                  {
                    ct_protocol = p;
                    ct_degree = d;
                    ct_seed = s;
                    ct_wall_s = w;
                    ct_perf = perf;
                  };
                ])
          | _ -> Error "timing: malformed cell entry")
        (Ok []) items
    | _ -> Error "timing: missing cells list"
  in
  Ok { t_jobs = jobs; t_wall_s = wall_s; t_exec = exec; t_cells = cells }

let of_json j =
  let ( let* ) = Result.bind in
  let* schema =
    match Option.bind (Obs.Json.member "schema_version" j) Obs.Json.to_int with
    | Some v when v >= min_version && v <= version -> Ok v
    | Some v ->
      Error
        (Printf.sprintf "unsupported schema_version %d (want %d..%d)" v
           min_version version)
    | None -> Error "missing schema_version"
  in
  let* () =
    match Option.bind (Obs.Json.member "kind" j) Obs.Json.to_string_val with
    | Some k when k = kind -> Ok ()
    | Some k -> Error (Printf.sprintf "kind %S is not %S" k kind)
    | None -> Error "missing kind"
  in
  let* section =
    match Option.bind (Obs.Json.member "section" j) Obs.Json.to_string_val with
    | Some s -> Ok s
    | None -> Error "missing section"
  in
  let* sha =
    match Option.bind (Obs.Json.member "git_sha" j) Obs.Json.to_string_val with
    | Some s -> Ok s
    | None -> Error "missing git_sha"
  in
  let* params =
    match Obs.Json.member "params" j with
    | Some p -> params_of_json p
    | None -> Error "missing params"
  in
  let* cells =
    match Obs.Json.member "cells" j with
    | Some (Obs.Json.List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* c = Cell_result.of_json item in
          Ok (acc @ [ c ]))
        (Ok []) items
    | _ -> Error "missing cells list"
  in
  let* quarantined =
    match (Obs.Json.member "quarantined" j, schema) with
    | None, 1 -> Ok []  (* v1 predates graceful degradation *)
    | None, _ -> Error "schema v2: missing quarantined list"
    | Some (Obs.Json.List items), _ ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* q = quarantine_of_json item in
          Ok (acc @ [ q ]))
        (Ok []) items
    | Some _, _ -> Error "quarantined is not a list"
  in
  let* aggregates =
    match Obs.Json.member "aggregates" j with
    | Some (Obs.Json.List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* a = aggregate_of_json item in
          Ok (acc @ [ a ]))
        (Ok []) items
    | _ -> Error "missing aggregates list"
  in
  let* timing =
    match Obs.Json.member "timing" j with
    | None -> Ok None
    | Some tj ->
      let* t = timing_of_json tj in
      Ok (Some t)
  in
  let include_series =
    List.exists (fun (c : Cell_result.t) -> c.Cell_result.series <> []) cells
  in
  Ok
    {
      section;
      git_sha = sha;
      params;
      cells;
      quarantined;
      aggregates;
      timing;
      include_series;
    }

(* ---------- validation ---------- *)

let validate j =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let schema =
    match Option.bind (Obs.Json.member "schema_version" j) Obs.Json.to_int with
    | Some v when v >= min_version && v <= version -> v
    | Some v ->
      err "schema_version is %d, expected %d..%d" v min_version version;
      version
    | None ->
      err "missing or mistyped schema_version";
      version
  in
  (match Option.bind (Obs.Json.member "kind" j) Obs.Json.to_string_val with
  | Some k when k = kind -> ()
  | Some k -> err "kind is %S, expected %S" k kind
  | None -> err "missing or mistyped kind");
  (match Option.bind (Obs.Json.member "section" j) Obs.Json.to_string_val with
  | Some _ -> ()
  | None -> err "missing or mistyped section");
  (match Option.bind (Obs.Json.member "git_sha" j) Obs.Json.to_string_val with
  | Some _ -> ()
  | None -> err "missing or mistyped git_sha");
  (match Obs.Json.member "params" j with
  | Some p -> ( match params_of_json p with Ok _ -> () | Error e -> err "%s" e)
  | None -> err "missing params");
  let cell_keys = Hashtbl.create 64 in
  (match Obs.Json.member "cells" j with
  | Some (Obs.Json.List items) ->
    List.iteri
      (fun i item ->
        match Cell_result.of_json item with
        | Ok c ->
          let k = Cell_result.key c in
          if Hashtbl.mem cell_keys k then
            err "cells[%d]: duplicate cell key (%s, %d, %d)" i
              c.Cell_result.protocol c.Cell_result.degree c.Cell_result.seed
          else
            Hashtbl.add cell_keys k ()
        | Error e -> err "cells[%d]: %s" i e)
      items
  | Some _ -> err "cells is not a list"
  | None -> err "missing cells");
  (match (Obs.Json.member "quarantined" j, schema) with
  | None, 1 -> ()
  | None, _ -> err "schema v%d requires a quarantined list" schema
  | Some (Obs.Json.List items), _ ->
    let qkeys = Hashtbl.create 8 in
    List.iteri
      (fun i item ->
        match quarantine_of_json item with
        | Ok q ->
          let k = quarantine_key q in
          if Hashtbl.mem qkeys k then
            err "quarantined[%d]: duplicate quarantine key (%s, %d, %d)" i
              q.q_protocol q.q_degree q.q_seed
          else Hashtbl.add qkeys k ();
          if Hashtbl.mem cell_keys k then
            err
              "quarantined[%d]: cell (%s, %d, %d) is both completed and \
               quarantined"
              i q.q_protocol q.q_degree q.q_seed
        | Error e -> err "quarantined[%d]: %s" i e)
      items
  | Some _, _ -> err "quarantined is not a list");
  (match Obs.Json.member "aggregates" j with
  | Some (Obs.Json.List items) ->
    List.iteri
      (fun i item ->
        match aggregate_of_json item with
        | Ok a ->
          let members =
            Hashtbl.fold
              (fun (p, d, _) () n ->
                if p = a.a_protocol && d = a.a_degree then n + 1 else n)
              cell_keys 0
          in
          if members <> a.a_runs then
            err "aggregates[%d]: (%s, degree %d) claims %d runs but has %d cells"
              i a.a_protocol a.a_degree a.a_runs members
        | Error e -> err "aggregates[%d]: %s" i e)
      items
  | Some _ -> err "aggregates is not a list"
  | None -> err "missing aggregates");
  (match Obs.Json.member "timing" j with
  | None -> ()
  | Some tj -> ( match timing_of_json tj with Ok _ -> () | Error e -> err "%s" e));
  List.rev !errors

(* ---------- files ---------- *)

let write ~path t =
  Rcutil.Atomic_file.write ~path (fun oc ->
      output_string oc (to_string t);
      output_char oc '\n')

let read ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> (
    match Obs.Json.of_string_opt (String.trim contents) with
    | None -> Error (Printf.sprintf "%s: not valid JSON" path)
    | Some j -> (
      match of_json j with
      | Ok t -> Ok t
      | Error e -> Error (Printf.sprintf "%s: %s" path e)))
