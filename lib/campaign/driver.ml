let run_tasks ?(jobs = 1) ?(progress = fun _ -> ()) (tasks : Sections.task array) =
  let n = Array.length tasks in
  let done_count = ref 0 in
  let progress_mutex = Mutex.create () in
  let timed_task (t : Sections.task) () =
    let t0 = Unix.gettimeofday () in
    let cell = t.Sections.t_run () in
    let wall = Unix.gettimeofday () -. t0 in
    Mutex.protect progress_mutex (fun () ->
        incr done_count;
        progress
          (Printf.sprintf "%-6s d=%d seed=%d (%d/%d) %.2fs"
             t.Sections.t_protocol t.Sections.t_degree t.Sections.t_seed
             !done_count n wall));
    { cell with Cell_result.wall_s = wall }
  in
  let t0 = Unix.gettimeofday () in
  let cells = Pool.run ~jobs (Array.map timed_task tasks) in
  let total = Unix.gettimeofday () -. t0 in
  let timing =
    {
      Artifact.t_jobs = max 1 (min jobs (max 1 n));
      t_wall_s = total;
      t_cells =
        Array.to_list
          (Array.map
             (fun (c : Cell_result.t) ->
               {
                 Artifact.ct_protocol = c.Cell_result.protocol;
                 ct_degree = c.Cell_result.degree;
                 ct_seed = c.Cell_result.seed;
                 ct_wall_s = c.Cell_result.wall_s;
               })
             cells);
    }
  in
  (cells, timing)

let artifact_of ~(section : Sections.t) ~mode ?timing sweep cells =
  Artifact.build ~section:section.Sections.name ?timing
    ~include_series:section.Sections.include_series
    (Artifact.params_of_sweep ~mode sweep)
    (Array.to_list cells)

let run ?jobs ?progress ~mode sweep (section : Sections.t) =
  let cells, timing = run_tasks ?jobs ?progress (section.Sections.tasks sweep) in
  artifact_of ~section ~mode ~timing sweep cells
