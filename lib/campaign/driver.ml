(* A cell that hangs or crashes must not take the campaign down with it: the
   whole point of a 240-cell overnight sweep is that cell 173 misbehaving
   still leaves 239 rows of data. Each task therefore runs under an optional
   wall-clock budget (cooperative: Dessim.Scheduler.run checks the deadline
   between events, which covers every real cell since cells are simulator
   runs) and a bounded number of same-seed retries — a timeout on a loaded
   machine is the one failure a retry can genuinely cure. What still fails
   is quarantined into the artifact rather than aborted on.

   The same cooperative poll carries the graceful-stop flag
   (Dessim.Scheduler.request_stop, set by the CLI's SIGINT/SIGTERM handler):
   a stopped campaign abandons in-flight cells cleanly (no quarantine entry,
   no journal record — they are simply "missing"), stops starting new ones,
   and leaves recovery to the journal + resume path below. *)

type outcome =
  | Done of Cell_result.t
  | Failed of { error : string; attempts : int }
  | Stopped  (** abandoned because a graceful stop was requested; the cell is
                 neither a result nor a quarantine — just missing *)

(* The CI hook that proves the watchdog works: a scheduler that reschedules
   itself forever, exactly the shape of a runaway simulation. Only
   interruptible by the wall budget, so requiring [cell_budget] alongside
   [hang] (checked in run_tasks) keeps a mistyped flag from hanging CI. *)
let hang_forever () =
  let s = Dessim.Scheduler.create () in
  let rec tick () = ignore (Dessim.Scheduler.after s ~delay:1.0 tick) in
  tick ();
  Dessim.Scheduler.run s;
  assert false

let attempt_task ?cell_budget ~hung (t : Sections.task) =
  let body () = if hung then hang_forever () else t.Sections.t_run () in
  let guarded () =
    match cell_budget with
    | None -> body ()
    | Some b -> Dessim.Scheduler.with_wall_budget b body
  in
  match guarded () with
  | cell -> Ok cell
  | exception Dessim.Scheduler.Stop_requested -> Error `Stop
  | exception Dessim.Scheduler.Wall_timeout ->
    Error
      (`Fail
        (Printf.sprintf "wall budget exceeded (%.1f s)"
           (Option.value cell_budget ~default:0.)))
  | exception exn -> Error (`Fail (Printexc.to_string exn))

let task_key (t : Sections.task) =
  (t.Sections.t_protocol, t.Sections.t_degree, t.Sections.t_seed)

let run_tasks ?(jobs = 1) ?(progress = fun _ -> ()) ?(heartbeat = fun _ -> ())
    ?cell_budget ?(retries = 1) ?hang ?stop_after ?journal ?(completed = [])
    ?(prior_quarantine = []) (tasks : Sections.task array) =
  if retries < 0 then invalid_arg "Driver.run_tasks: retries must be >= 0";
  (match (hang, cell_budget) with
  | Some _, None ->
    invalid_arg "Driver.run_tasks: hang requires a cell_budget to escape"
  | _ -> ());
  (match stop_after with
  | Some k when k < 1 -> invalid_arg "Driver.run_tasks: stop_after must be >= 1"
  | _ -> ());
  let n = Array.length tasks in
  (* Checkpointed outcomes from a previous (interrupted) run: these cells are
     not re-run; they re-enter the merge at their canonical position. *)
  let pre = Hashtbl.create 64 in
  List.iter
    (fun (c : Cell_result.t) ->
      Hashtbl.replace pre (Cell_result.key c) (`Cell c))
    completed;
  List.iter
    (fun (q : Artifact.quarantine) ->
      Hashtbl.replace pre (Artifact.quarantine_key q) (`Quarantine q))
    prior_quarantine;
  let task_keys = Hashtbl.create 64 in
  Array.iter (fun t -> Hashtbl.replace task_keys (task_key t) ()) tasks;
  Hashtbl.iter
    (fun (p, d, s) _ ->
      if not (Hashtbl.mem task_keys (p, d, s)) then
        invalid_arg
          (Printf.sprintf
             "Driver.run_tasks: checkpointed cell (%s, %d, %d) is not in the \
              task decomposition"
             p d s))
    pre;
  let base_done = Hashtbl.length pre in
  let done_count = ref base_done in
  (* Scheduler events fired by freshly-run cells: the numerator of the
     heartbeat's aggregate events/sec (checkpointed cells did their events in
     a previous process, so they count for neither side of the rate). *)
  let events_done = ref 0 in
  let progress_mutex = Mutex.create () in
  let t0 = Unix.gettimeofday () in
  let rate_string v =
    if v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
    else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
    else Printf.sprintf "%.1f" v
  in
  (* Everything that happens "when a cell finishes" is serialized here: the
     journal append (checkpoint durable before the count moves), the
     progress line, the heartbeat, and the stop-after test hook. *)
  let report ?checkpoint line =
    Mutex.protect progress_mutex (fun () ->
        (match (journal, checkpoint) with
        | Some j, Some (`Cell c) -> Journal.append_cell j c
        | Some j, Some (`Quarantine q) -> Journal.append_quarantine j q
        | _ -> ());
        (match checkpoint with
        | Some (`Cell (c : Cell_result.t)) ->
          events_done := !events_done + c.Cell_result.events
        | _ -> ());
        incr done_count;
        progress line;
        let done_here = !done_count - base_done in
        let remaining = n - !done_count in
        if done_here > 0 && remaining > 0 then begin
          let elapsed = Unix.gettimeofday () -. t0 in
          let throughput =
            if elapsed > 0. then
              Printf.sprintf ", %s cells/s, %s events/s"
                (rate_string (float_of_int done_here /. elapsed))
                (rate_string (float_of_int !events_done /. elapsed))
            else ""
          in
          heartbeat
            (Printf.sprintf "%d/%d cells, %.1f s elapsed, ETA %.0f s%s"
               !done_count n elapsed
               (elapsed /. float_of_int done_here *. float_of_int remaining)
               throughput)
        end;
        match stop_after with
        | Some k when done_here >= k -> Dessim.Scheduler.request_stop ()
        | _ -> ())
  in
  let timed_task (t : Sections.task) () =
    if Dessim.Scheduler.stop_requested () then Stopped
    else begin
      let hung = hang = Some (task_key t) in
      let rec go attempt_no =
        let a0 = Unix.gettimeofday () in
        let result = attempt_task ?cell_budget ~hung t in
        let wall = Unix.gettimeofday () -. a0 in
        match result with
        | Ok cell ->
          let cell = { cell with Cell_result.wall_s = wall } in
          report ~checkpoint:(`Cell cell)
            (Printf.sprintf "%-6s d=%d seed=%d (%d/%d) %.2fs"
               t.Sections.t_protocol t.Sections.t_degree t.Sections.t_seed
               !done_count n wall);
          Done cell
        | Error `Stop ->
          Mutex.protect progress_mutex (fun () ->
              progress
                (Printf.sprintf "%-6s d=%d seed=%d abandoned (stop requested)"
                   t.Sections.t_protocol t.Sections.t_degree t.Sections.t_seed));
          Stopped
        | Error (`Fail e) when attempt_no <= retries ->
          Mutex.protect progress_mutex (fun () ->
              progress
                (Printf.sprintf "%-6s d=%d seed=%d attempt %d failed (%s), retrying"
                   t.Sections.t_protocol t.Sections.t_degree t.Sections.t_seed
                   attempt_no e));
          go (attempt_no + 1)
        | Error (`Fail e) ->
          let q =
            {
              Artifact.q_protocol = t.Sections.t_protocol;
              q_degree = t.Sections.t_degree;
              q_seed = t.Sections.t_seed;
              q_error = e;
              q_attempts = attempt_no;
            }
          in
          report ~checkpoint:(`Quarantine q)
            (Printf.sprintf "%-6s d=%d seed=%d (%d/%d) QUARANTINED after %d \
                             attempts: %s"
               t.Sections.t_protocol t.Sections.t_degree t.Sections.t_seed
               !done_count n attempt_no e);
          Failed { error = e; attempts = attempt_no }
      in
      go 1
    end
  in
  let todo =
    Array.of_list
      (List.filter
         (fun i -> not (Hashtbl.mem pre (task_key tasks.(i))))
         (List.init n Fun.id))
  in
  let sub_outcomes =
    Pool.run ~jobs (Array.map (fun i -> timed_task tasks.(i)) todo)
  in
  let total = Unix.gettimeofday () -. t0 in
  let fresh = Hashtbl.create 64 in
  Array.iteri
    (fun k outcome -> Hashtbl.replace fresh (task_key tasks.(todo.(k))) outcome)
    sub_outcomes;
  (* Merge in canonical task order, whatever mix of checkpointed and
     freshly-run outcomes we have: this is what makes an interrupted+resumed
     campaign's artifact byte-identical to an uninterrupted one. *)
  let cells = ref [] and quarantined = ref [] in
  Array.iter
    (fun t ->
      let key = task_key t in
      match Hashtbl.find_opt pre key with
      | Some (`Cell c) -> cells := c :: !cells
      | Some (`Quarantine q) -> quarantined := q :: !quarantined
      | None -> (
        match Hashtbl.find_opt fresh key with
        | Some (Done c) -> cells := c :: !cells
        | Some (Failed { error; attempts }) ->
          quarantined :=
            {
              Artifact.q_protocol = t.Sections.t_protocol;
              q_degree = t.Sections.t_degree;
              q_seed = t.Sections.t_seed;
              q_error = error;
              q_attempts = attempts;
            }
            :: !quarantined
        | Some Stopped | None -> ()))
    tasks;
  let cells = Array.of_list (List.rev !cells) in
  let quarantined = List.rev !quarantined in
  let timing =
    {
      Artifact.t_jobs = max 1 (min jobs (max 1 n));
      t_wall_s = total;
      t_cells =
        Array.to_list
          (Array.map
             (fun (c : Cell_result.t) ->
               {
                 Artifact.ct_protocol = c.Cell_result.protocol;
                 ct_degree = c.Cell_result.degree;
                 ct_seed = c.Cell_result.seed;
                 ct_wall_s = c.Cell_result.wall_s;
                 ct_perf = c.Cell_result.perf;
               })
             cells);
    }
  in
  (cells, quarantined, timing)

let missing_count ~total (cells : Cell_result.t array)
    (quarantined : Artifact.quarantine list) =
  total - Array.length cells - List.length quarantined

let artifact_of ~(section : Sections.t) ~mode ?timing ?quarantined sweep cells =
  Artifact.build ~section:section.Sections.name ?timing ?quarantined
    ~include_series:section.Sections.include_series
    (Artifact.params_of_sweep ~mode sweep)
    (Array.to_list cells)

let run ?jobs ?progress ?heartbeat ?cell_budget ?retries ?hang ?stop_after
    ?journal ?completed ?prior_quarantine ~mode sweep (section : Sections.t) =
  let cells, quarantined, timing =
    run_tasks ?jobs ?progress ?heartbeat ?cell_budget ?retries ?hang
      ?stop_after ?journal ?completed ?prior_quarantine
      (section.Sections.tasks sweep)
  in
  artifact_of ~section ~mode ~timing ~quarantined sweep cells
