(* A cell that hangs or crashes must not take the campaign down with it: the
   whole point of a 240-cell overnight sweep is that cell 173 misbehaving
   still leaves 239 rows of data. Each task therefore runs under an optional
   wall-clock budget (cooperative: Dessim.Scheduler.run checks the deadline
   between events, which covers every real cell since cells are simulator
   runs) and a bounded number of same-seed retries — a timeout on a loaded
   machine is the one failure a retry can genuinely cure. What still fails
   is quarantined into the artifact rather than aborted on.

   The same cooperative poll carries the graceful-stop flag
   (Dessim.Scheduler.request_stop, set by the CLI's SIGINT/SIGTERM handler):
   a stopped campaign abandons in-flight cells cleanly (no quarantine entry,
   no journal record — they are simply "missing"), stops starting new ones,
   and leaves recovery to the journal + resume path below. *)

type outcome =
  | Done of Cell_result.t
  | Failed of { error : string; attempts : int }
  | Stopped  (** abandoned because a graceful stop was requested; the cell is
                 neither a result nor a quarantine — just missing *)

(* The CI hook that proves the watchdog works: a scheduler that reschedules
   itself forever, exactly the shape of a runaway simulation. Only
   interruptible by the wall budget, so requiring [cell_budget] alongside
   [hang] (checked in run_tasks) keeps a mistyped flag from hanging CI. *)
let hang_forever () =
  let s = Dessim.Scheduler.create () in
  let rec tick () = ignore (Dessim.Scheduler.after s ~delay:1.0 tick) in
  tick ();
  Dessim.Scheduler.run s;
  assert false

let attempt_task ?cell_budget ~hung (t : Sections.task) =
  let body () = if hung then hang_forever () else t.Sections.t_run () in
  let guarded () =
    match cell_budget with
    | None -> body ()
    | Some b -> Dessim.Scheduler.with_wall_budget b body
  in
  match guarded () with
  | cell -> Ok cell
  | exception Dessim.Scheduler.Stop_requested -> Error `Stop
  | exception Dessim.Scheduler.Wall_timeout ->
    Error
      (`Fail
        (Printf.sprintf "wall budget exceeded (%.1f s)"
           (Option.value cell_budget ~default:0.)))
  | exception exn -> Error (`Fail (Printexc.to_string exn))

let task_key (t : Sections.task) =
  (t.Sections.t_protocol, t.Sections.t_degree, t.Sections.t_seed)

let attempt_once ?cell_budget ?(hung = false) (t : Sections.task) =
  match attempt_task ?cell_budget ~hung t with
  | Ok c -> Ok c
  | Error `Stop -> Error "stop requested"
  | Error (`Fail e) -> Error e

type backend = Domains | Proc of { argv : string array }

let run_tasks ?(jobs = 1) ?(progress = fun _ -> ()) ?(heartbeat = fun _ -> ())
    ?cell_budget ?(retries = 1) ?hang ?stop_after ?journal ?cache
    ?(backend = Domains) ?(completed = []) ?(prior_quarantine = [])
    (tasks : Sections.task array) =
  if retries < 0 then invalid_arg "Driver.run_tasks: retries must be >= 0";
  (match (hang, cell_budget) with
  | Some _, None ->
    invalid_arg "Driver.run_tasks: hang requires a cell_budget to escape"
  | _ -> ());
  (match stop_after with
  | Some k when k < 1 -> invalid_arg "Driver.run_tasks: stop_after must be >= 1"
  | _ -> ());
  let n = Array.length tasks in
  (* Checkpointed outcomes from a previous (interrupted) run: these cells are
     not re-run; they re-enter the merge at their canonical position. *)
  let pre = Hashtbl.create 64 in
  List.iter
    (fun (c : Cell_result.t) ->
      Hashtbl.replace pre (Cell_result.key c) (`Cell c))
    completed;
  List.iter
    (fun (q : Artifact.quarantine) ->
      Hashtbl.replace pre (Artifact.quarantine_key q) (`Quarantine q))
    prior_quarantine;
  let task_keys = Hashtbl.create 64 in
  Array.iter (fun t -> Hashtbl.replace task_keys (task_key t) ()) tasks;
  Hashtbl.iter
    (fun (p, d, s) _ ->
      if not (Hashtbl.mem task_keys (p, d, s)) then
        invalid_arg
          (Printf.sprintf
             "Driver.run_tasks: checkpointed cell (%s, %d, %d) is not in the \
              task decomposition"
             p d s))
    pre;
  (* Cache consultation, before any scheduling: hits enter [pre] exactly
     like checkpoint-recovered cells — merged at canonical positions, not
     journaled (the journal records work done *this* process), not counted
     by the heartbeat's ETA extrapolation. *)
  let cache_hits = ref 0 in
  (match cache with
  | None -> ()
  | Some c ->
    Array.iter
      (fun t ->
        let ((p, d, s) as key) = task_key t in
        if not (Hashtbl.mem pre key) then
          match Cache.find c ~protocol:p ~degree:d ~seed:s with
          | Some cell ->
            Hashtbl.replace pre key (`Cell cell);
            incr cache_hits
          | None -> ())
      tasks;
    let hits, misses = Cache.stats c in
    progress
      (Printf.sprintf "cache: %d of %d cells from cache, %d to run" hits
         (hits + misses) misses));
  let base_done = Hashtbl.length pre in
  let done_count = ref base_done in
  (* Scheduler events fired by freshly-run cells: the numerator of the
     heartbeat's aggregate events/sec (checkpointed cells did their events in
     a previous process, so they count for neither side of the rate). *)
  let events_done = ref 0 in
  let progress_mutex = Mutex.create () in
  let t0 = Unix.gettimeofday () in
  let rate_string v =
    if v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
    else if v >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
    else Printf.sprintf "%.1f" v
  in
  (* Everything that happens "when a cell finishes" is serialized here: the
     journal append (checkpoint durable before the count moves), the
     progress line, the heartbeat, and the stop-after test hook. *)
  let report ?checkpoint line =
    Mutex.protect progress_mutex (fun () ->
        (match (journal, checkpoint) with
        | Some j, Some (`Cell c) -> Journal.append_cell j c
        | Some j, Some (`Quarantine q) -> Journal.append_quarantine j q
        | _ -> ());
        (match checkpoint with
        | Some (`Cell (c : Cell_result.t)) ->
          events_done := !events_done + c.Cell_result.events
        | _ -> ());
        incr done_count;
        progress line;
        let done_here = !done_count - base_done in
        let remaining = n - !done_count in
        if done_here > 0 && remaining > 0 then begin
          let elapsed = Unix.gettimeofday () -. t0 in
          let throughput =
            if elapsed > 0. then
              Printf.sprintf ", %s cells/s, %s events/s"
                (rate_string (float_of_int done_here /. elapsed))
                (rate_string (float_of_int !events_done /. elapsed))
            else ""
          in
          let cached =
            if !cache_hits > 0 then Printf.sprintf ", %d cached" !cache_hits
            else ""
          in
          heartbeat
            (Printf.sprintf "%d/%d cells, %.1f s elapsed, ETA %.0f s%s%s"
               !done_count n elapsed
               (elapsed /. float_of_int done_here *. float_of_int remaining)
               throughput cached)
        end;
        match stop_after with
        | Some k when done_here >= k -> Dessim.Scheduler.request_stop ()
        | _ -> ())
  in
  let timed_task (t : Sections.task) () =
    if Dessim.Scheduler.stop_requested () then Stopped
    else begin
      let hung = hang = Some (task_key t) in
      let rec go attempt_no =
        let a0 = Unix.gettimeofday () in
        let result = attempt_task ?cell_budget ~hung t in
        let wall = Unix.gettimeofday () -. a0 in
        match result with
        | Ok cell ->
          let cell = { cell with Cell_result.wall_s = wall } in
          Option.iter (fun c -> Cache.store c cell) cache;
          report ~checkpoint:(`Cell cell)
            (Printf.sprintf "%-6s d=%d seed=%d (%d/%d) %.2fs"
               t.Sections.t_protocol t.Sections.t_degree t.Sections.t_seed
               !done_count n wall);
          Done cell
        | Error `Stop ->
          Mutex.protect progress_mutex (fun () ->
              progress
                (Printf.sprintf "%-6s d=%d seed=%d abandoned (stop requested)"
                   t.Sections.t_protocol t.Sections.t_degree t.Sections.t_seed));
          Stopped
        | Error (`Fail e) when attempt_no <= retries ->
          Mutex.protect progress_mutex (fun () ->
              progress
                (Printf.sprintf "%-6s d=%d seed=%d attempt %d failed (%s), retrying"
                   t.Sections.t_protocol t.Sections.t_degree t.Sections.t_seed
                   attempt_no e));
          go (attempt_no + 1)
        | Error (`Fail e) ->
          let q =
            {
              Artifact.q_protocol = t.Sections.t_protocol;
              q_degree = t.Sections.t_degree;
              q_seed = t.Sections.t_seed;
              q_error = e;
              q_attempts = attempt_no;
            }
          in
          report ~checkpoint:(`Quarantine q)
            (Printf.sprintf "%-6s d=%d seed=%d (%d/%d) QUARANTINED after %d \
                             attempts: %s"
               t.Sections.t_protocol t.Sections.t_degree t.Sections.t_seed
               !done_count n attempt_no e);
          Failed { error = e; attempts = attempt_no }
      in
      go 1
    end
  in
  let todo =
    Array.of_list
      (List.filter
         (fun i -> not (Hashtbl.mem pre (task_key tasks.(i))))
         (List.init n Fun.id))
  in
  let exec_stats = ref None in
  let sub_outcomes =
    match backend with
    | Domains -> Pool.run ~jobs (Array.map (fun i -> timed_task tasks.(i)) todo)
    | Proc { argv } ->
      let results = Hashtbl.create 64 in
      let on_outcome = function
        | Proc_backend.Cell { index; cell } ->
          let t = tasks.(index) in
          if Cell_result.key cell <> task_key t then begin
            (* The worker rebuilt a different sweep than ours (version skew,
               wrong flags): its data is untrustworthy for this campaign. *)
            let error = "worker returned a cell for the wrong key" in
            let q =
              {
                Artifact.q_protocol = t.Sections.t_protocol;
                q_degree = t.Sections.t_degree;
                q_seed = t.Sections.t_seed;
                q_error = error;
                q_attempts = 1;
              }
            in
            report ~checkpoint:(`Quarantine q)
              (Printf.sprintf "%-6s d=%d seed=%d (%d/%d) QUARANTINED: %s"
                 t.Sections.t_protocol t.Sections.t_degree t.Sections.t_seed
                 !done_count n error);
            Hashtbl.replace results index (Failed { error; attempts = 1 })
          end
          else begin
            Option.iter (fun c -> Cache.store c cell) cache;
            report ~checkpoint:(`Cell cell)
              (Printf.sprintf "%-6s d=%d seed=%d (%d/%d) %.2fs"
                 t.Sections.t_protocol t.Sections.t_degree t.Sections.t_seed
                 !done_count n cell.Cell_result.wall_s);
            Hashtbl.replace results index (Done cell)
          end
        | Proc_backend.Quarantined { index; error; attempts } ->
          let t = tasks.(index) in
          let q =
            {
              Artifact.q_protocol = t.Sections.t_protocol;
              q_degree = t.Sections.t_degree;
              q_seed = t.Sections.t_seed;
              q_error = error;
              q_attempts = attempts;
            }
          in
          report ~checkpoint:(`Quarantine q)
            (Printf.sprintf
               "%-6s d=%d seed=%d (%d/%d) QUARANTINED after %d attempts: %s"
               t.Sections.t_protocol t.Sections.t_degree t.Sections.t_seed
               !done_count n attempts error);
          Hashtbl.replace results index (Failed { error; attempts })
      in
      (* The supervisor's no-sample deadline floor: twice the cooperative
         cell budget when one is set (the worker's own watchdog fires first
         for hung-but-responsive cells; the process deadline is the backstop
         for wedged ones), else the backend's 10 s default. *)
      let min_deadline =
        Option.map (fun b -> Float.max 10. (2. *. b)) cell_budget
      in
      let stats, leftovers =
        Proc_backend.run ~jobs ~argv ~indices:todo ~retries ?min_deadline
          ~progress:(fun l -> Mutex.protect progress_mutex (fun () -> progress l))
          ~on_outcome ()
      in
      exec_stats := Some stats;
      (* Graceful degradation: if the worker fleet collapsed (every slot
         retired), finish the remaining cells in-process rather than losing
         them — slower, but the campaign still completes. Leftovers from a
         requested stop stay abandoned, same as the domains backend. *)
      if leftovers <> [] && not (Dessim.Scheduler.stop_requested ()) then begin
        Mutex.protect progress_mutex (fun () ->
            progress
              (Printf.sprintf
                 "proc backend degraded: running %d remaining cell(s) \
                  in-process"
                 (List.length leftovers)));
        List.iter
          (fun i -> Hashtbl.replace results i (timed_task tasks.(i) ()))
          leftovers
      end;
      Array.map
        (fun i ->
          match Hashtbl.find_opt results i with Some o -> o | None -> Stopped)
        todo
  in
  let total = Unix.gettimeofday () -. t0 in
  let fresh = Hashtbl.create 64 in
  Array.iteri
    (fun k outcome -> Hashtbl.replace fresh (task_key tasks.(todo.(k))) outcome)
    sub_outcomes;
  (* Merge in canonical task order, whatever mix of checkpointed and
     freshly-run outcomes we have: this is what makes an interrupted+resumed
     campaign's artifact byte-identical to an uninterrupted one. *)
  let cells = ref [] and quarantined = ref [] in
  Array.iter
    (fun t ->
      let key = task_key t in
      match Hashtbl.find_opt pre key with
      | Some (`Cell c) -> cells := c :: !cells
      | Some (`Quarantine q) -> quarantined := q :: !quarantined
      | None -> (
        match Hashtbl.find_opt fresh key with
        | Some (Done c) -> cells := c :: !cells
        | Some (Failed { error; attempts }) ->
          quarantined :=
            {
              Artifact.q_protocol = t.Sections.t_protocol;
              q_degree = t.Sections.t_degree;
              q_seed = t.Sections.t_seed;
              q_error = error;
              q_attempts = attempts;
            }
            :: !quarantined
        | Some Stopped | None -> ()))
    tasks;
  let cells = Array.of_list (List.rev !cells) in
  let quarantined = List.rev !quarantined in
  (* The exec block appears only when this run used a cache or the proc
     backend: plain in-process campaigns keep their exact prior timing
     layout (and byte output). *)
  let exec =
    let hits, misses =
      match cache with Some c -> Cache.stats c | None -> (0, 0)
    in
    match (cache, backend, !exec_stats) with
    | None, Domains, _ -> None
    | Some _, Domains, _ ->
      Some
        {
          Artifact.x_backend = "domains";
          x_cache_hits = hits;
          x_cache_misses = misses;
          x_spawns = 0;
          x_restarts = 0;
          x_worker_cells = [];
        }
    | _, Proc _, st ->
      let st =
        Option.value st
          ~default:
            { Proc_backend.p_spawns = 0; p_restarts = 0; p_slot_cells = [] }
      in
      Some
        {
          Artifact.x_backend = "proc";
          x_cache_hits = hits;
          x_cache_misses = misses;
          x_spawns = st.Proc_backend.p_spawns;
          x_restarts = st.Proc_backend.p_restarts;
          x_worker_cells = st.Proc_backend.p_slot_cells;
        }
  in
  let timing =
    {
      Artifact.t_jobs = max 1 (min jobs (max 1 n));
      t_wall_s = total;
      t_exec = exec;
      t_cells =
        Array.to_list
          (Array.map
             (fun (c : Cell_result.t) ->
               {
                 Artifact.ct_protocol = c.Cell_result.protocol;
                 ct_degree = c.Cell_result.degree;
                 ct_seed = c.Cell_result.seed;
                 ct_wall_s = c.Cell_result.wall_s;
                 ct_perf = c.Cell_result.perf;
               })
             cells);
    }
  in
  (cells, quarantined, timing)

let missing_count ~total (cells : Cell_result.t array)
    (quarantined : Artifact.quarantine list) =
  total - Array.length cells - List.length quarantined

let artifact_of ~(section : Sections.t) ~mode ?timing ?quarantined sweep cells =
  Artifact.build ~section:section.Sections.name ?timing ?quarantined
    ~include_series:section.Sections.include_series
    (Artifact.params_of_sweep ~mode sweep)
    (Array.to_list cells)

let run ?jobs ?progress ?heartbeat ?cell_budget ?retries ?hang ?stop_after
    ?journal ?cache ?backend ?completed ?prior_quarantine ~mode sweep
    (section : Sections.t) =
  let cells, quarantined, timing =
    run_tasks ?jobs ?progress ?heartbeat ?cell_budget ?retries ?hang
      ?stop_after ?journal ?cache ?backend ?completed ?prior_quarantine
      (section.Sections.tasks sweep)
  in
  artifact_of ~section ~mode ~timing ~quarantined sweep cells
