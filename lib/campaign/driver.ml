(* A cell that hangs or crashes must not take the campaign down with it: the
   whole point of a 240-cell overnight sweep is that cell 173 misbehaving
   still leaves 239 rows of data. Each task therefore runs under an optional
   wall-clock budget (cooperative: Dessim.Scheduler.run checks the deadline
   between events, which covers every real cell since cells are simulator
   runs) and a bounded number of same-seed retries — a timeout on a loaded
   machine is the one failure a retry can genuinely cure. What still fails
   is quarantined into the artifact rather than aborted on. *)

type outcome =
  | Done of Cell_result.t
  | Failed of { error : string; attempts : int }

(* The CI hook that proves the watchdog works: a scheduler that reschedules
   itself forever, exactly the shape of a runaway simulation. Only
   interruptible by the wall budget, so requiring [cell_budget] alongside
   [hang] (checked in run_tasks) keeps a mistyped flag from hanging CI. *)
let hang_forever () =
  let s = Dessim.Scheduler.create () in
  let rec tick () = ignore (Dessim.Scheduler.after s ~delay:1.0 tick) in
  tick ();
  Dessim.Scheduler.run s;
  assert false

let attempt_task ?cell_budget ~hung (t : Sections.task) =
  let body () = if hung then hang_forever () else t.Sections.t_run () in
  let guarded () =
    match cell_budget with
    | None -> body ()
    | Some b -> Dessim.Scheduler.with_wall_budget b body
  in
  match guarded () with
  | cell -> Ok cell
  | exception Dessim.Scheduler.Wall_timeout ->
    Error
      (Printf.sprintf "wall budget exceeded (%.1f s)"
         (Option.value cell_budget ~default:0.))
  | exception exn -> Error (Printexc.to_string exn)

let task_key (t : Sections.task) =
  (t.Sections.t_protocol, t.Sections.t_degree, t.Sections.t_seed)

let run_tasks ?(jobs = 1) ?(progress = fun _ -> ()) ?cell_budget ?(retries = 1)
    ?hang (tasks : Sections.task array) =
  if retries < 0 then invalid_arg "Driver.run_tasks: retries must be >= 0";
  (match (hang, cell_budget) with
  | Some _, None ->
    invalid_arg "Driver.run_tasks: hang requires a cell_budget to escape"
  | _ -> ());
  let n = Array.length tasks in
  let done_count = ref 0 in
  let progress_mutex = Mutex.create () in
  let report line =
    Mutex.protect progress_mutex (fun () ->
        incr done_count;
        progress line)
  in
  let timed_task (t : Sections.task) () =
    let hung = hang = Some (task_key t) in
    let rec go attempt_no =
      let t0 = Unix.gettimeofday () in
      let result = attempt_task ?cell_budget ~hung t in
      let wall = Unix.gettimeofday () -. t0 in
      match result with
      | Ok cell ->
        report
          (Printf.sprintf "%-6s d=%d seed=%d (%d/%d) %.2fs"
             t.Sections.t_protocol t.Sections.t_degree t.Sections.t_seed
             !done_count n wall);
        Done { cell with Cell_result.wall_s = wall }
      | Error e when attempt_no <= retries ->
        Mutex.protect progress_mutex (fun () ->
            progress
              (Printf.sprintf "%-6s d=%d seed=%d attempt %d failed (%s), retrying"
                 t.Sections.t_protocol t.Sections.t_degree t.Sections.t_seed
                 attempt_no e));
        go (attempt_no + 1)
      | Error e ->
        report
          (Printf.sprintf "%-6s d=%d seed=%d (%d/%d) QUARANTINED after %d \
                           attempts: %s"
             t.Sections.t_protocol t.Sections.t_degree t.Sections.t_seed
             !done_count n attempt_no e);
        Failed { error = e; attempts = attempt_no }
    in
    go 1
  in
  let t0 = Unix.gettimeofday () in
  let outcomes = Pool.run ~jobs (Array.map timed_task tasks) in
  let total = Unix.gettimeofday () -. t0 in
  let cells = ref [] and quarantined = ref [] in
  Array.iteri
    (fun i outcome ->
      let t = tasks.(i) in
      match outcome with
      | Done c -> cells := c :: !cells
      | Failed { error; attempts } ->
        quarantined :=
          {
            Artifact.q_protocol = t.Sections.t_protocol;
            q_degree = t.Sections.t_degree;
            q_seed = t.Sections.t_seed;
            q_error = error;
            q_attempts = attempts;
          }
          :: !quarantined)
    outcomes;
  let cells = Array.of_list (List.rev !cells) in
  let quarantined = List.rev !quarantined in
  let timing =
    {
      Artifact.t_jobs = max 1 (min jobs (max 1 n));
      t_wall_s = total;
      t_cells =
        Array.to_list
          (Array.map
             (fun (c : Cell_result.t) ->
               {
                 Artifact.ct_protocol = c.Cell_result.protocol;
                 ct_degree = c.Cell_result.degree;
                 ct_seed = c.Cell_result.seed;
                 ct_wall_s = c.Cell_result.wall_s;
               })
             cells);
    }
  in
  (cells, quarantined, timing)

let artifact_of ~(section : Sections.t) ~mode ?timing ?quarantined sweep cells =
  Artifact.build ~section:section.Sections.name ?timing ?quarantined
    ~include_series:section.Sections.include_series
    (Artifact.params_of_sweep ~mode sweep)
    (Array.to_list cells)

let run ?jobs ?progress ?cell_budget ?retries ?hang ~mode sweep
    (section : Sections.t) =
  let cells, quarantined, timing =
    run_tasks ?jobs ?progress ?cell_budget ?retries ?hang
      (section.Sections.tasks sweep)
  in
  artifact_of ~section ~mode ~timing ~quarantined sweep cells
