(* Parent/child halves of the multi-process backend. Both halves treat the
   pipe protocol with journal-grade suspicion: every worker->parent record
   is CRC-framed (Journal.frame), and any malformed or out-of-sequence
   record is handled as a worker fault — kill, respawn, re-queue — never
   as campaign data. *)

let rec restart_on_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_eintr f

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then
      go (off + restart_on_eintr (fun () -> Unix.write fd b off (len - off)))
  in
  go 0

let close_noerr fd = try Unix.close fd with Unix.Unix_error _ -> ()

let send fd j = write_all fd (Journal.frame (Obs.Json.to_string j))

(* ---------- child ---------- *)

let worker ~run_cell () =
  (* Ctrl-C belongs to the supervisor: it decides whether to let in-flight
     cells finish. Workers are shut down by stdin EOF or SIGKILL. *)
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  (* The heartbeat is a SIGALRM handler writing one byte to stderr. OCaml
     runs signal handlers at safe points of the main program, so each byte
     proves the cell's loop is advancing — a worker wedged in a C stub or
     a pathological allocation stops beating even though the process
     lives. *)
  let hb = Bytes.of_string "h" in
  Sys.set_signal Sys.sigalrm
    (Sys.Signal_handle
       (fun _ ->
         try ignore (Unix.write Unix.stderr hb 0 1) with Unix.Unix_error _ -> ()));
  let heartbeat on =
    let v = if on then 0.5 else 0. in
    ignore
      (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = v; it_value = v })
  in
  let buf = Buffer.create 64 in
  let chunk = Bytes.create 256 in
  let rec read_line () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | Some i ->
      Buffer.clear buf;
      Buffer.add_string buf (String.sub s (i + 1) (String.length s - i - 1));
      Some (String.sub s 0 i)
    | None -> (
      match restart_on_eintr (fun () -> Unix.read Unix.stdin chunk 0 256) with
      | 0 -> None
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        read_line ())
  in
  send Unix.stdout (Obj [ ("type", String "ready") ]);
  let rec serve () : 'a =
    match read_line () with
    | None -> exit 0
    | Some line -> (
      match int_of_string_opt (String.trim line) with
      | None -> exit 2
      | Some i ->
        send Unix.stdout (Obj [ ("type", String "start"); ("i", Int i) ]);
        heartbeat true;
        let result =
          try run_cell i with exn -> Error (Printexc.to_string exn)
        in
        heartbeat false;
        (match result with
        | Ok (wall, cell) ->
          send Unix.stdout
            (Obj
               [
                 ("type", String "cell");
                 ("i", Int i);
                 ("wall_s", Float wall);
                 ("events", Int cell.Cell_result.events);
                 ( "perf",
                   Obj
                     (List.map
                        (fun (k, v) -> (k, Obs.Json.Float v))
                        cell.Cell_result.perf) );
                 ("cell", Cell_result.to_json ~include_series:true cell);
               ])
        | Error e ->
          send Unix.stdout
            (Obj [ ("type", String "failed"); ("i", Int i); ("error", String e) ]));
        serve ())
  in
  serve ()

(* ---------- parent ---------- *)

type outcome =
  | Cell of { index : int; cell : Cell_result.t }
  | Quarantined of { index : int; error : string; attempts : int }

type stats = { p_spawns : int; p_restarts : int; p_slot_cells : int list }

type assignment = {
  a_index : int;
  a_attempt : int;  (** 1-based *)
  mutable a_started : bool;  (** worker acknowledged with "start" *)
  mutable a_start_time : float;
  mutable a_deadline : float;  (** absolute; re-armed on "start" *)
  mutable a_last_hb : float;
}

type proc = {
  pid : int;
  stdin_w : Unix.file_descr;
  stdout_r : Unix.file_descr;
  stderr_r : Unix.file_descr;
  obuf : Buffer.t;  (** partial stdout line *)
  mutable ready : bool;
  mutable assignment : assignment option;
  mutable kill_reason : string option;
      (** set before SIGKILL so the death handler reports why, not just
          "killed by signal 9" *)
}

type slot = {
  id : int;
  mutable proc : proc option;
  mutable early_deaths : int;
      (** consecutive deaths before "ready" — an exec that cannot start *)
  mutable retired : bool;
  mutable cells : int;
}

(* OCaml signal numbers are its own negative encoding; name the ones a
   worker plausibly dies of. *)
let signal_name sg =
  if sg = Sys.sigkill then "SIGKILL"
  else if sg = Sys.sigsegv then "SIGSEGV"
  else if sg = Sys.sigterm then "SIGTERM"
  else if sg = Sys.sigabrt then "SIGABRT"
  else if sg = Sys.sigbus then "SIGBUS"
  else if sg = Sys.sigill then "SIGILL"
  else if sg = Sys.sigint then "SIGINT"
  else Printf.sprintf "signal %d" sg

let run ~jobs ~argv ~indices ~retries ?(min_deadline = 10.)
    ?(hb_timeout = 10.) ~progress ~on_outcome () =
  if jobs < 1 then invalid_arg "Proc_backend.run: jobs must be >= 1";
  (* A worker dying with unread pipe data would SIGPIPE the parent on the
     next dispatch; we want the EPIPE error instead, handled as a death. *)
  let prev_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigpipe prev_sigpipe)
  @@ fun () ->
  let pending = Queue.create () in
  Array.iter (fun i -> Queue.add i pending) indices;
  let failures = Hashtbl.create 16 in
  let fail_count i = Option.value (Hashtbl.find_opt failures i) ~default:0 in
  let spawns = ref 0 and restarts = ref 0 in
  (* Jacobson estimator over clean first-attempt cell times; retried
     attempts never feed it (Karn's rule), so a slow machine raises the
     deadline but a retry storm cannot. *)
  let srtt = ref None and rttvar = ref 0. in
  let sample_rtt s =
    match !srtt with
    | None ->
      srtt := Some s;
      rttvar := s /. 2.
    | Some old ->
      rttvar := (0.75 *. !rttvar) +. (0.25 *. Float.abs (old -. s));
      srtt := Some ((0.875 *. old) +. (0.125 *. s))
  in
  let deadline_for attempt =
    let base =
      match !srtt with
      | Some s -> Float.max min_deadline (s +. (4. *. !rttvar))
      | None -> min_deadline
    in
    base *. (2. ** float_of_int (attempt - 1))
  in
  let slots =
    Array.init jobs (fun id ->
        { id; proc = None; early_deaths = 0; retired = false; cells = 0 })
  in
  let spawn slot =
    match
      let in_r, in_w = Unix.pipe ~cloexec:true () in
      let out_r, out_w = Unix.pipe ~cloexec:true () in
      let err_r, err_w = Unix.pipe ~cloexec:true () in
      let pid =
        try Unix.create_process argv.(0) argv in_r out_w err_w
        with exn ->
          List.iter close_noerr [ in_r; in_w; out_r; out_w; err_r; err_w ];
          raise exn
      in
      Unix.close in_r;
      Unix.close out_w;
      Unix.close err_w;
      {
        pid;
        stdin_w = in_w;
        stdout_r = out_r;
        stderr_r = err_r;
        obuf = Buffer.create 256;
        ready = false;
        assignment = None;
        kill_reason = None;
      }
    with
    | p ->
      incr spawns;
      slot.proc <- Some p
    | exception _ ->
      (* fork failure: charge it like a pre-ready death *)
      slot.early_deaths <- slot.early_deaths + 1;
      if slot.early_deaths >= 3 then begin
        slot.retired <- true;
        progress
          (Printf.sprintf "proc: slot %d retired (%d consecutive spawn failures)"
             slot.id slot.early_deaths)
      end
  in
  (* Charge one failed attempt to [index]; re-queue or quarantine. *)
  let fail_index index error =
    let f = fail_count index + 1 in
    Hashtbl.replace failures index f;
    if f > retries then
      on_outcome (Quarantined { index; error; attempts = f })
    else begin
      progress
        (Printf.sprintf "proc: cell %d attempt %d failed (%s), re-queued" index
           f error);
      Queue.add index pending
    end
  in
  let kill_worker p reason =
    if p.kill_reason = None then begin
      p.kill_reason <- Some reason;
      try Unix.kill p.pid Sys.sigkill with Unix.Unix_error _ -> ()
    end
  in
  let dispatch p =
    match Queue.take_opt pending with
    | None -> ()
    | Some index -> (
      let attempt = fail_count index + 1 in
      let now = Unix.gettimeofday () in
      let a =
        {
          a_index = index;
          a_attempt = attempt;
          a_started = false;
          a_start_time = now;
          a_deadline = now +. deadline_for attempt;
          a_last_hb = now;
        }
      in
      p.assignment <- Some a;
      try write_all p.stdin_w (string_of_int index ^ "\n")
      with Unix.Unix_error (Unix.EPIPE, _, _) ->
        (* Worker already dead; the cell never reached it, so give it back
           uncharged — the stdout EOF path reaps and respawns. *)
        p.assignment <- None;
        Queue.add index pending)
  in
  let handle_death slot p =
    (* Covers crash, OS kill, supervised kill, and voluntary exit: always
       reached via stdout EOF, so every line the worker managed to write
       has been processed first. *)
    (try Unix.kill p.pid Sys.sigkill with Unix.Unix_error _ -> ());
    let _, status = restart_on_eintr (fun () -> Unix.waitpid [] p.pid) in
    close_noerr p.stdin_w;
    close_noerr p.stdout_r;
    close_noerr p.stderr_r;
    slot.proc <- None;
    (match p.assignment with
    | Some a ->
      let error =
        match p.kill_reason with
        | Some r -> r
        | None -> (
          match status with
          | Unix.WSIGNALED sg ->
            Printf.sprintf "worker killed by %s mid-cell" (signal_name sg)
          | Unix.WEXITED c ->
            Printf.sprintf "worker exited with code %d mid-cell" c
          | Unix.WSTOPPED _ -> "worker stopped mid-cell")
      in
      p.assignment <- None;
      fail_index a.a_index error
    | None -> ());
    if p.ready then begin
      incr restarts;
      progress
        (Printf.sprintf "proc: worker %d (slot %d) died (%s); respawning" p.pid
           slot.id
           (Option.value p.kill_reason
              ~default:
                (match status with
                | Unix.WSIGNALED sg -> signal_name sg
                | Unix.WEXITED c -> Printf.sprintf "exit %d" c
                | Unix.WSTOPPED _ -> "stopped")))
    end
    else begin
      slot.early_deaths <- slot.early_deaths + 1;
      if slot.early_deaths >= 3 then begin
        slot.retired <- true;
        progress
          (Printf.sprintf
             "proc: slot %d retired (%d consecutive deaths before ready)"
             slot.id slot.early_deaths)
      end
    end
  in
  let json_int name j = Option.bind (Obs.Json.member name j) Obs.Json.to_int in
  let json_str name j =
    Option.bind (Obs.Json.member name j) Obs.Json.to_string_val
  in
  let handle_msg slot p j =
    let proto_violation what =
      kill_worker p (Printf.sprintf "protocol violation (%s)" what)
    in
    match json_str "type" j with
    | Some "ready" ->
      p.ready <- true;
      slot.early_deaths <- 0
    | Some "start" -> (
      match (p.assignment, json_int "i" j) with
      | Some a, Some i when i = a.a_index ->
        let now = Unix.gettimeofday () in
        a.a_started <- true;
        a.a_start_time <- now;
        a.a_last_hb <- now;
        (* Re-arm from the acknowledgement: queueing delay between dispatch
           and pickup should not eat into the cell's own budget. *)
        a.a_deadline <- now +. deadline_for a.a_attempt
      | _ -> proto_violation "unexpected start")
    | Some "cell" -> (
      match (p.assignment, json_int "i" j) with
      | Some a, Some i when i = a.a_index -> (
        let cell =
          match Obs.Json.member "cell" j with
          | Some cj -> Cell_result.of_json cj
          | None -> Error "missing cell field"
        in
        match cell with
        | Error e ->
          p.assignment <- None;
          fail_index i (Printf.sprintf "worker returned a bad cell row: %s" e)
        | Ok c ->
          let wall =
            Option.value
              (Option.bind (Obs.Json.member "wall_s" j) Obs.Json.to_float)
              ~default:0.
          in
          let events = Option.value (json_int "events" j) ~default:0 in
          let perf =
            match Obs.Json.member "perf" j with
            | Some (Obs.Json.Obj kvs) ->
              List.filter_map
                (fun (k, v) ->
                  Option.map (fun f -> (k, f)) (Obs.Json.to_float v))
                kvs
            | _ -> []
          in
          let c = { c with Cell_result.wall_s = wall; events; perf } in
          p.assignment <- None;
          slot.cells <- slot.cells + 1;
          if a.a_attempt = 1 && p.kill_reason = None then
            sample_rtt (Unix.gettimeofday () -. a.a_start_time);
          on_outcome (Cell { index = i; cell = c }))
      | _ -> proto_violation "unexpected cell")
    | Some "failed" -> (
      match (p.assignment, json_int "i" j) with
      | Some a, Some i when i = a.a_index ->
        p.assignment <- None;
        fail_index i
          (Option.value (json_str "error" j) ~default:"worker reported failure")
      | _ -> proto_violation "unexpected failed")
    | _ -> proto_violation "unknown record type"
  in
  let chunk = Bytes.create 4096 in
  let drain_stdout slot p =
    match restart_on_eintr (fun () -> Unix.read p.stdout_r chunk 0 4096) with
    | 0 -> handle_death slot p
    | n ->
      Buffer.add_subbytes p.obuf chunk 0 n;
      let rec lines () =
        (* [slot.proc] may have been cleared by a kill inside handle_msg;
           the buffered lines still belong to this proc, keep going. *)
        let s = Buffer.contents p.obuf in
        match String.index_opt s '\n' with
        | None -> ()
        | Some i ->
          Buffer.clear p.obuf;
          Buffer.add_string p.obuf (String.sub s (i + 1) (String.length s - i - 1));
          let line = String.sub s 0 i in
          (match Journal.unframe line with
          | Ok j -> handle_msg slot p j
          | Error e -> kill_worker p (Printf.sprintf "corrupt record (%s)" e));
          lines ()
      in
      lines ()
  in
  let drain_stderr p =
    match restart_on_eintr (fun () -> Unix.read p.stderr_r chunk 0 4096) with
    | 0 -> () (* death is detected on stdout EOF *)
    | _ -> (
      match p.assignment with
      | Some a -> a.a_last_hb <- Unix.gettimeofday ()
      | None -> ())
  in
  let check_timers now p =
    match p.assignment with
    | Some a when p.kill_reason = None ->
      if now > a.a_deadline then
        kill_worker p
          (Printf.sprintf "cell deadline exceeded (%.1f s, attempt %d)"
             (a.a_deadline -. a.a_start_time)
             a.a_attempt)
      else if a.a_started && now -. a.a_last_hb > hb_timeout then
        kill_worker p
          (Printf.sprintf "heartbeat silent for %.1f s mid-cell"
             (now -. a.a_last_hb))
    | _ -> ()
  in
  let work_remains () =
    (not (Queue.is_empty pending))
    || Array.exists
         (fun s ->
           match s.proc with
           | Some p -> Option.is_some p.assignment
           | None -> false)
         slots
  in
  let all_retired () = Array.for_all (fun s -> s.retired) slots in
  let stopping = ref false in
  while work_remains () && not !stopping && not (all_retired ()) do
    if Dessim.Scheduler.stop_requested () then stopping := true
    else begin
      Array.iter
        (fun s -> if (not s.retired) && s.proc = None then spawn s)
        slots;
      Array.iter
        (fun s ->
          match s.proc with
          | Some p
            when p.ready && Option.is_none p.assignment
                 && p.kill_reason = None ->
            dispatch p
          | _ -> ())
        slots;
      let fds =
        Array.fold_left
          (fun acc s ->
            match s.proc with
            | Some p -> p.stdout_r :: p.stderr_r :: acc
            | None -> acc)
          [] slots
      in
      if fds = [] then
        (* every live slot failed to spawn this round; back off briefly *)
        ignore (restart_on_eintr (fun () -> Unix.select [] [] [] 0.05))
      else begin
        let readable, _, _ =
          restart_on_eintr (fun () -> Unix.select fds [] [] 0.25)
        in
        Array.iter
          (fun s ->
            match s.proc with
            | Some p ->
              if List.memq p.stderr_r readable then drain_stderr p;
              (match s.proc with
              | Some p' when p' == p && List.memq p.stdout_r readable ->
                drain_stdout s p
              | _ -> ())
            | None -> ())
          slots;
        let now = Unix.gettimeofday () in
        Array.iter
          (fun s -> match s.proc with Some p -> check_timers now p | None -> ())
          slots
      end
    end
  done;
  (* Leftovers — indices with no outcome — before teardown wipes the
     in-flight assignments. Pending first, then in-flight, in slot order. *)
  let in_flight =
    List.filter_map
      (fun s ->
        match s.proc with
        | Some { assignment = Some a; _ } -> Some a.a_index
        | _ -> None)
      (Array.to_list slots)
  in
  let leftovers = List.of_seq (Queue.to_seq pending) @ in_flight in
  Array.iter
    (fun s ->
      match s.proc with
      | Some p ->
        (* Idle workers get the polite shutdown (stdin EOF -> exit 0); a
           worker still holding a cell — only possible on a stop — is
           killed so teardown never blocks on it. *)
        close_noerr p.stdin_w;
        if Option.is_some p.assignment then
          (try Unix.kill p.pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (restart_on_eintr (fun () -> Unix.waitpid [] p.pid));
        close_noerr p.stdout_r;
        close_noerr p.stderr_r;
        s.proc <- None
      | None -> ())
    slots;
  ( {
      p_spawns = !spawns;
      p_restarts = !restarts;
      p_slot_cells = Array.to_list (Array.map (fun s -> s.cells) slots);
    },
    leftovers )
