(** Regression comparison between two campaign artifacts.

    [rcsim campaign diff A.json B.json] is built on this module: it matches
    cells by cell key and aggregates by (protocol, degree), and reports every
    scalar that moved by more than a tolerance. Because artifacts are
    deterministic (see {!Artifact}), the default tolerance is exact equality:
    any difference between two runs of the same sweep on the same code is a
    real behavioral change, not noise. The [timing] block and the recorded
    [git_sha] are ignored — they are {e expected} to differ between runs.

    Two NaNs compare equal (a metric that is undefined in both artifacts is
    not a regression). *)

type entry =
  | Params of { field : string; a : string; b : string }
      (** the sweeps are not comparable cell-by-cell (e.g. different seeds,
          degrees or mode); cells are still compared where keys match *)
  | Missing_cell of { only_in : [ `A | `B ]; protocol : string; degree : int; seed : int }
  | Missing_aggregate of { only_in : [ `A | `B ]; protocol : string; degree : int }
  | Cell_metric of {
      protocol : string;
      degree : int;
      seed : int;
      metric : string;
      a : float;
      b : float;
    }
  | Aggregate_metric of {
      protocol : string;
      degree : int;
      metric : string;  (** ["mean drops_no_route"]-style label *)
      a : float;
      b : float;
    }
  | Quarantine of {
      only_in : [ `A | `B ];
      protocol : string;
      degree : int;
      seed : int;
    }
      (** quarantine entries are matched by cell key only — their error text
          and attempt count are load-dependent, so two artifacts that
          quarantined the same cells agree *)

val pp_entry : entry Fmt.t

val artifacts : ?tol:float -> Artifact.t -> Artifact.t -> entry list
(** [artifacts a b] is every difference, cells first (in [a]'s cell order),
    then aggregates. [tol] (default [0.]) is the absolute deviation under
    which two scalars count as equal. [[]] means the artifacts agree on
    everything except (possibly) timing and git sha. *)
