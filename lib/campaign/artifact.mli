(** Versioned, machine-readable campaign artifacts ([BENCH_<section>.json]).

    An artifact is the single source of truth for one campaign section: the
    sweep parameters, one row per cell in cell-key order, per-(protocol,
    degree) aggregates (mean and standard deviation of every scalar metric,
    plus averaged time series where the section has them), and a [timing]
    block (worker count, total and per-cell wall-clock).

    {2 Schema v4}

    {v
    { "schema_version": 4,
      "kind": "rcsim-campaign",
      "section": "fig3",
      "git_sha": "<short sha or "unknown">",
      "params": { "mode": "full", "rows": 7, "cols": 7,
                  "degrees": [3,4,5,6,7,8], "runs": 10, "seed": 1,
                  "rate_pps": 200.0, "warmup": 390.0, "sim_end": 800.0 },
      "cells": [ { "protocol": "RIP", "degree": 3, "seed": 1,
                   "sent": ..., "drops_no_route": ..., ...,
                   "extras": {...}?, "axes": {...}?, "series": {...}? }, ... ],
      "quarantined": [ { "protocol": "RIP", "degree": 3, "seed": 7,
                         "error": "wall budget exceeded (2.0 s)",
                         "attempts": 2 }, ... ],
      "aggregates": [ { "protocol": "RIP", "degree": 3, "runs": 10,
                        "axes": {...}?,
                        "metrics": { "drops_no_route":
                                       { "mean": ..., "stddev": ... }, ... },
                        "series": {...}? }, ... ],
      "timing": { "jobs": 8, "wall_s": ...,
                  "cells": [ { "protocol": "RIP", "degree": 3, "seed": 1,
                               "wall_s": ...,
                               "perf": { "ns_per_event": ..., ... }? },
                             ... ] }? }
    v}

    Version history: v1 had no [quarantined] list ({!of_json} and {!validate}
    still accept it, reading an empty quarantine). v2 requires it — cells the
    {!Driver} gave up on (watchdog timeout or a raised exception, after
    bounded same-seed retries) are recorded there instead of aborting the
    whole campaign, and aggregates are computed from the surviving cells
    only. A key may not appear both as a cell and as a quarantine entry.
    v3 adds the optional per-cell ["perf"] object inside timing
    cells — machine-speed measurements from the perf section (ns/event,
    events/sec, GC promotion), kept in [timing] because they are as
    non-deterministic as wall time. v4 (current) adds the optional
    self-describing ["axes"] object on cells and aggregates: sections whose
    grid has more dimensions than (protocol, degree) — e.g. the resilience
    section's schedule x FRR x mesh-degree cross — name each coordinate
    explicitly, so readers need not decode the packed [degree] axis code.
    The writer stamps the lowest version whose features the file actually
    uses (an axes-free grid still writes byte-identical v3), so
    regenerating a pre-v4 artifact diffs clean across the version bump.

    Determinism contract: everything except [timing] is a pure function of
    (code, section, params) — cells are merged in cell-key order and
    aggregates are computed in that same order, so the {!canonical_string}
    (the artifact with [timing] removed) is byte-identical whatever [--jobs]
    was. [timing] is honest measurement and varies run to run; {!Diff}
    ignores it. *)

type params = {
  mode : string;  (** ["quick"], ["standard"] or ["full"] — which sweep
                      preset produced the artifact *)
  rows : int;
  cols : int;
  degrees : int list;
  runs : int;  (** seeds per (protocol, degree) cell *)
  seed : int;  (** base seed; cell [i] of a group uses [seed + i] *)
  rate_pps : float;
  warmup : float;
  sim_end : float;
}

type stat = { mean : float; stddev : float }
(** Population standard deviation, as {!Dessim.Stat.stddev}. *)

type aggregate = {
  a_protocol : string;
  a_degree : int;
  a_runs : int;
  a_axes : (string * string) list;
      (** the group's {!Cell_result.t.axes} annotation (cells sharing an
          axis code share their axes); empty on plain grids and pre-v4
          artifacts *)
  a_metrics : (string * stat) list;  (** one entry per scalar metric, in
                                         {!Cell_result.metrics} order *)
  a_series : (string * Cell_result.series) list;
      (** per-bucket (count, sum) averaged over the group's seeds — the same
          accumulate-then-scale rule as {!Convergence.Metrics.summarize} *)
}

type cell_timing = {
  ct_protocol : string;
  ct_degree : int;
  ct_seed : int;
  ct_wall_s : float;
  ct_perf : (string * float) list;
      (** the cell's {!Cell_result.t.perf} measurements; empty for sections
          that do not measure machine speed *)
}

type exec = {
  x_backend : string;  (** ["domains"] or ["proc"] *)
  x_cache_hits : int;  (** cells satisfied from the {!Cache} *)
  x_cache_misses : int;  (** cache lookups that had to run the cell *)
  x_spawns : int;  (** worker processes launched (proc backend; else 0) *)
  x_restarts : int;  (** supervised worker respawns (proc backend; else 0) *)
  x_worker_cells : int list;
      (** cells completed per worker slot, slot order; empty for domains *)
}
(** How a campaign's cells were executed. Like the rest of [timing], this
    is honest non-determinism — cache traffic and worker churn vary run to
    run — so it lives inside the strippable timing block and never affects
    {!canonical_string}. Serialized as an optional ["exec"] key: artifacts
    from plain in-process runs keep their exact pre-existing byte layout. *)

type timing = {
  t_jobs : int;
  t_wall_s : float;
  t_exec : exec option;  (** absent for plain in-process, uncached runs *)
  t_cells : cell_timing list;
}

type quarantine = {
  q_protocol : string;
  q_degree : int;
  q_seed : int;
  q_error : string;  (** why the cell's last attempt failed *)
  q_attempts : int;  (** total attempts made, including retries; [>= 1] *)
}
(** A cell the driver abandoned: every attempt either exceeded the wall-clock
    budget or raised. Quarantine is honest failure bookkeeping like [timing]
    ([q_error]/[q_attempts] can vary with machine load), so byte-determinism
    of {!canonical_string} is only guaranteed for artifacts whose quarantine
    is empty — {!Diff} accordingly compares quarantine entries by key only. *)

type t = {
  section : string;
  git_sha : string;
  params : params;
  cells : Cell_result.t list;  (** in canonical (task) order: engine-major,
                                    then degree, then seed *)
  quarantined : quarantine list;  (** in canonical task order, too *)
  aggregates : aggregate list;  (** one per (protocol, degree), in first-cell
                                    order, over surviving cells only *)
  timing : timing option;
  include_series : bool;  (** whether cell rows serialize their series *)
}

val quarantine_key : quarantine -> string * int * int
(** The (protocol, degree, seed) cell key the entry stands in for. *)

val quarantine_to_json : quarantine -> Obs.Json.t

val quarantine_of_json : Obs.Json.t -> (quarantine, string) result
(** The JSON codec for one quarantine entry, shared with {!Journal}'s
    per-record format. *)

val version : int
(** The newest schema version this module understands: [4]. The writer
    stamps [4] only on artifacts that use a v4 feature (an [axes]
    annotation); axes-free artifacts keep writing [3]. *)

val min_version : int
(** The oldest schema version {!of_json} and {!validate} accept: [1]. *)

val params_of_sweep : mode:string -> Convergence.Experiments.sweep -> params

val git_sha : unit -> string
(** The repository's short HEAD sha, or ["unknown"] outside a git checkout. *)

val aggregate : Cell_result.t list -> aggregate list
(** [aggregate cells] groups cells by (protocol, degree) in first-appearance
    order and computes mean/stddev of every scalar metric and the averaged
    series per group. Cells of one group must share the metric and series
    name sets. *)

val build :
  section:string ->
  ?git_sha:string ->
  ?timing:timing ->
  ?quarantined:quarantine list ->
  include_series:bool ->
  params ->
  Cell_result.t list ->
  t
(** [build ~section params cells] computes the aggregates and stamps the
    schema metadata. [cells] must already be in canonical cell order — the
    section's task order (engine-major, then degree, then seed), which is
    what {!Driver.run} produces; the order determines both the artifact's
    row order and the aggregates' (hence the tables') protocol column
    order. [?git_sha] defaults to {!git_sha}[ ()]; [?quarantined] (default
    none) records the cells the driver gave up on. *)

val to_json : t -> Obs.Json.t

val of_json : Obs.Json.t -> (t, string) result
(** Strict parse: fails on a missing field, a type mismatch, or an
    unsupported schema version. *)

val validate : Obs.Json.t -> string list
(** [validate j] is every schema violation found (empty = valid): required
    keys, types, schema version ([{!min_version}..{!version}]), the
    quarantine block (well-formed entries, no duplicate keys, no key that is
    also a completed cell, required from v2 on), and cells/aggregates
    consistency (each aggregate's [runs] equals its group's cell count).
    Unlike {!of_json} it keeps going after the first problem, for useful CI
    output. *)

val to_string : t -> string
(** Compact one-line JSON of the full artifact, including [timing]. *)

val canonical_string : t -> string
(** {!to_string} with [timing] removed — the byte-comparable form used by
    the determinism tests and the [--jobs]-invariance guarantee. *)

val write : path:string -> t -> unit
(** Write {!to_string} plus a trailing newline to [path], atomically
    ({!Rcutil.Atomic_file}): the file at [path] is never observable in a
    torn state, whatever kills the process mid-write. *)

val read : path:string -> (t, string) result
(** Read and parse an artifact file; [Error] names the file on I/O, JSON or
    schema failures. *)
