type entry =
  | Params of { field : string; a : string; b : string }
  | Missing_cell of { only_in : [ `A | `B ]; protocol : string; degree : int; seed : int }
  | Missing_aggregate of { only_in : [ `A | `B ]; protocol : string; degree : int }
  | Cell_metric of {
      protocol : string;
      degree : int;
      seed : int;
      metric : string;
      a : float;
      b : float;
    }
  | Aggregate_metric of {
      protocol : string;
      degree : int;
      metric : string;
      a : float;
      b : float;
    }
  | Quarantine of {
      only_in : [ `A | `B ];
      protocol : string;
      degree : int;
      seed : int;
    }

let side = function `A -> "A" | `B -> "B"

let pp_entry ppf = function
  | Params { field; a; b } ->
    Fmt.pf ppf "params.%s differs: %s vs %s" field a b
  | Missing_cell { only_in; protocol; degree; seed } ->
    Fmt.pf ppf "cell (%s, degree %d, seed %d) only in %s" protocol degree seed
      (side only_in)
  | Missing_aggregate { only_in; protocol; degree } ->
    Fmt.pf ppf "aggregate (%s, degree %d) only in %s" protocol degree
      (side only_in)
  | Cell_metric { protocol; degree; seed; metric; a; b } ->
    Fmt.pf ppf "cell (%s, degree %d, seed %d) %s: %g -> %g" protocol degree
      seed metric a b
  | Aggregate_metric { protocol; degree; metric; a; b } ->
    Fmt.pf ppf "aggregate (%s, degree %d) %s: %g -> %g" protocol degree metric
      a b
  | Quarantine { only_in; protocol; degree; seed } ->
    Fmt.pf ppf "cell (%s, degree %d, seed %d) quarantined only in %s" protocol
      degree seed (side only_in)

(* NaN = NaN here: "undefined in both" is agreement, not a regression. *)
let differs ~tol a b =
  if Float.is_nan a && Float.is_nan b then false
  else if Float.is_nan a || Float.is_nan b then true
  else Float.abs (a -. b) > tol

let param_entries (a : Artifact.params) (b : Artifact.params) =
  let p field av bv = Params { field; a = av; b = bv } in
  let str f av bv acc = if av <> bv then p f av bv :: acc else acc in
  let fint f av bv acc = if av <> bv then p f (string_of_int av) (string_of_int bv) :: acc else acc in
  let fflt f av bv acc = if av <> bv then p f (Fmt.str "%g" av) (Fmt.str "%g" bv) :: acc else acc in
  let degrees d = String.concat "," (List.map string_of_int d) in
  []
  |> str "mode" a.Artifact.mode b.Artifact.mode
  |> fint "rows" a.Artifact.rows b.Artifact.rows
  |> fint "cols" a.Artifact.cols b.Artifact.cols
  |> str "degrees" (degrees a.Artifact.degrees) (degrees b.Artifact.degrees)
  |> fint "runs" a.Artifact.runs b.Artifact.runs
  |> fint "seed" a.Artifact.seed b.Artifact.seed
  |> fflt "rate_pps" a.Artifact.rate_pps b.Artifact.rate_pps
  |> fflt "warmup" a.Artifact.warmup b.Artifact.warmup
  |> fflt "sim_end" a.Artifact.sim_end b.Artifact.sim_end
  |> List.rev

let artifacts ?(tol = 0.) (a : Artifact.t) (b : Artifact.t) =
  let entries = ref [] in
  let emit e = entries := e :: !entries in
  if a.Artifact.section <> b.Artifact.section then
    emit (Params { field = "section"; a = a.Artifact.section; b = b.Artifact.section });
  List.iter emit (param_entries a.Artifact.params b.Artifact.params);
  (* Cells, matched by key. *)
  let index cells =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (c : Cell_result.t) -> Hashtbl.replace tbl (Cell_result.key c) c)
      cells;
    tbl
  in
  let bi = index b.Artifact.cells in
  let ai = index a.Artifact.cells in
  List.iter
    (fun (ca : Cell_result.t) ->
      let protocol, degree, seed = Cell_result.key ca in
      match Hashtbl.find_opt bi (protocol, degree, seed) with
      | None -> emit (Missing_cell { only_in = `A; protocol; degree; seed })
      | Some cb ->
        let mb = Cell_result.metrics cb in
        List.iter
          (fun (metric, va) ->
            match List.assoc_opt metric mb with
            | Some vb when not (differs ~tol va vb) -> ()
            | Some vb ->
              emit (Cell_metric { protocol; degree; seed; metric; a = va; b = vb })
            | None ->
              emit
                (Cell_metric
                   { protocol; degree; seed; metric; a = va; b = Float.nan }))
          (Cell_result.metrics ca))
    a.Artifact.cells;
  List.iter
    (fun (cb : Cell_result.t) ->
      let protocol, degree, seed = Cell_result.key cb in
      if not (Hashtbl.mem ai (protocol, degree, seed)) then
        emit (Missing_cell { only_in = `B; protocol; degree; seed }))
    b.Artifact.cells;
  (* Quarantine, matched by key only: the error text and attempt count are
     wall-clock artifacts (machine load), not behavior. *)
  let qindex qs =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (q : Artifact.quarantine) ->
        Hashtbl.replace tbl (Artifact.quarantine_key q) ())
      qs;
    tbl
  in
  let aq = qindex a.Artifact.quarantined
  and bq = qindex b.Artifact.quarantined in
  List.iter
    (fun (q : Artifact.quarantine) ->
      let protocol, degree, seed = Artifact.quarantine_key q in
      if not (Hashtbl.mem bq (protocol, degree, seed)) then
        emit (Quarantine { only_in = `A; protocol; degree; seed }))
    a.Artifact.quarantined;
  List.iter
    (fun (q : Artifact.quarantine) ->
      let protocol, degree, seed = Artifact.quarantine_key q in
      if not (Hashtbl.mem aq (protocol, degree, seed)) then
        emit (Quarantine { only_in = `B; protocol; degree; seed }))
    b.Artifact.quarantined;
  (* Aggregates, matched by (protocol, degree). *)
  let agg_key (g : Artifact.aggregate) = (g.Artifact.a_protocol, g.Artifact.a_degree) in
  let bagg = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace bagg (agg_key g) g) b.Artifact.aggregates;
  List.iter
    (fun (ga : Artifact.aggregate) ->
      let protocol, degree = agg_key ga in
      match Hashtbl.find_opt bagg (protocol, degree) with
      | None -> emit (Missing_aggregate { only_in = `A; protocol; degree })
      | Some gb ->
        List.iter
          (fun (name, (sa : Artifact.stat)) ->
            match List.assoc_opt name gb.Artifact.a_metrics with
            | None ->
              emit
                (Aggregate_metric
                   {
                     protocol;
                     degree;
                     metric = "mean " ^ name;
                     a = sa.Artifact.mean;
                     b = Float.nan;
                   })
            | Some sb ->
              if differs ~tol sa.Artifact.mean sb.Artifact.mean then
                emit
                  (Aggregate_metric
                     {
                       protocol;
                       degree;
                       metric = "mean " ^ name;
                       a = sa.Artifact.mean;
                       b = sb.Artifact.mean;
                     });
              if differs ~tol sa.Artifact.stddev sb.Artifact.stddev then
                emit
                  (Aggregate_metric
                     {
                       protocol;
                       degree;
                       metric = "stddev " ^ name;
                       a = sa.Artifact.stddev;
                       b = sb.Artifact.stddev;
                     }))
          ga.Artifact.a_metrics)
    a.Artifact.aggregates;
  let aagg = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace aagg (agg_key g) g) a.Artifact.aggregates;
  List.iter
    (fun (gb : Artifact.aggregate) ->
      let protocol, degree = agg_key gb in
      if not (Hashtbl.mem aagg (protocol, degree)) then
        emit (Missing_aggregate { only_in = `B; protocol; degree }))
    b.Artifact.aggregates;
  List.rev !entries
