(** The typed outcome of one campaign cell.

    A cell is the unit of parallelism in a campaign: one seeded simulation of
    one (protocol, degree) configuration. Its result carries everything the
    paper reports per run — packet fates broken down by drop cause, loop
    escapees, convergence delays, control-plane volume — plus the cell key
    (protocol, degree, seed) that makes merging deterministic, optional
    section-specific scalar metrics ([extras]), optional windowed time
    series, and the cell's wall-clock cost.

    Two serialization rules keep campaign artifacts reproducible:
    - rows are written in cell-key order, so the artifact is byte-identical
      whatever the worker count or completion order;
    - [wall_s] is {e never} written into the row itself (it is inherently
      non-deterministic); the campaign driver stores it in the artifact's
      separate [timing] section, which canonicalization strips. *)

type series = {
  s_start : float;  (** left edge of the first bucket, in {e normalized}
                        seconds (0 = end of warm-up) *)
  s_width : float;  (** bucket width in seconds *)
  s_counts : float array;  (** per-bucket sample counts (fractional once
                               averaged over seeds) *)
  s_sums : float array;  (** per-bucket sample sums *)
}
(** A windowed slice of a {!Dessim.Series.t}, kept as raw (count, sum) pairs
    so that merging cells can average exactly the way
    {!Convergence.Metrics.summarize} does: accumulate, then scale by
    [1/runs]. *)

type t = {
  protocol : string;
  degree : int;
  seed : int;
  sent : int;
  delivered : int;
  drops_no_route : int;
  drops_ttl : int;
  drops_queue : int;
  drops_link : int;
  looped_delivered : int;
  looped_dropped : int;
  ctrl_messages : int;
  ctrl_bytes : int;
  fwd_convergence : float;  (** seconds; paper Fig. 6a *)
  routing_convergence : float;  (** seconds; paper Fig. 6b *)
  transient_paths : int;
  extras : (string * float) list;
      (** section-specific scalars (e.g. [delivery_ratio], [completion_s]),
          in a fixed per-section order *)
  axes : (string * string) list;
      (** self-describing grid coordinates (schema v4): sections whose grid
          has more dimensions than (protocol, degree) name each extra axis
          here — e.g. [("schedule", "flap"); ("frr", "on");
          ("mesh_degree", "4")] — so readers need not decode the packed
          [degree] axis code. Empty for plain (protocol, degree) grids and
          for rows read from pre-v4 artifacts. *)
  series : (string * series) list;
      (** windowed time series (e.g. ["throughput"], ["delay"]); serialized
          only for sections that render them *)
  wall_s : float;  (** wall-clock cost of the cell; excluded from the row's
                       serialization (see above) *)
  perf : (string * float) list;
      (** machine-speed measurements (ns/event, events/sec, GC promotion …)
          produced by the perf section; non-deterministic like [wall_s], so
          excluded from the row's serialization — the driver copies it into
          the artifact's strippable [timing] section *)
  events : int;
      (** scheduler events the cell's simulation fired; transient like
          [wall_s] (0 after deserialization) — feeds the driver's live
          events/sec heartbeat *)
}

val of_run : ?extras:(string * float) list -> ?axes:(string * string) list ->
  ?series:(string * series) list -> Convergence.Metrics.run -> t
(** [of_run run] lifts a single-flow run result into a cell row; [wall_s] is
    [0.] until the driver stamps it. *)

val of_multi : ?extras:(string * float) list -> ?axes:(string * string) list ->
  Convergence.Metrics.multi -> t
(** [of_multi m] lifts a multi-flow outcome: packet counters are summed over
    the flows, [fwd_convergence] is the per-flow mean, and
    [routing_convergence] spans all failures (as {!Convergence.Metrics}
    defines it). *)

val metrics : t -> (string * float) list
(** [metrics t] is every scalar of the row as an ordered [(name, value)]
    list: the standard fields (in declaration order, ints as floats) followed
    by [extras]. This is the list the aggregator takes means and standard
    deviations over, and the namespace table renderers select from. *)

val key : t -> string * int * int
(** [key t] is [(protocol, degree, seed)] — the unique cell identifier
    within a campaign. *)

val compare_key : t -> t -> int
(** Order by protocol (as listed, compared textually), then degree, then
    seed. *)

val windowed :
  warmup:float -> lo:float -> hi:float -> Dessim.Series.t -> series
(** [windowed ~warmup ~lo ~hi s] slices the buckets of [s] whose normalized
    left edge [t - warmup] lies in [[lo, hi]] — the same inclusive window
    {!Convergence.Report.series_table} prints. *)

val to_json : include_series:bool -> t -> Obs.Json.t
(** One JSON object per row. [include_series] controls whether the [series]
    field is written (sections that only render scalar tables omit it to keep
    artifacts small). [wall_s] is never written. Non-finite floats are
    written as [null] and read back as [nan]. *)

val of_json : Obs.Json.t -> (t, string) result
(** Inverse of {!to_json}; [wall_s] is [0.]. *)

val series_to_json : series -> Obs.Json.t
(** The [{start, width, counts, sums}] object used inside both cell rows and
    aggregates. *)

val series_of_json : Obs.Json.t -> series option
(** Inverse of {!series_to_json}; [None] on any malformation. *)
