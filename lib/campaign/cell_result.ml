type series = {
  s_start : float;
  s_width : float;
  s_counts : float array;
  s_sums : float array;
}

type t = {
  protocol : string;
  degree : int;
  seed : int;
  sent : int;
  delivered : int;
  drops_no_route : int;
  drops_ttl : int;
  drops_queue : int;
  drops_link : int;
  looped_delivered : int;
  looped_dropped : int;
  ctrl_messages : int;
  ctrl_bytes : int;
  fwd_convergence : float;
  routing_convergence : float;
  transient_paths : int;
  extras : (string * float) list;
  axes : (string * string) list;
  series : (string * series) list;
  wall_s : float;
  perf : (string * float) list;
  events : int;
}

let of_run ?(extras = []) ?(axes = []) ?(series = []) (r : Convergence.Metrics.run) =
  {
    protocol = r.Convergence.Metrics.protocol;
    degree = r.Convergence.Metrics.degree;
    seed = r.Convergence.Metrics.seed;
    sent = r.Convergence.Metrics.sent;
    delivered = r.Convergence.Metrics.delivered;
    drops_no_route = r.Convergence.Metrics.drops_no_route;
    drops_ttl = r.Convergence.Metrics.drops_ttl;
    drops_queue = r.Convergence.Metrics.drops_queue;
    drops_link = r.Convergence.Metrics.drops_link;
    looped_delivered = r.Convergence.Metrics.looped_delivered;
    looped_dropped = r.Convergence.Metrics.looped_dropped;
    ctrl_messages = r.Convergence.Metrics.ctrl_messages;
    ctrl_bytes = r.Convergence.Metrics.ctrl_bytes;
    fwd_convergence = r.Convergence.Metrics.fwd_convergence;
    routing_convergence = r.Convergence.Metrics.routing_convergence;
    transient_paths = r.Convergence.Metrics.transient_paths;
    extras;
    axes;
    series;
    wall_s = 0.;
    perf = [];
    events = r.Convergence.Metrics.sched_events;
  }

let of_multi ?(extras = []) ?(axes = []) (m : Convergence.Metrics.multi) =
  let flows = m.Convergence.Metrics.m_flows in
  let sum f = List.fold_left (fun acc fl -> acc + f fl) 0 flows in
  let mean f =
    Dessim.Stat.mean (List.map f flows)
  in
  {
    protocol = m.Convergence.Metrics.m_protocol;
    degree = m.Convergence.Metrics.m_degree;
    seed = m.Convergence.Metrics.m_seed;
    sent = Convergence.Metrics.multi_sent m;
    delivered = Convergence.Metrics.multi_delivered m;
    drops_no_route = sum (fun f -> f.Convergence.Metrics.f_drops_no_route);
    drops_ttl = sum (fun f -> f.Convergence.Metrics.f_drops_ttl);
    drops_queue = sum (fun f -> f.Convergence.Metrics.f_drops_queue);
    drops_link = sum (fun f -> f.Convergence.Metrics.f_drops_link);
    looped_delivered = sum (fun f -> f.Convergence.Metrics.f_looped_delivered);
    looped_dropped = sum (fun f -> f.Convergence.Metrics.f_looped_dropped);
    ctrl_messages = m.Convergence.Metrics.m_ctrl_messages;
    ctrl_bytes = m.Convergence.Metrics.m_ctrl_bytes;
    fwd_convergence = mean (fun f -> f.Convergence.Metrics.f_fwd_convergence);
    routing_convergence = m.Convergence.Metrics.m_routing_convergence;
    transient_paths = sum (fun f -> f.Convergence.Metrics.f_transient_paths);
    extras;
    axes;
    series = [];
    wall_s = 0.;
    perf = [];
    events = m.Convergence.Metrics.m_sched_events;
  }

let metrics t =
  [
    ("sent", float_of_int t.sent);
    ("delivered", float_of_int t.delivered);
    ("drops_no_route", float_of_int t.drops_no_route);
    ("drops_ttl", float_of_int t.drops_ttl);
    ("drops_queue", float_of_int t.drops_queue);
    ("drops_link", float_of_int t.drops_link);
    ("looped_delivered", float_of_int t.looped_delivered);
    ("looped_dropped", float_of_int t.looped_dropped);
    ("ctrl_messages", float_of_int t.ctrl_messages);
    ("ctrl_bytes", float_of_int t.ctrl_bytes);
    ("fwd_convergence", t.fwd_convergence);
    ("routing_convergence", t.routing_convergence);
    ("transient_paths", float_of_int t.transient_paths);
  ]
  @ t.extras

let key t = (t.protocol, t.degree, t.seed)

let compare_key a b = compare (key a) (key b)

let windowed ~warmup ~lo ~hi (s : Dessim.Series.t) =
  let buckets = Dessim.Series.buckets s in
  let indices = ref [] in
  for i = buckets - 1 downto 0 do
    let t = Dessim.Series.time_of_bucket s i -. warmup in
    if t >= lo && t <= hi then indices := i :: !indices
  done;
  match !indices with
  | [] -> { s_start = lo; s_width = Dessim.Series.width s; s_counts = [||]; s_sums = [||] }
  | first :: _ as idx ->
    {
      s_start = Dessim.Series.time_of_bucket s first -. warmup;
      s_width = Dessim.Series.width s;
      s_counts =
        Array.of_list (List.map (fun i -> Dessim.Series.frac_count s i) idx);
      s_sums = Array.of_list (List.map (fun i -> Dessim.Series.sum s i) idx);
    }

(* ---------- JSON ---------- *)

(* Non-finite floats have no JSON literal; [Obs.Json] writes them as [null]
   and we read [null] back as [nan]. *)
let fnum f : Obs.Json.t = if Float.is_finite f then Float f else Null

let float_of_json = function
  | Obs.Json.Null -> Some Float.nan
  | j -> Obs.Json.to_float j

let series_to_json s : Obs.Json.t =
  Obj
    [
      ("start", fnum s.s_start);
      ("width", fnum s.s_width);
      ("counts", List (Array.to_list (Array.map fnum s.s_counts)));
      ("sums", List (Array.to_list (Array.map fnum s.s_sums)));
    ]

let series_of_json j =
  let ( let* ) = Option.bind in
  let* start = Option.bind (Obs.Json.member "start" j) float_of_json in
  let* width = Option.bind (Obs.Json.member "width" j) float_of_json in
  let floats = function
    | Obs.Json.List l ->
      let vs = List.filter_map float_of_json l in
      if List.length vs = List.length l then Some (Array.of_list vs) else None
    | _ -> None
  in
  let* counts = Option.bind (Obs.Json.member "counts" j) floats in
  let* sums = Option.bind (Obs.Json.member "sums" j) floats in
  if Array.length counts <> Array.length sums then None
  else Some { s_start = start; s_width = width; s_counts = counts; s_sums = sums }

let to_json ~include_series t : Obs.Json.t =
  let base =
    [
      ("protocol", Obs.Json.String t.protocol);
      ("degree", Obs.Json.Int t.degree);
      ("seed", Obs.Json.Int t.seed);
      ("sent", Obs.Json.Int t.sent);
      ("delivered", Obs.Json.Int t.delivered);
      ("drops_no_route", Obs.Json.Int t.drops_no_route);
      ("drops_ttl", Obs.Json.Int t.drops_ttl);
      ("drops_queue", Obs.Json.Int t.drops_queue);
      ("drops_link", Obs.Json.Int t.drops_link);
      ("looped_delivered", Obs.Json.Int t.looped_delivered);
      ("looped_dropped", Obs.Json.Int t.looped_dropped);
      ("ctrl_messages", Obs.Json.Int t.ctrl_messages);
      ("ctrl_bytes", Obs.Json.Int t.ctrl_bytes);
      ("fwd_convergence", fnum t.fwd_convergence);
      ("routing_convergence", fnum t.routing_convergence);
      ("transient_paths", Obs.Json.Int t.transient_paths);
    ]
  in
  let extras =
    match t.extras with
    | [] -> []
    | xs -> [ ("extras", Obs.Json.Obj (List.map (fun (k, v) -> (k, fnum v)) xs)) ]
  in
  let axes =
    match t.axes with
    | [] -> []
    | xs ->
      [
        ( "axes",
          Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.String v)) xs) );
      ]
  in
  let series =
    match t.series with
    | xs when include_series && xs <> [] ->
      [ ("series", Obs.Json.Obj (List.map (fun (k, s) -> (k, series_to_json s)) xs)) ]
    | _ -> []
  in
  Obj (base @ extras @ axes @ series)

let of_json j =
  let str name = Option.bind (Obs.Json.member name j) Obs.Json.to_string_val in
  let int name = Option.bind (Obs.Json.member name j) Obs.Json.to_int in
  let flt name = Option.bind (Obs.Json.member name j) float_of_json in
  let need what = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "cell: missing or mistyped %S" what)
  in
  let ( let* ) = Result.bind in
  let* protocol = need "protocol" (str "protocol") in
  let* degree = need "degree" (int "degree") in
  let* seed = need "seed" (int "seed") in
  let* sent = need "sent" (int "sent") in
  let* delivered = need "delivered" (int "delivered") in
  let* drops_no_route = need "drops_no_route" (int "drops_no_route") in
  let* drops_ttl = need "drops_ttl" (int "drops_ttl") in
  let* drops_queue = need "drops_queue" (int "drops_queue") in
  let* drops_link = need "drops_link" (int "drops_link") in
  let* looped_delivered = need "looped_delivered" (int "looped_delivered") in
  let* looped_dropped = need "looped_dropped" (int "looped_dropped") in
  let* ctrl_messages = need "ctrl_messages" (int "ctrl_messages") in
  let* ctrl_bytes = need "ctrl_bytes" (int "ctrl_bytes") in
  let* fwd_convergence = need "fwd_convergence" (flt "fwd_convergence") in
  let* routing_convergence = need "routing_convergence" (flt "routing_convergence") in
  let* transient_paths = need "transient_paths" (int "transient_paths") in
  let* extras =
    match Obs.Json.member "extras" j with
    | None -> Ok []
    | Some (Obs.Json.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match float_of_json v with
          | Some f -> Ok (acc @ [ (k, f) ])
          | None -> Error (Printf.sprintf "cell: extra %S is not a number" k))
        (Ok []) fields
    | Some _ -> Error "cell: extras is not an object"
  in
  let* axes =
    match Obs.Json.member "axes" j with
    | None -> Ok []
    | Some (Obs.Json.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match Obs.Json.to_string_val v with
          | Some s -> Ok (acc @ [ (k, s) ])
          | None -> Error (Printf.sprintf "cell: axis %S is not a string" k))
        (Ok []) fields
    | Some _ -> Error "cell: axes is not an object"
  in
  let* series =
    match Obs.Json.member "series" j with
    | None -> Ok []
    | Some (Obs.Json.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match series_of_json v with
          | Some s -> Ok (acc @ [ (k, s) ])
          | None -> Error (Printf.sprintf "cell: series %S is malformed" k))
        (Ok []) fields
    | Some _ -> Error "cell: series is not an object"
  in
  Ok
    {
      protocol;
      degree;
      seed;
      sent;
      delivered;
      drops_no_route;
      drops_ttl;
      drops_queue;
      drops_link;
      looped_delivered;
      looped_dropped;
      ctrl_messages;
      ctrl_bytes;
      fwd_convergence;
      routing_convergence;
      transient_paths;
      extras;
      axes;
      series;
      wall_s = 0.;
      perf = [];
      events = 0;
    }
