type context = {
  git_sha : string;
  family : string;
  mode : string;
  runs : int option;
  degrees : int list option;
  seed : int option;
}

type t = {
  dir : string;
  ctx : context;
  mutable hits : int;
  mutable misses : int;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ~dir ctx =
  mkdir_p dir;
  { dir; ctx; hits = 0; misses = 0 }

(* The preimage spells out every input the cell result depends on, in a
   fixed order, with unambiguous encodings for the optional overrides
   ("-" for absent, so runs=None and runs=Some anything never collide).
   [Artifact.version] is the schema the cached cell is serialized in: a
   schema bump must invalidate the cache wholesale. *)
let key t ~protocol ~degree ~seed =
  let opt_int = function None -> "-" | Some i -> string_of_int i in
  let opt_degrees = function
    | None -> "-"
    | Some ds -> String.concat "," (List.map string_of_int ds)
  in
  Printf.sprintf
    "rcsim-cell-cache v1 artifact-v%d sha=%s family=%s mode=%s runs=%s \
     degrees=%s seed=%s cell=%s:%d:%d"
    Artifact.version t.ctx.git_sha t.ctx.family t.ctx.mode
    (opt_int t.ctx.runs)
    (opt_degrees t.ctx.degrees)
    (opt_int t.ctx.seed)
    protocol degree seed

let path_of t preimage =
  Filename.concat t.dir (Digest.to_hex (Digest.string preimage) ^ ".json")

let entry_kind = "rcsim-cache-cell"

(* Every failure — missing file, torn or corrupt bytes, CRC mismatch,
   foreign kind, preimage drift, axis disagreement — is a miss. The cache
   may only ever save work, never fail a campaign or swap in a wrong
   cell. *)
let find t ~protocol ~degree ~seed =
  let preimage = key t ~protocol ~degree ~seed in
  let entry =
    match
      In_channel.with_open_bin (path_of t preimage) In_channel.input_all
    with
    | exception Sys_error _ -> None
    | raw -> (
      let line =
        match String.index_opt raw '\n' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      match Journal.unframe line with
      | Error _ -> None
      | Ok j -> (
        let str name =
          Option.bind (Obs.Json.member name j) Obs.Json.to_string_val
        in
        match (str "kind", str "key", Obs.Json.member "cell" j) with
        | Some k, Some stored, Some cj
          when k = entry_kind && String.equal stored preimage -> (
          match Cell_result.of_json cj with
          | Ok c when Cell_result.key c = (protocol, degree, seed) ->
            let wall =
              match
                Option.bind (Obs.Json.member "wall_s" j) Obs.Json.to_float
              with
              | Some w -> w
              | None -> 0.
            in
            Some { c with Cell_result.wall_s = wall }
          | _ -> None)
        | _ -> None))
  in
  (match entry with
  | Some _ -> t.hits <- t.hits + 1
  | None -> t.misses <- t.misses + 1);
  entry

let store t (c : Cell_result.t) =
  let protocol, degree, seed = Cell_result.key c in
  let preimage = key t ~protocol ~degree ~seed in
  let entry : Obs.Json.t =
    Obj
      [
        ("kind", String entry_kind);
        ("key", String preimage);
        ("wall_s", Float c.Cell_result.wall_s);
        ("cell", Cell_result.to_json ~include_series:true c);
      ]
  in
  (* Atomic publication; any I/O error (read-only dir, full disk) is
     swallowed — a cache that cannot write is just a cache that never
     hits. *)
  try
    Rcutil.Atomic_file.write_string ~path:(path_of t preimage)
      (Journal.frame (Obs.Json.to_string entry))
  with Sys_error _ | Unix.Unix_error _ -> ()

let stats t = (t.hits, t.misses)
