let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* Hard cap on spawned domains: the runtime supports ~128 concurrently and
   recommends far fewer; campaign cells are coarse enough that more workers
   than cores never pays. *)
let max_workers = 64

(* One contiguous slice of the task array, claimed index by index through an
   atomic cursor. The owner and thieves race on the same cursor with
   compare-and-set, so each index is handed out exactly once. *)
type arena = { lo : int Atomic.t; hi : int }

let claim arena =
  let rec loop () =
    let cur = Atomic.get arena.lo in
    if cur >= arena.hi then None
    else if Atomic.compare_and_set arena.lo cur (cur + 1) then Some cur
    else loop ()
  in
  loop ()

let sequential tasks = Array.map (fun task -> task ()) tasks

let parallel ~jobs tasks =
  let n = Array.length tasks in
  let arenas =
    (* Split [0, n) into [jobs] near-equal contiguous slices. *)
    Array.init jobs (fun w ->
        let lo = w * n / jobs and hi = (w + 1) * n / jobs in
        { lo = Atomic.make lo; hi })
  in
  let results = Array.make n None in
  let failures = Array.make n None in
  let worker w () =
    (* Drain the own arena first, then steal from the others round-robin. *)
    let rec next k =
      if k >= jobs then None
      else
        match claim arenas.((w + k) mod jobs) with
        | Some i -> Some i
        | None -> next (k + 1)
    in
    let rec loop () =
      match next 0 with
      | None -> ()
      | Some i ->
        (match tasks.(i) () with
        | v -> results.(i) <- Some v
        | exception e -> failures.(i) <- Some e);
        loop ()
    in
    loop ()
  in
  let domains = Array.init (jobs - 1) (fun w -> Domain.spawn (worker (w + 1))) in
  worker 0 ();
  Array.iter Domain.join domains;
  Array.iteri
    (fun i -> function Some e -> raise e | None -> ignore i)
    failures;
  Array.map Option.get results

let run ?(jobs = 1) tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else
    let jobs = min (min jobs n) max_workers in
    if jobs <= 1 then sequential tasks else parallel ~jobs tasks
