(** Campaign descriptions: how each bench section decomposes into cells and
    how its tables are rendered back out of a merged artifact.

    A section is the declarative replacement for the old hand-written bench
    loops. It knows three things:

    - {b decomposition}: [tasks sweep] lays the sweep out as a flat array of
      independent cells, one per (protocol, degree, seed), in canonical
      cell-key order. The array order {e is} the merge order, so results are
      independent of which worker ran what.
    - {b family}: sections that share the exact same cells (the paper-grid
      figures 3/4/5/6/7 and the overhead table all project the same sweep)
      carry the same [family] tag, letting callers run the cells once and
      emit several artifacts.
    - {b rendering}: [render ppf artifact] prints the section's tables from
      the artifact alone — never from live simulation state — so a table
      shown after a run and a table regenerated later from the committed
      [BENCH_*.json] are the same bytes.

    Sections whose scenarios need extra knobs (the multiflow section halves
    the per-flow rate, the RFD section drives a flapping link) encode those
    knobs here, in their task builders, keeping [bench/main.ml] and the CLI
    free of experiment logic. *)

type task = {
  t_protocol : string;
  t_degree : int;
  t_seed : int;
  t_run : unit -> Cell_result.t;
      (** runs one full seeded simulation; pure from its arguments, so safe
          to execute on any {!Pool} worker *)
}

type t = {
  name : string;  (** CLI / artifact-file name, e.g. ["fig3"] *)
  family : string;  (** sections with equal [family] have identical tasks *)
  title : string;  (** the heading printed above the section's tables *)
  doc : string;  (** one-line description for [--help] output *)
  include_series : bool;  (** serialize per-cell time series into the
                              artifact (figs 5 and 7) *)
  tasks : Convergence.Experiments.sweep -> task array;
  render : Format.formatter -> Artifact.t -> unit;
}

val ablation_scale :
  full:bool -> Convergence.Experiments.sweep -> Convergence.Experiments.sweep
(** The traditional bench shrink for the ablation / extension sections: when
    [full] is false, degrees are capped at 6 and runs at 5 (these scenarios
    cost several simulations per cell). The identity when [full]. *)

val sweep_for :
  t -> full:bool -> Convergence.Experiments.sweep -> Convergence.Experiments.sweep
(** [sweep_for section ~full sweep] is the sweep the section actually runs:
    [sweep] itself for the paper family and the scenarios section,
    {!ablation_scale} of it for ablations and extensions. Callers (bench and
    the CLI) use this so both always agree on cell decomposition. *)

val all : t list
(** Every artifact-backed section, in bench order: [fig3], [fig4], [fig5],
    [fig6], [fig7], [overhead], [scenarios], [ablation-mrai],
    [ablation-damping], [ablation-rfd], [ext-ls], [ext-multiflow],
    [ext-transport], [faults], [topo]. (The bechamel [micro] section stays in
    the bench binary: its output is pure wall-clock and has no deterministic
    part to archive.)

    The [faults] section sweeps a fault axis instead of mesh degree, reusing
    each cell's degree field as the axis code: loss cells store their
    control-plane loss percentage (0/2/5/10), flap cells store [100 + period]
    for three down/up cycles of [period] seconds. Its extras are
    [delivery_ratio], [retransmissions] and [injected_ctrl_drops].

    The [topo] section sweeps generator family × node count: the axis code is
    [family_index * 100_000 + node_count] with families mesh/ER/BA/
    hierarchical indexed 0-3, node counts 49/256/1024 (4096 in full mode),
    one seed per cell, and per-cell timelines scaled to graph reach ×
    protocol pacing. All four protocols run at <= 256 nodes, RIP and DBF at
    1024, RIP alone at 4096 (the memory walls are audited in DESIGN.md §15).
    Each cell runs the quiescence BFS oracle
    ({!Check.Oracle.check}); its extras are [delivery_ratio],
    [oracle_mismatches] and [edges]. *)

val names : string list

val find : string -> t option

val grid :
  name:string ->
  ?title:string ->
  engines:Convergence.Engine_registry.t list ->
  unit ->
  t
(** [grid ~name ~engines ()] is a minimal scalar section over [engines]
    (standard metrics only, fig3-style drops table) — the building block the
    unit tests use to run tiny deterministic campaigns without dragging in a
    full paper sweep. *)
