(** Content-addressed cell-result cache.

    A campaign cell is a pure function of its inputs: the artifact schema,
    the code that produced it (git sha), the sweep decomposition (family,
    mode preset, CLI overrides) and the cell's own axis coordinates
    (protocol, degree, seed). The cache names each finished
    {!Cell_result.t} by a digest over exactly those inputs, so a re-run of
    an unchanged campaign finds every cell already on disk and a run after
    {e any} relevant change — new commit, different preset, different
    seed — finds none of its stale predecessors.

    {2 Key derivation}

    The digest preimage is a single human-readable line:

    {v rcsim-cell-cache v1 artifact-v<V> sha=<SHA> family=<F> mode=<M>
   runs=<R> degrees=<D> seed=<S> cell=<PROTO>:<DEG>:<SEED> v}

    (one line; shown wrapped). [<V>] is {!Artifact.version} — a schema bump
    invalidates every entry, since cached cells are stored in that schema.
    The {e family}, not the section name, identifies the decomposition:
    sections of one family (e.g. [fig3]/[fig4]) run identical task arrays
    and share cells, so they share cache entries too. The key is the MD5 of
    that line; the line itself is stored in the entry and compared on read,
    so a digest collision or a preimage-format drift degrades to a miss,
    never to a wrong cell.

    {2 Entry format and fault tolerance}

    One file per cell, [<dir>/<md5hex>.json], holding a single
    {!Journal.frame}d record — the same CRC-tagged line format as the
    journal — published atomically via {!Rcutil.Atomic_file}. Reads treat
    {e anything} unexpected (missing file, torn write that escaped the
    atomic rename, CRC mismatch, wrong kind, preimage mismatch, cell whose
    axes disagree with the request) as a miss, and writes swallow all I/O
    errors: a broken cache directory can slow a campaign down but can
    never fail it or corrupt its artifact. *)

type context = {
  git_sha : string;  (** from {!Artifact.git_sha}; ["unknown"] outside git *)
  family : string;  (** {!Sections.t} [family] — the decomposition identity *)
  mode : string;  (** sweep preset: ["quick"], ["standard"] or ["full"] *)
  runs : int option;  (** CLI [--runs] override, if given *)
  degrees : int list option;  (** CLI [--degrees] override, if given *)
  seed : int option;  (** CLI [--seed] override, if given *)
}
(** Everything that selects the sweep besides the cell axes themselves.
    Mirrors {!Journal.header} so resumed campaigns derive the same keys as
    the original run. *)

type t

val open_ : dir:string -> context -> t
(** [open_ ~dir ctx] creates [dir] (and parents) if needed and returns a
    cache handle scoped to [ctx]. *)

val key : t -> protocol:string -> degree:int -> seed:int -> string
(** The digest preimage for one cell — exposed for tests, which assert
    that every context and axis component perturbs it. *)

val find : t -> protocol:string -> degree:int -> seed:int -> Cell_result.t option
(** Cache lookup. [Some cell] only when the stored entry round-trips with
    a valid CRC, matching preimage and matching cell axes; every failure
    mode is a miss. Updates {!stats}. *)

val store : t -> Cell_result.t -> unit
(** Publish one finished cell (series included) under its derived key.
    Atomic (tmp + fsync + rename); concurrent writers of the same key are
    harmless because their payloads are identical. I/O failures are
    swallowed. *)

val stats : t -> int * int
(** [(hits, misses)] observed by {!find} since [open_]. *)
