(** Supervised multi-process campaign execution.

    The in-process {!Pool} shares one heap and one fate with its cells: a
    segfault in C stubs, an OOM kill or a genuinely wedged cell (stuck
    outside the cooperative scheduler poll, where [cell_budget] cannot
    reach) takes the whole campaign down. This backend runs cells in [jobs]
    {e separate} [rcsim] worker processes instead, each fed one cell index
    at a time over a pipe, so the blast radius of any cell is one worker —
    which the supervisor kills and respawns, re-queueing or quarantining
    the cell.

    {2 Wire protocol}

    Parent → worker (worker stdin): one ASCII cell index per line. Closing
    the pipe is the shutdown signal. Worker → parent (worker stdout): one
    {!Journal.frame}d JSON record per line — [{"type":"ready"}] once after
    startup, then per cell [{"type":"start","i":N}] followed by either
    [{"type":"cell","i":N,"wall_s":W,"events":E,"perf":{...},"cell":{...}}]
    (the transient fields ride alongside the row, which never serializes
    them) or [{"type":"failed","i":N,"error":"..."}] for an in-worker
    failure that did not kill the process. Worker stderr carries heartbeat
    bytes, emitted from a SIGALRM interval timer armed only while a cell
    is running: OCaml delivers signals at safe points, so a flowing
    heartbeat certifies the worker's main loop is actually advancing, not
    just that the process exists.

    {2 Supervision}

    Each dispatched cell runs under an adaptive deadline,
    [max min_deadline (srtt + 4*rttvar)] doubled per retry attempt
    (exponential backoff), where srtt/rttvar are Jacobson estimates over
    clean first-attempt cell times — retried attempts never feed the
    estimator (Karn's rule; see lib/fault/rtx.ml for the in-simulator
    twin of this logic). A worker that blows its deadline, goes
    heartbeat-silent mid-cell for [hb_timeout], crashes, or is killed by
    the OS is SIGKILLed (if still alive), reaped and respawned; its cell
    is re-queued until the attempt budget ([retries + 1]) is spent, then
    reported quarantined. A slot whose worker dies 3 consecutive times
    before ever becoming ready (e.g. the exec path is wrong) is retired;
    when every slot is retired the remaining indices are returned to the
    caller, which degrades to in-process execution rather than failing
    the campaign. *)

type outcome =
  | Cell of { index : int; cell : Cell_result.t }
      (** completed; [wall_s], [events] and [perf] restored from the wire *)
  | Quarantined of { index : int; error : string; attempts : int }
      (** failed every attempt; [error] is the last failure *)

type stats = {
  p_spawns : int;  (** worker processes launched, including respawns *)
  p_restarts : int;  (** respawns after a worker death or supervised kill *)
  p_slot_cells : int list;  (** completed cells per slot, slot order *)
}

val run :
  jobs:int ->
  argv:string array ->
  indices:int array ->
  retries:int ->
  ?min_deadline:float ->
  ?hb_timeout:float ->
  progress:(string -> unit) ->
  on_outcome:(outcome -> unit) ->
  unit ->
  stats * int list
(** [run ~jobs ~argv ~indices ~retries ~progress ~on_outcome ()] supervises
    [jobs] worker slots, each exec'ing [argv] (argv.(0) is the executable
    path; the command must end up in {!worker}), and drives every index in
    [indices] to an [on_outcome] call — except indices abandoned because a
    graceful stop was requested ({!Dessim.Scheduler.stop_requested}) or
    every slot retired; those are returned as the leftover list (original
    dispatch order). [on_outcome] and [progress] are called from the
    supervisor loop (single-threaded, no locking needed).

    [min_deadline] (default 10 s) floors the adaptive per-cell deadline —
    also the deadline used before any sample exists. [hb_timeout] (default
    10 s) is the allowed heartbeat silence while a cell is in flight. *)

val worker :
  run_cell:(int -> (float * Cell_result.t, string) result) -> unit -> 'a
(** [worker ~run_cell ()] is the child side: speaks the protocol on
    stdin/stdout/stderr and calls [run_cell i] per received index —
    returning [(wall_s, cell)] with the cell's transient [events]/[perf]
    fields populated, or [Error] for a failure the worker survived.
    Ignores SIGINT (the interactive signal belongs to the supervisor,
    which shuts workers down by closing their stdin). Never returns: exits
    0 on stdin EOF. *)
