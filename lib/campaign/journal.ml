type header = {
  h_section : string;
  h_mode : string;
  h_jobs : int;
  h_out : string;
  h_total : int;
  h_runs : int option;
  h_degrees : int list option;
  h_seed : int option;
}

(* ---------- CRC-32 (IEEE reflected, as in gzip/zlib) ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ---------- line framing ---------- *)

(* [{"crc":"xxxxxxxx","entry":<entry>}] with the CRC computed over the
   literal bytes of [<entry>]. The frame is fixed-offset on purpose: the
   reader recovers the entry bytes by slicing, not by JSON-parsing, so the
   checksum protects exactly what was written. *)

let frame_prefix = {|{"crc":"|}

let frame_mid = {|","entry":|}

let entry_offset = String.length frame_prefix + 8 + String.length frame_mid

let frame entry = Printf.sprintf "{\"crc\":\"%08x\",\"entry\":%s}\n" (crc32 entry) entry

let unframe line =
  let len = String.length line in
  if
    len < entry_offset + 1
    || not (String.starts_with ~prefix:frame_prefix line)
    || String.sub line (String.length frame_prefix + 8) (String.length frame_mid)
       <> frame_mid
    || line.[len - 1] <> '}'
  then Error "malformed journal record"
  else
    let crc_hex = String.sub line (String.length frame_prefix) 8 in
    let entry = String.sub line entry_offset (len - entry_offset - 1) in
    match int_of_string_opt ("0x" ^ crc_hex) with
    | None -> Error "malformed journal record"
    | Some crc ->
      if crc <> crc32 entry then Error "CRC mismatch"
      else (
        match Obs.Json.of_string_opt entry with
        | None -> Error "record entry is not valid JSON"
        | Some j -> Ok j)

(* ---------- entry codecs ---------- *)

let fnum f : Obs.Json.t = if Float.is_finite f then Float f else Null

let float_of_json = function
  | Obs.Json.Null -> Some Float.nan
  | j -> Obs.Json.to_float j

let opt_int = function None -> Obs.Json.Null | Some i -> Obs.Json.Int i

let opt_degrees = function
  | None -> Obs.Json.Null
  | Some ds -> Obs.Json.List (List.map (fun d -> Obs.Json.Int d) ds)

let header_to_json h : Obs.Json.t =
  Obj
    [
      ("type", String "header");
      ("kind", String "rcsim-journal");
      ("version", Int 1);
      ("section", String h.h_section);
      ("mode", String h.h_mode);
      ("jobs", Int h.h_jobs);
      ("out", String h.h_out);
      ("total", Int h.h_total);
      ("runs", opt_int h.h_runs);
      ("degrees", opt_degrees h.h_degrees);
      ("seed", opt_int h.h_seed);
    ]

let header_of_json j =
  let ( let* ) = Result.bind in
  let str name = Option.bind (Obs.Json.member name j) Obs.Json.to_string_val in
  let int name = Option.bind (Obs.Json.member name j) Obs.Json.to_int in
  let need what = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "header: missing or mistyped %S" what)
  in
  let* () =
    match str "kind" with
    | Some "rcsim-journal" -> Ok ()
    | Some k -> Error (Printf.sprintf "header: kind %S is not \"rcsim-journal\"" k)
    | None -> Error "header: missing kind"
  in
  let* () =
    match int "version" with
    | Some 1 -> Ok ()
    | Some v -> Error (Printf.sprintf "header: unsupported version %d" v)
    | None -> Error "header: missing version"
  in
  let* section = need "section" (str "section") in
  let* mode = need "mode" (str "mode") in
  let* jobs = need "jobs" (int "jobs") in
  let* out = need "out" (str "out") in
  let* total = need "total" (int "total") in
  let degrees =
    Option.bind (Obs.Json.member "degrees" j) Obs.Json.to_int_list
  in
  Ok
    {
      h_section = section;
      h_mode = mode;
      h_jobs = jobs;
      h_out = out;
      h_total = total;
      h_runs = int "runs";
      h_degrees = degrees;
      h_seed = int "seed";
    }

let cell_to_json (c : Cell_result.t) : Obs.Json.t =
  Obj
    [
      ("type", String "cell");
      ("wall_s", fnum c.Cell_result.wall_s);
      ("cell", Cell_result.to_json ~include_series:true c);
    ]

let quarantine_to_json q : Obs.Json.t =
  Obj [ ("type", String "quarantined"); ("q", Artifact.quarantine_to_json q) ]

(* ---------- writer ---------- *)

type t = { fd : Unix.file_descr }

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then go (off + Unix.write fd b off (len - off))
  in
  go 0

(* Durability is per record: the append has hit the disk before the cell is
   considered checkpointed. A kill between write and fsync can only tear the
   final line, which [load] tolerates. *)
let append_entry t entry_json =
  write_all t.fd (frame (Obs.Json.to_string entry_json));
  Unix.fsync t.fd

let create ~path header =
  let fd = Unix.openfile path [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let t = { fd } in
  append_entry t (header_to_json header);
  t

let append_to ~path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  (* A torn final record — no trailing newline — must not swallow the next
     append into its own line (that would turn a tolerated interruption into
     mid-file corruption). Truncate back to the last newline; [load] already
     dropped the torn record, so nothing valid is lost. *)
  let rec last_nl pos =
    if pos <= 0 then 0
    else begin
      ignore (Unix.lseek fd (pos - 1) Unix.SEEK_SET);
      let b = Bytes.create 1 in
      ignore (Unix.read fd b 0 1);
      if Bytes.get b 0 = '\n' then pos else last_nl (pos - 1)
    end
  in
  let keep = last_nl size in
  if keep < size then Unix.ftruncate fd keep;
  ignore (Unix.lseek fd keep Unix.SEEK_SET);
  { fd }

let append_cell t c = append_entry t (cell_to_json c)

let append_quarantine t q = append_entry t (quarantine_to_json q)

let close t = Unix.close t.fd

(* ---------- reader ---------- *)

type contents = {
  j_header : header;
  j_cells : Cell_result.t list;
  j_quarantined : Artifact.quarantine list;
  j_truncated : bool;
}

let entry_type j =
  Option.bind (Obs.Json.member "type" j) Obs.Json.to_string_val

let cell_of_entry j =
  let ( let* ) = Result.bind in
  let* wall =
    match Option.bind (Obs.Json.member "wall_s" j) float_of_json with
    | Some w -> Ok w
    | None -> Error "cell record: missing wall_s"
  in
  let* cell =
    match Obs.Json.member "cell" j with
    | Some cj -> Cell_result.of_json cj
    | None -> Error "cell record: missing cell"
  in
  Ok { cell with Cell_result.wall_s = wall }

let quarantine_of_entry j =
  match Obs.Json.member "q" j with
  | Some qj -> Artifact.quarantine_of_json qj
  | None -> Error "quarantined record: missing q"

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | raw ->
    let lines =
      String.split_on_char '\n' raw
      |> List.filteri (fun _ l -> l <> "")
    in
    let n_lines = List.length lines in
    let ( let* ) = Result.bind in
    let err line msg = Error (Printf.sprintf "%s:%d: %s" path line msg) in
    let* entries, truncated =
      (* A broken record is tolerated — dropped, flagged — only on the very
         last line: that is what a mid-append kill leaves behind. Earlier
         breakage is corruption and poisons the whole journal. *)
      List.fold_left
        (fun acc (i, line) ->
          let* entries, truncated = acc in
          match unframe line with
          | Ok j -> Ok (entries @ [ (i + 1, j) ], truncated)
          | Error e ->
            if i = n_lines - 1 then Ok (entries, true) else err (i + 1) e)
        (Ok ([], false))
        (List.mapi (fun i l -> (i, l)) lines)
    in
    let* header, rest =
      match entries with
      | (line, first) :: rest -> (
        match entry_type first with
        | Some "header" -> (
          match header_of_json first with
          | Ok h -> Ok (h, rest)
          | Error e -> err line e)
        | _ -> err line "first record is not a journal header")
      | [] -> Error (Printf.sprintf "%s: empty or headerless journal" path)
    in
    let seen = Hashtbl.create 64 in
    let* cells_rev, quarantined_rev =
      List.fold_left
        (fun acc (line, j) ->
          let* cells, qs = acc in
          let check_key key =
            if Hashtbl.mem seen key then
              let p, d, s = key in
              err line
                (Printf.sprintf "duplicate cell key (%s, %d, %d)" p d s)
            else begin
              Hashtbl.add seen key ();
              Ok ()
            end
          in
          match entry_type j with
          | Some "cell" ->
            let* c = Result.map_error (Printf.sprintf "%s:%d: %s" path line) (cell_of_entry j) in
            let* () = check_key (Cell_result.key c) in
            Ok (c :: cells, qs)
          | Some "quarantined" ->
            let* q = Result.map_error (Printf.sprintf "%s:%d: %s" path line) (quarantine_of_entry j) in
            let* () = check_key (Artifact.quarantine_key q) in
            Ok (cells, q :: qs)
          | Some "header" -> err line "second header record"
          | Some other -> err line (Printf.sprintf "unknown record type %S" other)
          | None -> err line "record entry has no type")
        (Ok ([], [])) rest
    in
    Ok
      {
        j_header = header;
        j_cells = List.rev cells_rev;
        j_quarantined = List.rev quarantined_rev;
        j_truncated = truncated;
      }

let is_journal ~path =
  match
    In_channel.with_open_bin path (fun ic ->
        In_channel.really_input_string ic (String.length frame_prefix))
  with
  | Some s -> s = frame_prefix
  | None -> false
  | exception Sys_error _ -> false
