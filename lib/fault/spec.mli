(** The full fault specification a run can be subjected to.

    [none] (the default everywhere) is the contract that makes fault
    injection safe to wire through the runner: with [is_none spec] true, the
    runner takes exactly its pre-fault code paths — no extra RNG draws, no
    wrapper closures on the delivery path that alter event order — so every
    committed benchmark artifact and golden trace stays bit-identical. *)

type t = {
  noise : Perturb.t option;  (** per-link probabilistic perturbation *)
  flaps : Schedule.flap list;
  crashes : Schedule.crash list;
  rtx : Rtx.config option;
      (** [Some _] routes protocols with [uses_reliable_transport] through
          {!Rtx} sessions (genuine retransmission); [None] keeps the
          idealized lossless bypass *)
  fault_seed : int option;
      (** seed for fault randomness; defaults to the run's own seed. Distinct
          fault seeds vary the injected faults while holding the simulated
          world (flows, failure picks, protocol jitter) fixed. *)
}

val none : t

val is_none : t -> bool
(** True when the spec perturbs nothing and leaves transport idealized. *)

val validate : t -> (unit, string) result

val control_loss : ?rtx:bool -> float -> t
(** [control_loss p] drops each control unit with probability [p]
    ([Control_only] scope) and, by default, enables the reliable transport so
    BGP/LS survive the loss. [~rtx:false] keeps the idealized transport
    subject to the same loss — the "what breaks without retransmission"
    configuration. *)

(** {2 Seed derivation}

    Stable hashes from the run seed to per-entity fault streams, independent
    of the master RNG's position. *)

val link_seed : seed:int -> u:int -> v:int -> int
(** Per-directed-link perturbation stream. *)

val node_seed : seed:int -> node:int -> gen:int -> int
(** Protocol-instance RNG for generation [gen] of a rebooted node. *)

val schedule_seed : seed:int -> int
(** Stream for schedule interpretation: link picks and flap durations. *)
