(** Reliable control-plane transport: per-neighbor sequenced sessions.

    One [t] is one endpoint's session toward one neighbor, carrying that
    endpoint's outgoing protocol messages ({!send}) and terminating the
    neighbor's incoming ones ({!on_segment} → [deliver], in order). The
    machinery is a deliberately small TCP: cumulative ACKs over a single
    retransmission timer on the oldest unacknowledged segment, Jacobson
    RTT estimation with Karn's rule, exponential timer backoff, and a retry
    cap that tears the session down — bumping the sending {e epoch} so stale
    segments from the dead session are recognizably stale, and invoking
    [on_reset] so the owner can bounce the routing session (the protocol then
    re-advertises over the fresh epoch, exactly like a BGP session reset).

    The module is transport only: it never touches links or trace sinks.
    Wire I/O happens through the [send] callback, timers through the supplied
    scheduler — which is what makes the state machine unit-testable under
    scripted loss (drop segments in the callback and step the scheduler). *)

type config = {
  rto_init : float;  (** timer value before the first RTT sample, seconds *)
  rto_min : float;  (** floor for the adaptive timeout *)
  rto_max : float;  (** ceiling for the adaptive timeout and the backoff *)
  backoff : float;  (** multiplier applied to the RTO on each timeout *)
  max_retries : int;
      (** consecutive timeouts tolerated before the session resets *)
}

val default_config : config
(** 1 s initial/minimum RTO, 60 s maximum, factor-2 backoff, 6 retries. *)

val validate_config : config -> (unit, string) result

(** The wire format. [epoch] identifies a session incarnation: receivers adopt
    higher epochs (restarting at sequence 0) and discard lower ones. *)
type 'msg segment =
  | Seg_data of { epoch : int; seq : int; msg : 'msg }
  | Seg_ack of { epoch : int; ack : int }
      (** cumulative: all sequence numbers below [ack] were delivered *)

(** Observability hooks, reported through [on_event]. The original
    transmission of a segment is not an event (the owner already observes the
    protocol's own send); only recovery actions are. *)
type event =
  | Retransmit of { seq : int; attempt : int }
  | Timeout of { rto : float; attempt : int }

type stats = {
  s_sent : int;  (** distinct messages accepted by {!send} *)
  s_delivered : int;  (** messages handed to [deliver], in order *)
  s_retransmissions : int;
  s_timeouts : int;
  s_resets : int;  (** retry-cap session teardowns *)
}

type 'msg t

val create :
  ?config:config ->
  sched:Dessim.Scheduler.t ->
  send:('msg segment -> unit) ->
  deliver:('msg -> unit) ->
  on_reset:(epoch:int -> unit) ->
  on_event:(event -> unit) ->
  unit ->
  'msg t
(** [create ~sched ~send ~deliver ~on_reset ~on_event ()] is a fresh session
    in the up state, epoch 0. [send] puts a segment on the wire (and may drop
    it — that is the point); [deliver] receives the peer's messages in order,
    exactly once per epoch; [on_reset] fires after a retry-cap teardown, with
    the new sending epoch. @raise Invalid_argument on an invalid [config]. *)

val send : 'msg t -> 'msg -> unit
(** Queue and transmit one message. Discarded silently while the session is
    down (teardown semantics — the protocol re-advertises on link up). *)

val on_segment : 'msg t -> 'msg segment -> unit
(** Feed a segment that arrived from the peer. Ignored while down. *)

val link_down : 'msg t -> unit
(** Tear the session down: cancel timers, discard unacknowledged and buffered
    segments, bump the epoch. Idempotent. No [on_reset] call — the caller
    initiated this and already knows. *)

val link_up : 'msg t -> unit
(** Re-open a torn-down session under a fresh epoch. Idempotent. *)

val is_up : 'msg t -> bool

val rto : 'msg t -> float
(** Current retransmission timeout (after adaptation and backoff). *)

val outstanding : 'msg t -> int
(** Unacknowledged segment count. *)

val stats : 'msg t -> stats
