type t = {
  noise : Perturb.t option;
  flaps : Schedule.flap list;
  crashes : Schedule.crash list;
  rtx : Rtx.config option;
  fault_seed : int option;
}

let none =
  { noise = None; flaps = []; crashes = []; rtx = None; fault_seed = None }

let is_none t =
  (match t.noise with None -> true | Some n -> Perturb.is_null n)
  && t.flaps = [] && t.crashes = [] && t.rtx = None

let validate t =
  let ( let* ) = Result.bind in
  let* () = match t.noise with Some n -> Perturb.validate n | None -> Ok () in
  let* () =
    List.fold_left
      (fun acc f -> Result.bind acc (fun () -> Schedule.validate_flap f))
      (Ok ()) t.flaps
  in
  let* () =
    List.fold_left
      (fun acc c -> Result.bind acc (fun () -> Schedule.validate_crash c))
      (Ok ()) t.crashes
  in
  match t.rtx with Some c -> Rtx.validate_config c | None -> Ok ()

let control_loss ?(rtx = true) p =
  {
    none with
    noise = Some { Perturb.none with Perturb.drop = p; scope = Perturb.Control_only };
    rtx = (if rtx then Some Rtx.default_config else None);
  }

(* Fault randomness must be independent of the simulation's master stream:
   the runner's master RNG is consumed mid-run (failure-link picks), so
   deriving fault streams from it would make "add 0%-probability noise"
   shift unrelated draws. Instead each consumer hashes (seed, identity) into
   a fresh splitmix64 seed; splitmix's output finalizer decorrelates even
   adjacent seeds, so cheap integer mixing suffices here. *)
let link_seed ~seed ~u ~v =
  (seed * 0x2545F491) lxor (u * 92821) lxor ((v + 1) * 486187739)

let node_seed ~seed ~node ~gen =
  (seed * 0x9E3779B1) lxor ((node + 1) * 74207281) lxor (gen * 1299709)

let schedule_seed ~seed = (seed * 0x85EBCA77) lxor 0x165667B1
