(** Per-link probabilistic perturbation: what happens to each unit (packet or
    control segment) as it is delivered off a link.

    The perturbation layer sits at the {e receiving} end of a link, after
    transmission and propagation: the unit occupied the wire, then the fault
    model decides its fate. Decisions are drawn from a per-link RNG owned by
    the caller, derived from the run seed independently of the simulation's
    master stream — injecting faults must not shift any other random
    choice of the run. *)

type scope =
  | All
  | Control_only  (** perturb routing messages / transport segments only *)
  | Data_only  (** perturb data packets only *)

type t = {
  drop : float;  (** P(unit silently discarded) *)
  corrupt : float;
      (** P(unit corrupted); receivers discard corrupt frames, so this is a
          loss with its own drop reason *)
  duplicate : float;  (** P(unit delivered twice) — control units only; the
          runner never duplicates data packets (their delivery accounting is
          strictly exactly-once) *)
  jitter : float;
      (** extra delivery delay drawn uniformly from [\[0, jitter)] seconds;
          reorders units whose draws differ enough *)
  scope : scope;
}

val none : t
(** All probabilities zero, scope [All]: a transparent link. *)

val is_null : t -> bool

val validate : t -> (unit, string) result
(** Probabilities in [\[0,1]] with [drop + corrupt <= 1]; [jitter >= 0]. *)

type outcome = Drop | Corrupt | Deliver of { copies : int; delay : float }

val decide : Dessim.Rng.t -> t -> outcome
(** Draw the fate of one unit. [Deliver] always has [copies] 1 or 2 and
    [delay >= 0]; [delay = 0] means deliver synchronously, exactly as an
    unperturbed link would. *)
