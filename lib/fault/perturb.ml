type scope = All | Control_only | Data_only

type t = {
  drop : float;
  corrupt : float;
  duplicate : float;
  jitter : float;
  scope : scope;
}

let none = { drop = 0.; corrupt = 0.; duplicate = 0.; jitter = 0.; scope = All }

let is_null t =
  t.drop = 0. && t.corrupt = 0. && t.duplicate = 0. && t.jitter = 0.

let validate t =
  let prob name p =
    if p < 0. || p > 1. then Error (Printf.sprintf "%s must be in [0,1]" name)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () = prob "drop" t.drop in
  let* () = prob "corrupt" t.corrupt in
  let* () = prob "duplicate" t.duplicate in
  if t.drop +. t.corrupt > 1. then Error "drop + corrupt must be <= 1"
  else if t.jitter < 0. then Error "jitter must be >= 0"
  else Ok ()

type outcome = Drop | Corrupt | Deliver of { copies : int; delay : float }

(* One unit crossing the link: a single uniform draw partitions [0,1) into
   drop / corrupt / pass, then duplication and jitter each draw only when
   their knob is nonzero — so an all-zero perturbation consumes no randomness
   beyond the first draw, and draw counts per delivery are predictable. *)
let decide rng t =
  let u = Dessim.Rng.float rng 1.0 in
  if u < t.drop then Drop
  else if u < t.drop +. t.corrupt then Corrupt
  else
    let copies =
      if t.duplicate > 0. && Dessim.Rng.float rng 1.0 < t.duplicate then 2
      else 1
    in
    let delay = if t.jitter > 0. then Dessim.Rng.float rng t.jitter else 0. in
    Deliver { copies; delay }
