(** Declarative fault schedules: link flapping and node crash/reboot.

    A schedule is pure data; the runner materializes it against a topology
    and a schedule RNG (derived from the run seed) into timed link-state
    transitions. Keeping the data and the interpretation separate is what
    lets fuzzers generate, shrink, and print schedules. *)

type link_choice =
  | Edge of int * int  (** this specific undirected link *)
  | Any_edge  (** the interpreter picks one with its schedule RNG *)

type flap = {
  flap_link : link_choice;
  flap_start : float;  (** first down transition, absolute seconds *)
  flap_cycles : int;  (** number of down/up cycles; the link ends up *)
  down_min : float;
  down_max : float;  (** each down duration ~ U[down_min, down_max] *)
  up_min : float;
  up_max : float;  (** each up gap ~ U[up_min, up_max] *)
}

type crash = {
  crash_node : int;
  crash_at : float;
  reboot_after : float option;
      (** [None]: the node stays dead. [Some d]: after [d] seconds the node
          restarts with a {e fresh} protocol instance — all routing state
          lost, adjacent links restored. *)
}

val flap :
  ?link:link_choice ->
  start:float ->
  cycles:int ->
  down:float ->
  up:float ->
  unit ->
  flap
(** Fixed-duration convenience constructor: [down]/[up] seconds per cycle. *)

val validate_flap : flap -> (unit, string) result
val validate_crash : crash -> (unit, string) result

type transition = { at : float; up : bool }

val flap_transitions : Dessim.Rng.t -> flap -> transition list
(** Materialize one flap into its ordered transition list (alternating
    down/up, beginning with down at [flap_start], ending up). Deterministic
    in the RNG state: equal streams yield equal schedules. *)

val flap_end_of : Dessim.Rng.t -> flap -> float
(** Time of the final (up) transition the same draw sequence would produce.
    Consumes the same number of draws as {!flap_transitions}. *)
