type config = {
  rto_init : float;
  rto_min : float;
  rto_max : float;
  backoff : float;
  max_retries : int;
}

(* rto_min of 1 s keeps a freshly measured (tiny) mesh RTT from arming timers
   shorter than the runner's link-failure detection delay: segments stranded
   by a failure are reaped by session teardown at detection time, not raced
   by a retransmission onto a link already known dead. *)
let default_config =
  { rto_init = 1.0; rto_min = 1.0; rto_max = 60.0; backoff = 2.0; max_retries = 6 }

let validate_config c =
  if c.rto_init <= 0. || c.rto_min <= 0. || c.rto_max < c.rto_min then
    Error "rto bounds must satisfy 0 < rto_min <= rto_max, rto_init > 0"
  else if c.backoff < 1. then Error "backoff must be >= 1"
  else if c.max_retries < 1 then Error "max_retries must be >= 1"
  else Ok ()

type 'msg segment =
  | Seg_data of { epoch : int; seq : int; msg : 'msg }
  | Seg_ack of { epoch : int; ack : int }

type event =
  | Retransmit of { seq : int; attempt : int }
  | Timeout of { rto : float; attempt : int }

type stats = {
  s_sent : int;
  s_delivered : int;
  s_retransmissions : int;
  s_timeouts : int;
  s_resets : int;
}

type 'msg entry = {
  e_msg : 'msg;
  mutable e_sent_at : float;
  mutable e_rexmit : bool;
}

type 'msg t = {
  cfg : config;
  sched : Dessim.Scheduler.t;
  send_seg : 'msg segment -> unit;
  deliver : 'msg -> unit;
  on_reset : epoch:int -> unit;
  on_event : event -> unit;
  (* sender *)
  mutable tx_epoch : int;
  mutable base : int;  (* lowest unacknowledged sequence number *)
  mutable next_seq : int;
  unacked : (int, 'msg entry) Hashtbl.t;
  mutable timer : Dessim.Scheduler.handle option;
  mutable attempts : int;  (* consecutive timeouts without forward progress *)
  mutable srtt : float option;
  mutable rttvar : float;
  mutable rto : float;
  (* receiver *)
  mutable rx_epoch : int;
  mutable rcv_next : int;
  buffer : (int, 'msg) Hashtbl.t;  (* out-of-order segments awaiting the gap *)
  (* session *)
  mutable up : bool;
  mutable sent : int;
  mutable delivered : int;
  mutable retransmissions : int;
  mutable timeouts : int;
  mutable resets : int;
}

let create ?(config = default_config) ~sched ~send:send_seg ~deliver ~on_reset
    ~on_event () =
  (match validate_config config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Rtx.create: " ^ msg));
  {
    cfg = config;
    sched;
    send_seg;
    deliver;
    on_reset;
    on_event;
    tx_epoch = 0;
    base = 0;
    next_seq = 0;
    unacked = Hashtbl.create 16;
    timer = None;
    attempts = 0;
    srtt = None;
    rttvar = 0.;
    rto = config.rto_init;
    rx_epoch = 0;
    rcv_next = 0;
    buffer = Hashtbl.create 16;
    up = true;
    sent = 0;
    delivered = 0;
    retransmissions = 0;
    timeouts = 0;
    resets = 0;
  }

let cancel_timer t =
  match t.timer with
  | Some h ->
    Dessim.Scheduler.cancel h;
    t.timer <- None
  | None -> ()

(* Jacobson's estimator; the caller enforces Karn's rule by sampling only
   segments that were never retransmitted. *)
let rtt_sample t sample =
  (match t.srtt with
  | None ->
    t.srtt <- Some sample;
    t.rttvar <- sample /. 2.
  | Some srtt ->
    let err = sample -. srtt in
    t.srtt <- Some (srtt +. (0.125 *. err));
    t.rttvar <- t.rttvar +. (0.25 *. (Float.abs err -. t.rttvar)));
  let srtt = Option.get t.srtt in
  t.rto <-
    Float.max t.cfg.rto_min
      (Float.min t.cfg.rto_max (srtt +. (4. *. t.rttvar)))

let clear_session t =
  cancel_timer t;
  Hashtbl.reset t.unacked;
  t.base <- 0;
  t.next_seq <- 0;
  t.attempts <- 0;
  t.srtt <- None;
  t.rttvar <- 0.;
  t.rto <- t.cfg.rto_init

let rec arm t =
  cancel_timer t;
  if t.up && t.base < t.next_seq then
    t.timer <-
      Some
        (Dessim.Scheduler.after t.sched ~delay:t.rto (fun () ->
             t.timer <- None;
             on_timeout t))

and on_timeout t =
  t.timeouts <- t.timeouts + 1;
  t.attempts <- t.attempts + 1;
  t.on_event (Timeout { rto = t.rto; attempt = t.attempts });
  if t.attempts > t.cfg.max_retries then begin
    (* Retry cap: tear the session down and start a new epoch. The owner's
       [on_reset] is expected to bounce the routing session so the protocol
       re-advertises over the fresh epoch. *)
    t.resets <- t.resets + 1;
    clear_session t;
    Hashtbl.reset t.buffer;
    t.tx_epoch <- t.tx_epoch + 1;
    t.on_reset ~epoch:t.tx_epoch
  end
  else begin
    t.rto <- Float.min t.cfg.rto_max (t.rto *. t.cfg.backoff);
    (match Hashtbl.find_opt t.unacked t.base with
    | Some e ->
      e.e_rexmit <- true;
      e.e_sent_at <- Dessim.Scheduler.now t.sched;
      t.retransmissions <- t.retransmissions + 1;
      t.on_event (Retransmit { seq = t.base; attempt = t.attempts });
      t.send_seg (Seg_data { epoch = t.tx_epoch; seq = t.base; msg = e.e_msg })
    | None -> ());
    arm t
  end

let send t msg =
  if t.up then begin
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    t.sent <- t.sent + 1;
    Hashtbl.replace t.unacked seq
      { e_msg = msg; e_sent_at = Dessim.Scheduler.now t.sched; e_rexmit = false };
    t.send_seg (Seg_data { epoch = t.tx_epoch; seq; msg });
    if t.timer = None then arm t
  end
(* While the session is down, messages are discarded: teardown/re-establish
   semantics, the protocol re-advertises its state on link up. *)

let handle_ack t ~epoch ~ack =
  if t.up && epoch = t.tx_epoch && ack > t.base then begin
    let now = Dessim.Scheduler.now t.sched in
    (* RTT-sample only the gap-filling segment (the old [base], whose arrival
       is what let the cumulative ACK advance), and only if it was never
       retransmitted (Karn). Segments behind it in the acked range may have
       been delivered into the receiver's reorder buffer long ago — their
       (send -> ack) spans include the whole wait for the gap, and feeding
       those into Jacobson's estimator inflates SRTT by orders of magnitude,
       pinning the RTO at [rto_max] exactly when recovery needs it small
       (the timeout-divergence failure mode of Jain 1986). *)
    (match Hashtbl.find_opt t.unacked t.base with
    | Some e when not e.e_rexmit -> rtt_sample t (now -. e.e_sent_at)
    | Some _ | None -> ());
    for seq = t.base to ack - 1 do
      Hashtbl.remove t.unacked seq
    done;
    t.base <- ack;
    t.attempts <- 0;
    (* Forward progress proves the path is alive: collapse any exponential
       backoff back to the estimator's RTO instead of letting a stale
       backed-off value (up to [rto_max]) pace the next loss recovery. With
       no valid sample yet ([srtt = None]) the backed-off value is the only
       evidence there is, so Karn's rule keeps it. *)
    (match t.srtt with
    | Some srtt ->
      t.rto <-
        Float.max t.cfg.rto_min
          (Float.min t.cfg.rto_max (srtt +. (4. *. t.rttvar)))
    | None -> ());
    arm t
  end

let handle_data t ~epoch ~seq msg =
  if t.up then begin
    if epoch > t.rx_epoch then begin
      (* The peer reset its session (retry cap or link bounce): adopt the new
         epoch and restart in-order delivery from zero. *)
      t.rx_epoch <- epoch;
      t.rcv_next <- 0;
      Hashtbl.reset t.buffer
    end;
    if epoch = t.rx_epoch then begin
      if seq = t.rcv_next then begin
        t.deliver msg;
        t.delivered <- t.delivered + 1;
        t.rcv_next <- t.rcv_next + 1;
        let rec drain () =
          match Hashtbl.find_opt t.buffer t.rcv_next with
          | Some m ->
            Hashtbl.remove t.buffer t.rcv_next;
            t.deliver m;
            t.delivered <- t.delivered + 1;
            t.rcv_next <- t.rcv_next + 1;
            drain ()
          | None -> ()
        in
        drain ()
      end
      else if seq > t.rcv_next then Hashtbl.replace t.buffer seq msg;
      (* Duplicates and stale segments still re-ack: the cumulative ACK is
         how a sender whose ACK was lost learns it can advance. *)
      t.send_seg (Seg_ack { epoch = t.rx_epoch; ack = t.rcv_next })
    end
    (* epoch < rx_epoch: stale segment from a torn-down session; drop. *)
  end

let on_segment t = function
  | Seg_data { epoch; seq; msg } -> handle_data t ~epoch ~seq msg
  | Seg_ack { epoch; ack } -> handle_ack t ~epoch ~ack

let link_down t =
  if t.up then begin
    t.up <- false;
    clear_session t;
    Hashtbl.reset t.buffer;
    t.tx_epoch <- t.tx_epoch + 1
  end

let link_up t =
  if not t.up then begin
    t.up <- true;
    t.tx_epoch <- t.tx_epoch + 1
  end

let is_up t = t.up

let rto t = t.rto

let outstanding t = t.next_seq - t.base

let stats t =
  {
    s_sent = t.sent;
    s_delivered = t.delivered;
    s_retransmissions = t.retransmissions;
    s_timeouts = t.timeouts;
    s_resets = t.resets;
  }
