type link_choice = Edge of int * int | Any_edge

type flap = {
  flap_link : link_choice;
  flap_start : float;
  flap_cycles : int;
  down_min : float;
  down_max : float;
  up_min : float;
  up_max : float;
}

type crash = { crash_node : int; crash_at : float; reboot_after : float option }

let flap ?(link = Any_edge) ~start ~cycles ~down ~up () =
  {
    flap_link = link;
    flap_start = start;
    flap_cycles = cycles;
    down_min = down;
    down_max = down;
    up_min = up;
    up_max = up;
  }

let validate_flap f =
  if f.flap_start < 0. then Error "flap_start must be >= 0"
  else if f.flap_cycles < 1 then Error "flap_cycles must be >= 1"
  else if f.down_min < 0. || f.down_min > f.down_max then
    Error "down durations must satisfy 0 <= down_min <= down_max"
  else if f.up_min < 0. || f.up_min > f.up_max then
    Error "up durations must satisfy 0 <= up_min <= up_max"
  else Ok ()

let validate_crash c =
  if c.crash_at < 0. then Error "crash_at must be >= 0"
  else if (match c.reboot_after with Some d -> d <= 0. | None -> false) then
    Error "reboot_after must be > 0"
  else Ok ()

type transition = { at : float; up : bool }

(* Durations are drawn in schedule order from the supplied RNG, so a flap's
   timeline is a pure function of (rng state, flap spec) — the caller hands
   in a stream derived from the run seed and gets a reproducible schedule. *)
let flap_transitions rng f =
  let draw lo hi = if hi > lo then Dessim.Rng.uniform rng lo hi else lo in
  let rec go t n acc =
    if n = 0 then List.rev acc
    else
      let down_for = draw f.down_min f.down_max in
      let up_at = t +. down_for in
      let up_for = draw f.up_min f.up_max in
      go
        (up_at +. up_for)
        (n - 1)
        ({ at = up_at; up = true } :: { at = t; up = false } :: acc)
  in
  go f.flap_start f.flap_cycles []

let flap_end_of rng f =
  match List.rev (flap_transitions rng f) with
  | { at; _ } :: _ -> at
  | [] -> f.flap_start
