(** Precomputed loop-free alternate (LFA) backup next hops for IP fast
    reroute.

    Every router precomputes, per destination, one backup next hop that is
    provably loop-free with respect to the converged routing state: neighbor
    [alt] of [self] qualifies for destination [dst] iff

    {v dist(alt, dst) < dist(alt, self) + dist(self, dst) v}

    which, with this simulator's unit link costs, is
    [metric alt dst < 1 + metric self dst]. Downstream alternates
    ([metric alt dst < metric self dst]) are preferred, then the lowest
    metric, then the lowest node id — the table is a deterministic function
    of the routing tables it was computed from.

    The module is pure bookkeeping (dense int arrays, no scheduler): the
    owning runner decides {e when} to recompute (debounced sweeps over
    dirty destinations), {e when} a node's local failure detection fires
    ({!mark_down}), and how backups are used in forwarding. A packet must
    never be backup-forwarded to a node it has already visited — the LFA
    guarantee is relative to converged state, and the data plane enforces
    the residual loop-freedom (see DESIGN.md §16). *)

type t

val create : n:int -> neighbors:(int -> int list) -> t
(** [create ~n ~neighbors] builds the empty backup state for an [n]-node
    topology. [neighbors u] must list [u]'s neighbors in ascending order
    (as [Netsim.Topology.neighbors] does) and is consulted only here. *)

val node_count : t -> int

(** {2 Local failure detection}

    A directed view: each endpoint of a failed link detects (and recovers)
    independently, [detection_delay] after the physical event — exactly when
    the routing protocol learns of it. *)

val mark_down : t -> node:int -> neighbor:int -> bool
(** [mark_down t ~node ~neighbor] records that [node] locally detected its
    link to [neighbor] down. Returns [true] when newly marked (the caller
    emits the activation event), [false] when already marked or no such
    link exists. *)

val mark_up : t -> node:int -> neighbor:int -> unit
(** Clears a detection mark; a no-op when not marked. *)

val active : t -> int -> bool
(** [active t node]: does [node] currently have any locally-detected-down
    incident link? One array load — this gates the forwarding hot path. *)

val is_down : t -> node:int -> neighbor:int -> bool
(** Is the directed link [node -> neighbor] locally detected down? *)

(** {2 The backup table} *)

val backup_id : t -> node:int -> dst:int -> int
(** Installed backup next hop, or [-1]. Allocation-free. *)

val backup : t -> node:int -> dst:int -> int option

val mark_dirty : t -> dst:int -> unit
(** A route toward [dst] changed somewhere; [dst]'s backup column is
    recomputed at the next {!sweep}. Out-of-range destinations are
    ignored. *)

val arm_sweep : t -> bool
(** [arm_sweep t] is [true] exactly once per debounce window: the first
    caller schedules the sweep, later callers see [false] until {!sweep}
    runs. *)

val dirty_backups_via : t -> node:int -> neighbor:int -> unit
(** Mark dirty every destination whose installed backup at [node] is
    [neighbor] — call when [node] detects its link to [neighbor] down, so
    alternates crossing the dead link are recomputed even if no route
    toward those destinations ever changes. *)

val dirty_missing_backups : t -> node:int -> unit
(** Mark dirty every destination with no installed backup at [node] — call
    when a link at [node] heals, since the returning neighbor can only
    {e add} alternates, and only at the healing endpoints. *)

val sweep :
  t ->
  metric:(node:int -> dst:int -> int option) ->
  next_hop:(node:int -> dst:int -> int option) ->
  on_install:(node:int -> dst:int -> backup:int -> unit) ->
  unit
(** Recompute the backup column of every dirty destination against the
    protocol's current tables, then clear the dirty set and the armed flag.
    [on_install] fires for every cell whose backup {e changed} to a real
    next hop (transitions to "no backup" are silent). *)

val compute_backup :
  t ->
  metric:(node:int -> dst:int -> int option) ->
  next_hop:(node:int -> dst:int -> int option) ->
  node:int ->
  dst:int ->
  int
(** The LFA selection rule itself, exposed for the differential oracle:
    best backup for [(node, dst)] under the given tables, or [-1]. A
    backup exists only alongside a live primary route. *)
