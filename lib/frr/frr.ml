(* Precomputed loop-free alternates (LFA) for IP fast reroute.

   The routing protocols of this simulator converge in seconds; the paper's
   loss window is exactly the span between a failure and that convergence.
   Fast reroute shrinks the window from the data plane: every router
   precomputes, per destination, one backup next hop it may switch to the
   instant it locally detects an incident link down — before any control
   message has moved.

   The backup is a classic per-link LFA. With every link of cost 1 (this
   simulator's metric), neighbor [alt] of [self] is loop-free for
   destination [dst] iff

     dist(alt, dst) < dist(alt, self) + dist(self, dst)
                    = 1 + dist(self, dst)

   i.e. [alt]'s own converged metric to [dst] must beat the path back
   through [self]. Among qualifying alternates the {e downstream} ones
   ([dist(alt, dst) < dist(self, dst)]) are preferred — a downstream backup
   is loop-free even under multiple simultaneous failures — then the lowest
   metric, then the lowest node id, so the table is deterministic.

   The LFA guarantee is relative to the converged state it was computed
   from. While routers re-converge, two activated LFAs can still chase each
   other; the forwarding layer therefore refuses a backup hop toward a node
   the packet has already visited, which bounds any residual loop to one
   revisit-free walk.

   This module is pure bookkeeping over dense int arrays — no scheduler, no
   topology object — so the engine can consult it on the forwarding hot
   path for the price of an array read. All state the runner needs is here:

   - the backup table, [node * n + dst] -> backup next hop or -1;
   - the dirty-destination set driving debounced recomputation (route
     changes mark destinations; one sweep recomputes only those);
   - per-directed-link local failure detection ([mark_down]/[mark_up]) and
     the per-node count that makes [active] a single load. *)

type t = {
  n : int;
  nbr_off : int array;  (* CSR row offsets into [nbr] *)
  nbr : int array;  (* neighbor ids, ascending within each row *)
  backup : int array;  (* node * n + dst -> backup next hop, or -1 *)
  dirty : Bytes.t;  (* per-destination: backup column needs recomputing *)
  mutable dirty_any : bool;
  mutable sweep_armed : bool;  (* the owner has a sweep scheduled *)
  down : Bytes.t;  (* per CSR slot: this end detected the link down *)
  down_count : int array;  (* per node: detected-down incident links *)
}

let create ~n ~neighbors =
  let nbr_off = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    nbr_off.(u + 1) <- nbr_off.(u) + List.length (neighbors u)
  done;
  let nbr = Array.make nbr_off.(n) 0 in
  for u = 0 to n - 1 do
    List.iteri (fun i v -> nbr.(nbr_off.(u) + i) <- v) (neighbors u)
  done;
  {
    n;
    nbr_off;
    nbr;
    backup = Array.make (n * n) (-1);
    dirty = Bytes.make ((n + 7) / 8) '\000';
    dirty_any = false;
    sweep_armed = false;
    down = Bytes.make ((nbr_off.(n) + 7) / 8) '\000';
    down_count = Array.make n 0;
  }

let node_count t = t.n

(* CSR slot of directed link [node -> neighbor], or -1. Rows are sorted, so
   this is a binary search over [degree node] entries; it only runs on the
   rare detection/heal edges, never per packet. *)
let slot t node neighbor =
  let lo = ref t.nbr_off.(node) and hi = ref (t.nbr_off.(node + 1) - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = t.nbr.(mid) in
    if v = neighbor then found := mid
    else if v < neighbor then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let bit_get b i = Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i v =
  let byte = i lsr 3 in
  let cur = Char.code (Bytes.get b byte) in
  let bit = 1 lsl (i land 7) in
  Bytes.set b byte (Char.chr (if v then cur lor bit else cur land lnot bit))

(* ---------- local failure detection ---------- *)

let mark_down t ~node ~neighbor =
  let s = slot t node neighbor in
  if s < 0 || bit_get t.down s then false
  else begin
    bit_set t.down s true;
    t.down_count.(node) <- t.down_count.(node) + 1;
    true
  end

let mark_up t ~node ~neighbor =
  let s = slot t node neighbor in
  if s >= 0 && bit_get t.down s then begin
    bit_set t.down s false;
    t.down_count.(node) <- t.down_count.(node) - 1
  end

let active t node = t.down_count.(node) > 0

let is_down t ~node ~neighbor =
  let s = slot t node neighbor in
  s >= 0 && bit_get t.down s

(* ---------- backup table ---------- *)

let backup_id t ~node ~dst = t.backup.((node * t.n) + dst)

let backup t ~node ~dst =
  let b = backup_id t ~node ~dst in
  if b < 0 then None else Some b

let mark_dirty t ~dst =
  if dst >= 0 && dst < t.n && not (bit_get t.dirty dst) then begin
    bit_set t.dirty dst true;
    t.dirty_any <- true
  end

let arm_sweep t =
  if t.sweep_armed then false
  else begin
    t.sweep_armed <- true;
    true
  end

(* Topology events must dirty destinations on their own: a link can fail or
   heal without any route toward some destination changing, so the
   route-change hook alone would leave the table stale — an installed
   alternate across the dead link, or an empty cell a healed neighbor now
   qualifies for. Detection invalidates exactly the cells at [node] whose
   backup crosses the downed link; a heal can only fill cells, so it dirties
   the endpoint's currently-empty ones. *)
let dirty_backups_via t ~node ~neighbor =
  let base = node * t.n in
  for dst = 0 to t.n - 1 do
    if t.backup.(base + dst) = neighbor then mark_dirty t ~dst
  done

let dirty_missing_backups t ~node =
  let base = node * t.n in
  for dst = 0 to t.n - 1 do
    if dst <> node && t.backup.(base + dst) < 0 then mark_dirty t ~dst
  done

(* Best LFA for (node, dst), or -1. [metric]/[next_hop] expose the owning
   protocol's current table; a backup exists only alongside a live primary
   route (no primary: nothing to protect, and no finite [dist(self, dst)]
   for the LFA inequality). Neighbors behind a locally-detected-down link
   are excluded — a backup that is already known unreachable protects
   nothing. *)
let compute_backup t ~metric ~next_hop ~node ~dst =
  match (next_hop ~node ~dst : int option) with
  | None -> -1
  | Some prim -> (
    match (metric ~node ~dst : int option) with
    | None -> -1
    | Some self_m ->
      let best = ref (-1) and best_m = ref max_int and best_down = ref false in
      for s = t.nbr_off.(node) to t.nbr_off.(node + 1) - 1 do
        let alt = t.nbr.(s) in
        if alt <> prim && not (bit_get t.down s) then begin
          match (metric ~node:alt ~dst : int option) with
          | Some am when am < 1 + self_m ->
            let downstream = am < self_m in
            if
              (downstream && not !best_down)
              || (downstream = !best_down && am < !best_m)
            then begin
              best := alt;
              best_m := am;
              best_down := downstream
            end
          | Some _ | None -> ()
        end
      done;
      !best)

(* A node whose primary is currently withdrawn keeps its previous backup:
   the table must reflect the last {e converged} view, and a sweep that
   happens to fire mid-churn (routes transiently gone) would otherwise
   erase the alternates precisely during the loss window they exist to
   cover. Once a fresh primary lands, the next sweep re-settles the cell —
   possibly to -1 if the new converged state truly has no LFA. *)
let recompute_dst t ~metric ~next_hop ~on_install dst =
  for node = 0 to t.n - 1 do
    if node <> dst && (next_hop ~node ~dst : int option) <> None then begin
      let cell = (node * t.n) + dst in
      let b = compute_backup t ~metric ~next_hop ~node ~dst in
      if b <> t.backup.(cell) then begin
        t.backup.(cell) <- b;
        if b >= 0 then on_install ~node ~dst ~backup:b
      end
    end
  done

let sweep t ~metric ~next_hop ~on_install =
  t.sweep_armed <- false;
  if t.dirty_any then begin
    t.dirty_any <- false;
    for dst = 0 to t.n - 1 do
      if bit_get t.dirty dst then begin
        bit_set t.dirty dst false;
        recompute_dst t ~metric ~next_hop ~on_install dst
      end
    done
  end
