(** Dense routing state keyed by node index.

    Distance-vector routing tables map small integer node ids to a metric
    and a next hop; storing them in flat growable arrays makes the
    forwarding-path lookup an array read and route updates in-place writes.
    A destination is {e present} once a route has been installed for it —
    presence is independent of the metric value, matching the hash-table
    tables this replaces where invalidated routes stayed in the table at
    infinity. *)

type t

val create : unit -> t

val mem : t -> int -> bool
(** [mem t dst] is true once [set] or [set_metric] has installed [dst]. *)

val metric : t -> int -> int
(** [metric t dst] is the stored metric, or [-1] when [dst] is absent. *)

val next_hop_id : t -> int -> int
(** [next_hop_id t dst] is the stored next hop, [-1] meaning none (the self
    route, or an absent destination). *)

val next_hop : t -> int -> int option
(** [next_hop t dst] is [next_hop_id] as an option — preallocated on write,
    so the per-hop forwarding query allocates nothing. *)

val set : t -> dst:int -> metric:int -> next_hop:int -> unit

val set_metric : t -> dst:int -> metric:int -> unit

val set_next_hop : t -> dst:int -> next_hop:int -> unit

val iter : t -> (int -> unit) -> unit
(** [iter t f] applies [f] to every present destination in ascending order. *)

val destinations : t -> int list
(** Present destinations, ascending — the same list the hash-table
    implementation produced with [Hashtbl.fold ... |> List.sort compare]. *)

(** Growable [int] vector with an out-of-bounds default, for dense
    per-neighbor heard-metric vectors (adj-RIB-in). *)
module Int_vec : sig
  type t

  val create : default:int -> t

  val get : t -> int -> int

  val set : t -> int -> int -> unit
end

(** Growable vector of cancellation handles, for per-route and
    per-cache-entry timeouts. Absence is the shared sentinel {!Handle_vec.none}
    (compare physically); the sentinel avoids boxing a [Some] on every
    timer (re)arm. *)
module Handle_vec : sig
  type t

  val none : Dessim.Scheduler.handle
  (** Sentinel meaning "no handle stored". Never schedule with it. *)

  val create : unit -> t

  val get : t -> int -> Dessim.Scheduler.handle
  (** [get v i] is the stored handle, or {!none}. *)

  val set : t -> int -> Dessim.Scheduler.handle -> unit

  val clear : t -> int -> unit
  (** [clear v i] resets slot [i] to {!none}. *)
end

(** Growable vector of memoised [unit -> unit] thunks (timeout-expiry
    actions), so re-arming a timer reuses the closure built on first use.
    Absence is the shared sentinel {!Fn_vec.nop} (compare physically). *)
module Fn_vec : sig
  type t

  val nop : unit -> unit

  val create : unit -> t

  val get : t -> int -> unit -> unit

  val set : t -> int -> (unit -> unit) -> unit
end
