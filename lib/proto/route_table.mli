(** Dense routing state keyed by node index.

    Distance-vector routing tables map small integer node ids to a metric
    and a next hop; storing them in flat growable arrays makes the
    forwarding-path lookup an array read and route updates in-place writes.
    A destination is {e present} once a route has been installed for it —
    presence is independent of the metric value, matching the hash-table
    tables this replaces where invalidated routes stayed in the table at
    infinity. *)

type t

val create : unit -> t

val mem : t -> int -> bool
(** [mem t dst] is true once [set] or [set_metric] has installed [dst]. *)

val metric : t -> int -> int
(** [metric t dst] is the stored metric, or [-1] when [dst] is absent. *)

val next_hop_id : t -> int -> int
(** [next_hop_id t dst] is the stored next hop, [-1] meaning none (the self
    route, or an absent destination). *)

val next_hop : t -> int -> int option
(** [next_hop t dst] is [next_hop_id] as an option — preallocated on write,
    so the per-hop forwarding query allocates nothing. *)

val set : t -> dst:int -> metric:int -> next_hop:int -> unit

val set_metric : t -> dst:int -> metric:int -> unit

val set_next_hop : t -> dst:int -> next_hop:int -> unit

val iter : t -> (int -> unit) -> unit
(** [iter t f] applies [f] to every present destination in ascending order. *)

val destinations : t -> int list
(** Present destinations, ascending — the same list the hash-table
    implementation produced with [Hashtbl.fold ... |> List.sort compare]. *)

(** Growable [int] vector with an out-of-bounds default, for dense
    per-neighbor heard-metric vectors (adj-RIB-in). *)
module Int_vec : sig
  type t

  val create : default:int -> t

  val get : t -> int -> int

  val set : t -> int -> int -> unit
end

(** Growable vector of re-armable timer deadlines, for per-route and
    per-cache-entry timeouts.

    Scheduler cancellation is lazy, so the cancel-and-reschedule idiom left
    one tombstone event in the queue per timer refresh — the 4096-node
    memory wall of DESIGN.md §15. A slot here stores the absolute expiry
    deadline plus an "armed" bit; refreshing a timer writes the deadline in
    place and the {e single} outstanding scheduler event re-arms itself on
    fire whenever the deadline has moved, so the queue carries at most one
    event per slot while expiry instants are preserved exactly. Protocols
    own the fire protocol: on fire, clear the armed bit, then either fall
    silent (deadline {!Deadline_vec.inactive}), re-arm for the remaining
    delay (deadline still in the future), or run the expiry action. *)
module Deadline_vec : sig
  type t

  val inactive : float
  (** Sentinel deadline meaning "no live timer": the expiry action must not
      run. Compares below every real simulation time. *)

  val create : unit -> t

  val get : t -> int -> float
  (** [get v i] is the stored deadline, or {!inactive}. *)

  val set : t -> int -> float -> unit

  val cancel : t -> int -> unit
  (** [cancel v i] resets slot [i] to {!inactive} without growing the
      vector; any outstanding event disarms itself at its next fire. *)

  val armed : t -> int -> bool
  (** Whether a scheduler event is outstanding for slot [i]. Independent of
      the deadline value: a cancelled slot stays armed until the outstanding
      event fires and observes {!inactive}. *)

  val set_armed : t -> int -> bool -> unit
end

(** Growable vector of memoised [unit -> unit] thunks (timeout-expiry
    actions), so re-arming a timer reuses the closure built on first use.
    Absence is the shared sentinel {!Fn_vec.nop} (compare physically). *)
module Fn_vec : sig
  type t

  val nop : unit -> unit

  val create : unit -> t

  val get : t -> int -> unit -> unit

  val set : t -> int -> (unit -> unit) -> unit
end
