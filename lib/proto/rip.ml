type message = Dv_core.message

type config = Dv_core.config

let name = "RIP"

let uses_reliable_transport = false

let default_config = Dv_core.default_config

let pp_message = Dv_core.pp_message

let message_kind = Dv_core.message_kind

type route = {
  mutable metric : int;
  mutable next_hop : Netsim.Types.node_id option;  (* None: the self route *)
  mutable timeout : Dessim.Scheduler.handle option;
}

type t = {
  cfg : config;
  rng : Dessim.Rng.t;
  id : Netsim.Types.node_id;
  actions : message Proto_intf.actions;
  mutable up : Netsim.Types.node_id list;
  table : (Netsim.Types.node_id, route) Hashtbl.t;
  changed : (Netsim.Types.node_id, unit) Hashtbl.t;
  mutable trigger : Dv_core.Trigger.t option;
  mutable started : bool;
}

(* message_size_bits must not depend on instance state; use default framing. *)
let message_size_bits msg = Dv_core.message_size_bits Dv_core.default_config msg

let infinity_of t = t.cfg.Dv_core.infinity_metric

let sorted_destinations t =
  Hashtbl.fold (fun dst _ acc -> dst :: acc) t.table [] |> List.sort compare

(* Entries advertised to [neighbor], with split horizon / poison reverse. *)
let entries_for t ~neighbor dsts =
  let entry dst =
    match Hashtbl.find_opt t.table dst with
    | None -> None
    | Some r ->
      let poisoned =
        match r.next_hop with Some nh -> nh = neighbor | None -> false
      in
      let metric = if poisoned then infinity_of t else min r.metric (infinity_of t) in
      Some { Dv_core.dst; metric }
  in
  List.filter_map entry dsts

let send_vector t ~neighbor dsts =
  let entries = entries_for t ~neighbor dsts in
  let send_chunk chunk = if chunk <> [] then t.actions.Proto_intf.send neighbor chunk in
  List.iter send_chunk (Dv_core.chunk t.cfg entries)

let send_full t neighbor = send_vector t ~neighbor (sorted_destinations t)

let flush_triggered t =
  let dsts = Hashtbl.fold (fun d () acc -> d :: acc) t.changed [] |> List.sort compare in
  Hashtbl.reset t.changed;
  if dsts <> [] then List.iter (fun n -> send_vector t ~neighbor:n dsts) t.up

let trigger t =
  match t.trigger with Some tr -> Dv_core.Trigger.request tr | None -> ()

let mark_changed t dst =
  Hashtbl.replace t.changed dst ();
  t.actions.Proto_intf.route_changed dst

let cancel_timeout r =
  match r.timeout with
  | Some h ->
    Dessim.Scheduler.cancel h;
    r.timeout <- None
  | None -> ()

let expire t dst r () =
  r.timeout <- None;
  if r.metric < infinity_of t then begin
    r.metric <- infinity_of t;
    mark_changed t dst;
    trigger t
  end

let reset_timeout t dst r =
  cancel_timeout r;
  r.timeout <- Some (t.actions.Proto_intf.after t.cfg.Dv_core.timeout (expire t dst r))

(* Returns true when the route changed (caller batches the trigger request). *)
let process_entry t ~from:neighbor (e : Dv_core.entry) =
  if e.dst = t.id then false
  else begin
    let inf = infinity_of t in
    let advertised = min e.metric inf in
    let new_metric = min (advertised + 1) inf in
    match Hashtbl.find_opt t.table e.dst with
    | None ->
      if new_metric < inf then begin
        let r = { metric = new_metric; next_hop = Some neighbor; timeout = None } in
        Hashtbl.replace t.table e.dst r;
        reset_timeout t e.dst r;
        mark_changed t e.dst;
        true
      end
      else false
    | Some r ->
      if r.next_hop = Some neighbor then begin
        if new_metric < inf then reset_timeout t e.dst r else cancel_timeout r;
        if new_metric <> r.metric then begin
          r.metric <- new_metric;
          mark_changed t e.dst;
          true
        end
        else false
      end
      else if new_metric < r.metric then begin
        r.metric <- new_metric;
        r.next_hop <- Some neighbor;
        reset_timeout t e.dst r;
        mark_changed t e.dst;
        true
      end
      else false
  end

let create cfg ~rng ~id ~neighbors ~actions =
  let t =
    {
      cfg;
      rng;
      id;
      actions;
      up = List.sort compare neighbors;
      table = Hashtbl.create 64;
      changed = Hashtbl.create 16;
      trigger = None;
      started = false;
    }
  in
  t.trigger <-
    Some
      (Dv_core.Trigger.create ~rng ~after:actions.Proto_intf.after
         ~min_delay:cfg.Dv_core.damp_min ~max_delay:cfg.Dv_core.damp_max
         ~flush:(fun () -> flush_triggered t));
  t

let rec periodic t () =
  List.iter (send_full t) t.up;
  (* The full table supersedes any pending triggered update. *)
  (match t.trigger with
  | Some tr -> Dv_core.Trigger.note_full_update_sent tr
  | None -> ());
  Hashtbl.reset t.changed;
  ignore (t.actions.Proto_intf.after (Dv_core.jittered_period t.rng t.cfg) (periodic t))

let start t =
  if t.started then invalid_arg "Rip.start: already started";
  t.started <- true;
  Hashtbl.replace t.table t.id { metric = 0; next_hop = None; timeout = None };
  (* Announce quickly on boot (RFC request/response), then settle into the
     jittered periodic cycle at a random phase. *)
  ignore
    (t.actions.Proto_intf.after
       (Dessim.Rng.uniform t.rng 0.01 0.5)
       (fun () -> List.iter (send_full t) t.up));
  ignore
    (t.actions.Proto_intf.after
       (Dessim.Rng.float t.rng t.cfg.Dv_core.period)
       (periodic t))

let on_message t ~from msg =
  if List.mem from t.up then begin
    let changed_any =
      List.fold_left (fun acc e -> process_entry t ~from e || acc) false msg
    in
    if changed_any then trigger t
  end

let on_link_down t ~neighbor =
  t.up <- List.filter (fun n -> n <> neighbor) t.up;
  let invalidate dst r changed =
    if r.next_hop = Some neighbor && r.metric < infinity_of t then begin
      r.metric <- infinity_of t;
      cancel_timeout r;
      mark_changed t dst;
      true
    end
    else changed
  in
  let changed_any = Hashtbl.fold invalidate t.table false in
  if changed_any then trigger t

let on_link_up t ~neighbor =
  if not (List.mem neighbor t.up) then begin
    t.up <- List.sort compare (neighbor :: t.up);
    send_full t neighbor
  end

let next_hop t ~dst =
  match Hashtbl.find_opt t.table dst with
  | Some r when r.metric < infinity_of t -> r.next_hop
  | Some _ | None -> None

let metric t ~dst =
  match Hashtbl.find_opt t.table dst with
  | Some r when r.metric < infinity_of t -> Some r.metric
  | Some _ | None -> None

let known_destinations t = sorted_destinations t
