type message = Dv_core.message

type config = Dv_core.config

let name = "RIP"

let uses_reliable_transport = false

let default_config = Dv_core.default_config

let pp_message = Dv_core.pp_message

let message_kind = Dv_core.message_kind

type t = {
  cfg : config;
  rng : Dessim.Rng.t;
  id : Netsim.Types.node_id;
  actions : message Proto_intf.actions;
  mutable up : Netsim.Types.node_id list;
  table : Route_table.t;
  timeouts : Route_table.Deadline_vec.t;  (* per-destination route timeouts *)
  fire_fns : Route_table.Fn_vec.t;  (* memoised per-destination fire actions *)
  order : (Netsim.Types.node_id, unit) Hashtbl.t;
      (* Destinations in hash-table iteration order. The dense table has no
         insertion order, but the order in which [on_link_down] invalidates
         routes is observable (per-destination trace events at one instant),
         and the original implementation folded over its route Hashtbl. This
         shadow table receives exactly the same insertions, so folding it
         reproduces that order. *)
  changed : (Netsim.Types.node_id, unit) Hashtbl.t;
  mutable trigger : Dv_core.Trigger.t option;
  mutable started : bool;
}

(* message_size_bits must not depend on instance state; use default framing. *)
let message_size_bits msg = Dv_core.message_size_bits Dv_core.default_config msg

let infinity_of t = t.cfg.Dv_core.infinity_metric

let sorted_destinations t = Route_table.destinations t.table

(* Entries advertised to [neighbor], with split horizon / poison reverse. *)
let entries_for t ~neighbor dsts =
  let entry dst =
    if not (Route_table.mem t.table dst) then None
    else begin
      let metric = Route_table.metric t.table dst in
      let poisoned = Route_table.next_hop_id t.table dst = neighbor in
      let metric =
        if poisoned then infinity_of t else min metric (infinity_of t)
      in
      Some { Dv_core.dst; metric }
    end
  in
  List.filter_map entry dsts

let send_vector t ~neighbor dsts =
  let entries = entries_for t ~neighbor dsts in
  let send_chunk chunk = if chunk <> [] then t.actions.Proto_intf.send neighbor chunk in
  List.iter send_chunk (Dv_core.chunk t.cfg entries)

let send_full t neighbor = send_vector t ~neighbor (sorted_destinations t)

let flush_triggered t =
  let dsts = Hashtbl.fold (fun d () acc -> d :: acc) t.changed [] |> List.sort compare in
  Hashtbl.reset t.changed;
  if dsts <> [] then List.iter (fun n -> send_vector t ~neighbor:n dsts) t.up

let trigger t =
  match t.trigger with Some tr -> Dv_core.Trigger.request tr | None -> ()

let mark_changed t dst =
  Hashtbl.replace t.changed dst ();
  t.actions.Proto_intf.route_changed dst

(* Lazy cancel: the outstanding fire event (if any) observes [inactive] and
   falls silent — no tombstone is left in the scheduler queue. *)
let cancel_timeout t dst = Route_table.Deadline_vec.cancel t.timeouts dst

let expire t dst =
  if Route_table.metric t.table dst < infinity_of t then begin
    Route_table.set_metric t.table ~dst ~metric:(infinity_of t);
    mark_changed t dst;
    trigger t
  end

(* The single outstanding fire event per destination. On fire: cancelled
   slots disarm silently; a deadline pushed into the future (the common case
   — the route was refreshed since this event was armed) re-arms for the
   remaining delay; otherwise the route really timed out. The [now + delay >
   now] guard keeps a sub-ulp residue from chaining a zero-advance event at
   the same instant forever. *)
let rec timer_fire t dst () =
  Route_table.Deadline_vec.set_armed t.timeouts dst false;
  let d = Route_table.Deadline_vec.get t.timeouts dst in
  if d <> Route_table.Deadline_vec.inactive then begin
    let now = t.actions.Proto_intf.now () in
    let delay = d -. now in
    if delay > 0. && now +. delay > now then begin
      Route_table.Deadline_vec.set_armed t.timeouts dst true;
      ignore (t.actions.Proto_intf.after delay (fire_fn t dst))
    end
    else begin
      Route_table.Deadline_vec.cancel t.timeouts dst;
      expire t dst
    end
  end

(* The fire closure for [dst], built once and reused for the slot's whole
   life: resets happen for every entry of every update from the current next
   hop, so a fresh closure per reset would dominate the control plane's
   allocation. *)
and fire_fn t dst =
  let f = Route_table.Fn_vec.get t.fire_fns dst in
  if f != Route_table.Fn_vec.nop then f
  else begin
    let f = timer_fire t dst in
    Route_table.Fn_vec.set t.fire_fns dst f;
    f
  end

(* Refresh in place: writing the new deadline is the whole steady-state
   cost. A scheduler event is armed only when none is outstanding; a refresh
   can only move the deadline forward of the armed event's fire time (the
   timeout is constant), so the chain always terminates on the latest
   deadline. *)
let reset_timeout t dst =
  Route_table.Deadline_vec.set t.timeouts dst
    (t.actions.Proto_intf.now () +. t.cfg.Dv_core.timeout);
  if not (Route_table.Deadline_vec.armed t.timeouts dst) then begin
    Route_table.Deadline_vec.set_armed t.timeouts dst true;
    ignore (t.actions.Proto_intf.after t.cfg.Dv_core.timeout (fire_fn t dst))
  end

(* Returns true when the route changed (caller batches the trigger request). *)
let process_entry t ~from:neighbor (e : Dv_core.entry) =
  if e.dst = t.id then false
  else begin
    let inf = infinity_of t in
    let advertised = min e.metric inf in
    let new_metric = min (advertised + 1) inf in
    if not (Route_table.mem t.table e.dst) then begin
      if new_metric < inf then begin
        Route_table.set t.table ~dst:e.dst ~metric:new_metric ~next_hop:neighbor;
        Hashtbl.replace t.order e.dst ();
        reset_timeout t e.dst;
        mark_changed t e.dst;
        true
      end
      else false
    end
    else if Route_table.next_hop_id t.table e.dst = neighbor then begin
      if new_metric < inf then reset_timeout t e.dst else cancel_timeout t e.dst;
      if new_metric <> Route_table.metric t.table e.dst then begin
        Route_table.set_metric t.table ~dst:e.dst ~metric:new_metric;
        mark_changed t e.dst;
        true
      end
      else false
    end
    else if new_metric < Route_table.metric t.table e.dst then begin
      Route_table.set t.table ~dst:e.dst ~metric:new_metric ~next_hop:neighbor;
      reset_timeout t e.dst;
      mark_changed t e.dst;
      true
    end
    else false
  end

let create cfg ~rng ~id ~neighbors ~actions =
  let t =
    {
      cfg;
      rng;
      id;
      actions;
      up = List.sort compare neighbors;
      table = Route_table.create ();
      timeouts = Route_table.Deadline_vec.create ();
      fire_fns = Route_table.Fn_vec.create ();
      order = Hashtbl.create 64;
      changed = Hashtbl.create 16;
      trigger = None;
      started = false;
    }
  in
  t.trigger <-
    Some
      (Dv_core.Trigger.create ~rng ~after:actions.Proto_intf.after
         ~min_delay:cfg.Dv_core.damp_min ~max_delay:cfg.Dv_core.damp_max
         ~flush:(fun () -> flush_triggered t));
  t

let rec periodic t () =
  (* One destination snapshot for the whole round: the table cannot change
     between the per-neighbor sends of a single instant. *)
  let dsts = sorted_destinations t in
  List.iter (fun n -> send_vector t ~neighbor:n dsts) t.up;
  (* The full table supersedes any pending triggered update. *)
  (match t.trigger with
  | Some tr -> Dv_core.Trigger.note_full_update_sent tr
  | None -> ());
  Hashtbl.reset t.changed;
  ignore (t.actions.Proto_intf.after (Dv_core.jittered_period t.rng t.cfg) (periodic t))

let start t =
  if t.started then invalid_arg "Rip.start: already started";
  t.started <- true;
  Route_table.set t.table ~dst:t.id ~metric:0 ~next_hop:(-1);
  Hashtbl.replace t.order t.id ();
  (* Announce quickly on boot (RFC request/response), then settle into the
     jittered periodic cycle at a random phase. *)
  ignore
    (t.actions.Proto_intf.after
       (Dessim.Rng.uniform t.rng 0.01 0.5)
       (fun () -> List.iter (send_full t) t.up));
  ignore
    (t.actions.Proto_intf.after
       (Dessim.Rng.float t.rng t.cfg.Dv_core.period)
       (periodic t))

let on_message t ~from msg =
  if List.mem from t.up then begin
    let changed_any =
      List.fold_left (fun acc e -> process_entry t ~from e || acc) false msg
    in
    if changed_any then trigger t
  end

let on_link_down t ~neighbor =
  t.up <- List.filter (fun n -> n <> neighbor) t.up;
  let invalidate dst () changed =
    if
      Route_table.next_hop_id t.table dst = neighbor
      && Route_table.metric t.table dst < infinity_of t
    then begin
      Route_table.set_metric t.table ~dst ~metric:(infinity_of t);
      cancel_timeout t dst;
      mark_changed t dst;
      true
    end
    else changed
  in
  let changed_any = Hashtbl.fold invalidate t.order false in
  if changed_any then trigger t

let on_link_up t ~neighbor =
  if not (List.mem neighbor t.up) then begin
    t.up <- List.sort compare (neighbor :: t.up);
    send_full t neighbor
  end

let next_hop t ~dst =
  if Route_table.metric t.table dst >= 0
     && Route_table.metric t.table dst < infinity_of t
  then Route_table.next_hop t.table dst
  else None

let metric t ~dst =
  let m = Route_table.metric t.table dst in
  if m >= 0 && m < infinity_of t then Some m else None

let known_destinations t = sorted_destinations t
