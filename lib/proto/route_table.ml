(* Dense routing state keyed by node index.

   Distance-vector protocols address destinations by small integer node ids,
   so their per-router state — the routing table, the adj-RIB-in heard
   vectors, the per-route timeout handles — fits flat growable arrays
   indexed by id. A lookup on the forwarding hot path is then a bounds check
   and an array read instead of a hash, and updating a route writes in place
   instead of churning hash buckets.

   Arrays grow by doubling when a larger id appears; protocols never learn
   the network size up front, so the vectors discover it. *)

module Int_vec = struct
  type t = { mutable a : int array; default : int }

  let create ~default = { a = [||]; default }

  let get v i = if i < Array.length v.a then v.a.(i) else v.default

  let grow v i =
    let cap = Array.length v.a in
    let cap' = max 16 (max (i + 1) (2 * cap)) in
    let bigger = Array.make cap' v.default in
    Array.blit v.a 0 bigger 0 cap;
    v.a <- bigger

  let set v i x =
    if i >= Array.length v.a then grow v i;
    v.a.(i) <- x
end

(* Per-slot re-armable timer deadlines. Scheduler cancellation is lazy (a
   cancelled event stays queued until its fire time), so the old
   cancel-and-reschedule idiom for the 180 s route timeouts left one
   tombstone per refresh in the queue — a population of (refreshes per
   sim-second x 180 s) dead events that became the binding memory constraint
   at 4096 nodes (DESIGN.md 15). A slot now stores the absolute expiry
   deadline plus one "armed" bit: refreshing writes the deadline in place,
   and the single outstanding scheduler event re-arms itself on fire when the
   deadline has moved. Cancellation writes the [inactive] sentinel; the
   outstanding event (if any) sees it and falls silent. At most one queued
   event per slot exists at any time, and expiry instants are preserved
   exactly: the chain always lands on the latest written deadline because a
   refresh never moves the deadline below the outstanding event's fire
   time. *)
module Deadline_vec = struct
  let inactive = neg_infinity

  type t = {
    mutable d : float array;  (* absolute expiry time, or [inactive] *)
    mutable armed : Bytes.t;  (* bitset: a scheduler event is outstanding *)
  }

  let create () = { d = [||]; armed = Bytes.empty }

  let get v i = if i < Array.length v.d then v.d.(i) else inactive

  let grow v i =
    let cap = Array.length v.d in
    let cap' = max 16 (max (i + 1) (2 * cap)) in
    let bigger = Array.make cap' inactive in
    Array.blit v.d 0 bigger 0 cap;
    v.d <- bigger

  let set v i x =
    if i >= Array.length v.d then grow v i;
    v.d.(i) <- x

  let cancel v i = if i < Array.length v.d then v.d.(i) <- inactive

  let armed v i =
    let byte = i lsr 3 in
    byte < Bytes.length v.armed
    && Char.code (Bytes.unsafe_get v.armed byte) land (1 lsl (i land 7)) <> 0

  let grow_armed v byte =
    let cap = Bytes.length v.armed in
    let cap' = max 16 (max (byte + 1) (2 * cap)) in
    let bigger = Bytes.make cap' '\000' in
    Bytes.blit v.armed 0 bigger 0 cap;
    v.armed <- bigger

  let set_armed v i b =
    let byte = i lsr 3 in
    if byte >= Bytes.length v.armed then grow_armed v byte;
    let cur = Char.code (Bytes.get v.armed byte) in
    let bit = 1 lsl (i land 7) in
    Bytes.set v.armed byte
      (Char.chr (if b then cur lor bit else cur land lnot bit))
end

(* Per-slot memoised thunks (e.g. a destination's timeout-expiry action), so
   re-arming a timer reuses the closure built the first time. Absence is the
   shared [nop], compared physically. *)
module Fn_vec = struct
  let nop () = ()

  type t = { mutable a : (unit -> unit) array }

  let create () = { a = [||] }

  let get v i = if i < Array.length v.a then v.a.(i) else nop

  let grow v i =
    let cap = Array.length v.a in
    let cap' = max 16 (max (i + 1) (2 * cap)) in
    let bigger = Array.make cap' nop in
    Array.blit v.a 0 bigger 0 cap;
    v.a <- bigger

  let set v i f =
    if i >= Array.length v.a then grow v i;
    v.a.(i) <- f
end

type t = {
  metric : Int_vec.t;  (* [absent] when no route was ever installed *)
  next_hop : Int_vec.t;  (* -1: no next hop (the self route) *)
  mutable next_hop_opt : int option array;
      (* boxed mirror of [next_hop], kept on write so the per-hop
         forwarding query returns a preallocated option *)
  mutable hi : int;  (* 1 + highest destination ever installed *)
}

let absent = -1

let create () =
  {
    metric = Int_vec.create ~default:absent;
    next_hop = Int_vec.create ~default:(-1);
    next_hop_opt = [||];
    hi = 0;
  }

let mem t dst = Int_vec.get t.metric dst <> absent

let metric t dst = Int_vec.get t.metric dst

let next_hop_id t dst = Int_vec.get t.next_hop dst

let next_hop t dst =
  if dst < Array.length t.next_hop_opt then t.next_hop_opt.(dst) else None

let set_next_hop t ~dst ~next_hop =
  Int_vec.set t.next_hop dst next_hop;
  if dst >= Array.length t.next_hop_opt then begin
    let cap = Array.length t.next_hop_opt in
    let cap' = max 16 (max (dst + 1) (2 * cap)) in
    let bigger = Array.make cap' None in
    Array.blit t.next_hop_opt 0 bigger 0 cap;
    t.next_hop_opt <- bigger
  end;
  t.next_hop_opt.(dst) <- (if next_hop < 0 then None else Some next_hop)

let set_metric t ~dst ~metric =
  Int_vec.set t.metric dst metric;
  if dst >= t.hi then t.hi <- dst + 1

let set t ~dst ~metric ~next_hop =
  set_metric t ~dst ~metric;
  set_next_hop t ~dst ~next_hop

let iter t f =
  for dst = 0 to t.hi - 1 do
    if Int_vec.get t.metric dst <> absent then f dst
  done

(* Ascending, i.e. exactly the old [Hashtbl.fold ... |> List.sort compare]. *)
let destinations t =
  let acc = ref [] in
  for dst = t.hi - 1 downto 0 do
    if Int_vec.get t.metric dst <> absent then acc := dst :: !acc
  done;
  !acc
