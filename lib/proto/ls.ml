type config = {
  spf_delay : float;
  refresh_interval : float;
  max_age : float;
  header_bytes : int;
  neighbor_bytes : int;
}

type lsa = {
  origin : Netsim.Types.node_id;
  seq : int;
  adjacencies : Netsim.Types.node_id list;
}

type message = Lsa of lsa

let name = "LS"

let uses_reliable_transport = true

let default_config =
  {
    spf_delay = 0.05;
    refresh_interval = 1800.;
    max_age = 3600.;
    header_bytes = 24;
    neighbor_bytes = 4;
  }

let message_size_bits (Lsa l) =
  let c = default_config in
  8 * (c.header_bytes + (c.neighbor_bytes * List.length l.adjacencies))

let message_kind (_ : message) = Proto_intf.Update

let pp_message ppf (Lsa l) =
  Fmt.pf ppf "lsa origin=%d seq=%d adj=%a" l.origin l.seq
    Fmt.(list ~sep:(any ",") int)
    l.adjacencies

type route = { next_hop : Netsim.Types.node_id; distance : int }

type t = {
  cfg : config;
  rng : Dessim.Rng.t;
  id : Netsim.Types.node_id;
  actions : message Proto_intf.actions;
  mutable up : Netsim.Types.node_id list;
  lsdb : (Netsim.Types.node_id, lsa) Hashtbl.t;
  stamps : (Netsim.Types.node_id, float) Hashtbl.t;
      (* when each LSA was last stored/refreshed, for max-age purging *)
  mutable my_seq : int;
  routes : (Netsim.Types.node_id, route) Hashtbl.t;
  mutable spf_scheduled : bool;
  mutable started : bool;
}

let create cfg ~rng ~id ~neighbors ~actions =
  {
    cfg;
    rng;
    id;
    actions;
    up = List.sort compare neighbors;
    lsdb = Hashtbl.create 64;
    stamps = Hashtbl.create 64;
    my_seq = -1;
    routes = Hashtbl.create 64;
    spf_scheduled = false;
    started = false;
  }

let database t =
  Hashtbl.fold (fun _ l acc -> l :: acc) t.lsdb []
  |> List.sort (fun a b -> compare a.origin b.origin)

let flood t ~except lsa =
  let forward n = if n <> except then t.actions.Proto_intf.send n (Lsa lsa) in
  List.iter forward t.up

(* Dijkstra over the two-way-checked LSDB graph; unit link costs make this a
   BFS, implemented with a plain queue for determinism (sorted adjacency). *)
let run_spf t =
  let two_way u v =
    match (Hashtbl.find_opt t.lsdb u, Hashtbl.find_opt t.lsdb v) with
    | Some lu, Some lv -> List.mem v lu.adjacencies && List.mem u lv.adjacencies
    | _ -> false
  in
  let adjacency u =
    match Hashtbl.find_opt t.lsdb u with
    | None -> []
    | Some l -> List.filter (two_way u) (List.sort compare l.adjacencies)
  in
  let dist = Hashtbl.create 64 in
  let first_hop = Hashtbl.create 64 in
  Hashtbl.replace dist t.id 0;
  let q = Queue.create () in
  Queue.add t.id q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    let du = Hashtbl.find dist u in
    let relax v =
      if not (Hashtbl.mem dist v) then begin
        Hashtbl.replace dist v (du + 1);
        (* The first hop toward [v] is inherited from [u], except for our
           direct neighbors, whose first hop is themselves. *)
        let hop = if u = t.id then v else Hashtbl.find first_hop u in
        Hashtbl.replace first_hop v hop;
        Queue.add v q
      end
    in
    List.iter relax (adjacency u)
  done;
  (* Diff against the previous routing table and notify changes. *)
  let changed = Hashtbl.create 16 in
  Hashtbl.iter
    (fun dst d ->
      if dst <> t.id then begin
        let hop = Hashtbl.find first_hop dst in
        match Hashtbl.find_opt t.routes dst with
        | Some r when r.next_hop = hop && r.distance = d -> ()
        | Some _ | None -> Hashtbl.replace changed dst { next_hop = hop; distance = d }
      end)
    dist;
  let lost = ref [] in
  Hashtbl.iter
    (fun dst _ -> if not (Hashtbl.mem dist dst) then lost := dst :: !lost)
    t.routes;
  Hashtbl.iter
    (fun dst r ->
      Hashtbl.replace t.routes dst r;
      t.actions.Proto_intf.route_changed dst)
    changed;
  List.iter
    (fun dst ->
      Hashtbl.remove t.routes dst;
      t.actions.Proto_intf.route_changed dst)
    !lost

let schedule_spf t =
  if not t.spf_scheduled then begin
    t.spf_scheduled <- true;
    ignore
      (t.actions.Proto_intf.after t.cfg.spf_delay (fun () ->
           t.spf_scheduled <- false;
           run_spf t))
  end

(* Store an LSA and arm its max-age purge: if it is not refreshed (its stamp
   unchanged) within [max_age], it is flushed from the database — OSPF's
   protection against a dead router's state living forever. Our own LSA is
   exempt: we re-originate it on the refresh timer instead. *)
let store_lsa t lsa =
  let now = t.actions.Proto_intf.now () in
  Hashtbl.replace t.lsdb lsa.origin lsa;
  Hashtbl.replace t.stamps lsa.origin now;
  if lsa.origin <> t.id then
    ignore
      (t.actions.Proto_intf.after t.cfg.max_age (fun () ->
           match Hashtbl.find_opt t.stamps lsa.origin with
           | Some stamp when stamp = now ->
             Hashtbl.remove t.lsdb lsa.origin;
             Hashtbl.remove t.stamps lsa.origin;
             schedule_spf t
           | Some _ | None -> ()))

let originate t =
  t.my_seq <- t.my_seq + 1;
  let lsa = { origin = t.id; seq = t.my_seq; adjacencies = t.up } in
  store_lsa t lsa;
  flood t ~except:t.id lsa;
  schedule_spf t

let start t =
  if t.started then invalid_arg "Ls.start: already started";
  t.started <- true;
  originate t;
  (* Periodic re-origination keeps neighbors' max-age timers fed. *)
  let rec refresh () =
    ignore
      (t.actions.Proto_intf.after t.cfg.refresh_interval (fun () ->
           originate t;
           refresh ()))
  in
  refresh ()

let on_message t ~from msg =
  if List.mem from t.up then begin
    match msg with
    | Lsa lsa ->
      let fresher =
        match Hashtbl.find_opt t.lsdb lsa.origin with
        | None -> true
        | Some stored -> lsa.seq > stored.seq
      in
      if fresher then begin
        store_lsa t lsa;
        flood t ~except:from lsa;
        schedule_spf t
      end
      else begin
        (* The sender is behind: help it catch up, as OSPF flooding does. *)
        match Hashtbl.find_opt t.lsdb lsa.origin with
        | Some stored when stored.seq > lsa.seq ->
          t.actions.Proto_intf.send from (Lsa stored)
        | Some _ | None -> ()
      end
  end

let on_link_down t ~neighbor =
  t.up <- List.filter (fun n -> n <> neighbor) t.up;
  originate t

let on_link_up t ~neighbor =
  if not (List.mem neighbor t.up) then begin
    t.up <- List.sort compare (neighbor :: t.up);
    (* Database exchange on adjacency formation. *)
    List.iter (fun l -> t.actions.Proto_intf.send neighbor (Lsa l)) (database t);
    originate t
  end

let next_hop t ~dst =
  match Hashtbl.find_opt t.routes dst with
  | Some r -> Some r.next_hop
  | None -> None

let metric t ~dst =
  if dst = t.id then Some 0
  else
    match Hashtbl.find_opt t.routes dst with
    | Some r -> Some r.distance
    | None -> None

let known_destinations t =
  let dsts = Hashtbl.fold (fun d _ acc -> d :: acc) t.routes [] in
  List.sort compare (t.id :: dsts)
