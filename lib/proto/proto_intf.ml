(** The interface every routing protocol implements.

    A protocol instance runs inside one router. It never touches the network
    directly: the simulation harness hands it an {!actions} record whose
    callbacks send control messages to neighbors, set timers, and report
    best-route changes to the measurement layer. *)

(** Protocol-internal occurrences worth tracing but invisible from the
    outside (no message is sent, no route changes). Protocols report them
    through {!actions.note}; harnesses that do not trace install a no-op. *)
type note =
  | Mrai_deferred of { neighbor : Netsim.Types.node_id; dsts : int }
      (** changed destinations queued behind a closed MRAI gate *)

(** The broad class of a control message, for observers that count updates
    and withdrawals per protocol without decoding protocol wire formats. *)
type message_kind = Update | Withdrawal | Mixed

type 'msg actions = {
  now : unit -> float;  (** current simulation time *)
  send : Netsim.Types.node_id -> 'msg -> unit;
      (** transmit a control message to a directly connected neighbor *)
  after : float -> (unit -> unit) -> Dessim.Scheduler.handle;
      (** set a cancellable timer *)
  route_changed : Netsim.Types.node_id -> unit;
      (** notify observers that the best route to a destination changed
          (metric or next hop) *)
  note : note -> unit;
      (** report a protocol-internal occurrence to the trace layer *)
}

module type PROTOCOL = sig
  type t
  (** per-router protocol state *)

  type message
  (** the protocol's wire format *)

  type config

  val name : string

  val uses_reliable_transport : bool
  (** [true] for protocols running over a TCP-like channel (BGP, and OSPF-style
      reliable flooding): their messages are never lost to queue overflow,
      only to link failure. *)

  val default_config : config

  val message_size_bits : message -> int
  (** wire size, charged against link bandwidth *)

  val message_kind : message -> message_kind
  (** how observers should classify the message: an advertisement, an
      explicit withdrawal, or a vector mixing both (distance-vector
      protocols advertise reachable and poisoned entries together) *)

  val pp_message : message Fmt.t

  val create :
    config ->
    rng:Dessim.Rng.t ->
    id:Netsim.Types.node_id ->
    neighbors:Netsim.Types.node_id list ->
    actions:message actions ->
    t
  (** [create cfg ~rng ~id ~neighbors ~actions] builds the state for router
      [id] whose attached (initially up) links lead to [neighbors]. *)

  val start : t -> unit
  (** begin operation: install the self route, announce, start timers *)

  val on_message : t -> from:Netsim.Types.node_id -> message -> unit
  (** a control message from direct neighbor [from] arrived. The harness
      profiles this callback (and every timer set through [actions]) under
      the [proto.<name>.on_message] / [proto.<name>.timer] scopes of
      [Obs.Prof], so protocol implementations need no instrumentation of
      their own to show up in [rcsim perf]'s hot-scope report. *)

  val on_link_down : t -> neighbor:Netsim.Types.node_id -> unit
  (** the link to [neighbor] was detected down *)

  val on_link_up : t -> neighbor:Netsim.Types.node_id -> unit
  (** the link to [neighbor] came (back) up *)

  val next_hop : t -> dst:Netsim.Types.node_id -> Netsim.Types.node_id option
  (** the forwarding decision: [None] means the router drops packets for
      [dst] (no route). Never consulted for [dst = id]. *)

  val metric : t -> dst:Netsim.Types.node_id -> int option
  (** current best metric (hop count / path length) toward [dst], if any *)

  val known_destinations : t -> Netsim.Types.node_id list
  (** destinations present in the routing table (reachable or not), sorted *)
end

type 'c protocol = (module PROTOCOL with type config = 'c)
