type message = Dv_core.message

type config = Dv_core.config

let name = "DBF"

let uses_reliable_transport = false

let default_config = Dv_core.default_config

let pp_message = Dv_core.pp_message

let message_kind = Dv_core.message_kind

let message_size_bits msg = Dv_core.message_size_bits Dv_core.default_config msg

(* One neighbor's adj-RIB-in: the vector of metrics last heard from it,
   dense by destination id. A heard metric of [infinity_metric] and a
   never-heard destination are indistinguishable to every consumer (both
   mean "this neighbor offers no route"), so the vector needs no separate
   presence bit — infinity is the fill value. *)
type neighbor_cache = {
  heard : Route_table.Int_vec.t;
  ctimeout : Route_table.Deadline_vec.t;
  fire_fns : Route_table.Fn_vec.t;  (* memoised per-destination fire actions *)
}

type t = {
  cfg : config;
  rng : Dessim.Rng.t;
  id : Netsim.Types.node_id;
  actions : message Proto_intf.actions;
  mutable up : Netsim.Types.node_id list;
  mutable cache : neighbor_cache option array;
      (* dense by neighbor id: [recompute] probes every up neighbor for
         every destination, so this lookup must not hash or allocate *)
  table : Route_table.t;
  changed : (Netsim.Types.node_id, unit) Hashtbl.t;
  mutable trigger : Dv_core.Trigger.t option;
  mutable started : bool;
}

let infinity_of t = t.cfg.Dv_core.infinity_metric

let cache_slot t neighbor =
  if neighbor < Array.length t.cache then t.cache.(neighbor) else None

let set_cache_slot t neighbor slot =
  if neighbor >= Array.length t.cache then begin
    let cap = Array.length t.cache in
    let cap' = max 16 (max (neighbor + 1) (2 * cap)) in
    let bigger = Array.make cap' None in
    Array.blit t.cache 0 bigger 0 cap;
    t.cache <- bigger
  end;
  t.cache.(neighbor) <- slot

let neighbor_cache t neighbor =
  match cache_slot t neighbor with
  | Some nc -> nc
  | None ->
    let nc =
      {
        heard = Route_table.Int_vec.create ~default:(infinity_of t);
        ctimeout = Route_table.Deadline_vec.create ();
        fire_fns = Route_table.Fn_vec.create ();
      }
    in
    set_cache_slot t neighbor (Some nc);
    nc

let cached_metric t ~neighbor ~dst =
  match cache_slot t neighbor with
  | None -> None
  | Some nc ->
    let heard = Route_table.Int_vec.get nc.heard dst in
    if heard < infinity_of t then Some heard else None

let sorted_destinations t = Route_table.destinations t.table

let entries_for t ~neighbor dsts =
  let entry dst =
    if not (Route_table.mem t.table dst) then None
    else begin
      let metric = Route_table.metric t.table dst in
      let poisoned = Route_table.next_hop_id t.table dst = neighbor in
      let metric =
        if poisoned then infinity_of t else min metric (infinity_of t)
      in
      Some { Dv_core.dst; metric }
    end
  in
  List.filter_map entry dsts

let send_vector t ~neighbor dsts =
  let entries = entries_for t ~neighbor dsts in
  let send_chunk chunk = if chunk <> [] then t.actions.Proto_intf.send neighbor chunk in
  List.iter send_chunk (Dv_core.chunk t.cfg entries)

let send_full t neighbor = send_vector t ~neighbor (sorted_destinations t)

let flush_triggered t =
  let dsts = Hashtbl.fold (fun d () acc -> d :: acc) t.changed [] |> List.sort compare in
  Hashtbl.reset t.changed;
  if dsts <> [] then List.iter (fun n -> send_vector t ~neighbor:n dsts) t.up

let trigger t =
  match t.trigger with Some tr -> Dv_core.Trigger.request tr | None -> ()

(* The metric this router would reach [dst] through [neighbor] at. *)
let candidate t ~neighbor ~dst ~inf =
  match cache_slot t neighbor with
  | None -> inf
  | Some nc -> min (Route_table.Int_vec.get nc.heard dst + 1) inf

(* Recompute the best route to [dst] from the neighbor cache. Prefers the
   incumbent next hop on ties, then the lowest neighbor id, so routes are
   stable and deterministic. Returns true when metric or next hop changed.
   Seeding the scan with the incumbent's candidate (rather than reordering
   the neighbor list) keeps the tie-break without building a list. *)
let recompute t dst =
  if dst = t.id then false
  else begin
    let inf = infinity_of t in
    let present = Route_table.mem t.table dst in
    let incumbent_nh =
      if present then Route_table.next_hop_id t.table dst else -1
    in
    let incumbent_live = incumbent_nh >= 0 && List.mem incumbent_nh t.up in
    let best_metric = ref inf and best_nh = ref (-1) in
    if incumbent_live then begin
      let cand = candidate t ~neighbor:incumbent_nh ~dst ~inf in
      if cand < inf then begin
        best_metric := cand;
        best_nh := incumbent_nh
      end
    end;
    List.iter
      (fun neighbor ->
        if not (incumbent_live && neighbor = incumbent_nh) then begin
          let cand = candidate t ~neighbor ~dst ~inf in
          if cand < !best_metric then begin
            best_metric := cand;
            best_nh := neighbor
          end
        end)
      t.up;
    let metric = !best_metric and next_hop = !best_nh in
    if not present then begin
      if metric < inf then begin
        Route_table.set t.table ~dst ~metric ~next_hop;
        Hashtbl.replace t.changed dst ();
        t.actions.Proto_intf.route_changed dst;
        true
      end
      else false
    end
    else begin
      (* A dead route's stored next hop is inert (masked by the metric), so
         only a live next-hop difference counts as a change. *)
      let old_metric = Route_table.metric t.table dst in
      if
        old_metric <> metric
        || (metric < inf && Route_table.next_hop_id t.table dst <> next_hop)
      then begin
        Route_table.set_metric t.table ~dst ~metric;
        if metric < inf then Route_table.set_next_hop t.table ~dst ~next_hop;
        Hashtbl.replace t.changed dst ();
        t.actions.Proto_intf.route_changed dst;
        true
      end
      else false
    end
  end

let cache_expire t nc ~dst =
  if Route_table.Int_vec.get nc.heard dst < infinity_of t then begin
    Route_table.Int_vec.set nc.heard dst (infinity_of t);
    if recompute t dst then trigger t
  end

(* The single outstanding fire event per (neighbor, dst) slot — the re-arm
   protocol of [Route_table.Deadline_vec] (see Rip.timer_fire; this is the
   same machine over the per-neighbor cache). The closure captures [nc], so
   an event left over from a discarded cache (the neighbor's link went down
   and [on_link_down] dropped the slot) keeps operating on the orphan record
   — exactly the inert late fire the cancel-based implementation produced
   for slots it could not reach. *)
let rec cache_timer_fire t nc dst () =
  Route_table.Deadline_vec.set_armed nc.ctimeout dst false;
  let d = Route_table.Deadline_vec.get nc.ctimeout dst in
  if d <> Route_table.Deadline_vec.inactive then begin
    let now = t.actions.Proto_intf.now () in
    let delay = d -. now in
    if delay > 0. && now +. delay > now then begin
      Route_table.Deadline_vec.set_armed nc.ctimeout dst true;
      ignore (t.actions.Proto_intf.after delay (cache_fire_fn t nc dst))
    end
    else begin
      Route_table.Deadline_vec.cancel nc.ctimeout dst;
      cache_expire t nc ~dst
    end
  end

(* The fire closure for this cache entry, built once and reused for every
   subsequent refresh of the same (neighbor, dst) slot. *)
and cache_fire_fn t nc dst =
  let f = Route_table.Fn_vec.get nc.fire_fns dst in
  if f != Route_table.Fn_vec.nop then f
  else begin
    let f = cache_timer_fire t nc dst in
    Route_table.Fn_vec.set nc.fire_fns dst f;
    f
  end

let store_heard t nc (e : Dv_core.entry) =
  let inf = infinity_of t in
  let advertised = min e.metric inf in
  Route_table.Int_vec.set nc.heard e.dst advertised;
  if advertised < inf then begin
    Route_table.Deadline_vec.set nc.ctimeout e.dst
      (t.actions.Proto_intf.now () +. t.cfg.Dv_core.timeout);
    if not (Route_table.Deadline_vec.armed nc.ctimeout e.dst) then begin
      Route_table.Deadline_vec.set_armed nc.ctimeout e.dst true;
      ignore
        (t.actions.Proto_intf.after t.cfg.Dv_core.timeout
           (cache_fire_fn t nc e.dst))
    end
  end
  else Route_table.Deadline_vec.cancel nc.ctimeout e.dst

let create cfg ~rng ~id ~neighbors ~actions =
  let t =
    {
      cfg;
      rng;
      id;
      actions;
      up = List.sort compare neighbors;
      cache = [||];
      table = Route_table.create ();
      changed = Hashtbl.create 16;
      trigger = None;
      started = false;
    }
  in
  t.trigger <-
    Some
      (Dv_core.Trigger.create ~rng ~after:actions.Proto_intf.after
         ~min_delay:cfg.Dv_core.damp_min ~max_delay:cfg.Dv_core.damp_max
         ~flush:(fun () -> flush_triggered t));
  t

let rec periodic t () =
  (* One destination snapshot for the whole round: the table cannot change
     between the per-neighbor sends of a single instant. *)
  let dsts = sorted_destinations t in
  List.iter (fun n -> send_vector t ~neighbor:n dsts) t.up;
  (match t.trigger with
  | Some tr -> Dv_core.Trigger.note_full_update_sent tr
  | None -> ());
  Hashtbl.reset t.changed;
  ignore (t.actions.Proto_intf.after (Dv_core.jittered_period t.rng t.cfg) (periodic t))

let start t =
  if t.started then invalid_arg "Dbf.start: already started";
  t.started <- true;
  Route_table.set t.table ~dst:t.id ~metric:0 ~next_hop:(-1);
  ignore
    (t.actions.Proto_intf.after
       (Dessim.Rng.uniform t.rng 0.01 0.5)
       (fun () -> List.iter (send_full t) t.up));
  ignore
    (t.actions.Proto_intf.after
       (Dessim.Rng.float t.rng t.cfg.Dv_core.period)
       (periodic t))

let on_message t ~from msg =
  if List.mem from t.up then begin
    let nc = neighbor_cache t from in
    List.iter (store_heard t nc) msg;
    let changed_any =
      List.fold_left (fun acc (e : Dv_core.entry) -> recompute t e.dst || acc) false msg
    in
    if changed_any then trigger t
  end

let on_link_down t ~neighbor =
  t.up <- List.filter (fun n -> n <> neighbor) t.up;
  (* Discard the dead neighbor's vector: it is no longer a candidate. *)
  (match cache_slot t neighbor with
  | Some nc ->
    Route_table.iter t.table (fun dst ->
        Route_table.Deadline_vec.cancel nc.ctimeout dst);
    set_cache_slot t neighbor None
  | None -> ());
  (* Instant switch-over: recompute every known destination from the cache. *)
  let changed_any =
    List.fold_left
      (fun acc dst -> recompute t dst || acc)
      false (sorted_destinations t)
  in
  if changed_any then trigger t

let on_link_up t ~neighbor =
  if not (List.mem neighbor t.up) then begin
    t.up <- List.sort compare (neighbor :: t.up);
    send_full t neighbor
  end

let next_hop t ~dst =
  if Route_table.metric t.table dst >= 0
     && Route_table.metric t.table dst < infinity_of t
  then Route_table.next_hop t.table dst
  else None

let metric t ~dst =
  let m = Route_table.metric t.table dst in
  if m >= 0 && m < infinity_of t then Some m else None

let known_destinations t = sorted_destinations t
