type message = Dv_core.message

type config = Dv_core.config

let name = "DBF"

let uses_reliable_transport = false

let default_config = Dv_core.default_config

let pp_message = Dv_core.pp_message

let message_kind = Dv_core.message_kind

let message_size_bits msg = Dv_core.message_size_bits Dv_core.default_config msg

type cache_entry = {
  mutable heard : int;  (* metric as advertised by the neighbor *)
  mutable timeout : Dessim.Scheduler.handle option;
}

type route = {
  mutable metric : int;
  mutable next_hop : Netsim.Types.node_id option;  (* None: the self route *)
}

type t = {
  cfg : config;
  rng : Dessim.Rng.t;
  id : Netsim.Types.node_id;
  actions : message Proto_intf.actions;
  mutable up : Netsim.Types.node_id list;
  cache : (Netsim.Types.node_id, (Netsim.Types.node_id, cache_entry) Hashtbl.t) Hashtbl.t;
  table : (Netsim.Types.node_id, route) Hashtbl.t;
  changed : (Netsim.Types.node_id, unit) Hashtbl.t;
  mutable trigger : Dv_core.Trigger.t option;
  mutable started : bool;
}

let infinity_of t = t.cfg.Dv_core.infinity_metric

let neighbor_cache t neighbor =
  match Hashtbl.find_opt t.cache neighbor with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 64 in
    Hashtbl.replace t.cache neighbor tbl;
    tbl

let cached_metric t ~neighbor ~dst =
  match Hashtbl.find_opt t.cache neighbor with
  | None -> None
  | Some tbl ->
    (match Hashtbl.find_opt tbl dst with
    | Some e when e.heard < infinity_of t -> Some e.heard
    | Some _ | None -> None)

let sorted_destinations t =
  Hashtbl.fold (fun dst _ acc -> dst :: acc) t.table [] |> List.sort compare

let entries_for t ~neighbor dsts =
  let entry dst =
    match Hashtbl.find_opt t.table dst with
    | None -> None
    | Some r ->
      let poisoned =
        match r.next_hop with Some nh -> nh = neighbor | None -> false
      in
      let metric = if poisoned then infinity_of t else min r.metric (infinity_of t) in
      Some { Dv_core.dst; metric }
  in
  List.filter_map entry dsts

let send_vector t ~neighbor dsts =
  let entries = entries_for t ~neighbor dsts in
  let send_chunk chunk = if chunk <> [] then t.actions.Proto_intf.send neighbor chunk in
  List.iter send_chunk (Dv_core.chunk t.cfg entries)

let send_full t neighbor = send_vector t ~neighbor (sorted_destinations t)

let flush_triggered t =
  let dsts = Hashtbl.fold (fun d () acc -> d :: acc) t.changed [] |> List.sort compare in
  Hashtbl.reset t.changed;
  if dsts <> [] then List.iter (fun n -> send_vector t ~neighbor:n dsts) t.up

let trigger t =
  match t.trigger with Some tr -> Dv_core.Trigger.request tr | None -> ()

(* Recompute the best route to [dst] from the neighbor cache. Prefers the
   incumbent next hop on ties, then the lowest neighbor id, so routes are
   stable and deterministic. Returns true when metric or next hop changed. *)
let recompute t dst =
  if dst = t.id then false
  else begin
    let inf = infinity_of t in
    let consider (best_metric, best_nh) neighbor =
      match Hashtbl.find_opt t.cache neighbor with
      | None -> (best_metric, best_nh)
      | Some tbl ->
        (match Hashtbl.find_opt tbl dst with
        | None -> (best_metric, best_nh)
        | Some e ->
          let cand = min (e.heard + 1) inf in
          if cand < best_metric then (cand, Some neighbor)
          else (best_metric, best_nh))
    in
    let incumbent = Hashtbl.find_opt t.table dst in
    let ordered_neighbors =
      (* Listing the incumbent first makes ties keep the current next hop. *)
      match incumbent with
      | Some { next_hop = Some nh; _ } when List.mem nh t.up ->
        nh :: List.filter (fun n -> n <> nh) t.up
      | Some _ | None -> t.up
    in
    let metric, next_hop = List.fold_left consider (inf, None) ordered_neighbors in
    match incumbent with
    | None ->
      if metric < inf then begin
        Hashtbl.replace t.table dst { metric; next_hop };
        Hashtbl.replace t.changed dst ();
        t.actions.Proto_intf.route_changed dst;
        true
      end
      else false
    | Some r ->
      (* A dead route's stored next hop is inert (masked by the metric), so
         only a live next-hop difference counts as a change. *)
      if r.metric <> metric || (metric < inf && r.next_hop <> next_hop) then begin
        r.metric <- metric;
        if metric < inf then r.next_hop <- next_hop;
        Hashtbl.replace t.changed dst ();
        t.actions.Proto_intf.route_changed dst;
        true
      end
      else false
  end

let cache_expire t ~neighbor ~dst entry () =
  entry.timeout <- None;
  if entry.heard < infinity_of t then begin
    entry.heard <- infinity_of t;
    if recompute t dst then trigger t
  end;
  ignore neighbor

let store_heard t ~neighbor (e : Dv_core.entry) =
  let inf = infinity_of t in
  let advertised = min e.metric inf in
  let tbl = neighbor_cache t neighbor in
  let entry =
    match Hashtbl.find_opt tbl e.dst with
    | Some entry -> entry
    | None ->
      let entry = { heard = inf; timeout = None } in
      Hashtbl.replace tbl e.dst entry;
      entry
  in
  entry.heard <- advertised;
  (match entry.timeout with
  | Some h ->
    Dessim.Scheduler.cancel h;
    entry.timeout <- None
  | None -> ());
  if advertised < inf then
    entry.timeout <-
      Some
        (t.actions.Proto_intf.after t.cfg.Dv_core.timeout
           (cache_expire t ~neighbor ~dst:e.dst entry))

let create cfg ~rng ~id ~neighbors ~actions =
  let t =
    {
      cfg;
      rng;
      id;
      actions;
      up = List.sort compare neighbors;
      cache = Hashtbl.create 8;
      table = Hashtbl.create 64;
      changed = Hashtbl.create 16;
      trigger = None;
      started = false;
    }
  in
  t.trigger <-
    Some
      (Dv_core.Trigger.create ~rng ~after:actions.Proto_intf.after
         ~min_delay:cfg.Dv_core.damp_min ~max_delay:cfg.Dv_core.damp_max
         ~flush:(fun () -> flush_triggered t));
  t

let rec periodic t () =
  List.iter (send_full t) t.up;
  (match t.trigger with
  | Some tr -> Dv_core.Trigger.note_full_update_sent tr
  | None -> ());
  Hashtbl.reset t.changed;
  ignore (t.actions.Proto_intf.after (Dv_core.jittered_period t.rng t.cfg) (periodic t))

let start t =
  if t.started then invalid_arg "Dbf.start: already started";
  t.started <- true;
  Hashtbl.replace t.table t.id { metric = 0; next_hop = None };
  ignore
    (t.actions.Proto_intf.after
       (Dessim.Rng.uniform t.rng 0.01 0.5)
       (fun () -> List.iter (send_full t) t.up));
  ignore
    (t.actions.Proto_intf.after
       (Dessim.Rng.float t.rng t.cfg.Dv_core.period)
       (periodic t))

let on_message t ~from msg =
  if List.mem from t.up then begin
    List.iter (store_heard t ~neighbor:from) msg;
    let changed_any =
      List.fold_left (fun acc (e : Dv_core.entry) -> recompute t e.dst || acc) false msg
    in
    if changed_any then trigger t
  end

let on_link_down t ~neighbor =
  t.up <- List.filter (fun n -> n <> neighbor) t.up;
  (* Discard the dead neighbor's vector: it is no longer a candidate. *)
  (match Hashtbl.find_opt t.cache neighbor with
  | Some tbl ->
    Hashtbl.iter
      (fun _ e -> match e.timeout with Some h -> Dessim.Scheduler.cancel h | None -> ())
      tbl;
    Hashtbl.remove t.cache neighbor
  | None -> ());
  (* Instant switch-over: recompute every known destination from the cache. *)
  let changed_any =
    List.fold_left
      (fun acc dst -> recompute t dst || acc)
      false (sorted_destinations t)
  in
  if changed_any then trigger t

let on_link_up t ~neighbor =
  if not (List.mem neighbor t.up) then begin
    t.up <- List.sort compare (neighbor :: t.up);
    send_full t neighbor
  end

let next_hop t ~dst =
  match Hashtbl.find_opt t.table dst with
  | Some r when r.metric < infinity_of t -> r.next_hop
  | Some _ | None -> None

let metric t ~dst =
  match Hashtbl.find_opt t.table dst with
  | Some r when r.metric < infinity_of t -> Some r.metric
  | Some _ | None -> None

let known_destinations t = sorted_destinations t
