type entry = { dst : Netsim.Types.node_id; metric : int }

type message = entry list

type config = {
  period : float;
  timeout : float;
  infinity_metric : int;
  damp_min : float;
  damp_max : float;
  max_entries : int;
  header_bytes : int;
  entry_bytes : int;
}

let default_config =
  {
    period = 30.;
    timeout = 180.;
    infinity_metric = 16;
    damp_min = 1.;
    damp_max = 5.;
    max_entries = 25;
    header_bytes = 32;
    entry_bytes = 20;
  }

let message_size_bits cfg msg =
  8 * (cfg.header_bytes + (cfg.entry_bytes * List.length msg))

let pp_entry ppf e = Fmt.pf ppf "%d:%d" e.dst e.metric

let pp_message ppf msg =
  Fmt.pf ppf "dv[%a]" Fmt.(list ~sep:(any " ") pp_entry) msg

(* A distance vector carries reachable and poisoned entries in one message;
   there is no pure withdrawal on the wire. *)
let message_kind (_ : message) = Proto_intf.Mixed

let chunk cfg entries =
  let rec take n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | e :: rest -> take (n - 1) (e :: acc) rest
  in
  let rec split acc = function
    | [] -> List.rev acc
    | entries ->
      let head, rest = take cfg.max_entries [] entries in
      split (head :: acc) rest
  in
  split [] entries

let jittered_period rng cfg =
  cfg.period *. Dessim.Rng.uniform rng 0.95 1.05

module Trigger = struct
  type t = {
    rng : Dessim.Rng.t;
    after : float -> (unit -> unit) -> Dessim.Scheduler.handle;
    min_delay : float;
    max_delay : float;
    flush : unit -> unit;
    mutable closed : bool;
    mutable pending : bool;
  }

  let create ~rng ~after ~min_delay ~max_delay ~flush =
    { rng; after; min_delay; max_delay; flush; closed = false; pending = false }

  let gate_open t = not t.closed

  let rec close_gate t =
    t.closed <- true;
    let delay = Dessim.Rng.uniform t.rng t.min_delay t.max_delay in
    ignore
      (t.after delay (fun () ->
           t.closed <- false;
           if t.pending then begin
             t.pending <- false;
             t.flush ();
             close_gate t
           end))

  let request t =
    if t.closed then t.pending <- true
    else begin
      t.flush ();
      close_gate t
    end

  let note_full_update_sent t = t.pending <- false
end
