(** Machinery shared by the distance-vector protocols (RIP and DBF).

    Covers the wire format (vectors of (destination, metric) entries, chunked
    into messages of at most [max_entries] entries as RFC 2453 prescribes),
    message sizing, and the triggered-update damping gate that spaces
    consecutive triggered updates by a random 1-5 s interval. *)

type entry = { dst : Netsim.Types.node_id; metric : int }

type message = entry list
(** One update message: at most [config.max_entries] entries. *)

type config = {
  period : float;  (** periodic full-table update interval (30 s) *)
  timeout : float;  (** route expiration when not refreshed (180 s) *)
  infinity_metric : int;  (** unreachability metric (16) *)
  damp_min : float;  (** triggered-update damping lower bound (1 s) *)
  damp_max : float;  (** triggered-update damping upper bound (5 s) *)
  max_entries : int;  (** destination entries per message (25) *)
  header_bytes : int;
  entry_bytes : int;
}

val default_config : config
(** RFC 2453 values: 30 s period, 180 s timeout, infinity 16, damping 1-5 s,
    25 entries, 32-byte header, 20-byte entries. *)

val message_size_bits : config -> message -> int

val pp_message : message Fmt.t

val message_kind : message -> Proto_intf.message_kind
(** Always {!Proto_intf.Mixed}: one vector carries reachable and poisoned
    entries alike. *)

val chunk : config -> entry list -> message list
(** [chunk cfg entries] splits [entries] into messages of at most
    [cfg.max_entries] entries, preserving order. *)

val jittered_period : Dessim.Rng.t -> config -> float
(** [jittered_period rng cfg] is the next periodic-update delay: the period
    offset by a small random amount ([+-5%]) to avoid update synchronization
    across routers, per RFC 2453. *)

(** The triggered-update gate.

    The first change after a quiet interval flushes immediately; the gate then
    closes for a random [damp_min .. damp_max] interval. Changes arriving
    while closed are flushed in one batch when the gate reopens (which closes
    it again). This is the mechanism the paper identifies as lengthening
    inconsistency windows (Section 4.3). *)
module Trigger : sig
  type t

  val create :
    rng:Dessim.Rng.t ->
    after:(float -> (unit -> unit) -> Dessim.Scheduler.handle) ->
    min_delay:float ->
    max_delay:float ->
    flush:(unit -> unit) ->
    t
  (** [flush] must send the pending triggered update and clear the pending
      set; it is only invoked when {!request} was called since the last
      flush. *)

  val request : t -> unit
  (** Signal that a triggered update is wanted. *)

  val gate_open : t -> bool
  (** True when the next {!request} would flush immediately. *)

  val note_full_update_sent : t -> unit
  (** Inform the gate that a periodic full-table update just went out, so a
      pending triggered update is now redundant and can be forgotten. *)
end
