type mrai_scope = Per_neighbor | Per_destination

type rfd_config = {
  half_life : float;
  cutoff : float;
  reuse : float;
  max_suppress : float;
  withdrawal_penalty : float;
  update_penalty : float;
}

let default_rfd =
  {
    half_life = 60.;
    cutoff = 2.;
    reuse = 0.75;
    max_suppress = 240.;
    withdrawal_penalty = 1.;
    update_penalty = 0.5;
  }

type config = {
  mrai_mean : float;
  mrai_jitter : float;
  mrai_scope : mrai_scope;
  rfd : rfd_config option;
  header_bytes : int;
  dst_bytes : int;
  hop_bytes : int;
}

type message =
  | Update of { dst : Netsim.Types.node_id; path : Netsim.Types.node_id list }
  | Withdraw of { dsts : Netsim.Types.node_id list }

let name = "BGP"

let uses_reliable_transport = true

let default_config =
  {
    mrai_mean = 30.;
    mrai_jitter = 0.25;
    mrai_scope = Per_neighbor;
    rfd = None;
    header_bytes = 19;
    dst_bytes = 4;
    hop_bytes = 2;
  }

let fast_config = { default_config with mrai_mean = 3. }

let message_size_bits msg =
  let c = default_config in
  let bytes =
    match msg with
    | Update { path; _ } -> c.header_bytes + c.dst_bytes + (c.hop_bytes * List.length path)
    | Withdraw { dsts } -> c.header_bytes + (c.dst_bytes * List.length dsts)
  in
  8 * bytes

let message_kind = function
  | Update _ -> Proto_intf.Update
  | Withdraw _ -> Proto_intf.Withdrawal

let pp_message ppf = function
  | Update { dst; path } ->
    Fmt.pf ppf "update dst=%d path=%a" dst Netsim.Types.pp_path path
  | Withdraw { dsts } ->
    Fmt.pf ppf "withdraw %a" Fmt.(list ~sep:(any ",") int) dsts

(* The best route to a destination: which neighbor it came from and the path
   exactly as that neighbor advertised it (neighbor first, dst last). *)
type best = { via : Netsim.Types.node_id; path_rx : Netsim.Types.node_id list }

type gate = {
  mutable closed : bool;
  pending : (Netsim.Types.node_id, unit) Hashtbl.t;
}

(* Route-flap-damping bookkeeping, per (neighbor, destination): an
   exponentially decaying penalty; crossing [cutoff] suppresses the rib
   entry until the penalty decays below [reuse]. *)
type rfd_entry = {
  mutable penalty : float;
  mutable stamp : float;  (* when [penalty] was last materialized *)
  mutable suppressed : bool;
}

type t = {
  cfg : config;
  rng : Dessim.Rng.t;
  id : Netsim.Types.node_id;
  actions : message Proto_intf.actions;
  mutable up : Netsim.Types.node_id list;
  rib_in :
    (Netsim.Types.node_id, (Netsim.Types.node_id, Netsim.Types.node_id list) Hashtbl.t)
    Hashtbl.t;
  best : (Netsim.Types.node_id, best) Hashtbl.t;
  fib : Route_table.t;
      (* dense mirror of [best] (metric = received path length, next hop =
         [via]), maintained by [recompute] so the per-hop forwarding query
         never hashes *)
  gates : (Netsim.Types.node_id, gate) Hashtbl.t;  (* Per_neighbor scope *)
  pd_gates : (Netsim.Types.node_id * Netsim.Types.node_id, gate) Hashtbl.t;
      (* Per_destination scope, keyed by (neighbor, dst) *)
  rfd_table : (Netsim.Types.node_id * Netsim.Types.node_id, rfd_entry) Hashtbl.t;
  mutable started : bool;
}

let create cfg ~rng ~id ~neighbors ~actions =
  {
    cfg;
    rng;
    id;
    actions;
    up = List.sort compare neighbors;
    rib_in = Hashtbl.create 8;
    best = Hashtbl.create 64;
    fib = Route_table.create ();
    gates = Hashtbl.create 8;
    pd_gates = Hashtbl.create 64;
    rfd_table = Hashtbl.create 64;
    started = false;
  }

let neighbor_rib t neighbor =
  match Hashtbl.find_opt t.rib_in neighbor with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 64 in
    Hashtbl.replace t.rib_in neighbor tbl;
    tbl

let rib_in_path t ~neighbor ~dst =
  match Hashtbl.find_opt t.rib_in neighbor with
  | None -> None
  | Some tbl -> Hashtbl.find_opt tbl dst

let best_path t ~dst =
  if dst = t.id then Some [ t.id ]
  else
    match Hashtbl.find_opt t.best dst with
    | Some b -> Some (t.id :: b.path_rx)
    | None -> None

let my_path t dst =
  match best_path t ~dst with
  | Some p -> p
  | None -> invalid_arg "Bgp.my_path: no route"

let mrai_delay t =
  let lo = t.cfg.mrai_mean *. (1. -. t.cfg.mrai_jitter) in
  let hi = t.cfg.mrai_mean *. (1. +. t.cfg.mrai_jitter) in
  Dessim.Rng.uniform t.rng lo hi

let gate_for t neighbor dst =
  let find_or_create tbl key =
    match Hashtbl.find_opt tbl key with
    | Some g -> g
    | None ->
      let g = { closed = false; pending = Hashtbl.create 8 } in
      Hashtbl.replace tbl key g;
      g
  in
  match t.cfg.mrai_scope with
  | Per_neighbor -> find_or_create t.gates neighbor
  | Per_destination -> find_or_create t.pd_gates (neighbor, dst)

let send_update_now t neighbor dst =
  t.actions.Proto_intf.send neighbor (Update { dst; path = my_path t dst })

(* Advertise a batch of changed destinations to [neighbor], subject to the
   MRAI gate. Following the paper's Section 4.3: a router that has just
   processed an event sends updates for *all* the paths that changed, then
   turns the (per-neighbor) timer on; destinations changing while the timer
   runs accumulate and flush in one batch (with then-current state) when it
   expires, which closes it again. *)
let rec advertise_batch t neighbor dsts =
  if dsts <> [] && List.mem neighbor t.up then begin
    match t.cfg.mrai_scope with
    | Per_neighbor ->
      let g = gate_for t neighbor 0 in
      if g.closed then begin
        List.iter (fun d -> Hashtbl.replace g.pending d ()) dsts;
        t.actions.Proto_intf.note
          (Proto_intf.Mrai_deferred { neighbor; dsts = List.length dsts })
      end
      else begin
        List.iter (send_update_now t neighbor) dsts;
        close_gate t neighbor g
      end
    | Per_destination ->
      let per_dst dst =
        let g = gate_for t neighbor dst in
        if g.closed then begin
          Hashtbl.replace g.pending dst ();
          t.actions.Proto_intf.note
            (Proto_intf.Mrai_deferred { neighbor; dsts = 1 })
        end
        else begin
          send_update_now t neighbor dst;
          close_gate t neighbor g
        end
      in
      List.iter per_dst dsts
  end

and close_gate t neighbor g =
  g.closed <- true;
  ignore
    (t.actions.Proto_intf.after (mrai_delay t) (fun () ->
         g.closed <- false;
         let pend =
           Hashtbl.fold (fun d () acc -> d :: acc) g.pending [] |> List.sort compare
         in
         Hashtbl.reset g.pending;
         if List.mem neighbor t.up then begin
           let live = List.filter (fun d -> d = t.id || Hashtbl.mem t.best d) pend in
           advertise_batch t neighbor live
         end))

let drop_pending t neighbor dst =
  let g = gate_for t neighbor dst in
  Hashtbl.remove g.pending dst

let rfd_decayed (c : rfd_config) (e : rfd_entry) ~now =
  e.penalty *. (0.5 ** ((now -. e.stamp) /. c.half_life))

let rfd_suppressed t ~neighbor ~dst =
  match t.cfg.rfd with
  | None -> false
  | Some _ -> (
    match Hashtbl.find_opt t.rfd_table (neighbor, dst) with
    | Some e -> e.suppressed
    | None -> false)

(* Recompute the best route to [dst]; shortest path wins, ties broken by the
   lowest neighbor id (standard BGP-style deterministic tie-break: no
   incumbent stickiness, so equal-length alternates can be explored — the
   source of the transient-loop dynamics the paper studies). Suppressed
   (flap-damped) rib entries are not eligible. *)
type transition = Unchanged | Changed | Lost

let recompute t dst =
  if dst = t.id then Unchanged
  else begin
    let incumbent = Hashtbl.find_opt t.best dst in
    let ordered_neighbors = t.up in
    let consider acc neighbor =
      match rib_in_path t ~neighbor ~dst with
      | None -> acc
      | Some _ when rfd_suppressed t ~neighbor ~dst -> acc
      | Some path ->
        let len = List.length path in
        (match acc with
        | Some (best_len, _, _) when best_len <= len -> acc
        | Some _ | None -> Some (len, neighbor, path))
    in
    let winner = List.fold_left consider None ordered_neighbors in
    match (incumbent, winner) with
    | None, None -> Unchanged
    | Some old, Some (_, via, path) when old.via = via && old.path_rx = path ->
      Unchanged
    | _, Some (len, via, path) ->
      Hashtbl.replace t.best dst { via; path_rx = path };
      Route_table.set t.fib ~dst ~metric:len ~next_hop:via;
      t.actions.Proto_intf.route_changed dst;
      Changed
    | Some _, None ->
      Hashtbl.remove t.best dst;
      Route_table.set t.fib ~dst ~metric:(-1) ~next_hop:(-1);
      t.actions.Proto_intf.route_changed dst;
      Lost
  end

(* Push the consequences of recomputed destinations to all up neighbors:
   lost destinations produce one immediate batched withdrawal; changed ones
   go through the MRAI gate. *)
let propagate t ~lost ~updated =
  let to_neighbor neighbor =
    (match lost with
    | [] -> ()
    | dsts ->
      List.iter (fun d -> drop_pending t neighbor d) dsts;
      t.actions.Proto_intf.send neighbor (Withdraw { dsts })
    );
    advertise_batch t neighbor updated
  in
  if lost <> [] || updated <> [] then List.iter to_neighbor t.up

let recompute_and_propagate t dsts =
  let classify (lost, updated) dst =
    match recompute t dst with
    | Unchanged -> (lost, updated)
    | Changed -> (lost, dst :: updated)
    | Lost -> (dst :: lost, updated)
  in
  let lost, updated = List.fold_left classify ([], []) dsts in
  propagate t ~lost:(List.sort compare lost) ~updated:(List.sort compare updated)

(* Charge a flap penalty against (neighbor, dst) and suppress the entry when
   the penalty crosses the cutoff; a timer releases it once the exponential
   decay reaches the reuse threshold (capped by [max_suppress]). *)
let rfd_penalize t ~neighbor ~dst amount =
  match t.cfg.rfd with
  | None -> ()
  | Some c ->
    let now = t.actions.Proto_intf.now () in
    let e =
      match Hashtbl.find_opt t.rfd_table (neighbor, dst) with
      | Some e -> e
      | None ->
        let e = { penalty = 0.; stamp = now; suppressed = false } in
        Hashtbl.replace t.rfd_table (neighbor, dst) e;
        e
    in
    e.penalty <- rfd_decayed c e ~now +. amount;
    e.stamp <- now;
    if e.penalty >= c.cutoff && not e.suppressed then begin
      e.suppressed <- true;
      let release_delay =
        Float.min c.max_suppress
          (c.half_life *. (Float.log (e.penalty /. c.reuse) /. Float.log 2.))
      in
      ignore
        (t.actions.Proto_intf.after release_delay (fun () ->
             if e.suppressed then begin
               e.suppressed <- false;
               let now = t.actions.Proto_intf.now () in
               e.penalty <- Float.min (rfd_decayed c e ~now) c.reuse;
               e.stamp <- now;
               recompute_and_propagate t [ dst ]
             end))
    end

let start t =
  if t.started then invalid_arg "Bgp.start: already started";
  t.started <- true;
  List.iter (fun n -> advertise_batch t n [ t.id ]) t.up

let on_message t ~from msg =
  if List.mem from t.up then begin
    match msg with
    | Update { dst; path } ->
      let rib = neighbor_rib t from in
      let previous = Hashtbl.find_opt rib dst in
      (* Loop detection: a path through ourselves is unusable; the paper
         treats it as an implicit withdrawal. *)
      if List.mem t.id path then begin
        Hashtbl.remove rib dst;
        (match t.cfg.rfd with
        | Some c when previous <> None ->
          rfd_penalize t ~neighbor:from ~dst c.withdrawal_penalty
        | Some _ | None -> ())
      end
      else begin
        Hashtbl.replace rib dst path;
        match (t.cfg.rfd, previous) with
        | Some c, Some old when old <> path ->
          rfd_penalize t ~neighbor:from ~dst c.update_penalty
        | (Some _ | None), _ -> ()
      end;
      recompute_and_propagate t [ dst ]
    | Withdraw { dsts } ->
      let rib = neighbor_rib t from in
      let withdraw_one dst =
        let existed = Hashtbl.mem rib dst in
        Hashtbl.remove rib dst;
        match t.cfg.rfd with
        | Some c when existed ->
          rfd_penalize t ~neighbor:from ~dst c.withdrawal_penalty
        | Some _ | None -> ()
      in
      List.iter withdraw_one dsts;
      recompute_and_propagate t dsts
  end

let on_link_down t ~neighbor =
  t.up <- List.filter (fun n -> n <> neighbor) t.up;
  (* The session is gone: discard Adj-RIB-in and rate-limiter state. *)
  let affected =
    match Hashtbl.find_opt t.rib_in neighbor with
    | None -> []
    | Some tbl ->
      let dsts = Hashtbl.fold (fun d _ acc -> d :: acc) tbl [] in
      Hashtbl.remove t.rib_in neighbor;
      List.sort compare dsts
  in
  Hashtbl.remove t.gates neighbor;
  Hashtbl.iter
    (fun (n, d) _ -> if n = neighbor then Hashtbl.remove t.pd_gates (n, d))
    (Hashtbl.copy t.pd_gates);
  recompute_and_propagate t affected

let on_link_up t ~neighbor =
  if not (List.mem neighbor t.up) then begin
    t.up <- List.sort compare (neighbor :: t.up);
    (* Session (re)establishment: the initial table exchange is not subject
       to the MRAI timer. *)
    let dsts =
      t.id :: (Hashtbl.fold (fun d _ acc -> d :: acc) t.best [] |> List.sort compare)
    in
    List.iter (send_update_now t neighbor) dsts;
    let g = gate_for t neighbor t.id in
    if not g.closed then close_gate t neighbor g
  end

let next_hop t ~dst =
  if dst = t.id then None else Route_table.next_hop t.fib dst

let metric t ~dst =
  if dst = t.id then Some 0
  else
    let m = Route_table.metric t.fib dst in
    if m < 0 then None else Some m

let known_destinations t =
  let dsts = Hashtbl.fold (fun d _ acc -> d :: acc) t.best [] in
  List.sort compare (t.id :: dsts)
