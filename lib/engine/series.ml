type t = {
  start : float;
  width : float;
  counts : float array;
  sums : float array;
}

let create ~start ~width ~buckets =
  if width <= 0. then invalid_arg "Series.create: width must be positive";
  if buckets <= 0 then invalid_arg "Series.create: buckets must be positive";
  { start; width; counts = Array.make buckets 0.; sums = Array.make buckets 0. }

let start t = t.start

let width t = t.width

let buckets t = Array.length t.counts

let bucket_of_time t time =
  let i = int_of_float (Float.floor ((time -. t.start) /. t.width)) in
  if time < t.start || i >= Array.length t.counts then None else Some i

let time_of_bucket t i = t.start +. (float_of_int i *. t.width)

(* [bucket_of_time] inlined without the option: this runs once or twice per
   delivered packet. *)
let add t ~time v =
  if time >= t.start then begin
    let i = int_of_float (Float.floor ((time -. t.start) /. t.width)) in
    if i < Array.length t.counts then begin
      t.counts.(i) <- t.counts.(i) +. 1.;
      t.sums.(i) <- t.sums.(i) +. v
    end
  end

let count t i = int_of_float (Float.round t.counts.(i))

let frac_count t i = t.counts.(i)

let sum t i = t.sums.(i)

let rate t i = t.counts.(i) /. t.width

let mean t i = if t.counts.(i) = 0. then 0. else t.sums.(i) /. t.counts.(i)

let accumulate ~into src =
  if
    into.start <> src.start || into.width <> src.width
    || Array.length into.counts <> Array.length src.counts
  then invalid_arg "Series.accumulate: shape mismatch";
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) +. c) src.counts;
  Array.iteri (fun i s -> into.sums.(i) <- into.sums.(i) +. s) src.sums

let scale t k =
  Array.iteri (fun i c -> t.counts.(i) <- c *. k) t.counts;
  Array.iteri (fun i s -> t.sums.(i) <- s *. k) t.sums
