(** Discrete-event scheduler.

    The scheduler maintains a simulation clock and a queue of timed callbacks.
    Events scheduled for the same instant fire in the order they were
    scheduled, which makes runs deterministic for a fixed seed. *)

type t
(** A scheduler with its own clock, starting at time [0.0]. *)

type handle
(** A cancellation handle for a scheduled event. *)

val create : unit -> t
(** [create ()] is a fresh scheduler at time [0.0] with no pending events. *)

val now : t -> float
(** [now t] is the current simulation time in seconds. *)

val schedule : t -> at:float -> (unit -> unit) -> handle
(** [schedule t ~at f] arranges for [f ()] to run at absolute time [at].

    @raise Invalid_argument if [at] is earlier than [now t]. *)

val after : t -> delay:float -> (unit -> unit) -> handle
(** [after t ~delay f] is [schedule t ~at:(now t +. delay) f].

    @raise Invalid_argument if [delay] is negative. *)

val cancel : handle -> unit
(** [cancel h] prevents the event behind [h] from firing. Cancelling an event
    that already fired (or was already cancelled) is a no-op. *)

val is_cancelled : handle -> bool
(** [is_cancelled h] is true once [cancel h] has been called. *)

val pending : t -> int
(** [pending t] is the number of queued events, including cancelled ones that
    have not yet been discarded. *)

val step : t -> bool
(** [step t] fires the next event, advancing the clock to its timestamp.
    Returns [false] when the queue is empty. Cancelled events are skipped
    (still consuming a [step]) without invoking their callback. *)

val run : ?until:float -> t -> unit
(** [run t] fires events until the queue is empty. With [~until], stops before
    any event later than [until] and leaves the clock at [until] (or at the
    last fired event if the queue emptied first, whichever is later never
    exceeding [until]).

    If the calling domain is inside {!with_wall_budget} and the budget is
    exhausted, [run] raises {!Wall_timeout} (checked every 1024 events). *)

exception Wall_timeout
(** Raised by {!run} when the enclosing {!with_wall_budget} deadline passes. *)

exception Stop_requested
(** Raised by {!run} (at the same 1024-event poll as the wall budget) once
    {!request_stop} has been called. *)

val request_stop : unit -> unit
(** [request_stop ()] asks every {!run} loop in the process — on any domain —
    to stop at its next poll by raising {!Stop_requested}. Idempotent, and
    async-signal-safe: it only stores into an atomic, so it is the intended
    body of a SIGINT/SIGTERM handler. Code that is about to start a new
    simulation can consult {!stop_requested} to avoid starting at all. *)

val stop_requested : unit -> bool
(** Whether {!request_stop} has been called (and not yet cleared). *)

val clear_stop : unit -> unit
(** [clear_stop ()] re-arms the process for new runs — called by a resume
    path that continues work in the same process after a graceful stop. *)

val with_wall_budget : float -> (unit -> 'a) -> 'a
(** [with_wall_budget seconds fn] runs [fn ()] with a wall-clock deadline of
    [seconds] from now. Any {!run} loop executing on the same domain inside
    [fn] raises {!Wall_timeout} once the deadline passes; code between events
    is not interrupted (the watchdog is cooperative, not preemptive). Budgets
    nest: the innermost one is in effect, and the previous budget is restored
    on exit — including on exception.

    @raise Invalid_argument if [seconds <= 0]. *)

val events_processed : t -> int
(** [events_processed t] counts events fired since creation (cancelled events
    excluded). *)

val events_scheduled : t -> int
(** [events_scheduled t] counts every {!schedule}/{!after} call since
    creation, whether or not the event later fired. *)

val events_skipped : t -> int
(** [events_skipped t] counts cancelled events that were popped and discarded
    without firing — the queue-churn cost of cancellation. *)

val max_queue_depth : t -> int
(** [max_queue_depth t] is the high-water mark of the event queue: the largest
    number of simultaneously pending events (cancelled-but-undiscarded
    included) observed since creation. *)
