(** Discrete-event scheduler.

    The scheduler maintains a simulation clock and a queue of timed callbacks.
    Events scheduled for the same instant fire in the order they were
    scheduled, which makes runs deterministic for a fixed seed. *)

type t
(** A scheduler with its own clock, starting at time [0.0]. *)

type handle
(** A cancellation handle for a scheduled event. *)

val create : unit -> t
(** [create ()] is a fresh scheduler at time [0.0] with no pending events. *)

val now : t -> float
(** [now t] is the current simulation time in seconds. *)

val schedule : t -> at:float -> (unit -> unit) -> handle
(** [schedule t ~at f] arranges for [f ()] to run at absolute time [at].

    @raise Invalid_argument if [at] is earlier than [now t]. *)

val after : t -> delay:float -> (unit -> unit) -> handle
(** [after t ~delay f] is [schedule t ~at:(now t +. delay) f].

    @raise Invalid_argument if [delay] is negative. *)

val fire_at : t -> at:float -> (unit -> unit) -> unit
(** [fire_at t ~at f] is {!schedule} for events that will never be cancelled:
    no handle is allocated or returned. Combined with the internal event-cell
    free list this makes a steady-state self-rescheduling event (a traffic
    pacer, a periodic task) allocation-free.

    @raise Invalid_argument if [at] is earlier than [now t]. *)

val fire_after : t -> delay:float -> (unit -> unit) -> unit
(** [fire_after t ~delay f] is [fire_at t ~at:(now t +. delay) f].

    @raise Invalid_argument if [delay] is negative. *)

(** {2 Tagged events}

    The closure fallback above allocates one closure per distinct event. Hot
    event categories (a link delivery, a protocol timer) instead register a
    handler {e once} and schedule (tag, payload) pairs: the payload is
    usually a long-lived mutable record, so a steady-state event costs no
    allocation beyond an optional 2-word cancellation handle. Tags are typed:
    a ['a tag] only accepts ['a] payloads. *)

type 'a tag
(** A handler registered with {!register}, identifying both the code to run
    and the payload type it expects. *)

val register : t -> ('a -> unit) -> 'a tag
(** [register t f] adds [f] to [t]'s dispatch table and returns its tag.
    Registration is cheap but not recycled: register per long-lived object
    (a link, a router), not per event. *)

val schedule_tag : t -> at:float -> 'a tag -> 'a -> unit
(** [schedule_tag t ~at tag x] arranges for [tag]'s handler to receive [x] at
    time [at]. Not cancellable (like {!fire_at}).

    @raise Invalid_argument if [at] is earlier than [now t]. *)

val after_tag : t -> delay:float -> 'a tag -> 'a -> unit
(** [after_tag t ~delay tag x] is [schedule_tag t ~at:(now t +. delay)].

    @raise Invalid_argument if [delay] is negative. *)

val schedule_tag_h : t -> at:float -> 'a tag -> 'a -> handle
(** [schedule_tag_h] is {!schedule_tag} returning a cancellation handle, for
    tagged events that may be cancelled (in-flight payloads on a failing
    link, protocol route timeouts). *)

val after_tag_h : t -> delay:float -> 'a tag -> 'a -> handle
(** [after_tag_h] is {!after_tag} returning a cancellation handle. *)

val schedule_tag_using : t -> at:float -> handle:handle -> 'a tag -> 'a -> unit
(** [schedule_tag_using t ~at ~handle tag x] is {!schedule_tag_h} reusing a
    caller-owned [handle] record instead of allocating one, for objects that
    live through a sequence of events (a packet crossing a link reuses one
    handle for its transmission and its propagation). The caller must ensure
    no other queued event still references [handle] — recycling a handle that
    a cancelled, still-queued event points at would resurrect that event. *)

val after_tag_using : t -> delay:float -> handle:handle -> 'a tag -> 'a -> unit
(** [after_tag_using] is {!schedule_tag_using} with a relative delay. *)

val inert_handle : handle
(** A handle attached to no event, for initializing mutable handle fields
    before the first real event exists. {!cancel} on it is a harmless no-op
    and {!is_cancelled} reports whatever was last done to it — it guards
    nothing. *)

val fresh_handle : unit -> handle
(** A new handle attached to no event yet, for callers that own and reuse
    handle records across events (see {!schedule_tag_using}). *)

val renew : handle -> unit
(** [renew h] clears [h]'s cancelled flag so a caller-owned handle can be
    reused for a new event. Subject to the same safety condition as
    {!schedule_tag_using}: no queued event may still reference [h]. *)

val cancel : handle -> unit
(** [cancel h] prevents the event behind [h] from firing. Cancelling an event
    that already fired (or was already cancelled) is a no-op. *)

val is_cancelled : handle -> bool
(** [is_cancelled h] is true once [cancel h] has been called. *)

val pending : t -> int
(** [pending t] is the number of queued events, including cancelled ones that
    have not yet been discarded. *)

val step : t -> bool
(** [step t] fires the next event, advancing the clock to its timestamp.
    Returns [false] when the queue is empty. Cancelled events are skipped
    (still consuming a [step]) without invoking their callback. *)

val run : ?until:float -> t -> unit
(** [run t] fires events until the queue is empty. With [~until], stops before
    any event later than [until] and leaves the clock at [until] (or at the
    last fired event if the queue emptied first, whichever is later never
    exceeding [until]).

    If the calling domain is inside {!with_wall_budget} and the budget is
    exhausted, [run] raises {!Wall_timeout} (checked every 1024 events). *)

exception Wall_timeout
(** Raised by {!run} when the enclosing {!with_wall_budget} deadline passes. *)

exception Stop_requested
(** Raised by {!run} (at the same 1024-event poll as the wall budget) once
    {!request_stop} has been called. *)

val request_stop : unit -> unit
(** [request_stop ()] asks every {!run} loop in the process — on any domain —
    to stop at its next poll by raising {!Stop_requested}. Idempotent, and
    async-signal-safe: it only stores into an atomic, so it is the intended
    body of a SIGINT/SIGTERM handler. Code that is about to start a new
    simulation can consult {!stop_requested} to avoid starting at all. *)

val stop_requested : unit -> bool
(** Whether {!request_stop} has been called (and not yet cleared). *)

val clear_stop : unit -> unit
(** [clear_stop ()] re-arms the process for new runs — called by a resume
    path that continues work in the same process after a graceful stop. *)

val with_wall_budget : float -> (unit -> 'a) -> 'a
(** [with_wall_budget seconds fn] runs [fn ()] with a wall-clock deadline of
    [seconds] from now. Any {!run} loop executing on the same domain inside
    [fn] raises {!Wall_timeout} once the deadline passes; code between events
    is not interrupted (the watchdog is cooperative, not preemptive). Budgets
    nest: the innermost one is in effect, and the previous budget is restored
    on exit — including on exception.

    @raise Invalid_argument if [seconds <= 0]. *)

val events_processed : t -> int
(** [events_processed t] counts events fired since creation (cancelled events
    excluded). *)

val events_scheduled : t -> int
(** [events_scheduled t] counts every {!schedule}/{!after} call since
    creation, whether or not the event later fired. *)

val events_skipped : t -> int
(** [events_skipped t] counts cancelled events that were popped and discarded
    without firing — the queue-churn cost of cancellation. *)

val max_queue_depth : t -> int
(** [max_queue_depth t] is the high-water mark of the event queue: the largest
    number of simultaneously pending events (cancelled-but-undiscarded
    included) observed since creation. *)

(** {2 Test seam} *)

type recorder = {
  on_add : float -> int -> unit;  (** called as [(time, seq)] on every push *)
  on_pop : float -> int -> bool -> unit;
      (** called as [(time, seq, fired)] on every pop; [fired] is false for
          a cancelled event being discarded *)
}
(** Observation hooks for the differential test harness: recording the exact
    (time, seq) stream a real scenario feeds the queue lets tests replay it
    through a reference heap and compare pop orders. Costs one [option] check
    per push/pop when unset. *)

val set_recorder : t -> recorder option -> unit
(** [set_recorder t (Some r)] installs [r] until replaced. Tests only. *)

val with_default_recorder : recorder -> (unit -> 'a) -> 'a
(** [with_default_recorder r fn] makes every scheduler {!create}d by the
    current domain during [fn ()] start with recorder [r] — the seam for
    observing a scheduler whose creation site a test cannot reach (the
    simulation runner builds its own). Nests; restored on exit. *)
