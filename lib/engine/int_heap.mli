(** Structure-of-arrays 4-ary min-heap with [int] payloads.

    {!Heap} specialised to immediate payloads: the scheduler queues pool
    indices instead of event records, so every array here is unboxed — sift
    moves execute no write barrier and the GC never scans the queue. Ordered
    by [(time, seq)] exactly like {!Heap}; since that key is a strict total
    order, both implementations pop identical sequences (checked by the
    differential suite in [test/test_differential.ml]). *)

type t

val create : unit -> t
(** An empty heap. *)

val length : t -> int
(** Number of queued entries. *)

val is_empty : t -> bool

val add : t -> time:float -> seq:int -> int -> unit
(** [add t ~time ~seq v] inserts [v] keyed by [(time, seq)]. Amortised O(1)
    allocation-free (arrays double in place). [seq] must be unique across
    live entries for deterministic ordering. *)

type slot = { mutable slot_time : float }
(** Reusable out-parameter: an all-float record, so writing the popped time
    into it is an unboxed store instead of an allocation. *)

val slot : unit -> slot

val peek_time : t -> slot -> bool
(** [peek_time t out] writes the minimum entry's time into [out] and returns
    true, or returns false on an empty heap without touching [out]. *)

val peek_key : t -> slot -> seq:int ref -> bool
(** [peek_key t out ~seq] additionally writes the minimum entry's sequence
    number into [seq] — the full comparison key, for callers merging this
    heap with other sorted queues. *)

val pop_into : t -> slot -> seq:int ref -> int
(** [pop_into t out ~seq] removes the minimum entry, writing its time into
    [out] and its sequence number into [seq], and returns its payload.

    @raise Invalid_argument on an empty heap. *)

val clear : t -> unit
(** Drop all entries and release the backing arrays. *)
