(** Deterministic pseudo-random numbers (splitmix64).

    Every simulation run owns its own generator seeded from the run index, so
    experiments are bit-reproducible and independent of [Stdlib.Random]: the
    sequence drawn from a given seed is a pure function of this module's code,
    stable across processes, platforms, and OCaml releases.

    The algorithm is Steele, Lea & Flood's splitmix64: the state is a single
    64-bit counter advanced by the golden-ratio increment, and each output is
    a bijective finalizer (xor-shift-multiply) of the counter. It is fast,
    splittable, and passes BigCrush; it is {e not} cryptographic.

    {b Domain safety.} A generator is mutable, unsynchronized state: two
    domains drawing from the same [t] race and destroy reproducibility. The
    campaign runner relies on the convention used throughout this repo — each
    simulation run [create]s its own generator from its own seed, so cells
    executing concurrently on a campaign worker pool never share one. Use
    {!split} (before spawning) or distinct seeds to give parallel work
    independent streams; never hand one [t] to two domains. *)

type t
(** A mutable generator: 8 bytes of state, no global registry. *)

val create : int -> t
(** [create seed] is a generator seeded with [seed]. Equal seeds yield equal
    streams; nearby seeds yield statistically unrelated streams (the seed is
    mixed through the output finalizer before first use). *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state: it will
    replay exactly the draws [t] would have made. Useful for lookahead and
    for checkpoint/replay debugging. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t] by one draw.
    Streams of the parent and child are statistically independent — this is
    the safe way to fan one seed out to concurrent tasks. *)

val bits64 : t -> int64
(** [bits64 t] is the next raw 64-bit output, uniform over all of [int64].
    All other draws below consume exactly one [bits64] call, which makes
    stream positions easy to reason about. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)], computed from the top 62 bits by
    modulo; the bias is negligible for any [n] a simulation plausibly uses
    ([n << 2^62]). @raise Invalid_argument if [n <= 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)], built from 53 uniform mantissa bits
    (every [float] in [\[0, 1)] of the form [k/2^53] is equally likely).
    [x] must be positive. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]; equals
    [lo +. float t (hi -. lo)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip (the low bit of {!bits64}). *)

val pick : t -> 'a list -> 'a
(** [pick t xs] is a uniformly chosen element of [xs]. O(length).
    @raise Invalid_argument on the empty list. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place with Fisher-Yates; all [n!]
    permutations are equally likely (up to {!int}'s negligible bias). *)
