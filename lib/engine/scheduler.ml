type handle = { mutable cancelled : bool }

type event = { h : handle; fn : unit -> unit }

type t = {
  queue : event Heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
  mutable skipped : int;
  mutable max_depth : int;
}

let create () =
  {
    queue = Heap.create ();
    clock = 0.0;
    next_seq = 0;
    fired = 0;
    skipped = 0;
    max_depth = 0;
  }

let now t = t.clock

let schedule t ~at fn =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Scheduler.schedule: at=%g is before now=%g" at t.clock);
  let h = { cancelled = false } in
  Heap.add t.queue ~time:at ~seq:t.next_seq { h; fn };
  t.next_seq <- t.next_seq + 1;
  let depth = Heap.length t.queue in
  if depth > t.max_depth then t.max_depth <- depth;
  h

let after t ~delay fn =
  if delay < 0.0 then invalid_arg "Scheduler.after: negative delay";
  schedule t ~at:(t.clock +. delay) fn

let cancel h = h.cancelled <- true

let is_cancelled h = h.cancelled

let pending t = Heap.length t.queue

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, _seq, ev) ->
    t.clock <- time;
    if not ev.h.cancelled then begin
      t.fired <- t.fired + 1;
      ev.fn ()
    end
    else t.skipped <- t.skipped + 1;
    true

exception Wall_timeout

exception Stop_requested

(* One process-wide flag, not per-scheduler: the code that wants the fleet
   to stop (a signal handler in the CLI) cannot reach the scheduler objects
   living inside worker-domain task closures, exactly like the wall budget
   below. An atomic makes the store in the signal handler visible to every
   domain's poll. *)
let stop_flag = Atomic.make false

let request_stop () = Atomic.set stop_flag true

let stop_requested () = Atomic.get stop_flag

let clear_stop () = Atomic.set stop_flag false

(* The wall-clock budget is domain-local rather than a field of [t]: the code
   that owns the budget (a campaign watchdog) and the code that creates the
   scheduler (a runner deep inside an opaque task closure) never meet.
   Checking the deadline every event would cost a syscall per event, so [run]
   only consults the clock every [wall_interval] events — coarse, but a hung
   cell is hung for seconds, not microseconds. *)
let wall_interval = 1024

let wall_deadline : float option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_wall_budget budget fn =
  if budget <= 0.0 then invalid_arg "Scheduler.with_wall_budget: budget <= 0";
  let slot = Domain.DLS.get wall_deadline in
  let saved = !slot in
  slot := Some (Unix.gettimeofday () +. budget);
  Fun.protect ~finally:(fun () -> slot := saved) fn

let run ?until t =
  let slot = Domain.DLS.get wall_deadline in
  let ticks = ref 0 in
  let check_wall () =
    incr ticks;
    if !ticks land (wall_interval - 1) = 0 then begin
      if Atomic.get stop_flag then raise Stop_requested;
      match !slot with
      | Some deadline when Unix.gettimeofday () > deadline -> raise Wall_timeout
      | Some _ | None -> ()
    end
  in
  match until with
  | None ->
    while
      check_wall ();
      step t
    do
      ()
    done
  | Some horizon ->
    let rec loop () =
      match Heap.min_elt t.queue with
      | Some (time, _, _) when time <= horizon ->
        check_wall ();
        ignore (step t);
        loop ()
      | Some _ | None -> if t.clock < horizon then t.clock <- horizon
    in
    loop ()

let events_processed t = t.fired

let events_scheduled t = t.next_seq

let events_skipped t = t.skipped

let max_queue_depth t = t.max_depth
