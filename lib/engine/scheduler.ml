type handle = { mutable cancelled : bool }

(* The shared handle carried by events that can never be cancelled
   (fire_at / fire_after / schedule_tag). Internal only: no caller can reach
   it, so no caller can cancel it. *)
let live = { cancelled = false }

(* Exported placeholder for callers that need "a handle" before they have
   scheduled anything (e.g. a record field initialized before its first real
   event). Attached to no event; cancelling it does nothing. Distinct from
   [live] so a stray [cancel inert_handle] cannot kill shared events. *)
let inert_handle = { cancelled = false }

type 'a tag = int

(* One queued event. Cells live in a per-scheduler pool array and are
   recycled through a free list of pool indices: after the event loop's
   1k-th event, scheduling allocates nothing — the popped cell of one event
   becomes the cell of the next. The queue itself stores only the pool
   index (see [Int_heap]), so the priority queue's arrays are fully unboxed:
   sift moves never execute a write barrier and the GC never scans the
   queue, however deep it gets. The cancellation handle stays a separate
   (shared or 2-word) record precisely because cells are recycled: a handle
   must keep meaning "that one event" even after the cell moves on to
   carrying a different one.

   [c_tag >= 0] indexes the scheduler's handler table and [c_obj] is the
   handler's payload; [c_tag = -1] means [c_obj] is a [unit -> unit] closure
   (the fallback path for rare events). *)
type cell = {
  mutable c_h : handle;
  mutable c_tag : int;
  mutable c_obj : Obj.t;
  mutable c_free : int;  (* next free pool index; -1 = end of free list *)
}

let dummy = Obj.repr 0

(* Placeholder filling never-acquired pool slots; replaced on first use. *)
let dummy_cell = { c_h = live; c_tag = -1; c_obj = dummy; c_free = -1 }

type recorder = {
  on_add : float -> int -> unit;
  on_pop : float -> int -> bool -> unit;
}

(* A timing lane: a FIFO of events that all share one relative delay.

   Nearly every hot event is scheduled as "now + d" for a d that repeats
   millions of times — a link's propagation delay, a packet's transmission
   time, a protocol's route-timeout constant. Because the clock never moves
   backwards, the absolute times of such events arrive already sorted, so
   they need no heap at all: an append-only array popped from the front is
   a correct priority queue for them. [step] merges the lanes with the heap
   by the full [(time, seq)] key, which preserves the global pop order
   exactly (each lane is sorted, the heap is sorted, and every key is
   distinct in [seq] — a k-way merge of sorted streams).

   The payoff is structural: route timeouts alone hold 10^5 entries in the
   distance-vector campaigns, and with them out of the heap, heap sifts
   that walked 9 levels walk 4, while lane pushes and pops are O(1). *)
type lane = {
  l_delay : float;  (* the relative delay this lane serves *)
  mutable l_times : float array;
  mutable l_seqs : int array;
  mutable l_vals : int array;  (* cell-pool indices, like the heap payload *)
  mutable l_head : int;  (* next entry to pop *)
  mutable l_tail : int;  (* next slot to fill *)
}

(* Lanes are created on demand, for delays seen often enough to matter:
   a delay >= [lane_min_delay] earns a candidate slot, and its
   [lane_promote_count]-th occurrence promotes it to a lane (bounded by
   [max_lanes]; excess recurring delays just stay on the heap, which is
   merely slower, never wrong). Candidate slots evict the lowest count, so
   one-off jittered delays churn the table without ever displacing a
   recurring constant that is accumulating occurrences. *)
let max_lanes = 8

let lane_promote_count = 64

let new_lane d =
  {
    l_delay = d;
    l_times = [||];
    l_seqs = [||];
    l_vals = [||];
    l_head = 0;
    l_tail = 0;
  }

type t = {
  queue : Int_heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable fired : int;
  mutable skipped : int;
  mutable max_depth : int;
  mutable cells : cell array;  (* event-cell pool, addressed by queue payload *)
  mutable n_cells : int;
  mutable free_head : int;  (* head of the free-index list; -1 = empty *)
  mutable lanes : lane array;  (* constant-delay FIFO lanes, merged on pop *)
  cand_delay : float array;  (* lane-candidate delays (NaN = empty slot) *)
  cand_count : int array;  (* occurrence counts for the candidates *)
  mutable n_pending : int;  (* queued events across the heap and all lanes *)
  mutable handlers : (Obj.t -> unit) array;
  mutable n_handlers : int;
  mutable recorder : recorder option;
  (* Out-parameters for [Int_heap.pop_into]: reused every pop so the hot
     loop never allocates a [Some (time, seq, idx)] triple. *)
  pop_time : Int_heap.slot;
  pop_seq : int ref;
}

let no_handler (_ : Obj.t) = ()

(* Ambient recorder for schedulers whose creation site a test cannot reach
   (the runner builds its scheduler internally): [create] adopts whatever the
   enclosing [with_default_recorder] installed on this domain. *)
let default_recorder : recorder option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_default_recorder r fn =
  let slot = Domain.DLS.get default_recorder in
  let saved = !slot in
  slot := Some r;
  Fun.protect ~finally:(fun () -> slot := saved) fn

let create () =
  {
    queue = Int_heap.create ();
    clock = 0.0;
    next_seq = 0;
    fired = 0;
    skipped = 0;
    max_depth = 0;
    cells = [||];
    n_cells = 0;
    free_head = -1;
    lanes = [||];
    cand_delay = Array.make 16 nan;
    cand_count = Array.make 16 0;
    n_pending = 0;
    handlers = [||];
    n_handlers = 0;
    recorder = !(Domain.DLS.get default_recorder);
    pop_time = Int_heap.slot ();
    pop_seq = ref 0;
  }

let now t = t.clock

let set_recorder t r = t.recorder <- r

let register (type a) t (f : a -> unit) : a tag =
  let idx = t.n_handlers in
  if idx = Array.length t.handlers then begin
    let bigger = Array.make (if idx = 0 then 8 else 2 * idx) no_handler in
    Array.blit t.handlers 0 bigger 0 idx;
    t.handlers <- bigger
  end;
  t.handlers.(idx) <- (fun obj -> f (Obj.obj obj));
  t.n_handlers <- idx + 1;
  idx

(* Acquire a pool index: pop the free list, or extend the pool. Pool slots
   are only ever appended, so an index stays valid for the cell's whole
   queued life even when the array is reallocated by growth. *)
let acquire t =
  let idx = t.free_head in
  if idx >= 0 then begin
    t.free_head <- (Array.unsafe_get t.cells idx).c_free;
    idx
  end
  else begin
    let n = t.n_cells in
    if n = Array.length t.cells then begin
      let ncap = if n = 0 then 16 else 2 * n in
      let bigger = Array.make ncap dummy_cell in
      Array.blit t.cells 0 bigger 0 n;
      t.cells <- bigger
    end;
    t.cells.(n) <- { c_h = live; c_tag = -1; c_obj = dummy; c_free = -1 };
    t.n_cells <- n + 1;
    n
  end

(* Reset the fields that keep foreign objects alive before parking the cell:
   a free cell must pin neither the payload nor the handle it carried. *)
let release t idx =
  let c = Array.unsafe_get t.cells idx in
  c.c_h <- live;
  c.c_obj <- dummy;
  c.c_free <- t.free_head;
  t.free_head <- idx

(* Fill a fresh cell and allocate the event's sequence number; shared by the
   heap and lane push paths. Returns the pool index. *)
let fill_cell t h tag obj =
  let idx = acquire t in
  let c = Array.unsafe_get t.cells idx in
  c.c_h <- h;
  c.c_tag <- tag;
  c.c_obj <- obj;
  idx

let note_pushed t at seq =
  (match t.recorder with None -> () | Some r -> r.on_add at seq);
  let depth = t.n_pending + 1 in
  t.n_pending <- depth;
  if depth > t.max_depth then t.max_depth <- depth

let push t ~at h tag obj =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Scheduler.schedule: at=%g is before now=%g" at t.clock);
  let idx = fill_cell t h tag obj in
  let seq = t.next_seq in
  Int_heap.add t.queue ~time:at ~seq idx;
  t.next_seq <- seq + 1;
  note_pushed t at seq

let lane_append t l ~at idx =
  let cap = Array.length l.l_seqs in
  if l.l_tail = cap then begin
    let live = l.l_tail - l.l_head in
    if l.l_head > cap / 2 then begin
      (* Plenty of popped prefix: slide the live suffix down in place. *)
      Array.blit l.l_times l.l_head l.l_times 0 live;
      Array.blit l.l_seqs l.l_head l.l_seqs 0 live;
      Array.blit l.l_vals l.l_head l.l_vals 0 live
    end
    else begin
      let ncap = if cap = 0 then 64 else 2 * cap in
      let times = Array.make ncap 0.0 in
      let seqs = Array.make ncap 0 in
      let vals = Array.make ncap 0 in
      Array.blit l.l_times l.l_head times 0 live;
      Array.blit l.l_seqs l.l_head seqs 0 live;
      Array.blit l.l_vals l.l_head vals 0 live;
      l.l_times <- times;
      l.l_seqs <- seqs;
      l.l_vals <- vals
    end;
    l.l_head <- 0;
    l.l_tail <- live
  end;
  let tail = l.l_tail in
  let seq = t.next_seq in
  Array.unsafe_set l.l_times tail at;
  Array.unsafe_set l.l_seqs tail seq;
  Array.unsafe_set l.l_vals tail idx;
  l.l_tail <- tail + 1;
  t.next_seq <- seq + 1;
  note_pushed t at seq

(* Count an occurrence of a recurring delay; true when it just earned a
   lane. Misses evict the smallest count (see the lane comment above). *)
let note_candidate t d =
  let cd = t.cand_delay and cc = t.cand_count in
  let n = Array.length cd in
  let found = ref (-1) in
  let minc = ref max_int and mini = ref 0 in
  let i = ref 0 in
  while !found < 0 && !i < n do
    if cd.(!i) = d then found := !i
    else begin
      if cc.(!i) < !minc then begin
        minc := cc.(!i);
        mini := !i
      end;
      incr i
    end
  done;
  if !found >= 0 then begin
    let s = !found in
    let c = cc.(s) + 1 in
    if c >= lane_promote_count then begin
      cd.(s) <- nan;
      cc.(s) <- 0;
      true
    end
    else begin
      cc.(s) <- c;
      false
    end
  end
  else begin
    cd.(!mini) <- d;
    cc.(!mini) <- 1;
    false
  end

(* Delay-relative push: the fast path of [after]/[fire_after] and the tag
   variants. Routes recurring delays to their lane; everything else to the
   heap. The lane guard ([at] not before the lane's tail) can only trip if
   the clock ever ran backwards — it falls back to the heap, trading speed
   for unconditional correctness of the merge invariant. *)
let push_delayed t ~delay h tag obj =
  if delay < 0.0 then invalid_arg "Scheduler.after: negative delay";
  let at = t.clock +. delay in
  let lanes = t.lanes in
  let n = Array.length lanes in
  let li = ref (-1) in
  let i = ref 0 in
  while !li < 0 && !i < n do
    if (Array.unsafe_get lanes !i).l_delay = delay then li := !i else incr i
  done;
  if !li >= 0 then begin
    let l = Array.unsafe_get lanes !li in
    if l.l_tail > l.l_head && at < Array.unsafe_get l.l_times (l.l_tail - 1)
    then push t ~at h tag obj
    else lane_append t l ~at (fill_cell t h tag obj)
  end
  else begin
    if n < max_lanes && note_candidate t delay then
      t.lanes <- Array.append t.lanes [| new_lane delay |];
    push t ~at h tag obj
  end

let schedule t ~at fn =
  let h = { cancelled = false } in
  push t ~at h (-1) (Obj.repr fn);
  h

let after t ~delay fn =
  let h = { cancelled = false } in
  push_delayed t ~delay h (-1) (Obj.repr fn);
  h

let fire_at t ~at fn = push t ~at live (-1) (Obj.repr fn)

let fire_after t ~delay fn = push_delayed t ~delay live (-1) (Obj.repr fn)

let schedule_tag t ~at tag x = push t ~at live tag (Obj.repr x)

let after_tag t ~delay tag x = push_delayed t ~delay live tag (Obj.repr x)

let schedule_tag_h t ~at tag x =
  let h = { cancelled = false } in
  push t ~at h tag (Obj.repr x);
  h

let after_tag_h t ~delay tag x =
  let h = { cancelled = false } in
  push_delayed t ~delay h tag (Obj.repr x);
  h

let schedule_tag_using t ~at ~handle tag x = push t ~at handle tag (Obj.repr x)

let after_tag_using t ~delay ~handle tag x =
  push_delayed t ~delay handle tag (Obj.repr x)

let fresh_handle () = { cancelled = false }

let renew h = h.cancelled <- false

let cancel h = h.cancelled <- true

let is_cancelled h = h.cancelled

let pending t = t.n_pending

(* Which queue holds the globally minimum [(time, seq)] key: 0 for the
   heap, [i + 1] for lane [i], -1 when everything is empty. Writes the
   winning time into [t.pop_time] as a side effect (used by [run ~until]).
   The scan is over at most [max_lanes + 1] heads — the whole point of the
   lanes is that this fixed-size merge replaces deep heap sifts. *)
let select t =
  let src = ref (-1) in
  let bt = ref infinity and bs = ref max_int in
  if Int_heap.peek_key t.queue t.pop_time ~seq:t.pop_seq then begin
    src := 0;
    bt := t.pop_time.Int_heap.slot_time;
    bs := !(t.pop_seq)
  end;
  let lanes = t.lanes in
  for i = 0 to Array.length lanes - 1 do
    let l = Array.unsafe_get lanes i in
    let h = l.l_head in
    if h < l.l_tail then begin
      let ht = Array.unsafe_get l.l_times h in
      if
        !src < 0 || ht < !bt
        || (ht = !bt && Array.unsafe_get l.l_seqs h < !bs)
      then begin
        src := i + 1;
        bt := ht;
        bs := Array.unsafe_get l.l_seqs h;
        t.pop_time.Int_heap.slot_time <- ht
      end
    end
  done;
  !src

(* Pop the head of queue [s] (a [select] result) and dispatch it. *)
let exec t s =
  let idx =
    if s = 0 then begin
      let idx = Int_heap.pop_into t.queue t.pop_time ~seq:t.pop_seq in
      t.clock <- t.pop_time.Int_heap.slot_time;
      idx
    end
    else begin
      let l = Array.unsafe_get t.lanes (s - 1) in
      let h = l.l_head in
      t.clock <- Array.unsafe_get l.l_times h;
      t.pop_seq := Array.unsafe_get l.l_seqs h;
      let idx = Array.unsafe_get l.l_vals h in
      let h' = h + 1 in
      if h' = l.l_tail then begin
        l.l_head <- 0;
        l.l_tail <- 0
      end
      else l.l_head <- h';
      idx
    end
  in
  t.n_pending <- t.n_pending - 1;
  let c = Array.unsafe_get t.cells idx in
  (* Read the event out and recycle the cell *before* dispatch, so the
     callback (which usually schedules) reuses this very cell. *)
  let h = c.c_h and tag = c.c_tag and obj = c.c_obj in
  release t idx;
  let fires = not h.cancelled in
  (match t.recorder with
  | None -> ()
  | Some r -> r.on_pop t.clock !(t.pop_seq) fires);
  if fires then begin
    t.fired <- t.fired + 1;
    if tag < 0 then (Obj.obj obj : unit -> unit) () else t.handlers.(tag) obj
  end
  else t.skipped <- t.skipped + 1

let step t =
  let s = select t in
  if s < 0 then false
  else begin
    exec t s;
    true
  end

exception Wall_timeout

exception Stop_requested

(* One process-wide flag, not per-scheduler: the code that wants the fleet
   to stop (a signal handler in the CLI) cannot reach the scheduler objects
   living inside worker-domain task closures, exactly like the wall budget
   below. An atomic makes the store in the signal handler visible to every
   domain's poll. *)
let stop_flag = Atomic.make false

let request_stop () = Atomic.set stop_flag true

let stop_requested () = Atomic.get stop_flag

let clear_stop () = Atomic.set stop_flag false

(* The wall-clock budget is domain-local rather than a field of [t]: the code
   that owns the budget (a campaign watchdog) and the code that creates the
   scheduler (a runner deep inside an opaque task closure) never meet.
   Checking the deadline every event would cost a syscall per event, so [run]
   only consults the clock every [wall_interval] events — coarse, but a hung
   cell is hung for seconds, not microseconds. *)
let wall_interval = 1024

let wall_deadline : float option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_wall_budget budget fn =
  if budget <= 0.0 then invalid_arg "Scheduler.with_wall_budget: budget <= 0";
  let slot = Domain.DLS.get wall_deadline in
  let saved = !slot in
  slot := Some (Unix.gettimeofday () +. budget);
  Fun.protect ~finally:(fun () -> slot := saved) fn

let run ?until t =
  let slot = Domain.DLS.get wall_deadline in
  let ticks = ref 0 in
  let check_wall () =
    incr ticks;
    if !ticks land (wall_interval - 1) = 0 then begin
      if Atomic.get stop_flag then raise Stop_requested;
      match !slot with
      | Some deadline when Unix.gettimeofday () > deadline -> raise Wall_timeout
      | Some _ | None -> ()
    end
  in
  match until with
  | None ->
    let rec loop () =
      let s = select t in
      if s >= 0 then begin
        check_wall ();
        exec t s;
        loop ()
      end
    in
    loop ()
  | Some horizon ->
    (* [select] leaves the winning time in [t.pop_time] — no [Some (time,
       seq, x)] triple is boxed to decide whether the event is in range. *)
    let rec loop () =
      let s = select t in
      if s >= 0 && t.pop_time.Int_heap.slot_time <= horizon then begin
        check_wall ();
        exec t s;
        loop ()
      end
      else if t.clock < horizon then t.clock <- horizon
    in
    loop ()

let events_processed t = t.fired

let events_scheduled t = t.next_seq

let events_skipped t = t.skipped

let max_queue_depth t = t.max_depth
