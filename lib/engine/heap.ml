(* Structure-of-arrays 4-ary min-heap.

   The key [(time, seq)] lives in two flat unboxed arrays ([float array] is
   flat in OCaml, [int array] is immediate), so an insertion allocates
   nothing: no per-entry record, no boxed key, and sift operations walk
   cache-dense arrays instead of chasing entry pointers. Payloads sit in a
   third, uniform [Obj.t array] — [Obj.t] because a ['a array] seeded with a
   dummy value of an unknown ['a] cannot be built without one, and because it
   keeps the array uniform even when ['a] is [float] (a ['a array] would be
   flattened by the float-array hack and crash on a non-float dummy).

   Arity 4 rather than 2: scheduler queues reach depths of 10^4..10^5
   (every armed protocol timeout is a pending entry), and a sift-down at
   depth d costs one round of scattered reads per level. Four-way nodes
   halve the levels and the four children's keys are adjacent (32 bytes of
   [times]), so the extra compares per level are against data already in
   cache. Pop order is unaffected: [(time, seq)] is a strict total order
   (seq is unique), so any correct priority queue pops the same sequence —
   the differential harness in [test/test_differential.ml] checks this
   against the reference binary heap.

   Vacated slots are reset to an immediate dummy on every [pop] and growth
   copies only the live prefix, so a popped payload is never pinned by the
   heap — the GC-retention bug of the previous entry-array implementation
   (whose [ensure_capacity] seeded the doubled array with [t.arr.(0)]). *)

type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable payloads : Obj.t array;
  mutable size : int;
}

(* An immediate value: never scanned, never keeps anything alive. *)
let dummy = Obj.repr 0

let create () = { times = [||]; seqs = [||]; payloads = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let ensure_capacity t =
  let cap = Array.length t.seqs in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let times = Array.make ncap 0.0 in
    let seqs = Array.make ncap 0 in
    let payloads = Array.make ncap dummy in
    Array.blit t.times 0 times 0 t.size;
    Array.blit t.seqs 0 seqs 0 t.size;
    Array.blit t.payloads 0 payloads 0 t.size;
    t.times <- times;
    t.seqs <- seqs;
    t.payloads <- payloads
  end

(* The sift loops below use unsafe array accesses: every index is either
   [t.size]'s predecessor, an ancestor of one ([(i - 1) / 4] shrinks), or a
   child index explicitly compared against [n] first, so all are within the
   live prefix of arrays whose capacity is at least [t.size]. *)

let add t ~time ~seq payload =
  ensure_capacity t;
  let times = t.times and seqs = t.seqs and payloads = t.payloads in
  (* Hole insertion: walk the ancestor chain moving larger keys down, then
     write the new element once — same comparisons and final layout as a
     swap-based sift-up, without rewriting the element at every level. *)
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 4 in
    let pt = Array.unsafe_get times parent in
    if time < pt || (time = pt && seq < Array.unsafe_get seqs parent) then begin
      Array.unsafe_set times !i pt;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs parent);
      Array.unsafe_set payloads !i (Array.unsafe_get payloads parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set payloads !i (Obj.repr payload)

let min_elt (t : 'a t) : (float * int * 'a) option =
  if t.size = 0 then None
  else Some (t.times.(0), t.seqs.(0), Obj.obj t.payloads.(0))

type slot = { mutable slot_time : float }

let slot () = { slot_time = 0.0 }

let peek_time (t : 'a t) (out : slot) : bool =
  if t.size = 0 then false
  else begin
    out.slot_time <- t.times.(0);
    true
  end

(* All-float record: the root key crosses the module boundary through an
   unboxed store instead of a [Some (time, seq, x)] allocation. The caller
   must check [is_empty] first. *)
let pop_into (t : 'a t) (out : slot) ~(seq : int ref) : 'a =
  if t.size = 0 then invalid_arg "Heap.pop_into: empty heap"
  else begin
    let times = t.times and seqs = t.seqs and payloads = t.payloads in
    out.slot_time <- Array.unsafe_get times 0;
    seq := Array.unsafe_get seqs 0;
    let rpay = Array.unsafe_get payloads 0 in
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      (* Re-insert the last element at the root hole, sifting it down. *)
      let ltime = Array.unsafe_get times n and lseq = Array.unsafe_get seqs n in
      let lpay = Array.unsafe_get payloads n in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let first = (4 * !i) + 1 in
        if first >= n then continue := false
        else begin
          (* Smallest of the up-to-four children. *)
          let last = if first + 3 < n - 1 then first + 3 else n - 1 in
          let c = ref first in
          let ct = ref (Array.unsafe_get times first) in
          let cs = ref (Array.unsafe_get seqs first) in
          for k = first + 1 to last do
            let kt = Array.unsafe_get times k in
            if kt < !ct || (kt = !ct && Array.unsafe_get seqs k < !cs) then begin
              c := k;
              ct := kt;
              cs := Array.unsafe_get seqs k
            end
          done;
          if !ct < ltime || (!ct = ltime && !cs < lseq) then begin
            let c = !c in
            Array.unsafe_set times !i !ct;
            Array.unsafe_set seqs !i !cs;
            Array.unsafe_set payloads !i (Array.unsafe_get payloads c);
            i := c
          end
          else continue := false
        end
      done;
      Array.unsafe_set times !i ltime;
      Array.unsafe_set seqs !i lseq;
      Array.unsafe_set payloads !i lpay
    end;
    (* Drop the vacated slot so the payload can be collected. *)
    Array.unsafe_set payloads n dummy;
    Obj.obj rpay
  end

let pop_seq = ref 0

let pop_slot = slot ()

let pop (t : 'a t) : (float * int * 'a) option =
  if t.size = 0 then None
  else begin
    let x = pop_into t pop_slot ~seq:pop_seq in
    Some (pop_slot.slot_time, !pop_seq, x)
  end

let clear t =
  t.times <- [||];
  t.seqs <- [||];
  t.payloads <- [||];
  t.size <- 0

let to_sorted_list t =
  let rec drain acc =
    match pop t with None -> List.rev acc | Some e -> drain (e :: acc)
  in
  drain []
