(* Structure-of-arrays 4-ary min-heap with [int] payloads.

   This is [Heap] specialised to immediate payloads for the scheduler's hot
   loop. The scheduler stores its event cells in a side pool and queues only
   each cell's pool index, so all three arrays here are unboxed ([float
   array], two [int array]s). That removes the two GC costs the generic
   heap's [Obj.t array] cannot avoid: the write barrier on every payload
   move a sift performs, and major-heap scanning of a queue that reaches
   10^5 entries in the distance-vector campaigns.

   Ordering and layout are identical to [Heap] — [(time, seq)] is a strict
   total order, and the differential suite drives both implementations plus
   the reference binary heap through the same streams and requires identical
   pop sequences. *)

type t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable vals : int array;
  mutable size : int;
}

let create () = { times = [||]; seqs = [||]; vals = [||]; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let ensure_capacity t =
  let cap = Array.length t.seqs in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let times = Array.make ncap 0.0 in
    let seqs = Array.make ncap 0 in
    let vals = Array.make ncap 0 in
    Array.blit t.times 0 times 0 t.size;
    Array.blit t.seqs 0 seqs 0 t.size;
    Array.blit t.vals 0 vals 0 t.size;
    t.times <- times;
    t.seqs <- seqs;
    t.vals <- vals
  end

(* Unsafe accesses below: every index is bounded by [t.size] (a child index
   is compared against [n] before use, an ancestor index only shrinks), and
   the arrays' capacity is at least [t.size]. *)

let add t ~time ~seq v =
  ensure_capacity t;
  let times = t.times and seqs = t.seqs and vals = t.vals in
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 4 in
    let pt = Array.unsafe_get times parent in
    if time < pt || (time = pt && seq < Array.unsafe_get seqs parent) then begin
      Array.unsafe_set times !i pt;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs parent);
      Array.unsafe_set vals !i (Array.unsafe_get vals parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set vals !i v

type slot = { mutable slot_time : float }

let slot () = { slot_time = 0.0 }

let peek_time (t : t) (out : slot) : bool =
  if t.size = 0 then false
  else begin
    out.slot_time <- Array.unsafe_get t.times 0;
    true
  end

let peek_key (t : t) (out : slot) ~(seq : int ref) : bool =
  if t.size = 0 then false
  else begin
    out.slot_time <- Array.unsafe_get t.times 0;
    seq := Array.unsafe_get t.seqs 0;
    true
  end

let pop_into (t : t) (out : slot) ~(seq : int ref) : int =
  if t.size = 0 then invalid_arg "Int_heap.pop_into: empty heap"
  else begin
    let times = t.times and seqs = t.seqs and vals = t.vals in
    out.slot_time <- Array.unsafe_get times 0;
    seq := Array.unsafe_get seqs 0;
    let rv = Array.unsafe_get vals 0 in
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      let ltime = Array.unsafe_get times n and lseq = Array.unsafe_get seqs n in
      let lv = Array.unsafe_get vals n in
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let first = (4 * !i) + 1 in
        if first >= n then continue := false
        else begin
          let last = if first + 3 < n - 1 then first + 3 else n - 1 in
          let c = ref first in
          let ct = ref (Array.unsafe_get times first) in
          let cs = ref (Array.unsafe_get seqs first) in
          for k = first + 1 to last do
            let kt = Array.unsafe_get times k in
            if kt < !ct || (kt = !ct && Array.unsafe_get seqs k < !cs) then begin
              c := k;
              ct := kt;
              cs := Array.unsafe_get seqs k
            end
          done;
          if !ct < ltime || (!ct = ltime && !cs < lseq) then begin
            let c = !c in
            Array.unsafe_set times !i !ct;
            Array.unsafe_set seqs !i !cs;
            Array.unsafe_set vals !i (Array.unsafe_get vals c);
            i := c
          end
          else continue := false
        end
      done;
      Array.unsafe_set times !i ltime;
      Array.unsafe_set seqs !i lseq;
      Array.unsafe_set vals !i lv
    end;
    rv
  end

let clear t =
  t.times <- [||];
  t.seqs <- [||];
  t.vals <- [||];
  t.size <- 0
