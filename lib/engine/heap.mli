(** Binary min-heap keyed by [(time, seq)].

    The heap orders elements by time first and, for equal times, by an integer
    sequence number. Schedulers use the sequence number to guarantee FIFO
    delivery of simultaneous events, which keeps simulations deterministic.

    Keys are stored in flat unboxed arrays and payloads in a uniform array
    whose vacated slots are cleared on [pop], so insertion allocates nothing
    and the heap never retains a reference to a payload it has returned. *)

type 'a t
(** A mutable min-heap of payloads of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty heap. *)

val length : 'a t -> int
(** [length t] is the number of elements currently stored. *)

val is_empty : 'a t -> bool
(** [is_empty t] is [length t = 0]. *)

val add : 'a t -> time:float -> seq:int -> 'a -> unit
(** [add t ~time ~seq x] inserts [x] with key [(time, seq)]. *)

val min_elt : 'a t -> (float * int * 'a) option
(** [min_elt t] is the smallest-keyed element without removing it. *)

val pop : 'a t -> (float * int * 'a) option
(** [pop t] removes and returns the smallest-keyed element. *)

type slot = { mutable slot_time : float }
(** Out-parameter for {!pop_into}. All-float, so writing the popped time into
    it does not box. *)

val slot : unit -> slot

val peek_time : 'a t -> slot -> bool
(** [peek_time t out] writes the smallest key's time into [out] and returns
    true, or returns false when [t] is empty. Allocates nothing. *)

val pop_into : 'a t -> slot -> seq:int ref -> 'a
(** [pop_into t out ~seq] removes the smallest-keyed element, writing its
    time into [out] and its sequence number into [seq], and returns the
    payload. Unlike {!pop} it allocates nothing. The heap must not be empty
    (check {!is_empty} first); raises [Invalid_argument] otherwise. *)

val clear : 'a t -> unit
(** [clear t] removes every element. *)

val to_sorted_list : 'a t -> (float * int * 'a) list
(** [to_sorted_list t] drains [t] and returns its elements in key order. *)
