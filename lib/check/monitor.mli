(** Runtime invariant monitors over the structured trace stream.

    A monitor is an {!Obs.Sink.t} that shadows the data and control planes of
    one run and flags any event sequence no correct simulation can produce:

    - {b packet conservation} — every announced packet is delivered or dropped
      at most once, never resurrected, and at the end of the run
      [sent = delivered + dropped + in-flight];
    - {b TTL-bounded forwarding} — along each packet's hop sequence the TTL
      decrements by exactly 1, never reaches 0 in flight, and (when the
      configured initial TTL is supplied) starts from it — so a forwarding
      loop can occupy at most TTL hops;
    - {b next-hop validity} — every forward uses an edge of the topology and
      never points a packet at the node it is already on, and each hop starts
      where the previous hop ended (no teleporting);
    - {b delivery locality} — a packet is delivered only at its destination;
    - {b control-plane adjacency} — routing messages travel only between
      neighboring routers;
    - {b fast-reroute discipline} — a backup-forwarded packet
      ([Frr_forwarded]) never hops toward a node it already visited and never
      crosses a link currently down (tracked from [Link_failed]/[Link_healed]),
      on top of every ordinary hop invariant.

    Attach one via {!Runner.Make.run_multi}'s [?monitors], which feeds it the
    complete unfiltered event stream. *)

type kind =
  | Duplicate_send
  | Unknown_termination
      (** delivered/dropped an id never sent, or a second time *)
  | Ttl_violation
  | Teleport
  | Self_hop
  | Non_neighbor_hop
  | Wrong_delivery_node
  | Non_neighbor_ctrl
  | Conservation
  | Frr_revisit  (** fast-reroute hop toward an already-visited node *)
  | Frr_failed_link  (** fast-reroute hop across a failed link *)

val string_of_kind : kind -> string

type violation = {
  v_kind : kind;
  v_time : float;  (** simulation time of the offending event *)
  v_seq : int;  (** its sequence number in the monitored stream *)
  v_what : string;
}

val pp_violation : violation Fmt.t

type t

val create :
  ?initial_ttl:int ->
  ?max_violations:int ->
  topo:Netsim.Topology.t ->
  unit ->
  t
(** [create ~topo ()] builds a monitor for one run over [topo] (the {e full}
    static topology — links may legitimately be down, but edges can never
    appear out of thin air). [?initial_ttl] additionally pins every packet's
    first-hop TTL to the configured value. Recording stops after
    [?max_violations] (default 1000) to bound memory on badly broken runs. *)

val sink : t -> Obs.Sink.t
(** The sink to pass as a [?monitors] element. *)

val finish : t -> violation list
(** End-of-run check: verifies packet conservation, then returns every
    violation in stream order. Call after the run returns. *)

val violations : t -> violation list
(** Violations recorded so far, oldest first (without the end-of-run check). *)

val violation_count : t -> int

val in_flight : t -> int
(** Announced packets neither delivered nor dropped yet. *)
