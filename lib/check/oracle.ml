type mismatch_kind =
  | Unreachable_but_routed of { next_hop : int option; metric : int option }
  | Reachable_but_unrouted of { dist : int }
  | Wrong_metric of { expected : int; got : int option }
  | Invalid_next_hop of { next_hop : int }
  | Non_shortest_next_hop of { next_hop : int; dist : int; dist_nh : int }
  | Frr_invalid_backup of { backup : int }
  | Frr_backup_is_primary of { backup : int }
  | Frr_not_loop_free of { backup : int; dist : int; dist_b : int }
  | Frr_missing_backup of { alt : int; dist : int; dist_alt : int }

type mismatch = { m_src : int; m_dst : int; m_kind : mismatch_kind }

let pp_mismatch ppf m =
  let p fmt = Fmt.pf ppf fmt in
  match m.m_kind with
  | Unreachable_but_routed { next_hop; metric } ->
    p "%d -> %d: unreachable on the surviving topology, yet routed (next hop %a, metric %a)"
      m.m_src m.m_dst
      Fmt.(option ~none:(any "-") int)
      next_hop
      Fmt.(option ~none:(any "-") int)
      metric
  | Reachable_but_unrouted { dist } ->
    p "%d -> %d: reachable in %d hops, yet the router has no route" m.m_src
      m.m_dst dist
  | Wrong_metric { expected; got } ->
    p "%d -> %d: metric %a, shortest path is %d hops" m.m_src m.m_dst
      Fmt.(option ~none:(any "none") int)
      got expected
  | Invalid_next_hop { next_hop } ->
    p "%d -> %d: next hop %d is not a surviving neighbor" m.m_src m.m_dst
      next_hop
  | Non_shortest_next_hop { next_hop; dist; dist_nh } ->
    p "%d -> %d: next hop %d is %d hops from the destination, but %d is %d \
       (metric must strictly decrease along the path)"
      m.m_src m.m_dst next_hop dist_nh m.m_src dist
  | Frr_invalid_backup { backup } ->
    p "%d -> %d: backup next hop %d is not a surviving neighbor" m.m_src
      m.m_dst backup
  | Frr_backup_is_primary { backup } ->
    p "%d -> %d: backup next hop %d equals the primary next hop" m.m_src
      m.m_dst backup
  | Frr_not_loop_free { backup; dist; dist_b } ->
    p "%d -> %d: backup %d violates the LFA condition: dist(backup) = %d, \
       needs < 1 + dist(self) = %d"
      m.m_src m.m_dst backup dist_b (1 + dist)
  | Frr_missing_backup { alt; dist; dist_alt } ->
    p "%d -> %d: no backup installed, but neighbor %d qualifies \
       (dist %d < 1 + %d)"
      m.m_src m.m_dst alt dist_alt dist

(* Compare a converged routing view against an independent all-pairs BFS on
   the surviving topology. For each (src, dst) pair the router must:
   - hold the exact shortest-path metric when dst is reachable (and, for
     bounded protocols, closer than [max_metric] hops), with a next hop that
     is a live neighbor strictly closer to dst — the monotone-metric
     condition that makes the converged forwarding graph loop-free;
   - hold no route at all otherwise. *)
let prof_check = Obs.Prof.scope "check.oracle"
let prof_frr = Obs.Prof.scope "check.oracle_frr"

let resolve_dests ~n = function
  | None -> List.init n (fun dst -> n - 1 - dst)
  | Some ds ->
    List.iter
      (fun d ->
        if d < 0 || d >= n then
          invalid_arg (Printf.sprintf "Oracle.check: dest %d out of range" d))
      ds;
    ds

let check ?max_metric ?dests (view : Convergence.Runner.routing_view) =
  Obs.Prof.time prof_check @@ fun () ->
  let topo = view.Convergence.Runner.rv_topology in
  let n = Netsim.Topology.node_count topo in
  let mismatches = ref [] in
  let add src dst kind =
    mismatches := { m_src = src; m_dst = dst; m_kind = kind } :: !mismatches
  in
  let dests = resolve_dests ~n dests in
  List.iter (fun dst ->
    let dist = Netsim.Topology.bfs_distances topo dst in
    for src = n - 1 downto 0 do
      if src <> dst then begin
        let d = dist.(src) in
        let representable =
          d < max_int
          && match max_metric with Some m -> d < m | None -> true
        in
        let metric = view.Convergence.Runner.rv_metric ~src ~dst in
        let nh = view.Convergence.Runner.rv_next_hop ~src ~dst in
        if representable then begin
          (match metric with
          | Some m when m = d -> ()
          | got -> add src dst (Wrong_metric { expected = d; got }));
          match nh with
          | None -> add src dst (Reachable_but_unrouted { dist = d })
          | Some h ->
            if not (Netsim.Topology.has_edge topo src h) then
              add src dst (Invalid_next_hop { next_hop = h })
            else if dist.(h) <> d - 1 then
              add src dst
                (Non_shortest_next_hop
                   { next_hop = h; dist = d; dist_nh = dist.(h) })
        end
        else if metric <> None || nh <> None then
          add src dst (Unreachable_but_routed { next_hop = nh; metric })
      end
    done)
    dests;
  !mismatches

(* The fast-reroute backup table is settled against the final routing state
   (the runner forces a last sweep before the quiescence hook), so at
   quiescence — where the protocol metrics the sweep read agree with BFS,
   per [check] — every installed alternate must satisfy the LFA condition
   against independent BFS distances, and every cell with a qualifying
   neighbor must hold one. Cells whose primary route is absent are skipped:
   by design they retain the alternate of the last converged view (which
   the surviving topology can no longer justify), and the forwarding layer
   re-validates liveness per packet. *)
let check_frr ?dests (view : Convergence.Runner.routing_view) =
  match view.Convergence.Runner.rv_backup with
  | None -> []
  | Some backup ->
    Obs.Prof.time prof_frr @@ fun () ->
    let topo = view.Convergence.Runner.rv_topology in
    let n = Netsim.Topology.node_count topo in
    let mismatches = ref [] in
    let add src dst kind =
      mismatches := { m_src = src; m_dst = dst; m_kind = kind } :: !mismatches
    in
    let dests = resolve_dests ~n dests in
    List.iter
      (fun dst ->
        let dist = Netsim.Topology.bfs_distances topo dst in
        for src = n - 1 downto 0 do
          if src <> dst then
            match view.Convergence.Runner.rv_next_hop ~src ~dst with
            | None -> ()
            | Some prim -> (
              let d = dist.(src) in
              match backup ~src ~dst with
              | Some b ->
                if not (Netsim.Topology.has_edge topo src b) then
                  add src dst (Frr_invalid_backup { backup = b })
                else if b = prim then
                  add src dst (Frr_backup_is_primary { backup = b })
                else if d = max_int || dist.(b) >= 1 + d then
                  add src dst
                    (Frr_not_loop_free { backup = b; dist = d; dist_b = dist.(b) })
              | None ->
                if d < max_int then (
                  match
                    List.find_opt
                      (fun alt -> alt <> prim && dist.(alt) < 1 + d)
                      (Netsim.Topology.neighbors topo src)
                  with
                  | Some alt ->
                    add src dst
                      (Frr_missing_backup { alt; dist = d; dist_alt = dist.(alt) })
                  | None -> ()))
        done)
      dests;
    !mismatches
