module Gen = QCheck2.Gen

(* Every random quantity is generated as a small int so QCheck2's integrated
   shrinker walks toward minimal scenarios, and so a scenario prints as a
   handful of integers that reproduce the run exactly. *)

type topo_spec =
  | Mesh of { rows : int; cols : int; degree : int }
  | Erdos of { nodes : int; tseed : int }
  | Waxman of { nodes : int; tseed : int }
  | Ba of { nodes : int; m : int; tseed : int }
  | Hier of { nodes : int; tseed : int }

type failure = {
  fail_dt : int;  (** seconds after [traffic_start] *)
  pick : int;  (** index into the sorted non-bridge candidate edges *)
  heal : int option;  (** restore the link this many seconds later *)
}

type flap_spec = {
  flap_dt : int;  (** first down transition, seconds after [traffic_start] *)
  flap_pick : int;  (** index into the non-bridge candidate edges *)
  flap_cycles : int;  (** down/up cycles *)
  flap_half : int;  (** seconds down and seconds up per cycle *)
}

type scenario = {
  topo : topo_spec;
  flows : (int * int) list;  (** raw pairs, resolved mod node count *)
  rate : int;  (** CBR pps per flow *)
  cfg_seed : int;
  failures : failure list;
  loss_pct : int;  (** control-plane loss percentage, 0..10 *)
  flap : flap_spec option;  (** a flapping non-bridge link *)
  dv_period : int;  (** RIP/DBF periodic-update interval, seconds *)
  dv_damp_max : int;  (** RIP/DBF triggered-update damping upper bound *)
  mrai_pct : int;  (** BGP MRAI mean as a percentage of the stock value *)
  frr : bool;  (** enable the fast-reroute layer (backup-path forwarding) *)
}

(* The schedule leaves generous convergence windows on either side of the
   failures: 600 s from cold start to first traffic (BGP's 30 s MRAI needs
   roughly diameter * MRAI), failures within [610, 640], heals within 25 s of
   their failure, and >= 335 s of quiet before the oracle reads the tables. *)
let traffic_start = 600.

let sim_end = 1000.

let topology_of = function
  | Mesh { rows; cols; degree } -> Netsim.Mesh.generate ~rows ~cols ~degree
  | Erdos { nodes; tseed } ->
    let p = Float.min 1.0 (3.5 /. float_of_int (nodes - 1)) in
    Netsim.Random_topo.erdos_renyi (Dessim.Rng.create tseed) ~nodes ~p
  | Waxman { nodes; tseed } ->
    Netsim.Random_topo.waxman (Dessim.Rng.create tseed) ~nodes ~alpha:0.6
      ~beta:0.4
  | Ba { nodes; m; tseed } ->
    Netsim.Random_topo.barabasi_albert (Dessim.Rng.create tseed) ~nodes ~m
  | Hier { nodes; tseed } ->
    Netsim.Random_topo.hierarchical_auto (Dessim.Rng.create tseed) ~nodes

let config_of sc =
  let rows, cols, degree =
    match sc.topo with
    | Mesh { rows; cols; degree } -> (rows, cols, degree)
    | Erdos _ | Waxman _ | Ba _ | Hier _ ->
      (3, 3, 4)  (* placeholders; topology is pinned *)
  in
  {
    Convergence.Config.quick with
    rows;
    cols;
    degree;
    send_rate_pps = float_of_int sc.rate;
    traffic_start;
    warmup = traffic_start;
    failure_time = traffic_start +. 10.;
    sim_end;
    seed = sc.cfg_seed;
  }

let flows_of topo sc =
  let n = Netsim.Topology.node_count topo in
  List.map
    (fun (s_raw, d_raw) ->
      let src = s_raw mod n in
      let dst =
        let d = d_raw mod n in
        if d = src then (d + 1) mod n else d
      in
      {
        Convergence.Runner.default_flow with
        flow_src = Some src;
        flow_dst = Some dst;
      })
    sc.flows

(* Resolve the generated failure list to pinned links that can never
   partition the network: each failure picks among the non-bridge edges of
   the topology minus every previously failed link (heals are ignored, which
   is conservative — a healed link only adds connectivity). A failure with no
   candidate is skipped, which keeps the property total under shrinking.
   Returns the surviving topology too, so the flap link can be drawn from
   what is non-bridge even with every failed link down. *)
let resolve_failures topo sc =
  let live = ref topo in
  let failures =
    List.filter_map
      (fun f ->
        let candidates =
          List.filter
            (fun (u, v) ->
              Netsim.Topology.is_connected (Netsim.Topology.remove_edge !live u v))
            (Netsim.Topology.edges !live)
        in
        match candidates with
        | [] -> None
        | cs ->
          let u, v = List.nth cs (f.pick mod List.length cs) in
          live := Netsim.Topology.remove_edge !live u v;
          Some
            {
              Convergence.Runner.fail_at =
                traffic_start +. float_of_int f.fail_dt;
              target = Convergence.Runner.Link (u, v);
              heal_after = Option.map float_of_int f.heal;
            })
      sc.failures
  in
  (failures, !live)

(* Injected faults follow the same non-partitioning discipline as failures:
   the flap link must be a non-bridge of the topology with every failed link
   already removed, so however the flap's down windows interleave with the
   failures, the network stays connected. Loss is control-scope only and the
   reliable transport rides along whenever any fault is active, so protocols
   without periodic refresh still converge and the oracle's expectation at
   quiescence stays exact. Flap timing is bounded (dt <= 40, cycles <= 3,
   half <= 6 => last transition by traffic_start + 76), leaving the same
   generous quiet window before the oracle reads the tables. *)
let faults_of ~live sc =
  let noise =
    if sc.loss_pct = 0 then None
    else
      Some
        {
          Fault.Perturb.none with
          Fault.Perturb.drop = float_of_int sc.loss_pct /. 100.;
          scope = Fault.Perturb.Control_only;
        }
  in
  let flaps =
    match sc.flap with
    | None -> []
    | Some f -> (
      let candidates =
        List.filter
          (fun (u, v) ->
            Netsim.Topology.is_connected (Netsim.Topology.remove_edge live u v))
          (Netsim.Topology.edges live)
      in
      match candidates with
      | [] -> []
      | cs ->
        let u, v = List.nth cs (f.flap_pick mod List.length cs) in
        [
          Fault.Schedule.flap
            ~link:(Fault.Schedule.Edge (u, v))
            ~start:(traffic_start +. float_of_int f.flap_dt)
            ~cycles:f.flap_cycles
            ~down:(float_of_int f.flap_half)
            ~up:(float_of_int f.flap_half) ();
        ])
  in
  {
    Fault.Spec.none with
    Fault.Spec.noise;
    flaps;
    rtx =
      (if noise <> None || flaps <> [] then Some Fault.Rtx.default_config
       else None);
  }

let dv_config sc =
  {
    Protocols.Dv_core.default_config with
    period = float_of_int sc.dv_period;
    damp_max = float_of_int sc.dv_damp_max;
  }

let bgp_config sc (base : Protocols.Bgp.config) =
  {
    base with
    Protocols.Bgp.mrai_mean =
      base.Protocols.Bgp.mrai_mean *. float_of_int sc.mrai_pct /. 100.;
  }

let engine ~proto sc =
  let open Convergence.Engine_registry in
  match String.uppercase_ascii proto with
  | "RIP" -> Engine ((module Protocols.Rip), dv_config sc, "RIP")
  | "DBF" -> Engine ((module Protocols.Dbf), dv_config sc, "DBF")
  | "BGP" ->
    Engine ((module Protocols.Bgp), bgp_config sc Protocols.Bgp.default_config, "BGP")
  | "BGP-3" ->
    Engine ((module Protocols.Bgp), bgp_config sc Protocols.Bgp.fast_config, "BGP-3")
  | _ -> (
    match find proto with
    | Some e -> e
    | None -> invalid_arg (Printf.sprintf "Fuzz: unknown protocol %S" proto))

let max_metric_of ~proto sc =
  match String.uppercase_ascii proto with
  | "RIP" | "DBF" -> Some (dv_config sc).Protocols.Dv_core.infinity_metric
  | _ -> None

type outcome = {
  o_violations : Monitor.violation list;
  o_mismatches : Oracle.mismatch list;
}

let ok o = o.o_violations = [] && o.o_mismatches = []

let run_scenario ~proto sc =
  let topo = topology_of sc.topo in
  let cfg = config_of sc in
  let monitor =
    Monitor.create ~initial_ttl:cfg.Convergence.Config.ttl ~topo ()
  in
  let mismatches = ref [] in
  let eng = engine ~proto sc in
  let failures, live = resolve_failures topo sc in
  ignore
    (Convergence.Engine_registry.run_multi ~topology:topo
       ~faults:(faults_of ~live sc) ~frr:sc.frr
       ~monitors:[ Monitor.sink monitor ]
       ~on_quiesce:(fun view ->
         mismatches :=
           Oracle.check ?max_metric:(max_metric_of ~proto sc) view
           @ Oracle.check_frr view)
       ~flows:(flows_of topo sc) ~failures cfg eng);
  { o_violations = Monitor.finish monitor; o_mismatches = !mismatches }

(* ---------- generators ---------- *)

let topo_gen =
  let open Gen in
  oneof
    [
      (let* rows = int_range 3 5 and* cols = int_range 3 5 in
       let* degree = int_range 3 6 in
       return (Mesh { rows; cols; degree }));
      (let* nodes = int_range 8 24 and* tseed = int_range 0 9999 in
       return (Erdos { nodes; tseed }));
      (let* nodes = int_range 8 24 and* tseed = int_range 0 9999 in
       return (Waxman { nodes; tseed }));
      (let* nodes = int_range 8 24 and* m = int_range 1 3 and* tseed = int_range 0 9999 in
       (* BA needs nodes >= m + 2 *)
       return (Ba { nodes = max nodes (m + 2); m; tseed }));
      (let* nodes = int_range 8 24 and* tseed = int_range 0 9999 in
       return (Hier { nodes; tseed }));
    ]

let failure_gen =
  let open Gen in
  let* fail_dt = int_range 10 40 in
  let* pick = int_range 0 9999 in
  let* heal = opt ~ratio:0.4 (int_range 5 25) in
  return { fail_dt; pick; heal }

let flap_gen =
  let open Gen in
  let* flap_dt = int_range 10 40 in
  let* flap_pick = int_range 0 9999 in
  let* flap_cycles = int_range 1 3 in
  let* flap_half = int_range 2 6 in
  return { flap_dt; flap_pick; flap_cycles; flap_half }

let scenario_gen =
  let open Gen in
  let* topo = topo_gen in
  let* flows =
    list_size (int_range 1 3) (pair (int_range 0 9999) (int_range 0 9999))
  in
  let* rate = int_range 2 10 in
  let* cfg_seed = int_range 1 99999 in
  let* failures = list_size (int_range 0 3) failure_gen in
  let* loss_pct = int_range 0 10 in
  let* flap = opt ~ratio:0.3 flap_gen in
  let* dv_period = int_range 20 30 in
  let* dv_damp_max = int_range 2 5 in
  let* mrai_pct = int_range 50 100 in
  let* frr = bool in
  return
    {
      topo;
      flows;
      rate;
      cfg_seed;
      failures;
      loss_pct;
      flap;
      dv_period;
      dv_damp_max;
      mrai_pct;
      frr;
    }

(* ---------- printing ---------- *)

let pp_topo ppf = function
  | Mesh { rows; cols; degree } -> Fmt.pf ppf "mesh %dx%d deg %d" rows cols degree
  | Erdos { nodes; tseed } -> Fmt.pf ppf "erdos n=%d tseed=%d" nodes tseed
  | Waxman { nodes; tseed } -> Fmt.pf ppf "waxman n=%d tseed=%d" nodes tseed
  | Ba { nodes; m; tseed } -> Fmt.pf ppf "ba n=%d m=%d tseed=%d" nodes m tseed
  | Hier { nodes; tseed } -> Fmt.pf ppf "hier n=%d tseed=%d" nodes tseed

let pp_failure ppf f =
  Fmt.pf ppf "{dt=%d pick=%d%a}" f.fail_dt f.pick
    Fmt.(option (fun ppf h -> pf ppf " heal=%d" h))
    f.heal

let pp_flap ppf f =
  Fmt.pf ppf "{dt=%d pick=%d cycles=%d half=%d}" f.flap_dt f.flap_pick
    f.flap_cycles f.flap_half

let pp_scenario ppf sc =
  Fmt.pf ppf
    "@[<h>%a; flows %a; rate %d pps; cfg_seed %d; failures %a; loss %d%%; \
     flap %a; dv period %d damp_max %d; mrai %d%%; frr %s@]"
    pp_topo sc.topo
    Fmt.(list ~sep:comma (pair ~sep:(any "->") int int))
    sc.flows sc.rate sc.cfg_seed
    Fmt.(brackets (list ~sep:sp pp_failure))
    sc.failures sc.loss_pct
    Fmt.(option ~none:(any "none") pp_flap)
    sc.flap sc.dv_period sc.dv_damp_max sc.mrai_pct
    (if sc.frr then "on" else "off")

let show_scenario sc = Fmt.str "%a" pp_scenario sc

(* ---------- the property, packaged for CLI and test use ---------- *)

let cell ~proto ~count =
  QCheck2.Test.make_cell ~count ~name:(Printf.sprintf "fuzz %s" proto)
    ~print:show_scenario scenario_gen (fun sc -> ok (run_scenario ~proto sc))

type report =
  | Passed of { runs : int }
  | Failed of {
      counterexample : scenario;
      shrink_steps : int;
      outcome : outcome;
    }
  | Crashed of { counterexample : scenario option; message : string }

let check ~proto ~runs ~seed =
  let rand = Random.State.make [| seed |] in
  let result = QCheck2.Test.check_cell ~rand (cell ~proto ~count:runs) in
  match QCheck2.TestResult.get_state result with
  | QCheck2.TestResult.Success -> Passed { runs }
  | QCheck2.TestResult.Failed { instances = [] } ->
    Crashed { counterexample = None; message = "failed with no counterexample" }
  | QCheck2.TestResult.Failed { instances = c :: _ } ->
    Failed
      {
        counterexample = c.QCheck2.TestResult.instance;
        shrink_steps = c.QCheck2.TestResult.shrink_steps;
        outcome = run_scenario ~proto c.QCheck2.TestResult.instance;
      }
  | QCheck2.TestResult.Failed_other { msg } ->
    Crashed { counterexample = None; message = msg }
  | QCheck2.TestResult.Error { instance; exn; _ } ->
    Crashed
      {
        counterexample = Some instance.QCheck2.TestResult.instance;
        message = Printexc.to_string exn;
      }
