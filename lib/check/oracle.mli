(** The differential shortest-path oracle.

    At quiescence every protocol in the paper must have converged to
    shortest-path routing on the {e surviving} topology: RIP and DBF minimize
    hop count, BGP path length, and LS unit-cost Dijkstra distance — all
    identical to BFS distance on a unit-cost graph. {!check} recomputes
    all-pairs BFS independently of the protocol code and reports every
    (src, dst) pair whose converged table disagrees.

    [?max_metric] models bounded-metric protocols: RIP and DBF treat
    [infinity_metric] (16) as unreachable, so destinations at [>= max_metric]
    hops must be {e absent} from their tables rather than matched exactly.
    Leave it [None] for BGP and LS, whose comparison is exact at any
    distance. *)

type mismatch_kind =
  | Unreachable_but_routed of { next_hop : int option; metric : int option }
  | Reachable_but_unrouted of { dist : int }
  | Wrong_metric of { expected : int; got : int option }
  | Invalid_next_hop of { next_hop : int }
      (** points across a removed or never-existing edge *)
  | Non_shortest_next_hop of { next_hop : int; dist : int; dist_nh : int }
      (** the next hop is not strictly closer to the destination *)

type mismatch = { m_src : int; m_dst : int; m_kind : mismatch_kind }

val pp_mismatch : mismatch Fmt.t

val check : ?max_metric:int -> Convergence.Runner.routing_view -> mismatch list
(** [check view] is every disagreement between [view] and the independent
    BFS computation; [[]] means the tables are provably converged and
    loop-free. Obtain the [view] from [?on_quiesce]. *)
