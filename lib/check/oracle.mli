(** The differential shortest-path oracle.

    At quiescence every protocol in the paper must have converged to
    shortest-path routing on the {e surviving} topology: RIP and DBF minimize
    hop count, BGP path length, and LS unit-cost Dijkstra distance — all
    identical to BFS distance on a unit-cost graph. {!check} recomputes
    all-pairs BFS independently of the protocol code and reports every
    (src, dst) pair whose converged table disagrees.

    This is a {e differential} check: the reference computation shares no
    code with the protocol implementations (it never sees a routing message,
    only the surviving adjacency), so a bug has to corrupt two unrelated
    algorithms identically to slip through. The fuzzer drives it over random
    scenarios; the integration tests pin it to the paper's.

    [?max_metric] models bounded-metric protocols: RIP and DBF treat
    [infinity_metric] (16) as unreachable, so destinations at [>= max_metric]
    hops must be {e absent} from their tables rather than matched exactly.
    Leave it [None] for BGP and LS, whose comparison is exact at any
    distance. *)

(** How one (src, dst) entry can disagree with the BFS reference. The first
    three compare metrics; the last two catch tables whose {e metric} is
    right but whose {e next hop} cannot realize it — the states that produce
    the paper's transient forwarding loops if they persist to quiescence. *)
type mismatch_kind =
  | Unreachable_but_routed of { next_hop : int option; metric : int option }
      (** BFS says [dst] is unreachable (or beyond [max_metric]), yet the
          table still routes toward it *)
  | Reachable_but_unrouted of { dist : int }
      (** BFS reaches [dst] in [dist] hops, but the table has no entry *)
  | Wrong_metric of { expected : int; got : int option }
      (** both agree [dst] is reachable, at different distances ([got] is
          [None] when the protocol exposes no metric for the entry) *)
  | Invalid_next_hop of { next_hop : int }
      (** points across a removed or never-existing edge *)
  | Non_shortest_next_hop of { next_hop : int; dist : int; dist_nh : int }
      (** the next hop is not strictly closer to the destination:
          [dist_nh >= dist], so some shortest path is not being followed —
          the signature of a routing loop frozen into the final tables *)
  | Frr_invalid_backup of { backup : int }
      (** the installed fast-reroute alternate is not a surviving neighbor *)
  | Frr_backup_is_primary of { backup : int }
      (** the alternate duplicates the primary next hop, protecting nothing *)
  | Frr_not_loop_free of { backup : int; dist : int; dist_b : int }
      (** the alternate fails the LFA condition
          [dist(backup, dst) < 1 + dist(self, dst)] on BFS distances *)
  | Frr_missing_backup of { alt : int; dist : int; dist_alt : int }
      (** no alternate installed although neighbor [alt] qualifies *)

type mismatch = { m_src : int; m_dst : int; m_kind : mismatch_kind }
(** One disagreement, identified by the (source, destination) pair whose
    forwarding entry is wrong. *)

val pp_mismatch : mismatch Fmt.t
(** One-line rendering, e.g.
    ["7->42: wrong metric (expected 4, got 6)"] — the format the fuzzer's
    counterexample reports and [rcsim fuzz] print. *)

val check :
  ?max_metric:int ->
  ?dests:int list ->
  Convergence.Runner.routing_view ->
  mismatch list
(** [check view] is every disagreement between [view] and the independent
    BFS computation; [[]] means the tables are provably converged and
    loop-free. Obtain the [view] from [?on_quiesce] — it must be consulted
    only inside the hook (the underlying tables are live simulation state).
    Runs one BFS per destination: O(nodes * edges) total, negligible next to
    the simulation that produced the view.

    [?dests] restricts the check to the given destinations (all sources are
    still probed against each). The all-pairs probe loop is O(nodes²) per
    destination checked, so at the campaign's largest sizes callers pass a
    strided sample to stay inside the wall budget — a spot check rather than
    a proof, per the scale audit in DESIGN.md §15.
    @raise Invalid_argument if a sampled destination is out of range. *)

val check_frr :
  ?dests:int list ->
  Convergence.Runner.routing_view ->
  mismatch list
(** [check_frr view] verifies the installed fast-reroute backup table
    ([view.rv_backup]) against independent BFS distances on the surviving
    topology: every installed alternate must be a surviving neighbor distinct
    from the primary satisfying the loop-free condition
    [dist(alt, dst) < 1 + dist(self, dst)], and every (src, dst) cell with a
    live primary and a qualifying neighbor must hold one. Cells without a
    primary route are skipped — they deliberately retain the last converged
    view's alternate (DESIGN.md §16). Returns [[]] immediately when the run
    had [~frr:false]. [?dests] as in {!check}. *)
