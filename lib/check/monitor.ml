type kind =
  | Duplicate_send
  | Unknown_termination
  | Ttl_violation
  | Teleport
  | Self_hop
  | Non_neighbor_hop
  | Wrong_delivery_node
  | Non_neighbor_ctrl
  | Conservation
  | Frr_revisit
  | Frr_failed_link

let string_of_kind = function
  | Duplicate_send -> "duplicate_send"
  | Unknown_termination -> "unknown_termination"
  | Ttl_violation -> "ttl_violation"
  | Teleport -> "teleport"
  | Self_hop -> "self_hop"
  | Non_neighbor_hop -> "non_neighbor_hop"
  | Wrong_delivery_node -> "wrong_delivery_node"
  | Non_neighbor_ctrl -> "non_neighbor_ctrl"
  | Conservation -> "conservation"
  | Frr_revisit -> "frr_revisit"
  | Frr_failed_link -> "frr_failed_link"

type violation = { v_kind : kind; v_time : float; v_seq : int; v_what : string }

let pp_violation ppf v =
  Fmt.pf ppf "[%s] t=%.3f seq=%d: %s" (string_of_kind v.v_kind) v.v_time v.v_seq
    v.v_what

(* Where an outstanding packet is believed to be. [at] is the node that will
   next forward (or consume) it; [last_ttl] the ttl of its last forwarded
   event, [None] before the first hop. *)
type pstate = {
  p_src : int;
  p_dst : int;
  mutable at : int;
  mutable last_ttl : int option;
  visited : (int, unit) Hashtbl.t;
      (* every node this packet has been seen at; ordinary forwarding may
         legally revisit (transient loops are the object of study), but a
         fast-reroute hop toward a visited node is a violation *)
}

type t = {
  topo : Netsim.Topology.t;
  initial_ttl : int option;
  live : (int, pstate) Hashtbl.t;  (* flow packets still in flight *)
  anon : (int, pstate) Hashtbl.t;  (* packets never announced (transport ACKs) *)
  closed : (int, unit) Hashtbl.t;  (* flow packets already delivered/dropped *)
  failed_links : (int * int, unit) Hashtbl.t;  (* currently-down links, u < v *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable violations : violation list;  (* newest first *)
  mutable max_violations : int;
}

let create ?initial_ttl ?(max_violations = 1000) ~topo () =
  {
    topo;
    initial_ttl;
    live = Hashtbl.create 256;
    anon = Hashtbl.create 16;
    closed = Hashtbl.create 256;
    failed_links = Hashtbl.create 8;
    sent = 0;
    delivered = 0;
    dropped = 0;
    violations = [];
    max_violations;
  }

let violation_count t = List.length t.violations

let violations t = List.rev t.violations

let flag t ~time ~seq kind fmt =
  Format.kasprintf
    (fun what ->
      if violation_count t < t.max_violations then
        t.violations <- { v_kind = kind; v_time = time; v_seq = seq; v_what = what }
          :: t.violations)
    fmt

let check_hop t ~time ~seq ~pkt (ps : pstate) ~node ~next_hop ~ttl =
  if node <> ps.at then
    flag t ~time ~seq Teleport
      "packet %d forwarded from node %d but was last seen headed to node %d"
      pkt node ps.at;
  if next_hop = node then
    flag t ~time ~seq Self_hop "packet %d at node %d forwarded to itself" pkt
      node;
  if not (Netsim.Topology.has_edge t.topo node next_hop) then
    flag t ~time ~seq Non_neighbor_hop
      "packet %d forwarded %d -> %d, but no such link exists" pkt node next_hop;
  (match ps.last_ttl with
  | Some prev when ttl <> prev - 1 ->
    flag t ~time ~seq Ttl_violation
      "packet %d ttl went %d -> %d at node %d (must decrement by exactly 1)"
      pkt prev ttl node
  | Some _ -> ()
  | None -> (
    match t.initial_ttl with
    | Some t0 when ttl <> t0 ->
      flag t ~time ~seq Ttl_violation
        "packet %d first hop carries ttl %d, expected the configured %d" pkt
        ttl t0
    | Some _ | None -> ()));
  if ttl < 1 then
    flag t ~time ~seq Ttl_violation
      "packet %d forwarded with ttl %d (loops must be cut before 0)" pkt ttl;
  ps.at <- next_hop;
  ps.last_ttl <- Some ttl;
  Hashtbl.replace ps.visited next_hop ()

(* Position state for a forwarded packet, adopting unannounced packets
   (transport ACKs) on first sight so they obey the same hop invariants. *)
let pstate_of t ~node pkt =
  match Hashtbl.find_opt t.live pkt with
  | Some ps -> ps
  | None -> (
    match Hashtbl.find_opt t.anon pkt with
    | Some ps -> ps
    | None ->
      let visited = Hashtbl.create 8 in
      Hashtbl.replace visited node ();
      let ps = { p_src = node; p_dst = -1; at = node; last_ttl = None; visited } in
      Hashtbl.replace t.anon pkt ps;
      ps)

let link_key u v = if u < v then (u, v) else (v, u)

let terminate t ~time ~seq ~verb ~pkt = function
  | Some ps ->
    Hashtbl.remove t.live pkt;
    Hashtbl.replace t.closed pkt ();
    Some ps
  | None ->
    let known = Hashtbl.mem t.closed pkt in
    flag t ~time ~seq Unknown_termination "packet %d %s %s" pkt verb
      (if known then "twice (already delivered or dropped)"
       else "but was never sent");
    None

let on_record t { Obs.Sink.time; seq; event } =
  match event with
  | Obs.Event.Packet_sent { pkt; src; dst; _ } ->
    if Hashtbl.mem t.live pkt || Hashtbl.mem t.closed pkt then
      flag t ~time ~seq Duplicate_send "packet id %d sent twice" pkt
    else begin
      t.sent <- t.sent + 1;
      let visited = Hashtbl.create 8 in
      Hashtbl.replace visited src ();
      Hashtbl.replace t.live pkt
        { p_src = src; p_dst = dst; at = src; last_ttl = None; visited }
    end
  | Obs.Event.Packet_forwarded { pkt; node; next_hop; ttl } ->
    check_hop t ~time ~seq ~pkt (pstate_of t ~node pkt) ~node ~next_hop ~ttl
  (* A fast-reroute hop obeys every ordinary hop invariant {e plus} the
     backup-path guarantees: it must never aim at a node the packet already
     visited (residual loops are cut at the data plane) and never cross a
     link that is currently down (the backup exists precisely to route
     around failures, not through them). *)
  | Obs.Event.Frr_forwarded { pkt; node; next_hop; ttl } ->
    let ps = pstate_of t ~node pkt in
    if Hashtbl.mem ps.visited next_hop then
      flag t ~time ~seq Frr_revisit
        "packet %d frr-forwarded %d -> %d, a node it already visited" pkt node
        next_hop;
    if Hashtbl.mem t.failed_links (link_key node next_hop) then
      flag t ~time ~seq Frr_failed_link
        "packet %d frr-forwarded %d -> %d across a failed link" pkt node
        next_hop;
    check_hop t ~time ~seq ~pkt ps ~node ~next_hop ~ttl
  | Obs.Event.Link_failed { u; v } ->
    Hashtbl.replace t.failed_links (link_key u v) ()
  | Obs.Event.Link_healed { u; v } -> Hashtbl.remove t.failed_links (link_key u v)
  | Obs.Event.Packet_delivered { pkt; _ } -> (
    match
      terminate t ~time ~seq ~verb:"delivered" ~pkt (Hashtbl.find_opt t.live pkt)
    with
    | Some ps ->
      t.delivered <- t.delivered + 1;
      if ps.at <> ps.p_dst then
        flag t ~time ~seq Wrong_delivery_node
          "packet %d delivered at node %d, but its destination is %d" pkt ps.at
          ps.p_dst
    | None -> ())
  | Obs.Event.Packet_dropped { pkt; _ } -> (
    match
      terminate t ~time ~seq ~verb:"dropped" ~pkt (Hashtbl.find_opt t.live pkt)
    with
    | Some _ -> t.dropped <- t.dropped + 1
    | None -> ())
  | Obs.Event.Ctrl_sent { src; dst; _ } | Obs.Event.Ctrl_received { src; dst; _ }
    ->
    if not (Netsim.Topology.has_edge t.topo src dst) then
      flag t ~time ~seq Non_neighbor_ctrl
        "control message between non-adjacent routers %d and %d" src dst
  (* Reliable-transport traffic obeys the same adjacency rule as the control
     messages it carries: sessions exist per link, so a retransmission or a
     session reset between non-neighbors is a wiring bug. Retransmission
     itself is legal by design — a control message may be received several
     times (duplication noise, retransmitted segments), which is why control
     receipt is never dedup-checked above. *)
  | Obs.Event.Rtx_sent { src; dst; _ } | Obs.Event.Session_reset { src; dst; _ }
    ->
    if not (Netsim.Topology.has_edge t.topo src dst) then
      flag t ~time ~seq Non_neighbor_ctrl
        "reliable-transport traffic between non-adjacent routers %d and %d" src
        dst
  (* Fault-injection events are environment facts, not protocol actions:
     nothing to hold them to beyond what the link/packet events already
     cover. [Rtx_timeout] likewise only reports a timer expiry. *)
  | Obs.Event.Fault_injected _ | Obs.Event.Node_crash _ | Obs.Event.Node_reboot _
  | Obs.Event.Rtx_timeout _ -> ()
  | _ -> ()

let in_flight t = Hashtbl.length t.live

let finish t =
  let outstanding = in_flight t in
  if t.sent <> t.delivered + t.dropped + outstanding then
    flag t ~time:Float.infinity ~seq:max_int Conservation
      "sent %d <> delivered %d + dropped %d + in flight %d" t.sent t.delivered
      t.dropped outstanding;
  violations t

let sink t = Obs.Sink.callback (on_record t)
