(** Property-based fuzzing of whole simulation runs.

    A {!scenario} is a deterministic recipe — topology, flows, a
    failure/recovery schedule, and protocol timer parameters — encoded as
    small integers so QCheck2 can shrink a failing run to a minimal one.
    {!run_scenario} executes it under one protocol with a {!Monitor} attached
    and the {!Oracle} consulted at quiescence; the fuzz property holds iff
    both come back empty.

    Failures can never partition the network: each generated failure is
    resolved to a non-bridge edge of the topology minus all previously failed
    links, so the oracle's expectation (all-pairs shortest paths on the
    surviving topology, bounded by the protocol's infinity where relevant) is
    well-defined for every generated scenario.

    Scenarios also carry a fault dimension: control-plane loss (0..10%) and
    an optional flapping link, injected through {!Fault.Spec} with the
    reliable control transport enabled whenever either is active. The flap
    link follows the same non-bridge discipline (resolved against the
    topology minus every failed link) and its last transition lands well
    before quiescence, so the oracle's expectation is unchanged. *)

type topo_spec =
  | Mesh of { rows : int; cols : int; degree : int }
  | Erdos of { nodes : int; tseed : int }
  | Waxman of { nodes : int; tseed : int }
  | Ba of { nodes : int; m : int; tseed : int }
      (** Barabási–Albert preferential attachment; connected by
          construction, so failures still resolve against non-bridges only *)
  | Hier of { nodes : int; tseed : int }
      (** tier-1/tier-2/stub AS-like graph via
          {!Netsim.Random_topo.hierarchical_auto} *)

type failure = {
  fail_dt : int;  (** seconds after [traffic_start] *)
  pick : int;  (** index into the sorted non-bridge candidate edges *)
  heal : int option;  (** restore the link this many seconds later *)
}

type flap_spec = {
  flap_dt : int;  (** first down transition, seconds after [traffic_start] *)
  flap_pick : int;  (** index into the non-bridge candidate edges *)
  flap_cycles : int;  (** down/up cycles *)
  flap_half : int;  (** seconds down and seconds up per cycle *)
}

type scenario = {
  topo : topo_spec;
  flows : (int * int) list;  (** raw pairs, resolved mod node count *)
  rate : int;  (** CBR pps per flow *)
  cfg_seed : int;
  failures : failure list;
  loss_pct : int;  (** control-plane loss percentage, 0..10 *)
  flap : flap_spec option;  (** a flapping non-bridge link *)
  dv_period : int;  (** RIP/DBF periodic-update interval, seconds *)
  dv_damp_max : int;  (** RIP/DBF triggered-update damping upper bound *)
  mrai_pct : int;  (** BGP MRAI mean as a percentage of the stock value *)
  frr : bool;  (** enable the fast-reroute layer (backup-path forwarding) *)
}

val scenario_gen : scenario QCheck2.Gen.t

val pp_scenario : scenario Fmt.t

val show_scenario : scenario -> string

val topology_of : topo_spec -> Netsim.Topology.t

type outcome = {
  o_violations : Monitor.violation list;
  o_mismatches : Oracle.mismatch list;
}

val ok : outcome -> bool

val run_scenario : proto:string -> scenario -> outcome
(** [run_scenario ~proto sc] runs [sc] under [proto] — one of ["rip"],
    ["dbf"], ["bgp"], ["bgp-3"] (case-insensitive, parameterized by the
    scenario's timer fields) or any other {!Convergence.Engine_registry}
    display name (stock configuration).
    @raise Invalid_argument on an unknown protocol name. *)

val cell : proto:string -> count:int -> scenario QCheck2.Test.cell

type report =
  | Passed of { runs : int }
  | Failed of {
      counterexample : scenario;  (** already shrunk *)
      shrink_steps : int;
      outcome : outcome;  (** the counterexample re-run, for display *)
    }
  | Crashed of { counterexample : scenario option; message : string }

val check : proto:string -> runs:int -> seed:int -> report
(** [check ~proto ~runs ~seed] runs the fuzz property [runs] times with a
    generator stream derived only from [seed] (same seed, same scenarios). *)
