(** Per-run outcomes and their aggregation over seeds.

    A {!run} captures everything the paper reports for a single simulation:
    packet fates broken down by drop reason, the receiver's throughput and
    delay time series, convergence delays, and the forwarding-path history. A
    {!summary} averages a set of runs (the paper uses 10 per data point). *)

type run = {
  protocol : string;
  degree : int;
  seed : int;
  src : Netsim.Types.node_id;
  dst : Netsim.Types.node_id;
  sent : int;
  delivered : int;
  drops_no_route : int;
  drops_ttl : int;
  drops_queue : int;
  drops_link : int;  (** dropped on/over the failed link before detection *)
  drops_injected : int;  (** discarded or corrupted by fault injection *)
  looped_delivered : int;  (** delivered packets that escaped a loop *)
  looped_dropped : int;  (** dropped packets that had looped *)
  ctrl_messages : int;
  ctrl_bytes : int;
  ctrl_lost : int;  (** control messages lost to the link failure *)
  throughput : Dessim.Series.t;  (** received packets per 1 s bucket *)
  delay : Dessim.Series.t;  (** per-bucket mean end-to-end delay *)
  fwd_convergence : float;
      (** forwarding-path convergence delay: failure -> sender/receiver path
          permanently equal to its final value (paper Fig. 6a) *)
  routing_convergence : float;
      (** network routing convergence: failure -> last best-route change at
          any router (paper Fig. 6b) *)
  transient_paths : int;
      (** distinct sender->receiver forwarding paths observed between failure
          and forwarding convergence *)
  failed_link : (Netsim.Types.node_id * Netsim.Types.node_id) option;
  pre_failure_path : Netsim.Types.node_id list;
  final_path : Netsim.Types.node_id list;
  final_path_complete : bool;
  sched_events : int;
      (** scheduler events fired during the run — the denominator for
          events/sec and allocations/event in the perf harness *)
}

val total_drops : run -> int

val conservation_ok : run -> bool
(** [sent = delivered + drops + in-flight-at-end]; in-flight is inferred, so
    this checks the other counters are consistent (non-negative residue no
    larger than what the pipe could hold). *)

val in_flight : run -> int

val pp_run : run Fmt.t

(** Averages over a list of runs for one (protocol, degree) cell. *)
type summary = {
  s_protocol : string;
  s_degree : int;
  s_runs : int;
  mean_sent : float;
  mean_delivered : float;
  mean_drops_no_route : float;
  mean_drops_ttl : float;
  mean_drops_queue : float;
  mean_drops_link : float;
  mean_fwd_convergence : float;
  stddev_fwd_convergence : float;
  mean_routing_convergence : float;
  stddev_routing_convergence : float;
  mean_transient_paths : float;
  mean_ctrl_messages : float;
  mean_looped_delivered : float;
  avg_throughput : Dessim.Series.t;  (** per-bucket mean over runs *)
  avg_delay : Dessim.Series.t;
}

val summarize : run list -> summary
(** @raise Invalid_argument on the empty list or mixed protocol/degree. *)

(** {2 Multi-flow, multi-failure outcomes}

    The paper's future work (Section 6) extends the study to "multiple pairs
    of data sources and destinations, as well as multiple failures which can
    potentially overlay with each other in time". A {!multi} captures one
    such run: per-flow delivery outcomes plus run-global control-plane
    accounting. *)

type flow = {
  f_src : Netsim.Types.node_id;
  f_dst : Netsim.Types.node_id;
  f_sent : int;
  f_delivered : int;
  f_drops_no_route : int;
  f_drops_ttl : int;
  f_drops_queue : int;
  f_drops_link : int;
  f_drops_injected : int;
  f_looped_delivered : int;
  f_looped_dropped : int;
  f_throughput : Dessim.Series.t;
  f_delay : Dessim.Series.t;
  f_fwd_convergence : float;
  f_transient_paths : int;
  f_pre_failure_path : Netsim.Types.node_id list;
  f_final_path : Netsim.Types.node_id list;
  f_final_path_complete : bool;
}

type multi = {
  m_protocol : string;
  m_degree : int;
  m_seed : int;
  m_flows : flow list;
  m_ctrl_messages : int;
  m_ctrl_bytes : int;
  m_ctrl_lost : int;
  m_routing_convergence : float;
      (** measured from the {e first} failure to the last route change *)
  m_failed_links : (Netsim.Types.node_id * Netsim.Types.node_id) list;
  m_sched_events : int;  (** scheduler events fired during the run *)
}

val flow_delivery_ratio : flow -> float
(** [delivered / sent]; [1.] when nothing was sent. *)

val flow_total_drops : flow -> int

val multi_sent : multi -> int

val multi_delivered : multi -> int

val pp_flow : flow Fmt.t

val pp_multi : multi Fmt.t

val run_of_multi : multi -> run
(** Flatten a single-flow, at-most-one-failure [multi] into the classic
    {!run} shape. @raise Invalid_argument when there is not exactly one
    flow. *)
