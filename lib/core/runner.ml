let path_kind_of = function
  | Observer.Complete _ -> Obs.Event.Path_complete
  | Observer.Broken _ -> Obs.Event.Path_broken
  | Observer.Looping _ -> Obs.Event.Path_looping

let msg_kind_of = function
  | Protocols.Proto_intf.Update -> Obs.Event.Update
  | Protocols.Proto_intf.Withdrawal -> Obs.Event.Withdrawal
  | Protocols.Proto_intf.Mixed -> Obs.Event.Mixed

type flow_spec = {
  flow_src : Netsim.Types.node_id option;
  flow_dst : Netsim.Types.node_id option;
  flow_rate : float option;
  flow_start : float option;
}

let default_flow =
  { flow_src = None; flow_dst = None; flow_rate = None; flow_start = None }

type failure_target =
  | Flow_path of int
  | Link of Netsim.Types.node_id * Netsim.Types.node_id
  | Random_link

type failure_spec = {
  fail_at : float;
  target : failure_target;
  heal_after : float option;
}

type transport_config = {
  window : int;
  rto : float;
  total_packets : int;
  ack_bytes : int;
}

(* A protocol-agnostic snapshot of the control plane at the end of a run,
   handed to the [?on_quiesce] hook. The check library's differential oracle
   compares it against an independent shortest-path computation. *)
type routing_view = {
  rv_topology : Netsim.Topology.t;
      (* the surviving topology: links currently down are removed *)
  rv_next_hop :
    src:Netsim.Types.node_id -> dst:Netsim.Types.node_id ->
    Netsim.Types.node_id option;
  rv_metric :
    src:Netsim.Types.node_id -> dst:Netsim.Types.node_id -> int option;
  rv_backup :
    (src:Netsim.Types.node_id -> dst:Netsim.Types.node_id ->
     Netsim.Types.node_id option)
    option;
      (* installed fast-reroute backup next hops; [None] when frr is off *)
}

let default_transport =
  { window = 16; rto = 1.; total_packets = 0; ack_bytes = 40 }

type transport_outcome = {
  t_completed : int;
  t_retransmissions : int;
  t_duplicates : int;
  t_completed_at : float option;
  t_goodput : Dessim.Series.t;
  t_multi : Metrics.multi;
}

module Make (P : Protocols.Proto_intf.PROTOCOL) = struct
  (* Every data packet carries a handler deciding what its delivery or loss
     means: CBR flows count packets, transport endpoints run their protocol
     logic. The handler rides in the payload itself, so forwarding never
     touches a lookup table. *)
  type packet_handler = {
    h_deliver : Netsim.Packet.t -> unit;
    h_drop : Netsim.Packet.t -> Netsim.Types.drop_reason -> unit;
  }

  (* A data packet in flight. Allocated once at launch and threaded through
     every hop unchanged — forwarding re-sends this very value, so a hop
     allocates nothing beyond the link's own bookkeeping. *)
  type data = { d_pkt : Netsim.Packet.t; d_handler : packet_handler }

  type payload =
    | Data of data
    | Ctrl of { from : Netsim.Types.node_id; msg : P.message }
    | Rseg of { from : Netsim.Types.node_id; seg : P.message Fault.Rtx.segment }
        (* a reliable-transport segment; only exists when [Fault.Spec.rtx]
           is enabled for a [uses_reliable_transport] protocol *)

  (* Per-flow measurement state. *)
  type flow_state = {
    idx : int;
    src : Netsim.Types.node_id;
    dst : Netsim.Types.node_id;
    rate : float;
    start : float;
    mutable sent : int;
    mutable delivered : int;
    mutable drops_no_route : int;
    mutable drops_ttl : int;
    mutable drops_queue : int;
    mutable drops_link : int;
    mutable drops_injected : int;
    mutable looped_delivered : int;
    mutable looped_dropped : int;
    throughput : Dessim.Series.t;
    delay : Dessim.Series.t;
    mutable path_samples : (float * Observer.path_result) list;  (* newest first *)
    mutable pre_failure_path : Netsim.Types.node_id list;
    mutable loop_since : (float * Netsim.Types.node_id list) option;
        (* the sampled path is currently inside this cycle, since this time *)
  }

  type state = {
    cfg : Config.t;
    sched : Dessim.Scheduler.t;
    topo : Netsim.Topology.t;
    n_nodes : int;
    link_off : int array;
        (* CSR row offsets: node [u]'s outgoing links occupy slots
           [link_off.(u) .. link_off.(u+1) - 1] of [link_nbr]/[links] *)
    link_nbr : int array;
        (* neighbor id per slot, ascending within each row *)
    slot_dense : int array;
        (* n×n direct map [u * n_nodes + v] -> slot (-1 when no link), built
           only while n² stays small; [||] above the threshold, where the
           binary search over [link_nbr] takes over. Keeps the per-hop lookup
           at mesh scale as cheap as the old dense link array without paying
           O(n²) memory at 10k nodes *)
    links : payload Netsim.Link.t option array;
        (* directed link per slot, parallel to [link_nbr]. CSR rather than a
           flat n×n array: the dense form is O(n²) words — ~800 MB of
           pointers at 10k nodes — while adjacency is O(n + m) *)
    mutable routers : P.t array;
    flows : flow_state array;
    trace : Obs.Trace.t;
    metrics : Obs.Registry.t option;
    delay_hist : Obs.Registry.histogram option;
    mutable ctrl_messages : int;
    mutable ctrl_bytes : int;
    mutable ctrl_lost : int;
    mutable first_failure_at : float option;
    mutable last_route_change : float;
    mutable failed_links : (int * int) list;  (* newest first *)
    mutable next_packet_id : int;
    (* fault injection; all inert when [faults] is [Fault.Spec.none] *)
    faults : Fault.Spec.t;
    rtx_on : bool;  (* route control messages through Fault.Rtx sessions *)
    rtx_sessions : (int * int, P.message Fault.Rtx.t) Hashtbl.t;
        (* (owner, neighbor) -> owner's session toward neighbor *)
    link_rngs : (int * int, Dessim.Rng.t) Hashtbl.t;
        (* per-directed-link perturbation streams, independent of the master *)
    down_refs : (int * int, int ref) Hashtbl.t;
        (* undirected link -> concurrent down causes (flap + crash compose) *)
    generation : int array;  (* protocol instance generation, bumped on crash *)
    crashed : bool array;
    mutable injected_data_drops : int;
    mutable injected_ctrl_drops : int;
    mutable rtx_retransmissions : int;
    mutable rtx_timeouts : int;
    mutable session_resets : int;
    (* per-category event counts for the perf harness *)
    mutable timer_fires : int;
    mutable data_forwards : int;
    (* fast reroute; [None] leaves every pre-existing code path untouched *)
    frr : Frr.t option;
    mutable frr_installs : int;
    mutable frr_activations : int;
    mutable frr_forwards : int;
    mutable frr_exhausted : int;
  }

  (* Slot of directed link [u -> v] in the CSR arrays, or -1 when absent.
     Rows are sorted, so this is a binary search over [degree u] entries —
     or a single read when the dense map exists. *)
  let link_slot st u v =
    if Array.length st.slot_dense > 0 then st.slot_dense.((u * st.n_nodes) + v)
    else begin
      let lo = ref st.link_off.(u) and hi = ref (st.link_off.(u + 1) - 1) in
      let found = ref (-1) in
      while !found < 0 && !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        let nbr = st.link_nbr.(mid) in
        if nbr = v then found := mid
        else if nbr < v then lo := mid + 1
        else hi := mid - 1
      done;
      !found
    end

  let link st u v =
    let slot = link_slot st u v in
    if slot < 0 then invalid_arg (Printf.sprintf "Runner: no link %d->%d" u v)
    else
      match st.links.(slot) with
      | Some l -> l
      | None -> invalid_arg (Printf.sprintf "Runner: no link %d->%d" u v)

  (* Trace emission helpers. Producers guard with [tracing] before building
     an event, so a disabled trace costs one boolean test per site. *)
  let tracing st cat = Obs.Trace.on st.trace cat

  (* Profiling scopes, registered once at functor application. The hot sites
     below use enter/exit pairs rather than [Obs.Prof.time] so that a
     disabled profiler costs one atomic load per site and allocates
     nothing. *)
  let prof_forward = Obs.Prof.scope "engine.forward"

  let prof_on_message = Obs.Prof.scope ("proto." ^ P.name ^ ".on_message")

  let prof_timer = Obs.Prof.scope ("proto." ^ P.name ^ ".timer")

  let prof_run = Obs.Prof.scope "engine.run"

  let emit st ev =
    Obs.Trace.emit st.trace ~time:(Dessim.Scheduler.now st.sched) ev

  let next_hop_of st n ~dst = P.next_hop st.routers.(n) ~dst

  (* ---------- fast reroute ---------- *)

  (* Backup recomputation is debounced: route changes mark destinations
     dirty, and one sweep this long after the first marking recomputes only
     the dirty columns. Long enough to batch a convergence burst's worth of
     changes, short enough that backups track the control plane closely. *)
  let frr_sweep_delay = 1.0

  let frr_metric st ~node ~dst = P.metric st.routers.(node) ~dst

  let frr_next_hop st ~node ~dst = P.next_hop st.routers.(node) ~dst

  let frr_sweep ?(installs_traced = true) st f =
    let trace_env = installs_traced && tracing st Obs.Event.Env in
    Frr.sweep f
      ~metric:(fun ~node ~dst -> frr_metric st ~node ~dst)
      ~next_hop:(fun ~node ~dst -> frr_next_hop st ~node ~dst)
      ~on_install:(fun ~node ~dst ~backup ->
        st.frr_installs <- st.frr_installs + 1;
        if trace_env then
          emit st (Obs.Event.Frr_installed { node; dst; backup }))

  let frr_arm st f =
    if Frr.arm_sweep f then
      ignore
        (Dessim.Scheduler.after st.sched ~delay:frr_sweep_delay (fun () ->
             frr_sweep st f))

  let frr_route_changed st f dst =
    Frr.mark_dirty f ~dst;
    frr_arm st f

  (* One endpoint's local failure detection: activate fast reroute at [node]
     for traffic that would have crossed the dead link, and queue the
     recomputation of the alternates that crossed it themselves. Fires at
     the same instant the routing protocol learns of the failure. *)
  let frr_detect_down st f node neighbor =
    if Frr.mark_down f ~node ~neighbor then begin
      st.frr_activations <- st.frr_activations + 1;
      if tracing st Obs.Event.Env then
        emit st (Obs.Event.Frr_activated { node; neighbor })
    end;
    Frr.dirty_backups_via f ~node ~neighbor

  let frr_link_down st u v =
    match st.frr with
    | Some f ->
      frr_detect_down st f u v;
      frr_detect_down st f v u;
      frr_arm st f
    | None -> ()

  let frr_link_up st u v =
    match st.frr with
    | Some f ->
      Frr.mark_up f ~node:u ~neighbor:v;
      Frr.mark_up f ~node:v ~neighbor:u;
      Frr.dirty_missing_backups f ~node:u;
      Frr.dirty_missing_backups f ~node:v;
      frr_arm st f
    | None -> ()

  let sample_path st (f : flow_state) =
    Observer.current_path
      ~next_hop:(fun n -> next_hop_of st n ~dst:f.dst)
      ~src:f.src ~dst:f.dst

  (* Keep the flow's loop bookkeeping current and emit loop-episode
     boundaries: entering a cycle, switching cycles, leaving one. *)
  let track_loop st (f : flow_state) now path =
    let cycle_now = Loop_analysis.cycle_of_path path in
    match (f.loop_since, cycle_now) with
    | None, None -> ()
    | None, Some cycle ->
      f.loop_since <- Some (now, cycle);
      if tracing st Obs.Event.Data then
        emit st (Obs.Event.Loop_enter { flow = f.idx; cycle })
    | Some (since, cycle), None ->
      f.loop_since <- None;
      if tracing st Obs.Event.Data then
        emit st
          (Obs.Event.Loop_exit { flow = f.idx; cycle; duration = now -. since })
    | Some (since, old_cycle), Some cycle ->
      if not (Observer.equal_nodes old_cycle cycle) then begin
        f.loop_since <- Some (now, cycle);
        if tracing st Obs.Event.Data then begin
          emit st
            (Obs.Event.Loop_exit
               { flow = f.idx; cycle = old_cycle; duration = now -. since });
          emit st (Obs.Event.Loop_enter { flow = f.idx; cycle })
        end
      end

  let record_path_sample st (f : flow_state) =
    let now = Dessim.Scheduler.now st.sched in
    let path = sample_path st f in
    let changed =
      match f.path_samples with
      | (_, last) :: _ -> not (Observer.equal last path)
      | [] -> true
    in
    if changed then begin
      f.path_samples <- (now, path) :: f.path_samples;
      if tracing st Obs.Event.Env then
        emit st
          (Obs.Event.Path_changed
             {
               flow = f.idx;
               kind = path_kind_of path;
               path = Observer.nodes_of path;
             });
      track_loop st f now path
    end

  let on_route_changed st router dst =
    let now = Dessim.Scheduler.now st.sched in
    if tracing st Obs.Event.Env then
      emit st (Obs.Event.Route_changed { node = router; dst });
    (match st.frr with
    | Some f -> frr_route_changed st f dst
    | None -> ());
    (match st.first_failure_at with
    | Some t0 when now >= t0 -> st.last_route_change <- now
    | Some _ | None -> ());
    Array.iter (fun f -> if f.dst = dst then record_path_sample st f) st.flows

  let drop_data (d : data) (reason : Netsim.Types.drop_reason) =
    d.d_handler.h_drop d.d_pkt reason

  (* [payload] is the [Data d] wrapper this packet was launched with: re-sent
     as-is on every hop rather than re-wrapped, it stays a single allocation
     for the packet's whole life. *)
  let rec forward st node payload (d : data) =
    st.data_forwards <- st.data_forwards + 1;
    Obs.Prof.enter prof_forward;
    do_forward st node payload d;
    Obs.Prof.exit prof_forward

  and do_forward st node payload (d : data) =
    let p = d.d_pkt in
    Netsim.Packet.visit p node;
    if node = p.dst then d.d_handler.h_deliver p
    else
      match st.frr with
      | Some f -> frr_forward st f node payload d
      | None -> (
        match next_hop_of st node ~dst:p.dst with
        | None -> drop_data d Netsim.Types.No_route
        | Some nh -> forward_via st node payload d nh)

  and forward_via st node payload (d : data) nh =
    let p = d.d_pkt in
    if p.ttl <= 0 then drop_data d Netsim.Types.Ttl_expired
    else begin
      if tracing st Obs.Event.Data then
        emit st
          (Obs.Event.Packet_forwarded
             { pkt = p.id; node; next_hop = nh; ttl = p.ttl });
      p.ttl <- p.ttl - 1;
      (* Rejections are accounted by the link's [dropped] callback. *)
      ignore (Netsim.Link.send (link st node nh) ~size_bits:p.size_bits payload)
    end

  (* Forwarding with fast reroute enabled: graceful degradation of the data
     plane. The primary route is used whenever it is usable; the precomputed
     backup covers exactly the convergence gap — primary still aimed at a
     locally-detected-dead link, or withdrawn/invalidated by the protocol's
     reconvergence churn. Once the protocol installs a fresh usable primary,
     the first branch takes over again: deactivation on reconvergence needs
     no extra state. *)
  and frr_forward st f node payload (d : data) =
    let p = d.d_pkt in
    let primary = next_hop_of st node ~dst:p.dst in
    match primary with
    | Some nh when not (Frr.is_down f ~node ~neighbor:nh) ->
      forward_via st node payload d nh
    | _ ->
      let b = Frr.backup_id f ~node ~dst:p.dst in
      let usable =
        b >= 0 && p.ttl > 0
        && (not (Frr.is_down f ~node ~neighbor:b))
        && Netsim.Link.is_up (link st node b)
        && not (Netsim.Packet.visited p b)
      in
      if usable then begin
        st.frr_forwards <- st.frr_forwards + 1;
        if tracing st Obs.Event.Data then
          emit st
            (Obs.Event.Frr_forwarded
               { pkt = p.id; node; next_hop = b; ttl = p.ttl });
        p.ttl <- p.ttl - 1;
        ignore (Netsim.Link.send (link st node b) ~size_bits:p.size_bits payload)
      end
      else begin
        st.frr_exhausted <- st.frr_exhausted + 1;
        if tracing st Obs.Event.Data then
          emit st (Obs.Event.Frr_exhausted { pkt = p.id; node });
        (* Fall through to exactly the frr-off outcome. *)
        match primary with
        | None -> drop_data d Netsim.Types.No_route
        | Some nh -> forward_via st node payload d nh
      end

  and deliver_ctrl st ~from at_node msg =
    if tracing st Obs.Event.Control then
      emit st
        (Obs.Event.Ctrl_received
           {
             proto = P.name;
             src = from;
             dst = at_node;
             kind = msg_kind_of (P.message_kind msg);
           });
    Obs.Prof.enter prof_on_message;
    P.on_message st.routers.(at_node) ~from msg;
    Obs.Prof.exit prof_on_message

  and on_arrival st at_node payload =
    match payload with
    | Data d -> forward st at_node payload d
    | Ctrl { from; msg } -> deliver_ctrl st ~from at_node msg
    | Rseg { from; seg } -> (
      match Hashtbl.find_opt st.rtx_sessions (at_node, from) with
      | Some session -> Fault.Rtx.on_segment session seg
      | None -> ())

  let fault_seed st =
    Option.value st.faults.Fault.Spec.fault_seed ~default:st.cfg.Config.seed

  let link_rng st u v =
    match Hashtbl.find_opt st.link_rngs (u, v) with
    | Some rng -> rng
    | None ->
      let rng =
        Dessim.Rng.create (Fault.Spec.link_seed ~seed:(fault_seed st) ~u ~v)
      in
      Hashtbl.replace st.link_rngs (u, v) rng;
      rng

  let perturb_applies (noise : Fault.Perturb.t) payload =
    match (noise.Fault.Perturb.scope, payload) with
    | Fault.Perturb.All, _ -> true
    | Fault.Perturb.Control_only, (Ctrl _ | Rseg _) -> true
    | Fault.Perturb.Control_only, Data _ -> false
    | Fault.Perturb.Data_only, Data _ -> true
    | Fault.Perturb.Data_only, (Ctrl _ | Rseg _) -> false

  let injected_loss st u v payload reason what =
    if tracing st Obs.Event.Env then
      emit st (Obs.Event.Fault_injected { u; v; what });
    match payload with
    | Data d ->
      st.injected_data_drops <- st.injected_data_drops + 1;
      drop_data d reason
    | Ctrl _ ->
      st.injected_ctrl_drops <- st.injected_ctrl_drops + 1;
      st.ctrl_lost <- st.ctrl_lost + 1;
      if tracing st Obs.Event.Control then
        emit st (Obs.Event.Ctrl_lost { reason })
    | Rseg _ ->
      (* Segment loss is not protocol-message loss: the transport will
         retransmit, so only the injection counter records it. *)
      st.injected_ctrl_drops <- st.injected_ctrl_drops + 1

  (* Link egress with the perturbation layer in front of [on_arrival]. Data
     packets are never duplicated (their delivery accounting is exactly-once
     by construction); control units may be dropped, corrupted, duplicated,
     or jittered. *)
  let ingress st u v payload =
    match st.faults.Fault.Spec.noise with
    | Some noise when perturb_applies noise payload -> (
      match Fault.Perturb.decide (link_rng st u v) noise with
      | Fault.Perturb.Drop ->
        injected_loss st u v payload Netsim.Types.Injected_loss "drop"
      | Fault.Perturb.Corrupt ->
        injected_loss st u v payload Netsim.Types.Corrupted "corrupt"
      | Fault.Perturb.Deliver { copies; delay } ->
        let copies = match payload with Data _ -> 1 | Ctrl _ | Rseg _ -> copies in
        if copies > 1 && tracing st Obs.Event.Env then
          emit st (Obs.Event.Fault_injected { u; v; what = "duplicate" });
        if delay = 0. then
          for _ = 1 to copies do
            on_arrival st v payload
          done
        else begin
          if tracing st Obs.Event.Env then
            emit st (Obs.Event.Fault_injected { u; v; what = "reorder" });
          for _ = 1 to copies do
            ignore
              (Dessim.Scheduler.after st.sched ~delay (fun () ->
                   on_arrival st v payload))
          done
        end)
    | Some _ | None -> on_arrival st v payload

  let on_link_drop st payload reason =
    match payload with
    | Data d -> drop_data d reason
    | Ctrl _ | Rseg _ ->
      (* Rseg counts like Ctrl here: a segment caught on a failing link is a
         control-plane loss event, exactly as the idealized transport's
         message would have been. *)
      st.ctrl_lost <- st.ctrl_lost + 1;
      if tracing st Obs.Event.Control then
        emit st (Obs.Event.Ctrl_lost { reason })

  let make_links st =
    let cfg = st.cfg in
    let directed (u, v) =
      let l =
        Netsim.Link.create ~sched:st.sched ~bandwidth_bps:cfg.Config.bandwidth_bps
          ~prop_delay:cfg.Config.prop_delay
          ~queue_capacity:cfg.Config.queue_capacity
          ~deliver:(fun payload -> ingress st u v payload)
          ~dropped:(fun payload reason -> on_link_drop st payload reason)
          ()
      in
      st.links.(link_slot st u v) <- Some l
    in
    let both (u, v) =
      directed (u, v);
      directed (v, u)
    in
    List.iter both (Netsim.Topology.edges st.topo)

  let rtx_session st u v =
    match Hashtbl.find_opt st.rtx_sessions (u, v) with
    | Some s -> s
    | None -> invalid_arg (Printf.sprintf "Runner: no rtx session %d->%d" u v)

  (* Tear down / re-establish both endpoints' sessions over one undirected
     link. No-ops when the reliable transport is disabled. *)
  let rtx_link_down st u v =
    if st.rtx_on then begin
      Fault.Rtx.link_down (rtx_session st u v);
      Fault.Rtx.link_down (rtx_session st v u)
    end

  let rtx_link_up st u v =
    if st.rtx_on then begin
      Fault.Rtx.link_up (rtx_session st u v);
      Fault.Rtx.link_up (rtx_session st v u)
    end

  (* One endpoint's reliable session: [a]'s side of the (a, b) adjacency.
     Segments ride the same link with the same reliable flag and message
     size the idealized transport used — so at zero injected loss the wire
     behavior (transmission times, queue occupancy) is unchanged — but ACKs,
     retransmission and session epochs are now real. ACK segments are zero
     bits: framing overhead is not part of the paper's cost model. *)
  let make_rtx_session st a b =
    let config =
      Option.value st.faults.Fault.Spec.rtx ~default:Fault.Rtx.default_config
    in
    Fault.Rtx.create ~config ~sched:st.sched
      ~send:(fun seg ->
        let size_bits =
          match seg with
          | Fault.Rtx.Seg_data { msg; _ } -> P.message_size_bits msg
          | Fault.Rtx.Seg_ack _ -> 0
        in
        ignore
          (Netsim.Link.send (link st a b) ~reliable:true ~size_bits
             (Rseg { from = a; seg })))
      ~deliver:(fun msg -> deliver_ctrl st ~from:b a msg)
      ~on_reset:(fun ~epoch ->
        st.session_resets <- st.session_resets + 1;
        if tracing st Obs.Event.Control then
          emit st (Obs.Event.Session_reset { src = a; dst = b; epoch });
        (* Bounce the routing session on BOTH ends. A transport reset tears
           the adjacency down like a real BGP session drop, and session
           death is mutually observable (TCP reset / missing keepalives):
           [a] discards its Adj-RIB-in from [b] here, so if [b] did not
           also re-advertise, every route [a] learned over the session
           would be lost until an unrelated event resent it — a stale
           longer path surviving to quiescence (the lossy-heal fuzz
           counterexample). Each side withdraws what it learned and
           re-advertises its table over the fresh epoch. *)
        P.on_link_down st.routers.(a) ~neighbor:b;
        P.on_link_down st.routers.(b) ~neighbor:a;
        P.on_link_up st.routers.(a) ~neighbor:b;
        P.on_link_up st.routers.(b) ~neighbor:a)
      ~on_event:(function
        | Fault.Rtx.Retransmit { seq; attempt } ->
          st.rtx_retransmissions <- st.rtx_retransmissions + 1;
          if tracing st Obs.Event.Control then
            emit st
              (Obs.Event.Rtx_sent
                 { proto = P.name; src = a; dst = b; seq; attempt })
        | Fault.Rtx.Timeout { rto; attempt } ->
          st.rtx_timeouts <- st.rtx_timeouts + 1;
          if tracing st Obs.Event.Control then
            emit st (Obs.Event.Rtx_timeout { src = a; dst = b; rto; attempt }))
      ()

  (* Build one protocol instance. [gen] pins the instance's generation:
     timers scheduled by a crashed (or rebooted-over) instance find their
     generation stale and fall silent, which is how a crash discards a
     router's pending protocol work without tracking timer handles. *)
  let make_router st pcfg ~rng id =
    let gen = st.generation.(id) in
    let live () = st.generation.(id) = gen in
    (* When control-plane tracing is off, protocol timers are scheduled
       directly; otherwise each timer callback is wrapped to announce its
       firing. Decided once per router, not per timer. *)
    let trace_control = tracing st Obs.Event.Control in
    if st.rtx_on then
      List.iter
        (fun nb ->
          if not (Hashtbl.mem st.rtx_sessions (id, nb)) then
            Hashtbl.replace st.rtx_sessions (id, nb) (make_rtx_session st id nb))
        (Netsim.Topology.neighbors st.topo id);
    let run_timer fn =
      st.timer_fires <- st.timer_fires + 1;
      Obs.Prof.enter prof_timer;
      fn ();
      Obs.Prof.exit prof_timer
    in
    (* Timers are tagged events whose payload is the protocol's own callback:
       arming one allocates the cancellation handle and nothing else (the
       liveness guard and trace wrapper live in the per-router handler,
       registered once here instead of closed over per timer). *)
    let timer_tag =
      if trace_control then
        Dessim.Scheduler.register st.sched (fun fn ->
            if live () then begin
              emit st (Obs.Event.Timer_fired { node = id });
              run_timer fn
            end)
      else
        Dessim.Scheduler.register st.sched (fun fn ->
            if live () then run_timer fn)
    in
    let after_action delay fn =
      Dessim.Scheduler.after_tag_h st.sched ~delay timer_tag fn
    in
    let actions =
      {
        Protocols.Proto_intf.now = (fun () -> Dessim.Scheduler.now st.sched);
        send =
          (fun neighbor msg ->
            st.ctrl_messages <- st.ctrl_messages + 1;
            st.ctrl_bytes <- st.ctrl_bytes + (P.message_size_bits msg / 8);
            if trace_control then
              emit st
                (Obs.Event.Ctrl_sent
                   {
                     proto = P.name;
                     src = id;
                     dst = neighbor;
                     kind = msg_kind_of (P.message_kind msg);
                     bits = P.message_size_bits msg;
                   });
            if st.rtx_on then Fault.Rtx.send (rtx_session st id neighbor) msg
            else
              ignore
                (Netsim.Link.send (link st id neighbor)
                   ~reliable:P.uses_reliable_transport
                   ~size_bits:(P.message_size_bits msg)
                   (Ctrl { from = id; msg })));
        after = after_action;
        route_changed = (fun dst -> on_route_changed st id dst);
        note =
          (fun n ->
            if trace_control then
              match n with
              | Protocols.Proto_intf.Mrai_deferred { neighbor; dsts } ->
                emit st (Obs.Event.Mrai_defer { node = id; neighbor; dsts }));
      }
    in
    P.create pcfg ~rng ~id
      ~neighbors:(Netsim.Topology.neighbors st.topo id)
      ~actions

  let make_routers st pcfg master_rng =
    let n = Netsim.Topology.node_count st.topo in
    let make id = make_router st pcfg ~rng:(Dessim.Rng.split master_rng) id in
    st.routers <- Array.init n make;
    Array.iter P.start st.routers

  (* Create a packet at [src] bound for [dst], attach its handler, and push
     it into the forwarding plane. Returns the packet id. [?flow] identifies
     the originating flow in the trace; anonymous packets (transport ACKs)
     are not announced. *)
  let launch_packet st ?flow ~handler ~src ~dst ~size_bits () =
    let id = st.next_packet_id in
    st.next_packet_id <- id + 1;
    let p =
      Netsim.Packet.create ~id ~src ~dst ~size_bits ~ttl:st.cfg.Config.ttl
        ~sent_at:(Dessim.Scheduler.now st.sched)
    in
    let d = { d_pkt = p; d_handler = handler } in
    (match flow with
    | Some fidx when tracing st Obs.Event.Data ->
      emit st (Obs.Event.Packet_sent { flow = fidx; pkt = id; src; dst })
    | Some _ | None -> ());
    forward st src (Data d) d;
    id

  let start_traffic st (f : flow_state) =
    let cfg = st.cfg in
    let interval = 1. /. f.rate in
    let handler =
      {
        h_deliver =
          (fun p ->
            let now = Dessim.Scheduler.now st.sched in
            f.delivered <- f.delivered + 1;
            Dessim.Series.add f.throughput ~time:now 1.;
            let delay = now -. p.Netsim.Packet.sent_at in
            Dessim.Series.add f.delay ~time:now delay;
            (match st.delay_hist with
            | Some h -> Obs.Registry.observe h delay
            | None -> ());
            let looped = Netsim.Packet.looped p in
            if looped then f.looped_delivered <- f.looped_delivered + 1;
            if tracing st Obs.Event.Data then
              emit st
                (Obs.Event.Packet_delivered
                   { flow = f.idx; pkt = p.Netsim.Packet.id; delay; looped }));
        h_drop =
          (fun p reason ->
            (match reason with
            | Netsim.Types.No_route -> f.drops_no_route <- f.drops_no_route + 1
            | Netsim.Types.Ttl_expired -> f.drops_ttl <- f.drops_ttl + 1
            | Netsim.Types.Queue_overflow -> f.drops_queue <- f.drops_queue + 1
            | Netsim.Types.Link_down -> f.drops_link <- f.drops_link + 1
            | Netsim.Types.Injected_loss | Netsim.Types.Corrupted ->
              f.drops_injected <- f.drops_injected + 1);
            let looped = Netsim.Packet.looped p in
            if looped then f.looped_dropped <- f.looped_dropped + 1;
            if tracing st Obs.Event.Data then
              emit st
                (Obs.Event.Packet_dropped
                   { flow = f.idx; pkt = p.Netsim.Packet.id; reason; looped }));
      }
    in
    (* One self-rescheduling pacer closure for the flow's whole life: with
       [fire_after] (no handle, recycled event cell) the steady-state cost of
       a CBR tick is the packet itself. *)
    let rec send_one () =
      let now = Dessim.Scheduler.now st.sched in
      if now < cfg.Config.sim_end then begin
        f.sent <- f.sent + 1;
        ignore
          (launch_packet st ~flow:f.idx ~handler ~src:f.src ~dst:f.dst
             ~size_bits:(8 * cfg.Config.data_packet_bytes) ());
        Dessim.Scheduler.fire_after st.sched ~delay:interval send_one
      end
    in
    Dessim.Scheduler.fire_at st.sched ~at:f.start send_one

  let path_link_candidates path =
    let rec pairs = function
      | a :: (b :: _ as rest) -> (a, b) :: pairs rest
      | [ _ ] | [] -> []
    in
    pairs path

  let pick_failure_link st rng = function
    | Link (u, v) ->
      if not (Netsim.Topology.has_edge st.topo u v) then
        invalid_arg (Printf.sprintf "Runner: cannot fail nonexistent link %d-%d" u v);
      (u, v)
    | Random_link ->
      let live =
        List.filter
          (fun (u, v) -> Netsim.Link.is_up (link st u v))
          (Netsim.Topology.edges st.topo)
      in
      if live = [] then invalid_arg "Runner: no live link left to fail";
      Dessim.Rng.pick rng live
    | Flow_path i ->
      if i < 0 || i >= Array.length st.flows then
        invalid_arg "Runner: failure targets a nonexistent flow";
      let f = st.flows.(i) in
      let path = Observer.nodes_of (sample_path st f) in
      let live =
        List.filter
          (fun (u, v) -> Netsim.Link.is_up (link st u v))
          (path_link_candidates path)
      in
      (match live with
      | [] -> (
        (* Degenerate: no usable forwarding path; fall back to the
           topological shortest path so the experiment still runs. *)
        match Netsim.Topology.shortest_path st.topo f.src f.dst with
        | Some (a :: b :: _) -> (a, b)
        | Some _ | None -> invalid_arg "Runner: no path between src and dst")
      | candidates -> Dessim.Rng.pick rng candidates)

  let inject_failure st rng (spec : failure_spec) =
    let cfg = st.cfg in
    let act () =
      (* The first failure defines the measurement origin: freeze every
         flow's pre-failure path. *)
      if st.first_failure_at = None then begin
        st.first_failure_at <- Some (Dessim.Scheduler.now st.sched);
        Array.iter
          (fun f -> f.pre_failure_path <- Observer.nodes_of (sample_path st f))
          st.flows
      end;
      let u, v = pick_failure_link st rng spec.target in
      st.failed_links <- (u, v) :: st.failed_links;
      if tracing st Obs.Event.Env then emit st (Obs.Event.Link_failed { u; v });
      Netsim.Link.fail (link st u v);
      Netsim.Link.fail (link st v u);
      ignore
        (Dessim.Scheduler.after st.sched ~delay:cfg.Config.detection_delay
           (fun () ->
             (* Guarded on physical state so a heal racing the detection
                delay cannot leave a stale detection mark behind. *)
             if not (Netsim.Link.is_up (link st u v)) then frr_link_down st u v;
             rtx_link_down st u v;
             P.on_link_down st.routers.(u) ~neighbor:v;
             P.on_link_down st.routers.(v) ~neighbor:u;
             (* The failure may have changed the forwarding picture even if
                no best route changed yet (e.g. RIP still points at the dead
                link); sample so the history has a failure-time snapshot. *)
             Array.iter (record_path_sample st) st.flows));
      match spec.heal_after with
      | None -> ()
      | Some delay ->
        ignore
          (Dessim.Scheduler.after st.sched ~delay (fun () ->
               if tracing st Obs.Event.Env then
                 emit st (Obs.Event.Link_healed { u; v });
               Netsim.Link.restore (link st u v);
               Netsim.Link.restore (link st v u);
               frr_link_up st u v;
               rtx_link_up st u v;
               P.on_link_up st.routers.(u) ~neighbor:v;
               P.on_link_up st.routers.(v) ~neighbor:u))
    in
    ignore (Dessim.Scheduler.schedule st.sched ~at:spec.fail_at act)

  (* ---------- declarative fault schedules ---------- *)

  (* Flap and crash schedules can down the same link concurrently (a flapping
     link whose endpoint also crashes), so link state is refcounted per
     undirected edge: the link physically fails on 0 -> 1 and heals on
     1 -> 0, and every down/up cause just moves the count. *)
  let down_ref st u v =
    let key = if u <= v then (u, v) else (v, u) in
    match Hashtbl.find_opt st.down_refs key with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.replace st.down_refs key r;
      r

  let sched_take_down st u v =
    let r = down_ref st u v in
    incr r;
    if !r = 1 then begin
      if st.first_failure_at = None then begin
        st.first_failure_at <- Some (Dessim.Scheduler.now st.sched);
        Array.iter
          (fun f -> f.pre_failure_path <- Observer.nodes_of (sample_path st f))
          st.flows
      end;
      st.failed_links <- (u, v) :: st.failed_links;
      if tracing st Obs.Event.Env then emit st (Obs.Event.Link_failed { u; v });
      Netsim.Link.fail (link st u v);
      Netsim.Link.fail (link st v u);
      ignore
        (Dessim.Scheduler.after st.sched ~delay:st.cfg.Config.detection_delay
           (fun () ->
             (* Skip notification if the link already came back up: a flap
                shorter than the detection delay is invisible to routing,
                exactly like a real loss-of-signal debounce. *)
             if !(down_ref st u v) > 0 then begin
               frr_link_down st u v;
               rtx_link_down st u v;
               P.on_link_down st.routers.(u) ~neighbor:v;
               P.on_link_down st.routers.(v) ~neighbor:u;
               Array.iter (record_path_sample st) st.flows
             end))
    end

  let sched_bring_up st u v =
    let r = down_ref st u v in
    if !r > 0 then begin
      decr r;
      if !r = 0 then begin
        if tracing st Obs.Event.Env then emit st (Obs.Event.Link_healed { u; v });
        Netsim.Link.restore (link st u v);
        Netsim.Link.restore (link st v u);
        frr_link_up st u v;
        rtx_link_up st u v;
        P.on_link_up st.routers.(u) ~neighbor:v;
        P.on_link_up st.routers.(v) ~neighbor:u
      end
    end

  let apply_flap st srng (f : Fault.Schedule.flap) =
    let u, v =
      match f.Fault.Schedule.flap_link with
      | Fault.Schedule.Edge (u, v) ->
        if not (Netsim.Topology.has_edge st.topo u v) then
          invalid_arg
            (Printf.sprintf "Runner: cannot flap nonexistent link %d-%d" u v);
        (u, v)
      | Fault.Schedule.Any_edge ->
        Dessim.Rng.pick srng (Netsim.Topology.edges st.topo)
    in
    List.iter
      (fun { Fault.Schedule.at; up } ->
        ignore
          (Dessim.Scheduler.schedule st.sched ~at (fun () ->
               if up then sched_bring_up st u v else sched_take_down st u v)))
      (Fault.Schedule.flap_transitions srng f)

  let apply_crash st pcfg (c : Fault.Schedule.crash) =
    let node = c.Fault.Schedule.crash_node in
    ignore
      (Dessim.Scheduler.schedule st.sched ~at:c.Fault.Schedule.crash_at
         (fun () ->
           if (not st.crashed.(node)) && node >= 0
              && node < Array.length st.routers
           then begin
             st.crashed.(node) <- true;
             (* Bumping the generation silences every timer the dying
                instance has pending — its state is gone, not paused. *)
             st.generation.(node) <- st.generation.(node) + 1;
             if tracing st Obs.Event.Env then
               emit st (Obs.Event.Node_crash { node });
             List.iter
               (fun nb -> sched_take_down st node nb)
               (Netsim.Topology.neighbors st.topo node);
             match c.Fault.Schedule.reboot_after with
             | None -> ()
             | Some d ->
               ignore
                 (Dessim.Scheduler.after st.sched ~delay:d (fun () ->
                      st.crashed.(node) <- false;
                      if tracing st Obs.Event.Env then
                        emit st (Obs.Event.Node_reboot { node });
                      (* A fresh instance with a derived RNG: the reboot must
                         not consume master-stream draws, or a crash schedule
                         would perturb every later random choice of the run. *)
                      let rng =
                        Dessim.Rng.create
                          (Fault.Spec.node_seed ~seed:(fault_seed st) ~node
                             ~gen:st.generation.(node))
                      in
                      st.routers.(node) <- make_router st pcfg ~rng node;
                      P.start st.routers.(node);
                      List.iter
                        (fun nb -> sched_bring_up st node nb)
                        (Netsim.Topology.neighbors st.topo node)))
           end))

  let apply_faults st pcfg =
    let spec = st.faults in
    if spec.Fault.Spec.flaps <> [] || spec.Fault.Spec.crashes <> [] then begin
      let srng =
        Dessim.Rng.create (Fault.Spec.schedule_seed ~seed:(fault_seed st))
      in
      List.iter (apply_flap st srng) spec.Fault.Spec.flaps;
      List.iter (apply_crash st pcfg) spec.Fault.Spec.crashes
    end

  (* Forwarding-path convergence delay (paper Section 5.4): the time from the
     first failure until the flow's path last becomes equal to its final
     (post-convergence) value. *)
  let fwd_convergence_of st (f : flow_state) =
    match st.first_failure_at with
    | None -> 0.
    | Some failure -> (
      match f.path_samples with
      | [] -> 0.
      | (_, final) :: _ as samples ->
        (* Walk newest -> oldest while samples still equal the final path;
           the last one reached is when the path became final. Consecutive
           samples differ by construction, so in practice this inspects the
           newest sample only — kept general for robustness. *)
        let rec converged_at acc = function
          | (t, p) :: rest when Observer.equal p final && t >= failure ->
            converged_at t rest
          | _ -> acc
        in
        let t_final = converged_at failure samples in
        Float.max 0. (t_final -. failure))

  let transient_paths_of st (f : flow_state) =
    match st.first_failure_at with
    | None -> 0
    | Some failure ->
      let after_failure =
        List.filter (fun (t, _) -> t >= failure) f.path_samples
      in
      let distinct =
        List.fold_left
          (fun acc (_, p) ->
            if List.exists (Observer.equal p) acc then acc else p :: acc)
          [] after_failure
      in
      List.length distinct

  let flow_outcome st (f : flow_state) =
    let final = sample_path st f in
    {
      Metrics.f_src = f.src;
      f_dst = f.dst;
      f_sent = f.sent;
      f_delivered = f.delivered;
      f_drops_no_route = f.drops_no_route;
      f_drops_ttl = f.drops_ttl;
      f_drops_queue = f.drops_queue;
      f_drops_link = f.drops_link;
      f_drops_injected = f.drops_injected;
      f_looped_delivered = f.looped_delivered;
      f_looped_dropped = f.looped_dropped;
      f_throughput = f.throughput;
      f_delay = f.delay;
      f_fwd_convergence = fwd_convergence_of st f;
      f_transient_paths = transient_paths_of st f;
      f_pre_failure_path = f.pre_failure_path;
      f_final_path = Observer.nodes_of final;
      f_final_path_complete = Observer.is_complete final;
    }

  (* Build the whole simulation world (topology, links, routers, per-flow
     measurement slots) without starting any traffic. Returns the state and
     the master RNG, positioned identically regardless of what traffic will
     run on top — so a CBR run and a transport run over the same seed see the
     same flow endpoints and failure choices. *)
  let prepare ?topology ?(faults = Fault.Spec.none) ?(frr = false) ~trace
      ~monitors ~metrics ~flows (cfg : Config.t) (pcfg : P.config) =
    (match Config.validate cfg with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Runner.run: " ^ msg));
    (match Fault.Spec.validate faults with
    | Ok () -> ()
    | Error msg -> invalid_arg ("Runner.run: faults: " ^ msg));
    if flows = [] then invalid_arg "Runner.run: no flows";
    (* Monitors get the full, unfiltered event stream regardless of the
       user trace's category/severity restrictions. *)
    let trace =
      match monitors with
      | [] -> trace
      | ms -> Obs.Trace.tee (trace :: List.map Obs.Trace.create ms)
    in
    let rng = Dessim.Rng.create cfg.Config.seed in
    let topo =
      match topology with
      | Some t -> t
      | None ->
        Netsim.Mesh.generate ~rows:cfg.Config.rows ~cols:cfg.Config.cols
          ~degree:cfg.Config.degree
    in
    let buckets =
      int_of_float (Float.ceil (Config.duration_after_warmup cfg)) |> max 1
    in
    let resolve_flow idx (spec : flow_spec) =
      let pick_from candidates = function
        | Some n -> n
        | None -> Dessim.Rng.pick rng candidates
      in
      let src =
        pick_from
          (Netsim.Mesh.first_row ~rows:cfg.Config.rows ~cols:cfg.Config.cols)
          spec.flow_src
      in
      let dst =
        pick_from
          (Netsim.Mesh.last_row ~rows:cfg.Config.rows ~cols:cfg.Config.cols)
          spec.flow_dst
      in
      {
        idx;
        src;
        dst;
        rate = Option.value spec.flow_rate ~default:cfg.Config.send_rate_pps;
        start = Option.value spec.flow_start ~default:cfg.Config.traffic_start;
        sent = 0;
        delivered = 0;
        drops_no_route = 0;
        drops_ttl = 0;
        drops_queue = 0;
        drops_link = 0;
        drops_injected = 0;
        looped_delivered = 0;
        looped_dropped = 0;
        throughput = Dessim.Series.create ~start:cfg.Config.warmup ~width:1. ~buckets;
        delay = Dessim.Series.create ~start:cfg.Config.warmup ~width:1. ~buckets;
        path_samples = [];
        pre_failure_path = [];
        loop_since = None;
      }
    in
    let link_off, link_nbr =
      let n = Netsim.Topology.node_count topo in
      let off = Array.make (n + 1) 0 in
      for u = 0 to n - 1 do
        off.(u + 1) <- off.(u) + Netsim.Topology.degree topo u
      done;
      let nbr = Array.make off.(n) 0 in
      for u = 0 to n - 1 do
        (* [Topology.neighbors] is sorted ascending, which [link_slot]'s
           binary search depends on. *)
        List.iteri
          (fun i v -> nbr.(off.(u) + i) <- v)
          (Netsim.Topology.neighbors topo u)
      done;
      (off, nbr)
    in
    let slot_dense =
      let n = Netsim.Topology.node_count topo in
      (* 8 MB of slot indexes at the 1024-node threshold; graphs past it are
         the internet-scale sweeps, whose per-hop rate tolerates the binary
         search far better than their footprint tolerates O(n²) memory. *)
      if n * n > 1_048_576 then [||]
      else begin
        let dense = Array.make (n * n) (-1) in
        for u = 0 to n - 1 do
          for s = link_off.(u) to link_off.(u + 1) - 1 do
            dense.((u * n) + link_nbr.(s)) <- s
          done
        done;
        dense
      end
    in
    let st =
      {
        cfg;
        sched = Dessim.Scheduler.create ();
        topo;
        n_nodes = Netsim.Topology.node_count topo;
        link_off;
        link_nbr;
        slot_dense;
        links = Array.make (Array.length link_nbr) None;
        routers = [||];
        flows = Array.of_list (List.mapi resolve_flow flows);
        trace;
        metrics;
        delay_hist =
          Option.map (fun m -> Obs.Registry.histogram m "packet.delay_s") metrics;
        ctrl_messages = 0;
        ctrl_bytes = 0;
        ctrl_lost = 0;
        first_failure_at = None;
        last_route_change = 0.;
        failed_links = [];
        next_packet_id = 0;
        faults;
        rtx_on =
          (match faults.Fault.Spec.rtx with
          | Some _ -> P.uses_reliable_transport
          | None -> false);
        rtx_sessions = Hashtbl.create 64;
        link_rngs = Hashtbl.create 64;
        down_refs = Hashtbl.create 16;
        generation = Array.make (Netsim.Topology.node_count topo) 0;
        crashed = Array.make (Netsim.Topology.node_count topo) false;
        injected_data_drops = 0;
        injected_ctrl_drops = 0;
        rtx_retransmissions = 0;
        rtx_timeouts = 0;
        session_resets = 0;
        timer_fires = 0;
        data_forwards = 0;
        frr =
          (if frr then
             Some
               (Frr.create
                  ~n:(Netsim.Topology.node_count topo)
                  ~neighbors:(Netsim.Topology.neighbors topo))
           else None);
        frr_installs = 0;
        frr_activations = 0;
        frr_forwards = 0;
        frr_exhausted = 0;
      }
    in
    make_links st;
    make_routers st pcfg rng;
    apply_faults st pcfg;
    (st, rng)

  let collect_multi ?label st =
    let routing_convergence =
      match st.first_failure_at with
      | None -> 0.
      | Some t0 -> Float.max 0. (st.last_route_change -. t0)
    in
    {
      Metrics.m_protocol = (match label with Some l -> l | None -> P.name);
      m_degree = st.cfg.Config.degree;
      m_seed = st.cfg.Config.seed;
      m_flows = Array.to_list (Array.map (flow_outcome st) st.flows);
      m_ctrl_messages = st.ctrl_messages;
      m_ctrl_bytes = st.ctrl_bytes;
      m_ctrl_lost = st.ctrl_lost;
      m_routing_convergence = routing_convergence;
      m_failed_links = List.rev st.failed_links;
      m_sched_events = Dessim.Scheduler.events_processed st.sched;
    }

  (* Drive the scheduler to the end of the scenario, then record what it cost:
     a [Sched_stats] trace event and, when a registry was supplied, scheduler
     and control-plane metrics. *)
  let run_scheduler st =
    let gc0 = Gc.quick_stat () in
    let cpu0 = Sys.time () in
    Obs.Prof.enter prof_run;
    Dessim.Scheduler.run ~until:st.cfg.Config.sim_end st.sched;
    Obs.Prof.exit prof_run;
    let cpu_s = Sys.time () -. cpu0 in
    let gc1 = Gc.quick_stat () in
    let events = Dessim.Scheduler.events_processed st.sched in
    let max_queue = Dessim.Scheduler.max_queue_depth st.sched in
    if tracing st Obs.Event.Sched then
      emit st (Obs.Event.Sched_stats { events; max_queue; cpu_s });
    (match st.metrics with
    | None -> ()
    | Some m ->
      Obs.Registry.set (Obs.Registry.gauge m "scheduler.events_fired")
        (float_of_int events);
      Obs.Registry.set
        (Obs.Registry.gauge m "scheduler.events_scheduled")
        (float_of_int (Dessim.Scheduler.events_scheduled st.sched));
      Obs.Registry.set
        (Obs.Registry.gauge m "scheduler.events_skipped")
        (float_of_int (Dessim.Scheduler.events_skipped st.sched));
      Obs.Registry.set
        (Obs.Registry.gauge m "scheduler.max_queue_depth")
        (float_of_int max_queue);
      Obs.Registry.set
        (Obs.Registry.gauge m "scheduler.events_per_cpu_s")
        (if cpu_s > 0. then float_of_int events /. cpu_s else 0.);
      Obs.Registry.incr ~by:st.timer_fires
        (Obs.Registry.counter m "sched.timer_fires");
      Obs.Registry.incr ~by:st.data_forwards
        (Obs.Registry.counter m "sched.data_forwards");
      (* Allocation telemetry: minor words are deterministic for a
         deterministic simulation (collection timing does not change how
         much is allocated), promotion and collection counts are not. *)
      Obs.Registry.set
        (Obs.Registry.gauge m "gc.minor_words")
        (gc1.Gc.minor_words -. gc0.Gc.minor_words);
      Obs.Registry.set
        (Obs.Registry.gauge m "gc.promoted_words")
        (gc1.Gc.promoted_words -. gc0.Gc.promoted_words);
      Obs.Registry.set
        (Obs.Registry.gauge m "gc.major_collections")
        (float_of_int (gc1.Gc.major_collections - gc0.Gc.major_collections));
      Obs.Registry.set
        (Obs.Registry.gauge m "alloc.minor_words_per_event")
        (if events > 0 then
           (gc1.Gc.minor_words -. gc0.Gc.minor_words) /. float_of_int events
         else 0.);
      Obs.Registry.set (Obs.Registry.gauge m "scenario.cpu_s") cpu_s;
      Obs.Registry.incr ~by:st.ctrl_messages (Obs.Registry.counter m "ctrl.messages");
      Obs.Registry.incr ~by:st.ctrl_bytes (Obs.Registry.counter m "ctrl.bytes");
      Obs.Registry.incr ~by:st.ctrl_lost (Obs.Registry.counter m "ctrl.lost");
      (* FRR gauges appear only for frr runs, so a plain run's metric
         listing is unchanged. *)
      if st.frr <> None then begin
        Obs.Registry.set
          (Obs.Registry.gauge m "frr.installs")
          (float_of_int st.frr_installs);
        Obs.Registry.set
          (Obs.Registry.gauge m "frr.activations")
          (float_of_int st.frr_activations);
        Obs.Registry.set
          (Obs.Registry.gauge m "frr.forwards")
          (float_of_int st.frr_forwards);
        Obs.Registry.set
          (Obs.Registry.gauge m "frr.exhausted")
          (float_of_int st.frr_exhausted)
      end;
      (* Fault gauges appear only for faulted runs, so a plain run's metric
         listing is unchanged. *)
      if not (Fault.Spec.is_none st.faults) then begin
        Obs.Registry.set
          (Obs.Registry.gauge m "fault.injected_data_drops")
          (float_of_int st.injected_data_drops);
        Obs.Registry.set
          (Obs.Registry.gauge m "fault.injected_ctrl_drops")
          (float_of_int st.injected_ctrl_drops);
        Obs.Registry.set
          (Obs.Registry.gauge m "rtx.retransmissions")
          (float_of_int st.rtx_retransmissions);
        Obs.Registry.set
          (Obs.Registry.gauge m "rtx.timeouts")
          (float_of_int st.rtx_timeouts);
        Obs.Registry.set
          (Obs.Registry.gauge m "rtx.session_resets")
          (float_of_int st.session_resets)
      end);
    Obs.Trace.flush st.trace

  (* The end-of-run control-plane snapshot for [?on_quiesce]: converged
     routing decisions plus the topology with currently-down links removed. *)
  let routing_view st =
    let surviving =
      List.filter
        (fun (u, v) -> Netsim.Link.is_up (link st u v))
        (Netsim.Topology.edges st.topo)
    in
    {
      rv_topology =
        Netsim.Topology.create
          ~nodes:(Netsim.Topology.node_count st.topo)
          ~edges:surviving;
      rv_next_hop = (fun ~src ~dst -> next_hop_of st src ~dst);
      rv_metric = (fun ~src ~dst -> P.metric st.routers.(src) ~dst);
      rv_backup =
        Option.map
          (fun f -> fun ~src ~dst -> Frr.backup f ~node:src ~dst)
          st.frr;
    }

  let run_multi ?label ?topology ?faults ?frr ?(trace = Obs.Trace.null)
      ?(monitors = []) ?metrics ?on_quiesce ~flows ~failures (cfg : Config.t)
      (pcfg : P.config) =
    let st, rng =
      prepare ?topology ?faults ?frr ~trace ~monitors ~metrics ~flows cfg pcfg
    in
    Array.iter (start_traffic st) st.flows;
    List.iter (inject_failure st rng) failures;
    run_scheduler st;
    (* Settle the backup table against the final routing state before the
       quiescence hook reads it: a sweep still pending (debounce armed past
       [sim_end]) would leave the last route changes unapplied, and the
       differential oracle checks backups against converged tables. *)
    (match st.frr with
    | Some f when on_quiesce <> None -> frr_sweep ~installs_traced:false st f
    | Some _ | None -> ());
    (match on_quiesce with Some f -> f (routing_view st) | None -> ());
    collect_multi ?label st

  let run ?label ?topology ?faults ?frr ?src ?dst ?trace ?monitors ?metrics
      ?on_quiesce ?fail_link ?restore_after (cfg : Config.t) (pcfg : P.config)
      =
    let flow = { default_flow with flow_src = src; flow_dst = dst } in
    let failure =
      {
        fail_at = cfg.Config.failure_time;
        target = (match fail_link with Some (u, v) -> Link (u, v) | None -> Flow_path 0);
        heal_after = restore_after;
      }
    in
    Metrics.run_of_multi
      (run_multi ?label ?topology ?faults ?frr ?trace ?monitors ?metrics
         ?on_quiesce ~flows:[ flow ] ~failures:[ failure ] cfg pcfg)

  (* ---------- reliable transport on top of the data plane ---------- *)

  (* Sender/receiver pair implementing a fixed-size sliding window with
     cumulative ACKs and go-back-to-base timeout retransmission — the "simple
     flow control with a maximal window size and retransmission after
     timeout" workload of Shankar et al. (the paper's reference [25]), and a
     first step toward the paper's future-work TCP study. *)
  let start_transport st (f : flow_state) (tc : transport_config) =
    if tc.window <= 0 then invalid_arg "Runner: transport window";
    if tc.rto <= 0. then invalid_arg "Runner: transport rto";
    let goodput =
      let buckets =
        int_of_float (Float.ceil (st.cfg.Config.sim_end -. f.start)) |> max 1
      in
      Dessim.Series.create ~start:f.start ~width:1. ~buckets
    in
    let outcome =
      ref
        {
          t_completed = 0;
          t_retransmissions = 0;
          t_duplicates = 0;
          t_completed_at = None;
          t_goodput = goodput;
          t_multi =
            {
              Metrics.m_protocol = "";
              m_degree = 0;
              m_seed = 0;
              m_flows = [];
              m_ctrl_messages = 0;
              m_ctrl_bytes = 0;
              m_ctrl_lost = 0;
              m_routing_convergence = 0.;
              m_failed_links = [];
              m_sched_events = 0;
            };
        }
    in
    (* Sender state. *)
    let send_base = ref 0 in
    let next_seq = ref 0 in
    let rto_handle = ref None in
    (* Receiver state. *)
    let rcv_next = ref 0 in
    let out_of_order = Hashtbl.create 64 in
    let cancel_rto () =
      match !rto_handle with
      | Some h ->
        Dessim.Scheduler.cancel h;
        rto_handle := None
      | None -> ()
    in
    let finished () = tc.total_packets > 0 && !send_base >= tc.total_packets in
    let limit () =
      if tc.total_packets > 0 then min tc.total_packets (!send_base + tc.window)
      else !send_base + tc.window
    in
    let null_drop _ _ = () in
    let rec send_ack () =
      (* Cumulative ACK: carries [rcv_next] via a side table keyed by packet
         id (the simulator's packets have no payload field). *)
      let cum = !rcv_next in
      let handler =
        { h_deliver = (fun _ -> on_ack cum); h_drop = null_drop }
      in
      ignore
        (launch_packet st ~handler ~src:f.dst ~dst:f.src
           ~size_bits:(8 * tc.ack_bytes) ())
    and on_data seq =
      if seq = !rcv_next then begin
        incr rcv_next;
        while Hashtbl.mem out_of_order !rcv_next do
          Hashtbl.remove out_of_order !rcv_next;
          incr rcv_next
        done
      end
      else if seq > !rcv_next then Hashtbl.replace out_of_order seq ()
      else outcome := { !outcome with t_duplicates = !outcome.t_duplicates + 1 };
      send_ack ()
    and send_data ~retransmit seq =
      if retransmit then
        outcome :=
          { !outcome with t_retransmissions = !outcome.t_retransmissions + 1 };
      f.sent <- f.sent + 1;
      let handler =
        {
          h_deliver =
            (fun p ->
              if tracing st Obs.Event.Data then begin
                let now = Dessim.Scheduler.now st.sched in
                emit st
                  (Obs.Event.Packet_delivered
                     {
                       flow = f.idx;
                       pkt = p.Netsim.Packet.id;
                       delay = now -. p.Netsim.Packet.sent_at;
                       looped = Netsim.Packet.looped p;
                     })
              end;
              on_data seq);
          h_drop =
            (fun p reason ->
              if tracing st Obs.Event.Data then
                emit st
                  (Obs.Event.Packet_dropped
                     {
                       flow = f.idx;
                       pkt = p.Netsim.Packet.id;
                       reason;
                       looped = Netsim.Packet.looped p;
                     }));
        }
      in
      ignore
        (launch_packet st ~flow:f.idx ~handler ~src:f.src ~dst:f.dst
           ~size_bits:(8 * st.cfg.Config.data_packet_bytes) ())
    and arm_rto () =
      cancel_rto ();
      if not (finished ()) then
        rto_handle :=
          Some
            (Dessim.Scheduler.after st.sched ~delay:tc.rto (fun () ->
                 rto_handle := None;
                 if not (finished ()) then begin
                   (* Timeout: go-back-N — resend every outstanding packet,
                      so one timeout after the route heals recovers the whole
                      lost window in about one RTT. *)
                   for seq = !send_base to !next_seq - 1 do
                     send_data ~retransmit:true seq
                   done;
                   arm_rto ()
                 end))
    and fill_window () =
      while !next_seq < limit () do
        send_data ~retransmit:false !next_seq;
        incr next_seq
      done;
      if !next_seq > !send_base && !rto_handle = None then arm_rto ()
    and on_ack cum =
      if cum > !send_base then begin
        let now = Dessim.Scheduler.now st.sched in
        let progress = cum - !send_base in
        for _ = 1 to progress do
          Dessim.Series.add goodput ~time:now 1.
        done;
        send_base := cum;
        outcome :=
          {
            !outcome with
            t_completed = cum;
            t_completed_at =
              (if finished () && !outcome.t_completed_at = None then Some now
               else !outcome.t_completed_at);
          };
        if finished () then cancel_rto () else arm_rto ();
        fill_window ()
      end
    in
    ignore (Dessim.Scheduler.schedule st.sched ~at:f.start fill_window);
    outcome

  let run_transport ?label ?topology ?faults ?frr ?(trace = Obs.Trace.null)
      ?metrics ?src ?dst ~failures (tc : transport_config) (cfg : Config.t)
      (pcfg : P.config) =
    let flow = { default_flow with flow_src = src; flow_dst = dst } in
    let st, rng =
      prepare ?topology ?faults ?frr ~trace ~monitors:[] ~metrics
        ~flows:[ flow ] cfg pcfg
    in
    let outcome = start_transport st st.flows.(0) tc in
    List.iter (inject_failure st rng) failures;
    run_scheduler st;
    { !outcome with t_multi = collect_multi ?label st }
end
