(** The simulation harness: wires a topology, links, one protocol instance per
    router, CBR data flows, and link-failure injection, then measures
    everything {!Metrics} records.

    Two entry points:
    - {!Make.run} is the paper's scenario — one flow (first row to last row),
      one failure on that flow's path at [failure_time];
    - {!Make.run_multi} is the paper's future-work generalization — any
      number of flows and any number of (possibly overlapping, possibly
      transient) link failures.

    Timeline of the paper scenario (defaults in parentheses):
    - [t = 0]: protocols start, warm up, and converge;
    - [traffic_start] (350 s): the sender begins CBR traffic toward the
      receiver (sender on the mesh's first row, receiver on the last row,
      both chosen by the run's RNG);
    - [failure_time] (400 s): a randomly chosen link on the {e current}
      sender->receiver forwarding path fails; both endpoints detect it
      [detection_delay] later;
    - [sim_end] (800 s): measurement stops. *)

type flow_spec = {
  flow_src : Netsim.Types.node_id option;  (** [None]: random first-row router *)
  flow_dst : Netsim.Types.node_id option;  (** [None]: random last-row router *)
  flow_rate : float option;  (** [None]: the config's [send_rate_pps] *)
  flow_start : float option;  (** [None]: the config's [traffic_start] *)
}

val default_flow : flow_spec

type failure_target =
  | Flow_path of int
      (** a random link on the current forwarding path of the i-th flow *)
  | Link of Netsim.Types.node_id * Netsim.Types.node_id  (** a pinned link *)
  | Random_link  (** a random live link of the topology *)

type failure_spec = {
  fail_at : float;
  target : failure_target;
  heal_after : float option;  (** restore the link this long after failing *)
}

type transport_config = {
  window : int;  (** max unacknowledged packets in flight *)
  rto : float;  (** retransmission timeout in seconds *)
  total_packets : int;  (** transfer size; [0] = saturate until [sim_end] *)
  ack_bytes : int;
}

val default_transport : transport_config
(** window 16, RTO 1 s, unlimited transfer, 40-byte ACKs. *)

type routing_view = {
  rv_topology : Netsim.Topology.t;
      (** the surviving topology: links currently down are removed *)
  rv_next_hop :
    src:Netsim.Types.node_id -> dst:Netsim.Types.node_id ->
    Netsim.Types.node_id option;
  rv_metric :
    src:Netsim.Types.node_id -> dst:Netsim.Types.node_id -> int option;
  rv_backup :
    (src:Netsim.Types.node_id -> dst:Netsim.Types.node_id ->
     Netsim.Types.node_id option)
    option;
      (** the installed fast-reroute backup next hops (settled against the
          final routing tables); [None] when the run had [~frr:false] *)
}
(** A protocol-agnostic snapshot of every router's converged forwarding
    decisions, taken once the scheduler has drained to [sim_end]. The check
    library's differential oracle compares it against an independent
    shortest-path computation on [rv_topology]. Accessors must not be used
    after the hook returns for a [src] outside [0 .. node_count - 1], and
    are never consulted for [src = dst]. *)

type transport_outcome = {
  t_completed : int;  (** packets acknowledged in order *)
  t_retransmissions : int;
  t_duplicates : int;  (** data packets that arrived more than once *)
  t_completed_at : float option;
      (** when the whole [total_packets] transfer finished, if it did *)
  t_goodput : Dessim.Series.t;
      (** newly acknowledged packets per 1 s bucket, at the sender *)
  t_multi : Metrics.multi;
      (** control-plane and failure bookkeeping of the underlying run *)
}

(** Every entry point accepts:
    - [?trace] — an {!Obs.Trace.t} receiving the full structured event stream
      (data plane, control plane, environment, scheduler). Defaults to
      {!Obs.Trace.null}, which costs one boolean test per potential event.
    - [?metrics] — an {!Obs.Registry.t} the run populates with
      [scheduler.events_fired], [scheduler.events_scheduled],
      [scheduler.events_skipped], [scheduler.max_queue_depth],
      [scheduler.events_per_cpu_s], [scenario.cpu_s], [gc.minor_words],
      [gc.promoted_words], [gc.major_collections] and
      [alloc.minor_words_per_event] gauges,
      [ctrl.messages]/[ctrl.bytes]/[ctrl.lost]/[sched.timer_fires]/
      [sched.data_forwards] counters, and a [packet.delay_s] histogram of
      CBR delivery delays. Event and callback counts are deterministic;
      the cpu, gc and alloc numbers are honest measurement (and, in
      multi-domain programs, [Gc.quick_stat] aggregates across domains).
    - [?faults] — a {!Fault.Spec.t} describing injected link noise, fault
      schedules (flaps, crashes), and the reliable-control-transport
      configuration. Defaults to {!Fault.Spec.none}, in which case the run
      takes exactly its pre-fault code paths (bit-identical traces and
      metrics). When faults are active the registry additionally gains
      [fault.injected_data_drops], [fault.injected_ctrl_drops],
      [rtx.retransmissions], [rtx.timeouts], and [rtx.session_resets].
    - [?frr] — enable the fast-reroute layer: every router precomputes a
      loop-free backup next hop per destination ({!Frr}) and degrades
      gracefully onto it whenever its primary route is unusable — aimed at a
      locally-detected-down link, or withdrawn/invalidated by reconvergence
      churn — falling back to normal forwarding once the protocol installs a
      fresh usable primary. Defaults to
      [false], in which case the run takes exactly its pre-frr code paths
      (bit-identical traces and metrics). When on, the registry gains
      [frr.installs], [frr.activations], [frr.forwards] and
      [frr.exhausted] gauges, and the trace gains the [Frr_*] events. *)
module Make (P : Protocols.Proto_intf.PROTOCOL) : sig
  val run_multi :
    ?label:string ->
    ?topology:Netsim.Topology.t ->
    ?faults:Fault.Spec.t ->
    ?frr:bool ->
    ?trace:Obs.Trace.t ->
    ?monitors:Obs.Sink.t list ->
    ?metrics:Obs.Registry.t ->
    ?on_quiesce:(routing_view -> unit) ->
    flows:flow_spec list ->
    failures:failure_spec list ->
    Config.t ->
    P.config ->
    Metrics.multi
  (** [run_multi ~flows ~failures cfg pcfg] executes one simulation.
      Convergence metrics are measured relative to the {e first} failure.

      [?monitors] are extra sinks — typically invariant checkers from the
      check library — that receive the {e complete} event stream (every
      category, down to [Debug]) regardless of [?trace]'s filters; each gets
      its own sequence numbering. [?on_quiesce] runs once after the scheduler
      drains, with a {!routing_view} of the final routing state.

      @raise Invalid_argument when [Config.validate] rejects [cfg], when
      [flows] is empty, or when a [Flow_path] index is out of range. *)

  val run :
    ?label:string ->
    ?topology:Netsim.Topology.t ->
    ?faults:Fault.Spec.t ->
    ?frr:bool ->
    ?src:Netsim.Types.node_id ->
    ?dst:Netsim.Types.node_id ->
    ?trace:Obs.Trace.t ->
    ?monitors:Obs.Sink.t list ->
    ?metrics:Obs.Registry.t ->
    ?on_quiesce:(routing_view -> unit) ->
    ?fail_link:Netsim.Types.node_id * Netsim.Types.node_id ->
    ?restore_after:float ->
    Config.t ->
    P.config ->
    Metrics.run
  (** The paper's single-flow scenario: equivalent to {!run_multi} with one
      flow and one failure at [cfg.failure_time] targeting that flow's path
      (or [?fail_link] when pinned). *)

  (** {2 End-to-end reliable transport}

      A sliding-window sender with cumulative ACKs and timeout retransmission
      — the "simple flow control with a maximal window size and
      retransmission after timeout" workload of the paper's reference [25],
      and a first step toward its future-work end-to-end TCP study. Data
      packets and ACKs ride the same simulated links and are recovered from
      convergence-period losses by the transport, so the metric shifts from
      raw delivery to {e goodput} and {e completion time}. *)

  val run_transport :
    ?label:string ->
    ?topology:Netsim.Topology.t ->
    ?faults:Fault.Spec.t ->
    ?frr:bool ->
    ?trace:Obs.Trace.t ->
    ?metrics:Obs.Registry.t ->
    ?src:Netsim.Types.node_id ->
    ?dst:Netsim.Types.node_id ->
    failures:failure_spec list ->
    transport_config ->
    Config.t ->
    P.config ->
    transport_outcome
  (** [run_transport ~failures tc cfg pcfg] runs one transport connection
      (starting at [cfg.traffic_start]) across the usual scenario. *)
end
