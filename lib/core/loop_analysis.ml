type episode = {
  cycle : Netsim.Types.node_id list;
  started : float;
  ended : float;
}

let duration e = e.ended -. e.started

(* Rotate a cycle so the smallest node comes first, preserving forwarding
   order; makes cycles comparable regardless of where they were entered. *)
let normalize cycle =
  match cycle with
  | [] -> []
  | _ ->
    let smallest = List.fold_left min (List.hd cycle) cycle in
    let rec rotate acc = function
      | [] -> List.rev acc (* unreachable: smallest is a member *)
      | x :: rest when x = smallest -> (x :: rest) @ List.rev acc
      | x :: rest -> rotate (x :: acc) rest
    in
    rotate [] cycle

let cycle_of_visits visits =
  (* [visits] in travel order; find the first node that repeats and cut the
     cycle between its two occurrences. *)
  let rec hunt seen = function
    | [] -> None
    | x :: rest ->
      if List.mem x seen then begin
        (* seen is reversed prefix; the cycle runs from x's first occurrence
           up to (excluding) this repeat. *)
        let rec take acc = function
          | [] -> acc (* unreachable *)
          | y :: more -> if y = x then y :: acc else take (y :: acc) more
        in
        Some (normalize (take [] seen))
      end
      else hunt (x :: seen) rest
  in
  hunt [] visits

let cycle_of_packet visits = cycle_of_visits visits

let cycle_of_path = function
  | Observer.Looping p -> cycle_of_visits p
  | Observer.Complete _ | Observer.Broken _ -> None

let episodes history =
  let ordered = List.sort (fun (a, _) (b, _) -> compare a b) history in
  let close acc = function
    | None -> acc
    | Some e -> e :: acc
  in
  let step (acc, current) (time, path) =
    match (cycle_of_path path, current) with
    | None, _ -> (close acc current, None)
    | Some cycle, Some e when Observer.equal_nodes e.cycle cycle ->
      (acc, Some { e with ended = time })
    | Some cycle, _ ->
      (close acc current, Some { cycle; started = time; ended = time })
  in
  let acc, current = List.fold_left step ([], None) ordered in
  List.rev (close acc current)

let pp_episode ppf e =
  Fmt.pf ppf "loop %a from %.2fs to %.2fs (%.2fs)" Netsim.Types.pp_path e.cycle
    e.started e.ended (duration e)
