(** First-class protocol engines: a protocol module packed with the
    configuration the paper runs it under, so sweeps can iterate over
    heterogeneous protocols uniformly. *)

type t =
  | Engine :
      (module Protocols.Proto_intf.PROTOCOL with type config = 'c) * 'c * string
      -> t

val name : t -> string

val rip : t
(** RIP with RFC 2453 defaults. *)

val dbf : t
(** Distributed Bellman-Ford with the same timers as RIP. *)

val bgp : t
(** BGP, MRAI mean 30 s, per-neighbor. *)

val bgp3 : t
(** The paper's specially parameterized BGP: MRAI mean 3 s. *)

val bgp_per_dest : t
(** BGP, MRAI mean 30 s, per-(neighbor, destination) — the ablation the paper
    speculates about in Section 5.2. *)

val bgp3_rfd : t
(** BGP-3 with route flap damping enabled (the intro's [4]/[15] mechanism). *)

val ls : t
(** Link-state (future-work extension). *)

val paper_four : t list
(** The four engines of the paper's figures: RIP, DBF, BGP, BGP-3. *)

val all : t list

val find : string -> t option
(** Case-insensitive lookup by display name. *)

val run :
  ?topology:Netsim.Topology.t ->
  ?faults:Fault.Spec.t ->
  ?frr:bool ->
  ?src:Netsim.Types.node_id ->
  ?dst:Netsim.Types.node_id ->
  ?trace:Obs.Trace.t ->
  ?monitors:Obs.Sink.t list ->
  ?metrics:Obs.Registry.t ->
  ?on_quiesce:(Runner.routing_view -> unit) ->
  ?fail_link:Netsim.Types.node_id * Netsim.Types.node_id ->
  ?restore_after:float ->
  Config.t ->
  t ->
  Metrics.run
(** Execute the paper's single-flow scenario under the given engine. [?trace],
    [?monitors], [?metrics] and [?on_quiesce] are forwarded to
    {!Runner.Make.run}. *)

val run_multi :
  ?topology:Netsim.Topology.t ->
  ?faults:Fault.Spec.t ->
  ?frr:bool ->
  ?trace:Obs.Trace.t ->
  ?monitors:Obs.Sink.t list ->
  ?metrics:Obs.Registry.t ->
  ?on_quiesce:(Runner.routing_view -> unit) ->
  flows:Runner.flow_spec list ->
  failures:Runner.failure_spec list ->
  Config.t ->
  t ->
  Metrics.multi
(** Execute a multi-flow, multi-failure scenario under the given engine. *)

val run_transport :
  ?topology:Netsim.Topology.t ->
  ?faults:Fault.Spec.t ->
  ?frr:bool ->
  ?trace:Obs.Trace.t ->
  ?metrics:Obs.Registry.t ->
  ?src:Netsim.Types.node_id ->
  ?dst:Netsim.Types.node_id ->
  failures:Runner.failure_spec list ->
  Runner.transport_config ->
  Config.t ->
  t ->
  Runner.transport_outcome
(** Execute a reliable-transport transfer under the given engine. *)
