type path_result =
  | Complete of Netsim.Types.node_id list
  | Broken of Netsim.Types.node_id list
  | Looping of Netsim.Types.node_id list

let current_path ~next_hop ~src ~dst =
  let module Iset = Set.Make (Int) in
  let rec walk seen acc node =
    if node = dst then Complete (List.rev (node :: acc))
    else if Iset.mem node seen then Looping (List.rev (node :: acc))
    else
      match next_hop node with
      | None -> Broken (List.rev (node :: acc))
      | Some nh -> walk (Iset.add node seen) (node :: acc) nh
  in
  walk Iset.empty [] src

let is_complete = function Complete _ -> true | Broken _ | Looping _ -> false

let nodes_of = function Complete p | Broken p | Looping p -> p

let equal_nodes = List.equal Int.equal

let equal a b =
  match (a, b) with
  | Complete p, Complete q | Broken p, Broken q | Looping p, Looping q ->
    equal_nodes p q
  | (Complete _ | Broken _ | Looping _), _ -> false

let hops = function
  | Complete p -> Some (List.length p - 1)
  | Broken _ | Looping _ -> None

let pp ppf = function
  | Complete p -> Fmt.pf ppf "complete %a" Netsim.Types.pp_path p
  | Broken p -> Fmt.pf ppf "broken %a" Netsim.Types.pp_path p
  | Looping p -> Fmt.pf ppf "looping %a" Netsim.Types.pp_path p
