let buffer_csv header rows render =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (render row));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let f = Printf.sprintf "%g"

let i = string_of_int

let run_csv runs =
  buffer_csv
    [
      "protocol"; "degree"; "seed"; "src"; "dst"; "sent"; "delivered";
      "drops_no_route"; "drops_ttl"; "drops_queue"; "drops_link";
      "looped_delivered"; "looped_dropped"; "ctrl_messages"; "ctrl_bytes";
      "ctrl_lost"; "fwd_convergence"; "routing_convergence"; "transient_paths";
    ]
    runs
    (fun (r : Metrics.run) ->
      [
        r.Metrics.protocol; i r.Metrics.degree; i r.Metrics.seed;
        i r.Metrics.src; i r.Metrics.dst; i r.Metrics.sent;
        i r.Metrics.delivered; i r.Metrics.drops_no_route;
        i r.Metrics.drops_ttl; i r.Metrics.drops_queue; i r.Metrics.drops_link;
        i r.Metrics.looped_delivered; i r.Metrics.looped_dropped;
        i r.Metrics.ctrl_messages; i r.Metrics.ctrl_bytes; i r.Metrics.ctrl_lost;
        f r.Metrics.fwd_convergence; f r.Metrics.routing_convergence;
        i r.Metrics.transient_paths;
      ])

let summary_csv summaries =
  buffer_csv
    [
      "protocol"; "degree"; "runs"; "mean_sent"; "mean_delivered";
      "mean_drops_no_route"; "mean_drops_ttl"; "mean_drops_queue";
      "mean_drops_link"; "mean_fwd_convergence"; "stddev_fwd_convergence";
      "mean_routing_convergence"; "stddev_routing_convergence";
      "mean_transient_paths"; "mean_ctrl_messages";
    ]
    summaries
    (fun (s : Metrics.summary) ->
      [
        s.Metrics.s_protocol; i s.Metrics.s_degree; i s.Metrics.s_runs;
        f s.Metrics.mean_sent; f s.Metrics.mean_delivered;
        f s.Metrics.mean_drops_no_route; f s.Metrics.mean_drops_ttl;
        f s.Metrics.mean_drops_queue; f s.Metrics.mean_drops_link;
        f s.Metrics.mean_fwd_convergence; f s.Metrics.stddev_fwd_convergence;
        f s.Metrics.mean_routing_convergence;
        f s.Metrics.stddev_routing_convergence; f s.Metrics.mean_transient_paths;
        f s.Metrics.mean_ctrl_messages;
      ])

let grid_csv grid =
  let summaries =
    List.concat_map
      (fun (_, cells) ->
        List.map (fun c -> c.Experiments.summary) cells)
      grid
  in
  summary_csv summaries

let series_csv ~warmup data =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "protocol,time,count,rate,mean\n";
  let emit (name, series) =
    for b = 0 to Dessim.Series.buckets series - 1 do
      Buffer.add_string buf
        (Printf.sprintf "%s,%g,%g,%g,%g\n" name
           (Dessim.Series.time_of_bucket series b -. warmup)
           (Dessim.Series.frac_count series b)
           (Dessim.Series.frac_count series b /. Dessim.Series.width series)
           (Dessim.Series.mean series b))
    done
  in
  List.iter emit data;
  Buffer.contents buf

let flows_csv (m : Metrics.multi) =
  buffer_csv
    [
      "protocol"; "degree"; "seed"; "src"; "dst"; "sent"; "delivered";
      "delivery_ratio"; "drops_no_route"; "drops_ttl"; "drops_queue";
      "drops_link"; "fwd_convergence"; "transient_paths";
    ]
    m.Metrics.m_flows
    (fun (fl : Metrics.flow) ->
      [
        m.Metrics.m_protocol; i m.Metrics.m_degree; i m.Metrics.m_seed;
        i fl.Metrics.f_src; i fl.Metrics.f_dst; i fl.Metrics.f_sent;
        i fl.Metrics.f_delivered; f (Metrics.flow_delivery_ratio fl);
        i fl.Metrics.f_drops_no_route; i fl.Metrics.f_drops_ttl;
        i fl.Metrics.f_drops_queue; i fl.Metrics.f_drops_link;
        f fl.Metrics.f_fwd_convergence; i fl.Metrics.f_transient_paths;
      ])

let to_file csv ~path = Rcutil.Atomic_file.write_string ~path csv
