type t =
  | Engine :
      (module Protocols.Proto_intf.PROTOCOL with type config = 'c) * 'c * string
      -> t

let name (Engine (_, _, label)) = label

let rip = Engine ((module Protocols.Rip), Protocols.Rip.default_config, "RIP")

let dbf = Engine ((module Protocols.Dbf), Protocols.Dbf.default_config, "DBF")

let bgp = Engine ((module Protocols.Bgp), Protocols.Bgp.default_config, "BGP")

let bgp3 = Engine ((module Protocols.Bgp), Protocols.Bgp.fast_config, "BGP-3")

let bgp_per_dest =
  Engine
    ( (module Protocols.Bgp),
      { Protocols.Bgp.default_config with mrai_scope = Protocols.Bgp.Per_destination },
      "BGP-pd" )

let bgp3_rfd =
  Engine
    ( (module Protocols.Bgp),
      { Protocols.Bgp.fast_config with rfd = Some Protocols.Bgp.default_rfd },
      "BGP-3+RFD" )

let ls = Engine ((module Protocols.Ls), Protocols.Ls.default_config, "LS")

let paper_four = [ rip; dbf; bgp; bgp3 ]

let all = [ rip; dbf; bgp; bgp3; bgp_per_dest; bgp3_rfd; ls ]

let find label =
  let target = String.lowercase_ascii label in
  List.find_opt (fun e -> String.lowercase_ascii (name e) = target) all

let run ?topology ?faults ?frr ?src ?dst ?trace ?monitors ?metrics ?on_quiesce
    ?fail_link ?restore_after cfg (Engine ((module P), pcfg, label)) =
  let module R = Runner.Make (P) in
  R.run ~label ?topology ?faults ?frr ?src ?dst ?trace ?monitors ?metrics
    ?on_quiesce ?fail_link ?restore_after cfg pcfg

let run_multi ?topology ?faults ?frr ?trace ?monitors ?metrics ?on_quiesce
    ~flows ~failures cfg (Engine ((module P), pcfg, label)) =
  let module R = Runner.Make (P) in
  R.run_multi ~label ?topology ?faults ?frr ?trace ?monitors ?metrics
    ?on_quiesce ~flows ~failures cfg pcfg

let run_transport ?topology ?faults ?frr ?trace ?metrics ?src ?dst ~failures tc
    cfg (Engine ((module P), pcfg, label)) =
  let module R = Runner.Make (P) in
  R.run_transport ~label ?topology ?faults ?frr ?trace ?metrics ?src ?dst
    ~failures tc cfg pcfg
