type run = {
  protocol : string;
  degree : int;
  seed : int;
  src : Netsim.Types.node_id;
  dst : Netsim.Types.node_id;
  sent : int;
  delivered : int;
  drops_no_route : int;
  drops_ttl : int;
  drops_queue : int;
  drops_link : int;
  drops_injected : int;
  looped_delivered : int;
  looped_dropped : int;
  ctrl_messages : int;
  ctrl_bytes : int;
  ctrl_lost : int;
  throughput : Dessim.Series.t;
  delay : Dessim.Series.t;
  fwd_convergence : float;
  routing_convergence : float;
  transient_paths : int;
  failed_link : (Netsim.Types.node_id * Netsim.Types.node_id) option;
  pre_failure_path : Netsim.Types.node_id list;
  final_path : Netsim.Types.node_id list;
  final_path_complete : bool;
  sched_events : int;
}

let total_drops r =
  r.drops_no_route + r.drops_ttl + r.drops_queue + r.drops_link
  + r.drops_injected

let in_flight r = r.sent - r.delivered - total_drops r

let conservation_ok r = in_flight r >= 0

let pp_run ppf r =
  Fmt.pf ppf
    "@[<v>%s degree=%d seed=%d %d->%d@ sent=%d delivered=%d drops: \
     no-route=%d ttl=%d queue=%d link=%d injected=%d (in flight %d)@ loops: \
     delivered-after-loop=%d dropped-after-loop=%d@ control: msgs=%d \
     bytes=%d lost=%d@ convergence: forwarding=%.2fs routing=%.2fs transient \
     paths=%d@ failed link=%a@ pre-failure %a@ final %a%s@]"
    r.protocol r.degree r.seed r.src r.dst r.sent r.delivered r.drops_no_route
    r.drops_ttl r.drops_queue r.drops_link r.drops_injected (in_flight r)
    r.looped_delivered
    r.looped_dropped r.ctrl_messages r.ctrl_bytes r.ctrl_lost r.fwd_convergence
    r.routing_convergence r.transient_paths
    Fmt.(option ~none:(any "none") (pair ~sep:(any "-") int int))
    r.failed_link Netsim.Types.pp_path r.pre_failure_path Netsim.Types.pp_path
    r.final_path
    (if r.final_path_complete then "" else " (incomplete)")

type summary = {
  s_protocol : string;
  s_degree : int;
  s_runs : int;
  mean_sent : float;
  mean_delivered : float;
  mean_drops_no_route : float;
  mean_drops_ttl : float;
  mean_drops_queue : float;
  mean_drops_link : float;
  mean_fwd_convergence : float;
  stddev_fwd_convergence : float;
  mean_routing_convergence : float;
  stddev_routing_convergence : float;
  mean_transient_paths : float;
  mean_ctrl_messages : float;
  mean_looped_delivered : float;
  avg_throughput : Dessim.Series.t;
  avg_delay : Dessim.Series.t;
}

let summarize runs =
  match runs with
  | [] -> invalid_arg "Metrics.summarize: no runs"
  | first :: _ ->
    let same r = r.protocol = first.protocol && r.degree = first.degree in
    if not (List.for_all same runs) then
      invalid_arg "Metrics.summarize: mixed protocol or degree";
    let n = List.length runs in
    let fn = float_of_int n in
    let mean_of f = List.fold_left (fun acc r -> acc +. f r) 0. runs /. fn in
    let floats f = List.map f runs in
    let avg_series pick =
      let model = pick first in
      let acc =
        Dessim.Series.create
          ~start:(Dessim.Series.start model)
          ~width:(Dessim.Series.width model)
          ~buckets:(Dessim.Series.buckets model)
      in
      List.iter (fun r -> Dessim.Series.accumulate ~into:acc (pick r)) runs;
      Dessim.Series.scale acc (1. /. fn);
      acc
    in
    {
      s_protocol = first.protocol;
      s_degree = first.degree;
      s_runs = n;
      mean_sent = mean_of (fun r -> float_of_int r.sent);
      mean_delivered = mean_of (fun r -> float_of_int r.delivered);
      mean_drops_no_route = mean_of (fun r -> float_of_int r.drops_no_route);
      mean_drops_ttl = mean_of (fun r -> float_of_int r.drops_ttl);
      mean_drops_queue = mean_of (fun r -> float_of_int r.drops_queue);
      mean_drops_link = mean_of (fun r -> float_of_int r.drops_link);
      mean_fwd_convergence = mean_of (fun r -> r.fwd_convergence);
      stddev_fwd_convergence = Dessim.Stat.stddev (floats (fun r -> r.fwd_convergence));
      mean_routing_convergence = mean_of (fun r -> r.routing_convergence);
      stddev_routing_convergence =
        Dessim.Stat.stddev (floats (fun r -> r.routing_convergence));
      mean_transient_paths = mean_of (fun r -> float_of_int r.transient_paths);
      mean_ctrl_messages = mean_of (fun r -> float_of_int r.ctrl_messages);
      mean_looped_delivered = mean_of (fun r -> float_of_int r.looped_delivered);
      avg_throughput = avg_series (fun r -> r.throughput);
      avg_delay = avg_series (fun r -> r.delay);
    }

type flow = {
  f_src : Netsim.Types.node_id;
  f_dst : Netsim.Types.node_id;
  f_sent : int;
  f_delivered : int;
  f_drops_no_route : int;
  f_drops_ttl : int;
  f_drops_queue : int;
  f_drops_link : int;
  f_drops_injected : int;
  f_looped_delivered : int;
  f_looped_dropped : int;
  f_throughput : Dessim.Series.t;
  f_delay : Dessim.Series.t;
  f_fwd_convergence : float;
  f_transient_paths : int;
  f_pre_failure_path : Netsim.Types.node_id list;
  f_final_path : Netsim.Types.node_id list;
  f_final_path_complete : bool;
}

type multi = {
  m_protocol : string;
  m_degree : int;
  m_seed : int;
  m_flows : flow list;
  m_ctrl_messages : int;
  m_ctrl_bytes : int;
  m_ctrl_lost : int;
  m_routing_convergence : float;
  m_failed_links : (Netsim.Types.node_id * Netsim.Types.node_id) list;
  m_sched_events : int;
}

let flow_total_drops f =
  f.f_drops_no_route + f.f_drops_ttl + f.f_drops_queue + f.f_drops_link
  + f.f_drops_injected

let flow_delivery_ratio f =
  if f.f_sent = 0 then 1.
  else float_of_int f.f_delivered /. float_of_int f.f_sent

let multi_sent m = List.fold_left (fun acc f -> acc + f.f_sent) 0 m.m_flows

let multi_delivered m =
  List.fold_left (fun acc f -> acc + f.f_delivered) 0 m.m_flows

let pp_flow ppf f =
  Fmt.pf ppf
    "flow %d->%d: sent=%d delivered=%d (%.1f%%) drops[no-route=%d ttl=%d \
     queue=%d link=%d injected=%d] fwd-conv=%.2fs paths=%d"
    f.f_src f.f_dst f.f_sent f.f_delivered
    (100. *. flow_delivery_ratio f)
    f.f_drops_no_route f.f_drops_ttl f.f_drops_queue f.f_drops_link
    f.f_drops_injected
    f.f_fwd_convergence f.f_transient_paths

let pp_multi ppf m =
  Fmt.pf ppf
    "@[<v>%s degree=%d seed=%d: %d flows, %d failures %a@ routing \
     convergence %.2fs; control msgs=%d bytes=%d lost=%d@ %a@]"
    m.m_protocol m.m_degree m.m_seed (List.length m.m_flows)
    (List.length m.m_failed_links)
    Fmt.(list ~sep:(any " ") (pair ~sep:(any "-") int int))
    m.m_failed_links m.m_routing_convergence m.m_ctrl_messages m.m_ctrl_bytes
    m.m_ctrl_lost
    Fmt.(list ~sep:(any "@ ") pp_flow)
    m.m_flows

let run_of_multi m =
  match m.m_flows with
  | [ f ] ->
    {
      protocol = m.m_protocol;
      degree = m.m_degree;
      seed = m.m_seed;
      src = f.f_src;
      dst = f.f_dst;
      sent = f.f_sent;
      delivered = f.f_delivered;
      drops_no_route = f.f_drops_no_route;
      drops_ttl = f.f_drops_ttl;
      drops_queue = f.f_drops_queue;
      drops_link = f.f_drops_link;
      drops_injected = f.f_drops_injected;
      looped_delivered = f.f_looped_delivered;
      looped_dropped = f.f_looped_dropped;
      ctrl_messages = m.m_ctrl_messages;
      ctrl_bytes = m.m_ctrl_bytes;
      ctrl_lost = m.m_ctrl_lost;
      throughput = f.f_throughput;
      delay = f.f_delay;
      fwd_convergence = f.f_fwd_convergence;
      routing_convergence = m.m_routing_convergence;
      transient_paths = f.f_transient_paths;
      failed_link = (match m.m_failed_links with l :: _ -> Some l | [] -> None);
      pre_failure_path = f.f_pre_failure_path;
      final_path = f.f_final_path;
      final_path_complete = f.f_final_path_complete;
      sched_events = m.m_sched_events;
    }
  | _ -> invalid_arg "Metrics.run_of_multi: expected exactly one flow"
