(** Forwarding-path inspection.

    Follows the per-router [next_hop] decisions from a source toward a
    destination, classifying the resulting transient forwarding path exactly
    as the paper's trace analysis does: it either completes, hits a router
    with no route, or enters a loop. *)

type path_result =
  | Complete of Netsim.Types.node_id list
      (** reaches the destination; the list includes both endpoints *)
  | Broken of Netsim.Types.node_id list
      (** ends at a router (last element) that has no next hop *)
  | Looping of Netsim.Types.node_id list
      (** revisits a router; the list ends with the first repeated node *)

val current_path :
  next_hop:(Netsim.Types.node_id -> Netsim.Types.node_id option) ->
  src:Netsim.Types.node_id ->
  dst:Netsim.Types.node_id ->
  path_result
(** [current_path ~next_hop ~src ~dst] walks the forwarding graph. [next_hop
    n] is router [n]'s choice for the destination. Termination is guaranteed
    by loop detection. *)

val is_complete : path_result -> bool

val nodes_of : path_result -> Netsim.Types.node_id list

val equal_nodes : Netsim.Types.node_id list -> Netsim.Types.node_id list -> bool
(** Structural node-list equality ([List.equal Int.equal]); avoids polymorphic
    compare on the hot sampling path. *)

val equal : path_result -> path_result -> bool
(** Same constructor and [equal_nodes] node lists. *)

val hops : path_result -> int option
(** [hops r] is the hop count for a [Complete] path. *)

val pp : path_result Fmt.t
