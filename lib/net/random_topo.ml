(* All generators draw every random quantity from the caller's [Dessim.Rng.t]
   and nothing else, so a (generator, parameters, seed) triple names one graph
   forever — the determinism contract the campaign artifacts and the fuzzer
   counterexamples rely on. *)

let ensure_connected rng t =
  match Topology.components t with
  | [] | [ _ ] -> t
  | anchor :: rest ->
    (* One stitch edge per extra component, then a single rebuild: the old
       one-edge-per-rebuild loop was O(components * edges log edges), which
       the 10k-node sweeps cannot afford. Anchoring every stitch in the first
       component keeps the result connected whatever [rest] contains. *)
    let stitches =
      List.map (fun comp -> (Dessim.Rng.pick rng anchor, Dessim.Rng.pick rng comp)) rest
    in
    Topology.create ~nodes:(Topology.node_count t)
      ~edges:(stitches @ Topology.edges t)

let erdos_renyi rng ~nodes ~p =
  if nodes < 2 then invalid_arg "Random_topo.erdos_renyi: nodes < 2";
  if p < 0. || p > 1. then invalid_arg "Random_topo.erdos_renyi: p out of range";
  let edges = ref [] in
  let total = nodes * (nodes - 1) / 2 in
  if p >= 1. then
    for u = 0 to nodes - 2 do
      for v = u + 1 to nodes - 1 do
        edges := (u, v) :: !edges
      done
    done
  else if p > 0. then begin
    (* Geometric skip sampling: instead of one Bernoulli draw per pair
       (O(n^2) draws — minutes of RNG at 10k nodes), draw the gap to the next
       included pair directly. Gaps are geometric with parameter [p], so the
       included set has exactly the G(n, p) distribution in O(n + m) draws.
       Pairs are indexed row-major over the strict upper triangle. *)
    let log_q = log (1. -. p) in
    let k = ref (-1) in
    (* (row, row_start) track which [u] the flat index currently falls in;
       both advance monotonically, so decoding all edges is O(n + m). *)
    let row = ref 0 in
    let row_start = ref 0 in
    let stop = ref false in
    while not !stop do
      let r = Dessim.Rng.float rng 1. in
      let skip = int_of_float (log (1. -. r) /. log_q) in
      k := !k + 1 + skip;
      if !k >= total || !k < 0 then stop := true
      else begin
        while !k - !row_start >= nodes - 1 - !row do
          row_start := !row_start + (nodes - 1 - !row);
          incr row
        done;
        edges := (!row, !row + 1 + (!k - !row_start)) :: !edges
      end
    done
  end;
  ensure_connected rng (Topology.create ~nodes ~edges:!edges)

let waxman rng ~nodes ~alpha ~beta =
  if nodes < 2 then invalid_arg "Random_topo.waxman: nodes < 2";
  if alpha <= 0. || alpha > 1. then invalid_arg "Random_topo.waxman: alpha";
  if beta <= 0. then invalid_arg "Random_topo.waxman: beta";
  let xs = Array.init nodes (fun _ -> Dessim.Rng.float rng 1.) in
  let ys = Array.init nodes (fun _ -> Dessim.Rng.float rng 1.) in
  let max_dist = sqrt 2. in
  let edges = ref [] in
  for u = 0 to nodes - 2 do
    for v = u + 1 to nodes - 1 do
      let dx = xs.(u) -. xs.(v) and dy = ys.(u) -. ys.(v) in
      let d = sqrt ((dx *. dx) +. (dy *. dy)) in
      let prob = alpha *. exp (-.d /. (beta *. max_dist)) in
      if Dessim.Rng.float rng 1. < prob then edges := (u, v) :: !edges
    done
  done;
  ensure_connected rng (Topology.create ~nodes ~edges:!edges)

let barabasi_albert rng ~nodes ~m =
  if m < 1 then invalid_arg "Random_topo.barabasi_albert: m < 1";
  if nodes < m + 2 then
    invalid_arg "Random_topo.barabasi_albert: nodes must exceed m + 1";
  (* [ends] lists every edge endpoint, so a uniform draw from it is a
     degree-proportional draw over nodes — the preferential-attachment pick,
     in O(1) with no per-node weights to maintain. Its final length is twice
     the edge count, which is known up front. *)
  let seed_edges = m * (m + 1) / 2 in
  let cap = 2 * (seed_edges + (m * (nodes - m - 1))) in
  let ends = Array.make cap 0 in
  let len = ref 0 in
  let edges = ref [] in
  let add_edge u v =
    edges := (u, v) :: !edges;
    ends.(!len) <- u;
    ends.(!len + 1) <- v;
    len := !len + 2
  in
  (* Seed with a clique on m+1 nodes: enough distinct targets for the first
     attachment round, and every seed node starts with degree m. *)
  for u = 0 to m do
    for v = u + 1 to m do
      add_edge u v
    done
  done;
  (* [chosen.(t) = v] marks t as already picked by the node v currently
     attaching; a single array gives O(1) duplicate rejection without
     clearing between rounds. *)
  let chosen = Array.make nodes (-1) in
  let targets = Array.make m 0 in
  for v = m + 1 to nodes - 1 do
    let picked = ref 0 in
    while !picked < m do
      let t = ends.(Dessim.Rng.int rng !len) in
      if chosen.(t) <> v then begin
        chosen.(t) <- v;
        targets.(!picked) <- t;
        incr picked
      end
    done;
    (* Edges are recorded only after all m draws: appending endpoints
       mid-round would let v draw itself (a self-loop) and skew the round's
       remaining picks toward its own fresh edges. *)
    for i = 0 to m - 1 do
      add_edge targets.(i) v
    done
  done;
  Topology.create ~nodes ~edges:!edges

let hierarchical rng ?(peer_p = 0.25) ~t1 ~t2 ~stubs ~t2_uplinks ~stub_uplinks
    () =
  if t1 < 1 then invalid_arg "Random_topo.hierarchical: t1 < 1";
  if t2 < 1 then invalid_arg "Random_topo.hierarchical: t2 < 1";
  if stubs < 0 then invalid_arg "Random_topo.hierarchical: stubs < 0";
  if t2_uplinks < 1 || t2_uplinks > t1 then
    invalid_arg "Random_topo.hierarchical: t2_uplinks outside [1, t1]";
  if stub_uplinks < 1 || stub_uplinks > t2 then
    invalid_arg "Random_topo.hierarchical: stub_uplinks outside [1, t2]";
  if peer_p < 0. || peer_p > 1. then
    invalid_arg "Random_topo.hierarchical: peer_p outside [0, 1]";
  let nodes = t1 + t2 + stubs in
  if nodes < 2 then invalid_arg "Random_topo.hierarchical: fewer than 2 nodes";
  let edges = ref [] in
  (* Tier-1 core: a full clique (tier-1 counts are small by design, so the
     quadratic edge count is a handful of links, not a scale hazard). *)
  for u = 0 to t1 - 1 do
    for v = u + 1 to t1 - 1 do
      edges := (u, v) :: !edges
    done
  done;
  let chosen = Array.make nodes (-1) in
  (* Attach [v] to [k] distinct uniform picks from [base .. base+count-1]. *)
  let attach v ~base ~count ~k =
    let picked = ref 0 in
    while !picked < k do
      let t = base + Dessim.Rng.int rng count in
      if chosen.(t) <> v then begin
        chosen.(t) <- v;
        edges := (t, v) :: !edges;
        incr picked
      end
    done
  in
  for i = 0 to t2 - 1 do
    let v = t1 + i in
    attach v ~base:0 ~count:t1 ~k:t2_uplinks;
    (* Lateral tier-2 peering, toward already-placed peers only so the draw
       count stays a pure function of the parameters and seed. *)
    if i > 0 && Dessim.Rng.float rng 1. < peer_p then
      edges := (t1 + Dessim.Rng.int rng i, v) :: !edges
  done;
  for j = 0 to stubs - 1 do
    let v = t1 + t2 + j in
    attach v ~base:t1 ~count:t2 ~k:stub_uplinks
  done;
  Topology.create ~nodes ~edges:!edges

let hierarchical_auto rng ~nodes =
  if nodes < 8 then invalid_arg "Random_topo.hierarchical_auto: nodes < 8";
  let t1 = max 3 (min 16 (nodes / 64)) in
  let t2 = max 4 (nodes / 8) in
  let stubs = nodes - t1 - t2 in
  hierarchical rng ~t1 ~t2 ~stubs ~t2_uplinks:(min 2 t1)
    ~stub_uplinks:(min 2 t2) ()
