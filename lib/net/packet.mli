(** Data packets.

    A packet records its own journey (the sequence of routers visited) so the
    study harness can detect transient forwarding loops and measure path
    stretch, exactly as the paper's trace-file analysis does. *)

type t = {
  id : int;
  src : Types.node_id;
  dst : Types.node_id;
  size_bits : int;
  sent_at : float;
  mutable ttl : int;
  mutable visits : Types.node_id list;  (** visited routers, most recent first *)
  mutable revisited : bool;  (** some router appears twice in [visits] *)
  mutable vmask0 : int;  (** visited-id bitset, ids 0..62 *)
  mutable vmask1 : int;  (** visited-id bitset, ids 63..125 *)
}

val create :
  id:int ->
  src:Types.node_id ->
  dst:Types.node_id ->
  size_bits:int ->
  ttl:int ->
  sent_at:float ->
  t

val visit : t -> Types.node_id -> unit
(** [visit p n] records that [p] is being processed by router [n]. *)

val visited : t -> Types.node_id -> bool
(** [visited p n] is true when [n] already appears in [p]'s journey. Unlike
    {!visit} it never mutates the packet. *)

val hop_count : t -> int
(** [hop_count p] is the number of routers visited so far minus one. *)

val path : t -> Types.node_id list
(** [path p] is the visited routers in travel order. *)

val looped : t -> bool
(** [looped p] is true when some router appears twice in [p]'s journey. *)

val pp : t Fmt.t
