(** Graphviz and ASCII rendering of topologies.

    [rcsim topo --dot] drives {!to_dot} for every generator family; the
    README's topology gallery is produced this way. {!summary} is the
    one-line shape report the same command prints by default. *)

val to_dot :
  ?highlight:(Types.node_id * Types.node_id) list ->
  ?labels:(Types.node_id -> string) ->
  Topology.t ->
  string
(** [to_dot t] is a Graphviz [graph] description. Edges in [highlight] are
    drawn red and bold (e.g. the failed link). *)

val degree_histogram : Topology.t -> (int * int) list
(** [(degree, node count)] pairs, sorted by degree — the quickest way to see
    a family's signature (a mesh concentrates on one degree, a BA graph
    spreads into a heavy tail). *)

val summary : Topology.t Fmt.t
(** One-paragraph statistics: nodes, edges, degree histogram, diameter,
    average path length. *)
