(** Shared identifiers and drop taxonomy for the network substrate.

    The drop taxonomy is load-bearing for the paper's figures: Figure 3
    counts {!No_route}, Figure 4 counts {!Ttl_expired}, and the fault
    campaign separates {!Injected_loss}/{!Corrupted} from the organic
    reasons so injected noise never contaminates the baseline counts. *)

type node_id = int
(** Routers are numbered [0 .. n-1], densely — every array-indexed structure
    in the engine (routing tables, the CSR link table, BFS scratch) depends
    on ids being small contiguous ints. *)

type drop_reason =
  | No_route  (** the router had no next hop for the destination *)
  | Ttl_expired  (** TTL reached zero, i.e. the packet was caught in a loop *)
  | Queue_overflow  (** the outgoing link's FIFO queue was full *)
  | Link_down  (** the packet was sent onto, queued on, or in flight over a failed link *)
  | Injected_loss  (** discarded by the fault-injection perturbation layer *)
  | Corrupted
      (** payload corrupted in flight by fault injection; receivers discard
          corrupt frames, so this behaves as a loss with its own label *)

val pp_node : node_id Fmt.t
val pp_drop_reason : drop_reason Fmt.t
val string_of_drop_reason : drop_reason -> string
val all_drop_reasons : drop_reason list

val pp_path : node_id list Fmt.t
(** Renders a forwarding path as [[0 -> 5 -> 10]]. *)
