type node_id = int

type drop_reason =
  | No_route
  | Ttl_expired
  | Queue_overflow
  | Link_down
  | Injected_loss
  | Corrupted

let pp_node = Fmt.int

let string_of_drop_reason = function
  | No_route -> "no-route"
  | Ttl_expired -> "ttl-expired"
  | Queue_overflow -> "queue-overflow"
  | Link_down -> "link-down"
  | Injected_loss -> "injected-loss"
  | Corrupted -> "corrupted"

let pp_drop_reason ppf r = Fmt.string ppf (string_of_drop_reason r)

let all_drop_reasons =
  [ No_route; Ttl_expired; Queue_overflow; Link_down; Injected_loss; Corrupted ]

let pp_path ppf path =
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any " -> ") int) path
