type t = {
  id : int;
  src : Types.node_id;
  dst : Types.node_id;
  size_bits : int;
  sent_at : float;
  mutable ttl : int;
  mutable visits : Types.node_id list;
  mutable revisited : bool;
  (* Inline bitset over node ids 0..125 (two 63-bit words): the loop check
     below is one bit test instead of a walk of [visits]. Ids >= 126 fall
     back to the list scan, so the check stays exact for any topology. *)
  mutable vmask0 : int;
  mutable vmask1 : int;
}

let create ~id ~src ~dst ~size_bits ~ttl ~sent_at =
  {
    id;
    src;
    dst;
    size_bits;
    sent_at;
    ttl;
    visits = [];
    revisited = false;
    vmask0 = 0;
    vmask1 = 0;
  }

(* The loop check rides along with the visit — one bit test per hop instead
   of a quadratic rescan of the whole journey at delivery time. *)
let visit p n =
  if n < 63 then begin
    let b = 1 lsl n in
    if p.vmask0 land b <> 0 then p.revisited <- true
    else p.vmask0 <- p.vmask0 lor b
  end
  else if n < 126 then begin
    let b = 1 lsl (n - 63) in
    if p.vmask1 land b <> 0 then p.revisited <- true
    else p.vmask1 <- p.vmask1 lor b
  end
  else if (not p.revisited) && List.mem n p.visits then p.revisited <- true;
  p.visits <- n :: p.visits

(* Non-mutating membership test over the same bitset/list hybrid as [visit];
   fast reroute uses it to refuse a backup hop that would close a loop. *)
let visited p n =
  if n < 63 then p.vmask0 land (1 lsl n) <> 0
  else if n < 126 then p.vmask1 land (1 lsl (n - 63)) <> 0
  else List.mem n p.visits

let hop_count p = max 0 (List.length p.visits - 1)

let path p = List.rev p.visits

let looped p = p.revisited

let pp ppf p =
  Fmt.pf ppf "packet#%d %d->%d ttl=%d path=%a" p.id p.src p.dst p.ttl
    Types.pp_path (path p)
